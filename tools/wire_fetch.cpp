// wire_fetch — fetch a certificate stream over the wire, or produce the
// in-process reference bytes, so scripts can byte-compare the two.
//
//   wire_fetch fetch <host> <port> <edgelist> <property> <out>
//   wire_fetch local <edgelist> <property> <out>
//
// `fetch` connects, proves over the wire, and writes the reassembled
// certificate stream verbatim.  `local` runs proveCore with the identity
// id assignment (the server-side convention) and encodes the same stream
// in-process.  The CI wire smoke asserts `cmp` equality of the two files:
// the network boundary must add exactly nothing to the bytes.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/prover.hpp"
#include "graph/io.hpp"
#include "net/protocol.hpp"
#include "net/wire_client.hpp"

namespace {

using namespace lanecert;

Graph loadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return fromEdgeList(buf.str());
}

void writeBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot write " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

int cmdFetch(const std::string& host, std::uint16_t port,
             const std::string& edgelist, const std::string& property,
             const std::string& outPath) {
  const Graph g = loadGraph(edgelist);
  net::WireClient client;
  client.connect(host, port);
  const net::WireClient::Reply reply = client.prove(g, property);
  if (!reply.ok()) {
    std::fprintf(stderr, "wire_fetch: prove failed (%s): %s\n",
                 net::statusName(reply.status), reply.error.c_str());
    return 1;
  }
  writeBytes(outPath, reply.stream);
  std::printf("wire_fetch: %zu stream bytes -> %s\n", reply.stream.size(),
              outPath.c_str());
  return 0;
}

int cmdLocal(const std::string& edgelist, const std::string& property,
             const std::string& outPath) {
  const Graph g = loadGraph(edgelist);
  const PropertyPtr prop = net::propertyByName(property);
  if (!prop) {
    std::fprintf(stderr, "wire_fetch: unknown property '%s'\n",
                 property.c_str());
    return 2;
  }
  const CoreProveResult r =
      proveCore(g, IdAssignment::identity(g.numVertices()), *prop);
  const std::string stream =
      net::encodeCertificateStream(r.propertyHolds, r.labels);
  writeBytes(outPath, stream);
  std::printf("wire_fetch: %zu reference bytes -> %s\n", stream.size(),
              outPath.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc == 7 && std::strcmp(argv[1], "fetch") == 0) {
      return cmdFetch(argv[2],
                      static_cast<std::uint16_t>(std::strtoul(argv[3], nullptr, 10)),
                      argv[4], argv[5], argv[6]);
    }
    if (argc == 5 && std::strcmp(argv[1], "local") == 0) {
      return cmdLocal(argv[2], argv[3], argv[4]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wire_fetch: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  wire_fetch fetch <host> <port> <edgelist> <property> <out>\n"
               "  wire_fetch local <edgelist> <property> <out>\n");
  return 2;
}
