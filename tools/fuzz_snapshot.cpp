// Snapshot-loader fuzzing harness.
//
// Builds honest plan snapshots (src/snapshot) for a small graph corpus and
// feeds `decodeSnapshot` deterministic mutants, asserting the loader
// contract:
//   * targeted attacks with guaranteed-broken framing — truncation at any
//     size, magic/version corruption, stale content hash, section-CRC bit
//     flips, section-length lies — MUST return null;
//   * generic byte mutations and payload corruptions with the section CRC
//     recomputed MAY decode (a mutant can be a semantically valid plan,
//     e.g. a padded varint re-encoding), but any accepted plan must be a
//     canonical FIXED POINT: re-encoding it must decode again and
//     re-encode byte-identically.  That is what makes an accept safe to
//     serve from;
//   * nothing may crash or throw out of `decodeSnapshot` — ever.  The
//     loader bounds every count by Decoder::remaining() before reserving,
//     so hostile length fields cannot trigger over-allocation; running this
//     harness under ASan is how that claim is kept honest.
//
// Reproducibility mirrors fuzz_cert: every iteration derives its Rng from
// (seed, iteration); --progress-file is overwritten with "seed iter" before
// each decode so a sanitizer abort leaves a pointer to the fatal input, and
// `fuzz_snapshot --seed S --replay I` re-runs that iteration verbosely.
// Contract violations dump the mutant image under --artifact-dir and make
// the run exit nonzero.
//
// Usage:
//   fuzz_snapshot [--seed N] [--iters N] [--budget-seconds S]
//                 [--artifact-dir DIR] [--progress-file PATH]
//                 [--replay ITER] [--quiet]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/fuzz_mutator.hpp"
#include "core/prover.hpp"
#include "graph/generators.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace lanecert;

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

struct CorpusEntry {
  const char* name;
  Graph g;
  snapshot::SnapshotKey key;
  std::string image;  ///< honest encodeSnapshot output
};

std::vector<CorpusEntry> buildCorpus() {
  std::vector<CorpusEntry> corpus;
  auto add = [&corpus](const char* name, Graph g) {
    const snapshot::SnapshotKey key = snapshot::planSnapshotKey(g, nullptr);
    const ProvePlan plan = buildProvePlan(g);
    std::string image = snapshot::encodeSnapshot(key, plan);
    if (snapshot::decodeSnapshot(image, key, g) == nullptr) {
      std::fprintf(stderr, "corpus %s: honest image rejected\n", name);
      std::exit(2);
    }
    corpus.push_back({name, std::move(g), key, std::move(image)});
  };
  add("path48", pathGraph(48));
  add("cycle32", cycleGraph(32));
  add("grid5x5", gridGraph(5, 5));
  {
    Rng rng(7);
    add("tree40", randomTree(40, rng));
  }
  return corpus;
}

/// What the iteration did to the image.  The first five are framing attacks
/// whose mutants are invalid BY CONSTRUCTION (must reject); the last two
/// may produce semantically valid images (fixed-point contract).
enum class AttackKind {
  kTruncate,        ///< cut the image at a random smaller size
  kMagicCorrupt,    ///< flip a byte inside the magic / header id fields
  kWrongVersion,    ///< bump formatVersion to an unknown value
  kStaleHash,       ///< perturb contentHash (simulates a different graph)
  kCrcFlip,         ///< flip one bit of a section CRC in the table
  kLengthLie,       ///< perturb one section length field
  kPayloadCorrupt,  ///< corrupt payload bytes, RECOMPUTE the section CRC
  kByteMutate,      ///< FuzzMutator::mutateRandom over the whole image
  kCount,
};

const char* attackName(AttackKind k) {
  switch (k) {
    case AttackKind::kTruncate: return "truncate";
    case AttackKind::kMagicCorrupt: return "magicCorrupt";
    case AttackKind::kWrongVersion: return "wrongVersion";
    case AttackKind::kStaleHash: return "staleHash";
    case AttackKind::kCrcFlip: return "crcFlip";
    case AttackKind::kLengthLie: return "lengthLie";
    case AttackKind::kPayloadCorrupt: return "payloadCorrupt";
    case AttackKind::kByteMutate: return "byteMutate";
    case AttackKind::kCount: break;
  }
  return "?";
}

void putU32(std::string& s, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void putU64(std::string& s, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint64_t getU64(const std::string& s, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(s[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::size_t pick(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(n) - 1));
}

// Section-table field offsets for entry `i` (layout: snapshot/format.hpp).
std::size_t tableEntry(std::size_t i) {
  return snapshot::kHeaderBytes + i * snapshot::kSectionEntryBytes;
}

struct IterationOutcome {
  std::size_t corpusIdx = 0;
  AttackKind kind = AttackKind::kTruncate;
  std::string mutant;
  bool mustReject = false;  ///< invalid by construction
  bool accepted = false;
  bool violation = false;
  const char* detail = "";
};

/// Runs iteration `iter` of campaign `seed`.  Deterministic: same
/// (seed, iter, corpus) -> same mutant, same verdict.
IterationOutcome runIteration(std::uint64_t seed, std::uint64_t iter,
                              const std::vector<CorpusEntry>& corpus) {
  IterationOutcome out;
  FuzzMutator mut(seed ^ (kGolden * (iter + 1)));
  Rng& rng = mut.rng();

  out.corpusIdx = pick(rng, corpus.size());
  const CorpusEntry& entry = corpus[out.corpusIdx];
  out.kind = static_cast<AttackKind>(
      pick(rng, static_cast<std::size_t>(AttackKind::kCount)));
  std::string m = entry.image;

  switch (out.kind) {
    case AttackKind::kTruncate: {
      // Any strictly smaller size is invalid: the loader requires the file
      // to end exactly at the last payload byte.
      m.resize(pick(rng, m.size()));
      out.mustReject = true;
      out.detail = "truncated";
      break;
    }
    case AttackKind::kMagicCorrupt: {
      const std::size_t off = pick(rng, snapshot::kMagic.size());
      m[off] = static_cast<char>(static_cast<unsigned char>(m[off]) ^
                                 (1u << pick(rng, 8)));
      out.mustReject = true;
      out.detail = "magic bit flip";
      break;
    }
    case AttackKind::kWrongVersion: {
      putU32(m, 8, snapshot::kFormatVersion + 1 +
                       static_cast<std::uint32_t>(pick(rng, 1000)));
      out.mustReject = true;
      out.detail = "unknown formatVersion";
      break;
    }
    case AttackKind::kStaleHash: {
      // Flip one bit of the stored contentHash: the file now claims to be
      // the plan of a DIFFERENT graph than the key the caller expects.
      const std::size_t off = 16 + pick(rng, 8);
      m[off] = static_cast<char>(static_cast<unsigned char>(m[off]) ^
                                 (1u << pick(rng, 8)));
      out.mustReject = true;
      out.detail = "stale contentHash";
      break;
    }
    case AttackKind::kCrcFlip: {
      const std::size_t off = tableEntry(pick(rng, snapshot::kSectionCount)) +
                              4 + pick(rng, 4);
      m[off] = static_cast<char>(static_cast<unsigned char>(m[off]) ^
                                 (1u << pick(rng, 8)));
      out.mustReject = true;
      out.detail = "section CRC bit flip";
      break;
    }
    case AttackKind::kLengthLie: {
      // Perturb one length field by a nonzero delta.  Contiguity + the
      // end-of-file check make any single-length lie inconsistent.
      const std::size_t off =
          tableEntry(pick(rng, snapshot::kSectionCount)) + 16;
      const std::uint64_t delta =
          1 + static_cast<std::uint64_t>(pick(rng, 1u << 20));
      putU64(m, off, rng.uniformInt(0, 1) != 0 ? getU64(m, off) + delta
                                               : getU64(m, off) - delta);
      out.mustReject = true;
      out.detail = "section length lie";
      break;
    }
    case AttackKind::kPayloadCorrupt: {
      // Corrupt bytes INSIDE one section's payload, then recompute that
      // section's CRC so the corruption reaches the structural decoder —
      // this is the path that exercises the deep bounds checks.
      const std::size_t sec = pick(rng, snapshot::kSectionCount);
      const std::size_t off = getU64(m, tableEntry(sec) + 8);
      const std::size_t len = getU64(m, tableEntry(sec) + 16);
      if (len == 0) {
        out.detail = "empty section, no-op";
        break;
      }
      const std::size_t hits = 1 + pick(rng, 4);
      for (std::size_t i = 0; i < hits; ++i) {
        const std::size_t at = off + pick(rng, len);
        m[at] = static_cast<char>(rng.uniformInt(0, 255));
      }
      putU32(m, tableEntry(sec) + 4,
             snapshot::crc32(std::string_view(m).substr(off, len)));
      out.detail = "payload corruption, CRC fixed";
      break;
    }
    case AttackKind::kByteMutate: {
      const CorpusEntry& donor =
          corpus[(out.corpusIdx + 1 + pick(rng, corpus.size() - 1)) %
                 corpus.size()];
      m = mut.mutateRandom(m, donor.image);
      out.detail = "generic byte mutation";
      break;
    }
    case AttackKind::kCount:
      break;
  }
  out.mutant = std::move(m);

  std::shared_ptr<const ProvePlan> plan;
  try {
    plan = snapshot::decodeSnapshot(out.mutant, entry.key, entry.g);
  } catch (...) {
    out.accepted = false;
    out.violation = true;
    out.detail = "decodeSnapshot THREW (contract: never throws)";
    return out;
  }
  out.accepted = plan != nullptr;

  if (out.accepted && out.mustReject &&
      out.mutant != entry.image) {  // degenerate no-op mutants are fine
    out.violation = true;
    return out;
  }
  if (out.accepted) {
    // Fixed-point contract: what we accepted must re-encode canonically.
    const std::string re = snapshot::encodeSnapshot(entry.key, *plan);
    const auto again = snapshot::decodeSnapshot(re, entry.key, entry.g);
    if (again == nullptr || snapshot::encodeSnapshot(entry.key, *again) != re) {
      out.violation = true;
      out.detail = "accepted plan is not a canonical fixed point";
    }
  }
  return out;
}

void dumpArtifact(const std::string& dir, std::uint64_t seed,
                  std::uint64_t iter, const CorpusEntry& entry,
                  const IterationOutcome& out) {
  const std::string stem = dir + "/crash-seed" + std::to_string(seed) +
                           "-iter" + std::to_string(iter);
  {
    std::ofstream bin(stem + ".bin", std::ios::binary);
    bin.write(out.mutant.data(),
              static_cast<std::streamsize>(out.mutant.size()));
  }
  std::ofstream meta(stem + ".txt");
  meta << "seed " << seed << "\niter " << iter << "\ncorpus " << entry.name
       << "\nattack " << attackName(out.kind) << "\ndetail " << out.detail
       << "\nexpected " << (out.mustReject ? "reject" : "reject-or-fixed-point")
       << "\ngot " << (out.accepted ? "accept" : "reject")
       << "\nreplay fuzz_snapshot --seed " << seed << " --replay " << iter
       << "\n";
  std::fprintf(stderr, "VIOLATION at iter %llu: wrote %s.{bin,txt}\n",
               static_cast<unsigned long long>(iter), stem.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::uint64_t iters = 50000;
  double budgetSeconds = 0;  // 0 = no wall-clock budget
  std::string artifactDir = ".";
  std::string progressFile;
  long long replayIter = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    auto needsValue = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (needsValue("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--iters")) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--budget-seconds")) {
      budgetSeconds = std::strtod(argv[++i], nullptr);
    } else if (needsValue("--artifact-dir")) {
      artifactDir = argv[++i];
    } else if (needsValue("--progress-file")) {
      progressFile = argv[++i];
    } else if (needsValue("--replay")) {
      replayIter = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_snapshot [--seed N] [--iters N] "
                   "[--budget-seconds S] [--artifact-dir DIR] "
                   "[--progress-file PATH] [--replay ITER] [--quiet]\n");
      return 2;
    }
  }

  const std::vector<CorpusEntry> corpus = buildCorpus();

  if (replayIter >= 0) {
    const auto out =
        runIteration(seed, static_cast<std::uint64_t>(replayIter), corpus);
    std::printf("replay seed=%llu iter=%lld\n",
                static_cast<unsigned long long>(seed), replayIter);
    std::printf("corpus   %s\nattack   %s\ndetail   %s\n",
                corpus[out.corpusIdx].name, attackName(out.kind), out.detail);
    std::printf("expected %s\ngot      %s\nmutant   %zu bytes "
                "(original %zu)\n",
                out.mustReject ? "reject" : "reject-or-fixed-point",
                out.accepted ? "accept" : "reject", out.mutant.size(),
                corpus[out.corpusIdx].image.size());
    return out.violation ? 1 : 0;
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  std::uint64_t violations = 0;
  std::uint64_t accepts = 0;
  std::uint64_t byKind[static_cast<int>(AttackKind::kCount)] = {};

  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    if (budgetSeconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= budgetSeconds) break;
    }
    if (!progressFile.empty()) {
      // Overwritten BEFORE the decode: if the loader crashes under ASan,
      // this file points at the fatal (seed, iter) pair.
      std::ofstream p(progressFile, std::ios::trunc);
      p << seed << " " << iter << "\n";
    }
    const auto out = runIteration(seed, iter, corpus);
    ++done;
    ++byKind[static_cast<int>(out.kind)];
    if (out.accepted) ++accepts;
    if (out.violation) {
      ++violations;
      dumpArtifact(artifactDir, seed, iter, corpus[out.corpusIdx], out);
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!quiet) {
    std::printf("fuzz_snapshot: %llu mutants in %.1fs (seed %llu)\n",
                static_cast<unsigned long long>(done), elapsed.count(),
                static_cast<unsigned long long>(seed));
    for (int k = 0; k < static_cast<int>(AttackKind::kCount); ++k) {
      std::printf("  attack %-14s %llu\n",
                  attackName(static_cast<AttackKind>(k)),
                  static_cast<unsigned long long>(byKind[k]));
    }
    std::printf("  accepted %llu (all fixed-point checked), violations %llu\n",
                static_cast<unsigned long long>(accepts),
                static_cast<unsigned long long>(violations));
  }
  if (!progressFile.empty()) std::remove(progressFile.c_str());
  return violations == 0 ? 0 : 1;
}
