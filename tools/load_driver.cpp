// load_driver — sustained mixed-traffic load generator for the wire server.
//
// Opens N connections (one thread each), primes a certificate + a verify
// session per connection, then drives a deterministic prove/verify/reverify
// mix for the requested duration, measuring per-request latency from the
// send() to the terminal reply.  Reports throughput and p50/p90/p99
// latency overall and per op, and optionally enforces a throughput floor
// (--min-throughput, the CI gate).
//
// The prove traffic intentionally repeats a small set of distinct jobs:
// that is the serving hot path — the service's result cache coalesces, the
// server's stream memo scatters — and what a fleet of subscribers looks
// like.  --distinct N controls how many distinct graphs rotate through.
//
// Usage:
//   load_driver --port P [--host H] [--connections N] [--duration-seconds S]
//               [--rate R] [--pipeline D] [--distinct N] [--vertices N]
//               [--seed N] [--min-throughput R] [--json PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "graph/generators.hpp"
#include "net/wire_client.hpp"

namespace {

using namespace lanecert;
using Clock = std::chrono::steady_clock;

struct DriverOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  int connections = 8;
  double durationSeconds = 5.0;
  double rate = 0;     // total target req/s across all connections; 0 = max
  int pipeline = 4;    // in-flight requests per connection
  int distinct = 4;    // distinct graphs rotating through the mix
  int vertices = 64;   // workload graph size
  std::uint64_t seed = 42;
  double minThroughput = 0;  // req/s floor; nonzero makes the run a gate
  std::string jsonPath;
};

struct Workload {
  Graph graph;
  std::vector<std::string> labels;  ///< honest certificate for verify ops
};

enum OpClass { kOpProve = 0, kOpVerify = 1, kOpReverify = 2, kOpClassCount };

const char* opClassName(int c) {
  switch (c) {
    case kOpProve:
      return "prove";
    case kOpVerify:
      return "verify";
    case kOpReverify:
      return "reverify";
  }
  return "?";
}

struct ThreadResult {
  std::vector<double> latencyMs[kOpClassCount];
  std::uint64_t sent = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::string error;  ///< nonempty = the thread died
};

/// One closed-loop worker: keeps `pipeline` requests in flight, paces to
/// `ratePerConn` when nonzero, classifies each reply.
void runWorker(const DriverOptions& opts, const std::vector<Workload>& work,
               int threadIdx, double ratePerConn, Clock::time_point deadline,
               ThreadResult* result) {
  try {
    net::WireClient client;
    client.connect(opts.host, opts.port);

    // One live verify session per connection feeds the reverify traffic.
    const Workload& sessionWork = work[threadIdx % work.size()];
    const net::WireClient::Reply opened = client.wait(client.sendOpenSession(
        sessionWork.graph, "connectivity", sessionWork.labels));
    if (!opened.ok()) {
      result->error = "open-session failed: " + opened.error;
      return;
    }
    const std::uint64_t session = net::decodeSessionHandle(opened.body);

    Rng rng(opts.seed + 1000 + static_cast<std::uint64_t>(threadIdx));
    struct Inflight {
      Clock::time_point sentAt;
      int opClass;
    };
    std::unordered_map<std::uint64_t, Inflight> inflight;
    std::vector<std::uint64_t> order;  // completion pops the oldest first

    const auto interval =
        ratePerConn > 0
            ? std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(1.0 / ratePerConn))
            : Clock::duration::zero();
    Clock::time_point nextSend = Clock::now();

    auto sendOne = [&]() {
      const Workload& w = work[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<int>(work.size()) - 1))];
      const int r = rng.uniformInt(0, 9);
      int opClass;
      std::uint64_t id;
      if (r < 5) {
        opClass = kOpProve;
        id = client.sendProve(w.graph, "connectivity");
      } else if (r < 8) {
        opClass = kOpVerify;
        id = client.sendVerify(w.graph, "connectivity", w.labels);
      } else {
        opClass = kOpReverify;
        std::vector<EdgeLabelEdit> edits;
        const auto edge = static_cast<EdgeId>(rng.uniformInt(
            0, sessionWork.graph.numEdges() - 1));
        edits.push_back({edge, sessionWork.labels[static_cast<std::size_t>(
                                   edge)]});  // honest rewrite: stays green
        id = client.sendReverify(session, edits);
      }
      inflight.emplace(id, Inflight{Clock::now(), opClass});
      order.push_back(id);
      ++result->sent;
    };

    while (Clock::now() < deadline) {
      while (static_cast<int>(inflight.size()) < std::max(1, opts.pipeline) &&
             Clock::now() < deadline) {
        if (ratePerConn > 0) {
          if (Clock::now() < nextSend) break;
          nextSend += interval;
        }
        sendOne();
      }
      if (order.empty()) {
        if (ratePerConn > 0) std::this_thread::sleep_until(nextSend);
        continue;
      }
      const std::uint64_t id = order.front();
      order.erase(order.begin());
      const net::WireClient::Reply reply = client.wait(id);
      const auto it = inflight.find(id);
      const double ms = std::chrono::duration<double, std::milli>(
                            Clock::now() - it->second.sentAt)
                            .count();
      if (reply.status == net::Status::kRejected) {
        ++result->rejected;
      } else if (reply.ok()) {
        result->latencyMs[it->second.opClass].push_back(ms);
        ++result->completed;
      } else {
        result->error = "unexpected status " +
                        std::string(net::statusName(reply.status)) +
                        (reply.error.empty() ? "" : ": " + reply.error);
        return;
      }
      inflight.erase(it);
    }

    // Drain whatever is still in flight so the server is not left with
    // half-read streams.
    for (const std::uint64_t id : order) {
      const net::WireClient::Reply reply = client.wait(id);
      const auto it = inflight.find(id);
      if (reply.ok()) {
        result->latencyMs[it->second.opClass].push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      it->second.sentAt)
                .count());
        ++result->completed;
      } else if (reply.status == net::Status::kRejected) {
        ++result->rejected;
      }
      inflight.erase(it);
    }
    client.wait(client.sendCloseSession(session));
  } catch (const std::exception& e) {
    result->error = e.what();
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(sorted.size()) - 1,
                       p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  DriverOptions opts;
  for (int i = 1; i < argc; ++i) {
    auto needsValue = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (needsValue("--host")) {
      opts.host = argv[++i];
    } else if (needsValue("--port")) {
      opts.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (needsValue("--connections")) {
      opts.connections = std::atoi(argv[++i]);
    } else if (needsValue("--duration-seconds")) {
      opts.durationSeconds = std::strtod(argv[++i], nullptr);
    } else if (needsValue("--rate")) {
      opts.rate = std::strtod(argv[++i], nullptr);
    } else if (needsValue("--pipeline")) {
      opts.pipeline = std::atoi(argv[++i]);
    } else if (needsValue("--distinct")) {
      opts.distinct = std::atoi(argv[++i]);
    } else if (needsValue("--vertices")) {
      opts.vertices = std::atoi(argv[++i]);
    } else if (needsValue("--seed")) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--min-throughput")) {
      opts.minThroughput = std::strtod(argv[++i], nullptr);
    } else if (needsValue("--json")) {
      opts.jsonPath = argv[++i];
    } else {
      std::fprintf(
          stderr,
          "usage: load_driver --port P [--host H] [--connections N] "
          "[--duration-seconds S] [--rate R] [--pipeline D] [--distinct N] "
          "[--vertices N] [--seed N] [--min-throughput R] [--json PATH]\n");
      return 2;
    }
  }
  if (opts.port == 0) {
    std::fprintf(stderr, "load_driver: --port is required\n");
    return 2;
  }

  // Build the workload set; the honest labels come over the wire (one
  // prove per distinct graph), so the driver also smoke-checks streaming
  // before the clock starts.
  std::vector<Workload> work;
  try {
    net::WireClient primer;
    primer.connect(opts.host, opts.port);
    Rng rng(opts.seed);
    for (int i = 0; i < std::max(1, opts.distinct); ++i) {
      Workload w;
      w.graph = randomBoundedPathwidth(opts.vertices, 2, 0.4, rng).graph;
      const net::WireClient::Reply reply =
          primer.prove(w.graph, "connectivity");
      if (!reply.ok()) {
        std::fprintf(stderr, "load_driver: priming prove failed: %s\n",
                     reply.error.c_str());
        return 1;
      }
      const net::CertificateStream cert =
          net::decodeCertificateStream(reply.stream);
      if (!cert.propertyHolds) {
        std::fprintf(stderr, "load_driver: priming graph not connected\n");
        return 1;
      }
      w.labels = cert.labels;
      work.push_back(std::move(w));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "load_driver: priming failed: %s\n", e.what());
    return 1;
  }

  const int conns = std::max(1, opts.connections);
  const double ratePerConn = opts.rate > 0 ? opts.rate / conns : 0;
  std::vector<ThreadResult> results(static_cast<std::size_t>(conns));
  const auto start = Clock::now();
  const auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(opts.durationSeconds));
  {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int t = 0; t < conns; ++t) {
      threads.emplace_back(runWorker, std::cref(opts), std::cref(work), t,
                           ratePerConn, deadline, &results[t]);
    }
    for (std::thread& th : threads) th.join();
  }
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::uint64_t sent = 0, completed = 0, rejected = 0;
  std::vector<double> all;
  std::vector<double> perOp[kOpClassCount];
  for (const ThreadResult& r : results) {
    if (!r.error.empty()) {
      std::fprintf(stderr, "load_driver: worker failed: %s\n",
                   r.error.c_str());
      return 1;
    }
    sent += r.sent;
    completed += r.completed;
    rejected += r.rejected;
    for (int c = 0; c < kOpClassCount; ++c) {
      perOp[c].insert(perOp[c].end(), r.latencyMs[c].begin(),
                      r.latencyMs[c].end());
      all.insert(all.end(), r.latencyMs[c].begin(), r.latencyMs[c].end());
    }
  }
  std::sort(all.begin(), all.end());
  const double throughput = elapsed > 0 ? completed / elapsed : 0;
  const double p50 = percentile(all, 0.50);
  const double p90 = percentile(all, 0.90);
  const double p99 = percentile(all, 0.99);

  std::printf(
      "load_driver: %d conns x pipeline %d, %.1fs: %llu sent, %llu ok, "
      "%llu rejected\n",
      conns, opts.pipeline, elapsed, static_cast<unsigned long long>(sent),
      static_cast<unsigned long long>(completed),
      static_cast<unsigned long long>(rejected));
  std::printf("  throughput %.0f req/s, latency p50 %.3fms p90 %.3fms p99 %.3fms\n",
              throughput, p50, p90, p99);
  for (int c = 0; c < kOpClassCount; ++c) {
    std::sort(perOp[c].begin(), perOp[c].end());
    std::printf("  %-8s %7zu ok, p50 %.3fms p99 %.3fms\n", opClassName(c),
                perOp[c].size(), percentile(perOp[c], 0.50),
                percentile(perOp[c], 0.99));
  }

  if (!opts.jsonPath.empty()) {
    std::ofstream out(opts.jsonPath);
    out << "{\n  \"connections\": " << conns
        << ",\n  \"pipeline\": " << opts.pipeline
        << ",\n  \"elapsed_s\": " << elapsed << ",\n  \"sent\": " << sent
        << ",\n  \"completed\": " << completed
        << ",\n  \"rejected\": " << rejected
        << ",\n  \"throughput_rps\": " << throughput
        << ",\n  \"p50_ms\": " << p50 << ",\n  \"p90_ms\": " << p90
        << ",\n  \"p99_ms\": " << p99 << "\n}\n";
  }

  if (opts.minThroughput > 0 && throughput < opts.minThroughput) {
    std::fprintf(stderr,
                 "load_driver: throughput %.0f req/s below floor %.0f\n",
                 throughput, opts.minThroughput);
    return 1;
  }
  return 0;
}
