// lanecert_serverd — the wire-protocol serving daemon.
//
// Binds, prints "listening <addr> <port>" on stdout (flushed, so scripts
// can scrape the ephemeral port), installs the SIGTERM/SIGINT graceful
// drain, and runs the event loop on the main thread until the drain
// completes.  Exit prints a one-line stats summary to stderr.
//
// Usage:
//   lanecert_serverd [--bind ADDR] [--port P] [--threads N]
//                    [--max-inflight N] [--chunk-bytes N]
//                    [--drain-grace-ms N] [--max-queue-depth N]
//                    [--snapshot-dir DIR]
//
// --snapshot-dir enables warm-start persistence: prover plans are snapshot
// to DIR after each fresh build and mmap-loaded on plan-cache misses, so a
// restarted daemon answers its first prove over a known graph without
// recomputing the plan head (see src/snapshot/snapshot.hpp).

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "net/wire_server.hpp"

int main(int argc, char** argv) {
  using namespace lanecert;

  net::WireServerOptions opts;
  for (int i = 1; i < argc; ++i) {
    auto needsValue = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (needsValue("--bind")) {
      opts.bindAddress = argv[++i];
    } else if (needsValue("--port")) {
      opts.port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (needsValue("--threads")) {
      opts.service.numThreads = std::atoi(argv[++i]);
    } else if (needsValue("--max-inflight")) {
      opts.maxInflightPerConn = std::atoi(argv[++i]);
    } else if (needsValue("--chunk-bytes")) {
      opts.chunkBytes = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--drain-grace-ms")) {
      opts.drainGraceMs = std::atoi(argv[++i]);
    } else if (needsValue("--max-queue-depth")) {
      opts.service.maxQueueDepth = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--snapshot-dir")) {
      opts.service.snapshotDir = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: lanecert_serverd [--bind ADDR] [--port P] "
                   "[--threads N] [--max-inflight N] [--chunk-bytes N] "
                   "[--drain-grace-ms N] [--max-queue-depth N] "
                   "[--snapshot-dir DIR]\n");
      return 2;
    }
  }

  try {
    net::WireServer server(opts);
    std::printf("listening %s %u\n", opts.bindAddress.c_str(),
                static_cast<unsigned>(server.port()));
    std::fflush(stdout);
    server.installSignalDrain();
    server.run();
    const net::WireServerStats s = server.stats();
    std::fprintf(stderr,
                 "serverd: drained; conns %llu/%llu frames %llu completed "
                 "%llu rejected %llu+%llu cancelled %llu errors %llu+%llu "
                 "streams %llu (encodes %llu reuses %llu)\n",
                 static_cast<unsigned long long>(s.connectionsAccepted),
                 static_cast<unsigned long long>(s.connectionsClosed),
                 static_cast<unsigned long long>(s.framesRead),
                 static_cast<unsigned long long>(s.requestsCompleted),
                 static_cast<unsigned long long>(s.quotaRejected),
                 static_cast<unsigned long long>(s.serviceRejected),
                 static_cast<unsigned long long>(s.cancelledResponses),
                 static_cast<unsigned long long>(s.protocolErrors),
                 static_cast<unsigned long long>(s.requestErrors),
                 static_cast<unsigned long long>(s.streamsSent),
                 static_cast<unsigned long long>(s.streamEncodes),
                 static_cast<unsigned long long>(s.streamEncodeReuses));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serverd: %s\n", e.what());
    return 1;
  }
}
