// Structure-aware certificate fuzzing harness.
//
// Mutates ENCODED labels of honest certificates (src/core/fuzz_mutator.hpp)
// and sweeps the verifier over each mutant, asserting the soundness
// contract:
//   * malformed mutants (decode throws)            -> sweep must reject
//   * no-op mutants (decode-identical re-encoding) -> verdict unchanged
//   * on the FALSE instance (is-path labels on a cycle — the E7 pair, where
//     the lower-bound theorem says NO labeling can be accepted): every
//     mutant of every class must keep rejecting
//   * semantically-changed mutants on TRUE instances -> expected to reject;
//     the rare accept is an ALTERNATIVE VALID PROOF of a true property
//     (same phenomenon bench_soundness.cpp documents for E6 — e.g. renaming
//     the unused-side part summary of a bridge entry to a fresh node id
//     yields a non-canonical but internally consistent certificate).  These
//     are counted, dumped as `finding-*` artifacts for audit, and fatal
//     only under --strict.
//
// Reproducibility contract: every iteration derives its own Rng from
// (seed, iteration), so any mutant regenerates in O(1) from those two
// numbers.  Before each sweep the harness overwrites --progress-file with
// "seed iter", so a sanitizer abort leaves a pointer to the fatal input;
// `fuzz_cert --seed S --replay I` re-runs exactly that iteration verbosely.
// Contract violations (not crashes) dump the mutant bytes + metadata under
// --artifact-dir and make the run exit nonzero.
//
// Usage:
//   fuzz_cert [--seed N] [--iters N] [--budget-seconds S]
//             [--artifact-dir DIR] [--progress-file PATH]
//             [--replay ITER] [--quiet]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "core/fuzz_mutator.hpp"
#include "core/prover.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/scheme.hpp"

namespace {

using namespace lanecert;

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;

struct CorpusEntry {
  const char* name;
  Graph g;
  IdAssignment ids;
  std::vector<std::string> labels;
  EdgeVerifier verifier;
  bool trueInstance;  ///< baseline sweep verdict over `labels`
};

std::vector<CorpusEntry> buildCorpus() {
  std::vector<CorpusEntry> corpus;

  auto addTrue = [&corpus](const char* name, Graph g, PropertyPtr prop) {
    const auto n = g.numVertices();
    CorpusEntry e{name, std::move(g), IdAssignment::random(n, 5), {},
                  makeCoreVerifier(prop), true};
    auto proved = proveCore(e.g, e.ids, *prop);
    if (!proved.propertyHolds) {
      std::fprintf(stderr, "corpus %s: property unexpectedly fails\n", name);
      std::exit(2);
    }
    e.labels = std::move(proved.labels);
    corpus.push_back(std::move(e));
  };

  addTrue("cycle16/isCycle", cycleGraph(16), makeCycleProperty());
  addTrue("path24/isPath", pathGraph(24), makePathProperty());
  {
    Rng rng(11);
    addTrue("tree20/forest", randomTree(20, rng), makeForest());
  }
  addTrue("grid4x4/connected", gridGraph(4, 4), makeConnectivity());

  // The E7 false instance: honest is-path labels transplanted onto a cycle.
  // The lower-bound theorem says NO labeling makes the path verifier accept
  // a cycle, so here every mutant — of any class — must keep rejecting.
  {
    const int n = 16;
    CorpusEntry e{"cycle16/pathLabels", cycleGraph(n),
                  IdAssignment::random(n, 3), {},
                  makeCoreVerifier(makePathProperty()), false};
    auto proved = proveCore(pathGraph(n), e.ids, *makePathProperty());
    e.labels = std::move(proved.labels);
    e.labels.push_back(e.labels.front());  // path has n-1 edges, cycle has n
    corpus.push_back(std::move(e));
  }
  return corpus;
}

std::size_t pick(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(n) - 1));
}

struct IterationOutcome {
  std::size_t corpusIdx = 0;
  std::size_t labelIdx = 0;
  FuzzKind kind = FuzzKind::kBitFlip;
  FuzzVerdictClass cls = FuzzVerdictClass::kNoop;
  std::string mutant;
  bool accepted = false;
  bool violation = false;
  /// True instance + semantic change + accepted: an alternative valid proof
  /// of a true property (audited, fatal only under --strict).
  bool alternativeProof = false;
  const char* expectation = "";
};

/// Runs iteration `iter` of campaign `seed` against `corpus`.  Deterministic:
/// same (seed, iter, corpus) -> same mutant, same verdict.
IterationOutcome runIteration(std::uint64_t seed, std::uint64_t iter,
                              std::vector<CorpusEntry>& corpus) {
  IterationOutcome out;
  FuzzMutator mut(seed ^ (kGolden * (iter + 1)));
  Rng& rng = mut.rng();

  out.corpusIdx = pick(rng, corpus.size());
  CorpusEntry& entry = corpus[out.corpusIdx];
  out.labelIdx = pick(rng, entry.labels.size());
  const CorpusEntry& donorEntry =
      corpus[(out.corpusIdx + 1 + pick(rng, corpus.size() - 1)) %
             corpus.size()];
  const std::string& donor =
      donorEntry.labels[pick(rng, donorEntry.labels.size())];

  out.mutant =
      mut.mutateRandom(entry.labels[out.labelIdx], donor, &out.kind);
  out.cls = classifyMutation(entry.labels[out.labelIdx], out.mutant);

  std::vector<std::string> labels = entry.labels;
  labels[out.labelIdx] = out.mutant;
  out.accepted =
      simulateEdgeScheme(entry.g, entry.ids, labels, entry.verifier)
          .allAccept;

  if (!entry.trueInstance) {
    out.expectation = "reject (false instance, any mutation)";
    out.violation = out.accepted;
  } else if (out.cls == FuzzVerdictClass::kNoop) {
    out.expectation = "accept (no-op re-encoding of honest label)";
    out.violation = !out.accepted;
  } else if (out.cls == FuzzVerdictClass::kMalformed) {
    out.expectation = "reject (malformed label)";
    out.violation = out.accepted;
  } else {
    out.expectation = "reject (semantic corruption)";
    out.alternativeProof = out.accepted;
  }
  return out;
}

const char* className(FuzzVerdictClass c) {
  switch (c) {
    case FuzzVerdictClass::kMalformed:
      return "malformed";
    case FuzzVerdictClass::kSemanticChange:
      return "semanticChange";
    case FuzzVerdictClass::kNoop:
      return "noop";
  }
  return "?";
}

void dumpArtifact(const std::string& dir, const char* prefix,
                  std::uint64_t seed, std::uint64_t iter,
                  const CorpusEntry& entry, const IterationOutcome& out) {
  const std::string stem =
      dir + "/" + prefix + "-seed" + std::to_string(seed) + "-iter" +
      std::to_string(iter);
  {
    std::ofstream bin(stem + ".bin", std::ios::binary);
    bin.write(out.mutant.data(),
              static_cast<std::streamsize>(out.mutant.size()));
  }
  std::ofstream meta(stem + ".txt");
  meta << "seed " << seed << "\niter " << iter << "\ncorpus " << entry.name
       << "\nlabelIdx " << out.labelIdx << "\nkind "
       << fuzzKindName(out.kind) << "\nclass " << className(out.cls)
       << "\nexpected " << out.expectation << "\ngot "
       << (out.accepted ? "accept" : "reject")
       << "\nreplay fuzz_cert --seed " << seed << " --replay " << iter
       << "\n";
  std::fprintf(stderr, "%s at iter %llu: wrote %s.{bin,txt}\n",
               out.violation ? "VIOLATION" : "finding",
               static_cast<unsigned long long>(iter), stem.c_str());
}

void hexDump(const std::string& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::printf("%02x%s", static_cast<unsigned char>(bytes[i]),
                (i + 1) % 16 == 0 ? "\n" : " ");
  }
  if (bytes.size() % 16 != 0) std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::uint64_t iters = 100000;
  double budgetSeconds = 0;  // 0 = no wall-clock budget
  std::string artifactDir = ".";
  std::string progressFile;
  long long replayIter = -1;
  bool quiet = false;
  bool strict = false;  // alternative proofs on true instances become fatal

  for (int i = 1; i < argc; ++i) {
    auto needsValue = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (needsValue("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--iters")) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--budget-seconds")) {
      budgetSeconds = std::strtod(argv[++i], nullptr);
    } else if (needsValue("--artifact-dir")) {
      artifactDir = argv[++i];
    } else if (needsValue("--progress-file")) {
      progressFile = argv[++i];
    } else if (needsValue("--replay")) {
      replayIter = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[i], "--strict") == 0) {
      strict = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_cert [--seed N] [--iters N] "
                   "[--budget-seconds S] [--artifact-dir DIR] "
                   "[--progress-file PATH] [--replay ITER] [--strict] "
                   "[--quiet]\n");
      return 2;
    }
  }

  std::vector<CorpusEntry> corpus = buildCorpus();

  // Sanity: baseline verdicts must match the corpus annotations, otherwise
  // every downstream assertion is meaningless.
  for (const CorpusEntry& e : corpus) {
    const bool ok =
        simulateEdgeScheme(e.g, e.ids, e.labels, e.verifier).allAccept;
    if (ok != e.trueInstance) {
      std::fprintf(stderr, "corpus %s: baseline verdict %d != expected %d\n",
                   e.name, ok ? 1 : 0, e.trueInstance ? 1 : 0);
      return 2;
    }
  }

  if (replayIter >= 0) {
    const auto out = runIteration(
        seed, static_cast<std::uint64_t>(replayIter), corpus);
    std::printf("replay seed=%llu iter=%lld\n",
                static_cast<unsigned long long>(seed), replayIter);
    std::printf("corpus   %s\nlabelIdx %zu\nkind     %s\nclass    %s\n",
                corpus[out.corpusIdx].name, out.labelIdx,
                fuzzKindName(out.kind), className(out.cls));
    std::printf("expected %s\ngot      %s\n", out.expectation,
                out.accepted ? "accept" : "reject");
    const std::string& orig = corpus[out.corpusIdx].labels[out.labelIdx];
    std::printf("original %zu bytes:\n", orig.size());
    hexDump(orig);
    std::printf("mutant   %zu bytes:\n", out.mutant.size());
    hexDump(out.mutant);
    if (out.alternativeProof) {
      std::printf("note: accepted alternative proof of a true instance\n");
    }
    return (out.violation || (strict && out.alternativeProof)) ? 1 : 0;
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  std::uint64_t violations = 0;
  std::uint64_t alternativeProofs = 0;
  std::uint64_t byClass[3] = {0, 0, 0};
  std::uint64_t byKind[static_cast<int>(FuzzKind::kCount)] = {};
  std::uint64_t rejectedSemantic = 0;
  std::uint64_t totalSemantic = 0;

  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    if (budgetSeconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= budgetSeconds) break;
    }
    if (!progressFile.empty()) {
      // Overwritten BEFORE the sweep: if the verifier crashes under ASan,
      // this file points at the fatal (seed, iter) pair.
      std::ofstream p(progressFile, std::ios::trunc);
      p << seed << " " << iter << "\n";
    }
    const auto out = runIteration(seed, iter, corpus);
    ++done;
    ++byClass[static_cast<int>(out.cls)];
    ++byKind[static_cast<int>(out.kind)];
    if (out.cls == FuzzVerdictClass::kSemanticChange) {
      ++totalSemantic;
      if (!out.accepted) ++rejectedSemantic;
    }
    if (out.violation) {
      ++violations;
      dumpArtifact(artifactDir, "crash", seed, iter, corpus[out.corpusIdx],
                   out);
    } else if (out.alternativeProof) {
      ++alternativeProofs;
      if (strict) ++violations;
      dumpArtifact(artifactDir, strict ? "crash" : "finding", seed, iter,
                   corpus[out.corpusIdx], out);
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!quiet) {
    std::printf("fuzz_cert: %llu mutants in %.1fs (seed %llu)\n",
                static_cast<unsigned long long>(done), elapsed.count(),
                static_cast<unsigned long long>(seed));
    std::printf("  classes: malformed %llu, semanticChange %llu, noop %llu\n",
                static_cast<unsigned long long>(byClass[0]),
                static_cast<unsigned long long>(byClass[1]),
                static_cast<unsigned long long>(byClass[2]));
    std::printf("  semantic rejection: %llu/%llu (%llu alternative proofs)\n",
                static_cast<unsigned long long>(rejectedSemantic),
                static_cast<unsigned long long>(totalSemantic),
                static_cast<unsigned long long>(alternativeProofs));
    for (int k = 0; k < static_cast<int>(FuzzKind::kCount); ++k) {
      std::printf("  kind %-10s %llu\n",
                  fuzzKindName(static_cast<FuzzKind>(k)),
                  static_cast<unsigned long long>(byKind[k]));
    }
    std::printf("  violations: %llu\n",
                static_cast<unsigned long long>(violations));
  }
  if (!progressFile.empty()) std::remove(progressFile.c_str());
  return violations == 0 ? 0 : 1;
}
