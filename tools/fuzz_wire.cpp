// Wire-frame fuzzing harness.
//
// Mutates ENCODED request frames (core/fuzz_mutator.hpp — bit flips,
// truncations, varint corruption/padding, splices) and asserts the
// serving boundary's robustness contract at two layers:
//
//   * in-process: FrameParser + decodeRequest must, for EVERY input,
//     either parse cleanly or fail with the protocol's own error types
//     (DecodeError / WireError) — never crash, never buffer more than the
//     frame quota (a length lie must be rejected BEFORE any reserve, so
//     bufferedBytes() stays below the cap at all times);
//   * live server (every --server-every iterations): hostile bytes are
//     written to a real connection followed by a valid ping and a padding
//     flood (so a length lie that legitimately waits for more input gets
//     fed until it resolves).  The connection must reach a terminal state
//     — a reply or a close — within the recv timeout (a hang is a
//     violation), and the server must still serve a FRESH connection
//     afterwards (liveness).
//
// Reproducibility mirrors fuzz_cert: every iteration derives its mutant
// from (seed, iter) alone; --replay re-runs one iteration verbosely;
// violations dump crash-wire-* artifacts with a replay line.
//
// Usage:
//   fuzz_wire [--seed N] [--iters N] [--budget-seconds S]
//             [--artifact-dir DIR] [--progress-file PATH]
//             [--server-every N] [--replay ITER] [--quiet]

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/fuzz_mutator.hpp"
#include "core/prover.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "net/protocol.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"

namespace {

using namespace lanecert;

constexpr std::uint64_t kGolden = 0x9e3779b97f4a7c15ull;
/// Small on purpose: the padding flood that resolves length lies on the
/// live server is 2x this.
constexpr std::size_t kFuzzMaxFrame = 64 * 1024;
// Tight vertex cap for the campaign: corpus graphs are tiny, so any
// mutant claiming more vertices than this must be REJECTED, not
// materialized as adjacency vectors.
constexpr std::size_t kFuzzMaxVertices = 1u << 12;

struct CorpusEntry {
  const char* name;
  std::string payload;  ///< a VALID request body (pre-framing)
};

std::vector<CorpusEntry> buildCorpus() {
  std::vector<CorpusEntry> corpus;
  corpus.push_back({"ping", net::encodePingRequest(3)});

  const Graph path = pathGraph(8);
  const Graph cycle = cycleGraph(12);
  corpus.push_back({"prove/path8",
                    net::encodeProveRequest(4, path, "forest")});
  corpus.push_back({"prove/cycle12",
                    net::encodeProveRequest(5, cycle, "connectivity")});

  const CoreProveResult honest = proveCore(
      cycle, IdAssignment::identity(cycle.numVertices()), *makeConnectivity());
  corpus.push_back(
      {"verify/cycle12",
       net::encodeVerifyRequest(6, cycle, "connectivity", honest.labels,
                                false)});
  corpus.push_back(
      {"open/cycle12",
       net::encodeVerifyRequest(7, cycle, "connectivity", honest.labels,
                                true)});

  std::vector<EdgeLabelEdit> edits;
  edits.push_back({EdgeId{2}, honest.labels[2]});
  edits.push_back({EdgeId{5}, ""});
  corpus.push_back({"reverify", net::encodeReverifyRequest(8, 1, edits)});
  corpus.push_back({"close", net::encodeCloseSessionRequest(9, 1)});
  return corpus;
}

std::size_t pick(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(n) - 1));
}

/// How the iteration built its hostile bytes from the corpus entry.
enum class Shape {
  kMutateFramed,   ///< mutate the framed bytes (length prefix included)
  kMutatePayload,  ///< mutate the body, frame the mutant correctly
  kTruncate,       ///< well-formed prefix cut mid-frame
  kLengthLie,      ///< correct body, corrupted length prefix
  kCount,
};

const char* shapeName(Shape s) {
  switch (s) {
    case Shape::kMutateFramed:
      return "mutateFramed";
    case Shape::kMutatePayload:
      return "mutatePayload";
    case Shape::kTruncate:
      return "truncate";
    case Shape::kLengthLie:
      return "lengthLie";
    case Shape::kCount:
      break;
  }
  return "?";
}

struct IterationOutcome {
  std::size_t corpusIdx = 0;
  Shape shape = Shape::kMutateFramed;
  FuzzKind kind = FuzzKind::kBitFlip;
  std::string bytes;       ///< what goes on the wire
  const char* result = ""; ///< human classification
  bool violation = false;
  std::string detail;
};

/// Builds iteration `iter`'s hostile bytes.  Deterministic in (seed, iter).
IterationOutcome buildIteration(std::uint64_t seed, std::uint64_t iter,
                                const std::vector<CorpusEntry>& corpus) {
  IterationOutcome out;
  FuzzMutator mut(seed ^ (kGolden * (iter + 1)));
  Rng& rng = mut.rng();

  out.corpusIdx = pick(rng, corpus.size());
  const std::string& payload = corpus[out.corpusIdx].payload;
  const std::string& donor =
      corpus[(out.corpusIdx + 1 + pick(rng, corpus.size() - 1)) %
             corpus.size()]
          .payload;
  out.shape = static_cast<Shape>(pick(rng, static_cast<std::size_t>(
                                              Shape::kCount)));
  switch (out.shape) {
    case Shape::kMutateFramed:
      out.bytes = mut.mutateRandom(net::encodeFrame(payload), donor, &out.kind);
      break;
    case Shape::kMutatePayload:
      out.bytes = net::encodeFrame(mut.mutateRandom(payload, donor, &out.kind));
      break;
    case Shape::kTruncate: {
      const std::string framed = net::encodeFrame(payload);
      out.bytes = framed.substr(0, pick(rng, framed.size()));
      break;
    }
    case Shape::kLengthLie: {
      // Keep the body, lie about its length: shorter (trailing bytes bleed
      // into the next frame), longer (the parser waits), or hostile-huge
      // (must reject before any reserve).
      Encoder enc;
      const int lie = rng.uniformInt(0, 2);
      if (lie == 0) {
        enc.u64(1 + pick(rng, payload.size()));
      } else if (lie == 1) {
        enc.u64(payload.size() + 1 + pick(rng, 4096));
      } else {
        enc.u64((std::uint64_t{1} << 32) + pick(rng, 1 << 20));
      }
      enc.raw(payload);
      out.bytes = enc.str();
      break;
    }
    case Shape::kCount:
      break;
  }
  return out;
}

/// In-process contract: parser + request decoder survive `bytes` fed in
/// rng-sized slices; failures are typed; buffering never exceeds the cap.
void checkInProcess(IterationOutcome& out, Rng& rng) {
  net::FrameParser parser(kFuzzMaxFrame);
  std::vector<std::string> frames;
  std::size_t off = 0;
  bool parserFailed = false;
  try {
    while (off < out.bytes.size()) {
      const std::size_t step =
          1 + pick(rng, std::min<std::size_t>(out.bytes.size() - off, 4096));
      if (!parser.feed(std::string_view(out.bytes).substr(off, step),
                       frames)) {
        parserFailed = true;
        break;
      }
      off += step;
      if (parser.bufferedBytes() > kFuzzMaxFrame) {
        out.violation = true;
        out.detail = "parser buffered " +
                     std::to_string(parser.bufferedBytes()) +
                     " bytes, above the " + std::to_string(kFuzzMaxFrame) +
                     " cap";
        return;
      }
    }
  } catch (const std::exception& e) {
    out.violation = true;
    out.detail = std::string("parser threw: ") + e.what();
    return;
  }

  std::size_t decoded = 0, rejectedBodies = 0;
  for (const std::string& frame : frames) {
    try {
      (void)net::decodeRequest(frame, kFuzzMaxVertices);
      ++decoded;
    } catch (const DecodeError&) {
      ++rejectedBodies;
    } catch (const net::WireError&) {
      ++rejectedBodies;
    } catch (const std::exception& e) {
      out.violation = true;
      out.detail = std::string("decodeRequest escaped the protocol error "
                               "types: ") +
                   e.what();
      return;
    }
  }
  out.result = parserFailed ? "parserRejected"
               : frames.empty()
                   ? "incomplete"
                   : (rejectedBodies > 0 ? "bodyRejected" : "decoded");
  (void)decoded;
}

/// Live-server contract: hostile bytes then a ping then a padding flood;
/// the connection must terminate (reply or close) within the timeout, and
/// a fresh connection must still be served.
void checkLiveServer(IterationOutcome& out, net::WireServer& server) {
  try {
    net::WireClient client;
    client.connect("127.0.0.1", server.port(), 5000);
    client.sendRaw(out.bytes);
    const std::uint64_t pingId = client.sendPing();
    // A length lie larger than what was sent makes the server WAIT —
    // correct behaviour, not a hang.  The flood feeds any such frame to
    // completion; its 0xff filler then breaks the length varint, so the
    // connection always reaches a terminal state.
    client.sendRaw(std::string(2 * kFuzzMaxFrame, '\xff'));
    try {
      (void)client.wait(pingId);
      out.result = "serverReplied";
    } catch (const std::exception& e) {
      if (std::strstr(e.what(), "timeout") != nullptr) {
        out.violation = true;
        out.detail = std::string("server hang: ") + e.what();
        return;
      }
      out.result = "connClosed";
    }
  } catch (const std::exception& e) {
    // connect/send-level failure still counts as a terminal state.
    out.result = "connClosed";
    (void)e;
  }

  // Liveness: whatever the hostile connection did, a fresh one works.
  try {
    net::WireClient probe;
    probe.connect("127.0.0.1", server.port(), 5000);
    if (!probe.ping().ok()) {
      out.violation = true;
      out.detail = "liveness probe ping not ok";
    }
  } catch (const std::exception& e) {
    out.violation = true;
    out.detail = std::string("liveness probe failed: ") + e.what();
  }
}

void dumpArtifact(const std::string& dir, std::uint64_t seed,
                  std::uint64_t iter, const CorpusEntry& entry,
                  const IterationOutcome& out) {
  const std::string stem = dir + "/crash-wire-seed" + std::to_string(seed) +
                           "-iter" + std::to_string(iter);
  {
    std::ofstream bin(stem + ".bin", std::ios::binary);
    bin.write(out.bytes.data(), static_cast<std::streamsize>(out.bytes.size()));
  }
  std::ofstream meta(stem + ".txt");
  meta << "seed " << seed << "\niter " << iter << "\ncorpus " << entry.name
       << "\nshape " << shapeName(out.shape) << "\nkind "
       << fuzzKindName(out.kind) << "\ndetail " << out.detail
       << "\nreplay fuzz_wire --seed " << seed << " --replay " << iter
       << "\n";
  std::fprintf(stderr, "VIOLATION at iter %llu: wrote %s.{bin,txt}\n",
               static_cast<unsigned long long>(iter), stem.c_str());
}

void hexDump(const std::string& bytes) {
  for (std::size_t i = 0; i < bytes.size() && i < 512; ++i) {
    std::printf("%02x%s", static_cast<unsigned char>(bytes[i]),
                (i + 1) % 16 == 0 ? "\n" : " ");
  }
  if (bytes.size() % 16 != 0 || bytes.size() > 512) std::printf("\n");
  if (bytes.size() > 512) std::printf("(... %zu bytes)\n", bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 42;
  std::uint64_t iters = 100000;
  double budgetSeconds = 0;
  std::string artifactDir = ".";
  std::string progressFile;
  std::uint64_t serverEvery = 101;  // prime stride: shapes x corpus rotate
  long long replayIter = -1;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    auto needsValue = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (needsValue("--seed")) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--iters")) {
      iters = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--budget-seconds")) {
      budgetSeconds = std::strtod(argv[++i], nullptr);
    } else if (needsValue("--artifact-dir")) {
      artifactDir = argv[++i];
    } else if (needsValue("--progress-file")) {
      progressFile = argv[++i];
    } else if (needsValue("--server-every")) {
      serverEvery = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--replay")) {
      replayIter = std::strtoll(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_wire [--seed N] [--iters N] "
                   "[--budget-seconds S] [--artifact-dir DIR] "
                   "[--progress-file PATH] [--server-every N] "
                   "[--replay ITER] [--quiet]\n");
      return 2;
    }
  }

  const std::vector<CorpusEntry> corpus = buildCorpus();

  // One live server for the whole campaign: hostile connections come and
  // go, the server must shrug all of them off.
  std::unique_ptr<net::WireServer> server;
  auto ensureServer = [&]() -> net::WireServer& {
    if (!server) {
      net::WireServerOptions sopts;
      sopts.maxFrameBytes = kFuzzMaxFrame;
      sopts.maxVertices = kFuzzMaxVertices;
      sopts.service.numThreads = 1;
      sopts.service.numaAware = false;
      server = std::make_unique<net::WireServer>(sopts);
      server->start();
    }
    return *server;
  };

  if (replayIter >= 0) {
    IterationOutcome out =
        buildIteration(seed, static_cast<std::uint64_t>(replayIter), corpus);
    Rng feedRng(seed ^ (kGolden * (static_cast<std::uint64_t>(replayIter) + 1)) ^
                0x5eedu);
    checkInProcess(out, feedRng);
    const char* inProc = out.result;
    const bool inProcViolation = out.violation;
    const std::string inProcDetail = out.detail;
    if (!out.violation) checkLiveServer(out, ensureServer());
    std::printf("replay seed=%llu iter=%lld\n",
                static_cast<unsigned long long>(seed), replayIter);
    std::printf("corpus   %s\nshape    %s\nkind     %s\n",
                corpus[out.corpusIdx].name, shapeName(out.shape),
                fuzzKindName(out.kind));
    std::printf("inproc   %s%s%s\nserver   %s\n", inProc,
                inProcViolation ? " VIOLATION: " : "",
                inProcViolation ? inProcDetail.c_str() : "", out.result);
    std::printf("bytes    %zu:\n", out.bytes.size());
    hexDump(out.bytes);
    if (out.violation) std::printf("detail   %s\n", out.detail.c_str());
    if (server) server->stop();
    return out.violation ? 1 : 0;
  }

  const auto start = std::chrono::steady_clock::now();
  std::uint64_t done = 0, violations = 0, serverRuns = 0;
  std::uint64_t byShape[static_cast<int>(Shape::kCount)] = {};
  std::uint64_t byResult[4] = {};  // parserRejected/incomplete/bodyRejected/decoded

  for (std::uint64_t iter = 0; iter < iters; ++iter) {
    if (budgetSeconds > 0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start;
      if (elapsed.count() >= budgetSeconds) break;
    }
    if (!progressFile.empty()) {
      std::ofstream p(progressFile, std::ios::trunc);
      p << seed << " " << iter << "\n";
    }
    IterationOutcome out = buildIteration(seed, iter, corpus);
    ++byShape[static_cast<int>(out.shape)];
    Rng feedRng(seed ^ (kGolden * (iter + 1)) ^ 0x5eedu);
    checkInProcess(out, feedRng);
    if (!out.violation) {
      if (std::strcmp(out.result, "parserRejected") == 0) ++byResult[0];
      if (std::strcmp(out.result, "incomplete") == 0) ++byResult[1];
      if (std::strcmp(out.result, "bodyRejected") == 0) ++byResult[2];
      if (std::strcmp(out.result, "decoded") == 0) ++byResult[3];
      if (serverEvery > 0 && iter % serverEvery == 0) {
        ++serverRuns;
        checkLiveServer(out, ensureServer());
      }
    }
    ++done;
    if (out.violation) {
      ++violations;
      dumpArtifact(artifactDir, seed, iter, corpus[out.corpusIdx], out);
    }
  }

  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  if (!quiet) {
    std::printf("fuzz_wire: %llu mutants in %.1fs (seed %llu), %llu live-"
                "server probes\n",
                static_cast<unsigned long long>(done), elapsed.count(),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(serverRuns));
    for (int s = 0; s < static_cast<int>(Shape::kCount); ++s) {
      std::printf("  shape %-13s %llu\n", shapeName(static_cast<Shape>(s)),
                  static_cast<unsigned long long>(byShape[s]));
    }
    std::printf("  parserRejected %llu, incomplete %llu, bodyRejected %llu, "
                "decoded %llu\n",
                static_cast<unsigned long long>(byResult[0]),
                static_cast<unsigned long long>(byResult[1]),
                static_cast<unsigned long long>(byResult[2]),
                static_cast<unsigned long long>(byResult[3]));
    std::printf("  violations: %llu\n",
                static_cast<unsigned long long>(violations));
  }
  if (server) server->stop();
  if (!progressFile.empty()) std::remove(progressFile.c_str());
  return violations == 0 ? 0 : 1;
}
