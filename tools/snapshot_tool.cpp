// snapshot_tool — command-line driver for warm-start plan snapshots.
//
//   snapshot_tool persist <edgelist> <dir>
//       Build the prover plan for the graph from scratch and persist it
//       into <dir> as a content-addressed snapshot file.  Prints the file
//       name so scripts can check it into artifact stores.
//
//   snapshot_tool prove <edgelist> <property> <out>
//                 [--snapshot-dir DIR] [--require-hit]
//       Run one prove through LaneCertService (the same path the daemon
//       takes) and write certificates one hex line per edge — the exact
//       format lanecert_cli emits, so warm and cold runs byte-compare with
//       `cmp`.  With --snapshot-dir the service loads/persists snapshots;
//       with --require-hit the tool exits 3 unless the plan came from a
//       snapshot (snapshotHits >= 1 and no fresh plan build).
//
//   snapshot_tool info <snapshot-file>
//       Decode and print the snapshot header (no graph cross-check).
//
// Used by scripts/verify.sh --ci (exit class 10): persist a fixed graph's
// plan, prove warm with --require-hit, prove cold without a snapshot dir,
// and byte-compare the two certificate files.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "graph/io.hpp"
#include "net/protocol.hpp"
#include "serve/service.hpp"
#include "snapshot/snapshot.hpp"

using namespace lanecert;

namespace {

Graph loadGraph(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return fromEdgeList(buf.str());
}

std::string toHex(const std::string& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(digits[c >> 4]);
    out.push_back(digits[c & 0xf]);
  }
  return out;
}

int cmdPersist(const std::string& file, const std::string& dir) {
  const Graph g = loadGraph(file);
  const ProvePlan plan = buildProvePlan(g);
  const snapshot::SnapshotKey key = snapshot::planSnapshotKey(g, nullptr);
  snapshot::SnapshotStore store(dir);
  if (!store.persistNow(key, plan)) {
    std::fprintf(stderr, "persist failed (is %s writable?)\n", dir.c_str());
    return 1;
  }
  std::printf("%s\n", snapshot::snapshotFileName(key).c_str());
  return 0;
}

int cmdProve(const std::string& file, const std::string& propName,
             const std::string& outFile, const std::string& snapshotDir,
             bool requireHit) {
  const Graph g = loadGraph(file);
  const PropertyPtr prop = net::propertyByName(propName);
  if (!prop) {
    std::fprintf(stderr, "unknown property '%s'\n", propName.c_str());
    return 2;
  }

  serve::ServiceOptions opts;
  opts.numThreads = 2;
  opts.snapshotDir = snapshotDir;
  serve::LaneCertService service(opts);

  serve::ProveJob job;
  job.graph = g;
  job.ids = IdAssignment::identity(g.numVertices());
  job.property = prop;
  const CoreProveResult r = service.submitProve(std::move(job)).get();
  service.flushSnapshotWrites();
  const serve::ServiceStats stats = service.stats();

  if (!r.propertyHolds) {
    std::fprintf(stderr, "property '%s' does NOT hold\n",
                 prop->name().c_str());
    return 1;
  }
  std::ofstream out(outFile);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", outFile.c_str());
    return 2;
  }
  for (const std::string& l : r.labels) out << toHex(l) << '\n';
  std::fprintf(stderr,
               "proved '%s': %d labels; snapshotHits=%llu "
               "snapshotMisses=%llu planBuilds=%llu loadMs=%.3f\n",
               prop->name().c_str(), g.numEdges(),
               static_cast<unsigned long long>(stats.snapshotHits),
               static_cast<unsigned long long>(stats.snapshotMisses),
               static_cast<unsigned long long>(stats.planBuilds),
               stats.snapshotLoadMs);
  if (requireHit && (stats.snapshotHits < 1 || stats.planBuilds > 0)) {
    std::fprintf(stderr, "--require-hit: plan was NOT loaded from snapshot\n");
    return 3;
  }
  return 0;
}

int cmdInfo(const std::string& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", file.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string image = buf.str();
  if (image.size() < snapshot::kHeaderBytes ||
      image.compare(0, snapshot::kMagic.size(), snapshot::kMagic) != 0) {
    std::fprintf(stderr, "not a snapshot file\n");
    return 1;
  }
  auto u32 = [&](std::size_t off) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(image[off + i]))
           << (8 * i);
    }
    return v;
  };
  auto u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(image[off + i]))
           << (8 * i);
    }
    return v;
  };
  std::printf("formatVersion %u sections %u contentHash %016llx "
              "paramsFingerprint %016llx bytes %zu\n",
              u32(8), u32(12), static_cast<unsigned long long>(u64(16)),
              static_cast<unsigned long long>(u64(24)), image.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 3 && args[0] == "persist") {
      return cmdPersist(args[1], args[2]);
    }
    if (args.size() >= 4 && args[0] == "prove") {
      std::string snapshotDir;
      bool requireHit = false;
      for (std::size_t i = 4; i < args.size(); ++i) {
        if (args[i] == "--snapshot-dir" && i + 1 < args.size()) {
          snapshotDir = args[++i];
        } else if (args[i] == "--require-hit") {
          requireHit = true;
        } else {
          std::fprintf(stderr, "unknown option '%s'\n", args[i].c_str());
          return 2;
        }
      }
      return cmdProve(args[1], args[2], args[3], snapshotDir, requireHit);
    }
    if (args.size() == 2 && args[0] == "info") return cmdInfo(args[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  std::fprintf(
      stderr,
      "usage:\n"
      "  snapshot_tool persist <edgelist> <dir>\n"
      "  snapshot_tool prove <edgelist> <property> <labels-out>\n"
      "                [--snapshot-dir DIR] [--require-hit]\n"
      "  snapshot_tool info <snapshot-file>\n");
  return 2;
}
