// dist_verify — multi-process verification driver and byte-identity checker.
//
// Generates a bounded-pathwidth workload, proves it once in-process, then
// runs the SAME certificate through the multi-process distributed verifier
// (src/dist) and the single-process VerifySession side by side:
//
//   1. full sweep on both, compare every result field;
//   2. `--rounds` random edit batches (honest rewrites mixed with
//      corruptions, endpoints deliberately straddling partition
//      boundaries), incrementally re-verified on both, compared per round.
//
// Any divergence — rejected sets, accept bit, label-bit statistics — exits
// nonzero with a diagnostic.  That makes this binary the CI dist-smoke
// gate: "dist_verify --n 65536 --k 4" passing IS the byte-identity claim
// over that workload.
//
// Fault drill: `--die W` arms worker W to SIGKILL itself mid-sweep (after
// `--die-after` vertex checks).  The run must still produce identical
// results — the coordinator re-forks the partition and replays — and the
// tool fails if no death was actually observed, so the drill can't pass
// vacuously.
//
// Usage:
//   dist_verify [--n N] [--k K] [--threads T] [--seed S] [--rounds R]
//               [--edits-per-round E] [--die W] [--die-after V] [--quiet]

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/verify_session.hpp"
#include "dist/dist_verifier.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"

namespace {

using namespace lanecert;

struct ToolOptions {
  int n = 4096;
  int k = 4;             // worker processes
  int threads = 1;       // threads per worker AND reference sweep threads
  std::uint64_t seed = 42;
  int rounds = 4;        // incremental edit rounds after the sweep
  int editsPerRound = 8;
  int dieWorker = -1;    // arm worker W to SIGKILL itself mid-sweep
  long long dieAfter = 16;
  bool quiet = false;
};

/// Field-by-field comparison of the two result structs; prints the first
/// divergence and returns false.  `rejecting` is order-significant — both
/// sides emit ascending vertex ids, so plain vector equality is the
/// byte-identity check.
bool sameResult(const SimulationResult& a, const SimulationResult& b,
                const char* where) {
  if (a.allAccept != b.allAccept) {
    std::fprintf(stderr, "dist_verify: %s: allAccept %d vs %d\n", where,
                 a.allAccept, b.allAccept);
    return false;
  }
  if (a.rejecting != b.rejecting) {
    std::fprintf(stderr,
                 "dist_verify: %s: rejecting sets differ (%zu vs %zu)\n",
                 where, a.rejecting.size(), b.rejecting.size());
    return false;
  }
  if (a.maxLabelBits != b.maxLabelBits ||
      a.totalLabelBits != b.totalLabelBits) {
    std::fprintf(stderr, "dist_verify: %s: label-bit stats differ\n", where);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ToolOptions opts;
  for (int i = 1; i < argc; ++i) {
    auto needsValue = [&](const char* flag) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return true;
    };
    if (needsValue("--n")) {
      opts.n = std::atoi(argv[++i]);
    } else if (needsValue("--k")) {
      opts.k = std::atoi(argv[++i]);
    } else if (needsValue("--threads")) {
      opts.threads = std::atoi(argv[++i]);
    } else if (needsValue("--seed")) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (needsValue("--rounds")) {
      opts.rounds = std::atoi(argv[++i]);
    } else if (needsValue("--edits-per-round")) {
      opts.editsPerRound = std::atoi(argv[++i]);
    } else if (needsValue("--die")) {
      opts.dieWorker = std::atoi(argv[++i]);
    } else if (needsValue("--die-after")) {
      opts.dieAfter = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opts.quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: dist_verify [--n N] [--k K] [--threads T] "
                   "[--seed S] [--rounds R] [--edits-per-round E] [--die W] "
                   "[--die-after V] [--quiet]\n");
      return 2;
    }
  }

  try {
    // Workload: bounded-pathwidth graph with its generator-supplied
    // representation, proved once — both verifiers then consume the same
    // honest certificate.
    Rng rng(opts.seed);
    const BoundedPathwidthGraph bp =
        randomBoundedPathwidth(opts.n, 2, 0.4, rng);
    const IntervalRepresentation rep =
        IntervalRepresentation::fromPairs(bp.intervals);
    const IdAssignment ids =
        IdAssignment::random(bp.graph.numVertices(), opts.seed + 1);
    const PropertyPtr prop = makeConnectivity();
    const CoreProveResult proved =
        proveCore(bp.graph, ids, *prop, &rep, opts.threads);

    dist::DistOptions dopt;
    dopt.workers = opts.k;
    dopt.threadsPerWorker = opts.threads;
    dopt.dieWorker = opts.dieWorker;
    dopt.dieAfterVertices = opts.dieAfter;
    dist::DistVerifier dv(bp.graph, ids, proved.labels, "connectivity", {},
                          dopt);
    VerifySession ref(bp.graph, ids, proved.labels, makeConnectivity());

    const SimulationResult sweepDist = dv.verifyAll();
    const SimulationResult sweepRef = ref.verifyAll(opts.threads);
    if (!sameResult(sweepRef, sweepDist, "sweep")) return 1;
    if (proved.propertyHolds != sweepDist.allAccept) {
      std::fprintf(stderr, "dist_verify: sweep disagrees with the prover\n");
      return 1;
    }

    // Edit rounds: each batch mixes honest rewrites with single-byte
    // corruptions and deliberately includes one edge crossing a partition
    // boundary when K > 1, so the dirty set routes to two owners.
    std::mt19937_64 ed(opts.seed ^ 0x9e3779b97f4a7c15ULL);
    for (int round = 0; round < opts.rounds; ++round) {
      std::vector<EdgeLabelEdit> edits;
      for (int j = 0; j < opts.editsPerRound; ++j) {
        const auto e =
            static_cast<EdgeId>(ed() % static_cast<std::uint64_t>(
                                           bp.graph.numEdges()));
        EdgeLabelEdit el;
        el.edge = e;
        el.bytes = proved.labels[static_cast<std::size_t>(e)];
        if (ed() % 2 && !el.bytes.empty()) el.bytes[0] ^= 0x5a;
        edits.push_back(std::move(el));
      }
      if (dv.workers() > 1) {
        // One edge whose endpoints live in different partitions, if any
        // exists: the routing path worth exercising every round.
        const auto [b1, e1] = dv.partitionRange(1);
        for (EdgeId e = 0; e < bp.graph.numEdges(); ++e) {
          const Edge& eg = bp.graph.edge(e);
          const auto u = static_cast<std::size_t>(eg.u);
          const auto v = static_cast<std::size_t>(eg.v);
          if ((u < b1) != (v < b1)) {
            EdgeLabelEdit el;
            el.edge = e;
            el.bytes = proved.labels[static_cast<std::size_t>(e)];
            edits.push_back(std::move(el));
            break;
          }
        }
        (void)e1;
      }
      const SimulationResult rDist = dv.reverifyEdits(edits);
      const SimulationResult rRef = ref.reverifyEdits(edits, opts.threads);
      char where[32];
      std::snprintf(where, sizeof where, "round %d", round);
      if (!sameResult(rRef, rDist, where)) return 1;
    }

    const dist::DistStats& ds = dv.stats();
    if (opts.dieWorker >= 0 && ds.workerDeaths == 0) {
      std::fprintf(stderr,
                   "dist_verify: --die %d armed but no worker death was "
                   "observed\n",
                   opts.dieWorker);
      return 1;
    }
    if (!opts.quiet) {
      std::printf(
          "dist_verify: ok  n=%d k=%d threads=%d rounds=%d  "
          "sweeps=%llu reverifies=%llu deaths=%llu restarts=%llu "
          "routed=%llu skipped=%llu\n",
          opts.n, opts.k, opts.threads, opts.rounds,
          static_cast<unsigned long long>(ds.sweeps),
          static_cast<unsigned long long>(ds.reverifies),
          static_cast<unsigned long long>(ds.workerDeaths),
          static_cast<unsigned long long>(ds.workerRestarts),
          static_cast<unsigned long long>(ds.routedBatches),
          static_cast<unsigned long long>(ds.skippedWorkers));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist_verify: %s\n", e.what());
    return 1;
  }
}
