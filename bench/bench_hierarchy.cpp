// Experiment E3: hierarchical-decomposition depth (Observation 5.5).
// The measured depth must stay <= 2w for every instance and — crucially —
// be INDEPENDENT of n (contrast with tree decompositions, whose depth is
// necessarily Ω(log n); Section 3 explains why this matters).

#include <benchmark/benchmark.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"

namespace {

using namespace lanecert;

void BM_HierarchyDepth(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  int maxDepth = 0;
  int lanes = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(static_cast<std::uint64_t>(state.iterations()) * 17 + 3);
    const auto bp = randomBoundedPathwidth(n, k, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const LanePlan plan = buildLanePlan(bp.graph, rep);
    const ConstructionSequence seq = buildConstruction(bp.graph, rep, plan.lanes);
    state.ResumeTiming();
    const HierarchyResult hier = buildHierarchy(seq);
    benchmark::DoNotOptimize(hier.edgeOwner);
    maxDepth = std::max(maxDepth, hier.hierarchy.depth());
    lanes = std::max(lanes, seq.numLanes());
  }
  state.counters["depth"] = maxDepth;
  state.counters["bound_2w"] = 2 * lanes;
  state.counters["lanes"] = lanes;
}
BENCHMARK(BM_HierarchyDepth)
    ->ArgsProduct({{1, 2, 3}, {100, 1000, 10000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
