// Wire-server throughput: the full socket path (frame codec, poll loop,
// admission control, stream scatter) under a sustained mixed workload —
// the in-process serving numbers live in bench_serve; the delta between
// the two is the price of the network boundary.
//
// BM_Net/<conns> drives <conns> loopback connections, each keeping a
// pipeline of 8 requests in flight over a 50/30/20 prove/verify/reverify
// mix against a rotating set of 4 distinct 24-vertex graphs (k = 2, the
// load_driver CI workload).  Proves repeat, so the result cache coalesces
// and the stream memo scatters — the serving hot path.  Counters report
// throughput (rps) and client-observed latency percentiles; real time is
// the gated quantity (BENCH_net.json, enforced by scripts/check_bench.py
// --require BM_Net/).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/prover.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"

namespace {

using namespace lanecert;

constexpr int kPipeline = 8;
constexpr int kRequestsPerConn = 48;

struct NetFixture {
  std::unique_ptr<net::WireServer> server;
  std::vector<Graph> graphs;
  std::vector<std::vector<std::string>> labels;  ///< honest, per graph

  NetFixture() {
    net::WireServerOptions opts;
    opts.service.numaAware = false;
    server = std::make_unique<net::WireServer>(opts);
    server->start();
    Rng rng(42);
    for (int i = 0; i < 4; ++i) {
      Graph g = randomBoundedPathwidth(24, 2, 0.4, rng).graph;
      labels.push_back(
          proveCore(g, IdAssignment::identity(g.numVertices()),
                    *makeConnectivity())
              .labels);
      graphs.push_back(std::move(g));
    }
  }
  ~NetFixture() { server->stop(); }
};

NetFixture& fixture() {
  static NetFixture fx;
  return fx;
}

/// One connection's batch: a session, then kRequestsPerConn mixed ops with
/// kPipeline in flight.  Appends client-observed latencies to `latencyMs`.
void runConnBatch(NetFixture& fx, int threadIdx, std::vector<double>* latencyMs) {
  using Clock = std::chrono::steady_clock;
  net::WireClient client;
  client.connect("127.0.0.1", fx.server->port());
  const std::size_t w0 = static_cast<std::size_t>(threadIdx) % fx.graphs.size();
  const net::WireClient::Reply opened = client.wait(
      client.sendOpenSession(fx.graphs[w0], "connectivity", fx.labels[w0]));
  if (!opened.ok()) throw std::runtime_error("bench: open-session failed");
  const std::uint64_t session = net::decodeSessionHandle(opened.body);

  Rng rng(1000 + static_cast<std::uint64_t>(threadIdx));
  std::vector<std::pair<std::uint64_t, Clock::time_point>> inflight;
  int sent = 0;
  auto sendOne = [&]() {
    const std::size_t w = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(fx.graphs.size()) - 1));
    const int r = rng.uniformInt(0, 9);
    std::uint64_t id;
    if (r < 5) {
      id = client.sendProve(fx.graphs[w], "connectivity");
    } else if (r < 8) {
      id = client.sendVerify(fx.graphs[w], "connectivity", fx.labels[w]);
    } else {
      std::vector<EdgeLabelEdit> edits;
      const auto edge =
          static_cast<EdgeId>(rng.uniformInt(0, fx.graphs[w0].numEdges() - 1));
      edits.push_back({edge, fx.labels[w0][static_cast<std::size_t>(edge)]});
      id = client.sendReverify(session, edits);
    }
    inflight.emplace_back(id, Clock::now());
    ++sent;
  };
  while (sent < kRequestsPerConn || !inflight.empty()) {
    while (sent < kRequestsPerConn &&
           static_cast<int>(inflight.size()) < kPipeline) {
      sendOne();
    }
    const auto [id, t0] = inflight.front();
    inflight.erase(inflight.begin());
    const net::WireClient::Reply reply = client.wait(id);
    if (!reply.ok()) throw std::runtime_error("bench: request failed");
    latencyMs->push_back(
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
  }
  client.wait(client.sendCloseSession(session));
}

void BM_Net(benchmark::State& state) {
  NetFixture& fx = fixture();
  const int conns = static_cast<int>(state.range(0));
  std::vector<double> all;
  std::uint64_t completed = 0;
  for (auto _ : state) {
    std::vector<std::vector<double>> lat(static_cast<std::size_t>(conns));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(conns));
    for (int t = 0; t < conns; ++t) {
      threads.emplace_back(runConnBatch, std::ref(fx), t, &lat[t]);
    }
    for (std::thread& th : threads) th.join();
    for (const auto& v : lat) {
      completed += v.size();
      all.insert(all.end(), v.begin(), v.end());
    }
  }
  std::sort(all.begin(), all.end());
  auto pct = [&](double p) {
    return all.empty() ? 0.0
                       : all[static_cast<std::size_t>(std::min<double>(
                             static_cast<double>(all.size()) - 1,
                             p * static_cast<double>(all.size())))];
  };
  state.counters["rps"] = benchmark::Counter(static_cast<double>(completed),
                                             benchmark::Counter::kIsRate);
  state.counters["p50_ms"] = pct(0.50);
  state.counters["p99_ms"] = pct(0.99);
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
}

BENCHMARK(BM_Net)->Arg(1)->Arg(4)->Arg(8)->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
