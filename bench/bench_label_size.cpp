// Experiment E1: certificate size vs n — the paper's headline.
//
// Compares, on random connected pathwidth-<=k graphs:
//   * core    — this paper's scheme, Θ(log n) bits      (Theorem 1)
//   * fmrt    — the [FMR+24]-style baseline, Θ(log² n)  (prior work)
//   * trivial — ship-the-graph, Θ(n log n)
// Reported counters are MAX label bits.  Shapes to observe: `trivial`
// explodes linearly, `fmrt` grows with log²(n), `core` stays essentially
// flat (its constant — the paper's f/g/h — dominates at these sizes).

#include <benchmark/benchmark.h>

#include "baseline/fmrt.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/classic.hpp"

namespace {

using namespace lanecert;

BoundedPathwidthGraph instance(int k, int n, std::uint64_t seed) {
  Rng rng(seed);
  return randomBoundedPathwidth(n, k, 0.4, rng);
}

void BM_CoreLabelSize(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto bp = instance(k, n, 7);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(n, 9);
  std::size_t maxBits = 0;
  double totalBits = 0;
  for (auto _ : state) {
    const auto r = proveCore(bp.graph, ids, *makeConnectivity(), &rep);
    maxBits = r.stats.maxLabelBits;
    totalBits = static_cast<double>(r.stats.totalLabelBits);
    benchmark::DoNotOptimize(r.labels);
  }
  state.counters["maxLabelBits"] = static_cast<double>(maxBits);
  state.counters["avgLabelBits"] = totalBits / bp.graph.numEdges();
}
BENCHMARK(BM_CoreLabelSize)
    ->ArgsProduct({{1, 2}, {64, 256, 1024, 4096}})
    ->Unit(benchmark::kMillisecond);

// Fixed-structure pathwidth-2 family (cycles): here the k-dependent
// constants cannot drift with n, so the O(log n) claim shows as an
// essentially flat row (only the identifier width grows).
void BM_CoreLabelSizeCycles(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = cycleGraph(n);
  const auto ids = IdAssignment::random(n, 9);
  std::size_t maxBits = 0;
  for (auto _ : state) {
    const auto r = proveCore(g, ids, *makeCycleProperty());
    maxBits = r.stats.maxLabelBits;
    benchmark::DoNotOptimize(r.labels);
  }
  state.counters["maxLabelBits"] = static_cast<double>(maxBits);
}
BENCHMARK(BM_CoreLabelSizeCycles)
    ->Arg(64)->Arg(1024)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_FmrtLabelSize(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  const auto bp = instance(k, n, 7);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(n, 9);
  std::size_t maxBits = 0;
  double totalBits = 0;
  for (auto _ : state) {
    const auto r = proveFmrt(bp.graph, ids, *makeConnectivity(), &rep);
    maxBits = r.maxLabelBits;
    totalBits = static_cast<double>(r.totalLabelBits);
    benchmark::DoNotOptimize(r.labels);
  }
  state.counters["maxLabelBits"] = static_cast<double>(maxBits);
  state.counters["avgLabelBits"] = totalBits / n;
}
BENCHMARK(BM_FmrtLabelSize)
    ->ArgsProduct({{1, 2}, {64, 256, 1024, 4096}})
    ->Unit(benchmark::kMillisecond);

void BM_TrivialLabelSize(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto bp = instance(2, n, 7);
  const auto ids = IdAssignment::random(n, 9);
  std::size_t maxBits = 0;
  for (auto _ : state) {
    const auto labels = proveTrivial(bp.graph, ids);
    maxBits = labels[0].size() * 8;
    benchmark::DoNotOptimize(labels);
  }
  state.counters["maxLabelBits"] = static_cast<double>(maxBits);
}
BENCHMARK(BM_TrivialLabelSize)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
