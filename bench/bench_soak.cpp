// Sustained-edit soak: one long-lived verification session under a
// continuous edit stream, with background prove traffic sharing the pool —
// the serving layer's steady state, not its cold start.
//
// Each benchmark iteration is ONE edit→verdict round trip through the
// service (submitReverify + future.get()), manually timed, so the reported
// real_time IS the steady-state reverify latency.  The stream alternates
// corrupt (honest label + unique garbage suffix — size-changing, the worst
// case for epoch storage) and restore (honest bytes back), rotating over
// the edge set; every 8th round a prove job rides the same pool.  The
// result cache is OFF: a soak that replays memoized verdicts measures map
// lookups, not verification.
//
// What a long run must show (bench/README.md has the 10-minute recipe):
//
//  * latency: no drift — the 10-min mean matches the smoke-run mean;
//  * memory: bounded — `epoch_slots` stays at its compaction bound and
//    `rss_delta_mb` flatlines instead of creeping with iteration count
//    (the session auto-compacts epoch garbage, the sweep cache evicts);
//  * correctness: every corrupt round rejects, every restore round
//    accepts, for the whole run (drift in either direction aborts the
//    bench via SkipWithError).
//
// `/64` is the smoke leg (scripts/verify.sh --ci runs it for a few
// seconds); `/512` is the recorded soak workload in BENCH_soak.json.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "serve/service.hpp"

namespace {

using namespace lanecert;

/// Resident set size in KiB (0 where /proc is unavailable) — the soak's
/// memory-creep needle.
long readRssKb() {
#ifdef __linux__
  std::ifstream status("/proc/self/status");
  std::string word;
  while (status >> word) {
    if (word == "VmRSS:") {
      long kb = 0;
      status >> kb;
      return kb;
    }
  }
#endif
  return 0;
}

struct SoakFixture {
  Graph graph;
  IdAssignment ids;
  std::shared_ptr<const std::vector<std::string>> labels;  ///< honest
};

const SoakFixture& fixtureFor(int n) {
  static std::vector<std::unique_ptr<SoakFixture>> cache;
  for (const auto& f : cache) {
    if (f->graph.numVertices() == n) return *f;
  }
  Rng rng(47);
  auto bp = randomBoundedPathwidth(n, 2, 0.4, rng);
  auto fx = std::make_unique<SoakFixture>();
  fx->ids = IdAssignment::random(n, 17);
  fx->labels = std::make_shared<const std::vector<std::string>>(
      proveCore(bp.graph, fx->ids, *makeConnectivity(), nullptr, 1).labels);
  fx->graph = std::move(bp.graph);
  cache.push_back(std::move(fx));
  return *cache.back();
}

void BM_Soak(benchmark::State& state) {
  const auto& fx = fixtureFor(static_cast<int>(state.range(0)));
  const auto numEdges = static_cast<std::uint64_t>(fx.graph.numEdges());

  serve::ServiceOptions opts;
  opts.enableResultCache = false;  // measure verification, not replay
  serve::LaneCertService service(opts);
  const std::uint64_t sid = service.openVerifySession(
      serve::VerifyJob{fx.graph, fx.ids, fx.labels, makeConnectivity(), {}});
  // Initial full sweep (untimed): the soak measures the steady state.
  service.submitReverify(serve::ReverifyJob{sid, {}}).get();

  const long rssBefore = readRssKb();
  std::deque<std::shared_future<CoreProveResult>> proveBacklog;
  std::uint64_t round = 0;
  std::uint64_t proves = 0;
  for (auto _ : state) {
    // Background prove traffic on the same pool (untimed submission; its
    // interference with the reverify round trip is exactly what the
    // latency number should include).
    if (round % 8 == 0) {
      proveBacklog.push_back(service.submitProve(
          serve::ProveJob{fx.graph, fx.ids, makeForest(), {}}));
      ++proves;
      while (proveBacklog.size() > 4) {
        proveBacklog.front().get();
        proveBacklog.pop_front();
      }
    }
    const bool corrupt = (round % 2) == 0;
    const auto e = static_cast<EdgeId>((round / 2) % numEdges);
    const std::string& honest = (*fx.labels)[static_cast<std::size_t>(e)];
    std::vector<EdgeLabelEdit> batch;
    batch.push_back(
        {e, corrupt ? honest + "-soak-" + std::to_string(round) : honest});

    const auto t0 = std::chrono::steady_clock::now();
    const SimulationResult r =
        service.submitReverify(serve::ReverifyJob{sid, std::move(batch)})
            .get();
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    state.SetIterationTime(dt.count());

    // Verdict drift is a soak FAILURE, not noise: a corrupted label must
    // reject its endpoints, a restored one must heal the whole graph.
    if (corrupt == r.allAccept) {
      state.SkipWithError(corrupt ? "corrupt round accepted"
                                  : "restore round rejected");
      break;
    }
    ++round;
  }
  for (auto& f : proveBacklog) f.get();
  service.drain();

  const SweepCacheStats cs = service.sessionCacheStats(sid);
  const double probes =
      static_cast<double>(cs.hits + cs.misses + cs.memoHits);
  state.counters["edits_per_s"] = benchmark::Counter(
      static_cast<double>(round), benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      probes > 0 ? static_cast<double>(cs.hits + cs.memoHits) / probes : 0.0;
  state.counters["cache_entries"] = static_cast<double>(cs.entries);
  state.counters["cache_evictions"] = static_cast<double>(cs.evictions);
  state.counters["epoch_slots"] =
      static_cast<double>(service.sessionEpochSlots(sid));
  state.counters["proves"] = static_cast<double>(proves);
  state.counters["rss_delta_mb"] =
      static_cast<double>(readRssKb() - rssBefore) / 1024.0;
}
// Manual time = the submit→verdict round trip only; the smoke filter in
// scripts/verify.sh matches /64.
BENCHMARK(BM_Soak)->Arg(64)->Arg(512)
    ->Unit(benchmark::kMillisecond)->UseManualTime();

}  // namespace

BENCHMARK_MAIN();
