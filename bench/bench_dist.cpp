// Multi-process distributed verification (src/dist) end to end: shared
// image construction + K forked owner partitions + the merged sweep,
// measured cold (construct + verifyAll per iteration — the whole lifecycle
// a DistVerifyJob pays), plus the warm incremental path.
//
// BM_DistVerify sweeps n at K = 4: the acceptance point is n = 1048576
// completing on the reference container, archived in bench/BENCH_dist.json.
// BM_DistVerifyWorkers sweeps K at fixed n — the verdict is byte-identical
// at every K (tests/test_dist.cpp), so this curve is pure process overhead:
// fork + image open + control round-trips.
//
// The /64 point exists for the verify.sh bench smoke (1-iteration filter
// on small size args); the large points deliberately use worker counts
// outside the smoke filter's arg list.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "dist/dist_verifier.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"
#include "runtime/label_store.hpp"

namespace {

using namespace lanecert;

struct DistInstance {
  Graph g;
  IdAssignment ids;
  std::vector<std::string> labels;
  double labelMb = 0;
};

/// Proving is far more expensive than any single measured iteration at the
/// large sizes, so instances are proved ONCE per n and cached for every
/// benchmark that asks — width-1, low-density workload keeps the 1M-vertex
/// certificate inside the reference container's memory.
const DistInstance& distInstance(int n) {
  static std::map<int, DistInstance> cache;
  const auto it = cache.find(n);
  if (it != cache.end()) return it->second;
  Rng rng(91);
  BoundedPathwidthGraph bp = randomBoundedPathwidth(n, 1, 0.3, rng);
  const IntervalRepresentation rep =
      IntervalRepresentation::fromPairs(bp.intervals);
  IdAssignment ids = IdAssignment::random(n, 17);
  CoreProveResult proved = proveCore(bp.graph, ids, *makeConnectivity(), &rep, 1);
  DistInstance inst{std::move(bp.graph), std::move(ids),
                    std::move(proved.labels)};
  for (const std::string& l : inst.labels) {
    inst.labelMb += static_cast<double>(l.size());
  }
  inst.labelMb /= 1024.0 * 1024.0;
  return cache.emplace(n, std::move(inst)).first->second;
}

void BM_DistVerify(benchmark::State& state) {
  const DistInstance& inst = distInstance(static_cast<int>(state.range(0)));
  dist::DistOptions opts;
  opts.workers = static_cast<int>(state.range(1));
  for (auto _ : state) {
    dist::DistVerifier dv(inst.g, inst.ids, inst.labels, "connectivity", {},
                          opts);
    const SimulationResult res = dv.verifyAll();
    if (!res.allAccept) {
      state.SkipWithError("honest certificate rejected");
      break;
    }
    benchmark::DoNotOptimize(res.totalLabelBits);
  }
  state.counters["workers"] = static_cast<double>(opts.workers);
  state.counters["label_mb"] = inst.labelMb;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistVerify)
    ->Args({64, 4})
    ->Args({16384, 4})
    ->Args({65536, 4})
    ->Args({1048576, 4})
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05)
    ->UseRealTime();

void BM_DistVerifyWorkers(benchmark::State& state) {
  // Fixed n, sweeping K.  On a single-core container the sweep itself
  // cannot speed up, so the deltas between these points price the process
  // machinery alone.
  const DistInstance& inst = distInstance(65536);
  dist::DistOptions opts;
  opts.workers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    dist::DistVerifier dv(inst.g, inst.ids, inst.labels, "connectivity", {},
                          opts);
    const SimulationResult res = dv.verifyAll();
    benchmark::DoNotOptimize(res.allAccept);
  }
  state.counters["workers"] = static_cast<double>(opts.workers);
}
BENCHMARK(BM_DistVerifyWorkers)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05)
    ->UseRealTime();

void BM_DistReverify(benchmark::State& state) {
  // The warm incremental path: one live DistVerifier absorbing edit
  // batches that dirty a handful of edges, vs the cold sweep above.  Each
  // batch is an honest same-size rewrite (steady-state in-place store path
  // on both the coordinator's store and every worker's), and the dirty set
  // routes to at most two owners — the skippedWorkers counter in
  // tests/test_dist.cpp pins that.
  const DistInstance& inst = distInstance(static_cast<int>(state.range(0)));
  dist::DistOptions opts;
  opts.workers = 4;
  dist::DistVerifier dv(inst.g, inst.ids, inst.labels, "connectivity", {},
                        opts);
  (void)dv.verifyAll();  // warm sweep, untimed
  std::vector<EdgeLabelEdit> batch;
  const auto m = static_cast<std::size_t>(inst.g.numEdges());
  for (std::size_t i = 0; i < 8; ++i) {
    const auto e = static_cast<EdgeId>(i * (m / 8));
    batch.push_back({e, inst.labels[static_cast<std::size_t>(e)]});
  }
  (void)dv.reverifyEdits(batch);  // move labels into store-owned slots
  for (auto _ : state) {
    for (EdgeLabelEdit& ed : batch) ed.bytes[0] ^= 0x01;
    const SimulationResult res = dv.reverifyEdits(batch);
    benchmark::DoNotOptimize(res.allAccept);
  }
  state.counters["dirty_edges"] = static_cast<double>(batch.size());
}
BENCHMARK(BM_DistReverify)
    ->Arg(16384)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.05)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
