// Experiment E9: ablations of the paper's design choices.
//
// Why does the paper construct its OWN lane partition (Prop 4.6) instead of
// just greedy interval coloring (Obs 4.3) + shortest-path routing?  On the
// adversarial "tuning fork" instance — a two-armed spider whose arms share
// the time axis — greedy first-fit interleaves the arms, so consecutive lane
// vertices sit on opposite arms and every completion edge funnels through
// the handle: naive congestion Θ(n).  Prop 4.6's recursive
// construction keeps congestion O(1) on the same input.  On benign random
// instances the two behave similarly — also reported, honestly.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "lane/embedding.hpp"
#include "lane/lane_partition.hpp"

namespace {

using namespace lanecert;

/// Congestion of routing all completion edges of `lanes` via BFS paths.
int naiveCongestion(const Graph& g, const LanePartition& lanes) {
  std::vector<int> congestion(static_cast<std::size_t>(g.numEdges()), 0);
  for (const CompletionEdge& ce : completionEdges(lanes, /*withInit=*/true)) {
    if (g.hasEdge(ce.u, ce.v)) continue;
    const auto path = shortestPath(g, ce.u, ce.v);
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      ++congestion[static_cast<std::size_t>(g.findEdge(path[i], path[i + 1]))];
    }
  }
  return congestion.empty()
             ? 0
             : *std::max_element(congestion.begin(), congestion.end());
}

/// Tuning fork: a 2-arm spider whose arms co-occupy the time axis —
/// arm A vertex i -> [2i, 2i+2], arm B vertex i -> [2i+1, 2i+3] (width 4).
/// Greedy first-fit provably interleaves the arms inside each lane, so
/// consecutive lane vertices sit on OPPOSITE arms and every lane edge's
/// shortest path crosses the handle edges at the center: naive congestion
/// is Θ(n), while Prop 4.6 (which picks its own lanes) stays O(1).
std::pair<Graph, IntervalRepresentation> tuningFork(int m) {
  const Graph g = spiderGraph(2, m);
  std::vector<Interval> iv(static_cast<std::size_t>(g.numVertices()));
  iv[0] = Interval{0, 1};  // the handle/center
  for (int i = 0; i < m; ++i) {
    iv[static_cast<std::size_t>(1 + i)] = Interval{2 * i, 2 * i + 2};          // arm A
    iv[static_cast<std::size_t>(1 + m + i)] = Interval{2 * i + 1, 2 * i + 3};  // arm B
  }
  return {g, IntervalRepresentation(std::move(iv))};
}

void BM_AdversarialTuningFork(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto [g, rep] = tuningFork(m);
  int prop46 = 0;
  int prop46Lanes = 0;
  int naiveGreedy = 0;
  int greedyLanes = 0;
  for (auto _ : state) {
    const LanePlan plan = buildLanePlan(g, rep);
    prop46 = plan.maxCongestion;
    prop46Lanes = plan.lanes.numLanes();
    const LanePartition greedy = greedyLanePartition(rep);
    greedyLanes = greedy.numLanes();
    naiveGreedy = naiveCongestion(g, greedy);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["n"] = 2 * m;
  state.counters["prop46Congestion"] = prop46;          // stays O(1)
  state.counters["naiveGreedyCongestion"] = naiveGreedy; // grows ~ n
  state.counters["prop46Lanes"] = prop46Lanes;
  state.counters["greedyLanes"] = greedyLanes;
}
BENCHMARK(BM_AdversarialTuningFork)
    ->Arg(25)->Arg(100)->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

void BM_BenignRandomInstances(benchmark::State& state) {
  // On random bounded-pathwidth graphs both strategies are cheap; reported
  // for honesty (the paper's construction buys the worst-case guarantee).
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto bp = randomBoundedPathwidth(n, 2, 0.3, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  int prop46 = 0;
  int naiveGreedy = 0;
  for (auto _ : state) {
    const LanePlan plan = buildLanePlan(bp.graph, rep);
    prop46 = plan.maxCongestion;
    naiveGreedy = naiveCongestion(bp.graph, greedyLanePartition(rep));
    benchmark::DoNotOptimize(plan);
  }
  state.counters["prop46Congestion"] = prop46;
  state.counters["naiveGreedyCongestion"] = naiveGreedy;
}
BENCHMARK(BM_BenignRandomInstances)
    ->Arg(400)->Arg(1600)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
