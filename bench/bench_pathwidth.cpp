// Experiment E8: the pathwidth substrate — exact subset-DP solver runtime
// vs n, and the greedy heuristic's width quality relative to the exact
// optimum on small random graphs.

#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "pathwidth/pathwidth.hpp"

namespace {

using namespace lanecert;

void BM_ExactSolver(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = randomConnected(static_cast<VertexId>(n), 0.25, rng);
  int pw = -1;
  for (auto _ : state) {
    const auto layout = exactVertexSeparation(g, 24);
    pw = layout->cost;
    benchmark::DoNotOptimize(layout);
  }
  state.counters["pathwidth"] = pw;
  state.SetComplexityN(n);
}
BENCHMARK(BM_ExactSolver)->DenseRange(10, 20, 2)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_GreedyHeuristic(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(4);
  const Graph g = randomConnected(static_cast<VertexId>(n), 0.15, rng);
  int cost = -1;
  for (auto _ : state) {
    const Layout l = greedyVertexSeparation(g);
    cost = l.cost;
    benchmark::DoNotOptimize(l);
  }
  state.counters["greedyWidth"] = cost;
}
BENCHMARK(BM_GreedyHeuristic)->Arg(50)->Arg(150)->Unit(benchmark::kMillisecond);

void BM_GreedyQualityGap(benchmark::State& state) {
  // Average (greedy - exact) gap over random 14-vertex graphs.
  int gap = 0;
  int cases = 0;
  for (auto _ : state) {
    Rng rng(static_cast<std::uint64_t>(cases) * 7 + 1);
    const Graph g = randomConnected(14, 0.22, rng);
    const auto exact = exactVertexSeparation(g);
    const Layout greedy = greedyVertexSeparation(g);
    gap += greedy.cost - exact->cost;
    ++cases;
    benchmark::DoNotOptimize(greedy);
  }
  state.counters["avgGap"] = static_cast<double>(gap) / cases;
}
BENCHMARK(BM_GreedyQualityGap)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
