// Experiment E5: homomorphism classes are constant-size (Prop 2.4 / 6.1).
// For each bundled property we push an ever-longer graph through the
// algebra at a fixed boundary and report the max encoded state size —
// which must not grow with the number of composed vertices.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "mso/properties.hpp"
#include "mso/property.hpp"

namespace {

using namespace lanecert;

PropertyPtr propertyByIndex(int idx) {
  switch (idx) {
    case 0: return makeColorability(2);
    case 1: return makeColorability(3);
    case 2: return makeForest();
    case 3: return makeConnectivity();
    case 4: return makePathProperty();
    case 5: return makeCycleProperty();
    case 6: return makePerfectMatching();
    case 7: return makeVertexCover(3);
    case 8: return makeHamiltonianPath();
    case 9: return makeTriangleFree();
    case 10: return makeMaxDegree(3);
    default: return makeEdgeParity(7, 0);
  }
}

void BM_HomClassSize(benchmark::State& state) {
  const PropertyPtr prop = propertyByIndex(static_cast<int>(state.range(0)));
  const int steps = static_cast<int>(state.range(1));
  std::size_t maxBits = 0;
  for (auto _ : state) {
    // Boundary of 3 slots, sliding along a "ladder rail" pattern.
    HomState s = prop->addVertex(prop->addVertex(prop->empty()));
    s = prop->addEdge(s, 0, 1, kRealEdge);
    for (int i = 0; i < steps; ++i) {
      s = prop->addVertex(s);
      s = prop->addEdge(s, 1, 2, kRealEdge);
      if (i % 3 == 0) s = prop->addEdge(s, 0, 2, kRealEdge);
      s = prop->forget(s, 0);
      maxBits = std::max(maxBits, s.encodedBits());
    }
    benchmark::DoNotOptimize(s);
  }
  state.SetLabel(prop->name());
  state.counters["maxStateBits"] = static_cast<double>(maxBits);
}
BENCHMARK(BM_HomClassSize)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, {100, 10000}});

}  // namespace

BENCHMARK_MAIN();
