// Experiment E4: prover and verifier running time vs n at fixed k.
// Both should scale near-linearly (the per-vertex verifier does constant
// work for fixed k; the prover is dominated by the Prop 4.6/5.6 pipeline).
//
// BM_VerifierThreads adds the parallel dimension: the verifier is strictly
// local, so the sweep shards vertices over a thread pool and should scale
// near-linearly in cores (see bench/README.md for the measurement recipe).

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/algebra.hpp"
#include "core/prover.hpp"
#include "core/scheme.hpp"
#include "core/simd.hpp"
#include "core/verify_session.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/pointer.hpp"
#include "runtime/label_store.hpp"
#include "serve/service.hpp"

namespace {

using namespace lanecert;

struct Instance {
  Graph g;
  IntervalRepresentation rep;
  IdAssignment ids;
};

Instance instance(int k, int n) {
  Rng rng(41);
  auto bp = randomBoundedPathwidth(n, k, 0.4, rng);
  Instance out{std::move(bp.graph),
               IntervalRepresentation::fromPairs(bp.intervals),
               IdAssignment::random(n, 13)};
  return out;
}

void BM_Prover(benchmark::State& state) {
  const auto inst = instance(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto r = proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep);
    benchmark::DoNotOptimize(r.labels);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Prover)->RangeMultiplier(4)->Range(64, 4096)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_ProverThreads(benchmark::State& state) {
  // Fixed n, sweeping the prover's numThreads knob: the hom-state waves,
  // record encoding, and label assembly all shard over the deterministic
  // executor, so wall time should drop near-linearly in cores (results are
  // bit-identical for every t; tests/test_prover_par.cpp asserts that).
  const auto inst = instance(2, 4096);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto r =
        proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep, threads);
    benchmark::DoNotOptimize(r.labels);
  }
  state.counters["threads"] = static_cast<double>(threads);
}
BENCHMARK(BM_ProverThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ProverHead(benchmark::State& state) {
  // The prover's serial head in isolation: interval representation (given)
  // -> lane plan -> construction sequence -> hierarchy, plus the Prop 2.2
  // pointer BFS.  This was the Amdahl limit once the waves scaled; the
  // pipelined prover overlaps it with wave execution, and
  // BENCH_prover_head.json archives the single-thread head cost itself
  // (epoch-stamped plan-builder lookups, O(subtree) T-node wraps, deferred
  // terminal materialization).
  const auto inst = instance(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const ProvePlan plan = buildProvePlan(inst.g, &inst.rep);
    const auto ptr = provePointer(inst.g, inst.ids, plan.seq.initialPath[0]);
    benchmark::DoNotOptimize(plan.hier);
    benchmark::DoNotOptimize(ptr);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProverHead)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_ProverArena(benchmark::State& state) {
  // The single-thread allocation dimension at the BENCH_prover.json sizes:
  // flat CSR subtree storage + arena scratch + cached entry encodings vs
  // the PR 1 baseline's map-backed, re-encoding prover (see
  // bench/BENCH_prover.json for the recorded before/after wall times).
  const auto inst = instance(2, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    const auto r =
        proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep, 1);
    benchmark::DoNotOptimize(r.labels);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ProverArena)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_Verifier(benchmark::State& state) {
  const auto inst = instance(2, static_cast<int>(state.range(0)));
  const auto proved = proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep);
  for (auto _ : state) {
    // Fresh verifier per iteration: a ONE-SHOT sweep with a cold sweep
    // cache, the simulateEdgeScheme caller's cost.  (The cache still pays
    // off within the single sweep — upper chain entries are shared by most
    // vertices; warm REPEAT sweeps are what BM_Reverify's session
    // measures.)
    const auto verifier = makeCoreVerifier(makeConnectivity());
    const auto res = simulateEdgeScheme(inst.g, inst.ids, proved.labels, verifier);
    benchmark::DoNotOptimize(res.allAccept);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_Verifier)->RangeMultiplier(4)->Range(64, 4096)
    ->Unit(benchmark::kMillisecond)->Complexity();

void BM_VerifierThreads(benchmark::State& state) {
  // Fixed n, sweeping the numThreads knob: per-vertex checks are
  // independent, so throughput should scale near-linearly in cores.
  const auto inst = instance(2, 4096);
  const auto proved = proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep);
  const SimulationOptions opts{static_cast<int>(state.range(0))};
  for (auto _ : state) {
    const auto verifier = makeCoreVerifier(makeConnectivity());  // cold cache
    const auto res =
        simulateEdgeScheme(inst.g, inst.ids, proved.labels, verifier, opts);
    benchmark::DoNotOptimize(res.allAccept);
  }
  state.counters["threads"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_VerifierThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_SessionCacheStats(benchmark::State& state) {
  // Sweep-cache behaviour at thread scale: a warm LaneCertService verify
  // session absorbing edit batches that dirty 1/16 of the edges per
  // iteration, with the pool sized by arg 0.  Wall time is secondary; what
  // the thread-scaling CI job archives is the counters — memo_hits should
  // dominate (reads take no stripe lock), and stripe_contention measures
  // how often concurrent probes actually collided on a stripe.  Flat
  // contention from t=8 to t=16 is the evidence that the striped cache,
  // not the locks, carries the scaling.
  const auto inst = instance(2, 1024);
  const auto proved =
      proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep);

  serve::ServiceOptions opts;
  opts.numThreads = static_cast<int>(state.range(0));
  opts.enableResultCache = false;  // measure sweeps, not replay
  serve::LaneCertService service(opts);
  const std::uint64_t sid = service.openVerifySession(serve::VerifyJob{
      inst.g, inst.ids,
      std::make_shared<const std::vector<std::string>>(proved.labels),
      makeConnectivity(), {}});
  service.submitReverify(serve::ReverifyJob{sid, {}}).get();  // warm sweep

  const auto m = static_cast<std::size_t>(inst.g.numEdges());
  std::uint64_t round = 0;
  for (auto _ : state) {
    // Corrupt every 16th label on even rounds, restore on odd: each batch
    // re-verifies the dirty rows concurrently across the pool, probing the
    // shared sweep cache from every worker.
    const bool corrupt = (round % 2) == 0;
    std::vector<EdgeLabelEdit> batch;
    for (std::size_t e = (round / 2) % 16; e < m; e += 16) {
      const std::string& honest = proved.labels[e];
      batch.push_back({static_cast<EdgeId>(e),
                       corrupt ? honest + "x" : honest});
    }
    const auto res =
        service.submitReverify(serve::ReverifyJob{sid, std::move(batch)})
            .get();
    if (corrupt == res.allAccept) {
      state.SkipWithError(corrupt ? "corrupt batch accepted"
                                  : "restore batch rejected");
      break;
    }
    ++round;
  }
  service.drain();

  const SweepCacheStats cs = service.sessionCacheStats(sid);
  const double probes = static_cast<double>(cs.hits + cs.misses + cs.memoHits);
  state.counters["threads"] = static_cast<double>(state.range(0));
  state.counters["memo_hits"] = static_cast<double>(cs.memoHits);
  state.counters["stripe_contention"] = static_cast<double>(cs.stripeContention);
  state.counters["cache_hit_rate"] =
      probes > 0 ? static_cast<double>(cs.hits + cs.memoHits) / probes : 0.0;
  state.counters["cache_entries"] = static_cast<double>(cs.entries);
  service.closeVerifySession(sid);
}
BENCHMARK(BM_SessionCacheStats)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_Reverify(benchmark::State& state) {
  // Incremental re-verification: a warm VerifySession absorbing edit
  // batches that touch a fraction of the edges (arg 1, in permille), vs
  // BM_Verifier's full sweep at the same n (arg 0).  Each iteration flips
  // one byte of every touched label — size-preserving after the first
  // batch, so steady state exercises the in-place store path — and
  // re-checks only the dirty endpoints.  BENCH_reverify.json archives the
  // wall times; the 1%-dirty point at n = 4096 is the acceptance gate
  // (>= 5x over the full sweep).
  const auto inst = instance(2, static_cast<int>(state.range(0)));
  const auto proved =
      proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep);
  VerifySession session(inst.g, inst.ids, proved.labels, makeConnectivity());
  (void)session.verifyAll(1);  // warm sweep, untimed

  const auto m = static_cast<std::size_t>(inst.g.numEdges());
  const auto permille = static_cast<std::size_t>(state.range(1));
  const std::size_t dirtyEdges =
      std::max<std::size_t>(1, m * permille / 1000);
  std::vector<EdgeLabelEdit> batch;
  const std::size_t stride = m / dirtyEdges;
  for (std::size_t i = 0; i < dirtyEdges; ++i) {
    const auto e = static_cast<EdgeId>(i * stride);
    batch.push_back(EdgeLabelEdit{
        e, proved.labels[static_cast<std::size_t>(e)]});
  }
  // Untimed warm batch: moves the touched labels into store-owned epoch
  // slots (the one-time byte copy), so the timed loop measures the steady
  // state — in-place rewrites + dirty-row re-verification.
  (void)session.reverifyEdits(batch, 1);
  for (auto _ : state) {
    for (EdgeLabelEdit& ed : batch) ed.bytes[0] ^= 0x01;  // corrupt / restore
    const auto res = session.reverifyEdits(batch, 1);
    benchmark::DoNotOptimize(res.allAccept);
  }
  state.counters["dirty_edges"] = static_cast<double>(dirtyEdges);
}
BENCHMARK(BM_Reverify)
    ->Args({1024, 1})
    ->Args({1024, 10})
    ->Args({1024, 100})
    ->Args({1024, 1000})
    ->Args({4096, 1})
    ->Args({4096, 10})
    ->Args({4096, 100})
    ->Args({4096, 1000})
    ->Unit(benchmark::kMillisecond);

void BM_AlgebraFold(benchmark::State& state) {
  // The SIMD-kernel microbench: the baseP replay and the parentMerge fold
  // in isolation, over a synthetic chain at the arg'd lane width.  These
  // two folds are exactly what a chain-entry validation replays, so this
  // isolates the struct-of-arrays kernels (core/simd.hpp) from decode and
  // sweep bookkeeping.  The `simd` counter records which backend the
  // binary was configured with (1 = omp-simd, 0 = scalar fallback) so
  // archived runs of the two builds are distinguishable.
  const auto prop = makeConnectivity();
  const LaneAlgebra alg(*prop);
  const int width = static_cast<int>(state.range(0));
  std::vector<int> lanes;
  std::vector<std::uint64_t> pathIds;
  std::vector<std::uint8_t> realFlags;
  for (int l = 0; l < width; ++l) {
    lanes.push_back(l);
    pathIds.push_back(static_cast<std::uint64_t>(1000 + l));
    if (l + 1 < width) realFlags.push_back(l % 2 == 0 ? 1 : 0);
  }
  // Children to fold onto the path: one single-lane edge per lane, its
  // IN-terminal glued onto that lane's path terminal (parentMerge demotes
  // the glued vertex each round, exactly like a T-entry replay).
  for (auto _ : state) {
    NodeData cur = alg.baseP(lanes, pathIds, realFlags);
    for (int l = 0; l < width; ++l) {
      const NodeData child =
          alg.baseE(l, static_cast<std::uint64_t>(1000 + l),
                    static_cast<std::uint64_t>(2000 + l), /*real=*/true);
      cur = alg.parentMerge(child, cur);
    }
    benchmark::DoNotOptimize(cur.state);
  }
  state.counters["simd"] = simd::kEnabled ? 1.0 : 0.0;
  state.counters["width"] = static_cast<double>(width);
}
BENCHMARK(BM_AlgebraFold)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

void BM_SingleVertexVerification(benchmark::State& state) {
  // The cost of ONE vertex's local check (what a real processor pays).
  const auto inst = instance(2, 1024);
  const auto proved = proveCore(inst.g, inst.ids, *makeConnectivity(), &inst.rep);
  const auto verifier = makeCoreVerifier(makeConnectivity());
  std::vector<std::string_view> incident;
  for (const Arc& a : inst.g.arcs(0)) {
    incident.push_back(proved.labels[static_cast<std::size_t>(a.edge)]);
  }
  EdgeView view;
  view.selfId = inst.ids.id(0);
  view.incidentLabels = incident;
  for (auto _ : state) {
    benchmark::DoNotOptimize(verifier(view));
  }
}
BENCHMARK(BM_SingleVertexVerification)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
