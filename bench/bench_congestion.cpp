// Experiment E2: Proposition 4.6 in practice — number of lanes and
// embedding congestion, measured against the closed-form bounds f(k) and
// h(k).  The theoretical bounds explode combinatorially; the measured
// values stay tiny, which is why the scheme is practical at all.

#include <benchmark/benchmark.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "lane/bounds.hpp"
#include "lane/embedding.hpp"

namespace {

using namespace lanecert;

void BM_LanePlan(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = static_cast<int>(state.range(1));
  int maxLanes = 0;
  int maxCong = 0;
  int width = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(static_cast<std::uint64_t>(state.iterations()) * 31 + 5);
    const auto bp = randomBoundedPathwidth(n, k, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    state.ResumeTiming();
    const LanePlan plan = buildLanePlan(bp.graph, rep);
    benchmark::DoNotOptimize(plan.embeddings);
    maxLanes = std::max(maxLanes, plan.lanes.numLanes());
    maxCong = std::max(maxCong, plan.maxCongestion);
    width = std::max(width, plan.width);
  }
  state.counters["measuredLanes"] = maxLanes;
  state.counters["boundLanes_f"] = static_cast<double>(fLanes(width));
  state.counters["measuredCongestion"] = maxCong;
  state.counters["boundCongestion_h"] = static_cast<double>(hCongestion(width));
  state.counters["width"] = width;
}
BENCHMARK(BM_LanePlan)
    ->ArgsProduct({{1, 2, 3, 4}, {200, 2000}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
