// Experiments E6 + E7: soundness measurements.
//
// E7 (the Ω(log n) lower-bound pair): the is-path verifier must reject
// EVERY labeling of a cycle — we report the rejection rate over adversarial
// labelings derived from honest path certificates (must be 100%).
//
// E6: corruption-detection rate of the verifier under each mutation kind on
// TRUE instances (an accepted mutant would merely be an alternative valid
// proof; the rate shows how brittle certificates are to tampering), plus
// cross-property label transplants (must always be rejected).

#include <benchmark/benchmark.h>

#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"

namespace {

using namespace lanecert;

void BM_PathsVsCycles(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph cycle = cycleGraph(n);
  const Graph path = pathGraph(n);
  const auto ids = IdAssignment::random(n, 3);
  const auto verifier = makeCoreVerifier(makePathProperty());
  const auto honest = proveCore(path, ids, *makePathProperty());
  Rng rng(9);
  int rejected = 0;
  int total = 0;
  for (auto _ : state) {
    auto labels = honest.labels;
    labels.push_back(labels[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(labels.size()) - 1))]);
    std::shuffle(labels.begin(), labels.end(), rng.engine());
    (void)mutateLabels(labels, static_cast<Mutation>(total % 5), rng);
    rejected += simulateEdgeScheme(cycle, ids, labels, verifier).allAccept ? 0 : 1;
    ++total;
  }
  state.counters["rejectionRatePct"] = 100.0 * rejected / total;
  state.counters["acceptedForgeries"] = total - rejected;  // must be 0
}
BENCHMARK(BM_PathsVsCycles)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MutationDetection(benchmark::State& state) {
  const auto kind = static_cast<Mutation>(state.range(0));
  const Graph g = cycleGraph(24);
  const auto ids = IdAssignment::random(24, 5);
  const auto honest = proveCore(g, ids, *makeCycleProperty());
  const auto verifier = makeCoreVerifier(makeCycleProperty());
  Rng rng(7);
  int rejected = 0;
  int applied = 0;
  for (auto _ : state) {
    auto labels = honest.labels;
    if (!mutateLabels(labels, kind, rng)) continue;
    ++applied;
    rejected += simulateEdgeScheme(g, ids, labels, verifier).allAccept ? 0 : 1;
  }
  static const char* names[] = {"flipBit", "swapPair", "truncate", "duplicate",
                                "scramble"};
  state.SetLabel(names[state.range(0)]);
  state.counters["detectionRatePct"] =
      applied == 0 ? 0 : 100.0 * rejected / applied;
}
BENCHMARK(BM_MutationDetection)->DenseRange(0, 4)->Unit(benchmark::kMillisecond);

void BM_CrossPropertyTransplant(benchmark::State& state) {
  // Labels proving connectivity fed to verifiers of stronger properties on
  // instances where those properties FAIL: must always be rejected.
  const Graph g = cycleGraph(9);  // odd cycle: not bipartite, not a forest
  const auto ids = IdAssignment::random(9, 11);
  const auto honest = proveCore(g, ids, *makeConnectivity());
  const auto bip = makeCoreVerifier(makeColorability(2));
  const auto forest = makeCoreVerifier(makeForest());
  int accepted = 0;
  int total = 0;
  for (auto _ : state) {
    accepted += simulateEdgeScheme(g, ids, honest.labels, bip).allAccept;
    accepted += simulateEdgeScheme(g, ids, honest.labels, forest).allAccept;
    total += 2;
  }
  state.counters["acceptedForgeries"] = accepted;  // must be 0
  state.counters["attempts"] = total;
}
BENCHMARK(BM_CrossPropertyTransplant)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
