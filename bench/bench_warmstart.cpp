// Experiment E9: warm-start persistence and the parallel interval
// decomposition.
//
// BM_ColdStart measures what a restarted server pays on its first prove
// over a known graph: `buildProvePlan` from scratch (greedy interval
// decomposition -> lane plan -> construction sequence -> hierarchy).
// BM_WarmStart measures the snapshot alternative: mmap + header/CRC
// validation + structural decode of the persisted plan
// (SnapshotStore::tryLoad).  Both report "time to plan-ready" — the part
// of first-prove latency warm-start removes; the property-dependent
// labeling waves that follow are identical on both paths, which is why the
// bench frames the comparison at the plan boundary.
//
// BM_IntervalRep scans thread counts over the parallelized
// `bestIntervalRepresentation` (deterministic shard-ordered merge,
// bit-identical to serial at every thread count — tests/test_pathwidth.cpp
// holds that line; this bench measures what the determinism costs).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/prover.hpp"
#include "graph/generators.hpp"
#include "pathwidth/pathwidth.hpp"
#include "runtime/executor.hpp"
#include "snapshot/snapshot.hpp"

namespace {

using namespace lanecert;

Graph benchGraph(int n) {
  Rng rng(91);
  return randomBoundedPathwidth(static_cast<VertexId>(n), 6, 0.5, rng).graph;
}

// One scratch directory per process, removed at exit.
const std::string& snapshotDir() {
  static const std::string dir = [] {
    auto d = std::filesystem::temp_directory_path() /
             ("lanecert-bench-warmstart-" + std::to_string(::getpid()));
    std::filesystem::create_directories(d);
    std::atexit([] {
      std::error_code ec;
      std::filesystem::remove_all(
          std::filesystem::temp_directory_path() /
              ("lanecert-bench-warmstart-" + std::to_string(::getpid())),
          ec);
    });
    return d.string();
  }();
  return dir;
}

void BM_ColdStart(benchmark::State& state) {
  const Graph g = benchGraph(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    ProvePlan plan = buildProvePlan(g);
    benchmark::DoNotOptimize(plan);
  }
  state.counters["n"] = static_cast<double>(g.numVertices());
}
BENCHMARK(BM_ColdStart)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_WarmStart(benchmark::State& state) {
  const Graph g = benchGraph(static_cast<int>(state.range(0)));
  snapshot::SnapshotStore store(snapshotDir());
  store.persistNow(snapshot::planSnapshotKey(g, nullptr), buildProvePlan(g));
  for (auto _ : state) {
    auto plan = store.tryLoad(g, nullptr);
    if (plan == nullptr) state.SkipWithError("snapshot load failed");
    benchmark::DoNotOptimize(plan);
  }
  state.counters["n"] = static_cast<double>(g.numVertices());
  state.counters["hits"] = static_cast<double>(store.stats().hits);
}
BENCHMARK(BM_WarmStart)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_IntervalRep(benchmark::State& state) {
  const Graph g = benchGraph(4096);
  ParallelExecutor exec(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    IntervalRepresentation rep = bestIntervalRepresentation(g, 18, &exec);
    benchmark::DoNotOptimize(rep);
  }
  state.counters["threads"] = static_cast<double>(exec.numThreads());
}
BENCHMARK(BM_IntervalRep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
