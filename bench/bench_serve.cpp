// Batched serving throughput: one LaneCertService multiplexing a mixed
// request stream over one shared pool, vs the sequential one-job-at-a-time
// baseline (each request served by a standalone proveCore /
// simulateEdgeScheme call, the status-quo usage without a serving layer).
//
// The workload models a catalog server: graphs of n in {64, 512, 4096}
// (k = 2, the bench_runtime family), each requested under two properties
// (connectivity, forest) plus a verification of its connectivity labeling —
// and every request arrives TWICE (retries / fan-in duplicates, which real
// front-ends produce and a serving layer is expected to absorb).
//
// The benchmark argument is the largest catalog size included, so
// `/64` is a smoke-sized workload and `/4096` the full mixed one recorded
// in bench/BENCH_serve.json.

#include <benchmark/benchmark.h>

#include <future>
#include <string>
#include <vector>

#include "core/scheme.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "serve/service.hpp"

namespace {

using namespace lanecert;

struct CatalogEntry {
  Graph graph;
  IdAssignment ids;
  /// Precomputed (untimed) connectivity labeling, shared so that neither
  /// side of the comparison pays a payload copy per request.
  std::shared_ptr<const std::vector<std::string>> connectivityLabels;
};

const std::vector<CatalogEntry>& catalogUpTo(int maxN) {
  static std::vector<CatalogEntry> full = [] {
    std::vector<CatalogEntry> out;
    for (int n : {64, 512, 4096}) {
      Rng rng(41);
      auto bp = randomBoundedPathwidth(n, 2, 0.4, rng);
      CatalogEntry e{std::move(bp.graph), IdAssignment::random(n, 13), {}};
      e.connectivityLabels = std::make_shared<const std::vector<std::string>>(
          proveCore(e.graph, e.ids, *makeConnectivity(), nullptr, 1).labels);
      out.push_back(std::move(e));
    }
    return out;
  }();
  static std::vector<std::vector<CatalogEntry>> prefixes = [] {
    std::vector<std::vector<CatalogEntry>> out(full.size());
    for (std::size_t i = 0; i < full.size(); ++i) {
      out[i].assign(full.begin(), full.begin() + static_cast<long>(i) + 1);
    }
    return out;
  }();
  std::size_t idx = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full[i].graph.numVertices() <= maxN) idx = i;
  }
  return prefixes[idx];
}

constexpr int kDuplicates = 2;  ///< every request arrives twice

std::size_t requestCount(const std::vector<CatalogEntry>& catalog) {
  return catalog.size() * 3 * kDuplicates;  // 2 prove kinds + 1 verify
}

void BM_ServeSequential(benchmark::State& state) {
  const auto& catalog = catalogUpTo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    for (int d = 0; d < kDuplicates; ++d) {
      for (const CatalogEntry& e : catalog) {
        const auto conn = proveCore(e.graph, e.ids, *makeConnectivity(),
                                    nullptr, 1);
        benchmark::DoNotOptimize(conn.labels);
        const auto forest =
            proveCore(e.graph, e.ids, *makeForest(), nullptr, 1);
        benchmark::DoNotOptimize(forest.propertyHolds);
        const auto sim =
            simulateEdgeScheme(e.graph, e.ids, *e.connectivityLabels,
                               makeCoreVerifier(makeConnectivity()),
                               SimulationOptions{1});
        benchmark::DoNotOptimize(sim.allAccept);
      }
    }
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(requestCount(catalog) * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeSequential)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_ServeBatch(benchmark::State& state) {
  const auto& catalog = catalogUpTo(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Service construction (pool spin-up) is part of the measured batch —
    // the comparison absorbs ALL serving-layer overhead, caches cold.
    serve::LaneCertService service;
    std::vector<std::shared_future<CoreProveResult>> proofs;
    std::vector<std::shared_future<SimulationResult>> sims;
    for (int d = 0; d < kDuplicates; ++d) {
      for (const CatalogEntry& e : catalog) {
        proofs.push_back(service.submitProve(
            serve::ProveJob{e.graph, e.ids, makeConnectivity(), {}}));
        proofs.push_back(service.submitProve(
            serve::ProveJob{e.graph, e.ids, makeForest(), {}}));
        sims.push_back(service.submitVerify(serve::VerifyJob{
            e.graph, e.ids, e.connectivityLabels, makeConnectivity(), {}}));
      }
    }
    for (auto& f : proofs) benchmark::DoNotOptimize(f.get().propertyHolds);
    for (auto& f : sims) benchmark::DoNotOptimize(f.get().allAccept);
  }
  state.counters["jobs_per_s"] = benchmark::Counter(
      static_cast<double>(requestCount(catalog) * state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["pool"] =
      static_cast<double>(resolveThreadCount(0));
}
BENCHMARK(BM_ServeBatch)->Arg(64)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
