// Cross-validation of the compositional property algebra (Prop 2.4
// interface) against brute force on hundreds of random small graphs, plus
// targeted unit tests per property.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/bruteforce.hpp"
#include "mso/properties.hpp"
#include "mso/property.hpp"

namespace lanecert {
namespace {

Graph randomSmall(std::uint64_t seed, VertexId n, double p) {
  Rng rng(seed);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.flip(p)) g.addEdge(u, v);
    }
  }
  return g;
}

// --- Targeted unit tests on known families ---

TEST(MsoProperties, BipartitenessOnCycles) {
  const auto bip = makeColorability(2);
  EXPECT_TRUE(evaluateOnGraph(*bip, cycleGraph(6)));
  EXPECT_FALSE(evaluateOnGraph(*bip, cycleGraph(7)));
  EXPECT_TRUE(evaluateOnGraph(*bip, pathGraph(9)));
  EXPECT_TRUE(evaluateOnGraph(*bip, gridGraph(3, 4)));
}

TEST(MsoProperties, ThreeColorability) {
  const auto c3 = makeColorability(3);
  EXPECT_TRUE(evaluateOnGraph(*c3, cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*c3, completeGraph(3)));
  EXPECT_FALSE(evaluateOnGraph(*c3, completeGraph(4)));
}

TEST(MsoProperties, Forest) {
  const auto f = makeForest();
  EXPECT_TRUE(evaluateOnGraph(*f, pathGraph(8)));
  EXPECT_TRUE(evaluateOnGraph(*f, starGraph(6)));
  EXPECT_TRUE(evaluateOnGraph(*f, caterpillar(5, 2)));
  EXPECT_FALSE(evaluateOnGraph(*f, cycleGraph(5)));
  EXPECT_FALSE(evaluateOnGraph(*f, completeGraph(3)));
}

TEST(MsoProperties, Connectivity) {
  const auto c = makeConnectivity();
  EXPECT_TRUE(evaluateOnGraph(*c, pathGraph(6)));
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  EXPECT_FALSE(evaluateOnGraph(*c, g));
  EXPECT_TRUE(evaluateOnGraph(*c, Graph(1)));
}

TEST(MsoProperties, PathAndCycleRecognition) {
  const auto isPath = makePathProperty();
  const auto isCycle = makeCycleProperty();
  EXPECT_TRUE(evaluateOnGraph(*isPath, pathGraph(1)));
  EXPECT_TRUE(evaluateOnGraph(*isPath, pathGraph(10)));
  EXPECT_FALSE(evaluateOnGraph(*isPath, cycleGraph(10)));
  EXPECT_FALSE(evaluateOnGraph(*isPath, starGraph(3)));
  EXPECT_TRUE(evaluateOnGraph(*isCycle, cycleGraph(3)));
  EXPECT_TRUE(evaluateOnGraph(*isCycle, cycleGraph(11)));
  EXPECT_FALSE(evaluateOnGraph(*isCycle, pathGraph(11)));
  EXPECT_FALSE(evaluateOnGraph(*isCycle, completeGraph(4)));
}

TEST(MsoProperties, PerfectMatching) {
  const auto pm = makePerfectMatching();
  EXPECT_TRUE(evaluateOnGraph(*pm, pathGraph(4)));
  EXPECT_FALSE(evaluateOnGraph(*pm, pathGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*pm, cycleGraph(6)));
  EXPECT_FALSE(evaluateOnGraph(*pm, starGraph(3)));
  EXPECT_TRUE(evaluateOnGraph(*pm, completeGraph(4)));
}

TEST(MsoProperties, VertexCover) {
  // C5 needs 3; P4 needs 2... path on 4 vertices has VC 2? Edges 01,12,23:
  // {1,3} covers? 01 via 1, 12 via 1, 23 via 3: yes, VC(P4) = 2.
  EXPECT_FALSE(evaluateOnGraph(*makeVertexCover(1), pathGraph(4)));
  EXPECT_TRUE(evaluateOnGraph(*makeVertexCover(2), pathGraph(4)));
  EXPECT_FALSE(evaluateOnGraph(*makeVertexCover(2), cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*makeVertexCover(3), cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*makeVertexCover(1), starGraph(5)));
  EXPECT_FALSE(evaluateOnGraph(*makeVertexCover(0), pathGraph(2)));
}

TEST(MsoProperties, HamiltonianCycle) {
  const auto hc = makeHamiltonianCycle();
  EXPECT_TRUE(evaluateOnGraph(*hc, cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*hc, completeGraph(4)));
  EXPECT_FALSE(evaluateOnGraph(*hc, pathGraph(5)));
  EXPECT_FALSE(evaluateOnGraph(*hc, starGraph(3)));
  EXPECT_FALSE(evaluateOnGraph(*hc, caterpillar(3, 1)));
}

TEST(MsoProperties, HamiltonianPath) {
  const auto hp = makeHamiltonianPath();
  EXPECT_TRUE(evaluateOnGraph(*hp, pathGraph(6)));
  EXPECT_TRUE(evaluateOnGraph(*hp, cycleGraph(6)));
  EXPECT_TRUE(evaluateOnGraph(*hp, Graph(1)));
  EXPECT_FALSE(evaluateOnGraph(*hp, starGraph(3)));
  EXPECT_TRUE(evaluateOnGraph(*hp, gridGraph(2, 3)));
}

TEST(MsoProperties, TriangleFree) {
  const auto tf = makeTriangleFree();
  EXPECT_TRUE(evaluateOnGraph(*tf, cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*tf, gridGraph(3, 3)));
  EXPECT_FALSE(evaluateOnGraph(*tf, completeGraph(3)));
  EXPECT_FALSE(evaluateOnGraph(*tf, completeGraph(5)));
}

TEST(MsoProperties, DominatingSet) {
  // Star: the center dominates everything.
  EXPECT_TRUE(evaluateOnGraph(*makeDominatingSet(1), starGraph(6)));
  EXPECT_FALSE(evaluateOnGraph(*makeDominatingSet(1), pathGraph(6)));
  EXPECT_TRUE(evaluateOnGraph(*makeDominatingSet(2), pathGraph(6)));
  // C7 needs ceil(7/3) = 3.
  EXPECT_FALSE(evaluateOnGraph(*makeDominatingSet(2), cycleGraph(7)));
  EXPECT_TRUE(evaluateOnGraph(*makeDominatingSet(3), cycleGraph(7)));
}

TEST(MsoProperties, IndependentSet) {
  // P6 has alpha = 3; C7 has alpha = 3; K4 has alpha = 1.
  EXPECT_TRUE(evaluateOnGraph(*makeIndependentSet(3), pathGraph(6)));
  EXPECT_FALSE(evaluateOnGraph(*makeIndependentSet(4), pathGraph(6)));
  EXPECT_TRUE(evaluateOnGraph(*makeIndependentSet(3), cycleGraph(7)));
  EXPECT_FALSE(evaluateOnGraph(*makeIndependentSet(4), cycleGraph(7)));
  EXPECT_FALSE(evaluateOnGraph(*makeIndependentSet(2), completeGraph(4)));
}

TEST(MsoProperties, EdgeParity) {
  EXPECT_TRUE(evaluateOnGraph(*makeEdgeParity(2, 0), cycleGraph(6)));
  EXPECT_FALSE(evaluateOnGraph(*makeEdgeParity(2, 1), cycleGraph(6)));
  EXPECT_TRUE(evaluateOnGraph(*makeEdgeParity(3, 2), pathGraph(6)));
}

TEST(MsoProperties, MaxDegree) {
  EXPECT_TRUE(evaluateOnGraph(*makeMaxDegree(2), cycleGraph(8)));
  EXPECT_FALSE(evaluateOnGraph(*makeMaxDegree(2), starGraph(3)));
  EXPECT_TRUE(evaluateOnGraph(*makeMaxDegree(3), starGraph(3)));
}

// --- Virtual edges are invisible to every property ---

TEST(MsoProperties, VirtualEdgesIgnoredByMatching) {
  // Two vertices joined only by a virtual edge: really two isolated
  // vertices, so no perfect matching (a counted virtual edge would flip it).
  const auto pm = makePerfectMatching();
  HomState s = pm->empty();
  s = pm->addVertex(s);
  s = pm->addVertex(s);
  s = pm->addEdge(s, 0, 1, kVirtualEdge);
  EXPECT_FALSE(pm->accepts(s));
  s = pm->addEdge(s, 0, 1, kRealEdge);
  EXPECT_TRUE(pm->accepts(s));
}

TEST(MsoProperties, VirtualEdgesIgnored) {
  for (const PropertyPtr& prop :
       {makeColorability(2), makeForest(), makeConnectivity(),
        makePathProperty(), makeTriangleFree()}) {
    // Manually drive the algebra: a triangle where one edge is virtual is
    // a real path a-b-c.
    HomState s = prop->empty();
    s = prop->addVertex(s);
    s = prop->addVertex(s);
    s = prop->addVertex(s);
    s = prop->addEdge(s, 0, 1, kRealEdge);
    s = prop->addEdge(s, 1, 2, kRealEdge);
    s = prop->addEdge(s, 0, 2, kVirtualEdge);
    s = prop->forget(s, 0);
    s = prop->forget(s, 0);
    s = prop->forget(s, 0);
    EXPECT_TRUE(prop->accepts(s)) << prop->name() << " saw a virtual edge";
  }
}

// --- Randomized cross-validation against brute force ---

struct CrossCase {
  std::string name;
  std::function<bool(const Graph&)> brute;
  PropertyPtr prop;
};

class MsoCrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(MsoCrossValidation, MatchesBruteForceOnRandomGraphs) {
  const int variant = GetParam();
  const std::vector<CrossCase> cases = {
      {"2-col", [](const Graph& g) { return isQColorableBrute(g, 2); },
       makeColorability(2)},
      {"3-col", [](const Graph& g) { return isQColorableBrute(g, 3); },
       makeColorability(3)},
      {"forest", [](const Graph& g) { return isForest(g); }, makeForest()},
      {"conn", [](const Graph& g) { return isConnected(g); }, makeConnectivity()},
      {"path", [](const Graph& g) { return isPathGraph(g); }, makePathProperty()},
      {"cycle", [](const Graph& g) { return isCycleGraph(g); }, makeCycleProperty()},
      {"pm", [](const Graph& g) { return hasPerfectMatchingBrute(g); },
       makePerfectMatching()},
      {"vc2", [](const Graph& g) { return minVertexCoverBrute(g) <= 2; },
       makeVertexCover(2)},
      {"vc3", [](const Graph& g) { return minVertexCoverBrute(g) <= 3; },
       makeVertexCover(3)},
      {"hamc", [](const Graph& g) { return hasHamiltonianCycleBrute(g); },
       makeHamiltonianCycle()},
      {"hamp", [](const Graph& g) { return hasHamiltonianPathBrute(g); },
       makeHamiltonianPath()},
      {"trifree", [](const Graph& g) { return countTriangles(g) == 0; },
       makeTriangleFree()},
      {"maxdeg3", [](const Graph& g) { return maxDegree(g) <= 3; },
       makeMaxDegree(3)},
      {"par3", [](const Graph& g) { return g.numEdges() % 3 == 1; },
       makeEdgeParity(3, 1)},
      {"dom2", [](const Graph& g) { return minDominatingSetBrute(g) <= 2; },
       makeDominatingSet(2)},
      {"dom3", [](const Graph& g) { return minDominatingSetBrute(g) <= 3; },
       makeDominatingSet(3)},
      {"ind3", [](const Graph& g) { return maxIndependentSetBrute(g) >= 3; },
       makeIndependentSet(3)},
      {"ind4", [](const Graph& g) { return maxIndependentSetBrute(g) >= 4; },
       makeIndependentSet(4)},
  };
  const CrossCase& c = cases[static_cast<std::size_t>(variant)];
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const VertexId n = 3 + static_cast<VertexId>(seed % 7);
    const double p = 0.15 + 0.1 * static_cast<double>(seed % 6);
    const Graph g = randomSmall(seed * 7919 + 13, n, p);
    EXPECT_EQ(evaluateOnGraph(*c.prop, g), c.brute(g))
        << c.name << " seed=" << seed << " n=" << n << "\n"
        << g.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(AllProperties, MsoCrossValidation,
                         ::testing::Range(0, 18));

// --- Alternative evaluation orders give identical verdicts ---

TEST(MsoProperties, OrderIndependence) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const Graph g = randomSmall(seed + 500, 8, 0.3);
    std::vector<VertexId> forward(8);
    std::iota(forward.begin(), forward.end(), 0);
    std::vector<VertexId> backward(forward.rbegin(), forward.rend());
    for (const PropertyPtr& prop :
         {makeColorability(2), makeForest(), makeConnectivity(),
          makePerfectMatching(), makeHamiltonianPath(), makeTriangleFree()}) {
      EXPECT_EQ(evaluateOnGraph(*prop, g, forward),
                evaluateOnGraph(*prop, g, backward))
          << prop->name() << " seed " << seed;
    }
  }
}

// --- Hom classes are constant-size (Prop 2.4 finiteness, exercised) ---

TEST(MsoProperties, StateSizeIndependentOfGraphSize) {
  // Drive a long path through the algebra keeping the boundary at 2 slots;
  // the state encoding must not grow with the number of composed vertices.
  const auto prop = makeColorability(3);
  HomState s = prop->empty();
  s = prop->addVertex(s);
  std::size_t firstSize = 0;
  for (int i = 0; i < 200; ++i) {
    s = prop->addVertex(s);
    s = prop->addEdge(s, 0, 1, kRealEdge);
    s = prop->forget(s, 0);
    if (i == 10) firstSize = s.encodedBits();
    if (i > 10) {
      EXPECT_EQ(s.encodedBits(), firstSize) << "at step " << i;
    }
  }
}

TEST(HomState, EqualityViaEncoding) {
  const auto prop = makeForest();
  const HomState a = prop->addVertex(prop->empty());
  const HomState b = prop->addVertex(prop->empty());
  EXPECT_TRUE(a == b);
  const HomState c = prop->addVertex(a);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace lanecert
