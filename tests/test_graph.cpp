// Unit tests for the graph substrate: core structure, algorithms,
// generators, and IO.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace lanecert {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.numVertices(), 0);
  EXPECT_EQ(g.numEdges(), 0);
}

TEST(Graph, AddVerticesAndEdges) {
  Graph g(3);
  EXPECT_EQ(g.numVertices(), 3);
  const EdgeId e = g.addEdge(0, 1);
  EXPECT_EQ(e, 0);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
  EXPECT_EQ(g.addVertex(), 3);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(Graph, RejectsSelfLoopsAndParallelEdges) {
  Graph g(3);
  g.addEdge(0, 1);
  EXPECT_THROW(g.addEdge(0, 0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(1, 0), std::invalid_argument);
  EXPECT_THROW(g.addEdge(0, 5), std::out_of_range);
}

TEST(Graph, EdgeOther) {
  Graph g(2);
  const EdgeId e = g.addEdge(0, 1);
  EXPECT_EQ(g.edge(e).other(0), 1);
  EXPECT_EQ(g.edge(e).other(1), 0);
}

TEST(Graph, ArcsReportEdgeIds) {
  Graph g(3);
  const EdgeId e01 = g.addEdge(0, 1);
  const EdgeId e02 = g.addEdge(0, 2);
  std::set<EdgeId> ids;
  for (const Arc& a : g.arcs(0)) ids.insert(a.edge);
  EXPECT_EQ(ids, (std::set<EdgeId>{e01, e02}));
}

TEST(Graph, SameEdgeSetIgnoresOrder) {
  Graph a(3);
  a.addEdge(0, 1);
  a.addEdge(1, 2);
  Graph b(3);
  b.addEdge(2, 1);
  b.addEdge(1, 0);
  EXPECT_TRUE(a.sameEdgeSet(b));
  b.addEdge(0, 2);
  EXPECT_FALSE(a.sameEdgeSet(b));
}

TEST(IdAssignment, IdentityRoundTrip) {
  const auto ids = IdAssignment::identity(5);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(ids.id(v), static_cast<std::uint64_t>(v));
    EXPECT_EQ(ids.vertexOf(ids.id(v)), v);
  }
}

TEST(IdAssignment, RandomIdsDistinct) {
  const auto ids = IdAssignment::random(64, 7);
  std::set<std::uint64_t> seen;
  for (VertexId v = 0; v < 64; ++v) seen.insert(ids.id(v));
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(ids.vertexOf(ids.id(17)), 17);
}

TEST(Algorithms, BfsDistancesOnPath) {
  const Graph g = pathGraph(5);
  const auto d = bfsDistances(g, 0);
  EXPECT_EQ(d, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Algorithms, ComponentsAndConnectivity) {
  Graph g(5);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const Components c = connectedComponents(g);
  EXPECT_EQ(c.count, 3);
  EXPECT_EQ(c.label[0], c.label[1]);
  EXPECT_EQ(c.label[2], c.label[3]);
  EXPECT_NE(c.label[0], c.label[2]);
  EXPECT_FALSE(isConnected(g));
  g.addEdge(1, 2);
  g.addEdge(3, 4);
  EXPECT_TRUE(isConnected(g));
}

TEST(Algorithms, BfsTreeProperties) {
  const Graph g = cycleGraph(6);
  const SpanningTree t = bfsTree(g, 2);
  EXPECT_EQ(t.root, 2);
  EXPECT_EQ(t.parentVertex[2], kNoVertex);
  EXPECT_EQ(t.depth[2], 0);
  int edges = 0;
  for (VertexId v = 0; v < 6; ++v) {
    if (t.parentEdge[v] != kNoEdge) ++edges;
  }
  EXPECT_EQ(edges, 5);  // spanning tree of 6 vertices
  // Depths consistent with parents.
  for (VertexId v = 0; v < 6; ++v) {
    if (v == 2) continue;
    EXPECT_EQ(t.depth[v], t.depth[t.parentVertex[v]] + 1);
  }
}

TEST(Algorithms, ShortestPathEndpoints) {
  const Graph g = cycleGraph(8);
  const auto p = shortestPath(g, 0, 3);
  ASSERT_EQ(p.size(), 4u);
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 3);
  const auto es = pathEdges(g, p);
  EXPECT_EQ(es.size(), 3u);
}

TEST(Algorithms, ShortestPathTrivialAndUnreachable) {
  Graph g(3);
  g.addEdge(0, 1);
  EXPECT_EQ(shortestPath(g, 1, 1), (std::vector<VertexId>{1}));
  EXPECT_TRUE(shortestPath(g, 0, 2).empty());
}

TEST(Algorithms, BipartitionOnEvenCycle) {
  const auto col = bipartition(cycleGraph(6));
  ASSERT_TRUE(col.has_value());
  const Graph g = cycleGraph(6);
  for (const Edge& e : g.edges()) {
    EXPECT_NE((*col)[static_cast<std::size_t>(e.u)], (*col)[static_cast<std::size_t>(e.v)]);
  }
}

TEST(Algorithms, BipartitionRejectsOddCycle) {
  EXPECT_FALSE(bipartition(cycleGraph(5)).has_value());
}

TEST(Algorithms, DegeneracyOfTreeIsOne) {
  Rng rng(11);
  const Graph g = randomTree(40, rng);
  const auto d = degeneracyOrient(g);
  EXPECT_EQ(d.degeneracy, 1);
  // Outdegree bound check.
  std::vector<int> outdeg(40, 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const VertexId head = d.headOf[static_cast<std::size_t>(e)];
    const VertexId tail = g.edge(e).other(head);
    ++outdeg[static_cast<std::size_t>(tail)];
  }
  for (int od : outdeg) EXPECT_LE(od, 1);
}

TEST(Algorithms, DegeneracyOfCompleteGraph) {
  const auto d = degeneracyOrient(completeGraph(6));
  EXPECT_EQ(d.degeneracy, 5);
}

TEST(Algorithms, DegeneracyOrientationOutdegreeBound) {
  Rng rng(5);
  const Graph g = randomConnected(30, 0.2, rng);
  const auto d = degeneracyOrient(g);
  std::vector<int> outdeg(30, 0);
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const VertexId head = d.headOf[static_cast<std::size_t>(e)];
    ++outdeg[static_cast<std::size_t>(g.edge(e).other(head))];
  }
  for (int od : outdeg) EXPECT_LE(od, d.degeneracy);
}

TEST(Algorithms, ForestDetection) {
  Rng rng(3);
  EXPECT_TRUE(isForest(randomTree(25, rng)));
  EXPECT_TRUE(isForest(pathGraph(10)));
  EXPECT_FALSE(isForest(cycleGraph(4)));
  Graph g(4);  // two disjoint edges: still a forest
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  EXPECT_TRUE(isForest(g));
}

TEST(Algorithms, TriangleCount) {
  EXPECT_EQ(countTriangles(completeGraph(4)), 4);
  EXPECT_EQ(countTriangles(completeGraph(5)), 10);
  EXPECT_EQ(countTriangles(cycleGraph(5)), 0);
  EXPECT_EQ(countTriangles(cycleGraph(3)), 1);
}

TEST(Algorithms, PathAndCycleRecognizers) {
  EXPECT_TRUE(isPathGraph(pathGraph(1)));
  EXPECT_TRUE(isPathGraph(pathGraph(7)));
  EXPECT_FALSE(isPathGraph(cycleGraph(7)));
  EXPECT_FALSE(isPathGraph(starGraph(3)));
  EXPECT_TRUE(isCycleGraph(cycleGraph(3)));
  EXPECT_TRUE(isCycleGraph(cycleGraph(9)));
  EXPECT_FALSE(isCycleGraph(pathGraph(9)));
}

TEST(Generators, PathCycleStar) {
  EXPECT_EQ(pathGraph(6).numEdges(), 5);
  EXPECT_EQ(cycleGraph(6).numEdges(), 6);
  EXPECT_EQ(starGraph(7).numEdges(), 7);
  EXPECT_EQ(maxDegree(starGraph(7)), 7);
}

TEST(Generators, CaterpillarShape) {
  const Graph g = caterpillar(4, 2);
  EXPECT_EQ(g.numVertices(), 4 + 8);
  EXPECT_EQ(g.numEdges(), 3 + 8);
  EXPECT_TRUE(isConnected(g));
  EXPECT_TRUE(isForest(g));
}

TEST(Generators, CompleteBinaryTree) {
  const Graph g = completeBinaryTree(4);
  EXPECT_EQ(g.numVertices(), 15);
  EXPECT_TRUE(isForest(g));
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Graph g = randomTree(20, rng);
    EXPECT_EQ(g.numEdges(), 19);
    EXPECT_TRUE(isConnected(g));
    EXPECT_TRUE(isForest(g));
  }
}

TEST(Generators, GridGraph) {
  const Graph g = gridGraph(3, 4);
  EXPECT_EQ(g.numVertices(), 12);
  EXPECT_EQ(g.numEdges(), 3 * 3 + 2 * 4);
  EXPECT_TRUE(isConnected(g));
}

TEST(Generators, RandomConnectedIsConnected) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    EXPECT_TRUE(isConnected(randomConnected(30, 0.05, rng)));
  }
}

TEST(Generators, RandomBoundedPathwidthRespectsWidth) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 4);
    const auto bp = randomBoundedPathwidth(50, k, 0.5, rng);
    EXPECT_TRUE(isConnected(bp.graph)) << "seed " << seed;
    EXPECT_LE(bp.width, k + 1);
    // All edges' intervals must overlap (checked via the interval library in
    // test_interval; here check raw pairs).
    for (const Edge& e : bp.graph.edges()) {
      const auto& iu = bp.intervals[static_cast<std::size_t>(e.u)];
      const auto& iv = bp.intervals[static_cast<std::size_t>(e.v)];
      EXPECT_TRUE(iu.first <= iv.second && iv.first <= iu.second);
    }
  }
}

TEST(Io, DotContainsEdges) {
  const std::string dot = toDot(pathGraph(3));
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
}

TEST(Io, EdgeListRoundTrip) {
  Rng rng(9);
  const Graph g = randomConnected(15, 0.2, rng);
  const Graph h = fromEdgeList(toEdgeList(g));
  EXPECT_TRUE(g.sameEdgeSet(h));
}

TEST(Io, EdgeListRejectsGarbage) {
  EXPECT_THROW(fromEdgeList("not a graph"), std::invalid_argument);
  EXPECT_THROW(fromEdgeList("3 2\n0 1\n"), std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
