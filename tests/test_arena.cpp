// Direct edge-case coverage for the runtime bump arena (previously only
// exercised indirectly through the prover/verifier scratch): zero-size
// allocation, over-aligned requests, reset-then-reuse semantics, growth
// across chunk boundaries, and the std::pmr resource view.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "runtime/arena.hpp"

namespace lanecert {
namespace {

TEST(ArenaEdge, ZeroSizeAllocationIsValidAndConsumesNothing) {
  Arena arena(64);
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 8);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(b, nullptr);
  EXPECT_TRUE(arena.allocSpan<int>(0).empty());
  // A real allocation after the zero-size ones still starts at the front.
  const auto s = arena.allocSpan<std::uint8_t>(64);
  ASSERT_EQ(s.size(), 64u);  // fits the first block: nothing was consumed
  EXPECT_EQ(arena.blockCount(), 1u);
}

TEST(ArenaEdge, OverAlignedAllocationsAreAbsolutelyAligned) {
  // Alignments beyond the default new alignment must hold for the ABSOLUTE
  // address, on fresh blocks and on reused ones (where the bump offset
  // starts mid-block at arbitrary parity).
  Arena arena(256);
  for (int round = 0; round < 3; ++round) {
    arena.reset();
    (void)arena.allocate(1, 1);  // skew the offset
    for (std::size_t align : {32u, 64u, 128u}) {
      void* p = arena.allocate(align, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align << " round=" << round;
      (void)arena.allocate(3, 1);  // de-align again before the next request
    }
  }
}

TEST(ArenaEdge, ResetThenReuseReturnsSameStorageAndValueInitializes) {
  Arena arena(128);
  auto first = arena.allocSpan<std::uint64_t>(8);
  for (auto& v : first) v = 0xdeadbeefcafef00dULL;  // poison
  const void* firstPtr = first.data();
  arena.reset();
  // Same storage comes back (no new blocks)...
  auto second = arena.allocSpan<std::uint64_t>(8);
  EXPECT_EQ(static_cast<const void*>(second.data()), firstPtr);
  EXPECT_EQ(arena.blockCount(), 1u);
  // ...and allocSpan value-initializes, so the poison never leaks through.
  for (std::uint64_t v : second) EXPECT_EQ(v, 0u);
  // Raw allocate() after reset makes NO such promise — stale bytes are the
  // caller's to overwrite.  (This is the documented reuse contract.)
}

TEST(ArenaEdge, GrowthAcrossChunkBoundariesKeepsAllocationsIntact) {
  Arena arena(32);  // tiny first block: every few allocations cross a chunk
  std::vector<std::span<std::uint32_t>> spans;
  for (std::uint32_t i = 0; i < 40; ++i) {
    auto s = arena.allocSpan<std::uint32_t>(16);
    for (std::size_t j = 0; j < s.size(); ++j) {
      s[j] = i * 1000 + static_cast<std::uint32_t>(j);
    }
    spans.push_back(s);
  }
  EXPECT_GT(arena.blockCount(), 1u);
  for (std::uint32_t i = 0; i < 40; ++i) {
    for (std::size_t j = 0; j < spans[i].size(); ++j) {
      EXPECT_EQ(spans[i][j], i * 1000 + j);
    }
  }
  // Reset and refill: the grown capacity is reused, not re-allocated.
  const std::size_t warmCapacity = arena.capacityBytes();
  const std::size_t warmBlocks = arena.blockCount();
  for (int round = 0; round < 3; ++round) {
    arena.reset();
    for (int i = 0; i < 40; ++i) (void)arena.allocSpan<std::uint32_t>(16);
    EXPECT_EQ(arena.capacityBytes(), warmCapacity);
    EXPECT_EQ(arena.blockCount(), warmBlocks);
  }
}

TEST(ArenaEdge, PmrResourceAllocatesFromTheArena) {
  Arena arena(1024);
  {
    std::pmr::vector<std::uint64_t> v(&arena.resource());
    for (std::uint64_t i = 0; i < 200; ++i) v.push_back(i);
    for (std::uint64_t i = 0; i < 200; ++i) EXPECT_EQ(v[i], i);
    EXPECT_GT(arena.capacityBytes(), 0u);
    // Destruction deallocates through the arena: a no-op by design.
  }
  const std::size_t used = arena.capacityBytes();
  arena.reset();
  std::pmr::vector<std::uint8_t> w(&arena.resource());
  w.resize(64);
  EXPECT_EQ(arena.capacityBytes(), used);  // reused, not grown
  // Distinct resources never compare equal (no cross-arena deallocation).
  Arena other;
  EXPECT_FALSE(arena.resource().is_equal(other.resource()));
  EXPECT_TRUE(arena.resource().is_equal(arena.resource()));
}

}  // namespace
}  // namespace lanecert
