// Tests for the runtime subsystem: the deterministic shard executor, the
// zero-copy label store, degenerate simulator inputs (empty graphs, label
// count mismatches, self-loop certificates), and the central property of
// the parallel sweep — numThreads never changes the SimulationResult.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

#include "core/records.hpp"
#include "core/scheme.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "klane/hierarchy.hpp"
#include "klane/validate.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "mso/properties.hpp"
#include "pathwidth/pathwidth.hpp"
#include "pls/classic.hpp"
#include "pls/pointer.hpp"
#include "pls/scheme.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/pipeline.hpp"
#include "runtime/flat_map.hpp"
#include "runtime/label_store.hpp"

namespace lanecert {
namespace {

// --- Executor ---

TEST(Executor, ShardRangesPartitionTheIndexSpace) {
  for (std::size_t n : {0u, 1u, 5u, 8u, 17u, 1000u}) {
    for (std::size_t shards : {1u, 2u, 3u, 8u, 13u}) {
      std::size_t expectedBegin = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const auto [begin, end] = ParallelExecutor::shardRange(n, shards, s);
        EXPECT_EQ(begin, expectedBegin);
        EXPECT_LE(begin, end);
        expectedBegin = end;
      }
      EXPECT_EQ(expectedBegin, n);  // shards cover [0, n) exactly
    }
  }
}

TEST(Executor, ForShardsVisitsEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    ParallelExecutor exec(threads);
    EXPECT_EQ(exec.numThreads(), threads);
    constexpr std::size_t kN = 1000;
    std::vector<std::atomic<int>> visits(kN);
    exec.forShards(kN, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
  }
}

TEST(Executor, ForShardsIsReusableAndPropagatesExceptions) {
  ParallelExecutor exec(4);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(
        exec.forShards(100,
                       [](std::size_t, std::size_t begin, std::size_t) {
                         if (begin == 0) throw std::runtime_error("boom");
                       }),
        std::runtime_error);
    std::atomic<int> total{0};
    exec.forShards(100, [&](std::size_t, std::size_t begin, std::size_t end) {
      total += static_cast<int>(end - begin);
    });
    EXPECT_EQ(total.load(), 100);
  }
}

// --- WorkerPool / borrowed executors ---

TEST(WorkerPool, RunsPostedTasksAndUrgentTasksJumpTheQueue) {
  // One worker, gated by a start latch: everything posted before the gate
  // opens executes in a deterministic order — urgent tasks from the front,
  // normal tasks from the back.
  WorkerPool pool(1);
  std::mutex mu;
  std::condition_variable cv;
  bool gateOpen = false;
  std::vector<int> order;
  bool done = false;
  pool.post([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return gateOpen; });
  });
  pool.post([&] { order.push_back(1); });
  pool.post([&] { order.push_back(2); });
  pool.postUrgent([&] { order.push_back(0); });
  pool.post([&] {
    std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  });
  {
    std::lock_guard<std::mutex> lock(mu);
    gateOpen = true;
  }
  cv.notify_all();
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(WorkerPool, BorrowedExecutorMatchesOwnedExecutor) {
  WorkerPool pool(3);
  ParallelExecutor borrowed(pool);
  EXPECT_EQ(borrowed.numThreads(), 4);  // workers + the calling thread
  constexpr std::size_t kN = 777;
  std::vector<std::atomic<int>> visits(kN);
  borrowed.forShards(kN, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(WorkerPool, ConcurrentForShardsOverOneSharedPool) {
  // Many fork-join calls multiplexed over one pool — the serving layer's
  // exact usage.  Every call must still visit its own index space exactly
  // once, regardless of interleaving.
  WorkerPool pool(4);
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&pool, &failures, c] {
      ParallelExecutor exec(pool);
      const std::size_t n = 200 + static_cast<std::size_t>(c) * 37;
      for (int round = 0; round < 5; ++round) {
        std::vector<std::atomic<int>> visits(n);
        exec.forShards(n, [&](std::size_t, std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) visits[i].fetch_add(1);
        });
        for (std::size_t i = 0; i < n; ++i) {
          if (visits[i].load() != 1) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(WorkerPool, NestedForShardsFromAPoolTaskDoesNotDeadlock) {
  // A pool task that itself forks over the same pool (a serving driver
  // running its job's shard waves) must make progress even when every
  // worker is busy: the caller claims all unclaimed shards itself.
  WorkerPool pool(2);
  std::promise<int> result;
  pool.post([&pool, &result] {
    ParallelExecutor exec(pool);
    std::atomic<int> total{0};
    exec.forShards(100, [&](std::size_t, std::size_t begin, std::size_t end) {
      total += static_cast<int>(end - begin);
    });
    result.set_value(total.load());
  });
  EXPECT_EQ(result.get_future().get(), 100);
}

// --- Arena ---

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena(64);
  const auto a = arena.allocSpan<std::uint64_t>(10);
  const auto b = arena.allocSpan<std::uint8_t>(3);
  const auto c = arena.allocSpan<std::uint64_t>(5);
  ASSERT_EQ(a.size(), 10u);
  ASSERT_EQ(b.size(), 3u);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) % alignof(std::uint64_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % alignof(std::uint64_t),
            0u);
  // Value-initialized, and writes to one span never alias another.
  for (std::uint64_t v : a) EXPECT_EQ(v, 0u);
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 1000 + i;
  for (std::size_t i = 0; i < c.size(); ++i) c[i] = 2000 + i;
  b[0] = 0xff;
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], 1000 + i);
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_EQ(c[i], 2000 + i);
}

TEST(Arena, ResetReusesCapacity) {
  Arena arena(128);
  std::size_t warmCapacity = 0;
  for (int round = 0; round < 4; ++round) {
    arena.reset();
    for (int i = 0; i < 50; ++i) {
      const auto s = arena.allocSpan<std::uint64_t>(7);
      ASSERT_EQ(s.size(), 7u);
      s[0] = static_cast<std::uint64_t>(i);
    }
    if (round == 0) {
      warmCapacity = arena.capacityBytes();
      continue;
    }
    // Steady state: no new blocks after the first round's warm-up.
    EXPECT_EQ(arena.capacityBytes(), warmCapacity);
  }
}

TEST(Arena, ZeroSizedSpanIsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.allocSpan<int>(0).empty());
}

TEST(Arena, GrowsBeyondFirstBlock) {
  Arena arena(16);  // tiny first block forces growth
  const auto big = arena.allocSpan<std::uint64_t>(1000);
  ASSERT_EQ(big.size(), 1000u);
  big[999] = 42;
  EXPECT_EQ(big[999], 42u);
  EXPECT_GE(arena.capacityBytes(), 8000u);
}

// --- LabelStore ---

TEST(LabelStore, ViewsMatchLabelsAndBitsAreTallied) {
  const std::vector<std::string> labels = {"abcd", "", "x", std::string("\0z", 2)};
  const LabelStore store(labels);
  ASSERT_EQ(store.size(), labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(store.view(i), std::string_view(labels[i]));
  }
  EXPECT_EQ(store.maxLabelBits(), 32u);
  EXPECT_EQ(store.totalLabelBits(), (4u + 0u + 1u + 2u) * 8u);
}

TEST(FlatMapTest, InsertFindOverwrite) {
  FlatMap<int, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_TRUE(m.tryEmplace(3, 30).second);
  EXPECT_TRUE(m.tryEmplace(1, 10).second);
  EXPECT_FALSE(m.tryEmplace(3, 99).second);
  ASSERT_NE(m.find(3), nullptr);
  EXPECT_EQ(*m.find(3), 30);
  m.insertOrAssign(3, 99);
  EXPECT_EQ(*m.find(3), 99);
  // Iteration is sorted by key.
  std::vector<int> keys;
  for (const auto& [k, v] : m) keys.push_back(k);
  EXPECT_EQ(keys, (std::vector<int>{1, 3}));
}

// --- Degenerate simulator inputs ---

TEST(Simulation, EmptyGraphAcceptsVacuously) {
  const Graph g(0);
  const auto ids = IdAssignment::identity(0);
  const std::vector<std::string> noLabels;
  const auto edge = simulateEdgeScheme(
      g, ids, noLabels, [](const EdgeView&) { return false; });
  EXPECT_TRUE(edge.allAccept);
  EXPECT_TRUE(edge.rejecting.empty());
  EXPECT_EQ(edge.maxLabelBits, 0u);
  EXPECT_EQ(edge.totalLabelBits, 0u);
  const auto vertex = simulateVertexScheme(
      g, ids, noLabels, [](const VertexView&) { return false; });
  EXPECT_TRUE(vertex.allAccept);
}

TEST(Simulation, EdgelessGraphPresentsEmptyViews) {
  const Graph g(4);  // 4 isolated vertices, 0 edges
  const auto ids = IdAssignment::identity(4);
  int calls = 0;
  const auto res = simulateEdgeScheme(
      g, ids, {}, [&calls](const EdgeView& view) {
        ++calls;
        return view.incidentLabels.empty();
      });
  EXPECT_TRUE(res.allAccept);
  EXPECT_EQ(calls, 4);
}

TEST(Simulation, LabelCountMismatchThrows) {
  const Graph g = pathGraph(3);  // 3 vertices, 2 edges
  const auto ids = IdAssignment::identity(3);
  const std::vector<std::string> labels(3, "x");  // 3 labels != 2 edges
  EXPECT_THROW(
      (void)simulateEdgeScheme(g, ids, labels,
                               [](const EdgeView&) { return true; }),
      std::invalid_argument);
  const std::vector<std::string> vlabels(2, "x");  // 2 labels != 3 vertices
  EXPECT_THROW(
      (void)simulateVertexScheme(g, ids, vlabels,
                                 [](const VertexView&) { return true; }),
      std::invalid_argument);
}

TEST(Simulation, SelfLoopCertificateRejectedEndToEnd) {
  // Tamper an honest core-scheme label so one edge's certificate claims a
  // self-loop (endA == endB); the verifier must reject some vertex, never
  // crash.
  const Graph g = caterpillar(6, 1);
  const auto ids = IdAssignment::random(g.numVertices(), 21);
  const auto proved = proveCore(g, ids, *makeForest(), nullptr);
  ASSERT_TRUE(proved.propertyHolds);
  const auto verifier = makeCoreVerifier(makeForest());
  ASSERT_TRUE(simulateEdgeScheme(g, ids, proved.labels, verifier).allAccept);

  auto labels = proved.labels;
  EdgeLabel tampered = EdgeLabel::decode(labels[0]);
  tampered.own.endB = tampered.own.endA;
  labels[0] = tampered.encoded();
  EXPECT_FALSE(simulateEdgeScheme(g, ids, labels, verifier).allAccept);
}

// --- Thread-count invariance of the parallel sweep ---

void expectSameResult(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.allAccept, b.allAccept);
  EXPECT_EQ(a.rejecting, b.rejecting);
  EXPECT_EQ(a.maxLabelBits, b.maxLabelBits);
  EXPECT_EQ(a.totalLabelBits, b.totalLabelBits);
}

TEST(ParallelSweep, CoreSchemeIdenticalAcrossThreadCounts) {
  Rng rng(2026);
  for (int trial = 0; trial < 3; ++trial) {
    auto bp = randomBoundedPathwidth(40 + 20 * trial, 2, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(bp.graph.numVertices(),
                                          1000 + static_cast<unsigned>(trial));
    const auto proved =
        proveCore(bp.graph, ids, *makeConnectivity(), &rep);
    ASSERT_TRUE(proved.propertyHolds);
    const auto verifier = makeCoreVerifier(makeConnectivity());

    // Honest labels and several adversarial mutations of them.
    std::vector<std::vector<std::string>> corpora{proved.labels};
    for (int m = 0; m < 10; ++m) {
      auto mutated = proved.labels;
      if (mutateLabels(mutated, static_cast<Mutation>(m % 5), rng)) {
        corpora.push_back(std::move(mutated));
      }
    }
    for (const auto& labels : corpora) {
      const auto seq = simulateEdgeScheme(bp.graph, ids, labels, verifier,
                                          SimulationOptions{1});
      for (int threads : {2, 8}) {
        const auto par = simulateEdgeScheme(bp.graph, ids, labels, verifier,
                                            SimulationOptions{threads});
        expectSameResult(seq, par);
      }
    }
  }
}

TEST(ParallelSweep, VertexSchemeIdenticalAcrossThreadCounts) {
  Rng rng(7);
  const Graph g = randomConnected(60, 0.08, rng);
  const auto ids = IdAssignment::random(60, 77);
  // Bipartite verifier over random (mostly wrong) labelings: a rich mix of
  // accepting and rejecting vertices to exercise the merge.
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<std::string> labels;
    for (int v = 0; v < 60; ++v) {
      labels.push_back(rng.flip(0.5) ? std::string("\1", 1)
                                     : std::string("\0", 1));
    }
    const auto seq = simulateVertexScheme(g, ids, labels, bipartiteVerifier(),
                                          SimulationOptions{1});
    const auto par = simulateVertexScheme(g, ids, labels, bipartiteVerifier(),
                                          SimulationOptions{8});
    expectSameResult(seq, par);
  }
}

TEST(ParallelSweep, ProveAndVerifyAcceptsWithManyThreads) {
  const Graph g = gridGraph(4, 5);
  const auto ids = IdAssignment::random(g.numVertices(), 5);
  const auto seq = proveAndVerifyEdges(g, ids, makeConnectivity(), nullptr, {},
                                       SimulationOptions{1});
  const auto par = proveAndVerifyEdges(g, ids, makeConnectivity(), nullptr, {},
                                       SimulationOptions{8});
  ASSERT_TRUE(seq.propertyHolds);
  ASSERT_TRUE(par.propertyHolds);
  expectSameResult(seq.sim, par.sim);
  EXPECT_TRUE(par.sim.allAccept);
}

TEST(ParallelSweep, ValidateHierarchyIdenticalAcrossThreadCounts) {
  Rng rng(11);
  const Graph g = randomConnected(40, 0.1, rng);
  const auto rep = bestIntervalRepresentation(g);
  const LanePlan plan = buildLanePlan(g, rep);
  const ConstructionSequence seq = buildConstruction(g, rep, plan.lanes);
  const HierarchyResult r = buildHierarchy(seq);
  const int numLanes = seq.numLanes();
  const auto sequential = validateHierarchy(r, numLanes, 1);
  for (int threads : {2, 8}) {
    EXPECT_EQ(validateHierarchy(r, numLanes, threads), sequential);
  }
  EXPECT_TRUE(sequential.empty());
}

// --- Pipelined stage helpers (runtime/pipeline.hpp) ---

TEST(ExecutorPipeline, StageFeedDeliversEveryItemInOrder) {
  std::vector<int> items(500);
  for (int i = 0; i < 500; ++i) items[static_cast<std::size_t>(i)] = i;
  StageFeed<int> feed;
  std::thread producer([&] {
    feed.open(items.data());
    for (std::size_t k = 50; k <= items.size(); k += 50) feed.publish(k);
    feed.close();
  });
  std::vector<int> seen;
  std::size_t have = 0;
  while (true) {
    const StageFeed<int>::Progress p = feed.awaitBeyond(have);
    for (std::size_t i = have; i < p.published; ++i) {
      seen.push_back(feed.items()[i]);
    }
    have = p.published;
    if (p.done) break;
  }
  producer.join();
  EXPECT_EQ(seen, items);
}

TEST(ExecutorPipeline, StageFeedFailRethrowsInTheConsumer) {
  StageFeed<int> feed;
  feed.fail(std::make_exception_ptr(std::runtime_error("producer died")));
  EXPECT_THROW((void)feed.awaitBeyond(0), std::runtime_error);
  // Failing again keeps the FIRST error (idempotent).
  feed.fail(std::make_exception_ptr(std::logic_error("later")));
  EXPECT_THROW((void)feed.awaitBeyond(0), std::runtime_error);
}

TEST(ExecutorPipeline, StealableTaskRunsExactlyOnceWhenPosted) {
  WorkerPool pool(2);
  for (int trial = 0; trial < 50; ++trial) {
    std::atomic<int> runs{0};
    auto task = std::make_shared<StealableTask>([&] { ++runs; });
    task->postTo(pool);
    task->join();  // may steal or may find a worker already ran it
    EXPECT_EQ(runs.load(), 1);
  }
}

TEST(ExecutorPipeline, StealableTaskIsStolenInlineWithNoWorkers) {
  WorkerPool pool(0);
  std::atomic<int> runs{0};
  auto task = std::make_shared<StealableTask>([&] { ++runs; });
  task->postTo(pool);  // nobody will ever drain this
  task->join();
  EXPECT_EQ(runs.load(), 1);
}

TEST(ExecutorPipeline, StealableTaskPropagatesTheTaskException) {
  WorkerPool pool(1);
  auto task = std::make_shared<StealableTask>(
      [] { throw std::runtime_error("stage failed"); });
  task->postTo(pool);
  EXPECT_THROW(task->join(), std::runtime_error);
}

// --- Frontier-parallel BFS (deterministic ordered frontiers) ---

void expectSameTree(const SpanningTree& a, const SpanningTree& b) {
  EXPECT_EQ(a.root, b.root);
  EXPECT_EQ(a.parentVertex, b.parentVertex);
  EXPECT_EQ(a.parentEdge, b.parentEdge);
  EXPECT_EQ(a.depth, b.depth);
}

TEST(ParallelSweepBfs, TreeBitIdenticalToSerialForEveryThreadCount) {
  Rng rng(77);
  std::vector<Graph> graphs;
  graphs.push_back(randomConnected(120, 0.08, rng));
  graphs.push_back(pathGraph(60));
  graphs.push_back(completeGraph(9));
  graphs.push_back(cycleGraph(31));
  graphs.push_back(gridGraph(7, 5));
  for (const Graph& g : graphs) {
    for (VertexId root : {VertexId{0}, g.numVertices() - 1}) {
      const SpanningTree serial = bfsTree(g, root);
      for (int threads : {1, 2, 3, 8}) {
        ParallelExecutor exec(threads);
        expectSameTree(serial, bfsTree(g, root, exec));
      }
    }
  }
}

TEST(ParallelSweepBfs, PointerRecordsBitIdenticalToSerial) {
  Rng rng(78);
  const Graph g = randomConnected(90, 0.1, rng);
  const auto ids = IdAssignment::random(g.numVertices(), 5);
  const auto serial = provePointer(g, ids, 3);
  for (int threads : {2, 4, 8}) {
    ParallelExecutor exec(threads);
    EXPECT_EQ(provePointer(g, ids, 3, exec), serial);
  }
}

}  // namespace
}  // namespace lanecert
