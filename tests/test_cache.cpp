// SweepEntryCache eviction regression tests.
//
// The cache is pure memoization — validation is a deterministic function
// of the entry bytes — so eviction must only ever cost a re-validation,
// never change a verdict.  These tests pin the capacity contract:
//
//  * a cache driven past its growth bound keeps serving hits (it recycles
//    via least-recently-probed batch eviction instead of freezing or
//    growing without bound);
//  * recently-probed entries survive the eviction that a cold insert
//    storm triggers;
//  * the stats stay coherent (entries == size(), evictions accounts for
//    exactly the encodings dropped, counters are monotonic).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/verifier.hpp"

namespace lanecert {
namespace {

/// Distinct encoding for insert `i` (content is opaque to the cache).
std::string enc(std::uint64_t i) {
  std::string s = "entry-";
  for (int b = 0; b < 8; ++b) s.push_back(static_cast<char>(i >> (8 * b)));
  return s;
}

TEST(SweepCacheEviction, CappedCacheStillServesHits) {
  SweepEntryCache cache;
  // One nodeId pins every insert to one stripe, so the per-stripe cap is
  // the exact bound under test.  Push far past it.
  constexpr std::uint64_t kInserts = 20000;
  const std::int64_t node = 7;
  for (std::uint64_t i = 0; i < kInserts; ++i) {
    cache.markValidated(node, enc(i));
  }

  const SweepCacheStats s = cache.stats();
  EXPECT_GT(s.evictions, 0u) << "cap never engaged";
  EXPECT_LT(s.entries, static_cast<std::size_t>(kInserts));
  // Conservation: every insert is either still held or was evicted.
  EXPECT_EQ(s.entries + s.evictions, kInserts);
  EXPECT_EQ(s.entries, cache.size());

  // The cache did not freeze: the most recent inserts are present.
  EXPECT_TRUE(cache.containsValidated(node, enc(kInserts - 1)));
  EXPECT_TRUE(cache.containsValidated(node, enc(kInserts - 2)));
  // The very first insert is long gone (LRU, not stop-at-cap).
  EXPECT_FALSE(cache.containsValidated(node, enc(0)));
}

TEST(SweepCacheEviction, ProbedEntriesSurviveInsertStorms) {
  SweepEntryCache cache;
  const std::int64_t node = 7;
  const std::string hot = enc(1);
  cache.markValidated(node, hot);

  // Interleave cold insert bursts with probes of the hot entry.  Each
  // probe refreshes its recency, so every batch eviction drops cold
  // entries around it.
  std::uint64_t next = 1000;
  for (int round = 0; round < 40; ++round) {
    for (int i = 0; i < 1000; ++i) cache.markValidated(node, enc(next++));
    EXPECT_TRUE(cache.containsValidated(node, hot))
        << "hot entry evicted in round " << round;
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(SweepCacheEviction, StatsStayCoherentAcrossEvictionAndClear) {
  SweepEntryCache cache;
  // Spread across nodeIds (and hence stripes) like a real sweep.
  for (std::uint64_t i = 0; i < 70000; ++i) {
    cache.markValidated(static_cast<std::int64_t>(i % 257), enc(i));
  }
  const SweepCacheStats s1 = cache.stats();
  EXPECT_EQ(s1.entries, cache.size());
  EXPECT_EQ(s1.entries + s1.evictions, 70000u);

  // Re-marking a held encoding refreshes it; nothing is double-counted.
  cache.markValidated(1, enc(69999 - (69999 % 257) + 1));
  EXPECT_EQ(cache.stats().entries, s1.entries);

  const std::uint64_t epochBefore = cache.epoch();
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.epoch(), epochBefore + 1);
  // Eviction, unlike clear(), never bumps the epoch (read memos may keep
  // remembering evicted entries — validation is content-based, so those
  // hits stay correct).
  cache.markValidated(1, enc(1));
  EXPECT_EQ(cache.epoch(), epochBefore + 1);
  EXPECT_TRUE(cache.containsValidated(1, enc(1)));
}

}  // namespace
}  // namespace lanecert
