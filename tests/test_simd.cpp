// SIMD / topology safety net for the hardware-aware verifier.
//
// Three layers of bit-identity, from kernels to whole sweeps:
//
//  1. The dispatched simd::* kernels agree with the always-compiled
//     simd::scalar::* reference loops on every size and alignment
//     (including 0, the block width, and off-by-one around it).  In the
//     scalar-fallback build (-DLANECERT_SIMD=OFF) the dispatched names ARE
//     the reference loops, so the tests pass trivially there — the
//     cross-BUILD byte identity is checked by scripts/verify.sh --ci.
//  2. Whole verification sweeps are byte-identical across thread counts
//     {1, 2, 4, 8} and across the read-memo toggle, on honest AND
//     corrupted labelings over a spread of graph families.
//  3. NUMA label replicas stay coherent: a session forced onto a synthetic
//     two-node topology produces verdicts byte-identical to the
//     topology-blind session, before and after edit batches (replicas are
//     re-mirrored incrementally through the same applyEdits path).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/simd.hpp"
#include "core/verifier.hpp"
#include "core/verify_session.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/scheme.hpp"
#include "runtime/executor.hpp"
#include "runtime/label_store.hpp"
#include "runtime/numa_mirror.hpp"
#include "runtime/topology.hpp"

namespace lanecert {
namespace {

// --- 1. Kernel identity ---------------------------------------------------

TEST(SimdKernels, MatchScalarOnAllSmallSizes) {
  std::mt19937_64 rng(7);
  for (std::size_t n = 0; n <= 20; ++n) {
    for (int rep = 0; rep < 50; ++rep) {
      std::vector<std::uint64_t> data(n);
      // Small value range so hits, duplicates, and misses all occur.
      for (auto& x : data) x = rng() % 8;
      const std::uint64_t key = rng() % 10;
      const std::uint64_t* p = data.data();
      EXPECT_EQ(simd::findU64(p, n, key), simd::scalar::findU64(p, n, key));
      EXPECT_EQ(simd::countU64(p, n, key), simd::scalar::countU64(p, n, key));
      std::vector<std::uint64_t> sorted = data;
      std::sort(sorted.begin(), sorted.end());
      EXPECT_EQ(simd::hasAdjacentDupU64(sorted.data(), n),
                simd::scalar::hasAdjacentDupU64(sorted.data(), n));
    }
  }
}

TEST(SimdKernels, FindReturnsFirstIndex) {
  // Duplicate keys: the dispatched kernel must return the FIRST hit even
  // when several land in one block.
  const std::vector<std::uint64_t> data = {5, 3, 7, 3, 3, 9, 3, 1, 3, 3};
  EXPECT_EQ(simd::findU64(data.data(), data.size(), 3), 1);
  EXPECT_EQ(simd::findU64(data.data(), data.size(), 5), 0);
  EXPECT_EQ(simd::findU64(data.data(), data.size(), 42), -1);
}

TEST(SimdKernels, EqualBytesHandlesEmptyAndNull) {
  // Empty vectors may hand out null data pointers; n == 0 must not reach
  // memcmp in either implementation.
  EXPECT_TRUE(simd::equalBytes(nullptr, nullptr, 0));
  EXPECT_TRUE(simd::scalar::equalBytes(nullptr, nullptr, 0));
  const std::string a = "lane-cert";
  const std::string b = "lane-cerT";
  EXPECT_TRUE(simd::equalBytes(a.data(), a.data(), a.size()));
  EXPECT_FALSE(simd::equalBytes(a.data(), b.data(), a.size()));
}

// --- 2. Sweep-level identity across threads / memo toggle -----------------

struct SweepFamily {
  std::string name;
  Graph g;
};

std::vector<SweepFamily> sweepFamilies() {
  std::vector<SweepFamily> fams;
  {
    Rng rng(41);
    fams.push_back({"pw2rand", randomBoundedPathwidth(40, 2, 0.5, rng).graph});
  }
  fams.push_back({"clique6", completeGraph(6)});
  {
    Rng rng(77);
    fams.push_back({"tree24", randomTree(24, rng)});
  }
  fams.push_back({"path2", pathGraph(2)});   // degenerate: one edge
  fams.push_back({"star12", starGraph(12)});
  return fams;
}

void expectSameResult(const SimulationResult& got, const SimulationResult& want,
                      const std::string& what) {
  EXPECT_EQ(got.allAccept, want.allAccept) << what;
  EXPECT_EQ(got.rejecting, want.rejecting) << what;
  EXPECT_EQ(got.maxLabelBits, want.maxLabelBits) << what;
  EXPECT_EQ(got.totalLabelBits, want.totalLabelBits) << what;
}

TEST(SimdSweeps, VerdictsIdenticalAcrossThreadsAndReadMemo) {
  for (SweepFamily& fam : sweepFamilies()) {
    const IdAssignment ids = IdAssignment::random(fam.g.numVertices(), 1234);
    const auto proved = proveCore(fam.g, ids, *makeConnectivity(), nullptr);

    // Honest labels plus one corrupted variant (flip a byte mid-label):
    // identity must hold for rejecting sweeps too, where cache hit rates
    // differ the most between configurations.
    std::vector<std::vector<std::string>> labelings = {proved.labels};
    if (!proved.labels.empty() && proved.labels[0].size() > 4) {
      auto corrupted = proved.labels;
      corrupted[0][corrupted[0].size() / 2] ^= 0x20;
      labelings.push_back(std::move(corrupted));
    }

    for (const auto& labels : labelings) {
      SimulationResult baseline;
      bool first = true;
      for (const bool readMemo : {true, false}) {
        CoreVerifierParams params;
        params.readMemo = readMemo;
        for (const int threads : {1, 2, 4, 8}) {
          const auto verifier = makeCoreVerifier(makeConnectivity(), params);
          const auto res = simulateEdgeScheme(fam.g, ids, labels, verifier,
                                              SimulationOptions{threads});
          if (first) {
            baseline = res;
            first = false;
          } else {
            expectSameResult(res, baseline,
                             fam.name + " threads=" + std::to_string(threads) +
                                 " memo=" + std::to_string(readMemo));
          }
        }
      }
    }
  }
}

TEST(SimdSweeps, CacheStatsCountHitsMissesAndMemoHits) {
  Rng rng(41);
  auto bp = randomBoundedPathwidth(48, 2, 0.5, rng);
  const IdAssignment ids = IdAssignment::random(bp.graph.numVertices(), 99);
  const auto proved = proveCore(bp.graph, ids, *makeConnectivity(), nullptr);

  VerifySession session(bp.graph, ids, proved.labels, makeConnectivity());
  EXPECT_TRUE(session.verifyAll(2).allAccept);

  const SweepCacheStats s1 = session.cacheStats();
  // Every distinct entry missed once before its first insert; shared upper
  // entries then hit (memo or striped cache).
  EXPECT_GT(s1.misses, 0u);
  EXPECT_GT(s1.hits + s1.memoHits, 0u);
  EXPECT_GT(s1.entries, 0u);
  EXPECT_EQ(s1.entries, session.sweepCacheSize());

  // A warm repeat sweep revalidates nothing: every probe lands in the
  // per-thread memo or the shared cache, and the entry count is unchanged.
  EXPECT_TRUE(session.verifyAll(2).allAccept);
  const SweepCacheStats s2 = session.cacheStats();
  EXPECT_EQ(s2.entries, s1.entries);
  EXPECT_GT(s2.hits + s2.memoHits, s1.hits + s1.memoHits);

  // The memo toggle gates memo hits entirely.
  CoreVerifierParams noMemo;
  noMemo.readMemo = false;
  VerifySession blind(bp.graph, ids, proved.labels, makeConnectivity(),
                      noMemo);
  EXPECT_TRUE(blind.verifyAll(2).allAccept);
  EXPECT_EQ(blind.cacheStats().memoHits, 0u);
}

TEST(SimdSweeps, ReadMemoNeverLeaksAcrossEngines) {
  // The per-thread read memo lives in scratch shared by EVERY engine that
  // checks on a thread (makeCoreVerifier's thread_local state; per-job
  // closures multiplexed over one worker pool).  A memo filled against
  // engine A must never answer probes for engine B — B's entries have to be
  // validated under B's own algebra/params.  Regression: the memo used to
  // sync on epoch NUMBER alone, so two engines both at epoch 0 shared
  // entries; B's cold sweep "hit" the stale memo for every shared entry,
  // skipped validateEntryPure, and left B's own cache empty.
  Rng rng(41);
  auto bp = randomBoundedPathwidth(32, 2, 0.5, rng);
  const Graph& g = bp.graph;
  const IdAssignment ids = IdAssignment::random(g.numVertices(), 7);
  const auto proved = proveCore(g, ids, *makeConnectivity(), nullptr);

  const LabelStore store(proved.labels);
  ParallelExecutor exec(1);
  const VertexLabelIndex index = buildIncidentEdgeIndex(g, store, exec);

  CoreVerifierEngine a(makeConnectivity());
  CoreVerifierEngine b(makeConnectivity());
  CoreVerifierEngine::ThreadState shared;  // plays the thread_local's role

  const auto sweep = [&](const CoreVerifierEngine& engine) {
    for (VertexId v = 0; v < g.numVertices(); ++v) {
      EdgeView view;
      view.selfId = ids.id(v);
      view.incidentLabels = index.row(v);
      EXPECT_TRUE(engine.check(view, shared)) << "vertex " << v;
    }
  };

  sweep(a);
  ASSERT_GT(a.sweepCacheSize(), 0u);

  // B reuses A's scratch (and thus its memo) but is a distinct engine with
  // a cold cache: its first sweep must validate every entry itself, so its
  // cache ends up exactly as full as A's and its probes actually reached it
  // (with the leak, every probe "hit" A's leftover memo instead — B's cache
  // stayed empty and its miss counter stayed zero).  Memo hits B earns
  // against entries it validated itself during this sweep are fine.
  sweep(b);
  EXPECT_EQ(b.sweepCacheSize(), a.sweepCacheSize());
  EXPECT_GT(b.cacheStats().misses, 0u);

  // Back on the same engine the memo is legitimate again: a warm repeat
  // sweep serves shared upper entries without re-validating them.
  const SweepCacheStats before = a.cacheStats();
  sweep(a);
  const SweepCacheStats after = a.cacheStats();
  EXPECT_GT(after.hits + after.memoHits, before.hits + before.memoHits);
  EXPECT_EQ(a.sweepCacheSize(), before.entries);
}

// --- 3. Topology detection + NUMA replica coherence -----------------------

TEST(Topology, ParseCpuList) {
  EXPECT_EQ(parseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(parseCpuList("0-2,8,10-11\n"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
  EXPECT_EQ(parseCpuList(" 4 "), (std::vector<int>{4}));
  EXPECT_EQ(parseCpuList(""), (std::vector<int>{}));
  EXPECT_EQ(parseCpuList("garbage"), (std::vector<int>{}));
  // Malformed tail: keep what parsed cleanly, never throw.
  EXPECT_EQ(parseCpuList("0-1,x"), (std::vector<int>{0, 1}));
  EXPECT_EQ(parseCpuList("3-1"), (std::vector<int>{}));
}

TEST(Topology, FromSysfsFixtureAndFallback) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::path(::testing::TempDir()) / "lanecert_sysfs_nodes";
  fs::create_directories(root / "node0");
  fs::create_directories(root / "node1");
  std::ofstream(root / "node0" / "cpulist") << "0-1\n";
  std::ofstream(root / "node1" / "cpulist") << "2-3\n";

  const NumaTopology topo = NumaTopology::fromSysfs(root.string());
  ASSERT_EQ(topo.nodeCount(), 2u);
  EXPECT_TRUE(topo.multiNode());
  EXPECT_EQ(topo.nodes()[0].cpus, (std::vector<int>{0, 1}));
  EXPECT_EQ(topo.nodes()[1].cpus, (std::vector<int>{2, 3}));
  // Round-robin placement is a pure function of (shard, nodeCount).
  EXPECT_EQ(topo.nodeOfShard(0), 0u);
  EXPECT_EQ(topo.nodeOfShard(1), 1u);
  EXPECT_EQ(topo.nodeOfShard(2), 0u);

  // Unreadable tree: the single-node fallback, never a throw.
  const NumaTopology fallback =
      NumaTopology::fromSysfs((root / "missing").string());
  EXPECT_EQ(fallback.nodeCount(), 1u);
  EXPECT_FALSE(fallback.multiNode());

  fs::remove_all(root);
}

TEST(Topology, DetectNeverThrowsAndPinIsBestEffort) {
  const NumaTopology topo = NumaTopology::detect();
  EXPECT_GE(topo.nodeCount(), 1u);
  // Out-of-range node: advisory false, no side effects.
  EXPECT_FALSE(pinThreadToNode(topo, topo.nodeCount() + 7));
#ifdef __linux__
  // Pinning to a real node must succeed on Linux (and is undone by the
  // scheduler only, so pin back to every CPU via the full single-node set).
  EXPECT_TRUE(pinThreadToNode(NumaTopology::singleNode(), 0));
#endif
}

NumaTopology syntheticTwoNode() {
  // Both "nodes" own CPU 0 so the single-core CI box can run pinned
  // workers; what matters is multiNode() == true, which forces the replica
  // path.
  NumaNode n0;
  n0.id = 0;
  n0.cpus = {0};
  NumaNode n1;
  n1.id = 1;
  n1.cpus = {0};
  return NumaTopology::forTesting({n0, n1});
}

TEST(NumaMirror, ReplicasStayCoherentThroughEdits) {
  Rng rng(41);
  auto bp = randomBoundedPathwidth(32, 2, 0.5, rng);
  const Graph& g = bp.graph;
  const IdAssignment ids = IdAssignment::random(g.numVertices(), 5);
  const auto proved = proveCore(g, ids, *makeConnectivity(), nullptr);

  std::vector<std::string> labels = proved.labels;
  LabelStore primary(labels);
  ParallelExecutor exec(2);
  NumaLabelMirror mirror(g, primary, /*replicas=*/2, exec);
  ASSERT_EQ(mirror.replicaCount(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t e = 0; e < primary.size(); ++e) {
      ASSERT_EQ(mirror.label(r, static_cast<EdgeId>(e)), primary.view(e));
    }
  }

  // Mixed batch: grow one label, flip a byte of another.  Replicas converge
  // through the same applyEdits path — dirty labels only.
  std::vector<EdgeLabelEdit> batch;
  batch.push_back({0, std::string(primary.view(0)) + "xyz"});
  std::string flipped(primary.view(1));
  flipped[0] ^= 0x01;
  batch.push_back({1, flipped});
  (void)primary.applyEdits(g, batch);
  mirror.applyEdits(g, batch);

  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(mirror.version(r), primary.version());
    for (std::size_t e = 0; e < primary.size(); ++e) {
      EXPECT_EQ(mirror.label(r, static_cast<EdgeId>(e)), primary.view(e))
          << "replica " << r << " edge " << e;
    }
  }
}

TEST(NumaMirror, SessionOnSyntheticTopologyMatchesBlindSession) {
  Rng rng(41);
  auto bp = randomBoundedPathwidth(40, 2, 0.5, rng);
  const Graph& g = bp.graph;
  const IdAssignment ids = IdAssignment::random(g.numVertices(), 5);
  const auto proved = proveCore(g, ids, *makeConnectivity(), nullptr);

  VerifySession numa(g, ids, proved.labels, makeConnectivity());
  numa.setTopology(syntheticTwoNode());
  VerifySession blind(g, ids, proved.labels, makeConnectivity());
  blind.setTopology(NumaTopology::singleNode());

  expectSameResult(numa.verifyAll(4), blind.verifyAll(4), "initial sweep");
  EXPECT_EQ(numa.labelReplicaCount(), 2u);   // primary + one replica
  EXPECT_EQ(blind.labelReplicaCount(), 1u);  // no mirror on one node

  // Edit batches: corrupt a label (verdicts must change identically on
  // both sessions), then restore it.
  std::string corrupted(proved.labels[2]);
  corrupted[corrupted.size() / 2] ^= 0x10;
  for (const std::string& bytes : {corrupted, proved.labels[2]}) {
    const std::vector<EdgeLabelEdit> batch = {{2, bytes}};
    ParallelExecutor exec(4);
    expectSameResult(numa.reverifyEdits(batch, exec),
                     blind.reverifyEdits(batch, exec), "after edit");
  }
  // And against a fresh full sweep over the final labels.
  const auto verifier = makeCoreVerifier(makeConnectivity());
  const auto fresh = simulateEdgeScheme(g, ids, proved.labels, verifier,
                                        SimulationOptions{4});
  expectSameResult(numa.verifyAll(4), fresh, "vs fresh sweep");
}

TEST(NumaMirror, PinnedPoolSweepsMatchUnpinned) {
  // WorkerPool pinning is placement-only: sweeps over a pinned pool return
  // byte-identical results (on this CI box both nodes map to CPU 0, so the
  // pin calls themselves exercise the degenerate mask path).
  Rng rng(13);
  auto bp = randomBoundedPathwidth(24, 2, 0.5, rng);
  const IdAssignment ids = IdAssignment::random(bp.graph.numVertices(), 3);
  const auto proved = proveCore(bp.graph, ids, *makeConnectivity(), nullptr);
  const auto verifier = makeCoreVerifier(makeConnectivity());

  const NumaTopology topo = syntheticTwoNode();
  ParallelExecutor pinned(4, &topo);
  ParallelExecutor plain(4);
  const auto a =
      simulateEdgeScheme(bp.graph, ids, proved.labels, verifier, pinned);
  const auto b =
      simulateEdgeScheme(bp.graph, ids, proved.labels, verifier, plain);
  expectSameResult(a, b, "pinned vs plain pool");
}

}  // namespace
}  // namespace lanecert
