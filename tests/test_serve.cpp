// Batched serving pipeline: determinism (byte-identical certificates for
// every pool size, submission order, and interleaving), cache correctness,
// shutdown-with-pending-jobs, and the zero-job edge cases.
//
// The invariant under test is the serving layer's core promise: pushing a
// job through LaneCertService — whatever else is in flight — returns
// exactly the bytes the standalone proveCore / simulateEdgeScheme path
// produces with numThreads = 1.

#include <gtest/gtest.h>

#include <algorithm>
#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/prover.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"
#include "runtime/executor.hpp"
#include "runtime/label_store.hpp"
#include "serve/batch_scheduler.hpp"
#include "serve/service.hpp"

namespace lanecert {
namespace {

using serve::BatchScheduler;
using serve::CancelledError;
using serve::LaneCertService;
using serve::ProveJob;
using serve::ReverifyJob;
using serve::ServiceOptions;
using serve::VerifyJob;

struct Fixture {
  Graph graph;
  IdAssignment ids;
  PropertyPtr property;
  std::optional<IntervalRepresentation> rep;
  CoreProveResult expected;  ///< standalone single-thread reference
};

Fixture makeFixture(Graph g, IdAssignment ids, PropertyPtr prop,
                    std::optional<IntervalRepresentation> rep = {}) {
  Fixture f{std::move(g), std::move(ids), std::move(prop), std::move(rep), {}};
  f.expected = proveCore(f.graph, f.ids, *f.property,
                         f.rep ? &*f.rep : nullptr, 1);
  return f;
}

std::vector<Fixture> mixedFixtures() {
  std::vector<Fixture> out;
  Rng rng(77);
  auto bp = randomBoundedPathwidth(40, 2, 0.4, rng);
  auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  out.push_back(makeFixture(bp.graph, IdAssignment::random(40, 5),
                            makeConnectivity(), rep));
  out.push_back(makeFixture(bp.graph, IdAssignment::random(40, 6),
                            makeForest(), rep));
  out.push_back(makeFixture(pathGraph(30), IdAssignment::random(30, 7),
                            makePathProperty()));
  out.push_back(makeFixture(cycleGraph(16), IdAssignment::random(16, 8),
                            makeConnectivity()));
  out.push_back(makeFixture(completeGraph(6), IdAssignment::random(6, 9),
                            makeConnectivity()));
  out.push_back(
      makeFixture(Graph(1), IdAssignment::identity(1), makeConnectivity()));
  return out;
}

ProveJob toJob(const Fixture& f) {
  return ProveJob{f.graph, f.ids, f.property, f.rep};
}

void expectMatches(const CoreProveResult& got, const Fixture& f) {
  EXPECT_EQ(got.propertyHolds, f.expected.propertyHolds);
  EXPECT_EQ(got.labels, f.expected.labels);  // byte-identical certificates
  EXPECT_EQ(got.stats.width, f.expected.stats.width);
  EXPECT_EQ(got.stats.numLanes, f.expected.stats.numLanes);
  EXPECT_EQ(got.stats.hierarchyDepth, f.expected.stats.hierarchyDepth);
  EXPECT_EQ(got.stats.maxCongestion, f.expected.stats.maxCongestion);
  EXPECT_EQ(got.stats.maxLabelBits, f.expected.stats.maxLabelBits);
  EXPECT_EQ(got.stats.totalLabelBits, f.expected.stats.totalLabelBits);
}

TEST(Serve, BatchedProveBitIdenticalAcrossPoolSizes) {
  const std::vector<Fixture> fixtures = mixedFixtures();
  for (int poolSize : {1, 2, 4, 8}) {
    LaneCertService service(ServiceOptions{.numThreads = poolSize});
    std::vector<std::shared_future<CoreProveResult>> futures;
    for (const Fixture& f : fixtures) {
      futures.push_back(service.submitProve(toJob(f)));
    }
    for (std::size_t i = 0; i < fixtures.size(); ++i) {
      expectMatches(futures[i].get(), fixtures[i]);
    }
  }
}

TEST(Serve, SubmissionOrderAndInterleavingInvariant) {
  const std::vector<Fixture> fixtures = mixedFixtures();
  LaneCertService service(ServiceOptions{.numThreads = 4});
  // Reverse order on the main thread, forward order from three concurrent
  // client threads — every future must still match the standalone bytes.
  std::vector<std::shared_future<CoreProveResult>> reversed;
  for (auto it = fixtures.rbegin(); it != fixtures.rend(); ++it) {
    reversed.push_back(service.submitProve(toJob(*it)));
  }
  std::vector<std::vector<std::shared_future<CoreProveResult>>> perThread(3);
  std::vector<std::thread> clients;
  for (auto& slot : perThread) {
    clients.emplace_back([&service, &fixtures, &slot] {
      for (const Fixture& f : fixtures) {
        slot.push_back(service.submitProve(toJob(f)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    expectMatches(reversed[i].get(), fixtures[fixtures.size() - 1 - i]);
    for (const auto& slot : perThread) {
      expectMatches(slot[i].get(), fixtures[i]);
    }
  }
}

TEST(Serve, VerifyJobsMatchStandalone) {
  Rng rng(31);
  auto bp = randomBoundedPathwidth(36, 2, 0.4, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(36, 11);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, &rep, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto reference =
      simulateEdgeScheme(bp.graph, ids, proved.labels, makeCoreVerifier(prop));
  ASSERT_TRUE(reference.allAccept);

  // A corrupted labeling must reject identically through the service.
  auto corrupted =
      std::make_shared<std::vector<std::string>>(proved.labels);
  (*corrupted)[0][(*corrupted)[0].size() / 2] ^= 0x10;
  const auto referenceBad =
      simulateEdgeScheme(bp.graph, ids, *corrupted, makeCoreVerifier(prop));
  ASSERT_FALSE(referenceBad.allAccept);

  const auto goodLabels =
      std::make_shared<const std::vector<std::string>>(proved.labels);
  for (int poolSize : {1, 4}) {
    LaneCertService service(ServiceOptions{.numThreads = poolSize});
    auto good =
        service.submitVerify(VerifyJob{bp.graph, ids, goodLabels, prop, {}});
    auto bad =
        service.submitVerify(VerifyJob{bp.graph, ids, corrupted, prop, {}});
    const SimulationResult g = good.get();
    EXPECT_TRUE(g.allAccept);
    EXPECT_EQ(g.rejecting, reference.rejecting);
    EXPECT_EQ(g.maxLabelBits, reference.maxLabelBits);
    EXPECT_EQ(g.totalLabelBits, reference.totalLabelBits);
    const SimulationResult b = bad.get();
    EXPECT_FALSE(b.allAccept);
    EXPECT_EQ(b.rejecting, referenceBad.rejecting);
    // Resubmitting the same payload coalesces by identity.
    auto again =
        service.submitVerify(VerifyJob{bp.graph, ids, goodLabels, prop, {}});
    EXPECT_EQ(again.get().rejecting, reference.rejecting);
    service.drain();
    EXPECT_EQ(service.stats().verifyJobsCompleted, 2u);  // good + bad only
  }
}

TEST(Serve, PlanCacheAmortizesAcrossPropertiesAndIds) {
  Rng rng(99);
  auto bp = randomBoundedPathwidth(32, 2, 0.4, rng);
  const auto idsA = IdAssignment::random(32, 1);
  const auto idsB = IdAssignment::random(32, 2);

  // One job slot: jobs run serially, so after the first builds the plan
  // the other three MUST hit (two concurrent jobs may legitimately race
  // the cold cache and both build — the count would then be timing-
  // dependent, which the TSan job's slowdown makes a real flake).
  LaneCertService service(
      ServiceOptions{.numThreads = 2, .maxConcurrentJobs = 1});
  // Same graph, no supplied representation: four jobs, one plan.
  auto f1 = service.submitProve(ProveJob{bp.graph, idsA, makeConnectivity(), {}});
  auto f2 = service.submitProve(ProveJob{bp.graph, idsA, makeForest(), {}});
  auto f3 = service.submitProve(ProveJob{bp.graph, idsB, makeConnectivity(), {}});
  auto f4 = service.submitProve(ProveJob{bp.graph, idsB, makeForest(), {}});
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  const auto r3 = f3.get();
  const auto r4 = f4.get();
  service.drain();
  EXPECT_EQ(service.stats().planCacheHits, 3u);

  // Cached-plan results must equal the standalone cold path bit-for-bit.
  EXPECT_EQ(r1.labels, proveCore(bp.graph, idsA, *makeConnectivity(), nullptr, 1).labels);
  EXPECT_EQ(r2.labels, proveCore(bp.graph, idsA, *makeForest(), nullptr, 1).labels);
  EXPECT_EQ(r3.labels, proveCore(bp.graph, idsB, *makeConnectivity(), nullptr, 1).labels);
  EXPECT_EQ(r4.labels, proveCore(bp.graph, idsB, *makeForest(), nullptr, 1).labels);
}

TEST(Serve, PlanCacheMissStormCoalescesToOneHeadBuild) {
  // A burst of CONCURRENT cache-miss jobs on one graph (distinct ids and
  // properties, so nothing result-coalesces) must run exactly ONE pipelined
  // head build: whichever job wins the in-flight slot builds, every other
  // job either joins that build (planBuildsCoalesced) or arrives after it
  // completed (planCacheHits) — timing decides the split, never the sum,
  // and never the results.
  Rng rng(41);
  auto bp = randomBoundedPathwidth(40, 2, 0.4, rng);
  const int kJobs = 8;
  LaneCertService service(
      ServiceOptions{.numThreads = 4, .maxConcurrentJobs = 4});
  std::vector<std::shared_future<CoreProveResult>> futures;
  std::vector<IdAssignment> ids;
  std::vector<PropertyPtr> props;
  for (int i = 0; i < kJobs; ++i) {
    ids.push_back(IdAssignment::random(40, 100 + static_cast<unsigned>(i)));
    props.push_back(i % 2 == 0 ? makeConnectivity() : makeForest());
    futures.push_back(
        service.submitProve(ProveJob{bp.graph, ids.back(), props.back(), {}}));
  }
  std::vector<CoreProveResult> results;
  for (auto& f : futures) results.push_back(f.get());
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.planBuilds, 1u);
  EXPECT_EQ(stats.planCacheHits + stats.planBuildsCoalesced,
            static_cast<std::uint64_t>(kJobs - 1));
  // Every storm participant's output is byte-identical to the standalone
  // single-thread prover.
  for (int i = 0; i < kJobs; ++i) {
    const auto expected =
        proveCore(bp.graph, ids[static_cast<std::size_t>(i)],
                  *props[static_cast<std::size_t>(i)], nullptr, 1);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].labels, expected.labels);
    EXPECT_EQ(results[static_cast<std::size_t>(i)].propertyHolds,
              expected.propertyHolds);
  }
}

TEST(Serve, ResultCacheCoalescesDuplicateRequests) {
  const Graph g = pathGraph(24);
  const auto ids = IdAssignment::random(24, 3);
  LaneCertService service(ServiceOptions{.numThreads = 2});
  std::vector<std::shared_future<CoreProveResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(
        service.submitProve(ProveJob{g, ids, makeConnectivity(), {}}));
  }
  const auto expected = proveCore(g, ids, *makeConnectivity(), nullptr, 1);
  for (auto& f : futures) EXPECT_EQ(f.get().labels, expected.labels);
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.proveJobsCompleted, 1u);  // one computation, five answers
  EXPECT_EQ(stats.resultCacheHits, 4u);
}

TEST(Serve, ShutdownDrainsPendingJobs) {
  const std::vector<Fixture> fixtures = mixedFixtures();
  std::vector<std::shared_future<CoreProveResult>> futures;
  {
    LaneCertService service(ServiceOptions{.numThreads = 1});
    for (const Fixture& f : fixtures) {
      futures.push_back(service.submitProve(toJob(f)));
    }
    // Destructor runs with jobs pending: it must complete them all.
  }
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    expectMatches(futures[i].get(), fixtures[i]);
  }
}

TEST(Serve, CancelPendingFailsUnstartedFutures) {
  Rng rng(13);
  auto big = randomBoundedPathwidth(600, 2, 0.4, rng);
  const auto bigIds = IdAssignment::random(600, 21);
  LaneCertService service(
      ServiceOptions{.numThreads = 1, .maxConcurrentJobs = 1});
  std::vector<std::shared_future<CoreProveResult>> futures;
  // The big job occupies the single slot; the small ones queue behind it.
  futures.push_back(
      service.submitProve(ProveJob{big.graph, bigIds, makeConnectivity(), {}}));
  for (int seed = 0; seed < 4; ++seed) {
    futures.push_back(service.submitProve(ProveJob{
        pathGraph(20), IdAssignment::random(20, 40 + seed),
        makeConnectivity(), {}}));
  }
  const std::size_t cancelled = service.cancelPending();
  EXPECT_GE(cancelled, 1u);
  service.drain();
  EXPECT_EQ(service.stats().cancelledJobs, cancelled);
  std::size_t threw = 0;
  for (auto& f : futures) {
    try {
      const auto r = f.get();
      EXPECT_TRUE(r.propertyHolds);  // completed jobs completed correctly
    } catch (const CancelledError&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw, cancelled);
}

TEST(Serve, ZeroJobsAndIdleDrain) {
  LaneCertService service;
  service.drain();  // idle drain returns immediately
  EXPECT_EQ(service.cancelPending(), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.proveJobsCompleted, 0u);
  EXPECT_EQ(stats.verifyJobsCompleted, 0u);
  EXPECT_EQ(stats.cancelledJobs, 0u);
}

void expectSameSim(const SimulationResult& got, const SimulationResult& want) {
  EXPECT_EQ(got.allAccept, want.allAccept);
  EXPECT_EQ(got.rejecting, want.rejecting);
  EXPECT_EQ(got.maxLabelBits, want.maxLabelBits);
  EXPECT_EQ(got.totalLabelBits, want.totalLabelBits);
}

TEST(Serve, VerifySessionReverifyMatchesStandalone) {
  Rng rng(57);
  auto bp = randomBoundedPathwidth(40, 2, 0.4, rng);
  const auto ids = IdAssignment::random(40, 15);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto verifier = makeCoreVerifier(prop);
  const auto payload =
      std::make_shared<const std::vector<std::string>>(proved.labels);

  auto corrupted = proved.labels;
  corrupted[3][corrupted[3].size() / 2] ^= 0x20;
  const auto wantClean = simulateEdgeScheme(bp.graph, ids, proved.labels,
                                            verifier);
  const auto wantCorrupt =
      simulateEdgeScheme(bp.graph, ids, corrupted, verifier);
  ASSERT_TRUE(wantClean.allAccept);
  ASSERT_FALSE(wantCorrupt.allAccept);

  for (int poolSize : {1, 4}) {
    LaneCertService service(ServiceOptions{.numThreads = poolSize});
    const std::uint64_t sid = service.openVerifySession(
        VerifyJob{bp.graph, ids, payload, prop, {}});
    // The empty batch runs the initial full sweep (version untouched).
    expectSameSim(service.submitReverify(ReverifyJob{sid, {}}).get(),
                  wantClean);
    EXPECT_EQ(service.sessionStoreVersion(sid), 0u);
    // Corrupt one edge: only its endpoints are re-checked, the verdicts
    // still cover the whole graph.
    expectSameSim(
        service.submitReverify(ReverifyJob{sid, {{3, corrupted[3]}}}).get(),
        wantCorrupt);
    EXPECT_EQ(service.sessionStoreVersion(sid), 1u);
    // Restore: back to the clean verdicts, version advances again.
    expectSameSim(
        service
            .submitReverify(ReverifyJob{sid, {{3, proved.labels[3]}}})
            .get(),
        wantClean);
    EXPECT_EQ(service.sessionStoreVersion(sid), 2u);
    // Session edits never touch the caller's payload.
    EXPECT_EQ(*payload, proved.labels);

    service.closeVerifySession(sid);
    EXPECT_THROW((void)service.submitReverify(ReverifyJob{sid, {}}),
                 std::invalid_argument);
    EXPECT_THROW((void)service.sessionStoreVersion(sid),
                 std::invalid_argument);
    service.closeVerifySession(sid);  // idempotent

    EXPECT_THROW(
        (void)service.openVerifySession(VerifyJob{bp.graph, ids, {}, prop, {}}),
        std::invalid_argument);
    service.drain();
    EXPECT_EQ(service.stats().sessionsOpened, 1u);
    EXPECT_EQ(service.stats().reverifyBatchesCompleted, 3u);
  }
}

TEST(Serve, SessionSweepCacheStatsSurfaced) {
  Rng rng(57);
  auto bp = randomBoundedPathwidth(40, 2, 0.4, rng);
  const auto ids = IdAssignment::random(40, 15);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  const auto payload =
      std::make_shared<const std::vector<std::string>>(proved.labels);

  LaneCertService service(ServiceOptions{.numThreads = 2});
  const std::uint64_t sid =
      service.openVerifySession(VerifyJob{bp.graph, ids, payload, prop, {}});
  // Before any sweep the session's engine has seen nothing.
  EXPECT_EQ(service.sessionCacheStats(sid).entries, 0u);

  (void)service.submitReverify(ReverifyJob{sid, {}}).get();  // full sweep
  const SweepCacheStats after = service.sessionCacheStats(sid);
  EXPECT_GT(after.entries, 0u);
  EXPECT_GT(after.misses, 0u);       // first validation of each entry
  EXPECT_GT(after.hits + after.memoHits, 0u);  // shared upper entries reused

  // The aggregate counters mirror the (single) open session's numbers.
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.sweepCacheHits, after.hits);
  EXPECT_EQ(stats.sweepCacheMisses, after.misses);
  EXPECT_EQ(stats.sweepCacheMemoHits, after.memoHits);
  EXPECT_EQ(stats.sweepCacheStripeContention, after.stripeContention);

  // Closing the session drops its contribution and invalidates the handle.
  service.closeVerifySession(sid);
  EXPECT_THROW((void)service.sessionCacheStats(sid), std::invalid_argument);
  service.drain();
  EXPECT_EQ(service.stats().sweepCacheMisses, 0u);
}

TEST(Serve, ReverifyBatchesRunInSubmissionOrder) {
  // Fire a pipeline of batches without waiting on any future; every future
  // must match the fresh sweep of its PREFIX state — smallest-first
  // admission of other jobs must never reorder one session's batches.
  Rng rng(77);
  auto bp = randomBoundedPathwidth(36, 2, 0.4, rng);
  const auto ids = IdAssignment::random(36, 21);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto verifier = makeCoreVerifier(prop);

  LaneCertService service(ServiceOptions{.numThreads = 2});
  const auto payload =
      std::make_shared<const std::vector<std::string>>(proved.labels);
  const std::uint64_t sid =
      service.openVerifySession(VerifyJob{bp.graph, ids, payload, prop, {}});

  std::vector<std::string> labels = proved.labels;
  std::vector<std::shared_future<SimulationResult>> futures;
  std::vector<SimulationResult> wants;
  futures.push_back(service.submitReverify(ReverifyJob{sid, {}}));
  wants.push_back(simulateEdgeScheme(bp.graph, ids, labels, verifier));
  for (int step = 0; step < 6; ++step) {
    const auto e = static_cast<EdgeId>((step * 5) % bp.graph.numEdges());
    std::string bytes = labels[static_cast<std::size_t>(e)];
    if (step % 2 == 0) {
      bytes[bytes.size() / 3] = static_cast<char>(bytes[bytes.size() / 3] ^ 1);
    } else {
      bytes = proved.labels[static_cast<std::size_t>(e)];  // restore
    }
    labels[static_cast<std::size_t>(e)] = bytes;
    futures.push_back(
        service.submitReverify(ReverifyJob{sid, {{e, std::move(bytes)}}}));
    wants.push_back(simulateEdgeScheme(bp.graph, ids, labels, verifier));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    expectSameSim(futures[i].get(), wants[i]);
  }
}

TEST(Serve, ReverifyDuplicateTailSubmissionsCoalesce) {
  Rng rng(13);
  auto bp = randomBoundedPathwidth(30, 2, 0.4, rng);
  const auto ids = IdAssignment::random(30, 8);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);

  // One slot, occupied by a prove job: both duplicate submissions land in
  // the session queue before its driver can start, so the retry MUST
  // coalesce instead of applying the edits twice.
  auto big = randomBoundedPathwidth(400, 2, 0.4, rng);
  LaneCertService service(
      ServiceOptions{.numThreads = 1, .maxConcurrentJobs = 1});
  auto blocker = service.submitProve(
      ProveJob{big.graph, IdAssignment::random(400, 5), makeConnectivity(), {}});
  const std::uint64_t sid =
      service.openVerifySession(VerifyJob{
          bp.graph, ids,
          std::make_shared<const std::vector<std::string>>(proved.labels),
          prop, {}});
  std::string bytes = proved.labels[0];
  bytes[0] = static_cast<char>(bytes[0] ^ 2);
  const ReverifyJob batch{sid, {{0, bytes}}};
  auto first = service.submitReverify(batch);
  auto second = service.submitReverify(batch);
  (void)blocker.get();
  service.drain();
  expectSameSim(first.get(), second.get());
  const auto stats = service.stats();
  EXPECT_EQ(stats.reverifyBatchesCompleted, 1u);
  EXPECT_GE(stats.resultCacheHits, 1u);
  EXPECT_EQ(service.sessionStoreVersion(sid), 1u);  // edits applied ONCE
}

TEST(Serve, VerifyResultCacheCarriesPayloadVersion) {
  // Regression for the staleness hazard: verifyJobKey pins payload
  // IDENTITY, so an in-place rewrite of the buffer used to replay the old
  // verdict forever.  The key now carries the payload's content version —
  // mutate + bump must recompute, equal versions still coalesce.
  Rng rng(31);
  auto bp = randomBoundedPathwidth(30, 2, 0.4, rng);
  const auto ids = IdAssignment::random(30, 11);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);

  auto payload = std::make_shared<std::vector<std::string>>(proved.labels);
  LaneCertService service(ServiceOptions{.numThreads = 2});
  auto clean = service.submitVerify(VerifyJob{bp.graph, ids, payload, prop, {}});
  EXPECT_TRUE(clean.get().allAccept);
  service.drain();

  // Rewrite the payload in place (same buffer, new bytes, bumped version).
  (*payload)[0][(*payload)[0].size() / 2] ^= 0x10;
  const VerifyJob bumped{bp.graph, ids, payload, prop, {}, /*labelsVersion=*/1};
  auto recomputed = service.submitVerify(bumped);
  EXPECT_FALSE(recomputed.get().allAccept);
  service.drain();
  EXPECT_EQ(service.stats().verifyJobsCompleted, 2u);
  EXPECT_EQ(service.stats().resultCacheHits, 0u);

  // Identical (identity, version) pairs still deduplicate.
  auto coalesced = service.submitVerify(bumped);
  EXPECT_FALSE(coalesced.get().allAccept);
  service.drain();
  EXPECT_EQ(service.stats().verifyJobsCompleted, 2u);
  EXPECT_EQ(service.stats().resultCacheHits, 1u);
}

TEST(BatchScheduler, AgingPreventsLargeJobStarvation) {
  // A large job against a self-replenishing stream of small ones: pure
  // smallest-first would dispatch every small job first (each newcomer
  // overtakes the large one); the aging credit must force the large job in
  // after at most kMaxBypass bypasses.
  WorkerPool pool(1);
  BatchScheduler sched(pool, 1);
  std::mutex mu;
  std::condition_variable cv;
  bool gateOpen = false;
  std::vector<std::string> order;

  // Occupy the single slot while the queue is primed.
  sched.submit(
      0,
      [&] {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return gateOpen; });
      },
      {});
  sched.submit(
      1000,
      [&] {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back("big");
      },
      {});
  constexpr int kSmallJobs = 12;
  std::function<void(int)> submitSmall = [&](int i) {
    sched.submit(
        1,
        [&, i] {
          {
            std::lock_guard<std::mutex> lock(mu);
            order.push_back("s" + std::to_string(i));
          }
          if (i + 1 < kSmallJobs) submitSmall(i + 1);  // keep the stream up
        },
        {});
  };
  submitSmall(0);
  {
    std::lock_guard<std::mutex> lock(mu);
    gateOpen = true;
  }
  cv.notify_all();
  sched.drain();

  ASSERT_EQ(order.size(), static_cast<std::size_t>(kSmallJobs) + 1);
  const auto at = std::find(order.begin(), order.end(), "big");
  ASSERT_NE(at, order.end());
  // Exactly kMaxBypass smalls may run first; the stream never starves it.
  EXPECT_LE(static_cast<std::size_t>(at - order.begin()),
            BatchScheduler::kMaxBypass);
}

TEST(Serve, JobErrorsPropagateThroughFutures) {
  Graph disconnected(4);
  disconnected.addEdge(0, 1);  // vertices 2, 3 unreachable
  LaneCertService service(ServiceOptions{.numThreads = 2});
  auto fut = service.submitProve(ProveJob{
      disconnected, IdAssignment::identity(4), makeConnectivity(), {}});
  EXPECT_THROW(fut.get(), std::invalid_argument);
  // The failure is not cached: a retry recomputes (and fails afresh).
  auto again = service.submitProve(ProveJob{
      disconnected, IdAssignment::identity(4), makeConnectivity(), {}});
  EXPECT_THROW(again.get(), std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
