// Batched serving pipeline: determinism (byte-identical certificates for
// every pool size, submission order, and interleaving), cache correctness,
// shutdown-with-pending-jobs, and the zero-job edge cases.
//
// The invariant under test is the serving layer's core promise: pushing a
// job through LaneCertService — whatever else is in flight — returns
// exactly the bytes the standalone proveCore / simulateEdgeScheme path
// produces with numThreads = 1.

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/prover.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"
#include "serve/service.hpp"

namespace lanecert {
namespace {

using serve::CancelledError;
using serve::LaneCertService;
using serve::ProveJob;
using serve::ServiceOptions;
using serve::VerifyJob;

struct Fixture {
  Graph graph;
  IdAssignment ids;
  PropertyPtr property;
  std::optional<IntervalRepresentation> rep;
  CoreProveResult expected;  ///< standalone single-thread reference
};

Fixture makeFixture(Graph g, IdAssignment ids, PropertyPtr prop,
                    std::optional<IntervalRepresentation> rep = {}) {
  Fixture f{std::move(g), std::move(ids), std::move(prop), std::move(rep), {}};
  f.expected = proveCore(f.graph, f.ids, *f.property,
                         f.rep ? &*f.rep : nullptr, 1);
  return f;
}

std::vector<Fixture> mixedFixtures() {
  std::vector<Fixture> out;
  Rng rng(77);
  auto bp = randomBoundedPathwidth(40, 2, 0.4, rng);
  auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  out.push_back(makeFixture(bp.graph, IdAssignment::random(40, 5),
                            makeConnectivity(), rep));
  out.push_back(makeFixture(bp.graph, IdAssignment::random(40, 6),
                            makeForest(), rep));
  out.push_back(makeFixture(pathGraph(30), IdAssignment::random(30, 7),
                            makePathProperty()));
  out.push_back(makeFixture(cycleGraph(16), IdAssignment::random(16, 8),
                            makeConnectivity()));
  out.push_back(makeFixture(completeGraph(6), IdAssignment::random(6, 9),
                            makeConnectivity()));
  out.push_back(
      makeFixture(Graph(1), IdAssignment::identity(1), makeConnectivity()));
  return out;
}

ProveJob toJob(const Fixture& f) {
  return ProveJob{f.graph, f.ids, f.property, f.rep};
}

void expectMatches(const CoreProveResult& got, const Fixture& f) {
  EXPECT_EQ(got.propertyHolds, f.expected.propertyHolds);
  EXPECT_EQ(got.labels, f.expected.labels);  // byte-identical certificates
  EXPECT_EQ(got.stats.width, f.expected.stats.width);
  EXPECT_EQ(got.stats.numLanes, f.expected.stats.numLanes);
  EXPECT_EQ(got.stats.hierarchyDepth, f.expected.stats.hierarchyDepth);
  EXPECT_EQ(got.stats.maxCongestion, f.expected.stats.maxCongestion);
  EXPECT_EQ(got.stats.maxLabelBits, f.expected.stats.maxLabelBits);
  EXPECT_EQ(got.stats.totalLabelBits, f.expected.stats.totalLabelBits);
}

TEST(Serve, BatchedProveBitIdenticalAcrossPoolSizes) {
  const std::vector<Fixture> fixtures = mixedFixtures();
  for (int poolSize : {1, 2, 4, 8}) {
    LaneCertService service(ServiceOptions{.numThreads = poolSize});
    std::vector<std::shared_future<CoreProveResult>> futures;
    for (const Fixture& f : fixtures) {
      futures.push_back(service.submitProve(toJob(f)));
    }
    for (std::size_t i = 0; i < fixtures.size(); ++i) {
      expectMatches(futures[i].get(), fixtures[i]);
    }
  }
}

TEST(Serve, SubmissionOrderAndInterleavingInvariant) {
  const std::vector<Fixture> fixtures = mixedFixtures();
  LaneCertService service(ServiceOptions{.numThreads = 4});
  // Reverse order on the main thread, forward order from three concurrent
  // client threads — every future must still match the standalone bytes.
  std::vector<std::shared_future<CoreProveResult>> reversed;
  for (auto it = fixtures.rbegin(); it != fixtures.rend(); ++it) {
    reversed.push_back(service.submitProve(toJob(*it)));
  }
  std::vector<std::vector<std::shared_future<CoreProveResult>>> perThread(3);
  std::vector<std::thread> clients;
  for (auto& slot : perThread) {
    clients.emplace_back([&service, &fixtures, &slot] {
      for (const Fixture& f : fixtures) {
        slot.push_back(service.submitProve(toJob(f)));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    expectMatches(reversed[i].get(), fixtures[fixtures.size() - 1 - i]);
    for (const auto& slot : perThread) {
      expectMatches(slot[i].get(), fixtures[i]);
    }
  }
}

TEST(Serve, VerifyJobsMatchStandalone) {
  Rng rng(31);
  auto bp = randomBoundedPathwidth(36, 2, 0.4, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(36, 11);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, &rep, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto reference =
      simulateEdgeScheme(bp.graph, ids, proved.labels, makeCoreVerifier(prop));
  ASSERT_TRUE(reference.allAccept);

  // A corrupted labeling must reject identically through the service.
  auto corrupted =
      std::make_shared<std::vector<std::string>>(proved.labels);
  (*corrupted)[0][(*corrupted)[0].size() / 2] ^= 0x10;
  const auto referenceBad =
      simulateEdgeScheme(bp.graph, ids, *corrupted, makeCoreVerifier(prop));
  ASSERT_FALSE(referenceBad.allAccept);

  const auto goodLabels =
      std::make_shared<const std::vector<std::string>>(proved.labels);
  for (int poolSize : {1, 4}) {
    LaneCertService service(ServiceOptions{.numThreads = poolSize});
    auto good =
        service.submitVerify(VerifyJob{bp.graph, ids, goodLabels, prop, {}});
    auto bad =
        service.submitVerify(VerifyJob{bp.graph, ids, corrupted, prop, {}});
    const SimulationResult g = good.get();
    EXPECT_TRUE(g.allAccept);
    EXPECT_EQ(g.rejecting, reference.rejecting);
    EXPECT_EQ(g.maxLabelBits, reference.maxLabelBits);
    EXPECT_EQ(g.totalLabelBits, reference.totalLabelBits);
    const SimulationResult b = bad.get();
    EXPECT_FALSE(b.allAccept);
    EXPECT_EQ(b.rejecting, referenceBad.rejecting);
    // Resubmitting the same payload coalesces by identity.
    auto again =
        service.submitVerify(VerifyJob{bp.graph, ids, goodLabels, prop, {}});
    EXPECT_EQ(again.get().rejecting, reference.rejecting);
    service.drain();
    EXPECT_EQ(service.stats().verifyJobsCompleted, 2u);  // good + bad only
  }
}

TEST(Serve, PlanCacheAmortizesAcrossPropertiesAndIds) {
  Rng rng(99);
  auto bp = randomBoundedPathwidth(32, 2, 0.4, rng);
  const auto idsA = IdAssignment::random(32, 1);
  const auto idsB = IdAssignment::random(32, 2);

  LaneCertService service(ServiceOptions{.numThreads = 2});
  // Same graph, no supplied representation: four jobs, one plan.
  auto f1 = service.submitProve(ProveJob{bp.graph, idsA, makeConnectivity(), {}});
  auto f2 = service.submitProve(ProveJob{bp.graph, idsA, makeForest(), {}});
  auto f3 = service.submitProve(ProveJob{bp.graph, idsB, makeConnectivity(), {}});
  auto f4 = service.submitProve(ProveJob{bp.graph, idsB, makeForest(), {}});
  const auto r1 = f1.get();
  const auto r2 = f2.get();
  const auto r3 = f3.get();
  const auto r4 = f4.get();
  service.drain();
  EXPECT_GE(service.stats().planCacheHits, 3u);

  // Cached-plan results must equal the standalone cold path bit-for-bit.
  EXPECT_EQ(r1.labels, proveCore(bp.graph, idsA, *makeConnectivity(), nullptr, 1).labels);
  EXPECT_EQ(r2.labels, proveCore(bp.graph, idsA, *makeForest(), nullptr, 1).labels);
  EXPECT_EQ(r3.labels, proveCore(bp.graph, idsB, *makeConnectivity(), nullptr, 1).labels);
  EXPECT_EQ(r4.labels, proveCore(bp.graph, idsB, *makeForest(), nullptr, 1).labels);
}

TEST(Serve, ResultCacheCoalescesDuplicateRequests) {
  const Graph g = pathGraph(24);
  const auto ids = IdAssignment::random(24, 3);
  LaneCertService service(ServiceOptions{.numThreads = 2});
  std::vector<std::shared_future<CoreProveResult>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(
        service.submitProve(ProveJob{g, ids, makeConnectivity(), {}}));
  }
  const auto expected = proveCore(g, ids, *makeConnectivity(), nullptr, 1);
  for (auto& f : futures) EXPECT_EQ(f.get().labels, expected.labels);
  service.drain();
  const auto stats = service.stats();
  EXPECT_EQ(stats.proveJobsCompleted, 1u);  // one computation, five answers
  EXPECT_EQ(stats.resultCacheHits, 4u);
}

TEST(Serve, ShutdownDrainsPendingJobs) {
  const std::vector<Fixture> fixtures = mixedFixtures();
  std::vector<std::shared_future<CoreProveResult>> futures;
  {
    LaneCertService service(ServiceOptions{.numThreads = 1});
    for (const Fixture& f : fixtures) {
      futures.push_back(service.submitProve(toJob(f)));
    }
    // Destructor runs with jobs pending: it must complete them all.
  }
  for (std::size_t i = 0; i < fixtures.size(); ++i) {
    expectMatches(futures[i].get(), fixtures[i]);
  }
}

TEST(Serve, CancelPendingFailsUnstartedFutures) {
  Rng rng(13);
  auto big = randomBoundedPathwidth(600, 2, 0.4, rng);
  const auto bigIds = IdAssignment::random(600, 21);
  LaneCertService service(
      ServiceOptions{.numThreads = 1, .maxConcurrentJobs = 1});
  std::vector<std::shared_future<CoreProveResult>> futures;
  // The big job occupies the single slot; the small ones queue behind it.
  futures.push_back(
      service.submitProve(ProveJob{big.graph, bigIds, makeConnectivity(), {}}));
  for (int seed = 0; seed < 4; ++seed) {
    futures.push_back(service.submitProve(ProveJob{
        pathGraph(20), IdAssignment::random(20, 40 + seed),
        makeConnectivity(), {}}));
  }
  const std::size_t cancelled = service.cancelPending();
  EXPECT_GE(cancelled, 1u);
  service.drain();
  EXPECT_EQ(service.stats().cancelledJobs, cancelled);
  std::size_t threw = 0;
  for (auto& f : futures) {
    try {
      const auto r = f.get();
      EXPECT_TRUE(r.propertyHolds);  // completed jobs completed correctly
    } catch (const CancelledError&) {
      ++threw;
    }
  }
  EXPECT_EQ(threw, cancelled);
}

TEST(Serve, ZeroJobsAndIdleDrain) {
  LaneCertService service;
  service.drain();  // idle drain returns immediately
  EXPECT_EQ(service.cancelPending(), 0u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.proveJobsCompleted, 0u);
  EXPECT_EQ(stats.verifyJobsCompleted, 0u);
  EXPECT_EQ(stats.cancelledJobs, 0u);
}

TEST(Serve, JobErrorsPropagateThroughFutures) {
  Graph disconnected(4);
  disconnected.addEdge(0, 1);  // vertices 2, 3 unreachable
  LaneCertService service(ServiceOptions{.numThreads = 2});
  auto fut = service.submitProve(ProveJob{
      disconnected, IdAssignment::identity(4), makeConnectivity(), {}});
  EXPECT_THROW(fut.get(), std::invalid_argument);
  // The failure is not cached: a retry recomputes (and fails afresh).
  auto again = service.submitProve(ProveJob{
      disconnected, IdAssignment::identity(4), makeConnectivity(), {}});
  EXPECT_THROW(again.get(), std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
