// Parameterized end-to-end sweep of the core scheme: every bundled property
// is proven and verified on every compatible graph family, in both the
// edge- and vertex-label models, with prover/verifier agreement checked
// against the ground truth of the sequential evaluator (Courcelle DP).
//
// This is the broad completeness net; targeted adversarial soundness lives
// in test_core.cpp.

#include <gtest/gtest.h>

#include <functional>

#include "core/scheme.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/transform.hpp"

namespace lanecert {
namespace {

struct SweepCase {
  std::string name;
  std::function<Graph()> makeGraph;
  std::function<PropertyPtr()> makeProp;
};

std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  const std::vector<std::pair<std::string, std::function<Graph()>>> families = {
      {"path17", [] { return pathGraph(17); }},
      {"cycle14", [] { return cycleGraph(14); }},
      {"star9", [] { return starGraph(9); }},
      {"caterpillar", [] { return caterpillar(6, 2); }},
      {"grid2x7", [] { return gridGraph(2, 7); }},
      {"tree", [] {
         Rng rng(77);
         return randomTree(16, rng);
       }},
      {"pw2rand", [] {
         Rng rng(41);
         return randomBoundedPathwidth(24, 2, 0.5, rng).graph;
       }},
  };
  const std::vector<std::pair<std::string, std::function<PropertyPtr()>>> props = {
      {"2col", [] { return makeColorability(2); }},
      {"forest", [] { return makeForest(); }},
      {"conn", [] { return makeConnectivity(); }},
      {"is-path", [] { return makePathProperty(); }},
      {"is-cycle", [] { return makeCycleProperty(); }},
      {"pm", [] { return makePerfectMatching(); }},
      {"vc4", [] { return makeVertexCover(4); }},
      {"ham-path", [] { return makeHamiltonianPath(); }},
      {"tri-free", [] { return makeTriangleFree(); }},
      {"maxdeg3", [] { return makeMaxDegree(3); }},
      {"par2", [] { return makeEdgeParity(2, 0); }},
      {"dom5", [] { return makeDominatingSet(5); }},
      {"ind4", [] { return makeIndependentSet(4); }},
      {"girth5", [] { return makeGirthAtLeast(5); }},
  };
  for (const auto& [gname, gf] : families) {
    for (const auto& [pname, pf] : props) {
      cases.push_back(SweepCase{gname + "/" + pname, gf, pf});
    }
  }
  return cases;
}

class CoreSweep : public ::testing::TestWithParam<int> {};

TEST_P(CoreSweep, EdgeModeMatchesGroundTruth) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  const Graph g = c.makeGraph();
  const PropertyPtr prop = c.makeProp();
  const IdAssignment ids = IdAssignment::random(g.numVertices(), 1234);
  const bool truth = evaluateOnGraph(*prop, g);
  const CoreRunResult r = proveAndVerifyEdges(g, ids, prop);
  EXPECT_EQ(r.propertyHolds, truth) << c.name << ": prover verdict wrong";
  if (truth) {
    EXPECT_TRUE(r.sim.allAccept)
        << c.name << ": honest labels rejected at vertex "
        << (r.sim.rejecting.empty() ? -1 : r.sim.rejecting[0]);
  }
}

TEST_P(CoreSweep, VertexModeMatchesGroundTruth) {
  const SweepCase c = sweepCases()[static_cast<std::size_t>(GetParam())];
  // Vertex mode is slower; sample every third case for breadth.
  if (GetParam() % 3 != 0) GTEST_SKIP();
  const Graph g = c.makeGraph();
  const PropertyPtr prop = c.makeProp();
  const IdAssignment ids = IdAssignment::random(g.numVertices(), 99);
  const bool truth = evaluateOnGraph(*prop, g);
  const CoreRunResult r = proveAndVerifyVertices(g, ids, prop);
  EXPECT_EQ(r.propertyHolds, truth) << c.name;
  if (truth) EXPECT_TRUE(r.sim.allAccept) << c.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamiliesAllProperties, CoreSweep,
                         ::testing::Range(0, 98));

TEST(CoreSweepExtra, Theorem1ParamsAcceptHonestLabels) {
  // Verifiers configured with the exact Theorem 1 constants for k = 1, 2
  // accept honest labelings of graphs with that pathwidth.
  for (const auto& [g, k] : std::vector<std::pair<Graph, int>>{
           {caterpillar(8, 2), 1}, {cycleGraph(12), 2}}) {
    const auto ids = IdAssignment::random(g.numVertices(), 4);
    const auto honest = proveCore(g, ids, *makeConnectivity());
    ASSERT_TRUE(honest.propertyHolds);
    const auto res = simulateEdgeScheme(
        g, ids, honest.labels,
        makeCoreVerifier(makeConnectivity(), theorem1Params(k)));
    EXPECT_TRUE(res.allAccept) << "k=" << k;
  }
}

TEST(CoreSweepExtra, DistinctIdSpacesGiveSameVerdict) {
  // The scheme must not depend on the identifier values.
  const Graph g = cycleGraph(10);
  for (std::uint64_t seed : {1ull, 999ull, 31337ull}) {
    const auto ids = IdAssignment::random(10, seed);
    const auto r = proveAndVerifyEdges(g, ids, makeCycleProperty());
    EXPECT_TRUE(r.propertyHolds && r.sim.allAccept) << "seed " << seed;
  }
  const auto idsIdentity = IdAssignment::identity(10);
  const auto r = proveAndVerifyEdges(g, idsIdentity, makeCycleProperty());
  EXPECT_TRUE(r.propertyHolds && r.sim.allAccept);
}

}  // namespace
}  // namespace lanecert
