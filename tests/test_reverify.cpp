// Incremental re-verification: the versioned LabelStore and the resumable
// VerifySession.
//
// The invariant under test is the session's core promise: after ANY
// sequence of edit batches — byte flips, grown/shrunk labels, restored
// honest labels, self-loop certificates — `reverify` (which re-checks only
// the dirty vertices) returns a SimulationResult byte-identical to a fresh
// simulateEdgeScheme sweep over the current labels, for every executor
// thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/records.hpp"
#include "core/verify_session.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/scheme.hpp"
#include "runtime/executor.hpp"
#include "runtime/label_store.hpp"

namespace lanecert {
namespace {

void expectSameResult(const SimulationResult& got,
                      const SimulationResult& want) {
  EXPECT_EQ(got.allAccept, want.allAccept);
  EXPECT_EQ(got.rejecting, want.rejecting);
  EXPECT_EQ(got.maxLabelBits, want.maxLabelBits);
  EXPECT_EQ(got.totalLabelBits, want.totalLabelBits);
}

// --- LabelStore: versioning, dirty sets, epoch storage --------------------

TEST(LabelStore, ApplyEditsVersionsDirtySetAndBitStats) {
  const Graph g = pathGraph(4);  // edges 0:{0,1} 1:{1,2} 2:{2,3}
  const std::vector<std::string> labels = {"aa", "bb", "cc"};
  LabelStore store(labels);
  EXPECT_EQ(store.version(), 0u);
  EXPECT_EQ(store.maxLabelBits(), 16u);
  EXPECT_EQ(store.totalLabelBits(), 48u);

  // Grow one label, shrink another: dirty set = endpoints, ascending and
  // deduplicated (vertex 2 touches both edits once).
  const std::vector<EdgeLabelEdit> batch1 = {{1, "dddd"}, {2, "e"}};
  EXPECT_EQ(store.applyEdits(g, batch1), (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.view(1), "dddd");
  EXPECT_EQ(store.view(2), "e");
  EXPECT_EQ(store.maxLabelBits(), 32u);
  EXPECT_EQ(store.totalLabelBits(), (2 + 4 + 1) * 8u);
  EXPECT_EQ(labels[1], "bb");  // caller bytes are never written through

  // Same-size rewrite of a store-owned label lands in place: the bytes
  // change, the address (which outstanding CSR rows alias) does not.
  const char* addr = store.view(1).data();
  const std::vector<EdgeLabelEdit> batch2 = {{1, "DDDD"}};
  EXPECT_EQ(store.applyEdits(g, batch2), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(store.view(1).data(), addr);
  EXPECT_EQ(store.view(1), "DDDD");
  EXPECT_EQ(store.version(), 2u);

  // Empty batches are no-ops; out-of-range batches apply NOTHING.
  EXPECT_TRUE(store.applyEdits(g, {}).empty());
  EXPECT_EQ(store.version(), 2u);
  const std::vector<EdgeLabelEdit> bad = {{0, "zz"}, {7, "x"}};
  EXPECT_THROW((void)store.applyEdits(g, bad), std::out_of_range);
  EXPECT_EQ(store.view(0), "aa");
  EXPECT_EQ(store.version(), 2u);
}

TEST(LabelStore, RefreshedIndexRowsMatchFreshRebuild) {
  Rng rng(7);
  auto bp = randomBoundedPathwidth(24, 2, 0.4, rng);
  std::vector<std::string> labels;
  for (EdgeId e = 0; e < bp.graph.numEdges(); ++e) {
    labels.push_back("label-" + std::to_string(e));
  }
  LabelStore store(labels);
  ParallelExecutor exec(2);
  VertexLabelIndex idx = buildIncidentEdgeIndex(bp.graph, store, exec);

  const std::vector<EdgeLabelEdit> batch = {
      {0, "zzz-resorts-last"}, {3, "AAA"}, {0, "000-resorts-first"}};
  const std::vector<VertexId> dirty = store.applyEdits(bp.graph, batch);
  refreshIncidentEdgeRows(idx, bp.graph, store, dirty);

  const VertexLabelIndex fresh = buildIncidentEdgeIndex(bp.graph, store, exec);
  ASSERT_EQ(idx.rowPtr, fresh.rowPtr);
  for (VertexId v = 0; v < bp.graph.numVertices(); ++v) {
    const auto a = idx.row(v);
    const auto b = fresh.row(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

// --- VerifySession: API contracts -----------------------------------------

TEST(VerifySession, ApiContracts) {
  const Graph g = pathGraph(5);
  const auto ids = IdAssignment::identity(5);
  const auto prop = makeConnectivity();
  EXPECT_THROW(VerifySession(g, ids, {"only-one"}, prop),
               std::invalid_argument);

  const auto proved = proveCore(g, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);
  VerifySession session(g, ids, proved.labels, prop);
  EXPECT_FALSE(session.swept());
  EXPECT_EQ(session.storeVersion(), 0u);

  // reverify before any sweep is a contract violation...
  ParallelExecutor exec(1);
  const std::vector<VertexId> dirty = {0};
  EXPECT_THROW((void)session.reverify(dirty, exec), std::logic_error);
  // ...but reverifyEdits falls back to the initial full sweep.
  EXPECT_TRUE(session.reverifyEdits({}, 1).allAccept);
  EXPECT_TRUE(session.swept());
  EXPECT_GT(session.sweepCacheSize(), 0u);

  const std::vector<VertexId> outOfRange = {99};
  EXPECT_THROW((void)session.reverify(outOfRange, exec), std::out_of_range);
  const std::vector<EdgeLabelEdit> badEdit = {{99, "x"}};
  EXPECT_THROW((void)session.applyEdits(badEdit), std::out_of_range);

  const std::vector<EdgeLabelEdit> edit = {{0, "garbage"}};
  const SimulationResult r = session.reverifyEdits(edit, 1);
  EXPECT_EQ(session.storeVersion(), 1u);
  EXPECT_FALSE(r.allAccept);
  EXPECT_EQ(session.label(0), "garbage");
  EXPECT_EQ(session.verdicts().size(), static_cast<std::size_t>(5));
}

// --- VerifySession: equivalence with fresh sweeps -------------------------

TEST(VerifySession, RandomEditSequencesMatchFreshSweepsAllThreadCounts) {
  Rng rng(515);
  auto bp = randomBoundedPathwidth(48, 2, 0.4, rng);
  const auto ids = IdAssignment::random(48, 9);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto verifier = makeCoreVerifier(prop);

  // One session per thread count, run in lockstep through the same batches;
  // each step compares every session against ONE fresh reference sweep
  // (fresh sweeps are thread-invariant, asserted by test_runtime.cpp).
  const std::vector<int> threadCounts = {1, 2, 4, 8};
  std::vector<std::unique_ptr<VerifySession>> sessions;
  for (std::size_t i = 0; i < threadCounts.size(); ++i) {
    sessions.push_back(std::make_unique<VerifySession>(bp.graph, ids,
                                                       proved.labels, prop));
  }
  std::vector<std::string> labels = proved.labels;  // mirror of the truth
  {
    const auto want = simulateEdgeScheme(bp.graph, ids, labels, verifier);
    ASSERT_TRUE(want.allAccept);
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      expectSameResult(sessions[i]->verifyAll(threadCounts[i]), want);
    }
  }

  const int m = bp.graph.numEdges();
  for (int step = 0; step < 24; ++step) {
    std::vector<EdgeLabelEdit> batch;
    const int count = rng.uniformInt(1, 4);
    for (int j = 0; j < count; ++j) {
      const auto e = static_cast<EdgeId>(rng.uniformInt(0, m - 1));
      std::string bytes = labels[static_cast<std::size_t>(e)];
      switch (bytes.empty() ? 3 : rng.uniformInt(0, 4)) {
        case 0: {  // flip one byte: size-preserving, the in-place path
          const auto at = static_cast<std::size_t>(
              rng.uniformInt(0, static_cast<int>(bytes.size()) - 1));
          bytes[at] = static_cast<char>(bytes[at] ^ (1 << rng.uniformInt(0, 7)));
          break;
        }
        case 1:  // grow: trailing junk must reject, never crash
          bytes += "junk";
          break;
        case 2:  // shrink: truncated certificates
          bytes.resize(bytes.size() / 2);
          break;
        case 3:  // restore the honest label (verdicts flip back to accept)
          bytes = proved.labels[static_cast<std::size_t>(e)];
          break;
        case 4: {  // a certificate claiming a self-loop (endA == endB)
          EdgeLabel tampered =
              EdgeLabel::decode(proved.labels[static_cast<std::size_t>(e)]);
          tampered.own.endB = tampered.own.endA;
          bytes = tampered.encoded();
          break;
        }
      }
      batch.push_back(EdgeLabelEdit{e, std::move(bytes)});
    }
    // Mirror in submission order: later edits to the same edge win.
    for (const EdgeLabelEdit& ed : batch) {
      labels[static_cast<std::size_t>(ed.edge)] = ed.bytes;
    }
    const auto want = simulateEdgeScheme(bp.graph, ids, labels, verifier);
    for (std::size_t i = 0; i < sessions.size(); ++i) {
      expectSameResult(sessions[i]->reverifyEdits(batch, threadCounts[i]),
                       want);
    }
  }
}

TEST(VerifySession, DegenerateGraphs) {
  const auto prop = makeConnectivity();

  // Single vertex, no edges: the empty batch runs the initial sweep.
  {
    const Graph g(1);
    const auto ids = IdAssignment::identity(1);
    const auto want = simulateEdgeScheme(g, ids, {}, makeCoreVerifier(prop));
    VerifySession session(g, ids, {}, prop);
    expectSameResult(session.reverifyEdits({}, 1), want);
    expectSameResult(session.reverifyEdits({}, 4), want);  // idempotent
  }

  // Two vertices, one edge: corrupt, then restore; both endpoints dirty.
  {
    Graph g(2);
    g.addEdge(0, 1);
    const auto ids = IdAssignment::random(2, 3);
    const auto proved = proveCore(g, ids, *prop, nullptr, 1);
    ASSERT_TRUE(proved.propertyHolds);
    const auto verifier = makeCoreVerifier(prop);
    VerifySession session(g, ids, proved.labels, prop);
    expectSameResult(session.verifyAll(2),
                     simulateEdgeScheme(g, ids, proved.labels, verifier));

    std::vector<std::string> labels = proved.labels;
    labels[0] = std::string("\x01\x02", 2);
    const std::vector<EdgeLabelEdit> corrupt = {{0, labels[0]}};
    expectSameResult(session.reverifyEdits(corrupt, 4),
                     simulateEdgeScheme(g, ids, labels, verifier));

    const std::vector<EdgeLabelEdit> restore = {{0, proved.labels[0]}};
    expectSameResult(
        session.reverifyEdits(restore, 1),
        simulateEdgeScheme(g, ids, proved.labels, verifier));
  }

  // Star: the hub is dirty under every edit, leaves only for their own edge.
  {
    const Graph g = caterpillar(1, 6);
    const auto ids = IdAssignment::random(g.numVertices(), 11);
    const auto proved = proveCore(g, ids, *prop, nullptr, 1);
    ASSERT_TRUE(proved.propertyHolds);
    const auto verifier = makeCoreVerifier(prop);
    VerifySession session(g, ids, proved.labels, prop);
    session.verifyAll(1);
    std::vector<std::string> labels = proved.labels;
    for (EdgeId e = 0; e < g.numEdges(); e += 2) {
      labels[static_cast<std::size_t>(e)].resize(1);
      const std::vector<EdgeLabelEdit> batch = {
          {e, labels[static_cast<std::size_t>(e)]}};
      expectSameResult(session.reverifyEdits(batch, 2),
                       simulateEdgeScheme(g, ids, labels, verifier));
    }
  }
}

TEST(VerifySession, SharedExecutorAndDirectDirtyListMatchFreshSweeps) {
  // The issue-facing signature: reverify(dirtyVertices, executor) with an
  // explicitly borrowed executor (the serving layer's calling convention).
  Rng rng(99);
  auto bp = randomBoundedPathwidth(32, 2, 0.4, rng);
  const auto ids = IdAssignment::random(32, 4);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(bp.graph, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto verifier = makeCoreVerifier(prop);

  WorkerPool pool(3);
  ParallelExecutor exec(pool);
  VerifySession session(bp.graph, ids, proved.labels, prop);
  session.verifyAll(exec);

  std::vector<std::string> labels = proved.labels;
  labels[5][0] = static_cast<char>(labels[5][0] ^ 0x40);
  const std::vector<EdgeLabelEdit> batch = {{5, labels[5]}};
  const std::vector<VertexId> dirty = session.applyEdits(batch);
  const Edge& edited = bp.graph.edge(5);
  EXPECT_EQ(dirty, (std::vector<VertexId>{
                       std::min(edited.u, edited.v),
                       std::max(edited.u, edited.v)}));
  expectSameResult(session.reverify(dirty, exec),
                   simulateEdgeScheme(bp.graph, ids, labels, verifier));
  EXPECT_EQ(session.storeVersion(), 1u);
}

// --- Epoch compaction ------------------------------------------------------

TEST(LabelStore, CompactEpochsFoldsGarbageAndKeepsViews) {
  const Graph g = pathGraph(4);  // edges 0:{0,1} 1:{1,2} 2:{2,3}
  const std::vector<std::string> labels = {"aa", "bb", "cc"};
  LabelStore store(labels);

  // Nothing owned yet: compaction is a no-op.
  EXPECT_TRUE(store.compactEpochs().empty());
  EXPECT_EQ(store.epochSlots(), 0u);

  // Alternate sizes on two edges: every rewrite is size-changing, so each
  // appends a fresh epoch slot and strands the previous one as garbage.
  for (int round = 0; round < 10; ++round) {
    const bool wide = (round % 2) == 0;
    const std::vector<EdgeLabelEdit> batch = {
        {0, wide ? "wide-0" : "n0"}, {2, wide ? "wide-2" : "n2"}};
    (void)store.applyEdits(g, batch);
  }
  EXPECT_EQ(store.epochSlots(), 20u);
  EXPECT_EQ(store.ownedLabels(), 2u);
  const std::uint64_t version = store.version();
  const std::string v0(store.view(0)), v1(store.view(1)), v2(store.view(2));

  const std::vector<std::size_t> moved = store.compactEpochs();
  EXPECT_EQ(moved, (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(store.epochSlots(), 2u);
  EXPECT_EQ(store.ownedLabels(), 2u);
  EXPECT_EQ(store.epochBytes(), v0.size() + v2.size());
  // Content identical, version untouched (result caches stay valid).
  EXPECT_EQ(store.view(0), v0);
  EXPECT_EQ(store.view(1), v1);
  EXPECT_EQ(store.view(2), v2);
  EXPECT_EQ(store.version(), version);

  // Already compact: no-op again (addresses must stay stable).
  const char* addr = store.view(0).data();
  EXPECT_TRUE(store.compactEpochs().empty());
  EXPECT_EQ(store.view(0).data(), addr);
}

TEST(VerifySession, SustainedEditsStayBoundedAndExact) {
  // A long alternating-size edit stream (the soak workload in miniature):
  // without compaction the store would hold one epoch slot per past edit.
  // The session must (a) keep epochSlots bounded by the live set, and
  // (b) stay byte-identical to a fresh sweep after every batch.
  Rng rng(21);
  auto bp = randomBoundedPathwidth(32, 2, 0.4, rng);
  const Graph& g = bp.graph;
  const auto ids = IdAssignment::random(g.numVertices(), 9);
  const auto prop = makeConnectivity();
  const auto proved = proveCore(g, ids, *prop, nullptr, 1);
  ASSERT_TRUE(proved.propertyHolds);
  const auto verifier = makeCoreVerifier(prop);

  VerifySession session(g, ids, proved.labels, prop);
  // Synthetic two-node topology forces the replica path, so replica
  // compaction coherence is exercised too.
  NumaNode n0, n1;
  n0.id = 0;
  n0.cpus = {0};
  n1.id = 1;
  n1.cpus = {0};
  session.setTopology(NumaTopology::forTesting({n0, n1}));
  session.verifyAll(2);
  ASSERT_EQ(session.labelReplicaCount(), 2u);

  std::vector<std::string> labels = proved.labels;
  const std::vector<EdgeId> edited = {1, 4, 7};
  std::size_t maxSlots = 0;
  for (int round = 0; round < 120; ++round) {
    std::vector<EdgeLabelEdit> batch;
    for (const EdgeId e : edited) {
      // Grow on even rounds, restore the honest bytes on odd rounds: every
      // rewrite changes size, the worst case for epoch growth.
      labels[static_cast<std::size_t>(e)] =
          (round % 2 == 0)
              ? proved.labels[static_cast<std::size_t>(e)] + "garbage"
              : proved.labels[static_cast<std::size_t>(e)];
      batch.push_back({e, labels[static_cast<std::size_t>(e)]});
    }
    session.reverifyEdits(batch, 2);
    maxSlots = std::max(maxSlots, session.epochSlots());
  }
  // Bound: at most 2 * live + slack (the compaction trigger), never the
  // ~360 slots the stream generated.
  EXPECT_LE(maxSlots, 2 * edited.size() + 64 + edited.size());

  // Exactness after the storm, against a fresh sweep AND after restoring
  // the honest labels entirely.
  expectSameResult(session.reverifyEdits({}, 2),
                   simulateEdgeScheme(g, ids, labels, verifier));
  std::vector<EdgeLabelEdit> restore;
  for (const EdgeId e : edited) {
    restore.push_back({e, proved.labels[static_cast<std::size_t>(e)]});
  }
  const SimulationResult healed = session.reverifyEdits(restore, 2);
  EXPECT_TRUE(healed.allAccept);
  expectSameResult(healed,
                   simulateEdgeScheme(g, ids, proved.labels, verifier));
}

}  // namespace
}  // namespace lanecert
