// Integration scenarios exercising the whole system the way a deployment
// would: multi-round self-stabilization lifecycles, multi-property
// certification of one network, larger-scale smoke runs, and the
// "certify once, verify forever" invariant (verification is deterministic
// and repeatable from stored labels alone).

#include <gtest/gtest.h>

#include "baseline/fmrt.hpp"
#include "core/scheme.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/transform.hpp"

namespace lanecert {
namespace {

TEST(Integration, NetworkLifecycle) {
  // Deploy -> steady-state rounds -> fault -> detection -> repair -> re-prove.
  const int n = 20;
  Graph ring = cycleGraph(n);
  const auto ids = IdAssignment::random(n, 77);
  const auto prop = makeCycleProperty();
  const auto verifier = makeCoreVerifier(prop);

  auto proved = proveCore(ring, ids, *prop);
  ASSERT_TRUE(proved.propertyHolds);

  // Ten "rounds" of re-verification from the same stored labels: a correct
  // PLS is stable (accepts every round, never flaps).
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(simulateEdgeScheme(ring, ids, proved.labels, verifier).allAccept)
        << "round " << round;
  }

  // Fault: one link's certificate is wiped (memory loss).
  auto faulty = proved.labels;
  faulty[7].clear();
  const auto detected = simulateEdgeScheme(ring, ids, faulty, verifier);
  EXPECT_FALSE(detected.allAccept);
  // Detection is local: only the endpoints of the wiped link can be the
  // first to notice (plus possibly their neighbors via path records).
  EXPECT_LE(detected.rejecting.size(), 6u);

  // Repair: the prover re-issues; the network is quiet again.
  proved = proveCore(ring, ids, *prop);
  EXPECT_TRUE(simulateEdgeScheme(ring, ids, proved.labels, verifier).allAccept);
}

TEST(Integration, OneNetworkManyProperties) {
  // A single network certified for several independent properties at once
  // (each property gets its own label set; all verify on the same views).
  const Graph g = cycleGraph(12);
  const auto ids = IdAssignment::random(12, 9);
  for (const PropertyPtr& prop :
       {makeConnectivity(), makeColorability(2), makeCycleProperty(),
        makeHamiltonianCycle(), makePerfectMatching(), makeMaxDegree(2),
        makeVertexCover(6), makeDominatingSet(4), makeIndependentSet(6),
        makeTriangleFree()}) {
    const auto r = proveAndVerifyEdges(g, ids, prop);
    EXPECT_TRUE(r.propertyHolds) << prop->name();
    EXPECT_TRUE(r.sim.allAccept) << prop->name();
  }
  // And the ones that genuinely fail on C12 are refused.
  for (const PropertyPtr& prop :
       {makeForest(), makePathProperty(), makeColorability(1),
        makeVertexCover(4)}) {
    EXPECT_FALSE(proveAndVerifyEdges(g, ids, prop).propertyHolds)
        << prop->name();
  }
}

TEST(Integration, LargeScaleSmoke) {
  // n = 2000 end-to-end (prove + verify) with a generator-provided
  // decomposition, the way a large deployment would run.
  Rng rng(123);
  const auto bp = randomBoundedPathwidth(2000, 2, 0.4, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(2000, 4);
  const auto r = proveAndVerifyEdges(bp.graph, ids, makeConnectivity(), &rep);
  ASSERT_TRUE(r.propertyHolds);
  EXPECT_TRUE(r.sim.allAccept);
  EXPECT_LE(r.stats.hierarchyDepth, 2 * r.stats.numLanes);
}

TEST(Integration, EdgeAndVertexModesAgree) {
  // The Prop 2.1 transformation must not change any verdict.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Rng rng(seed);
    const auto bp = randomBoundedPathwidth(18, 2, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(18, seed + 1);
    for (const PropertyPtr& prop : {makeConnectivity(), makeForest()}) {
      const auto edge = proveAndVerifyEdges(bp.graph, ids, prop, &rep);
      const auto vertex = proveAndVerifyVertices(bp.graph, ids, prop, &rep);
      EXPECT_EQ(edge.propertyHolds, vertex.propertyHolds)
          << prop->name() << " seed " << seed;
      if (edge.propertyHolds) {
        EXPECT_EQ(edge.sim.allAccept, vertex.sim.allAccept)
            << prop->name() << " seed " << seed;
      }
    }
  }
}

TEST(Integration, CoreAndBaselineAgreeOnVerdicts) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed + 50);
    const auto bp = randomBoundedPathwidth(16, 2, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(16, 3);
    for (const PropertyPtr& prop :
         {makeColorability(2), makeForest(), makePerfectMatching()}) {
      const bool core = proveCore(bp.graph, ids, *prop, &rep).propertyHolds;
      const bool fmrt = proveFmrt(bp.graph, ids, *prop, &rep).propertyHolds;
      EXPECT_EQ(core, fmrt) << prop->name() << " seed " << seed;
    }
  }
}

TEST(Integration, LabelsAreDeterministic) {
  // Re-proving the same configuration yields byte-identical labels —
  // essential for auditability of a deployed certificate store.
  const Graph g = caterpillar(6, 2);
  const auto ids = IdAssignment::random(g.numVertices(), 31);
  const auto a = proveCore(g, ids, *makeForest());
  const auto b = proveCore(g, ids, *makeForest());
  ASSERT_TRUE(a.propertyHolds && b.propertyHolds);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Integration, DisconnectedInputsAreRejectedUpfront) {
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  const auto ids = IdAssignment::identity(4);
  EXPECT_THROW((void)proveCore(g, ids, *makeForest()), std::invalid_argument);
  EXPECT_THROW((void)proveFmrt(g, ids, *makeForest()), std::invalid_argument);
}

TEST(Integration, TwoVertexNetwork) {
  // The smallest non-degenerate network.
  Graph g(2);
  g.addEdge(0, 1);
  const auto ids = IdAssignment::random(2, 8);
  const auto yes = proveAndVerifyEdges(g, ids, makePathProperty());
  EXPECT_TRUE(yes.propertyHolds);
  EXPECT_TRUE(yes.sim.allAccept);
  const auto no = proveAndVerifyEdges(g, ids, makeCycleProperty());
  EXPECT_FALSE(no.propertyHolds);
}

}  // namespace
}  // namespace lanecert
