// Tests for the exact and heuristic pathwidth solvers, validated against
// known pathwidth values of classic families.

#include <gtest/gtest.h>

#include <cstdint>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "pathwidth/pathwidth.hpp"
#include "runtime/executor.hpp"

namespace lanecert {
namespace {

TEST(ExactPathwidth, KnownFamilies) {
  EXPECT_EQ(exactPathwidth(pathGraph(1)).value(), 0);
  EXPECT_EQ(exactPathwidth(pathGraph(8)).value(), 1);
  EXPECT_EQ(exactPathwidth(cycleGraph(8)).value(), 2);
  EXPECT_EQ(exactPathwidth(starGraph(5)).value(), 1);
  EXPECT_EQ(exactPathwidth(caterpillar(4, 2)).value(), 1);
  EXPECT_EQ(exactPathwidth(completeGraph(5)).value(), 4);
  EXPECT_EQ(exactPathwidth(gridGraph(3, 5)).value(), 3);
  // The 3-level complete binary tree is a caterpillar: pathwidth 1.
  EXPECT_EQ(exactPathwidth(completeBinaryTree(3)).value(), 1);
  // The 4-level one (height 3) has pathwidth ceil(3/2) = 2.
  EXPECT_EQ(exactPathwidth(completeBinaryTree(4)).value(), 2);
}

TEST(ExactPathwidth, RefusesLargeGraphs) {
  EXPECT_FALSE(exactPathwidth(pathGraph(30), 22).has_value());
}

TEST(ExactPathwidth, LayoutCostMatchesReported) {
  const Graph g = gridGraph(3, 4);
  const auto layout = exactVertexSeparation(g);
  ASSERT_TRUE(layout.has_value());
  EXPECT_EQ(layoutCost(g, layout->order), layout->cost);
  EXPECT_EQ(layout->cost, 3);
}

TEST(ExactPathwidth, LayoutIsPermutation) {
  const Graph g = cycleGraph(9);
  const auto layout = exactVertexSeparation(g);
  ASSERT_TRUE(layout.has_value());
  std::vector<char> seen(9, 0);
  for (VertexId v : layout->order) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 9);
    EXPECT_FALSE(seen[static_cast<std::size_t>(v)]);
    seen[static_cast<std::size_t>(v)] = 1;
  }
}

TEST(LayoutToIntervalRep, ProducesValidRepOfMatchingWidth) {
  const Graph g = cycleGraph(10);
  const auto layout = exactVertexSeparation(g);
  ASSERT_TRUE(layout.has_value());
  const auto rep = layoutToIntervalRep(g, layout->order);
  EXPECT_TRUE(rep.isValidFor(g));
  EXPECT_EQ(rep.width(), layout->cost + 1);
}

TEST(GreedyVertexSeparation, UpperBoundsExact) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const Graph g = randomConnected(12, 0.25, rng);
    const auto exact = exactVertexSeparation(g);
    ASSERT_TRUE(exact.has_value());
    const Layout greedy = greedyVertexSeparation(g);
    EXPECT_GE(greedy.cost, exact->cost) << "seed " << seed;
    const auto rep = layoutToIntervalRep(g, greedy.order);
    EXPECT_TRUE(rep.isValidFor(g));
  }
}

TEST(GreedyVertexSeparation, ExactOnPaths) {
  const Graph g = pathGraph(40);
  const Layout greedy = greedyVertexSeparation(g);
  EXPECT_EQ(greedy.cost, 1);
}

TEST(ExactPathwidth, MatchesGeneratorBound) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 3);
    const auto bp = randomBoundedPathwidth(14, k, 0.6, rng);
    const auto pw = exactPathwidth(bp.graph);
    ASSERT_TRUE(pw.has_value());
    EXPECT_LE(*pw, k) << "seed " << seed;
  }
}

TEST(BestIntervalRepresentation, AlwaysValid) {
  Rng rng(21);
  const Graph small = randomConnected(10, 0.3, rng);
  EXPECT_TRUE(bestIntervalRepresentation(small).isValidFor(small));
  const Graph big = caterpillar(30, 3);
  const auto rep = bestIntervalRepresentation(big);
  EXPECT_TRUE(rep.isValidFor(big));
  // Caterpillars have pathwidth 1; even the greedy should stay small.
  EXPECT_LE(rep.width(), 4);
}

TEST(LayoutCost, RejectsNonPermutation) {
  const Graph g = pathGraph(3);
  EXPECT_THROW((void)layoutCost(g, {0, 1}), std::invalid_argument);
}

// --- parallel-identity properties -----------------------------------------
// greedyVertexSeparation's sharded argmin must pick the SAME vertex the
// serial loop picks at every step, for every thread count, so the whole
// downstream plan (and certificate) is bit-identical.  Graphs are >= 256
// vertices so the parallel path actually engages (small graphs stay serial
// by design), plus degenerate shapes that stress shard-boundary ties.

void expectParallelIdentity(const Graph& g) {
  const Layout serial = greedyVertexSeparation(g);
  const IntervalRepresentation serialRep =
      bestIntervalRepresentation(g, 18, nullptr);
  for (int t : {1, 2, 4, 8}) {
    ParallelExecutor exec(t);
    const Layout par = greedyVertexSeparation(g, &exec);
    EXPECT_EQ(par.order, serial.order) << "t=" << t;
    EXPECT_EQ(par.cost, serial.cost) << "t=" << t;
    const auto parRep = bestIntervalRepresentation(g, 18, &exec);
    EXPECT_EQ(parRep.intervals(), serialRep.intervals()) << "t=" << t;
  }
}

TEST(ParallelGreedy, IdenticalOnRandomBoundedPathwidth) {
  for (std::uint64_t seed : {7u, 19u, 43u}) {
    Rng rng(seed);
    const auto bp = randomBoundedPathwidth(300, 5, 0.5, rng);
    expectParallelIdentity(bp.graph);
  }
}

TEST(ParallelGreedy, IdenticalOnPathAndCycle) {
  // Maximal ties: every path vertex looks alike to the greedy scorer, so
  // the smallest-id tie-break is exercised at every single step.
  expectParallelIdentity(pathGraph(400));
  expectParallelIdentity(cycleGraph(400));
}

TEST(ParallelGreedy, IdenticalOnDenseAndStarShapes) {
  // Clique: all-equal scores again, but with dense boundaries.
  expectParallelIdentity(completeGraph(64 * 5));
  // Star: one hub dominates every shard's local view.
  expectParallelIdentity(starGraph(399));
}

TEST(ParallelGreedy, IdenticalOnRandomConnected) {
  Rng rng(5);
  expectParallelIdentity(randomConnected(280, 0.02, rng));
}

TEST(ParallelGreedy, SmallGraphsStayIdenticalToo) {
  // Below the parallel threshold the exec is ignored; the contract (same
  // result with or without exec) must hold regardless.
  Rng rng(11);
  const auto bp = randomBoundedPathwidth(24, 3, 0.5, rng);
  expectParallelIdentity(bp.graph);
}

}  // namespace
}  // namespace lanecert
