// Tests for the FMRT O(log² n) baseline: completeness across properties and
// families, the depth bound, size comparison against the core scheme, and
// basic rejection behavior.

#include <gtest/gtest.h>

#include "baseline/fmrt.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

void expectFmrtComplete(const Graph& g, PropertyPtr prop, const char* what) {
  const auto ids = IdAssignment::random(g.numVertices(), 31);
  const FmrtResult r = proveFmrt(g, ids, *prop);
  ASSERT_TRUE(r.propertyHolds) << what;
  const auto res = simulateVertexScheme(g, ids, r.labels, makeFmrtVerifier(prop));
  EXPECT_TRUE(res.allAccept) << what << " rejected at vertex "
                             << (res.rejecting.empty() ? -1 : res.rejecting[0]);
}

TEST(Fmrt, CompletenessAcrossProperties) {
  expectFmrtComplete(pathGraph(14), makePathProperty(), "path/is-path");
  expectFmrtComplete(cycleGraph(11), makeCycleProperty(), "cycle/is-cycle");
  expectFmrtComplete(cycleGraph(8), makeColorability(2), "cycle8/2col");
  expectFmrtComplete(caterpillar(5, 2), makeForest(), "caterpillar/forest");
  expectFmrtComplete(pathGraph(8), makePerfectMatching(), "path8/pm");
  expectFmrtComplete(gridGraph(2, 6), makeConnectivity(), "grid/conn");
}

TEST(Fmrt, RandomSweep) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto bp = randomBoundedPathwidth(35, 2, 0.4, rng);
    const auto ids = IdAssignment::random(35, seed + 1);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const FmrtResult r = proveFmrt(bp.graph, ids, *makeConnectivity(), &rep);
    ASSERT_TRUE(r.propertyHolds) << seed;
    EXPECT_TRUE(simulateVertexScheme(bp.graph, ids, r.labels,
                                     makeFmrtVerifier(makeConnectivity()))
                    .allAccept)
        << seed;
  }
}

TEST(Fmrt, ProverRefusesFalseInstances) {
  const auto ids = IdAssignment::identity(5);
  EXPECT_FALSE(proveFmrt(cycleGraph(5), ids, *makeColorability(2)).propertyHolds);
  EXPECT_FALSE(proveFmrt(cycleGraph(5), ids, *makeForest()).propertyHolds);
}

TEST(Fmrt, TreeDepthIsLogarithmic) {
  const auto ids = IdAssignment::random(300, 5);
  const auto r = proveFmrt(pathGraph(300), ids, *makeConnectivity());
  ASSERT_TRUE(r.propertyHolds);
  // ~300 bags: depth about log2(300) + 1 ~ 10.
  EXPECT_LE(r.treeDepth, 12);
  EXPECT_GE(r.treeDepth, 8);
}

TEST(Fmrt, MutationsMostlyRejected) {
  const Graph g = cycleGraph(12);
  const auto ids = IdAssignment::random(12, 9);
  const auto honest = proveFmrt(g, ids, *makeCycleProperty());
  ASSERT_TRUE(honest.propertyHolds);
  const auto verifier = makeFmrtVerifier(makeCycleProperty());
  Rng rng(3);
  int rejected = 0;
  int applied = 0;
  for (int t = 0; t < 120; ++t) {
    auto labels = honest.labels;
    if (!mutateLabels(labels, static_cast<Mutation>(t % 5), rng)) continue;
    ++applied;
    if (!simulateVertexScheme(g, ids, labels, verifier).allAccept) ++rejected;
  }
  EXPECT_GT(rejected * 10, applied * 8) << rejected << "/" << applied;
}

TEST(Fmrt, LabelGrowthIsSteeperThanCore) {
  // The separation is asymptotic (Θ(log² n) vs Θ(log n)); at laptop sizes
  // the CONSTANTS of the core scheme dominate (the paper's f/g/h constants
  // are enormous), so the honest comparison is growth, not absolute size:
  // going 16x in n, the baseline's labels must grow by a strictly larger
  // factor than the core scheme's.
  auto labelBits = [](const Graph& g, std::uint64_t seed) {
    const auto ids = IdAssignment::random(g.numVertices(), seed);
    const auto fmrt = proveFmrt(g, ids, *makeForest());
    const auto core = proveAndVerifyEdges(g, ids, makeForest());
    EXPECT_TRUE(fmrt.propertyHolds && core.propertyHolds);
    return std::make_pair(fmrt.maxLabelBits, core.sim.maxLabelBits);
  };
  const auto [fmrtSmall, coreSmall] = labelBits(caterpillar(16, 1), 2);
  const auto [fmrtLarge, coreLarge] = labelBits(caterpillar(256, 1), 3);
  const double fmrtGrowth =
      static_cast<double>(fmrtLarge) / static_cast<double>(fmrtSmall);
  const double coreGrowth =
      static_cast<double>(coreLarge) / static_cast<double>(coreSmall);
  EXPECT_GT(fmrtGrowth, coreGrowth);
}

}  // namespace
}  // namespace lanecert
