// Decoder hardening + fuzz-mutator unit tests.
//
// tests/test_pls.cpp pins the bare varint contract (10-byte cap,
// unterminated runs, overflow bytes); this file covers the adversarial
// edges the certificate fuzzer (tools/fuzz_cert.cpp) leans on:
//
//  * padded-but-valid varints up to exactly the 10-byte cap decode, one
//    byte more rejects — the mutator's kVarintPad mutation straddles that
//    boundary on purpose;
//  * truncation MID-varint and mid-record rejects cleanly at every cut
//    point of a real certificate (never crashes, never reads past end);
//  * zero-length through-payloads are legal encodings and round-trip;
//  * a hostile length prefix on a near-empty buffer rejects BEFORE any
//    proportional allocation (Decoder::remaining bounds every list
//    reserve — a 3-byte buffer claiming 2^16 elements is provably
//    malformed);
//  * the mutator itself is deterministic (same seed, same mutant) and its
//    classifier agrees with the real decoder.

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/fuzz_mutator.hpp"
#include "core/prover.hpp"
#include "core/records.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "pls/codec.hpp"
#include "runtime/arena.hpp"

namespace lanecert {
namespace {

/// One honest certificate label to mutate (largest of a real labeling, so
/// it has chain entries and through-records to corrupt).
const std::string& honestLabel() {
  static const std::string label = [] {
    const Graph g = cycleGraph(12);
    const auto ids = IdAssignment::random(12, 5);
    const auto proved = proveCore(g, ids, *makeConnectivity(), nullptr, 1);
    std::size_t best = 0;
    for (std::size_t i = 0; i < proved.labels.size(); ++i) {
      if (proved.labels[i].size() > proved.labels[best].size()) best = i;
    }
    return proved.labels[best];
  }();
  return label;
}

TEST(DecoderHardening, PaddedVarintsDecodeUpToTheCapOnly) {
  for (std::uint64_t value : {0ull, 1ull, 127ull, 128ull, 0xdeadbeefull}) {
    const std::size_t canonical = encodeVarint(value).size();
    for (std::size_t width = canonical; width <= 10; ++width) {
      const std::string enc = encodeVarint(value, width);
      ASSERT_EQ(enc.size(), width);
      Decoder dec{std::string_view(enc)};
      EXPECT_EQ(dec.u64(), value) << "value " << value << " width " << width;
      EXPECT_TRUE(dec.atEnd());
    }
    // 11 bytes always violates the ceil(64/7) cap, whatever the value.
    const std::string over = encodeVarint(value, 11);
    ASSERT_EQ(over.size(), 11u);
    Decoder dec{std::string_view(over)};
    EXPECT_THROW((void)dec.u64(), DecodeError);
  }
}

TEST(DecoderHardening, RemainingTracksReads) {
  Encoder enc;
  enc.u64(300);
  enc.bytes("abc");
  const std::string buf = enc.str();
  Decoder dec{std::string_view(buf)};
  EXPECT_EQ(dec.remaining(), buf.size());
  (void)dec.u64();
  EXPECT_EQ(dec.remaining(), buf.size() - 2);  // 300 is a 2-byte varint
  (void)dec.bytesView();
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_TRUE(dec.atEnd());
}

TEST(DecoderHardening, EveryTruncationOfARealLabelRejectsCleanly) {
  const std::string& label = honestLabel();
  ASSERT_TRUE(label.size() > 10);
  // Every proper prefix must reject (the grammar requires atEnd, so even a
  // cut between records is malformed) — and must never crash or hang.
  for (std::size_t cut = 0; cut < label.size(); ++cut) {
    const std::string_view prefix(label.data(), cut);
    EXPECT_THROW((void)EdgeLabel::decode(prefix), DecodeError)
        << "prefix of " << cut << " bytes decoded";
    Arena arena;
    EXPECT_THROW((void)EdgeLabelView::decode(prefix, arena), DecodeError);
  }
  // The untruncated bytes still decode (the loop above didn't luck out on
  // a trivially rejecting label).
  EXPECT_NO_THROW((void)EdgeLabel::decode(label));
}

TEST(DecoderHardening, ZeroLengthThroughPayloadsRoundTrip) {
  EdgeLabel label = EdgeLabel::decode(honestLabel());
  PathThrough empty;
  empty.uId = 3;
  empty.vId = 9;
  empty.fwdRank = 1;
  empty.bwdRank = 2;
  empty.payload.clear();  // zero-length payload is a legal ENCODING
  label.through.push_back(empty);
  const std::string bytes = label.encoded();

  const EdgeLabel back = EdgeLabel::decode(bytes);
  ASSERT_EQ(back.through.size(), label.through.size());
  EXPECT_EQ(back.through.back().payload, "");
  EXPECT_EQ(back.through.back().uId, 3u);

  Arena arena;
  const EdgeLabelView view = EdgeLabelView::decode(bytes, arena);
  ASSERT_EQ(view.through.size(), label.through.size());
  EXPECT_TRUE(view.through.back().payload.empty());
}

TEST(DecoderHardening, HostileLengthPrefixRejectsWithoutOverReserve) {
  // A tiny buffer whose chain-length field claims the full sanity cap:
  // EdgeCert = real(1) endA(1) endB(1) rootTNode(1) rootChildNode(1)
  // hasRootEntry(1) chainLen(lie).  With the remaining() clamp this must
  // reject on the length check itself — before reserving 2^16 entries.
  Encoder enc;
  enc.boolean(true);
  enc.u64(0);
  enc.u64(1);
  enc.i64(0);
  enc.i64(0);
  enc.boolean(false);
  enc.u64(std::uint64_t{1} << 16);  // claims 65536 chain entries, has 0 bytes
  const std::string hostile = enc.str();
  Decoder dec{std::string_view(hostile)};
  EXPECT_THROW((void)EdgeCert::decodeFrom(dec), DecodeError);

  // Same lie spliced into a real label via the mutator's machinery: find a
  // plausible varint site and inflate it; the decoder must reject, not
  // allocate.  (The full fuzzer hammers this path at scale; this is the
  // deterministic unit anchor.)
  const std::string& label = honestLabel();
  FuzzMutator mut(42);
  for (int i = 0; i < 64; ++i) {
    const std::string mutant = mut.mutate(label, label, FuzzKind::kLengthLie);
    try {
      (void)EdgeLabel::decode(mutant);
    } catch (const DecodeError&) {
      // rejected — the only acceptable failure mode
    }
  }
}

TEST(FuzzMutator, DeterministicAndClassifierAgreesWithDecoder) {
  const std::string& label = honestLabel();
  for (int kind = 0; kind < static_cast<int>(FuzzKind::kCount); ++kind) {
    FuzzMutator a(7 * (kind + 1));
    FuzzMutator b(7 * (kind + 1));
    const std::string ma = a.mutate(label, label, static_cast<FuzzKind>(kind));
    const std::string mb = b.mutate(label, label, static_cast<FuzzKind>(kind));
    EXPECT_EQ(ma, mb) << "kind " << fuzzKindName(static_cast<FuzzKind>(kind));

    const FuzzVerdictClass cls = classifyMutation(label, ma);
    bool decodes = true;
    try {
      (void)EdgeLabel::decode(ma);
    } catch (const DecodeError&) {
      decodes = false;
    }
    EXPECT_EQ(cls == FuzzVerdictClass::kMalformed, !decodes);
  }
  // An untouched copy classifies as a no-op.
  EXPECT_EQ(classifyMutation(label, label), FuzzVerdictClass::kNoop);
}

// --- SWAR fast-path identity ----------------------------------------------
// Decoder::u64 takes a two-byte SWAR shortcut (under LANECERT_SIMD) for the
// 1-2 byte varints that dominate certificates; u64Scalar is the byte-serial
// reference it falls back to.  The contract is total identity: same value,
// same final position, same DecodeError, on EVERY input.  These tests run
// both paths side by side; with LANECERT_SIMD off they degenerate to
// scalar-vs-scalar and stay green.

/// Decodes one varint with each path from the same start; asserts both
/// agree on outcome, value, and consumed bytes.
void expectSwarScalarIdentity(std::string_view buf) {
  Decoder fast{buf};
  Decoder ref{buf};
  std::uint64_t fastValue = 0;
  std::uint64_t refValue = 0;
  bool fastThrew = false;
  bool refThrew = false;
  try {
    fastValue = fast.u64();
  } catch (const DecodeError&) {
    fastThrew = true;
  }
  try {
    refValue = ref.u64Scalar();
  } catch (const DecodeError&) {
    refThrew = true;
  }
  ASSERT_EQ(fastThrew, refThrew) << "divergent outcome";
  if (!fastThrew) {
    EXPECT_EQ(fastValue, refValue);
    EXPECT_EQ(fast.remaining(), ref.remaining());
  }
}

TEST(SwarVarint, IdenticalOnCanonicalAndPaddedEncodings) {
  const std::uint64_t corpus[] = {
      0,    1,    0x7f,   0x80,   0x81,   0xff,       0x3fff,
      0x4000, 0xffff, 0x1ull << 21, 0xdeadbeefull, ~0ull};
  for (std::uint64_t value : corpus) {
    const std::size_t canonical = encodeVarint(value).size();
    for (std::size_t width = canonical; width <= 10; ++width) {
      expectSwarScalarIdentity(encodeVarint(value, width));
    }
  }
  // Padded zero (0x80 0x00): 2-byte encoding of 0 — the SWAR two-byte case
  // with an all-zero high byte.
  expectSwarScalarIdentity(std::string("\x80\x00", 2));
}

TEST(SwarVarint, IdenticalOnBufferTails) {
  // A 1-byte buffer can't take the 16-bit load; both paths must still
  // agree (value for a terminated byte, throw for a continuation byte).
  expectSwarScalarIdentity(std::string("\x05", 1));
  expectSwarScalarIdentity(std::string("\x80", 1));
  expectSwarScalarIdentity(std::string("\xff", 1));
  expectSwarScalarIdentity(std::string_view{});
  // Exactly two bytes left, second byte also a continuation: SWAR window
  // sees 0x8080 and must hand off to scalar, which then hits end-of-buffer.
  expectSwarScalarIdentity(std::string("\x80\x80", 2));
}

TEST(SwarVarint, IdenticalOnRandomByteSoup) {
  std::uint64_t state = 0x243f6a8885a308d3ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (int trial = 0; trial < 2000; ++trial) {
    std::string buf;
    const std::size_t len = next() % 12;
    for (std::size_t i = 0; i < len; ++i) {
      buf.push_back(static_cast<char>(next() & 0xff));
    }
    expectSwarScalarIdentity(buf);
  }
}

TEST(SwarVarint, WholeStreamIdentity) {
  // Decode an honest multi-varint stream twice, once per path, comparing
  // the full (value, position) trace.
  Encoder enc;
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 500; ++i) {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    // Bias toward the 1-2 byte range the SWAR path serves.
    const std::uint64_t v =
        (i % 3 == 0) ? state : (state & ((i % 2 == 0) ? 0x7full : 0x3fffull));
    values.push_back(v);
    enc.u64(v);
  }
  Decoder fast{std::string_view(enc.str())};
  Decoder ref{std::string_view(enc.str())};
  for (std::uint64_t expected : values) {
    ASSERT_EQ(fast.u64(), expected);
    ASSERT_EQ(ref.u64Scalar(), expected);
    ASSERT_EQ(fast.remaining(), ref.remaining());
  }
  EXPECT_TRUE(fast.atEnd());
  EXPECT_TRUE(ref.atEnd());
}

}  // namespace
}  // namespace lanecert
