// Tests connecting the MSO2 formula library to (a) known graph families,
// (b) the compositional property algebra, and (c) brute-force algorithms —
// documenting that the bundled properties realize their MSO2 definitions.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/bruteforce.hpp"
#include "mso/formula.hpp"
#include "mso/properties.hpp"
#include "mso/property.hpp"

namespace lanecert {
namespace {

Graph randomSmall(std::uint64_t seed, VertexId n, double p) {
  Rng rng(seed);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.flip(p)) g.addEdge(u, v);
    }
  }
  return g;
}

TEST(MsoFormula, BipartiteOnKnownFamilies) {
  EXPECT_TRUE(msoEvaluate(msoBipartite(), cycleGraph(6)));
  EXPECT_FALSE(msoEvaluate(msoBipartite(), cycleGraph(5)));
  EXPECT_TRUE(msoEvaluate(msoBipartite(), pathGraph(5)));
  EXPECT_FALSE(msoEvaluate(msoBipartite(), completeGraph(3)));
}

TEST(MsoFormula, ForestOnKnownFamilies) {
  EXPECT_TRUE(msoEvaluate(msoForest(), pathGraph(6)));
  EXPECT_TRUE(msoEvaluate(msoForest(), starGraph(4)));
  EXPECT_FALSE(msoEvaluate(msoForest(), cycleGraph(4)));
}

TEST(MsoFormula, ConnectedOnKnownFamilies) {
  EXPECT_TRUE(msoEvaluate(msoConnected(), cycleGraph(5)));
  Graph g(4);
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  EXPECT_FALSE(msoEvaluate(msoConnected(), g));
}

TEST(MsoFormula, PerfectMatchingOnKnownFamilies) {
  EXPECT_TRUE(msoEvaluate(msoPerfectMatching(), pathGraph(4)));
  EXPECT_FALSE(msoEvaluate(msoPerfectMatching(), pathGraph(5)));
  EXPECT_TRUE(msoEvaluate(msoPerfectMatching(), cycleGraph(6)));
}

TEST(MsoFormula, HamiltonianCycleOnKnownFamilies) {
  EXPECT_TRUE(msoEvaluate(msoHamiltonianCycle(), cycleGraph(5)));
  EXPECT_TRUE(msoEvaluate(msoHamiltonianCycle(), completeGraph(4)));
  EXPECT_FALSE(msoEvaluate(msoHamiltonianCycle(), pathGraph(4)));
  EXPECT_FALSE(msoEvaluate(msoHamiltonianCycle(), starGraph(3)));
}

TEST(MsoFormula, TriangleFreeOnKnownFamilies) {
  EXPECT_TRUE(msoEvaluate(msoTriangleFree(), cycleGraph(5)));
  EXPECT_FALSE(msoEvaluate(msoTriangleFree(), completeGraph(3)));
}

TEST(MsoFormula, AgreesWithPropertyAlgebraOnRandomGraphs) {
  struct Case {
    MsoPtr formula;
    PropertyPtr prop;
    const char* name;
  };
  const std::vector<Case> cases = {
      {msoBipartite(), makeColorability(2), "bipartite"},
      {msoForest(), makeForest(), "forest"},
      {msoConnected(), makeConnectivity(), "connected"},
      {msoPerfectMatching(), makePerfectMatching(), "matching"},
      {msoTriangleFree(), makeTriangleFree(), "triangle-free"},
  };
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const VertexId n = 3 + static_cast<VertexId>(seed % 4);
    const Graph g = randomSmall(seed * 31 + 7, n, 0.35);
    if (g.numEdges() > 10) continue;  // keep set quantifiers cheap
    for (const Case& c : cases) {
      EXPECT_EQ(msoEvaluate(c.formula, g), evaluateOnGraph(*c.prop, g))
          << c.name << " seed " << seed;
    }
  }
}

TEST(MsoFormula, HamiltonianAgreesWithBruteForce) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const Graph g = randomSmall(seed * 13 + 3, 5, 0.5);
    if (g.numEdges() > 9) continue;
    EXPECT_EQ(msoEvaluate(msoHamiltonianCycle(), g), hasHamiltonianCycleBrute(g))
        << "seed " << seed;
  }
}

TEST(MsoFormula, PrettyPrinter) {
  const std::string s = msoToString(msoBipartite());
  EXPECT_NE(s.find("∃U"), std::string::npos);
  EXPECT_NE(s.find("adj(u,v)"), std::string::npos);
}

TEST(MsoFormula, RejectsFreeVariables) {
  const auto bad = mso::adjacent("u", "v");  // u, v never bound
  EXPECT_THROW((void)msoEvaluate(bad, pathGraph(2)), std::invalid_argument);
}

TEST(MsoFormula, RejectsHugeGraphs) {
  EXPECT_THROW((void)msoEvaluate(msoBipartite(), pathGraph(80)),
               std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
