// End-to-end tests of the core scheme (Theorem 1): completeness across
// properties × graph families, prover refusal on false instances,
// adversarial soundness, the vertex-label mode (Prop 2.1), and the
// structural statistics (lanes, depth, congestion, label growth).

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lane/bounds.hpp"
#include "mso/properties.hpp"
#include "pathwidth/pathwidth.hpp"
#include "pls/transform.hpp"

namespace lanecert {
namespace {

void expectComplete(const Graph& g, PropertyPtr prop, const char* what,
                    const IntervalRepresentation* rep = nullptr) {
  const auto ids = IdAssignment::random(g.numVertices(), 12345);
  const CoreRunResult r = proveAndVerifyEdges(g, ids, prop, rep);
  ASSERT_TRUE(r.propertyHolds) << what << ": prover rejected a true instance";
  EXPECT_TRUE(r.sim.allAccept)
      << what << ": verifier rejected honest labels at vertex "
      << (r.sim.rejecting.empty() ? -1 : r.sim.rejecting[0]);
}

TEST(CoreScheme, PathAcceptsIsPath) {
  expectComplete(pathGraph(10), makePathProperty(), "path10/is-path");
}

TEST(CoreScheme, CycleAcceptsIsCycle) {
  expectComplete(cycleGraph(9), makeCycleProperty(), "cycle9/is-cycle");
}

TEST(CoreScheme, BipartiteFamilies) {
  expectComplete(pathGraph(12), makeColorability(2), "path12/2col");
  expectComplete(cycleGraph(8), makeColorability(2), "cycle8/2col");
  expectComplete(caterpillar(5, 2), makeColorability(2), "caterpillar/2col");
  expectComplete(starGraph(6), makeColorability(2), "star6/2col");
}

TEST(CoreScheme, ForestFamilies) {
  expectComplete(caterpillar(6, 1), makeForest(), "caterpillar/forest");
  Rng rng(4);
  expectComplete(randomTree(14, rng), makeForest(), "tree/forest");
}

TEST(CoreScheme, Connectivity) {
  expectComplete(cycleGraph(7), makeConnectivity(), "cycle7/conn");
  expectComplete(gridGraph(2, 5), makeConnectivity(), "grid/conn");
}

TEST(CoreScheme, PerfectMatching) {
  expectComplete(pathGraph(8), makePerfectMatching(), "path8/pm");
  expectComplete(cycleGraph(6), makePerfectMatching(), "cycle6/pm");
}

TEST(CoreScheme, VertexCover) {
  expectComplete(starGraph(5), makeVertexCover(1), "star/vc1");
  expectComplete(cycleGraph(6), makeVertexCover(3), "cycle6/vc3");
}

TEST(CoreScheme, Hamiltonian) {
  expectComplete(pathGraph(7), makeHamiltonianPath(), "path7/hamp");
  expectComplete(cycleGraph(7), makeHamiltonianCycle(), "cycle7/hamc");
}

TEST(CoreScheme, TriangleFreeAndCounting) {
  expectComplete(cycleGraph(8), makeTriangleFree(), "cycle8/trifree");
  expectComplete(pathGraph(6), makeEdgeParity(5, 0), "path6/parity");
  expectComplete(cycleGraph(5), makeMaxDegree(2), "cycle5/maxdeg");
}

TEST(CoreScheme, ThreeColorabilityOnSmallWidth) {
  expectComplete(cycleGraph(7), makeColorability(3), "cycle7/3col");
}

TEST(CoreScheme, RandomBoundedPathwidthSweep) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 2);
    const auto bp = randomBoundedPathwidth(30, k, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    expectComplete(bp.graph, makeConnectivity(),
                   ("sweep-conn seed " + std::to_string(seed)).c_str(), &rep);
    expectComplete(bp.graph, makeEdgeParity(3, bp.graph.numEdges() % 3),
                   ("sweep-parity seed " + std::to_string(seed)).c_str(), &rep);
  }
}

TEST(CoreScheme, SingleVertexGraph) {
  const Graph g(1);
  const auto ids = IdAssignment::identity(1);
  const auto yes = proveAndVerifyEdges(g, ids, makePathProperty());
  EXPECT_TRUE(yes.propertyHolds);
  EXPECT_TRUE(yes.sim.allAccept);
  const auto no = proveAndVerifyEdges(g, ids, makeCycleProperty());
  EXPECT_FALSE(no.propertyHolds);
}

TEST(CoreScheme, ProverRefusesFalseInstances) {
  const auto ids5 = IdAssignment::identity(5);
  EXPECT_FALSE(proveAndVerifyEdges(cycleGraph(5), ids5, makeColorability(2))
                   .propertyHolds);
  EXPECT_FALSE(proveAndVerifyEdges(cycleGraph(5), ids5, makeForest())
                   .propertyHolds);
  EXPECT_FALSE(proveAndVerifyEdges(cycleGraph(5), ids5, makePathProperty())
                   .propertyHolds);
  const auto ids4 = IdAssignment::identity(4);
  EXPECT_FALSE(proveAndVerifyEdges(starGraph(3), ids4, makeHamiltonianPath())
                   .propertyHolds);
}

TEST(CoreScheme, StatsRespectTheoreticalBounds) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    Rng rng(seed);
    const auto bp = randomBoundedPathwidth(40, 2, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(40, seed);
    const auto r = proveAndVerifyEdges(bp.graph, ids, makeConnectivity(), &rep);
    ASSERT_TRUE(r.propertyHolds);
    EXPECT_TRUE(r.sim.allAccept);
    EXPECT_LE(r.stats.numLanes, fLanes(r.stats.width));
    EXPECT_LE(r.stats.hierarchyDepth, 2 * r.stats.numLanes);
    EXPECT_LE(r.stats.maxCongestion, hCongestion(r.stats.width));
  }
}

TEST(CoreScheme, LabelsGrowLogarithmically) {
  // Pathwidth-1 family at two sizes: label bits must grow far slower than n.
  const auto ids1 = IdAssignment::random(32, 1);
  const auto small = proveAndVerifyEdges(caterpillar(15, 1), ids1, makeForest());
  const auto ids2 = IdAssignment::random(512, 2);
  const auto large =
      proveAndVerifyEdges(caterpillar(255, 1), ids2, makeForest());
  ASSERT_TRUE(small.propertyHolds && large.propertyHolds);
  EXPECT_TRUE(small.sim.allAccept);
  EXPECT_TRUE(large.sim.allAccept);
  // 16x vertices; O(log n) labels should grow by far less than 4x.
  EXPECT_LT(large.sim.maxLabelBits, 4 * small.sim.maxLabelBits);
}

TEST(CoreScheme, VertexModeCompleteness) {
  const auto ids = IdAssignment::random(12, 99);
  for (const auto& [g, prop] :
       std::vector<std::pair<Graph, PropertyPtr>>{
           {pathGraph(12), makePathProperty()},
           {cycleGraph(12), makeCycleProperty()},
           {caterpillar(4, 2), makeForest()},
       }) {
    const auto idsG = IdAssignment::random(g.numVertices(), 7);
    const auto r = proveAndVerifyVertices(g, idsG, prop);
    ASSERT_TRUE(r.propertyHolds);
    EXPECT_TRUE(r.sim.allAccept) << prop->name();
  }
}

// --- Adversarial soundness ---

TEST(CoreSoundness, NoLabelingMakesCycleAPath) {
  // The Ω(log n) lower-bound pair: is-path must reject every labeling of a
  // cycle.  Try honest path labels stretched onto the cycle plus mutations.
  const int n = 8;
  const Graph cycle = cycleGraph(n);
  const Graph path = pathGraph(n);
  const auto ids = IdAssignment::identity(n);
  const auto verifier = makeCoreVerifier(makePathProperty());

  const auto honestPath = proveCore(path, ids, *makePathProperty());
  ASSERT_TRUE(honestPath.propertyHolds);

  Rng rng(31);
  int trials = 0;
  for (int t = 0; t < 300; ++t) {
    std::vector<std::string> labels = honestPath.labels;
    labels.push_back(labels[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<int>(labels.size()) - 1))]);
    // Shuffle + mutate to explore the label space.
    std::shuffle(labels.begin(), labels.end(), rng.engine());
    if (t % 3 != 0) {
      (void)mutateLabels(labels, static_cast<Mutation>(t % 5), rng);
    }
    const auto res = simulateEdgeScheme(cycle, ids, labels, verifier);
    EXPECT_FALSE(res.allAccept) << "cycle accepted as path at trial " << t;
    ++trials;
  }
  EXPECT_EQ(trials, 300);
}

TEST(CoreSoundness, RandomLabelsAlwaysRejected) {
  const Graph g = cycleGraph(6);
  const auto ids = IdAssignment::identity(6);
  const auto verifier = makeCoreVerifier(makeForest());  // false: has a cycle
  Rng rng(77);
  for (int t = 0; t < 100; ++t) {
    std::vector<std::string> labels;
    for (int e = 0; e < 6; ++e) {
      std::string s(static_cast<std::size_t>(rng.uniformInt(1, 60)), '\0');
      for (char& c : s) c = static_cast<char>(rng.uniformInt(0, 255));
      labels.push_back(std::move(s));
    }
    EXPECT_FALSE(simulateEdgeScheme(g, ids, labels, verifier).allAccept);
  }
}

TEST(CoreSoundness, WrongPropertyLabelsRejected) {
  // Honest labels for connectivity fed to the bipartiteness verifier on an
  // odd cycle: hom-state bytes cannot match and must be rejected.
  const Graph g = cycleGraph(5);
  const auto ids = IdAssignment::identity(5);
  const auto honest = proveCore(g, ids, *makeConnectivity());
  ASSERT_TRUE(honest.propertyHolds);
  const auto res = simulateEdgeScheme(g, ids, honest.labels,
                                      makeCoreVerifier(makeColorability(2)));
  EXPECT_FALSE(res.allAccept);
}

TEST(CoreSoundness, MutationCampaign) {
  // Mutating honest labels of a TRUE instance must never crash and is
  // overwhelmingly rejected (acceptance would just mean another valid
  // proof, but bit flips essentially never produce one).
  const Graph g = cycleGraph(10);
  const auto ids = IdAssignment::random(10, 5);
  const auto honest = proveCore(g, ids, *makeCycleProperty());
  ASSERT_TRUE(honest.propertyHolds);
  const auto verifier = makeCoreVerifier(makeCycleProperty());
  Rng rng(13);
  int rejected = 0;
  int applied = 0;
  for (int t = 0; t < 250; ++t) {
    auto labels = honest.labels;
    if (!mutateLabels(labels, static_cast<Mutation>(t % 5), rng)) continue;
    ++applied;
    if (!simulateEdgeScheme(g, ids, labels, verifier).allAccept) ++rejected;
  }
  EXPECT_GT(applied, 180);
  EXPECT_GT(rejected * 100, applied * 95) << rejected << "/" << applied;
}

TEST(CoreSoundness, EdgeCannotBeHiddenAsVirtual) {
  // Take honest forest labels for a path, then attach them to a graph with
  // one extra edge (making a cycle) while reusing an existing label for it:
  // some vertex must reject.
  const int n = 7;
  const Graph path = pathGraph(n);
  Graph cycle = pathGraph(n);
  cycle.addEdge(n - 1, 0);
  const auto ids = IdAssignment::identity(n);
  const auto honest = proveCore(path, ids, *makeForest());
  ASSERT_TRUE(honest.propertyHolds);
  const auto verifier = makeCoreVerifier(makeForest());
  for (std::size_t reuse = 0; reuse < honest.labels.size(); ++reuse) {
    auto labels = honest.labels;
    labels.push_back(labels[reuse]);
    EXPECT_FALSE(simulateEdgeScheme(cycle, ids, labels, verifier).allAccept)
        << "hidden-edge attack accepted with reuse " << reuse;
  }
}

TEST(CoreSoundness, VertexModeMutationCampaign) {
  const Graph g = caterpillar(4, 1);
  const auto ids = IdAssignment::random(g.numVertices(), 8);
  const auto honest = proveCore(g, ids, *makeForest());
  ASSERT_TRUE(honest.propertyHolds);
  const auto vlabels = edgeLabelsToVertexLabels(g, ids, honest.labels);
  const auto verifier = liftEdgeVerifier(makeCoreVerifier(makeForest()));
  Rng rng(21);
  int rejected = 0;
  int applied = 0;
  for (int t = 0; t < 150; ++t) {
    auto labels = vlabels;
    if (!mutateLabels(labels, static_cast<Mutation>(t % 5), rng)) continue;
    ++applied;
    if (!simulateVertexScheme(g, ids, labels, verifier).allAccept) ++rejected;
  }
  EXPECT_GT(rejected * 100, applied * 90) << rejected << "/" << applied;
}

TEST(CoreScheme, MaxLanesBoundEnforced) {
  // A pathwidth-2 instance needs more than one lane; a verifier configured
  // for maxLanes = 1 must reject the honest labels.
  const Graph g = cycleGraph(8);
  const auto ids = IdAssignment::identity(8);
  const auto honest = proveCore(g, ids, *makeConnectivity());
  ASSERT_TRUE(honest.propertyHolds);
  CoreVerifierParams tight;
  tight.maxLanes = 1;
  EXPECT_FALSE(simulateEdgeScheme(g, ids, honest.labels,
                                  makeCoreVerifier(makeConnectivity(), tight))
                   .allAccept);
  CoreVerifierParams ample;
  ample.maxLanes = 64;
  EXPECT_TRUE(simulateEdgeScheme(g, ids, honest.labels,
                                 makeCoreVerifier(makeConnectivity(), ample))
                  .allAccept);
}

}  // namespace
}  // namespace lanecert
