// Tests for the PLS framework: codec, simulation, the Prop 2.2 pointer
// scheme (completeness + adversarial soundness), the Prop 2.1 edge->vertex
// transform, and the classic bipartiteness / trivial schemes.

#include <gtest/gtest.h>

#include <limits>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "pls/classic.hpp"
#include "pls/codec.hpp"
#include "pls/pointer.hpp"
#include "pls/scheme.hpp"
#include "pls/transform.hpp"

namespace lanecert {
namespace {

TEST(Codec, RoundTrip) {
  Encoder enc;
  enc.u64(0);
  enc.u64(127);
  enc.u64(128);
  enc.u64(0xdeadbeefcafe);
  enc.i64(-5);
  enc.i64(1234567);
  enc.bytes("hello");
  enc.boolean(true);
  enc.boolean(false);
  Decoder dec(enc.str());
  EXPECT_EQ(dec.u64(), 0u);
  EXPECT_EQ(dec.u64(), 127u);
  EXPECT_EQ(dec.u64(), 128u);
  EXPECT_EQ(dec.u64(), 0xdeadbeefcafeu);
  EXPECT_EQ(dec.i64(), -5);
  EXPECT_EQ(dec.i64(), 1234567);
  EXPECT_EQ(dec.bytes(), "hello");
  EXPECT_TRUE(dec.boolean());
  EXPECT_FALSE(dec.boolean());
  EXPECT_TRUE(dec.atEnd());
}

TEST(Codec, ThrowsOnTruncation) {
  Encoder enc;
  enc.u64(1u << 20);
  const std::string full = enc.str();
  Decoder dec(full);
  (void)dec.u64();
  EXPECT_TRUE(dec.atEnd());
  const std::string cut = full.substr(0, 1);
  Decoder dec2(cut);
  EXPECT_THROW((void)dec2.u64(), DecodeError);
  Decoder dec3(std::string{});
  EXPECT_THROW((void)dec3.boolean(), DecodeError);
}

TEST(Codec, RejectsUnterminatedVarintRun) {
  // An adversarial run of 0x80 continuation bytes must throw after at most
  // 10 bytes (ceil(64 / 7)), not scan to the end of the buffer.
  Decoder dec(std::string(11, '\x80'));
  EXPECT_THROW((void)dec.u64(), DecodeError);
  // Still malformed when a valid terminator hides beyond the 10-byte cap.
  Decoder dec2(std::string(10, '\x80') + '\x01');
  EXPECT_THROW((void)dec2.u64(), DecodeError);
  // A huge all-continuation buffer must not be accepted either.
  Decoder dec3(std::string(4096, '\x80'));
  EXPECT_THROW((void)dec3.u64(), DecodeError);
}

TEST(Codec, RejectsVarintOverflowByte) {
  // The 10th byte may only contribute bit 63; anything above overflows
  // uint64 and must reject rather than silently truncate.
  Decoder overflow(std::string(9, '\xff') + '\x02');
  EXPECT_THROW((void)overflow.u64(), DecodeError);
  Decoder max(std::string(9, '\xff') + '\x01');
  EXPECT_EQ(max.u64(), ~std::uint64_t{0});
  EXPECT_TRUE(max.atEnd());
}

TEST(Codec, U64MaxRoundTrips) {
  Encoder enc;
  enc.u64(~std::uint64_t{0});
  enc.i64(std::numeric_limits<std::int64_t>::min());
  Decoder dec(enc.str());
  EXPECT_EQ(dec.u64(), ~std::uint64_t{0});
  EXPECT_EQ(dec.i64(), std::numeric_limits<std::int64_t>::min());
  EXPECT_TRUE(dec.atEnd());
}

TEST(Codec, BorrowingDecoderReadsViews) {
  Encoder enc;
  enc.u64(1234);
  enc.bytes("payload");
  const std::string backing = enc.str();
  Decoder dec(std::string_view{backing});
  EXPECT_EQ(dec.u64(), 1234u);
  const std::string_view v = dec.bytesView();
  EXPECT_EQ(v, "payload");
  // Zero-copy: the view aliases the backing buffer.
  EXPECT_GE(v.data(), backing.data());
  EXPECT_LE(v.data() + v.size(), backing.data() + backing.size());
}

TEST(Simulation, VerifierExceptionsAreRejections) {
  const Graph g = pathGraph(3);
  const auto ids = IdAssignment::identity(3);
  const std::vector<std::string> labels(3, "x");
  const auto res = simulateVertexScheme(
      g, ids, labels, [](const VertexView&) -> bool { throw DecodeError{}; });
  EXPECT_FALSE(res.allAccept);
  EXPECT_EQ(res.rejecting.size(), 3u);
}

TEST(Simulation, LabelBitsAccounting) {
  const Graph g = pathGraph(2);
  const auto ids = IdAssignment::identity(2);
  const std::vector<std::string> labels = {"abcd", "x"};
  const auto res = simulateVertexScheme(g, ids, labels,
                                        [](const VertexView&) { return true; });
  EXPECT_TRUE(res.allAccept);
  EXPECT_EQ(res.maxLabelBits, 32u);
  EXPECT_EQ(res.totalLabelBits, 40u);
}

// --- Pointer scheme (Prop 2.2) ---

EdgeVerifier pointerEdgeVerifier() {
  return [](const EdgeView& view) -> bool {
    std::vector<PointerRecord> recs;
    for (std::string_view l : view.incidentLabels) {
      Decoder dec(l);
      recs.push_back(PointerRecord::decodeFrom(dec));
      if (!dec.atEnd()) return false;
    }
    return checkPointerAt(view.selfId, recs, std::nullopt);
  };
}

std::vector<std::string> encodePointer(const std::vector<PointerRecord>& recs) {
  std::vector<std::string> labels;
  for (const PointerRecord& r : recs) {
    Encoder enc;
    r.encodeTo(enc);
    labels.push_back(enc.take());
  }
  return labels;
}

TEST(Pointer, CompletenessAcrossFamiliesAndTargets) {
  for (const Graph& g : {pathGraph(9), cycleGraph(8), starGraph(6),
                         gridGraph(3, 4), completeGraph(5)}) {
    const auto ids = IdAssignment::random(g.numVertices(), 42);
    for (VertexId target = 0; target < g.numVertices();
         target += std::max(1, g.numVertices() / 3)) {
      const auto labels = encodePointer(provePointer(g, ids, target));
      const auto res = simulateEdgeScheme(g, ids, labels, pointerEdgeVerifier());
      EXPECT_TRUE(res.allAccept)
          << g.summary() << " target " << target << " rejected at "
          << (res.rejecting.empty() ? -1 : res.rejecting[0]);
    }
  }
}

TEST(Pointer, AdjacentLevelNonTreeEdgesAccepted) {
  // C4 plus a chord creates adjacent-level non-tree edges under BFS — the
  // case where the paper's literal min-distance rule would break.
  Graph g = cycleGraph(4);
  const auto ids = IdAssignment::identity(4);
  const auto labels = encodePointer(provePointer(g, ids, 0));
  EXPECT_TRUE(simulateEdgeScheme(g, ids, labels, pointerEdgeVerifier()).allAccept);
}

TEST(Pointer, SoundnessUnderMutation) {
  Rng rng(99);
  const Graph g = gridGraph(3, 3);
  const auto ids = IdAssignment::random(9, 3);
  const auto honest = encodePointer(provePointer(g, ids, 4));
  int rejected = 0;
  int applied = 0;
  for (int trial = 0; trial < 200; ++trial) {
    auto labels = honest;
    const auto kind = static_cast<Mutation>(trial % 5);
    if (!mutateLabels(labels, kind, rng)) continue;
    ++applied;
    const auto res = simulateEdgeScheme(g, ids, labels, pointerEdgeVerifier());
    // A mutation may happen to produce another valid pointer labeling for
    // the same root (e.g. re-rooting a subtree); it must never validate a
    // labeling whose records disagree with checkPointerAt anywhere.
    if (!res.allAccept) ++rejected;
  }
  EXPECT_GT(applied, 150);
  // The vast majority of corruptions must be caught.
  EXPECT_GT(rejected * 10, applied * 8) << rejected << "/" << applied;
}

TEST(Pointer, RejectsWhenTargetAbsent) {
  // Honest labels for root id X, then check a vertex set where no vertex
  // has id X: at least one vertex must reject.
  const Graph g = pathGraph(5);
  const auto ids = IdAssignment::identity(5);
  auto records = provePointer(g, ids, 2);
  // Claim the root is id 777 (absent) on every edge.
  for (auto& r : records) r.rootId = 777;
  const auto res =
      simulateEdgeScheme(g, ids, encodePointer(records), pointerEdgeVerifier());
  EXPECT_FALSE(res.allAccept);
}

// --- Prop 2.1 transform ---

TEST(Transform, PointerSchemeSurvivesEdgeToVertexTransform) {
  for (const Graph& g : {cycleGraph(10), gridGraph(3, 4), caterpillar(5, 2)}) {
    const auto ids = IdAssignment::random(g.numVertices(), 7);
    const auto edgeLabels = encodePointer(provePointer(g, ids, 0));
    const auto vertexLabels = edgeLabelsToVertexLabels(g, ids, edgeLabels);
    const auto res = simulateVertexScheme(
        g, ids, vertexLabels, liftEdgeVerifier(pointerEdgeVerifier()));
    EXPECT_TRUE(res.allAccept) << g.summary();
  }
}

TEST(Transform, LabelBlowupBoundedByDegeneracy) {
  const Graph g = caterpillar(10, 3);  // degeneracy 1
  const auto ids = IdAssignment::random(g.numVertices(), 8);
  const auto edgeLabels = encodePointer(provePointer(g, ids, 0));
  const auto vertexLabels = edgeLabelsToVertexLabels(g, ids, edgeLabels);
  std::size_t maxEdge = 0;
  for (const auto& l : edgeLabels) maxEdge = std::max(maxEdge, l.size());
  std::size_t maxVertex = 0;
  for (const auto& l : vertexLabels) maxVertex = std::max(maxVertex, l.size());
  // Degeneracy 1: each vertex holds at most one edge label plus two ids.
  EXPECT_LE(maxVertex, maxEdge + 2 * 10 + 2);
}

TEST(Transform, MutationSoundness) {
  Rng rng(5);
  const Graph g = gridGraph(3, 3);
  const auto ids = IdAssignment::random(9, 11);
  const auto honest = edgeLabelsToVertexLabels(
      g, ids, encodePointer(provePointer(g, ids, 0)));
  int rejected = 0;
  int applied = 0;
  for (int trial = 0; trial < 150; ++trial) {
    auto labels = honest;
    if (!mutateLabels(labels, static_cast<Mutation>(trial % 5), rng)) continue;
    ++applied;
    const auto res = simulateVertexScheme(g, ids, labels,
                                          liftEdgeVerifier(pointerEdgeVerifier()));
    if (!res.allAccept) ++rejected;
  }
  EXPECT_GT(rejected * 10, applied * 7) << rejected << "/" << applied;
}

// --- Classic schemes ---

TEST(Classic, BipartiteCompleteness) {
  for (const Graph& g : {pathGraph(8), cycleGraph(6), gridGraph(3, 4),
                         starGraph(5)}) {
    const auto ids = IdAssignment::identity(g.numVertices());
    const auto res =
        simulateVertexScheme(g, ids, proveBipartite(g), bipartiteVerifier());
    EXPECT_TRUE(res.allAccept) << g.summary();
    EXPECT_EQ(res.maxLabelBits, 8u);  // one byte, conceptually one bit
  }
}

TEST(Classic, BipartiteSoundnessOnOddCycle) {
  // No labeling can make an odd cycle accepted.
  const Graph g = cycleGraph(5);
  const auto ids = IdAssignment::identity(5);
  Rng rng(17);
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::string> labels;
    for (int v = 0; v < 5; ++v) {
      labels.push_back(rng.flip(0.5) ? std::string("\1", 1) : std::string("\0", 1));
    }
    EXPECT_FALSE(simulateVertexScheme(g, ids, labels, bipartiteVerifier()).allAccept);
  }
}

TEST(Classic, TrivialSchemeDecidesAnything) {
  Rng rng(23);
  const Graph g = randomConnected(12, 0.25, rng);
  const auto ids = IdAssignment::random(12, 5);
  const auto labels = proveTrivial(g, ids);
  const auto yes = simulateVertexScheme(
      g, ids, labels, trivialVerifier([&g](const Graph& h) {
        return h.numEdges() == g.numEdges();
      }));
  EXPECT_TRUE(yes.allAccept);
  const auto no = simulateVertexScheme(
      g, ids, labels,
      trivialVerifier([](const Graph&) { return false; }));
  EXPECT_FALSE(no.allAccept);
}

TEST(Classic, TrivialSchemeRejectsWrongMap) {
  // Labels describing a DIFFERENT graph (one edge dropped) must be caught
  // by some vertex's degree check.
  const Graph g = cycleGraph(6);
  Graph h = pathGraph(6);  // same vertices, one edge fewer
  const auto ids = IdAssignment::identity(6);
  const auto labels = proveTrivial(h, ids);
  const auto res = simulateVertexScheme(
      g, ids, labels, trivialVerifier([](const Graph&) { return true; }));
  EXPECT_FALSE(res.allAccept);
}

TEST(Mutations, AllKindsApplicable) {
  Rng rng(1);
  std::vector<std::string> labels = {"aaaa", "bbbb", "cc"};
  int ok = 0;
  for (int i = 0; i < 50; ++i) {
    auto copy = labels;
    ok += mutateLabels(copy, static_cast<Mutation>(i % 5), rng);
  }
  EXPECT_GT(ok, 30);
}

}  // namespace
}  // namespace lanecert
