// Tests for the tree-decomposition substrate: validity, the balancing
// transformation (depth O(log n), width <= 3(w+1) - 1), and the contrast
// that motivates the paper (tree decompositions force Ω(log n) depth while
// the paper's hierarchical decompositions have depth <= 2w).

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"
#include "treewidth/tree_decomposition.hpp"

namespace lanecert {
namespace {

PathDecomposition pdOf(const Graph& g) {
  return toPathDecomposition(bestIntervalRepresentation(g));
}

TEST(TreeDecomposition, PathShapedIsValid) {
  for (const Graph& g : {pathGraph(12), cycleGraph(9), caterpillar(5, 2)}) {
    const auto pd = pdOf(g);
    const TreeDecomposition td = fromPathDecomposition(pd);
    EXPECT_TRUE(td.isValidFor(g)) << g.summary();
    EXPECT_EQ(td.width(), pd.width()) << g.summary();
    EXPECT_EQ(td.depth(), static_cast<int>(pd.numBags())) << g.summary();
  }
}

TEST(TreeDecomposition, ValidityCatchesViolations) {
  const Graph g = pathGraph(3);
  // Missing vertex 2.
  EXPECT_FALSE(TreeDecomposition({{0, 1}}, {-1}).isValidFor(g));
  // Edge {1,2} in no bag.
  EXPECT_FALSE(TreeDecomposition({{0, 1}, {2}}, {-1, 0}).isValidFor(g));
  // Vertex 0's occurrences disconnected (bags 0 and 2, absent from bag 1).
  EXPECT_FALSE(
      TreeDecomposition({{0, 1}, {1, 2}, {0, 2}}, {-1, 0, 1}).isValidFor(g));
  // A proper decomposition passes.
  EXPECT_TRUE(TreeDecomposition({{0, 1}, {1, 2}}, {-1, 0}).isValidFor(g));
}

TEST(TreeDecomposition, BalancedIsValidAndShallow) {
  for (const Graph& g :
       {pathGraph(100), cycleGraph(64), caterpillar(40, 1), gridGraph(2, 30)}) {
    const auto pd = pdOf(g);
    const TreeDecomposition td = balancedFromPath(pd);
    EXPECT_TRUE(td.isValidFor(g)) << g.summary();
    // Width blow-up at most 3x (in bag-size terms).
    EXPECT_LE(td.width(), 3 * (pd.width() + 1) - 1) << g.summary();
    // Depth O(log #bags).
    const int logBags =
        static_cast<int>(std::ceil(std::log2(static_cast<double>(pd.numBags())))) + 2;
    EXPECT_LE(td.depth(), logBags) << g.summary() << " depth " << td.depth();
  }
}

TEST(TreeDecomposition, BalancedSweep) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const auto bp = randomBoundedPathwidth(60, 2, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto pd = toPathDecomposition(rep);
    const TreeDecomposition td = balancedFromPath(pd);
    EXPECT_TRUE(td.isValidFor(bp.graph)) << "seed " << seed;
    EXPECT_LE(td.width(), 3 * (pd.width() + 1) - 1) << "seed " << seed;
  }
}

TEST(TreeDecomposition, GenericConstructor) {
  Rng rng(4);
  const Graph g = randomConnected(14, 0.25, rng);
  const TreeDecomposition td = treeDecompositionOf(g);
  EXPECT_TRUE(td.isValidFor(g));
}

TEST(TreeDecomposition, DepthContrastWithHierarchy) {
  // The structural point of Section 3: balanced TREE decompositions have
  // depth Θ(log n) (growing with n), while the paper's hierarchical
  // decompositions have depth <= 2w (CONSTANT in n).  Measure both on the
  // same pathwidth-1 family at two sizes.
  auto depths = [](int spine) {
    const Graph g = caterpillar(spine, 1);
    const auto rep = bestIntervalRepresentation(g);
    const auto pd = toPathDecomposition(rep);
    const int tdDepth = balancedFromPath(pd).depth();
    const LanePlan plan = buildLanePlan(g, rep);
    const auto seq = buildConstruction(g, rep, plan.lanes);
    const int hierDepth = buildHierarchy(seq).hierarchy.depth();
    return std::make_pair(tdDepth, hierDepth);
  };
  const auto [tdSmall, hierSmall] = depths(16);
  const auto [tdLarge, hierLarge] = depths(512);
  EXPECT_GT(tdLarge, tdSmall);        // tree decomposition depth grows
  EXPECT_EQ(hierLarge, hierSmall);    // hierarchy depth does not
}

TEST(TreeDecomposition, ToStringListsBags) {
  const TreeDecomposition td({{0, 1}, {1, 2}}, {-1, 0});
  const std::string s = td.toString();
  EXPECT_NE(s.find("parent -1"), std::string::npos);
  EXPECT_NE(s.find("{1, 2}"), std::string::npos);
}

}  // namespace
}  // namespace lanecert
