// Structured adversarial attacks on the core verifier: instead of random
// bit flips, each test decodes an honest certificate, surgically forges one
// semantic field (input flag, hom state, terminals, fold inputs, embedding
// ranks, root metadata, ...), re-encodes, and asserts that some vertex
// rejects.  These target the specific soundness obligations of Section 6.2.

#include <gtest/gtest.h>

#include <functional>

#include "core/records.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

struct Instance {
  Graph g;
  IdAssignment ids;
  std::vector<std::string> labels;
  PropertyPtr prop;
};

Instance cycleInstance() {
  Instance inst{cycleGraph(10), IdAssignment::random(10, 5), {},
                makeCycleProperty()};
  auto proved = proveCore(inst.g, inst.ids, *inst.prop);
  EXPECT_TRUE(proved.propertyHolds);
  inst.labels = std::move(proved.labels);
  return inst;
}

/// Applies `forge` to every label in turn (decoded form); expects that for
/// every choice of attacked label the verifier rejects somewhere.
void expectAllForgeriesRejected(const Instance& inst,
                                const std::function<bool(EdgeLabel&)>& forge,
                                const char* what) {
  const auto verifier = makeCoreVerifier(inst.prop);
  int attacked = 0;
  for (std::size_t i = 0; i < inst.labels.size(); ++i) {
    EdgeLabel label = EdgeLabel::decode(inst.labels[i]);
    if (!forge(label)) continue;  // forgery not applicable to this label
    ++attacked;
    auto labels = inst.labels;
    labels[i] = label.encoded();
    const auto res = simulateEdgeScheme(inst.g, inst.ids, labels, verifier);
    EXPECT_FALSE(res.allAccept) << what << " accepted at label " << i;
  }
  EXPECT_GT(attacked, 0) << what << ": forgery never applicable";
}

TEST(CoreAttacks, FlagRealEdgeAsVirtual) {
  // Hiding a real edge from φ must be caught (here: hiding a cycle edge
  // would make the rest a path, not a cycle).
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        l.own.real = false;
        return true;
      },
      "real-as-virtual");
}

TEST(CoreAttacks, ForgeOwnerEntryInputFlag) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        ChainEntry& owner = l.own.chain[0];
        switch (owner.kind) {
          case ChainEntry::Kind::kBaseE:
            owner.eReal = !owner.eReal;
            return true;
          case ChainEntry::Kind::kBaseP:
            owner.pReal[0] = !owner.pReal[0];
            return true;
          case ChainEntry::Kind::kBridge:
            owner.bridgeReal = !owner.bridgeReal;
            return true;
          default:
            return false;
        }
      },
      "owner input flag");
}

TEST(CoreAttacks, ForgeRootHomState) {
  // Swapping the root state for a different VALID state of the same
  // property must break either the acceptance check or the fold equalities.
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [&inst](EdgeLabel& l) {
        // A deliberately "accepting-looking" state: a finished 3-cycle.
        HomState s = inst.prop->empty();
        s = inst.prop->addVertex(s);
        l.own.rootEntry.self.stateBytes = s.encoding();
        return true;
      },
      "root hom state");
}

TEST(CoreAttacks, ForgeSubtreeFoldOutput) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        for (ChainEntry& e : l.own.chain) {
          // Only a forgery when the fold actually merges children
          // (otherwise subtree == childSelf is legitimately true).
          if (e.kind == ChainEntry::Kind::kTree && !e.treeChildren.empty()) {
            // Claim the subtree collapses to the bare child (dropping its
            // tree children from the fold result).
            e.subtree.stateBytes = e.childSelf.stateBytes;
            e.subtree.outTerm = e.childSelf.outTerm;
            e.subtree.slotOrder = e.childSelf.slotOrder;
            return true;
          }
        }
        return false;
      },
      "subtree fold output");
}

TEST(CoreAttacks, DropDeclaredTreeChild) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        for (ChainEntry& e : l.own.chain) {
          if (e.kind == ChainEntry::Kind::kTree && !e.treeChildren.empty()) {
            e.treeChildren.pop_back();
            return true;
          }
        }
        return false;
      },
      "dropped tree child");
}

TEST(CoreAttacks, SwapBridgeParts) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        for (ChainEntry& e : l.own.chain) {
          if (e.kind == ChainEntry::Kind::kBridge) {
            std::swap(e.part0, e.part1);
            return true;
          }
        }
        return false;
      },
      "swapped bridge parts");
}

TEST(CoreAttacks, RenameTerminal) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        ChainEntry& owner = l.own.chain[0];
        if (owner.self.outTerm.entries.empty()) return false;
        owner.self.outTerm.entries[0].second ^= 0x5555;
        return true;
      },
      "renamed terminal");
}

TEST(CoreAttacks, CorruptEmbeddingRanks) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        if (l.through.empty()) return false;
        l.through[0].fwdRank += 1;
        return true;
      },
      "embedding rank");
}

TEST(CoreAttacks, RedirectVirtualEdgeEndpoint) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        if (l.through.empty()) return false;
        l.through[0].uId ^= 0x1234;
        return true;
      },
      "virtual endpoint");
}

TEST(CoreAttacks, InconsistentRootIds) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        l.own.rootTNode += 1;
        return true;
      },
      "root node id");
}

TEST(CoreAttacks, ReparentChainEntry) {
  // Point a chain's T entry at a different (also real) child id: linkage
  // or consistency must catch the mismatch.
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        for (ChainEntry& e : l.own.chain) {
          if (e.kind == ChainEntry::Kind::kTree) {
            e.childId += 1;
            return true;
          }
        }
        return false;
      },
      "reparented chain entry");
}

TEST(CoreAttacks, TruncateChain) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        if (l.own.chain.size() < 3) return false;
        l.own.chain.resize(l.own.chain.size() - 2);  // keep T on top
        return true;
      },
      "truncated chain");
}

TEST(CoreAttacks, PointerRerooting) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        l.pointer.rootId ^= 0x77;
        return true;
      },
      "pointer reroot");
}

TEST(CoreAttacks, WrongPropertyStateBytes) {
  // Replace the owner entry's state with a state of ANOTHER property
  // (byte soup for this one): decode/recompute must reject.
  const Instance inst = cycleInstance();
  const auto foreign = makePerfectMatching();
  HomState f = foreign->addVertex(foreign->addVertex(foreign->empty()));
  expectAllForgeriesRejected(
      inst,
      [&f](EdgeLabel& l) {
        l.own.chain[0].self.stateBytes = f.encoding();
        return true;
      },
      "foreign state bytes");
}

TEST(CoreAttacks, DuplicatePathThroughRecord) {
  const Instance inst = cycleInstance();
  expectAllForgeriesRejected(
      inst,
      [](EdgeLabel& l) {
        if (l.through.empty()) return false;
        l.through.push_back(l.through[0]);
        return true;
      },
      "duplicated path record");
}

}  // namespace
}  // namespace lanecert
