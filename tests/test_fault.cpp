// Serve-layer fault tolerance: deadlines, admission control, bounded
// retry, and graceful degradation under injected faults.
//
// The invariant every test here circles back to: a future the service ever
// RETURNED resolves — with a value or a typed error from serve/errors.hpp —
// no matter what faults fire, what deadlines expire, or when the caller
// cancels.  Nothing hangs, and a poisoned job never takes the pool or a
// session down with it.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "core/prover.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "serve/errors.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"

namespace lanecert {
namespace {

using namespace std::chrono_literals;
using serve::CancelledError;
using serve::DeadlineExceededError;
using serve::FaultInjector;
using serve::FaultScope;
using serve::FaultSite;
using serve::JobOptions;
using serve::LaneCertService;
using serve::ProveJob;
using serve::RejectedError;
using serve::ReverifyJob;
using serve::ServiceOptions;
using serve::TransientError;
using serve::VerifyJob;

struct Fixture {
  Graph graph;
  IdAssignment ids;
  PropertyPtr property;
  CoreProveResult expected;
  std::shared_ptr<const std::vector<std::string>> payload;
};

Fixture cycleFixture(int n = 12, int seed = 5) {
  Fixture f{cycleGraph(n), IdAssignment::random(n, seed), makeConnectivity(),
            {}, nullptr};
  f.expected = proveCore(f.graph, f.ids, *f.property, nullptr, 1);
  f.payload =
      std::make_shared<const std::vector<std::string>>(f.expected.labels);
  return f;
}

JobOptions expiredDeadline() {
  JobOptions o;
  o.deadline = std::chrono::steady_clock::now() - 1h;
  return o;
}

JobOptions futureDeadline() {
  JobOptions o;
  o.deadline = std::chrono::steady_clock::now() + 1h;
  return o;
}

TEST(ServeDeadline, ExpiredJobFailsTypedWithoutRunning) {
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  auto fut =
      service.submitProve(ProveJob{f.graph, f.ids, f.property, {},
                                   expiredDeadline()});
  EXPECT_THROW((void)fut.get(), DeadlineExceededError);
  service.drain();
  const auto s = service.stats();
  EXPECT_EQ(s.deadlineExpiredJobs, 1u);
  EXPECT_EQ(s.proveJobsCompleted, 0u);  // the work never ran
}

TEST(ServeDeadline, FutureDeadlineCompletesNormally) {
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  auto fut = service.submitProve(
      ProveJob{f.graph, f.ids, f.property, {}, futureDeadline()});
  EXPECT_EQ(fut.get().labels, f.expected.labels);
  EXPECT_EQ(service.stats().deadlineExpiredJobs, 0u);
}

TEST(ServeDeadline, DeadlineJobsNeverShareResults) {
  // A deadline-carrying job must not coalesce onto (or seed) the result
  // cache: both submissions compute.
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  auto a = service.submitProve(ProveJob{f.graph, f.ids, f.property, {}});
  auto b = service.submitProve(
      ProveJob{f.graph, f.ids, f.property, {}, futureDeadline()});
  EXPECT_EQ(a.get().labels, f.expected.labels);
  EXPECT_EQ(b.get().labels, f.expected.labels);
  service.drain();
  const auto s = service.stats();
  EXPECT_EQ(s.resultCacheHits, 0u);
  EXPECT_EQ(s.proveJobsCompleted, 2u);
}

TEST(ServeDeadline, ExpiredReverifyBatchFailsAndSessionSurvives) {
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  const std::uint64_t sid = service.openVerifySession(
      VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
  auto dead = service.submitReverify(ReverifyJob{sid, {}, expiredDeadline()});
  EXPECT_THROW((void)dead.get(), DeadlineExceededError);
  // The driver moves on: the next batch on the same session completes.
  auto ok = service.submitReverify(ReverifyJob{sid, {}});
  EXPECT_TRUE(ok.get().allAccept);
  EXPECT_EQ(service.stats().deadlineExpiredJobs, 1u);
}

TEST(ServeBackpressure, SaturatedQueueRejectsWithRetryAfter) {
  const Fixture f = cycleFixture();
  // One worker, one slot, depth 1: job A runs (held inside a fault hook),
  // job B waits in the backlog, job C must be turned away synchronously.
  ServiceOptions opts;
  opts.numThreads = 1;
  opts.maxConcurrentJobs = 1;
  opts.maxQueueDepth = 1;
  opts.enableResultCache = false;  // B must queue, not coalesce with A
  std::mutex mu;
  std::condition_variable cv;
  bool started = false;
  bool release = false;
  FaultScope scope([&](FaultSite site) {
    if (site != FaultSite::kSweep) return;
    std::unique_lock<std::mutex> lock(mu);
    started = true;
    cv.notify_all();
    cv.wait(lock, [&] { return release; });
  });
  {
    LaneCertService service(opts);
    auto a = service.submitVerify(
        VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return started; });  // A is RUNNING, not pending
    }
    auto b = service.submitVerify(
        VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
    try {
      (void)service.submitVerify(
          VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
      FAIL() << "expected RejectedError";
    } catch (const RejectedError& e) {
      EXPECT_GE(e.retryAfter().count(), 1);
    }
    EXPECT_EQ(service.stats().rejectedJobs, 1u);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    EXPECT_TRUE(a.get().allAccept);
    EXPECT_TRUE(b.get().allAccept);
  }
}

TEST(ServeFault, PoisonedProveFailsItsFutureOnly) {
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  {
    FaultScope scope([](FaultSite site) {
      if (site == FaultSite::kPlanBuild) throw TransientError{};
    });
    auto poisoned =
        service.submitProve(ProveJob{f.graph, f.ids, f.property, {}});
    EXPECT_THROW((void)poisoned.get(), TransientError);
    service.drain();
  }
  // Failed results are evicted, the pool survived: the retry computes.
  auto retry = service.submitProve(ProveJob{f.graph, f.ids, f.property, {}});
  EXPECT_EQ(retry.get().labels, f.expected.labels);
}

TEST(ServeFault, EverySiteFailsTyped) {
  const Fixture f = cycleFixture();
  for (const FaultSite site :
       {FaultSite::kDecode, FaultSite::kPlanBuild, FaultSite::kSweep}) {
    LaneCertService service(ServiceOptions{});
    FaultScope scope([site](FaultSite fired) {
      if (fired == site) throw TransientError{};
    });
    auto prove = service.submitProve(ProveJob{f.graph, f.ids, f.property, {}});
    auto verify = service.submitVerify(
        VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
    if (site == FaultSite::kPlanBuild) {
      EXPECT_THROW((void)prove.get(), TransientError)
          << serve::faultSiteName(site);
    } else {
      EXPECT_EQ(prove.get().labels, f.expected.labels);
    }
    if (site == FaultSite::kDecode || site == FaultSite::kSweep) {
      EXPECT_THROW((void)verify.get(), TransientError)
          << serve::faultSiteName(site);
    } else {
      EXPECT_TRUE(verify.get().allAccept);
    }
    if (site == FaultSite::kDecode) {
      EXPECT_THROW((void)service.openVerifySession(VerifyJob{
                       f.graph, f.ids, f.payload, f.property, {}}),
                   TransientError);
    }
    service.drain();
  }
}

TEST(ServeFault, ReverifyRetriesTransientThenSucceeds) {
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  const std::uint64_t sid = service.openVerifySession(
      VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
  std::atomic<int> sweepFires{0};
  FaultScope scope([&](FaultSite site) {
    if (site == FaultSite::kSweep && ++sweepFires <= 2) throw TransientError{};
  });
  JobOptions retrying;
  retrying.maxAttempts = 3;
  retrying.retryBackoff = 1ms;
  auto fut = service.submitReverify(ReverifyJob{sid, {}, retrying});
  EXPECT_TRUE(fut.get().allAccept);
  service.drain();
  EXPECT_EQ(service.stats().transientRetries, 2u);
}

TEST(ServeFault, ReverifyExhaustsRetriesThenSessionSurvives) {
  const Fixture f = cycleFixture();
  LaneCertService service(ServiceOptions{});
  const std::uint64_t sid = service.openVerifySession(
      VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
  {
    FaultScope scope([](FaultSite site) {
      if (site == FaultSite::kSweep) throw TransientError{};
    });
    JobOptions retrying;
    retrying.maxAttempts = 2;
    retrying.retryBackoff = 1ms;
    auto fut = service.submitReverify(ReverifyJob{sid, {}, retrying});
    EXPECT_THROW((void)fut.get(), TransientError);
    service.drain();
    EXPECT_EQ(service.stats().transientRetries, 1u);
  }
  // The exhausted batch poisoned nothing: the session still serves.
  auto fut = service.submitReverify(ReverifyJob{sid, {}});
  EXPECT_TRUE(fut.get().allAccept);
}

TEST(ServeFault, NonFaultedPathBitIdenticalAcrossThreadCounts) {
  // The fault seams, deadline checks, and admission control sit OUTSIDE the
  // deterministic compute path: with no fault armed, results stay
  // bit-identical to the single-thread standalone reference at every pool
  // size (admission knobs on or off).
  const Fixture f = cycleFixture(20, 9);
  for (const int threads : {1, 2, 4}) {
    ServiceOptions opts;
    opts.numThreads = threads;
    opts.maxQueueDepth = 64;  // on, but never reached
    LaneCertService service(opts);
    auto prove = service.submitProve(ProveJob{f.graph, f.ids, f.property, {}});
    auto verify = service.submitVerify(
        VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
    EXPECT_EQ(prove.get().labels, f.expected.labels) << threads;
    EXPECT_TRUE(verify.get().allAccept) << threads;
  }
}

TEST(ServeFault, EveryFutureResolvesUnderChaos) {
  // The headline property test: a storm of jobs under randomly-firing
  // transient faults, expired deadlines, and a mid-flight cancelPending().
  // Every future must come back READY with a value or a typed error.
  const Fixture f = cycleFixture();
  std::atomic<std::uint32_t> fires{0};
  FaultScope scope([&](FaultSite) {
    // Deterministic pseudo-random ~1/3 failure rate, any site.
    if ((fires.fetch_add(1, std::memory_order_relaxed) * 2654435761u) % 3 ==
        0) {
      throw TransientError{};
    }
  });
  ServiceOptions opts;
  opts.numThreads = 2;
  LaneCertService service(opts);
  std::vector<std::shared_future<CoreProveResult>> proves;
  std::vector<std::shared_future<SimulationResult>> sims;
  std::uint64_t sid = 0;
  EXPECT_NO_THROW(sid = [&] {
    // Session open may itself hit the decode fault; retry until it lands.
    while (true) {
      try {
        return service.openVerifySession(
            VerifyJob{f.graph, f.ids, f.payload, f.property, {}});
      } catch (const TransientError&) {
      }
    }
  }());
  for (int i = 0; i < 24; ++i) {
    // Vary the ids seed so requests do not all coalesce into one compute.
    const IdAssignment ids = IdAssignment::random(12, i);
    proves.push_back(
        service.submitProve(ProveJob{f.graph, ids, f.property, {},
                                     i % 5 == 0 ? expiredDeadline()
                                                : JobOptions{}}));
    sims.push_back(
        service.submitVerify(VerifyJob{f.graph, f.ids, f.payload, f.property,
                                       {}, static_cast<std::uint64_t>(i)}));
    JobOptions retrying;
    retrying.maxAttempts = 2;
    retrying.retryBackoff = 1ms;
    sims.push_back(service.submitReverify(ReverifyJob{sid, {}, retrying}));
    if (i == 12) (void)service.cancelPending();
  }
  service.drain();
  auto expectTyped = [](const auto& fut) {
    ASSERT_EQ(fut.wait_for(0s), std::future_status::ready);
    try {
      (void)fut.get();  // a value is fine
    } catch (const TransientError&) {
    } catch (const CancelledError&) {
    } catch (const DeadlineExceededError&) {
    } catch (...) {
      FAIL() << "future failed with an untyped error";
    }
  };
  for (const auto& fut : proves) expectTyped(fut);
  for (const auto& fut : sims) expectTyped(fut);
  service.drain();
}

}  // namespace
}  // namespace lanecert
