// Wire-level serving front-end: framing, request grammar, and the
// end-to-end socket path (WireServer over LaneCertService on loopback).
//
// The load-bearing invariants:
//   * framing survives ARBITRARY chunking — byte-at-a-time feeds produce
//     the same frames as one-shot feeds (partial reads), and the server's
//     scatter queue survives partial writes (tiny chunk sizes);
//   * a frame header claiming more than the connection quota fails the
//     connection BEFORE any buffer reserve (the socket-layer mirror of
//     the decoder's hostile-length hardening);
//   * a streamed certificate is BYTE-IDENTICAL to the encode of the
//     in-process proveCore result — the wire adds a boundary, never a
//     re-encode;
//   * every request that was ever read gets a terminal response, even
//     under quota rejection and drain-under-load.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/verifier.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "net/protocol.hpp"
#include "net/wire_client.hpp"
#include "net/wire_server.hpp"
#include "pls/scheme.hpp"

namespace lanecert::net {
namespace {

// --- Framing ---------------------------------------------------------------

TEST(NetFraming, RoundTripSurvivesArbitraryChunking) {
  const std::vector<std::string> payloads = {
      std::string("\x01", 1), "hello", std::string(1000, 'x'),
      std::string("\x00\xff\x80payload", 10)};
  std::string stream;
  for (const auto& p : payloads) stream += encodeFrame(p);

  // One-shot feed.
  {
    FrameParser parser(1 << 20);
    std::vector<std::string> out;
    ASSERT_TRUE(parser.feed(stream, out));
    ASSERT_EQ(out.size(), payloads.size());
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], payloads[i]);
  }
  // Byte-at-a-time feed (worst-case partial reads).
  {
    FrameParser parser(1 << 20);
    std::vector<std::string> out;
    for (char c : stream) {
      ASSERT_TRUE(parser.feed(std::string_view(&c, 1), out));
    }
    ASSERT_EQ(out.size(), payloads.size());
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], payloads[i]);
  }
}

TEST(NetFraming, OversizedHeaderRejectsBeforeReserve) {
  FrameParser parser(1024);
  std::vector<std::string> out;
  // Header claims 2^40 bytes; the parser must fail on the HEADER, holding
  // zero payload bytes — a hostile length prefix never buys memory.
  Encoder enc;
  enc.u64(std::uint64_t{1} << 40);
  EXPECT_FALSE(parser.feed(enc.str(), out));
  EXPECT_TRUE(parser.failed());
  EXPECT_EQ(parser.bufferedBytes(), 0u);
  EXPECT_TRUE(out.empty());
  // The parser stays failed — the stream is permanently broken.
  EXPECT_FALSE(parser.feed("x", out));
}

TEST(NetFraming, MalformedAndZeroHeadersReject) {
  {
    // An unterminated run of continuation bytes past the 64-bit cap.
    FrameParser parser(1024);
    std::vector<std::string> out;
    const std::string bad(11, '\x80');
    EXPECT_FALSE(parser.feed(bad, out));
  }
  {
    FrameParser parser(1024);
    std::vector<std::string> out;
    const std::string zero("\x00", 1);
    EXPECT_FALSE(parser.feed(zero, out));
  }
}

// --- Request grammar -------------------------------------------------------

TEST(NetProtocol, RequestRoundTripsEveryOp) {
  const Graph g = cycleGraph(8);

  {
    const WireRequest r = decodeRequest(encodePingRequest(7));
    EXPECT_EQ(r.requestId, 7u);
    EXPECT_EQ(r.op, Op::kPing);
  }
  {
    const WireRequest r =
        decodeRequest(encodeProveRequest(9, g, "connectivity"));
    EXPECT_EQ(r.requestId, 9u);
    EXPECT_EQ(r.op, Op::kProve);
    EXPECT_EQ(r.graph.numVertices(), g.numVertices());
    EXPECT_EQ(r.graph.edges(), g.edges());
    EXPECT_EQ(r.property, "connectivity");
  }
  {
    std::vector<std::string> labels(static_cast<std::size_t>(g.numEdges()),
                                    "lbl");
    labels[0] = std::string("\x00\x80z", 3);
    const WireRequest r =
        decodeRequest(encodeVerifyRequest(11, g, "forest", labels, false));
    EXPECT_EQ(r.op, Op::kVerify);
    EXPECT_EQ(r.labels, labels);
    const WireRequest s =
        decodeRequest(encodeVerifyRequest(12, g, "forest", labels, true));
    EXPECT_EQ(s.op, Op::kOpenSession);
  }
  {
    std::vector<EdgeLabelEdit> edits;
    edits.push_back({EdgeId{3}, "new-bytes"});
    edits.push_back({EdgeId{0}, ""});
    const WireRequest r = decodeRequest(encodeReverifyRequest(13, 77, edits));
    EXPECT_EQ(r.op, Op::kReverify);
    EXPECT_EQ(r.session, 77u);
    ASSERT_EQ(r.edits.size(), 2u);
    EXPECT_EQ(r.edits[0].edge, EdgeId{3});
    EXPECT_EQ(r.edits[0].bytes, "new-bytes");
    EXPECT_EQ(r.edits[1].bytes, "");
  }
  {
    const WireRequest r = decodeRequest(encodeCloseSessionRequest(14, 42));
    EXPECT_EQ(r.op, Op::kCloseSession);
    EXPECT_EQ(r.session, 42u);
  }
}

TEST(NetProtocol, HostileRequestBytesReject) {
  // Unknown op.
  {
    Encoder enc;
    enc.u64(1);
    enc.u64(99);
    EXPECT_THROW((void)decodeRequest(enc.str()), WireError);
  }
  // Verify request whose label count lies far past the bytes present:
  // must throw before any proportional reserve.
  {
    Encoder enc;
    enc.u64(1);
    enc.u64(static_cast<std::uint64_t>(Op::kVerify));
    enc.u64(4);  // n
    enc.u64(1);  // m
    enc.u64(0);
    enc.u64(1);
    enc.bytes("connectivity");
    enc.u64(std::uint64_t{1} << 40);  // label count lie, then nothing
    EXPECT_THROW((void)decodeRequest(enc.str()), DecodeError);
  }
  // Edge endpoint out of range.
  {
    Encoder enc;
    enc.u64(1);
    enc.u64(static_cast<std::uint64_t>(Op::kProve));
    enc.u64(3);
    enc.u64(1);
    enc.u64(0);
    enc.u64(9);
    enc.bytes("forest");
    EXPECT_THROW((void)decodeRequest(enc.str()), WireError);
  }
  // Trailing bytes after a complete body.
  {
    std::string payload = encodePingRequest(5);
    payload += "junk";
    EXPECT_THROW((void)decodeRequest(payload), WireError);
  }
  // Truncation at every prefix must throw, never crash or accept.
  {
    const Graph g = pathGraph(5);
    std::vector<std::string> labels(4, "abc");
    const std::string full = encodeVerifyRequest(3, g, "forest", labels);
    for (std::size_t cut = 0; cut < full.size(); ++cut) {
      EXPECT_THROW((void)decodeRequest(full.substr(0, cut)), std::exception);
    }
  }
}

TEST(NetProtocol, HostileVertexCountRejectsBeforeGraphConstruction) {
  // A ~12-byte frame claiming n = 2^31-1, m = 0 passes the edge-count
  // quota (zero edges need zero bytes) but must NOT buy ~2^31 adjacency
  // vectors: the vertex cap rejects before Graph(n) is constructed.
  for (const Op op : {Op::kProve, Op::kVerify}) {
    Encoder enc;
    enc.u64(1);
    enc.u64(static_cast<std::uint64_t>(op));
    enc.u64((std::uint64_t{1} << 31) - 1);  // n
    enc.u64(0);                             // m
    enc.bytes("forest");
    if (op == Op::kVerify) enc.u64(0);  // label count
    EXPECT_THROW((void)decodeRequest(enc.str()), WireError);
  }
  // The cap is a parameter: n just over rejects, n at the cap decodes.
  {
    Encoder enc;
    enc.u64(1);
    enc.u64(static_cast<std::uint64_t>(Op::kProve));
    enc.u64(9);  // n
    enc.u64(0);  // m
    enc.bytes("forest");
    EXPECT_THROW((void)decodeRequest(enc.str(), 8), WireError);
    const WireRequest r = decodeRequest(enc.str(), 9);
    EXPECT_EQ(r.graph.numVertices(), 9);
  }
}

TEST(NetProtocol, PropertyNameSuffixGrammarIsStrict) {
  // Well-formed parameterized names resolve...
  EXPECT_NE(propertyByName("vc:3"), nullptr);
  EXPECT_NE(propertyByName("dom:0"), nullptr);
  EXPECT_NE(propertyByName("maxdeg:12"), nullptr);
  // ...but a malformed suffix is an UNKNOWN name, never parameter 0.
  EXPECT_EQ(propertyByName("vc:"), nullptr);
  EXPECT_EQ(propertyByName("vc:garbage"), nullptr);
  EXPECT_EQ(propertyByName("vc:3x"), nullptr);
  EXPECT_EQ(propertyByName("vc:-1"), nullptr);
  EXPECT_EQ(propertyByName("vc: 3"), nullptr);
  EXPECT_EQ(propertyByName("maxdeg:999999999999999999999"), nullptr);
  EXPECT_EQ(propertyByName("bogus"), nullptr);
}

TEST(NetProtocol, CertificateStreamRoundTrips) {
  std::vector<std::string> labels = {"", "a", std::string(300, 'q'),
                                     std::string("\x80\x00", 2)};
  const std::string stream = encodeCertificateStream(true, labels);
  const CertificateStream back = decodeCertificateStream(stream);
  EXPECT_TRUE(back.propertyHolds);
  EXPECT_EQ(back.labels, labels);
}

// --- End-to-end over loopback sockets --------------------------------------

WireServerOptions testOptions() {
  WireServerOptions opts;
  opts.service.numThreads = 2;
  opts.service.numaAware = false;
  return opts;
}

TEST(NetWire, ProveStreamIsByteIdenticalToInProcessResult) {
  WireServer server(testOptions());
  server.start();

  Rng rng(19);
  const Graph g = randomBoundedPathwidth(96, 2, 0.4, rng).graph;
  const PropertyPtr prop = makeConnectivity();

  WireClient client;
  client.connect("127.0.0.1", server.port());
  const WireClient::Reply reply = client.prove(g, "connectivity");
  ASSERT_TRUE(reply.ok()) << reply.error;

  // The in-process ground truth: identical job, identity ids — the serve
  // path is bit-identical to standalone proveCore, and the wire must add
  // exactly nothing.
  const CoreProveResult local =
      proveCore(g, IdAssignment::identity(g.numVertices()), *prop);
  const std::string expected =
      encodeCertificateStream(local.propertyHolds, local.labels);
  EXPECT_EQ(reply.stream, expected);

  const CertificateStream cert = decodeCertificateStream(reply.stream);
  EXPECT_TRUE(cert.propertyHolds);
  const SimulationResult check = simulateEdgeScheme(
      g, IdAssignment::identity(g.numVertices()), cert.labels,
      makeCoreVerifier(prop));
  EXPECT_TRUE(check.allAccept);
  server.stop();
}

TEST(NetWire, VerifyAndPipelinedRequestsCompleteByRequestId) {
  WireServer server(testOptions());
  server.start();

  const Graph g = cycleGraph(24);
  const auto local =
      proveCore(g, IdAssignment::identity(g.numVertices()), *makeConnectivity());
  ASSERT_TRUE(local.propertyHolds);

  WireClient client;
  client.connect("127.0.0.1", server.port());

  // Pipeline several requests, then wait in REVERSE order — correlation
  // is by requestId, not arrival order.
  const std::uint64_t ping1 = client.sendPing();
  const std::uint64_t v1 = client.sendVerify(g, "connectivity", local.labels);
  std::vector<std::string> corrupted = local.labels;
  corrupted[3] = "garbage";
  const std::uint64_t v2 = client.sendVerify(g, "connectivity", corrupted);
  const std::uint64_t ping2 = client.sendPing();

  EXPECT_TRUE(client.wait(ping2).ok());
  const WireClient::Reply bad = client.wait(v2);
  ASSERT_TRUE(bad.ok()) << bad.error;
  EXPECT_FALSE(decodeVerifyResult(bad.body).allAccept);
  const WireClient::Reply good = client.wait(v1);
  ASSERT_TRUE(good.ok()) << good.error;
  const SimulationResult r = decodeVerifyResult(good.body);
  EXPECT_TRUE(r.allAccept);
  // Verdict matches the in-process sweep field by field.
  const SimulationResult localR =
      simulateEdgeScheme(g, IdAssignment::identity(g.numVertices()),
                         local.labels, makeCoreVerifier(makeConnectivity()));
  EXPECT_EQ(r.allAccept, localR.allAccept);
  EXPECT_EQ(r.rejecting, localR.rejecting);
  EXPECT_EQ(r.maxLabelBits, localR.maxLabelBits);
  EXPECT_EQ(r.totalLabelBits, localR.totalLabelBits);
  EXPECT_TRUE(client.wait(ping1).ok());
  server.stop();
}

TEST(NetWire, SessionLifecycleOverTheWire) {
  WireServer server(testOptions());
  server.start();

  const Graph g = pathGraph(40);
  const auto local =
      proveCore(g, IdAssignment::identity(g.numVertices()), *makeConnectivity());
  ASSERT_TRUE(local.propertyHolds);

  WireClient client;
  client.connect("127.0.0.1", server.port());

  const WireClient::Reply opened =
      client.wait(client.sendOpenSession(g, "connectivity", local.labels));
  ASSERT_TRUE(opened.ok()) << opened.error;
  const std::uint64_t session = decodeSessionHandle(opened.body);

  // Initial sweep (empty batch), then corrupt, then restore.
  const WireClient::Reply sweep =
      client.wait(client.sendReverify(session, {}));
  ASSERT_TRUE(sweep.ok()) << sweep.error;
  EXPECT_TRUE(decodeVerifyResult(sweep.body).allAccept);

  std::vector<EdgeLabelEdit> corrupt;
  corrupt.push_back({EdgeId{5}, "not-a-certificate"});
  const WireClient::Reply bad =
      client.wait(client.sendReverify(session, corrupt));
  ASSERT_TRUE(bad.ok()) << bad.error;
  EXPECT_FALSE(decodeVerifyResult(bad.body).allAccept);

  std::vector<EdgeLabelEdit> restore;
  restore.push_back({EdgeId{5}, local.labels[5]});
  const WireClient::Reply fixed =
      client.wait(client.sendReverify(session, restore));
  ASSERT_TRUE(fixed.ok()) << fixed.error;
  EXPECT_TRUE(decodeVerifyResult(fixed.body).allAccept);

  EXPECT_TRUE(client.wait(client.sendCloseSession(session)).ok());
  // A reverify on the closed session is a permanent error, not a crash.
  const WireClient::Reply gone =
      client.wait(client.sendReverify(session, restore));
  EXPECT_EQ(gone.status, Status::kError);
  server.stop();
}

TEST(NetWire, PerConnectionQuotaRejectsWithRetryAfter) {
  WireServerOptions opts = testOptions();
  opts.service.numThreads = 1;
  opts.service.enableResultCache = false;
  opts.maxInflightPerConn = 1;
  WireServer server(opts);
  server.start();

  // A prove big enough to hold the single worker for many milliseconds.
  Rng rng(7);
  const Graph g = randomBoundedPathwidth(512, 2, 0.4, rng).graph;

  WireClient client;
  client.connect("127.0.0.1", server.port());
  std::vector<std::uint64_t> ids;
  ids.push_back(client.sendProve(g, "connectivity"));
  for (int i = 0; i < 7; ++i) ids.push_back(client.sendProve(g, "connectivity"));

  int ok = 0, rejected = 0;
  std::uint64_t minRetry = ~std::uint64_t{0};
  for (const std::uint64_t id : ids) {
    const WireClient::Reply r = client.wait(id);
    if (r.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, Status::kRejected);
      ++rejected;
      minRetry = std::min(minRetry, r.retryAfterMs);
    }
  }
  // The first request is always admitted; with an in-flight quota of 1
  // and all 8 frames landing while the single worker churns, the rest are
  // turned away with a nonzero retry-after hint.
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_GE(minRetry, 1u);
  EXPECT_GE(server.stats().quotaRejected, static_cast<std::uint64_t>(rejected));
  server.stop();
}

TEST(NetWire, MalformedFramesRejectWithoutKillingTheServer) {
  WireServer server(testOptions());
  server.start();

  // Framing violation: the connection dies, the server survives.
  {
    WireClient attacker;
    attacker.connect("127.0.0.1", server.port(), 5000);
    attacker.sendRaw(std::string(11, '\x80'));
    EXPECT_THROW((void)attacker.wait(1), std::runtime_error);
  }
  // Oversized header: rejected before any reserve; connection dies.
  {
    WireClient attacker;
    attacker.connect("127.0.0.1", server.port(), 5000);
    Encoder enc;
    enc.u64(std::uint64_t{1} << 50);
    attacker.sendRaw(enc.str());
    EXPECT_THROW((void)attacker.wait(1), std::runtime_error);
  }
  // Malformed BODY inside a well-framed request: per-request kError, the
  // connection lives and serves the next request.
  {
    WireClient client;
    client.connect("127.0.0.1", server.port());
    Encoder enc;
    enc.u64(31);  // requestId
    enc.u64(99);  // unknown op
    client.sendRaw(encodeFrame(enc.str()));
    const WireClient::Reply err = client.wait(31);
    EXPECT_EQ(err.status, Status::kError);
    EXPECT_TRUE(client.ping().ok());
  }
  // Unknown property: same contract.
  {
    WireClient client;
    client.connect("127.0.0.1", server.port());
    const WireClient::Reply err =
        client.wait(client.sendProve(pathGraph(4), "no-such-property"));
    EXPECT_EQ(err.status, Status::kError);
    EXPECT_TRUE(client.ping().ok());
  }
  EXPECT_GE(server.stats().protocolErrors, 2u);
  EXPECT_GE(server.stats().requestErrors, 2u);
  server.stop();
}

TEST(NetWire, StreamedCertificateEncodedOnceScatteredToSubscribers) {
  WireServerOptions opts = testOptions();
  opts.service.numThreads = 1;
  opts.chunkBytes = 256;  // force many chunks (partial-write pressure)
  WireServer server(opts);
  server.start();

  Rng rng(23);
  const Graph g = randomBoundedPathwidth(128, 2, 0.4, rng).graph;
  const CoreProveResult local =
      proveCore(g, IdAssignment::identity(g.numVertices()), *makeConnectivity());
  const std::string expected =
      encodeCertificateStream(local.propertyHolds, local.labels);

  // Occupy the single worker with an unrelated prove so all three wire
  // requests are queued — and coalesced by the result cache — before any
  // of them starts: their futures then resolve in the SAME completion
  // tick, which is the scatter case the memo exists for.
  Rng blockRng(55);
  const Graph big = randomBoundedPathwidth(512, 2, 0.4, blockRng).graph;
  auto blocker = server.service().submitProve(serve::ProveJob{
      big, IdAssignment::identity(big.numVertices()), makeConnectivity(), {}});

  // Three subscribers ask for the SAME labeling, concurrently.
  WireClient a, b, c;
  a.connect("127.0.0.1", server.port());
  b.connect("127.0.0.1", server.port());
  c.connect("127.0.0.1", server.port());
  const std::uint64_t ra = a.sendProve(g, "connectivity");
  const std::uint64_t rb = b.sendProve(g, "connectivity");
  const std::uint64_t rc = c.sendProve(g, "connectivity");
  const WireClient::Reply replyA = a.wait(ra);
  const WireClient::Reply replyB = b.wait(rb);
  const WireClient::Reply replyC = c.wait(rc);
  ASSERT_TRUE(replyA.ok()) << replyA.error;
  ASSERT_TRUE(replyB.ok()) << replyB.error;
  ASSERT_TRUE(replyC.ok()) << replyC.error;
  EXPECT_EQ(replyA.stream, expected);
  EXPECT_EQ(replyB.stream, expected);
  EXPECT_EQ(replyC.stream, expected);
  blocker.wait();

  const WireServerStats stats = server.stats();
  EXPECT_EQ(stats.streamEncodes, 1u);       // encoded exactly once
  EXPECT_GE(stats.streamEncodeReuses, 2u);  // scattered to the others
  EXPECT_GE(stats.chunksQueued, 3u);
  server.stop();
}

TEST(NetWire, DrainUnderLoadResolvesEveryRequestTerminally) {
  WireServerOptions opts = testOptions();
  opts.service.numThreads = 1;
  opts.service.enableResultCache = false;
  WireServer server(opts);
  server.start();

  WireClient client;
  client.connect("127.0.0.1", server.port());

  // Distinct graphs: no coalescing, each is real work for the single
  // worker, so a drain catches most of them not yet started.
  Rng rng(100);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 6; ++i) {
    const Graph g = randomBoundedPathwidth(256, 2, 0.4, rng).graph;
    ids.push_back(client.sendProve(g, "connectivity"));
  }
  // Ping barrier: requests are handled in order, so this reply proves the
  // server has READ all six proves — the drain then owes each a terminal
  // frame (cancelPending covers the ones it discards).
  ASSERT_TRUE(client.wait(client.sendPing()).ok());
  server.requestDrain();

  int ok = 0, cancelled = 0, shutdown = 0;
  for (const std::uint64_t id : ids) {
    const WireClient::Reply r = client.wait(id);
    switch (r.status) {
      case Status::kOk:
        ++ok;
        break;
      case Status::kCancelled:
        ++cancelled;
        break;
      case Status::kShuttingDown:
        ++shutdown;
        break;
      default:
        FAIL() << "unexpected status " << statusName(r.status);
    }
  }
  // Every request read before the drain resolves terminally; the
  // cancelPending surface means at least one was discarded (single
  // worker, six multi-ms jobs) unless the race went the other way —
  // the hard assertion is completeness, not the split.
  EXPECT_EQ(ok + cancelled + shutdown, 6);
  EXPECT_GE(server.stats().drains, 1u);
  server.stop();

  // After the drain the listener is gone: new connections fail.
  WireClient late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port(), 1000),
               std::runtime_error);
}

}  // namespace
}  // namespace lanecert::net
