// Tests for the girth >= g property: known families, brute-force
// cross-validation (including the g = 4 == triangle-free equivalence), the
// two-lane Parent-merge cycle-closing case, and the full certification
// pipeline.

#include <gtest/gtest.h>

#include "core/scheme.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "mso/bruteforce.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

Graph randomSmall(std::uint64_t seed, VertexId n, double p) {
  Rng rng(seed);
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.flip(p)) g.addEdge(u, v);
    }
  }
  return g;
}

TEST(GirthBrute, KnownFamilies) {
  EXPECT_EQ(girthBrute(cycleGraph(5)), 5);
  EXPECT_EQ(girthBrute(cycleGraph(9)), 9);
  EXPECT_EQ(girthBrute(completeGraph(4)), 3);
  EXPECT_EQ(girthBrute(gridGraph(3, 3)), 4);
  EXPECT_GT(girthBrute(pathGraph(6)), 6);  // forest: no cycle
}

TEST(GirthProperty, KnownFamilies) {
  EXPECT_TRUE(evaluateOnGraph(*makeGirthAtLeast(5), cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*makeGirthAtLeast(5), cycleGraph(8)));
  EXPECT_FALSE(evaluateOnGraph(*makeGirthAtLeast(6), cycleGraph(5)));
  EXPECT_TRUE(evaluateOnGraph(*makeGirthAtLeast(4), gridGraph(2, 4)));
  EXPECT_FALSE(evaluateOnGraph(*makeGirthAtLeast(5), gridGraph(2, 4)));
  EXPECT_TRUE(evaluateOnGraph(*makeGirthAtLeast(10), pathGraph(8)));  // forest
  EXPECT_FALSE(evaluateOnGraph(*makeGirthAtLeast(4), completeGraph(3)));
}

TEST(GirthProperty, GirthFourEqualsTriangleFree) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const Graph g = randomSmall(seed * 11 + 2, 7, 0.3);
    EXPECT_EQ(evaluateOnGraph(*makeGirthAtLeast(4), g),
              evaluateOnGraph(*makeTriangleFree(), g))
        << "seed " << seed;
  }
}

TEST(GirthProperty, MatchesBruteForceOnRandomGraphs) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const VertexId n = 4 + static_cast<VertexId>(seed % 5);
    const Graph g = randomSmall(seed * 17 + 5, n, 0.35);
    for (int girth : {4, 5, 6}) {
      EXPECT_EQ(evaluateOnGraph(*makeGirthAtLeast(girth), g),
                girthBrute(g) >= girth)
          << "seed " << seed << " g " << girth;
    }
  }
}

TEST(GirthProperty, ParentMergeClosesCycles) {
  // The identify-based detection: a cycle whose two halves live on
  // different sides of a gluing.  Build it via the raw algebra: parent
  // holds path a-x-b (2 edges), child holds path a'-y-z-b' (3 edges);
  // identifying a=a' then b=b' closes a 5-cycle.
  const auto g6 = makeGirthAtLeast(6);
  const auto g5 = makeGirthAtLeast(5);
  for (const auto& [prop, expectCycleCaught] :
       std::vector<std::pair<PropertyPtr, bool>>{{g6, true}, {g5, false}}) {
    HomState parent = prop->empty();
    for (int i = 0; i < 3; ++i) parent = prop->addVertex(parent);  // a x b
    parent = prop->addEdge(parent, 0, 1, kRealEdge);
    parent = prop->addEdge(parent, 1, 2, kRealEdge);
    HomState child = prop->empty();
    for (int i = 0; i < 4; ++i) child = prop->addVertex(child);  // a' y z b'
    child = prop->addEdge(child, 0, 1, kRealEdge);
    child = prop->addEdge(child, 1, 2, kRealEdge);
    child = prop->addEdge(child, 2, 3, kRealEdge);
    HomState s = prop->join(parent, child);  // slots: a x b a' y z b'
    s = prop->identify(s, 0, 3);             // a = a'
    s = prop->identify(s, 2, 5);             // b = b' (slot shifted)
    EXPECT_EQ(prop->accepts(s), !expectCycleCaught) << prop->name();
  }
}

TEST(GirthProperty, EndToEndCertification) {
  // C9 has girth 9: certify girth >= 5 and girth >= 9; refuse girth >= 10.
  const Graph g = cycleGraph(9);
  const auto ids = IdAssignment::random(9, 3);
  for (int girth : {5, 9}) {
    const auto r = proveAndVerifyEdges(g, ids, makeGirthAtLeast(girth));
    EXPECT_TRUE(r.propertyHolds) << girth;
    EXPECT_TRUE(r.sim.allAccept) << girth;
  }
  EXPECT_FALSE(
      proveAndVerifyEdges(g, ids, makeGirthAtLeast(10)).propertyHolds);
  // A grid (girth 4) passes >= 4 but not >= 5.
  const Graph grid = gridGraph(2, 5);
  const auto gids = IdAssignment::random(grid.numVertices(), 4);
  EXPECT_TRUE(proveAndVerifyEdges(grid, gids, makeGirthAtLeast(4)).sim.allAccept);
  EXPECT_FALSE(
      proveAndVerifyEdges(grid, gids, makeGirthAtLeast(5)).propertyHolds);
}

TEST(GirthProperty, RejectsBadParameters) {
  EXPECT_THROW((void)makeGirthAtLeast(2), std::invalid_argument);
  EXPECT_THROW((void)makeGirthAtLeast(101), std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
