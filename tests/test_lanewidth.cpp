// Tests for Definition 5.1 and Proposition 5.2: the V-insert/E-insert
// construction machine and the equivalence with lane-partition completions.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "lane/embedding.hpp"
#include "lane/lane_partition.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"

namespace lanecert {
namespace {

TEST(Replay, InitialPathOnly) {
  ConstructionSequence seq;
  seq.numVertices = 3;
  seq.initialPath = {0, 1, 2};
  const ReplayResult r = replayConstruction(seq);
  EXPECT_EQ(r.graph.numEdges(), 2);
  EXPECT_TRUE(r.graph.hasEdge(0, 1));
  EXPECT_TRUE(r.graph.hasEdge(1, 2));
  EXPECT_EQ(r.designated, (std::vector<VertexId>{0, 1, 2}));
}

TEST(Replay, FigureSevenStyleConstruction) {
  // 4 lanes; V-insert into lane 0, then E-inserts, mirroring Figure 7.
  ConstructionSequence seq;
  seq.numVertices = 6;
  seq.initialPath = {0, 1, 2, 3};
  seq.ops = {
      {ConstructionOp::Kind::kVInsert, 0, -1, 4},
      {ConstructionOp::Kind::kEInsert, 0, 3, kNoVertex},
      {ConstructionOp::Kind::kEInsert, 0, 1, kNoVertex},
      {ConstructionOp::Kind::kVInsert, 3, -1, 5},
  };
  const ReplayResult r = replayConstruction(seq);
  EXPECT_EQ(r.graph.numEdges(), 3 + 4);
  EXPECT_TRUE(r.graph.hasEdge(4, 0));  // V-insert edge
  EXPECT_TRUE(r.graph.hasEdge(4, 3));  // E-insert(0,3) after designation moved
  EXPECT_TRUE(r.graph.hasEdge(4, 1));
  EXPECT_TRUE(r.graph.hasEdge(5, 3));
  EXPECT_EQ(r.designated, (std::vector<VertexId>{4, 1, 2, 5}));
}

TEST(Replay, RejectsMalformedSequences) {
  ConstructionSequence seq;
  seq.numVertices = 2;
  seq.initialPath = {0, 0};
  EXPECT_THROW((void)replayConstruction(seq), std::invalid_argument);

  seq.initialPath = {0, 1};
  seq.ops = {{ConstructionOp::Kind::kVInsert, 5, -1, 1}};
  EXPECT_THROW((void)replayConstruction(seq), std::invalid_argument);

  seq.numVertices = 3;
  seq.ops = {{ConstructionOp::Kind::kVInsert, 0, -1, 1}};  // vertex reused
  EXPECT_THROW((void)replayConstruction(seq), std::invalid_argument);

  seq.ops = {{ConstructionOp::Kind::kEInsert, 0, 0, kNoVertex}};  // self edge
  EXPECT_THROW((void)replayConstruction(seq), std::invalid_argument);
}

TEST(Replay, RejectsUnusedVertices) {
  ConstructionSequence seq;
  seq.numVertices = 3;
  seq.initialPath = {0, 1};
  EXPECT_THROW((void)replayConstruction(seq), std::invalid_argument);
}

/// Checks Prop 5.2 Item2 => Item1 on (g, rep, lanes): the construction's
/// replay equals the completion.
void checkRoundTrip(const Graph& g, const IntervalRepresentation& rep,
                    const LanePartition& lanes, const char* what) {
  const ConstructionSequence seq = buildConstruction(g, rep, lanes);
  const ReplayResult replay = replayConstruction(seq);
  const CompletionResult comp = buildCompletion(g, lanes, /*withInit=*/true);
  EXPECT_TRUE(replay.graph.sameEdgeSet(comp.graph)) << what;

  // And Item1 => Item2: the witness regenerates the same completion.
  const LanewidthWitness wit = constructionWitness(seq);
  EXPECT_TRUE(wit.rep.isValidFor(wit.gPrime)) << what;
  EXPECT_TRUE(wit.lanes.isValidFor(wit.rep)) << what;
  const CompletionResult comp2 =
      buildCompletion(wit.gPrime, wit.lanes, /*withInit=*/true);
  EXPECT_TRUE(replay.graph.sameEdgeSet(comp2.graph)) << what;
}

TEST(Prop52, PathGraph) {
  const Graph g = pathGraph(12);
  const auto rep = bestIntervalRepresentation(g);
  checkRoundTrip(g, rep, greedyLanePartition(rep), "path12");
}

TEST(Prop52, CycleGraph) {
  const Graph g = cycleGraph(9);
  const auto rep = bestIntervalRepresentation(g);
  checkRoundTrip(g, rep, greedyLanePartition(rep), "cycle9");
}

TEST(Prop52, WithProp46Lanes) {
  // Use the Proposition 4.6 lanes (not the greedy ones) as in the pipeline.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 4);
    const auto bp = randomBoundedPathwidth(60, k, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const LanePlan plan = buildLanePlan(bp.graph, rep);
    checkRoundTrip(bp.graph, rep, plan.lanes,
                   ("prop46 seed " + std::to_string(seed)).c_str());
  }
}

TEST(Prop52, GreedyLanesSweep) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed + 100);
    const int k = 1 + static_cast<int>(seed % 3);
    const auto bp = randomBoundedPathwidth(40, k, 0.6, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    checkRoundTrip(bp.graph, rep, greedyLanePartition(rep),
                   ("greedy seed " + std::to_string(seed)).c_str());
  }
}

TEST(Prop52, CompleteGraph) {
  const Graph g = completeGraph(6);
  const auto rep = bestIntervalRepresentation(g);
  checkRoundTrip(g, rep, greedyLanePartition(rep), "K6");
}

TEST(Prop52, StarAndCaterpillar) {
  const Graph s = starGraph(8);
  const auto rs = bestIntervalRepresentation(s);
  checkRoundTrip(s, rs, greedyLanePartition(rs), "star8");
  const Graph c = caterpillar(7, 2);
  const auto rc = bestIntervalRepresentation(c);
  checkRoundTrip(c, rc, greedyLanePartition(rc), "caterpillar");
}

TEST(Prop52, WitnessIntervalsDisjointWithinLane) {
  const Graph g = cycleGraph(8);
  const auto rep = bestIntervalRepresentation(g);
  const auto seq = buildConstruction(g, rep, greedyLanePartition(rep));
  const auto wit = constructionWitness(seq);
  for (const auto& lane : wit.lanes.lanes()) {
    for (std::size_t i = 0; i + 1 < lane.size(); ++i) {
      EXPECT_TRUE(wit.rep.interval(lane[i]).before(wit.rep.interval(lane[i + 1])));
    }
  }
}

TEST(BuildConstruction, RejectsInvalidInput) {
  const Graph g = pathGraph(3);
  const auto badRep = IntervalRepresentation({{0, 0}, {2, 2}, {4, 4}});
  EXPECT_THROW((void)buildConstruction(g, badRep, LanePartition({{0, 1, 2}})),
               std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
