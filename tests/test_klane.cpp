// Tests for Section 5: hierarchical decompositions (Prop 5.6), node-type
// invariants, the Observation 5.5 depth bound, and per-node connectivity.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "klane/hierarchy.hpp"
#include "klane/validate.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"

namespace lanecert {
namespace {

/// Full pipeline up to the hierarchy for an arbitrary connected graph.
HierarchyResult hierarchyOf(const Graph& g) {
  const auto rep = bestIntervalRepresentation(g);
  const LanePlan plan = buildLanePlan(g, rep);
  const ConstructionSequence seq = buildConstruction(g, rep, plan.lanes);
  return buildHierarchy(seq);
}

void expectValid(const HierarchyResult& r, int numLanes, const char* what) {
  const auto errs = validateHierarchy(r, numLanes);
  EXPECT_TRUE(errs.empty()) << what << ": " << (errs.empty() ? "" : errs[0])
                            << " (" << errs.size() << " violations)";
}

TEST(TerminalMap, SetAndGet) {
  TerminalMap tm;
  EXPECT_EQ(tm.at(3), kNoVertex);
  tm.set(3, 7);
  tm.set(1, 5);
  EXPECT_EQ(tm.at(3), 7);
  EXPECT_EQ(tm.at(1), 5);
  tm.set(3, 9);
  EXPECT_EQ(tm.at(3), 9);
  EXPECT_EQ(tm.entries().size(), 2u);
  EXPECT_EQ(tm.entries()[0].first, 1);  // sorted by lane
}

TEST(Hierarchy, InitialPathOnly) {
  ConstructionSequence seq;
  seq.numVertices = 3;
  seq.initialPath = {0, 1, 2};
  const HierarchyResult r = buildHierarchy(seq);
  // One P-node wrapped in one T-node.
  EXPECT_EQ(r.hierarchy.size(), 2);
  EXPECT_EQ(r.hierarchy.node(r.hierarchy.root()).type, HierNode::Type::kT);
  EXPECT_EQ(r.hierarchy.depth(), 2);
  expectValid(r, 3, "initial path");
}

TEST(Hierarchy, SingleVInsert) {
  ConstructionSequence seq;
  seq.numVertices = 3;
  seq.initialPath = {0, 1};
  seq.ops = {{ConstructionOp::Kind::kVInsert, 0, -1, 2}};
  const HierarchyResult r = buildHierarchy(seq);
  expectValid(r, 2, "single V-insert");
  // P-node, E-node, outer T-node.
  EXPECT_EQ(r.hierarchy.size(), 3);
  const HierNode& root = r.hierarchy.node(r.hierarchy.root());
  EXPECT_EQ(root.children.size(), 2u);
  EXPECT_EQ(root.outTerm.at(0), 2);  // designated moved to the new vertex
  EXPECT_EQ(root.outTerm.at(1), 1);
}

TEST(Hierarchy, EInsertCase21TwoVNodes) {
  // E-insert directly between two initial-path vertices: Case 2.1.
  ConstructionSequence seq;
  seq.numVertices = 3;
  seq.initialPath = {0, 1, 2};
  seq.ops = {{ConstructionOp::Kind::kEInsert, 0, 2, kNoVertex}};
  const HierarchyResult r = buildHierarchy(seq);
  expectValid(r, 3, "case 2.1");
  // P-node + 2 V-nodes + B-node + outer T-node = 5.
  EXPECT_EQ(r.hierarchy.size(), 5);
  int bCount = 0;
  int vCount = 0;
  for (int i = 0; i < r.hierarchy.size(); ++i) {
    bCount += r.hierarchy.node(i).type == HierNode::Type::kB;
    vCount += r.hierarchy.node(i).type == HierNode::Type::kV;
  }
  EXPECT_EQ(bCount, 1);
  EXPECT_EQ(vCount, 2);
}

TEST(Hierarchy, EInsertCase23Mixed) {
  // Lane 0 grows one E-node, then E-insert(0, 1): owner(0) is the E-node,
  // owner(1) is the P-node = LCA: Case 2.3 (one V-node, one T-node).
  ConstructionSequence seq;
  seq.numVertices = 3;
  seq.initialPath = {0, 1};
  seq.ops = {
      {ConstructionOp::Kind::kVInsert, 0, -1, 2},
      {ConstructionOp::Kind::kEInsert, 0, 1, kNoVertex},
  };
  const HierarchyResult r = buildHierarchy(seq);
  expectValid(r, 2, "case 2.3");
  int tCount = 0;
  for (int i = 0; i < r.hierarchy.size(); ++i) {
    tCount += r.hierarchy.node(i).type == HierNode::Type::kT;
  }
  EXPECT_EQ(tCount, 2);  // the wrap + the outer T-node
}

TEST(Hierarchy, EInsertCase22TwoSubtrees) {
  // Both lanes grow below the P-node before the E-insert: Case 2.2.
  ConstructionSequence seq;
  seq.numVertices = 4;
  seq.initialPath = {0, 1};
  seq.ops = {
      {ConstructionOp::Kind::kVInsert, 0, -1, 2},
      {ConstructionOp::Kind::kVInsert, 1, -1, 3},
      {ConstructionOp::Kind::kEInsert, 0, 1, kNoVertex},
  };
  const HierarchyResult r = buildHierarchy(seq);
  expectValid(r, 2, "case 2.2");
  // The B-node has two T-node children.
  for (int i = 0; i < r.hierarchy.size(); ++i) {
    const HierNode& n = r.hierarchy.node(i);
    if (n.type == HierNode::Type::kB) {
      EXPECT_EQ(r.hierarchy.node(n.children[0]).type, HierNode::Type::kT);
      EXPECT_EQ(r.hierarchy.node(n.children[1]).type, HierNode::Type::kT);
    }
  }
}

TEST(Hierarchy, DepthBoundHoldsOnFamilies) {
  for (const Graph& g : {pathGraph(30), cycleGraph(18), caterpillar(8, 2),
                         starGraph(12), gridGraph(3, 5), completeGraph(6)}) {
    const auto rep = bestIntervalRepresentation(g);
    const LanePlan plan = buildLanePlan(g, rep);
    const ConstructionSequence seq = buildConstruction(g, rep, plan.lanes);
    const HierarchyResult r = buildHierarchy(seq);
    expectValid(r, seq.numLanes(), g.summary().c_str());
    EXPECT_LE(r.hierarchy.depth(), 2 * seq.numLanes()) << g.summary();
  }
}

TEST(Hierarchy, RandomSweepAllValid) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 4);
    const auto bp = randomBoundedPathwidth(50, k, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const LanePlan plan = buildLanePlan(bp.graph, rep);
    const ConstructionSequence seq = buildConstruction(bp.graph, rep, plan.lanes);
    const HierarchyResult r = buildHierarchy(seq);
    expectValid(r, seq.numLanes(), ("seed " + std::to_string(seed)).c_str());
  }
}

TEST(Hierarchy, MaterializedRootMatchesCompletion) {
  Rng rng(7);
  const auto bp = randomBoundedPathwidth(40, 2, 0.5, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const LanePlan plan = buildLanePlan(bp.graph, rep);
  const auto comp = buildCompletion(bp.graph, plan.lanes, /*withInit=*/true);
  const ConstructionSequence seq = buildConstruction(bp.graph, rep, plan.lanes);
  const HierarchyResult r = buildHierarchy(seq);
  EXPECT_TRUE(r.graph.sameEdgeSet(comp.graph));
  EXPECT_EQ(r.hierarchy.materializeEdges(r.hierarchy.root()).size(),
            static_cast<std::size_t>(comp.graph.numEdges()));
}

TEST(Hierarchy, SubtreeOutTerminalsOfOuterTNode) {
  ConstructionSequence seq;
  seq.numVertices = 4;
  seq.initialPath = {0, 1};
  seq.ops = {
      {ConstructionOp::Kind::kVInsert, 0, -1, 2},
      {ConstructionOp::Kind::kVInsert, 0, -1, 3},
  };
  const HierarchyResult r = buildHierarchy(seq);
  expectValid(r, 2, "chain");
  const int root = r.hierarchy.root();
  const auto subOut = subtreeOutTerminals(r.hierarchy, root);
  const HierNode& t = r.hierarchy.node(root);
  // The root child (P-node)'s subtree covers everything: out = {2->3? lane0
  // ends at vertex 3, lane1 stays at 1}.
  const TerminalMap& rootOut = subOut[static_cast<std::size_t>(t.rootChildPos)];
  EXPECT_EQ(rootOut.at(0), 3);
  EXPECT_EQ(rootOut.at(1), 1);
}

TEST(Hierarchy, ToStringShowsTree) {
  const HierarchyResult r = hierarchyOf(cycleGraph(6));
  const std::string s = r.hierarchy.toString();
  EXPECT_NE(s.find("T#"), std::string::npos);
  EXPECT_NE(s.find("P#"), std::string::npos);
}

TEST(Hierarchy, EveryEdgeOwnedByEPOrB) {
  const HierarchyResult r = hierarchyOf(gridGraph(2, 6));
  for (EdgeId e = 0; e < r.graph.numEdges(); ++e) {
    const auto type = r.hierarchy.node(r.edgeOwner[static_cast<std::size_t>(e)]).type;
    EXPECT_TRUE(type == HierNode::Type::kE || type == HierNode::Type::kP ||
                type == HierNode::Type::kB);
  }
}

}  // namespace
}  // namespace lanecert
