// Tests for the executable Definition 5.3/5.4 semantics (klane/merges) and
// the theorem-level consistency check: every node of every hierarchical
// decomposition materializes, BY REPLAYING ITS MERGE OPERATIONS, to exactly
// the vertex/edge sets and terminals the compact Hierarchy reports.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "klane/merges.hpp"
#include "klane/validate.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"

namespace lanecert {
namespace {

TEST(KLaneGraph, BaseConstructors) {
  const KLaneGraph v = kLaneVertex(2, 7);
  EXPECT_TRUE(validateKLane(v).empty());
  EXPECT_EQ(v.inTerm.at(2), 7);

  const KLaneGraph e = kLaneEdge(0, 3, 9);
  EXPECT_TRUE(validateKLane(e).empty());
  EXPECT_EQ(e.edges.size(), 1u);
  EXPECT_EQ(e.inTerm.at(0), 3);
  EXPECT_EQ(e.outTerm.at(0), 9);

  const KLaneGraph p = kLanePath({0, 1, 2}, {5, 6, 7});
  EXPECT_TRUE(validateKLane(p).empty());
  EXPECT_EQ(p.edges.size(), 2u);
  EXPECT_EQ(p.inTerm.at(1), 6);
  EXPECT_THROW((void)kLaneEdge(0, 4, 4), std::invalid_argument);
  EXPECT_THROW((void)kLanePath({0, 1}, {5, 5}), std::invalid_argument);
}

TEST(BridgeMerge, CombinesDisjointParts) {
  // Figure 8's flavor: two parts on lanes {0,1} and {2,3}, bridged 1-2.
  const KLaneGraph a = kLanePath({0, 1}, {0, 1});
  const KLaneGraph b = kLanePath({2, 3}, {2, 3});
  const KLaneGraph g = bridgeMerge(a, b, 1, 2);
  EXPECT_TRUE(validateKLane(g).empty());
  EXPECT_EQ(g.vertices.size(), 4u);
  EXPECT_EQ(g.edges.size(), 3u);  // two path edges + the bridge 1-2
  EXPECT_TRUE(std::binary_search(g.edges.begin(), g.edges.end(),
                                 std::make_pair(VertexId{1}, VertexId{2})));
  EXPECT_EQ(g.lanes, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(g.outTerm.at(0), 0);
  EXPECT_EQ(g.outTerm.at(3), 3);
}

TEST(BridgeMerge, RejectsOverlappingLanes) {
  const KLaneGraph a = kLaneVertex(0, 1);
  const KLaneGraph b = kLaneVertex(0, 2);
  EXPECT_THROW((void)bridgeMerge(a, b, 0, 0), std::invalid_argument);
}

TEST(ParentMerge, GluesInOntoOut) {
  // Parent: path (0,1) on lanes {0,1}; child: edge 0->5 on lane 0 whose
  // in-terminal IS the parent's out-terminal 0.
  const KLaneGraph parent = kLanePath({0, 1}, {0, 1});
  const KLaneGraph child = kLaneEdge(0, 0, 5);
  const KLaneGraph g = parentMergeGraphs(child, parent);
  EXPECT_TRUE(validateKLane(g).empty());
  EXPECT_EQ(g.vertices, (std::vector<VertexId>{0, 1, 5}));
  EXPECT_EQ(g.outTerm.at(0), 5);   // updated by the child
  EXPECT_EQ(g.outTerm.at(1), 1);   // untouched lane
  EXPECT_EQ(g.inTerm.at(0), 0);    // parent's in-terminals kept
}

TEST(ParentMerge, RejectsMismatchedGluing) {
  const KLaneGraph parent = kLanePath({0, 1}, {0, 1});
  const KLaneGraph child = kLaneEdge(0, 7, 5);  // in-terminal 7 != out 0
  EXPECT_THROW((void)parentMergeGraphs(child, parent), std::invalid_argument);
}

TEST(ParentMerge, RejectsOverlappingEdges) {
  const KLaneGraph parent = kLanePath({0, 1}, {0, 1});
  KLaneGraph child = kLaneEdge(0, 0, 1);  // duplicates the parent edge 0-1
  EXPECT_THROW((void)parentMergeGraphs(child, parent), std::invalid_argument);
}

TEST(TreeMerge, ChainOfEdges) {
  // P=(0,1) with a chain of two lane-0 edges below it.
  const std::vector<KLaneGraph> nodes = {
      kLanePath({0, 1}, {0, 1}),
      kLaneEdge(0, 0, 2),
      kLaneEdge(0, 2, 3),
  };
  const KLaneGraph g = treeMerge(nodes, {-1, 0, 1});
  EXPECT_TRUE(validateKLane(g).empty());
  EXPECT_EQ(g.vertices.size(), 4u);
  EXPECT_EQ(g.edges.size(), 3u);
  EXPECT_EQ(g.outTerm.at(0), 3);
  EXPECT_EQ(g.inTerm.at(0), 0);
}

TEST(TreeMerge, RejectsSiblingLaneOverlap) {
  const std::vector<KLaneGraph> nodes = {
      kLanePath({0, 1}, {0, 1}),
      kLaneEdge(0, 0, 2),
      kLaneEdge(0, 0, 3),  // same lane, same parent: forbidden
  };
  EXPECT_THROW((void)treeMerge(nodes, {-1, 0, 0}), std::invalid_argument);
}

TEST(TreeMerge, AssociativityOrderIrrelevance) {
  // Two children on disjoint lanes: any contraction order yields the same
  // graph (the paper's associativity remark in §5.3).
  const std::vector<KLaneGraph> a = {
      kLanePath({0, 1}, {0, 1}), kLaneEdge(0, 0, 2), kLaneEdge(1, 1, 3)};
  const KLaneGraph g1 = treeMerge(a, {-1, 0, 0});
  const std::vector<KLaneGraph> b = {
      kLanePath({0, 1}, {0, 1}), kLaneEdge(1, 1, 3), kLaneEdge(0, 0, 2)};
  const KLaneGraph g2 = treeMerge(b, {-1, 0, 0});
  EXPECT_EQ(g1.vertices, g2.vertices);
  EXPECT_EQ(g1.edges, g2.edges);
  EXPECT_TRUE(g1.outTerm == g2.outTerm);
}

// --- The theorem-level consistency check ---

void expectMergeSemantics(const Graph& g, const IntervalRepresentation& rep,
                          const char* what) {
  const LanePlan plan = buildLanePlan(g, rep);
  const ConstructionSequence seq = buildConstruction(g, rep, plan.lanes);
  const HierarchyResult hier = buildHierarchy(seq);
  for (int id = 0; id < hier.hierarchy.size(); ++id) {
    const KLaneGraph mat = materializeByMerges(hier.hierarchy, id);
    EXPECT_TRUE(validateKLane(mat).empty()) << what << " node " << id;
    EXPECT_EQ(mat.vertices, hier.hierarchy.materializeVertices(id))
        << what << " node " << id << ": vertex sets differ";
    EXPECT_EQ(mat.edges, hier.hierarchy.materializeEdges(id))
        << what << " node " << id << ": edge sets differ";
    const HierNode& n = hier.hierarchy.node(id);
    EXPECT_EQ(mat.lanes, n.lanes) << what << " node " << id;
    EXPECT_TRUE(mat.inTerm == n.inTerm) << what << " node " << id;
    EXPECT_TRUE(mat.outTerm == n.outTerm) << what << " node " << id;
  }
}

TEST(MergeSemantics, HierarchyNodesAreTheirMerges) {
  for (const Graph& g : {pathGraph(15), cycleGraph(11), caterpillar(5, 2),
                         starGraph(8), gridGraph(2, 6)}) {
    expectMergeSemantics(g, bestIntervalRepresentation(g), g.summary().c_str());
  }
}

TEST(MergeSemantics, RandomSweep) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 3);
    const auto bp = randomBoundedPathwidth(30, k, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    expectMergeSemantics(bp.graph, rep,
                         ("seed " + std::to_string(seed)).c_str());
  }
}

}  // namespace
}  // namespace lanecert
