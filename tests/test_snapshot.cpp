// Tests for warm-start plan persistence (src/snapshot): canonical
// round-trips, byte-identical certificates from snapshot-loaded plans,
// strict rejection of hostile images, and the service-level load/persist
// discipline including fault-injected degradation.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "graph/generators.hpp"
#include "mso/properties.hpp"
#include "runtime/executor.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"
#include "snapshot/snapshot.hpp"

namespace lanecert {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, removed on destruction.
struct ScratchDir {
  fs::path path;
  explicit ScratchDir(const char* tag) {
    path = fs::temp_directory_path() /
           (std::string("lanecert-test-snapshot-") + tag + "-" +
            std::to_string(static_cast<long>(::getpid())));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

Graph testGraph(int n = 96) {
  Rng rng(23);
  return randomBoundedPathwidth(static_cast<VertexId>(n), 4, 0.5, rng).graph;
}

void putU32At(std::string& s, std::size_t off, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    s[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void putU64At(std::string& s, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    s[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

std::uint64_t getU64At(const std::string& s, std::size_t off) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(s[off + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::size_t sectionEntry(std::size_t i) {
  return snapshot::kHeaderBytes + i * snapshot::kSectionEntryBytes;
}

/// Recomputes section `sec`'s CRC over its current payload bytes so a
/// payload corruption survives the CRC guard and reaches the structural
/// decoder.
void fixSectionCrc(std::string& image, std::size_t sec) {
  const auto off =
      static_cast<std::size_t>(getU64At(image, sectionEntry(sec) + 8));
  const auto len =
      static_cast<std::size_t>(getU64At(image, sectionEntry(sec) + 16));
  putU32At(image, sectionEntry(sec) + 4,
           snapshot::crc32(std::string_view(image).substr(off, len)));
}

TEST(SnapshotCodec, RoundTripIsByteIdenticalAndCanonical) {
  const Graph g = testGraph();
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const ProvePlan plan = buildProvePlan(g);
  const std::string image = snapshot::encodeSnapshot(key, plan);

  const auto decoded = snapshot::decodeSnapshot(image, key, g);
  ASSERT_NE(decoded, nullptr);
  // Canonical: re-encoding the decoded plan reproduces the exact bytes.
  EXPECT_EQ(snapshot::encodeSnapshot(key, *decoded), image);
}

TEST(SnapshotCodec, SnapshotLoadedPlanProvesByteIdenticalCertificates) {
  const Graph g = testGraph();
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const ProvePlan plan = buildProvePlan(g);
  const auto decoded =
      snapshot::decodeSnapshot(snapshot::encodeSnapshot(key, plan), key, g);
  ASSERT_NE(decoded, nullptr);

  const IdAssignment ids = IdAssignment::identity(g.numVertices());
  ParallelExecutor exec(2);
  const auto fresh = proveCore(g, ids, *makeConnectivity(), plan, exec);
  const auto warm = proveCore(g, ids, *makeConnectivity(), *decoded, exec);
  ASSERT_TRUE(fresh.propertyHolds);
  ASSERT_TRUE(warm.propertyHolds);
  EXPECT_EQ(fresh.labels, warm.labels);
}

TEST(SnapshotCodec, SuppliedRepChangesTheKey) {
  Rng rng(23);
  auto bp = randomBoundedPathwidth(96, 4, 0.5, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto bare = snapshot::planSnapshotKey(bp.graph, nullptr);
  const auto withRep = snapshot::planSnapshotKey(bp.graph, &rep);
  EXPECT_NE(bare, withRep);
  EXPECT_EQ(bare.paramsFingerprint, withRep.paramsFingerprint);
}

TEST(SnapshotCodec, RejectsEveryTruncation) {
  const Graph g = testGraph(48);
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const std::string image =
      snapshot::encodeSnapshot(key, buildProvePlan(g));
  // The loader requires the file to end exactly at the last payload byte,
  // so EVERY strictly shorter prefix must reject.  Step through densely
  // near the header and sparsely through the payloads.
  for (std::size_t cut = 0; cut < image.size();
       cut += (cut < snapshot::kPayloadOffset + 64 ? 1 : 37)) {
    EXPECT_EQ(snapshot::decodeSnapshot(image.substr(0, cut), key, g), nullptr)
        << "truncation at " << cut << " accepted";
  }
}

TEST(SnapshotCodec, RejectsHeaderAttacks) {
  const Graph g = testGraph(48);
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const std::string image =
      snapshot::encodeSnapshot(key, buildProvePlan(g));

  {  // wrong magic
    std::string m = image;
    m[0] ^= 0x01;
    EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr);
  }
  {  // unknown format version
    std::string m = image;
    putU32At(m, 8, snapshot::kFormatVersion + 1);
    EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr);
  }
  {  // stale content hash (file claims a different graph)
    std::string m = image;
    putU64At(m, 16, getU64At(m, 16) ^ 0x1ull);
    EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr);
  }
  {  // stale params fingerprint (plan built by a different algorithm rev)
    std::string m = image;
    putU64At(m, 24, getU64At(m, 24) ^ 0x1ull);
    EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr);
  }
  {  // expect-key mismatch with an honest file
    snapshot::SnapshotKey other = key;
    other.contentHash ^= 0xff;
    EXPECT_EQ(snapshot::decodeSnapshot(image, other, g), nullptr);
  }
}

TEST(SnapshotCodec, RejectsSectionTableLies) {
  const Graph g = testGraph(48);
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const std::string image =
      snapshot::encodeSnapshot(key, buildProvePlan(g));

  for (std::size_t sec = 0; sec < snapshot::kSectionCount; ++sec) {
    {  // CRC bit flip
      std::string m = image;
      m[sectionEntry(sec) + 4] ^= 0x01;
      EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr)
          << "CRC flip in section " << sec;
    }
    {  // length lie: +1 breaks contiguity / end-of-file agreement
      std::string m = image;
      putU64At(m, sectionEntry(sec) + 16,
               getU64At(m, sectionEntry(sec) + 16) + 1);
      EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr)
          << "length +1 in section " << sec;
    }
    {  // length lie: enormous (would over-reserve if trusted)
      std::string m = image;
      putU64At(m, sectionEntry(sec) + 16, 1ull << 60);
      EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr)
          << "huge length in section " << sec;
    }
    {  // offset lie: aliasing the header
      std::string m = image;
      putU64At(m, sectionEntry(sec) + 8, 0);
      EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr)
          << "zero offset in section " << sec;
    }
  }
}

TEST(SnapshotCodec, RejectsCrcFixedPayloadCorruption) {
  const Graph g = testGraph(48);
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const std::string image =
      snapshot::encodeSnapshot(key, buildProvePlan(g));

  // A hostile count at the head of a section, with the CRC recomputed so
  // it reaches the structural decoder: the remaining() discipline must
  // reject it before any reserve.  Section 0 (rep) starts with the vertex
  // count; varint 0xff..0x7f spells a huge value.
  {
    std::string m = image;
    const auto off =
        static_cast<std::size_t>(getU64At(m, sectionEntry(0) + 8));
    for (int i = 0; i < 9; ++i) {
      m[off + static_cast<std::size_t>(i)] = static_cast<char>(0xff);
    }
    m[off + 9] = 0x7f;
    fixSectionCrc(m, 0);
    EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr);
  }
  // Out-of-range vertex ids inside the hierarchy payload: every index is
  // range-checked against the served graph.
  {
    std::string m = image;
    const auto off =
        static_cast<std::size_t>(getU64At(m, sectionEntry(3) + 8));
    const auto len =
        static_cast<std::size_t>(getU64At(m, sectionEntry(3) + 16));
    for (std::size_t i = 0; i < len; i += 97) {
      m[off + i] = static_cast<char>(0xee);
    }
    fixSectionCrc(m, 3);
    EXPECT_EQ(snapshot::decodeSnapshot(m, key, g), nullptr);
  }
}

TEST(SnapshotStore, PersistAndLoadAcrossStores) {
  const Graph g = testGraph();
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  const ProvePlan plan = buildProvePlan(g);
  ScratchDir dir("store");

  {
    snapshot::SnapshotStore store(dir.str());
    EXPECT_TRUE(store.persistNow(key, plan));
    EXPECT_EQ(store.stats().writes, 1u);
    // Content-addressed idempotence: second persist is a skip.
    EXPECT_TRUE(store.persistNow(key, plan));
    EXPECT_EQ(store.stats().writeSkips, 1u);
  }
  {  // a FRESH store (fresh process stand-in) loads it back
    snapshot::SnapshotStore store(dir.str());
    const auto loaded = store.tryLoad(g, nullptr);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(store.stats().hits, 1u);
    EXPECT_EQ(snapshot::encodeSnapshot(key, *loaded),
              snapshot::encodeSnapshot(key, plan));
    // A different graph misses cleanly.
    const Graph other = pathGraph(12);
    EXPECT_EQ(store.tryLoad(other, nullptr), nullptr);
    EXPECT_EQ(store.stats().misses, 1u);
  }
}

TEST(SnapshotStore, AsyncWritesDrainOnFlushAndDestruction) {
  const Graph g = testGraph();
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  auto plan = std::make_shared<const ProvePlan>(buildProvePlan(g));
  ScratchDir dir("async");

  snapshot::SnapshotStore store(dir.str());
  store.persistAsync(key, plan);
  store.flushWrites();
  EXPECT_EQ(store.stats().writes + store.stats().writeSkips, 1u);
  EXPECT_TRUE(
      fs::exists(dir.path / snapshot::snapshotFileName(key)));
}

TEST(SnapshotStore, RejectsCorruptFileOnDisk) {
  const Graph g = testGraph();
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  ScratchDir dir("corrupt");

  std::string image = snapshot::encodeSnapshot(key, buildProvePlan(g));
  image[image.size() / 2] ^= 0x40;  // payload corruption, CRC now stale
  {
    std::ofstream out(dir.path / snapshot::snapshotFileName(key),
                      std::ios::binary);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  snapshot::SnapshotStore store(dir.str());
  EXPECT_EQ(store.tryLoad(g, nullptr), nullptr);
  EXPECT_EQ(store.stats().rejects, 1u);
}

TEST(SnapshotStore, UnwritableDirectoryDegrades) {
  const Graph g = testGraph(48);
  snapshot::SnapshotStore store("/proc/lanecert-no-such-dir/x");
  EXPECT_EQ(store.tryLoad(g, nullptr), nullptr);
  EXPECT_FALSE(
      store.persistNow(snapshot::planSnapshotKey(g, nullptr),
                       buildProvePlan(g)));
  const auto s = store.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.writeFailures, 1u);
}

serve::ProveJob makeProveJob(const Graph& g) {
  serve::ProveJob job;
  job.graph = g;
  job.ids = IdAssignment::identity(g.numVertices());
  job.property = makeConnectivity();
  return job;
}

TEST(ServiceWarmStart, SecondServiceLoadsFirstServicesPlan) {
  const Graph g = testGraph();
  ScratchDir dir("service");

  std::vector<std::string> coldLabels;
  {
    serve::ServiceOptions opts;
    opts.numThreads = 2;
    opts.snapshotDir = dir.str();
    serve::LaneCertService service(opts);
    const auto r = service.submitProve(makeProveJob(g)).get();
    ASSERT_TRUE(r.propertyHolds);
    coldLabels = r.labels;
    service.flushSnapshotWrites();
    const auto s = service.stats();
    EXPECT_EQ(s.snapshotMisses, 1u);
    EXPECT_EQ(s.snapshotHits, 0u);
    EXPECT_EQ(s.planBuilds, 1u);
  }
  {  // restarted server: plan comes from disk, no fresh build
    serve::ServiceOptions opts;
    opts.numThreads = 2;
    opts.snapshotDir = dir.str();
    serve::LaneCertService service(opts);
    const auto r = service.submitProve(makeProveJob(g)).get();
    ASSERT_TRUE(r.propertyHolds);
    EXPECT_EQ(r.labels, coldLabels);
    const auto s = service.stats();
    EXPECT_EQ(s.snapshotHits, 1u);
    EXPECT_EQ(s.snapshotMisses, 0u);
    EXPECT_EQ(s.planBuilds, 0u);
    EXPECT_GE(s.snapshotLoadMs, 0.0);
  }
}

TEST(ServiceWarmStart, CorruptSnapshotFallsBackToFreshBuild) {
  const Graph g = testGraph();
  const auto key = snapshot::planSnapshotKey(g, nullptr);
  ScratchDir dir("fallback");

  std::string image = snapshot::encodeSnapshot(key, buildProvePlan(g));
  image.resize(image.size() - 7);  // torn write
  {
    std::ofstream out(dir.path / snapshot::snapshotFileName(key),
                      std::ios::binary);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  serve::ServiceOptions opts;
  opts.numThreads = 2;
  opts.snapshotDir = dir.str();
  serve::LaneCertService service(opts);
  const auto r = service.submitProve(makeProveJob(g)).get();
  EXPECT_TRUE(r.propertyHolds);
  const auto s = service.stats();
  EXPECT_EQ(s.snapshotHits, 0u);
  EXPECT_EQ(s.snapshotMisses, 1u);
  EXPECT_EQ(s.planBuilds, 1u);
}

TEST(ServiceWarmStart, SnapshotLoadFaultDegradesToFreshBuild) {
  const Graph g = testGraph();
  ScratchDir dir("fault");
  {  // seed the directory with a valid snapshot
    snapshot::SnapshotStore store(dir.str());
    ASSERT_TRUE(store.persistNow(snapshot::planSnapshotKey(g, nullptr),
                                 buildProvePlan(g)));
  }
  serve::ServiceOptions opts;
  opts.numThreads = 2;
  opts.snapshotDir = dir.str();
  serve::LaneCertService service(opts);

  serve::FaultScope scope([](serve::FaultSite site) {
    if (site == serve::FaultSite::kSnapshotLoad) {
      throw std::runtime_error("injected snapshot-load fault");
    }
  });
  const auto r = service.submitProve(makeProveJob(g)).get();
  EXPECT_TRUE(r.propertyHolds);
  service.drain();
  const auto s = service.stats();
  // The fault ate the load; the prove still succeeded via a fresh build.
  EXPECT_EQ(s.snapshotHits, 0u);
  EXPECT_EQ(s.planBuilds, 1u);
}

}  // namespace
}  // namespace lanecert
