// Multi-process distributed verification (src/dist).
//
// The subsystem's contract is BYTE-IDENTITY: the coordinator's assembled
// SimulationResult must equal the single-process VerifySession's, field by
// field, at every (worker count, threads-per-worker) point — after the full
// sweep and after every incremental edit batch, including batches whose
// edges straddle partition boundaries.  The fault-tolerance contract rides
// on top: a worker SIGKILL'd mid-sweep is re-forked and replayed with no
// effect on the result, and an exhausted restart budget surfaces as
// WorkerFailure (TransientError through the serve layer).
//
// Also covered here: the shared-memory image container (framing validation
// rejects corrupted bytes before interpretation, round-trip accessors) and
// the LabelStore additions it leans on (view constructor, applyEditsBlind).

#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/verify_session.hpp"
#include "dist/dist_verifier.hpp"
#include "dist/image.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"
#include "runtime/label_store.hpp"
#include "serve/fault.hpp"
#include "serve/service.hpp"

namespace lanecert {
namespace {

using dist::DistOptions;
using dist::DistVerifier;

// ---------------------------------------------------------------------------
// Shared-memory image container

struct ImageFixture {
  Graph g = pathGraph(6);
  IdAssignment ids = IdAssignment::random(6, 3);
  std::vector<std::string> labels{"a", "bb", "", "dddd", "e"};
  dist::ImageMeta meta;
  std::vector<char> bytes;

  ImageFixture() {
    meta.numVertices = static_cast<std::uint64_t>(g.numVertices());
    meta.numEdges = static_cast<std::uint64_t>(g.numEdges());
    meta.workers = 2;
    meta.threadsPerWorker = 1;
    meta.property = "connectivity";
    bytes.resize(dist::imageSizeBytes(g, labels, meta));
    dist::writeImage(bytes.data(), bytes.size(), g, ids, labels, meta);
  }

  [[nodiscard]] std::string_view view() const {
    return {bytes.data(), bytes.size()};
  }
};

TEST(DistImage, RoundTripsGraphIdsAndLabels) {
  ImageFixture f;
  const dist::ImageView img = dist::ImageView::open(f.view());
  EXPECT_EQ(img.meta().numVertices, 6u);
  EXPECT_EQ(img.meta().numEdges, 5u);
  EXPECT_EQ(img.meta().workers, 2u);
  EXPECT_EQ(img.meta().property, "connectivity");
  for (VertexId v = 0; v < f.g.numVertices(); ++v) {
    EXPECT_EQ(img.vertexIdOf(static_cast<std::uint64_t>(v)), f.ids.id(v));
    // The arc rows cover exactly this vertex's incident edges, in order.
    const auto arcs = f.g.arcs(v);
    const std::uint64_t begin = img.rowPtr(static_cast<std::uint64_t>(v));
    ASSERT_EQ(img.rowPtr(static_cast<std::uint64_t>(v) + 1) - begin,
              static_cast<std::uint64_t>(arcs.size()));
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      EXPECT_EQ(img.arcEdge(begin + i),
                static_cast<std::uint32_t>(arcs[i].edge));
    }
  }
  const std::vector<std::string_view> views = img.labelViews();
  ASSERT_EQ(views.size(), f.labels.size());
  for (std::size_t e = 0; e < f.labels.size(); ++e) {
    EXPECT_EQ(views[e], f.labels[e]);
    EXPECT_EQ(img.label(e), f.labels[e]);
  }
}

TEST(DistImage, OpenRejectsCorruptedBytes) {
  const ImageFixture f;
  // Bad magic.
  {
    std::vector<char> b = f.bytes;
    b[0] ^= 0x01;
    EXPECT_THROW(dist::ImageView::open({b.data(), b.size()}),
                 std::runtime_error);
  }
  // Bad format version.
  {
    std::vector<char> b = f.bytes;
    b[8] ^= 0x01;
    EXPECT_THROW(dist::ImageView::open({b.data(), b.size()}),
                 std::runtime_error);
  }
  // Any flipped payload byte must fail a CRC (or the content hash) before
  // the arrays are interpreted — flip one byte at a spread of offsets.
  const std::size_t tableEnd =
      dist::kImageHeaderBytes +
      dist::kImageSectionCount * dist::kImageSectionEntryBytes;
  for (std::size_t at = tableEnd; at < f.bytes.size();
       at += 1 + f.bytes.size() / 13) {
    std::vector<char> b = f.bytes;
    b[at] ^= 0x40;
    EXPECT_THROW(dist::ImageView::open({b.data(), b.size()}),
                 std::runtime_error)
        << "flipped byte at " << at << " was accepted";
  }
  // Truncation at any section boundary.
  EXPECT_THROW(
      dist::ImageView::open({f.bytes.data(), f.bytes.size() - 1}),
      std::runtime_error);
  EXPECT_THROW(dist::ImageView::open({f.bytes.data(), 7}),
               std::runtime_error);
}

TEST(DistImage, WriteRejectsMismatchedSizes) {
  ImageFixture f;
  std::vector<char> small(f.bytes.size() - 8);
  EXPECT_THROW(dist::writeImage(small.data(), small.size(), f.g, f.ids,
                                f.labels, f.meta),
               std::invalid_argument);
  dist::ImageMeta wrong = f.meta;
  wrong.numEdges += 1;
  EXPECT_THROW(dist::writeImage(f.bytes.data(), f.bytes.size(), f.g, f.ids,
                                f.labels, wrong),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// LabelStore additions the dist layer leans on

TEST(DistLabelStore, ViewConstructorMatchesStringConstructor) {
  const std::vector<std::string> labels{"alpha", "", "c", "dddddddd"};
  std::vector<std::string_view> views(labels.begin(), labels.end());
  const LabelStore a(labels);
  LabelStore b(std::move(views));
  ASSERT_EQ(b.size(), a.size());
  EXPECT_EQ(b.maxLabelBits(), a.maxLabelBits());
  EXPECT_EQ(b.totalLabelBits(), a.totalLabelBits());
  EXPECT_EQ(b.version(), 0u);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    EXPECT_EQ(b.view(i), labels[i]);
    // Zero-copy: the store's view aliases the ORIGINAL string bytes.
    EXPECT_EQ(b.view(i).data(), labels[i].data());
  }
}

TEST(DistLabelStore, ApplyEditsBlindRewritesAndRecomputesStats) {
  const std::vector<std::string> labels{"alpha", "bb", "c"};
  std::vector<std::string_view> views(labels.begin(), labels.end());
  LabelStore store(std::move(views));
  const std::vector<EdgeLabelEdit> batch{{0, "xyz"}, {2, "longer-now"}};
  store.applyEditsBlind(batch);
  EXPECT_EQ(store.view(0), "xyz");
  EXPECT_EQ(store.view(1), "bb");
  EXPECT_EQ(store.view(2), "longer-now");
  EXPECT_EQ(store.version(), 1u);
  EXPECT_EQ(store.maxLabelBits(), 8 * std::string("longer-now").size());
  EXPECT_EQ(store.totalLabelBits(), 8 * (3 + 2 + 10));
  // Out-of-range edge: all-or-nothing — nothing applied, no version bump.
  const std::vector<EdgeLabelEdit> bad{{1, "ok"}, {7, "nope"}};
  EXPECT_THROW(store.applyEditsBlind(bad), std::out_of_range);
  EXPECT_EQ(store.view(1), "bb");
  EXPECT_EQ(store.version(), 1u);
  store.applyEditsBlind({});  // empty batch: no-op, no bump
  EXPECT_EQ(store.version(), 1u);
}

// ---------------------------------------------------------------------------
// Byte-identity with the single-process session

struct DistFixture {
  Graph g;
  IdAssignment ids;
  std::vector<std::string> labels;

  static const DistFixture& get() {
    static const DistFixture f;
    return f;
  }

 private:
  DistFixture() {
    Rng rng(7);
    BoundedPathwidthGraph bp = randomBoundedPathwidth(240, 2, 0.4, rng);
    const IntervalRepresentation rep =
        IntervalRepresentation::fromPairs(bp.intervals);
    ids = IdAssignment::random(bp.graph.numVertices(), 11);
    CoreProveResult proved =
        proveCore(bp.graph, ids, *makeConnectivity(), &rep, 1);
    EXPECT_TRUE(proved.propertyHolds);
    g = std::move(bp.graph);
    labels = std::move(proved.labels);
  }
};

void expectSame(const SimulationResult& ref, const SimulationResult& got,
                const std::string& where) {
  EXPECT_EQ(got.allAccept, ref.allAccept) << where;
  EXPECT_EQ(got.rejecting, ref.rejecting) << where;
  EXPECT_EQ(got.maxLabelBits, ref.maxLabelBits) << where;
  EXPECT_EQ(got.totalLabelBits, ref.totalLabelBits) << where;
}

/// Edit batches for round r: honest rewrites and corruptions, seeded so
/// every (K, t) configuration replays the same stream, plus — crucially —
/// one edge straddling each partition boundary, so dirty sets route to two
/// owners at once.
std::vector<EdgeLabelEdit> editBatch(const DistFixture& f,
                                     const DistVerifier& dv, int round) {
  std::vector<EdgeLabelEdit> edits;
  const auto m = static_cast<std::uint64_t>(f.g.numEdges());
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                round + 1);
  for (int j = 0; j < 6; ++j) {
    h ^= h << 13, h ^= h >> 7, h ^= h << 17;  // xorshift
    const auto e = static_cast<EdgeId>(h % m);
    EdgeLabelEdit el{e, f.labels[static_cast<std::size_t>(e)]};
    if ((h & 1) != 0 && !el.bytes.empty()) el.bytes[0] ^= 0x5a;
    edits.push_back(std::move(el));
  }
  for (int k = 1; k < dv.workers(); ++k) {
    const std::size_t boundary = dv.partitionRange(k).first;
    for (EdgeId e = 0; e < f.g.numEdges(); ++e) {
      const Edge& eg = f.g.edge(e);
      const bool uLeft = static_cast<std::size_t>(eg.u) < boundary;
      const bool vLeft = static_cast<std::size_t>(eg.v) < boundary;
      if (uLeft != vLeft) {
        edits.push_back({e, f.labels[static_cast<std::size_t>(e)] + "!"});
        break;
      }
    }
  }
  return edits;
}

TEST(DistVerify, ByteIdenticalToSessionAcrossWorkersAndThreads) {
  const DistFixture& f = DistFixture::get();
  for (int K : {1, 2, 4}) {
    for (int t : {1, 2, 4}) {
      const std::string cfg =
          "K=" + std::to_string(K) + " t=" + std::to_string(t);
      VerifySession ref(f.g, f.ids, f.labels, makeConnectivity());
      DistOptions opt;
      opt.workers = K;
      opt.threadsPerWorker = t;
      DistVerifier dv(f.g, f.ids, f.labels, "connectivity", {}, opt);
      expectSame(ref.verifyAll(t), dv.verifyAll(), cfg + " sweep");
      for (int round = 0; round < 3; ++round) {
        const std::vector<EdgeLabelEdit> edits = editBatch(f, dv, round);
        expectSame(ref.reverifyEdits(edits, t), dv.reverifyEdits(edits),
                   cfg + " round " + std::to_string(round));
      }
    }
  }
}

TEST(DistVerify, EditsBeforeFirstSweepStageLikeTheSession) {
  const DistFixture& f = DistFixture::get();
  VerifySession ref(f.g, f.ids, f.labels, makeConnectivity());
  DistOptions opt;
  opt.workers = 2;
  DistVerifier dv(f.g, f.ids, f.labels, "connectivity", {}, opt);
  std::vector<EdgeLabelEdit> edits{{0, f.labels[0] + "?"}};
  // No sweep yet: both sides stage the edit and fall back to a full sweep.
  expectSame(ref.reverifyEdits(edits, 1), dv.reverifyEdits(edits),
             "staged pre-sweep batch");
  EXPECT_TRUE(dv.swept());
  EXPECT_EQ(dv.storeVersion(), 1u);
}

TEST(DistVerify, ReverifyRoutesOnlyToOwningPartitions) {
  const DistFixture& f = DistFixture::get();
  DistOptions opt;
  opt.workers = 4;
  DistVerifier dv(f.g, f.ids, f.labels, "connectivity", {}, opt);
  (void)dv.verifyAll();
  // An edge interior to partition 0 dirties only partition 0.
  const auto [b0, e0] = dv.partitionRange(0);
  EdgeId interior = kNoEdge;
  for (EdgeId e = 0; e < f.g.numEdges(); ++e) {
    const Edge& eg = f.g.edge(e);
    if (static_cast<std::size_t>(eg.u) >= b0 &&
        static_cast<std::size_t>(eg.u) < e0 &&
        static_cast<std::size_t>(eg.v) >= b0 &&
        static_cast<std::size_t>(eg.v) < e0) {
      interior = e;
      break;
    }
  }
  ASSERT_NE(interior, kNoEdge);
  const std::vector<EdgeLabelEdit> edits{
      {interior, f.labels[static_cast<std::size_t>(interior)]}};
  (void)dv.reverifyEdits(edits);
  EXPECT_EQ(dv.stats().routedBatches, 1u);
  EXPECT_EQ(dv.stats().skippedWorkers, 3u);
}

TEST(DistVerify, RejectsBadConstructionAndBadEdits) {
  const DistFixture& f = DistFixture::get();
  EXPECT_THROW(DistVerifier(f.g, f.ids, f.labels, "no-such-property"),
               std::invalid_argument);
  std::vector<std::string> short1(f.labels.begin(), f.labels.end() - 1);
  EXPECT_THROW(DistVerifier(f.g, f.ids, short1, "connectivity"),
               std::invalid_argument);
  DistVerifier dv(f.g, f.ids, f.labels, "connectivity");
  (void)dv.verifyAll();
  const std::vector<EdgeLabelEdit> bad{
      {static_cast<EdgeId>(f.g.numEdges()), "x"}};
  EXPECT_THROW((void)dv.reverifyEdits(bad), std::out_of_range);
  // Nothing applied: the next empty round still matches a fresh session.
  VerifySession ref(f.g, f.ids, f.labels, makeConnectivity());
  expectSame(ref.verifyAll(1), dv.reverifyEdits({}), "after rejected batch");
}

// ---------------------------------------------------------------------------
// Worker death

TEST(DistVerify, SigkilledWorkerMidSweepRecoversByteIdentical) {
  const DistFixture& f = DistFixture::get();
  VerifySession ref(f.g, f.ids, f.labels, makeConnectivity());
  DistOptions opt;
  opt.workers = 4;
  opt.dieWorker = 1;
  opt.dieAfterVertices = 10;  // deep inside partition 1's sweep
  DistVerifier dv(f.g, f.ids, f.labels, "connectivity", {}, opt);
  expectSame(ref.verifyAll(1), dv.verifyAll(), "sweep across a death");
  EXPECT_GE(dv.stats().workerDeaths, 1u);
  EXPECT_GE(dv.stats().workerRestarts, 1u);
  // The replacement keeps serving: an edit routed to the re-forked
  // partition still matches.
  const auto [b1, e1] = dv.partitionRange(1);
  for (EdgeId e = 0; e < f.g.numEdges(); ++e) {
    if (static_cast<std::size_t>(f.g.edge(e).u) >= b1 &&
        static_cast<std::size_t>(f.g.edge(e).u) < e1) {
      const std::vector<EdgeLabelEdit> edits{
          {e, f.labels[static_cast<std::size_t>(e)] + "x"}};
      expectSame(ref.reverifyEdits(edits, 1), dv.reverifyEdits(edits),
                 "reverify on the replacement");
      break;
    }
  }
}

TEST(DistVerify, ExternallyKilledWorkerRecoversWithEditsReplayed) {
  const DistFixture& f = DistFixture::get();
  VerifySession ref(f.g, f.ids, f.labels, makeConnectivity());
  DistOptions opt;
  opt.workers = 4;
  DistVerifier dv(f.g, f.ids, f.labels, "connectivity", {}, opt);
  expectSame(ref.verifyAll(1), dv.verifyAll(), "pre-kill sweep");
  // Edit first (journaled), THEN kill: the replacement must replay the
  // journal before its resweep, or its rows diverge from the session's.
  const auto [b2, e2] = dv.partitionRange(2);
  std::vector<EdgeLabelEdit> edits;
  for (EdgeId e = 0; e < f.g.numEdges(); ++e) {
    if (static_cast<std::size_t>(f.g.edge(e).u) >= b2 &&
        static_cast<std::size_t>(f.g.edge(e).u) < e2) {
      edits.push_back({e, f.labels[static_cast<std::size_t>(e)] + "yz"});
      break;
    }
  }
  ASSERT_FALSE(edits.empty());
  expectSame(ref.reverifyEdits(edits, 1), dv.reverifyEdits(edits),
             "journaled edit");
  ASSERT_EQ(kill(dv.workerPid(2), SIGKILL), 0);
  const std::vector<EdgeLabelEdit> after{
      {edits[0].edge, f.labels[static_cast<std::size_t>(edits[0].edge)]}};
  expectSame(ref.reverifyEdits(after, 1), dv.reverifyEdits(after),
             "reverify after external SIGKILL");
  EXPECT_GE(dv.stats().workerDeaths, 1u);
}

TEST(DistVerify, ExhaustedRestartBudgetThrowsWorkerFailure) {
  const DistFixture& f = DistFixture::get();
  DistOptions opt;
  opt.workers = 2;
  opt.maxWorkerRestarts = 0;  // first death exhausts the budget
  opt.dieWorker = 1;
  opt.dieAfterVertices = 0;
  DistVerifier dv(f.g, f.ids, f.labels, "connectivity", {}, opt);
  EXPECT_THROW((void)dv.verifyAll(), dist::WorkerFailure);
}

// ---------------------------------------------------------------------------
// Serve-layer integration

TEST(DistServe, SubmitDistVerifyMatchesInProcessVerify) {
  const DistFixture& f = DistFixture::get();
  const auto payload =
      std::make_shared<const std::vector<std::string>>(f.labels);
  // Find a corruption the verifier actually notices (not every single-bit
  // flip lands in a semantically live part of a label).
  auto corrupted = std::make_shared<std::vector<std::string>>(f.labels);
  SimulationResult refBad;
  for (std::size_t e = 0; e < corrupted->size(); ++e) {
    std::string& l = (*corrupted)[e];
    if (l.empty()) continue;
    l[l.size() / 2] ^= 0x10;
    refBad = VerifySession(f.g, f.ids, *corrupted, makeConnectivity())
                 .verifyAll(1);
    if (!refBad.allAccept) break;
    l[l.size() / 2] ^= 0x10;  // restore and try the next label
  }
  const SimulationResult refGood =
      VerifySession(f.g, f.ids, f.labels, makeConnectivity()).verifyAll(1);
  ASSERT_TRUE(refGood.allAccept);
  ASSERT_FALSE(refBad.allAccept);

  serve::LaneCertService service(serve::ServiceOptions{.numThreads = 2});
  serve::DistVerifyJob good{f.g, f.ids, payload, "connectivity"};
  good.workerProcesses = 3;
  serve::DistVerifyJob bad{f.g, f.ids, corrupted, "connectivity"};
  bad.workerProcesses = 2;
  const SimulationResult g = service.submitDistVerify(good).get();
  const SimulationResult b = service.submitDistVerify(bad).get();
  expectSame(refGood, g, "dist job, honest labels");
  expectSame(refBad, b, "dist job, corrupted labels");
  service.drain();
  EXPECT_EQ(service.stats().distVerifyJobsCompleted, 2u);
}

TEST(DistServe, DistAndInProcessVerifyShareOneCacheEntry) {
  const DistFixture& f = DistFixture::get();
  const auto payload =
      std::make_shared<const std::vector<std::string>>(f.labels);
  serve::LaneCertService service(serve::ServiceOptions{.numThreads = 2});
  const SimulationResult viaThreads =
      service
          .submitVerify(serve::VerifyJob{f.g, f.ids, payload,
                                         makeConnectivity(), {}})
          .get();
  // Same payload through the dist front door: the key matches, so the
  // cached in-process result is replayed and NO dist job ever runs.
  serve::DistVerifyJob dj{f.g, f.ids, payload, "connectivity"};
  const SimulationResult viaDist = service.submitDistVerify(dj).get();
  expectSame(viaThreads, viaDist, "coalesced dist hit");
  service.drain();
  EXPECT_EQ(service.stats().verifyJobsCompleted, 1u);
  EXPECT_EQ(service.stats().distVerifyJobsCompleted, 0u);
  EXPECT_GE(service.stats().resultCacheHits, 1u);
}

TEST(DistServe, InvalidJobsRejectSynchronously) {
  const DistFixture& f = DistFixture::get();
  const auto payload =
      std::make_shared<const std::vector<std::string>>(f.labels);
  serve::LaneCertService service(serve::ServiceOptions{.numThreads = 1});
  serve::DistVerifyJob unknown{f.g, f.ids, payload, "gibberish:99"};
  EXPECT_THROW((void)service.submitDistVerify(std::move(unknown)),
               std::invalid_argument);
  serve::DistVerifyJob null{f.g, f.ids, nullptr, "connectivity"};
  EXPECT_THROW((void)service.submitDistVerify(std::move(null)),
               std::invalid_argument);
}

TEST(DistServe, WorkerFailureMapsToTransientErrorWithBoundedRetry) {
  const DistFixture& f = DistFixture::get();
  const auto payload =
      std::make_shared<const std::vector<std::string>>(f.labels);
  serve::LaneCertService service(serve::ServiceOptions{.numThreads = 1});

  // An exhausted restart budget inside the coordinator surfaces as
  // dist::WorkerFailure; inject it at the sweep seam on the first two
  // attempts and let the third run for real — the job-level retry loop in
  // runDistVerify must absorb both and still complete.
  std::atomic<int> fires{0};
  serve::FaultScope scope([&](serve::FaultSite site) {
    if (site == serve::FaultSite::kSweep && ++fires <= 2) {
      throw dist::WorkerFailure("drill: restart budget exhausted");
    }
  });
  serve::DistVerifyJob retried{f.g, f.ids, payload, "connectivity"};
  retried.workerProcesses = 2;
  retried.options.maxAttempts = 3;
  retried.options.retryBackoff = std::chrono::milliseconds(1);
  EXPECT_TRUE(service.submitDistVerify(retried).get().allAccept);
  service.drain();
  EXPECT_EQ(service.stats().transientRetries, 2u);
  EXPECT_EQ(service.stats().distWorkerDeaths, 2u);

  // With no attempts left, the future carries the taxonomy's
  // TransientError — never the raw dist exception.
  fires = -1000;  // every subsequent kSweep fire throws
  serve::DistVerifyJob doomed{f.g, f.ids, payload, "connectivity"};
  doomed.workerProcesses = 2;
  doomed.labelsVersion = 7;  // miss the cached entry from `retried`
  doomed.options.maxAttempts = 2;
  doomed.options.retryBackoff = std::chrono::milliseconds(1);
  auto future = service.submitDistVerify(std::move(doomed));
  EXPECT_THROW((void)future.get(), serve::TransientError);
  service.drain();
  EXPECT_GE(service.stats().distWorkerDeaths, 4u);
}

}  // namespace
}  // namespace lanecert
