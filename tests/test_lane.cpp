// Tests for Section 4: lane partitions (Obs 4.3), completions (Def 4.4),
// the f/g/h bounds, and the low-congestion embedding of Proposition 4.6.

#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "lane/bounds.hpp"
#include "lane/embedding.hpp"
#include "lane/lane_partition.hpp"
#include "pathwidth/pathwidth.hpp"

namespace lanecert {
namespace {

IntervalRepresentation repOf(const Graph& g) {
  return bestIntervalRepresentation(g);
}

TEST(Bounds, ClosedForms) {
  // f(1)=1, f(2)=2+2*1*1=4, f(3)=2+2*2*4=18, f(4)=2+2*3*18=110.
  EXPECT_EQ(fLanes(1), 1);
  EXPECT_EQ(fLanes(2), 4);
  EXPECT_EQ(fLanes(3), 18);
  EXPECT_EQ(fLanes(4), 110);
  // g(1)=0, g(2)=2+0+2*2*1=6, g(3)=2+6+2*3*4=32, g(4)=2+32+2*4*18=178.
  EXPECT_EQ(gCongestion(1), 0);
  EXPECT_EQ(gCongestion(2), 6);
  EXPECT_EQ(gCongestion(3), 32);
  EXPECT_EQ(gCongestion(4), 178);
  // h = g + f - 1.
  EXPECT_EQ(hCongestion(1), 0);
  EXPECT_EQ(hCongestion(2), 9);
  EXPECT_EQ(hCongestion(3), 49);
  EXPECT_EQ(hCongestion(4), 287);
  EXPECT_THROW((void)fLanes(0), std::invalid_argument);
}

TEST(LanePartition, GreedyUsesAtMostWidthLanes) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 4);
    const auto bp = randomBoundedPathwidth(80, k, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const LanePartition lanes = greedyLanePartition(rep);
    EXPECT_TRUE(lanes.isValidFor(rep)) << "seed " << seed;
    EXPECT_LE(lanes.numLanes(), rep.width()) << "seed " << seed;
  }
}

TEST(LanePartition, LaneLookup) {
  const auto rep = IntervalRepresentation({{0, 1}, {0, 3}, {2, 4}, {5, 6}});
  const LanePartition lanes = greedyLanePartition(rep);
  for (VertexId v = 0; v < 4; ++v) {
    const int lane = lanes.laneOf(v);
    ASSERT_GE(lane, 0);
    const int idx = lanes.indexInLane(v);
    EXPECT_EQ(lanes.lane(lane)[static_cast<std::size_t>(idx)], v);
  }
}

TEST(LanePartition, ValidityRejectsBadPartitions) {
  using Lanes = std::vector<std::vector<VertexId>>;
  const auto rep = IntervalRepresentation({{0, 2}, {1, 3}});
  // Overlapping intervals in one lane.
  EXPECT_FALSE(LanePartition(Lanes{{0, 1}}).isValidFor(rep));
  // Missing vertex.
  EXPECT_FALSE(LanePartition(Lanes{{0}}).isValidFor(rep));
  // Empty lane.
  EXPECT_FALSE(LanePartition(Lanes{{0}, {1}, {}}).isValidFor(rep));
  // Good: two singleton lanes.
  EXPECT_TRUE(LanePartition(Lanes{{0}, {1}}).isValidFor(rep));
}

TEST(LanePartition, RejectsDuplicateVertex) {
  using Lanes = std::vector<std::vector<VertexId>>;
  EXPECT_THROW(LanePartition(Lanes{{0}, {0}}), std::invalid_argument);
}

TEST(Completion, EdgeSetsFollowDefinition) {
  // Two lanes: (0, 1, 2) and (3, 4). E1 = {01, 12, 34}; E2 = {03}.
  const LanePartition lanes({{0, 1, 2}, {3, 4}});
  const auto weak = completionEdges(lanes, /*withInit=*/false);
  EXPECT_EQ(weak.size(), 3u);
  const auto full = completionEdges(lanes, /*withInit=*/true);
  EXPECT_EQ(full.size(), 4u);
  EXPECT_EQ(full.back().kind, CompletionEdge::Kind::kInit);
  EXPECT_EQ(full.back().u, 0);
  EXPECT_EQ(full.back().v, 3);
}

TEST(Completion, BuildCompletionSkipsExistingEdges) {
  Graph g(4);
  g.addEdge(0, 1);  // already a lane edge
  g.addEdge(1, 2);
  const LanePartition lanes({{0, 1}, {2, 3}});
  // E1 = {01, 23}; E2 = {02}. 01 exists already; 23 and 02 are new.
  const auto res = buildCompletion(g, lanes, /*withInit=*/true);
  EXPECT_EQ(res.graph.numEdges(), 2 + 2);
  EXPECT_EQ(res.newEdgeIds.size(), 2u);
  EXPECT_TRUE(res.graph.hasEdge(2, 3));
  EXPECT_TRUE(res.graph.hasEdge(0, 2));
  EXPECT_EQ(res.allEdges.size(), 3u);  // every E1/E2 edge is reported
}

// --- Proposition 4.6 ---

void checkPlan(const Graph& g, const IntervalRepresentation& rep,
               const char* what) {
  const LanePlan plan = buildLanePlan(g, rep);
  EXPECT_TRUE(plan.lanes.isValidFor(rep)) << what;
  EXPECT_TRUE(validateLanePlan(g, plan)) << what;
  const int k = rep.width();
  EXPECT_LE(plan.lanes.numLanes(), fLanes(k)) << what;
  EXPECT_LE(plan.maxCongestion, hCongestion(k)) << what;
  // The completion built from the plan's lanes must be connected and
  // contain every lane as a path.
  const auto comp = buildCompletion(g, plan.lanes, /*withInit=*/true);
  EXPECT_TRUE(isConnected(comp.graph)) << what;
}

TEST(Embedding, PathGraph) {
  const Graph g = pathGraph(20);
  checkPlan(g, repOf(g), "path20");
}

TEST(Embedding, SingleVertex) {
  const Graph g(1);
  const auto rep = IntervalRepresentation({{0, 0}});
  const LanePlan plan = buildLanePlan(g, rep);
  EXPECT_EQ(plan.lanes.numLanes(), 1);
  EXPECT_EQ(plan.maxCongestion, 0);
}

TEST(Embedding, CycleGraph) {
  const Graph g = cycleGraph(12);
  checkPlan(g, repOf(g), "cycle12");
}

TEST(Embedding, Caterpillar) {
  const Graph g = caterpillar(10, 3);
  checkPlan(g, repOf(g), "caterpillar");
}

TEST(Embedding, Grid) {
  const Graph g = gridGraph(3, 6);
  checkPlan(g, repOf(g), "grid3x6");
}

TEST(Embedding, Star) {
  const Graph g = starGraph(9);
  checkPlan(g, repOf(g), "star9");
}

TEST(Embedding, CompleteGraphSmall) {
  const Graph g = completeGraph(6);
  checkPlan(g, repOf(g), "K6");
}

TEST(Embedding, RandomBoundedPathwidthSweep) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 4);
    const auto bp = randomBoundedPathwidth(70, k, 0.5, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    checkPlan(bp.graph, rep, ("sweep seed " + std::to_string(seed)).c_str());
  }
}

TEST(Embedding, RandomTrees) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    const Graph g = randomTree(18, rng);
    checkPlan(g, repOf(g), ("tree seed " + std::to_string(seed)).c_str());
  }
}

TEST(Embedding, EmbeddingPathsAreSimple) {
  Rng rng(5);
  const auto bp = randomBoundedPathwidth(60, 3, 0.5, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const LanePlan plan = buildLanePlan(bp.graph, rep);
  for (const EmbeddedEdge& emb : plan.embeddings) {
    std::vector<VertexId> sorted = emb.path;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end())
        << "embedding path revisits a vertex";
  }
}

TEST(Embedding, RequiresConnectedGraph) {
  Graph g(2);  // two isolated vertices
  const auto rep = IntervalRepresentation({{0, 0}, {1, 1}});
  EXPECT_THROW(buildLanePlan(g, rep), std::invalid_argument);
}

TEST(Embedding, RequiresValidRepresentation) {
  const Graph g = pathGraph(2);
  const auto rep = IntervalRepresentation({{0, 0}, {1, 1}});  // no overlap
  EXPECT_THROW(buildLanePlan(g, rep), std::invalid_argument);
}

}  // namespace
}  // namespace lanecert
