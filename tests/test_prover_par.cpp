// Thread-invariance property tests for the wave-parallel prover: the full
// CoreProveResult — every label byte, every stat — must be bit-identical
// for every numThreads, on random bounded-pathwidth graphs, paths, cliques,
// and the degenerate single-vertex / empty inputs.  The wave schedule only
// reorders work that is independent by construction, so any divergence
// here is a real determinism bug (shared scratch, wrong wave assignment,
// or a fold order that leaked thread timing).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"
#include "runtime/executor.hpp"

namespace lanecert {
namespace {

void expectSameProveResult(const CoreProveResult& a, const CoreProveResult& b) {
  EXPECT_EQ(a.propertyHolds, b.propertyHolds);
  ASSERT_EQ(a.labels.size(), b.labels.size());
  EXPECT_EQ(a.labels, b.labels);  // byte-identical certificates
  EXPECT_EQ(a.stats.width, b.stats.width);
  EXPECT_EQ(a.stats.numLanes, b.stats.numLanes);
  EXPECT_EQ(a.stats.hierarchyDepth, b.stats.hierarchyDepth);
  EXPECT_EQ(a.stats.maxCongestion, b.stats.maxCongestion);
  EXPECT_EQ(a.stats.maxLabelBits, b.stats.maxLabelBits);
  EXPECT_EQ(a.stats.totalLabelBits, b.stats.totalLabelBits);
}

void expectThreadInvariant(const Graph& g, const IdAssignment& ids,
                           const Property& prop,
                           const IntervalRepresentation* rep) {
  const CoreProveResult seq = proveCore(g, ids, prop, rep, 1);
  for (int threads : {2, 4, 8}) {
    expectSameProveResult(seq, proveCore(g, ids, prop, rep, threads));
  }
}

TEST(ProverParallel, RandomBoundedPathwidthBitIdentical) {
  Rng rng(515);
  for (int trial = 0; trial < 3; ++trial) {
    auto bp = randomBoundedPathwidth(60 + 40 * trial, 2 + trial % 2, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(bp.graph.numVertices(),
                                          900 + static_cast<unsigned>(trial));
    expectThreadInvariant(bp.graph, ids, *makeConnectivity(), &rep);
  }
}

TEST(ProverParallel, PathGraphBitIdentical) {
  const Graph g = pathGraph(80);
  const auto ids = IdAssignment::random(80, 3);
  expectThreadInvariant(g, ids, *makePathProperty(), nullptr);
  expectThreadInvariant(g, ids, *makeForest(), nullptr);
}

TEST(ProverParallel, CliqueBitIdentical) {
  // Cliques maximize completion-edge density and bridge chains.
  for (int n : {4, 6, 8}) {
    const Graph g = completeGraph(n);
    const auto ids = IdAssignment::random(n, 17 + static_cast<unsigned>(n));
    expectThreadInvariant(g, ids, *makeConnectivity(), nullptr);
  }
}

TEST(ProverParallel, DegenerateInputsBitIdentical) {
  // Single vertex: no edges, no labels — every thread count must agree on
  // the bare verdict.
  const Graph single(1);
  const auto ids1 = IdAssignment::identity(1);
  expectThreadInvariant(single, ids1, *makeConnectivity(), nullptr);
  // Two vertices, one edge: smallest non-degenerate pipeline.
  Graph pair(2);
  pair.addEdge(0, 1);
  const auto ids2 = IdAssignment::random(2, 9);
  expectThreadInvariant(pair, ids2, *makeConnectivity(), nullptr);
}

TEST(ProverParallel, RejectedPropertyBitIdentical) {
  // propertyHolds == false must also be thread-invariant (the wave phase
  // runs; certificate encoding is skipped).
  const Graph g = cycleGraph(12);
  const auto ids = IdAssignment::random(12, 4);
  expectThreadInvariant(g, ids, *makeForest(), nullptr);
}

TEST(ProverParallel, NonPositiveThreadCountResolvesToHardware) {
  const Graph g = pathGraph(20);
  const auto ids = IdAssignment::random(20, 8);
  const auto seq = proveCore(g, ids, *makeConnectivity(), nullptr, 1);
  expectSameProveResult(seq, proveCore(g, ids, *makeConnectivity(), nullptr, 0));
  expectSameProveResult(seq,
                        proveCore(g, ids, *makeConnectivity(), nullptr, -1));
}

TEST(ProverParallel, ParallelProofVerifiesEndToEnd) {
  // The parallel prover's labels must satisfy the (parallel) verifier.
  const Graph g = gridGraph(5, 4);
  const auto ids = IdAssignment::random(g.numVertices(), 23);
  const auto run = proveAndVerifyEdges(g, ids, makeConnectivity(), nullptr, {},
                                       SimulationOptions{4});
  ASSERT_TRUE(run.propertyHolds);
  EXPECT_TRUE(run.sim.allAccept);
}

// --- Pipelined head (plan construction overlapped with wave execution) ---

void expectPipelinedMatchesPlanned(const Graph& g, const IdAssignment& ids,
                                   const Property& prop,
                                   const IntervalRepresentation* rep) {
  // Ground truth: the barriered path over a prebuilt plan, single thread.
  const ProvePlan plan = buildProvePlan(g, rep);
  ParallelExecutor serial(1);
  const CoreProveResult planned = proveCore(g, ids, prop, plan, serial);
  for (int threads : {1, 2, 4, 8}) {
    // The pipelined driver streams hierarchy nodes into its waves and
    // overlaps the pointer BFS — every output byte must still match.
    ParallelExecutor exec(threads);
    expectSameProveResult(planned,
                          proveCorePipelined(g, ids, prop, rep, exec));
    // The planned path itself must also be thread-invariant.
    ParallelExecutor exec2(threads);
    expectSameProveResult(planned, proveCore(g, ids, prop, plan, exec2));
  }
}

TEST(ProverParallel, PipelinedBitIdenticalToPlannedProver) {
  Rng rng(606);
  for (int trial = 0; trial < 3; ++trial) {
    auto bp = randomBoundedPathwidth(50 + 35 * trial, 2 + trial % 2, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(bp.graph.numVertices(),
                                          77 + static_cast<unsigned>(trial));
    expectPipelinedMatchesPlanned(bp.graph, ids, *makeConnectivity(), &rep);
  }
  // Chain-shaped hierarchies (every wave is a singleton) stress the
  // streamed consumer's inline path; cliques stress the bridge chains.
  const Graph path = pathGraph(70);
  expectPipelinedMatchesPlanned(path, IdAssignment::random(70, 5),
                                *makePathProperty(), nullptr);
  const Graph clique = completeGraph(7);
  expectPipelinedMatchesPlanned(clique, IdAssignment::random(7, 6),
                                *makeConnectivity(), nullptr);
}

TEST(ProverParallel, PipelinedRejectionBitIdenticalToPlanned) {
  const Graph g = cycleGraph(14);
  expectPipelinedMatchesPlanned(g, IdAssignment::random(14, 8), *makeForest(),
                                nullptr);
}

TEST(ProverParallel, PipelinedPlanHookFiresOnceWithTheFullHead) {
  Rng rng(607);
  auto bp = randomBoundedPathwidth(60, 2, 0.4, rng);
  const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
  const auto ids = IdAssignment::random(60, 9);
  ParallelExecutor exec(4);
  int calls = 0;
  std::shared_ptr<const ProvePlan> seen;
  const auto r = proveCorePipelined(
      bp.graph, ids, *makeConnectivity(), &rep, exec,
      [&](const std::shared_ptr<const ProvePlan>& plan) {
        ++calls;
        seen = plan;
      });
  EXPECT_TRUE(r.propertyHolds);
  ASSERT_EQ(calls, 1);
  ASSERT_NE(seen, nullptr);
  // The published head must be the COMPLETE plan (usable by other jobs):
  // byte-identical prover output when replayed through the planned path.
  ParallelExecutor exec2(2);
  expectSameProveResult(
      r, proveCore(bp.graph, ids, *makeConnectivity(), *seen, exec2));
}

TEST(ProverParallel, PipelinedDegenerateInputsNeedNoPlan) {
  const Graph single(1);
  ParallelExecutor exec(2);
  int calls = 0;
  const auto r = proveCorePipelined(
      single, IdAssignment::identity(1), *makeConnectivity(), nullptr, exec,
      [&](const std::shared_ptr<const ProvePlan>&) { ++calls; });
  EXPECT_TRUE(r.propertyHolds);
  EXPECT_TRUE(r.labels.empty());
  EXPECT_EQ(calls, 0);  // no head exists for a degenerate graph
}

}  // namespace
}  // namespace lanecert
