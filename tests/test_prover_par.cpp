// Thread-invariance property tests for the wave-parallel prover: the full
// CoreProveResult — every label byte, every stat — must be bit-identical
// for every numThreads, on random bounded-pathwidth graphs, paths, cliques,
// and the degenerate single-vertex / empty inputs.  The wave schedule only
// reorders work that is independent by construction, so any divergence
// here is a real determinism bug (shared scratch, wrong wave assignment,
// or a fold order that leaked thread timing).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/prover.hpp"
#include "core/scheme.hpp"
#include "graph/generators.hpp"
#include "interval/interval.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

void expectSameProveResult(const CoreProveResult& a, const CoreProveResult& b) {
  EXPECT_EQ(a.propertyHolds, b.propertyHolds);
  ASSERT_EQ(a.labels.size(), b.labels.size());
  EXPECT_EQ(a.labels, b.labels);  // byte-identical certificates
  EXPECT_EQ(a.stats.width, b.stats.width);
  EXPECT_EQ(a.stats.numLanes, b.stats.numLanes);
  EXPECT_EQ(a.stats.hierarchyDepth, b.stats.hierarchyDepth);
  EXPECT_EQ(a.stats.maxCongestion, b.stats.maxCongestion);
  EXPECT_EQ(a.stats.maxLabelBits, b.stats.maxLabelBits);
  EXPECT_EQ(a.stats.totalLabelBits, b.stats.totalLabelBits);
}

void expectThreadInvariant(const Graph& g, const IdAssignment& ids,
                           const Property& prop,
                           const IntervalRepresentation* rep) {
  const CoreProveResult seq = proveCore(g, ids, prop, rep, 1);
  for (int threads : {2, 4, 8}) {
    expectSameProveResult(seq, proveCore(g, ids, prop, rep, threads));
  }
}

TEST(ProverParallel, RandomBoundedPathwidthBitIdentical) {
  Rng rng(515);
  for (int trial = 0; trial < 3; ++trial) {
    auto bp = randomBoundedPathwidth(60 + 40 * trial, 2 + trial % 2, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    const auto ids = IdAssignment::random(bp.graph.numVertices(),
                                          900 + static_cast<unsigned>(trial));
    expectThreadInvariant(bp.graph, ids, *makeConnectivity(), &rep);
  }
}

TEST(ProverParallel, PathGraphBitIdentical) {
  const Graph g = pathGraph(80);
  const auto ids = IdAssignment::random(80, 3);
  expectThreadInvariant(g, ids, *makePathProperty(), nullptr);
  expectThreadInvariant(g, ids, *makeForest(), nullptr);
}

TEST(ProverParallel, CliqueBitIdentical) {
  // Cliques maximize completion-edge density and bridge chains.
  for (int n : {4, 6, 8}) {
    const Graph g = completeGraph(n);
    const auto ids = IdAssignment::random(n, 17 + static_cast<unsigned>(n));
    expectThreadInvariant(g, ids, *makeConnectivity(), nullptr);
  }
}

TEST(ProverParallel, DegenerateInputsBitIdentical) {
  // Single vertex: no edges, no labels — every thread count must agree on
  // the bare verdict.
  const Graph single(1);
  const auto ids1 = IdAssignment::identity(1);
  expectThreadInvariant(single, ids1, *makeConnectivity(), nullptr);
  // Two vertices, one edge: smallest non-degenerate pipeline.
  Graph pair(2);
  pair.addEdge(0, 1);
  const auto ids2 = IdAssignment::random(2, 9);
  expectThreadInvariant(pair, ids2, *makeConnectivity(), nullptr);
}

TEST(ProverParallel, RejectedPropertyBitIdentical) {
  // propertyHolds == false must also be thread-invariant (the wave phase
  // runs; certificate encoding is skipped).
  const Graph g = cycleGraph(12);
  const auto ids = IdAssignment::random(12, 4);
  expectThreadInvariant(g, ids, *makeForest(), nullptr);
}

TEST(ProverParallel, NonPositiveThreadCountResolvesToHardware) {
  const Graph g = pathGraph(20);
  const auto ids = IdAssignment::random(20, 8);
  const auto seq = proveCore(g, ids, *makeConnectivity(), nullptr, 1);
  expectSameProveResult(seq, proveCore(g, ids, *makeConnectivity(), nullptr, 0));
  expectSameProveResult(seq,
                        proveCore(g, ids, *makeConnectivity(), nullptr, -1));
}

TEST(ProverParallel, ParallelProofVerifiesEndToEnd) {
  // The parallel prover's labels must satisfy the (parallel) verifier.
  const Graph g = gridGraph(5, 4);
  const auto ids = IdAssignment::random(g.numVertices(), 23);
  const auto run = proveAndVerifyEdges(g, ids, makeConnectivity(), nullptr, {},
                                       SimulationOptions{4});
  ASSERT_TRUE(run.propertyHolds);
  EXPECT_TRUE(run.sim.allAccept);
}

}  // namespace
}  // namespace lanecert
