// Tests for interval representations and path decompositions
// (Definitions 1.1 and 4.1), including the paper's Figure 1 example.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "interval/interval.hpp"

namespace lanecert {
namespace {

TEST(Interval, OverlapAndPrecedence) {
  const Interval a{0, 3};
  const Interval b{3, 5};
  const Interval c{4, 6};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.before(c));
  EXPECT_FALSE(a.before(b));
  EXPECT_TRUE(a.contains(0));
  EXPECT_TRUE(a.contains(3));
  EXPECT_FALSE(a.contains(4));
}

// The paper's Figure 1: the 6-cycle a-b-c-d-e-f with bags
// X1={a,b,c}, X2={a,c,d}, X3={a,d,e}, X4={a,e,f}: width 2, pathwidth 2.
PathDecomposition figure1Decomposition() {
  return PathDecomposition({{0, 1, 2}, {0, 2, 3}, {0, 3, 4}, {0, 4, 5}});
}

Graph sixCycle() {
  return cycleGraph(6);  // vertices a..f = 0..5
}

TEST(PathDecomposition, Figure1IsValid) {
  const auto pd = figure1Decomposition();
  EXPECT_TRUE(pd.isValidFor(sixCycle()));
  EXPECT_EQ(pd.width(), 2);
}

TEST(PathDecomposition, DetectsMissingEdgeCoverage) {
  // Remove vertex 0 from the middle bags: edge {5, 0} no longer covered
  // jointly... construct a decomposition violating (P1).
  const PathDecomposition pd({{0, 1, 2}, {2, 3}, {3, 4}, {4, 5}});
  EXPECT_FALSE(pd.isValidFor(sixCycle()));  // edge {5,0} not in any bag
}

TEST(PathDecomposition, DetectsNonConsecutiveOccurrences) {
  // Vertex 0 appears in bags 0 and 2 but not 1: violates (P2).
  Graph g = pathGraph(3);
  const PathDecomposition pd({{0, 1}, {1, 2}, {0, 2}});
  EXPECT_FALSE(pd.isValidFor(g));
}

TEST(PathDecomposition, DetectsMissingVertex) {
  const PathDecomposition pd({{0, 1}});
  EXPECT_FALSE(pd.isValidFor(pathGraph(3)));
}

TEST(IntervalRepresentation, Figure1Conversion) {
  const auto pd = figure1Decomposition();
  const auto rep = toIntervalRepresentation(pd, 6);
  // a=0 spans all bags; b=1 only the first; etc.
  EXPECT_EQ(rep.interval(0), (Interval{0, 3}));
  EXPECT_EQ(rep.interval(1), (Interval{0, 0}));
  EXPECT_EQ(rep.interval(5), (Interval{3, 3}));
  EXPECT_EQ(rep.width(), 3);  // width k+1 = 3 for pathwidth 2
  EXPECT_TRUE(rep.isValidFor(sixCycle()));
}

TEST(IntervalRepresentation, RoundTripPreservesWidthAndValidity) {
  const auto pd = figure1Decomposition();
  const auto rep = toIntervalRepresentation(pd, 6);
  const auto pd2 = toPathDecomposition(rep);
  EXPECT_TRUE(pd2.isValidFor(sixCycle()));
  EXPECT_EQ(pd2.width(), pd.width());
  const auto rep2 = toIntervalRepresentation(pd2, 6);
  EXPECT_EQ(rep2.width(), rep.width());
}

TEST(IntervalRepresentation, WidthOfDisjointIntervals) {
  const auto rep = IntervalRepresentation({{0, 1}, {2, 3}, {4, 5}});
  EXPECT_EQ(rep.width(), 1);
}

TEST(IntervalRepresentation, WidthCountsNestedOverlap) {
  const auto rep = IntervalRepresentation({{0, 10}, {1, 2}, {2, 3}, {8, 9}});
  EXPECT_EQ(rep.width(), 3);  // point 2 hits {0,10},{1,2},{2,3}
}

TEST(IntervalRepresentation, ValidityRequiresEdgeOverlap) {
  Graph g = pathGraph(3);
  auto good = IntervalRepresentation({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_TRUE(good.isValidFor(g));
  auto bad = IntervalRepresentation({{0, 1}, {3, 4}, {4, 5}});
  EXPECT_FALSE(bad.isValidFor(g));  // edge {0,1} intervals disjoint
}

TEST(IntervalRepresentation, NormalizedPreservesStructure) {
  const auto rep = IntervalRepresentation({{10, 100}, {100, 250}, {260, 270}});
  const auto norm = rep.normalized();
  EXPECT_EQ(norm.width(), rep.width());
  EXPECT_TRUE(norm.interval(0).overlaps(norm.interval(1)));
  EXPECT_FALSE(norm.interval(1).overlaps(norm.interval(2)));
  EXPECT_LE(norm.interval(2).r, 5);
}

TEST(IntervalRepresentation, RestrictTo) {
  const auto rep = IntervalRepresentation({{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  const auto res = rep.restrictTo({1, 0, 1, 0});
  EXPECT_EQ(res.rep.numVertices(), 2);
  EXPECT_EQ(res.toOriginal, (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(res.rep.interval(1), (Interval{2, 3}));
}

TEST(IntervalRepresentation, GeneratorOutputIsValid) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const int k = 1 + static_cast<int>(seed % 3);
    const auto bp = randomBoundedPathwidth(60, k, 0.4, rng);
    const auto rep = IntervalRepresentation::fromPairs(bp.intervals);
    EXPECT_TRUE(rep.isValidFor(bp.graph)) << "seed " << seed;
    EXPECT_LE(rep.width(), k + 1) << "seed " << seed;
    const auto pd = toPathDecomposition(rep);
    EXPECT_TRUE(pd.isValidFor(bp.graph)) << "seed " << seed;
    EXPECT_LE(pd.width(), k) << "seed " << seed;
  }
}

TEST(PathDecomposition, ToStringMentionsBags) {
  const auto pd = figure1Decomposition();
  const std::string s = pd.toString();
  EXPECT_NE(s.find("X_1"), std::string::npos);
  EXPECT_NE(s.find("X_4"), std::string::npos);
}

}  // namespace
}  // namespace lanecert
