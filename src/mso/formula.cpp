#include "mso/formula.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace lanecert {

/// AST node.  Quantifiers use (sort, var, left); binary connectives use
/// (left, right); atoms use (var, var2).
class MsoFormula {
 public:
  enum class Op {
    kExists,
    kForall,
    kAnd,
    kOr,
    kNot,
    kImplies,
    kIff,
    kInVSet,
    kInESet,
    kInc,
    kAdj,
    kEqV,
    kEqE,
  };

  Op op = Op::kAnd;
  MsoSort sort = MsoSort::kVertex;
  std::string var;
  std::string var2;
  MsoPtr left;
  MsoPtr right;
};

namespace mso {

namespace {

MsoPtr node(MsoFormula f) { return std::make_shared<MsoFormula>(std::move(f)); }

MsoPtr quant(MsoFormula::Op op, MsoSort sort, std::string var, MsoPtr body) {
  MsoFormula f;
  f.op = op;
  f.sort = sort;
  f.var = std::move(var);
  f.left = std::move(body);
  return node(std::move(f));
}

MsoPtr binary(MsoFormula::Op op, MsoPtr a, MsoPtr b) {
  MsoFormula f;
  f.op = op;
  f.left = std::move(a);
  f.right = std::move(b);
  return node(std::move(f));
}

MsoPtr atom(MsoFormula::Op op, std::string a, std::string b) {
  MsoFormula f;
  f.op = op;
  f.var = std::move(a);
  f.var2 = std::move(b);
  return node(std::move(f));
}

}  // namespace

MsoPtr exists(MsoSort sort, std::string var, MsoPtr body) {
  return quant(MsoFormula::Op::kExists, sort, std::move(var), std::move(body));
}
MsoPtr forall(MsoSort sort, std::string var, MsoPtr body) {
  return quant(MsoFormula::Op::kForall, sort, std::move(var), std::move(body));
}
MsoPtr conj(MsoPtr a, MsoPtr b) {
  return binary(MsoFormula::Op::kAnd, std::move(a), std::move(b));
}
MsoPtr disj(MsoPtr a, MsoPtr b) {
  return binary(MsoFormula::Op::kOr, std::move(a), std::move(b));
}
MsoPtr neg(MsoPtr a) {
  MsoFormula f;
  f.op = MsoFormula::Op::kNot;
  f.left = std::move(a);
  return node(std::move(f));
}
MsoPtr implies(MsoPtr a, MsoPtr b) {
  return binary(MsoFormula::Op::kImplies, std::move(a), std::move(b));
}
MsoPtr iff(MsoPtr a, MsoPtr b) {
  return binary(MsoFormula::Op::kIff, std::move(a), std::move(b));
}
MsoPtr inVertexSet(std::string v, std::string set) {
  return atom(MsoFormula::Op::kInVSet, std::move(v), std::move(set));
}
MsoPtr inEdgeSet(std::string e, std::string set) {
  return atom(MsoFormula::Op::kInESet, std::move(e), std::move(set));
}
MsoPtr incident(std::string e, std::string v) {
  return atom(MsoFormula::Op::kInc, std::move(e), std::move(v));
}
MsoPtr adjacent(std::string u, std::string v) {
  return atom(MsoFormula::Op::kAdj, std::move(u), std::move(v));
}
MsoPtr equalVertices(std::string u, std::string v) {
  return atom(MsoFormula::Op::kEqV, std::move(u), std::move(v));
}
MsoPtr equalEdges(std::string e, std::string f) {
  return atom(MsoFormula::Op::kEqE, std::move(e), std::move(f));
}

}  // namespace mso

namespace {

struct Binding {
  MsoSort sort = MsoSort::kVertex;
  std::uint64_t value = 0;  ///< element index, or set bitmask
};

using Env = std::map<std::string, Binding>;

std::uint64_t lookup(const Env& env, const std::string& name, MsoSort sort) {
  const auto it = env.find(name);
  if (it == env.end() || it->second.sort != sort) {
    throw std::invalid_argument("msoEvaluate: free or ill-sorted variable " + name);
  }
  return it->second.value;
}

bool eval(const MsoFormula& f, const Graph& g, Env& env) {
  using Op = MsoFormula::Op;
  switch (f.op) {
    case Op::kExists:
    case Op::kForall: {
      const bool isExists = f.op == Op::kExists;
      std::uint64_t count = 0;
      bool isSet = false;
      switch (f.sort) {
        case MsoSort::kVertex:
          count = static_cast<std::uint64_t>(g.numVertices());
          break;
        case MsoSort::kEdge:
          count = static_cast<std::uint64_t>(g.numEdges());
          break;
        case MsoSort::kVertexSet:
          count = std::uint64_t{1} << g.numVertices();
          isSet = true;
          break;
        case MsoSort::kEdgeSet:
          count = std::uint64_t{1} << g.numEdges();
          isSet = true;
          break;
      }
      (void)isSet;
      const auto saved = env.find(f.var) != env.end()
                             ? std::optional<Binding>(env[f.var])
                             : std::nullopt;
      bool result = !isExists;
      for (std::uint64_t x = 0; x < count; ++x) {
        env[f.var] = Binding{f.sort, x};
        const bool sub = eval(*f.left, g, env);
        if (isExists && sub) {
          result = true;
          break;
        }
        if (!isExists && !sub) {
          result = false;
          break;
        }
      }
      if (saved) {
        env[f.var] = *saved;
      } else {
        env.erase(f.var);
      }
      return result;
    }
    case Op::kAnd:
      return eval(*f.left, g, env) && eval(*f.right, g, env);
    case Op::kOr:
      return eval(*f.left, g, env) || eval(*f.right, g, env);
    case Op::kNot:
      return !eval(*f.left, g, env);
    case Op::kImplies:
      return !eval(*f.left, g, env) || eval(*f.right, g, env);
    case Op::kIff:
      return eval(*f.left, g, env) == eval(*f.right, g, env);
    case Op::kInVSet: {
      const std::uint64_t v = lookup(env, f.var, MsoSort::kVertex);
      const std::uint64_t set = lookup(env, f.var2, MsoSort::kVertexSet);
      return (set >> v) & 1;
    }
    case Op::kInESet: {
      const std::uint64_t e = lookup(env, f.var, MsoSort::kEdge);
      const std::uint64_t set = lookup(env, f.var2, MsoSort::kEdgeSet);
      return (set >> e) & 1;
    }
    case Op::kInc: {
      const auto e = static_cast<EdgeId>(lookup(env, f.var, MsoSort::kEdge));
      const auto v = static_cast<VertexId>(lookup(env, f.var2, MsoSort::kVertex));
      return g.edge(e).touches(v);
    }
    case Op::kAdj: {
      const auto u = static_cast<VertexId>(lookup(env, f.var, MsoSort::kVertex));
      const auto v = static_cast<VertexId>(lookup(env, f.var2, MsoSort::kVertex));
      return g.hasEdge(u, v);
    }
    case Op::kEqV:
      return lookup(env, f.var, MsoSort::kVertex) ==
             lookup(env, f.var2, MsoSort::kVertex);
    case Op::kEqE:
      return lookup(env, f.var, MsoSort::kEdge) ==
             lookup(env, f.var2, MsoSort::kEdge);
  }
  return false;
}

}  // namespace

bool msoEvaluate(const MsoPtr& formula, const Graph& g) {
  if (!formula) throw std::invalid_argument("msoEvaluate: null formula");
  if (g.numVertices() > 62 || g.numEdges() > 62) {
    throw std::invalid_argument("msoEvaluate: graph too large for brute force");
  }
  Env env;
  return eval(*formula, g, env);
}

std::string msoToString(const MsoPtr& formula) {
  using Op = MsoFormula::Op;
  if (!formula) return "?";
  const MsoFormula& f = *formula;
  static const char* sortNames[] = {"v", "e", "V", "E"};
  std::ostringstream os;
  switch (f.op) {
    case Op::kExists:
    case Op::kForall:
      os << (f.op == Op::kExists ? "∃" : "∀") << f.var << ":"
         << sortNames[static_cast<int>(f.sort)] << ". " << msoToString(f.left);
      break;
    case Op::kAnd:
      os << "(" << msoToString(f.left) << " ∧ " << msoToString(f.right) << ")";
      break;
    case Op::kOr:
      os << "(" << msoToString(f.left) << " ∨ " << msoToString(f.right) << ")";
      break;
    case Op::kNot:
      os << "¬" << msoToString(f.left);
      break;
    case Op::kImplies:
      os << "(" << msoToString(f.left) << " → " << msoToString(f.right) << ")";
      break;
    case Op::kIff:
      os << "(" << msoToString(f.left) << " ↔ " << msoToString(f.right) << ")";
      break;
    case Op::kInVSet:
    case Op::kInESet:
      os << f.var << "∈" << f.var2;
      break;
    case Op::kInc:
      os << "inc(" << f.var << "," << f.var2 << ")";
      break;
    case Op::kAdj:
      os << "adj(" << f.var << "," << f.var2 << ")";
      break;
    case Op::kEqV:
    case Op::kEqE:
      os << f.var << "=" << f.var2;
      break;
  }
  return os.str();
}

// --- Formula library ------------------------------------------------------

namespace {

using namespace mso;  // NOLINT(build/namespaces) — local builder DSL

/// "v has exactly one incident edge in F": ∃e∈F inc(e,v) ∧ ∀f∈F inc(f,v)→f=e.
MsoPtr exactlyOneIncidentIn(const std::string& v, const std::string& setF) {
  return exists(
      MsoSort::kEdge, "e1",
      conj(conj(inEdgeSet("e1", setF), incident("e1", v)),
           forall(MsoSort::kEdge, "e2",
                  implies(conj(inEdgeSet("e2", setF), incident("e2", v)),
                          equalEdges("e2", "e1")))));
}

/// "v has exactly two incident edges in F".
MsoPtr exactlyTwoIncidentIn(const std::string& v, const std::string& setF) {
  return exists(
      MsoSort::kEdge, "e1",
      exists(
          MsoSort::kEdge, "e2",
          conj(conj(conj(neg(equalEdges("e1", "e2")),
                         conj(inEdgeSet("e1", setF), incident("e1", v))),
                    conj(inEdgeSet("e2", setF), incident("e2", v))),
               forall(MsoSort::kEdge, "e3",
                      implies(conj(inEdgeSet("e3", setF), incident("e3", v)),
                              disj(equalEdges("e3", "e1"),
                                   equalEdges("e3", "e2")))))));
}

/// "some F-edge crosses the vertex bipartition (U, V \ U)".
MsoPtr someEdgeCrosses(const std::string& setU, const std::string& setF,
                       bool restrictToF) {
  MsoPtr body = conj(conj(incident("e", "x"), incident("e", "y")),
                     conj(inVertexSet("x", setU), neg(inVertexSet("y", setU))));
  if (restrictToF) body = conj(inEdgeSet("e", setF), std::move(body));
  return exists(MsoSort::kEdge, "e",
                exists(MsoSort::kVertex, "x",
                       exists(MsoSort::kVertex, "y", std::move(body))));
}

}  // namespace

MsoPtr msoBipartite() {
  return exists(
      MsoSort::kVertexSet, "U",
      forall(MsoSort::kVertex, "u",
             forall(MsoSort::kVertex, "v",
                    implies(adjacent("u", "v"),
                            iff(inVertexSet("u", "U"),
                                neg(inVertexSet("v", "U")))))));
}

MsoPtr msoForest() {
  // Every nonempty edge set contains an edge with an endpoint of F-degree
  // exactly one (a "leaf" of the subforest); cyclic edge sets have none.
  return forall(
      MsoSort::kEdgeSet, "F",
      implies(exists(MsoSort::kEdge, "e0", inEdgeSet("e0", "F")),
              exists(MsoSort::kVertex, "v",
                     conj(exactlyOneIncidentIn("v", "F"),
                          exists(MsoSort::kEdge, "e",
                                 conj(inEdgeSet("e", "F"),
                                      incident("e", "v")))))));
}

MsoPtr msoConnected() {
  return forall(
      MsoSort::kVertexSet, "U",
      implies(conj(exists(MsoSort::kVertex, "u", inVertexSet("u", "U")),
                   exists(MsoSort::kVertex, "w", neg(inVertexSet("w", "U")))),
              someEdgeCrosses("U", "", /*restrictToF=*/false)));
}

MsoPtr msoPerfectMatching() {
  return exists(MsoSort::kEdgeSet, "F",
                forall(MsoSort::kVertex, "v", exactlyOneIncidentIn("v", "F")));
}

MsoPtr msoHamiltonianCycle() {
  // F is 2-regular and, viewed as a spanning subgraph, connected: every
  // proper nonempty vertex bipartition is crossed by an F-edge.
  return exists(
      MsoSort::kEdgeSet, "F",
      conj(forall(MsoSort::kVertex, "v", exactlyTwoIncidentIn("v", "F")),
           forall(MsoSort::kVertexSet, "U",
                  implies(conj(exists(MsoSort::kVertex, "u",
                                      inVertexSet("u", "U")),
                               exists(MsoSort::kVertex, "w",
                                      neg(inVertexSet("w", "U")))),
                          someEdgeCrosses("U", "F", /*restrictToF=*/true)))));
}

MsoPtr msoTriangleFree() {
  return neg(exists(
      MsoSort::kVertex, "u",
      exists(MsoSort::kVertex, "v",
             exists(MsoSort::kVertex, "w",
                    conj(conj(adjacent("u", "v"), adjacent("v", "w")),
                         adjacent("u", "w"))))));
}

}  // namespace lanecert
