// Triangle-freeness (no K3 subgraph).
//
// State: the real-edge adjacency among boundary slots, the set of slot
// pairs that share a COMMON FORGOTTEN NEIGHBOR (a triangle through an
// internal vertex needs only the closing boundary edge), and a found flag.
// Whenever the state changes we recheck all slot pairs; a triangle always
// has, at the moment its last edge appears / its first vertex is forgotten,
// at least two of its vertices on the boundary, so this is exact.

#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

using Row = std::uint64_t;

struct TriState {
  int slots = 0;
  std::vector<Row> adj;     ///< real-edge adjacency between slots
  std::vector<Row> common;  ///< pairs with a common forgotten neighbor
  bool found = false;

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    mso_detail::put(s, found ? 1 : 0);
    for (Row r : adj) mso_detail::put64(s, r);
    for (Row r : common) mso_detail::put64(s, r);
    return s;
  }
};

Row bit(int i) { return Row{1} << i; }

/// Scans all pairs for a completed triangle.
void recheck(TriState& s) {
  if (s.found) return;
  for (int x = 0; x < s.slots && !s.found; ++x) {
    for (int y = x + 1; y < s.slots; ++y) {
      if ((s.adj[static_cast<std::size_t>(x)] & bit(y)) == 0) continue;
      // Edge x-y: triangle via a third slot or via a forgotten vertex.
      if ((s.adj[static_cast<std::size_t>(x)] & s.adj[static_cast<std::size_t>(y)]) != 0 ||
          (s.common[static_cast<std::size_t>(x)] & bit(y)) != 0) {
        s.found = true;
        break;
      }
    }
  }
}

void removeSlot(TriState& s, int a) {
  auto strip = [a](Row r) {
    const Row low = r & (bit(a) - 1);
    const Row high = (r >> (a + 1)) << a;
    return low | high;
  };
  s.adj.erase(s.adj.begin() + a);
  s.common.erase(s.common.begin() + a);
  for (Row& r : s.adj) r = strip(r);
  for (Row& r : s.common) r = strip(r);
  --s.slots;
}

class TriangleFreeProperty final : public Property {
 public:
  [[nodiscard]] std::string name() const override { return "triangle-free"; }

  [[nodiscard]] HomState empty() const override {
    return HomState::make(TriState{});
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    TriState s = h.as<TriState>();
    if (s.slots >= 63) throw std::invalid_argument("triangle-free: too many slots");
    ++s.slots;
    s.adj.push_back(0);
    s.common.push_back(0);
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    TriState s = h.as<TriState>();
    if (label == kRealEdge) {
      s.adj[static_cast<std::size_t>(a)] |= bit(b);
      s.adj[static_cast<std::size_t>(b)] |= bit(a);
      recheck(s);
    }
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    TriState s = ha.as<TriState>();
    const TriState& t = hb.as<TriState>();
    for (std::size_t i = 0; i < t.adj.size(); ++i) {
      s.adj.push_back(t.adj[i] << s.slots);
      s.common.push_back(t.common[i] << s.slots);
    }
    s.slots += t.slots;
    s.found = s.found || t.found;
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    TriState s = h.as<TriState>();
    s.adj[static_cast<std::size_t>(a)] |= s.adj[static_cast<std::size_t>(b)];
    s.common[static_cast<std::size_t>(a)] |= s.common[static_cast<std::size_t>(b)];
    for (int x = 0; x < s.slots; ++x) {
      if ((s.adj[static_cast<std::size_t>(x)] & bit(b)) != 0) {
        s.adj[static_cast<std::size_t>(x)] |= bit(a);
      }
      if ((s.common[static_cast<std::size_t>(x)] & bit(b)) != 0) {
        s.common[static_cast<std::size_t>(x)] |= bit(a);
      }
    }
    // No self-loops: clear the diagonal before removing slot b.
    s.adj[static_cast<std::size_t>(a)] &= ~bit(a);
    s.common[static_cast<std::size_t>(a)] &= ~bit(a);
    removeSlot(s, b);
    recheck(s);
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    TriState s = h.as<TriState>();
    // Every pair of neighbors of the forgotten vertex gains a common
    // (now internal) neighbor.
    const Row nbrs = s.adj[static_cast<std::size_t>(a)];
    for (int x = 0; x < s.slots; ++x) {
      if ((nbrs & bit(x)) == 0) continue;
      s.common[static_cast<std::size_t>(x)] |= nbrs & ~bit(x);
    }
    removeSlot(s, a);
    recheck(s);
    return HomState::make(std::move(s));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    return !h.as<TriState>().found;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.size() < 2) throw std::invalid_argument("triangle: short encoding");
    TriState s;
    s.slots = static_cast<unsigned char>(enc[0]);
    s.found = enc[1] != 0;
    const auto slots = static_cast<std::size_t>(s.slots);
    if (s.slots > 63 || enc.size() != 2 + 16 * slots) {
      throw std::invalid_argument("triangle: bad encoding size");
    }
    auto read64 = [&enc](std::size_t at) {
      Row r = 0;
      for (int b = 0; b < 8; ++b) {
        r |= static_cast<Row>(static_cast<unsigned char>(enc[at + b])) << (8 * b);
      }
      return r;
    };
    for (std::size_t i = 0; i < slots; ++i) s.adj.push_back(read64(2 + 8 * i));
    for (std::size_t i = 0; i < slots; ++i) {
      s.common.push_back(read64(2 + 8 * (slots + i)));
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<TriState>().slots;
  }
};

}  // namespace

PropertyPtr makeTriangleFree() {
  return std::make_shared<TriangleFreeProperty>();
}

}  // namespace lanecert
