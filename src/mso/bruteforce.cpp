#include "mso/bruteforce.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

namespace lanecert {

namespace {

std::vector<std::uint32_t> neighborMasks(const Graph& g) {
  std::vector<std::uint32_t> nbr(static_cast<std::size_t>(g.numVertices()), 0);
  for (const Edge& e : g.edges()) {
    nbr[static_cast<std::size_t>(e.u)] |= std::uint32_t{1} << e.v;
    nbr[static_cast<std::size_t>(e.v)] |= std::uint32_t{1} << e.u;
  }
  return nbr;
}

bool colorBacktrack(const Graph& g, int q, std::vector<int>& color, VertexId v) {
  if (v == g.numVertices()) return true;
  for (int c = 0; c < q; ++c) {
    bool ok = true;
    for (const Arc& a : g.arcs(v)) {
      if (a.to < v && color[static_cast<std::size_t>(a.to)] == c) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    color[static_cast<std::size_t>(v)] = c;
    if (colorBacktrack(g, q, color, v + 1)) return true;
  }
  return false;
}

int coverBranch(const Graph& g, std::vector<char>& inCover, EdgeId next, int used,
                int best) {
  if (used >= best) return best;
  // Find the next uncovered edge.
  while (next < g.numEdges()) {
    const Edge& e = g.edge(next);
    if (!inCover[static_cast<std::size_t>(e.u)] &&
        !inCover[static_cast<std::size_t>(e.v)]) {
      break;
    }
    ++next;
  }
  if (next == g.numEdges()) return used;
  const Edge& e = g.edge(next);
  for (VertexId pick : {e.u, e.v}) {
    inCover[static_cast<std::size_t>(pick)] = 1;
    best = std::min(best, coverBranch(g, inCover, next + 1, used + 1, best));
    inCover[static_cast<std::size_t>(pick)] = 0;
  }
  return best;
}

}  // namespace

bool isQColorableBrute(const Graph& g, int q) {
  if (q < 1) return g.numVertices() == 0;
  std::vector<int> color(static_cast<std::size_t>(g.numVertices()), -1);
  return colorBacktrack(g, q, color, 0);
}

bool hasPerfectMatchingBrute(const Graph& g) {
  const int n = g.numVertices();
  if (n > 24) throw std::invalid_argument("hasPerfectMatchingBrute: n too large");
  if (n % 2 != 0) return false;
  if (n == 0) return true;
  const auto nbr = neighborMasks(g);
  const std::size_t full = std::size_t{1} << n;
  std::vector<char> matchable(full, 0);
  matchable[0] = 1;
  for (std::uint32_t s = 1; s < full; ++s) {
    if (std::popcount(s) % 2 != 0) continue;
    const int v = std::countr_zero(s);  // match the lowest set vertex
    const std::uint32_t cands = nbr[static_cast<std::size_t>(v)] & s;
    std::uint32_t rest = cands & ~(std::uint32_t{1} << v);
    while (rest != 0) {
      const int u = std::countr_zero(rest);
      rest &= rest - 1;
      if (matchable[s & ~(std::uint32_t{1} << v) & ~(std::uint32_t{1} << u)]) {
        matchable[s] = 1;
        break;
      }
    }
  }
  return matchable[full - 1] == 1;
}

int minVertexCoverBrute(const Graph& g) {
  std::vector<char> inCover(static_cast<std::size_t>(g.numVertices()), 0);
  return coverBranch(g, inCover, 0, 0, g.numVertices());
}

bool hasHamiltonianCycleBrute(const Graph& g) {
  const int n = g.numVertices();
  if (n > 20) throw std::invalid_argument("hasHamiltonianCycleBrute: n too large");
  if (n == 0) return false;
  if (n == 1) return false;  // no self-loops
  if (n == 2) return false;  // no parallel edges
  const auto nbr = neighborMasks(g);
  const std::size_t full = std::size_t{1} << n;
  // dp[mask][v]: path from vertex 0 visiting exactly `mask`, ending at v.
  std::vector<std::uint32_t> dp(full, 0);  // bitset over end vertices
  dp[1] = 1;                               // start at vertex 0
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    if ((mask & 1) == 0 || dp[mask] == 0) continue;
    std::uint32_t ends = dp[mask];
    while (ends != 0) {
      const int v = std::countr_zero(ends);
      ends &= ends - 1;
      std::uint32_t nxt = nbr[static_cast<std::size_t>(v)] & ~mask;
      while (nxt != 0) {
        const int u = std::countr_zero(nxt);
        nxt &= nxt - 1;
        dp[mask | (std::uint32_t{1} << u)] |= std::uint32_t{1} << u;
      }
    }
  }
  const std::uint32_t endsAtFull = dp[full - 1];
  return (endsAtFull & nbr[0]) != 0;  // close the cycle back to vertex 0
}

bool hasHamiltonianPathBrute(const Graph& g) {
  const int n = g.numVertices();
  if (n > 20) throw std::invalid_argument("hasHamiltonianPathBrute: n too large");
  if (n == 0) return false;
  if (n == 1) return true;
  const auto nbr = neighborMasks(g);
  const std::size_t full = std::size_t{1} << n;
  // dp[mask]: bitset of possible path endpoints over vertex set `mask`.
  std::vector<std::uint32_t> dp(full, 0);
  for (int v = 0; v < n; ++v) dp[std::size_t{1} << v] = std::uint32_t{1} << v;
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    std::uint32_t ends = dp[mask];
    while (ends != 0) {
      const int v = std::countr_zero(ends);
      ends &= ends - 1;
      std::uint32_t nxt = nbr[static_cast<std::size_t>(v)] & ~mask;
      while (nxt != 0) {
        const int u = std::countr_zero(nxt);
        nxt &= nxt - 1;
        dp[mask | (std::uint32_t{1} << u)] |= std::uint32_t{1} << u;
      }
    }
  }
  return dp[full - 1] != 0;
}

int minDominatingSetBrute(const Graph& g) {
  const int n = g.numVertices();
  if (n > 20) throw std::invalid_argument("minDominatingSetBrute: n too large");
  if (n == 0) return 0;
  const auto nbr = neighborMasks(g);
  const std::uint32_t full = (std::uint32_t{1} << n) - 1;
  int best = n;
  for (std::uint32_t s = 0; s <= full; ++s) {
    std::uint32_t covered = s;
    std::uint32_t rest = s;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      covered |= nbr[static_cast<std::size_t>(v)];
    }
    if (covered == full) best = std::min(best, std::popcount(s));
  }
  return best;
}

int maxIndependentSetBrute(const Graph& g) {
  const int n = g.numVertices();
  if (n > 20) throw std::invalid_argument("maxIndependentSetBrute: n too large");
  const auto nbr = neighborMasks(g);
  int best = 0;
  for (std::uint32_t s = 0; s < (std::uint32_t{1} << n); ++s) {
    bool ok = true;
    std::uint32_t rest = s;
    while (rest != 0 && ok) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      ok = (nbr[static_cast<std::size_t>(v)] & s) == 0;
    }
    if (ok) best = std::max(best, std::popcount(s));
  }
  return best;
}

int girthBrute(const Graph& g) {
  // BFS from every vertex; a non-tree edge between level-d and level-d' of
  // the same BFS tree closes a cycle of length d + d' + 1 through the root
  // region.  The standard scan over all roots yields the exact girth.
  int best = std::numeric_limits<int>::max();  // acyclic: infinite girth
  for (VertexId s = 0; s < g.numVertices(); ++s) {
    std::vector<int> dist(static_cast<std::size_t>(g.numVertices()), -1);
    std::vector<VertexId> par(static_cast<std::size_t>(g.numVertices()), kNoVertex);
    std::vector<VertexId> queue{s};
    dist[static_cast<std::size_t>(s)] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const VertexId u = queue[head];
      for (const Arc& a : g.arcs(u)) {
        if (dist[static_cast<std::size_t>(a.to)] == -1) {
          dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(u)] + 1;
          par[static_cast<std::size_t>(a.to)] = u;
          queue.push_back(a.to);
        } else if (par[static_cast<std::size_t>(u)] != a.to) {
          best = std::min(best, dist[static_cast<std::size_t>(u)] +
                                    dist[static_cast<std::size_t>(a.to)] + 1);
        }
      }
    }
  }
  return best;
}

}  // namespace lanecert
