// Vertex cover <= c: the state maps each boundary subset S ("slots inside
// the cover") to the minimum number of INTERNAL cover vertices over all
// covers consistent with S, capped at c + 1 (any value above c is
// equivalent for the decision).

#include <map>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

using Mask = std::uint64_t;

struct CoverState {
  int slots = 0;
  int cap = 0;                   ///< c + 1
  std::map<Mask, int> minCost;   ///< boundary subset -> min internal cost

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    for (const auto& [m, cost] : minCost) {
      mso_detail::put64(s, m);
      mso_detail::put(s, cost);
    }
    return s;
  }
};

Mask removeBit(Mask m, int b) {
  const Mask low = m & ((Mask{1} << b) - 1);
  const Mask high = (m >> (b + 1)) << b;
  return low | high;
}

void relax(std::map<Mask, int>& mc, Mask m, int cost) {
  const auto [it, inserted] = mc.emplace(m, cost);
  if (!inserted && cost < it->second) it->second = cost;
}

class VertexCoverProperty final : public Property {
 public:
  explicit VertexCoverProperty(int c) : c_(c) {
    if (c < 0) throw std::invalid_argument("makeVertexCover: c >= 0");
  }

  [[nodiscard]] std::string name() const override {
    return "vertex-cover<=" + std::to_string(c_);
  }

  [[nodiscard]] HomState empty() const override {
    CoverState s;
    s.cap = c_ + 1;
    s.minCost[0] = 0;
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    const CoverState& s = h.as<CoverState>();
    if (s.slots >= 63) throw std::invalid_argument("vertex-cover: too many slots");
    CoverState t;
    t.slots = s.slots + 1;
    t.cap = s.cap;
    const Mask newBit = Mask{1} << s.slots;
    for (const auto& [m, cost] : s.minCost) {
      relax(t.minCost, m, cost);           // new vertex outside the cover
      relax(t.minCost, m | newBit, cost);  // new vertex inside the cover
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    const CoverState& s = h.as<CoverState>();
    CoverState t;
    t.slots = s.slots;
    t.cap = s.cap;
    const Mask ab = (Mask{1} << a) | (Mask{1} << b);
    for (const auto& [m, cost] : s.minCost) {
      if (label == kRealEdge && (m & ab) == 0) continue;  // edge uncovered
      relax(t.minCost, m, cost);
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const CoverState& s = ha.as<CoverState>();
    const CoverState& t = hb.as<CoverState>();
    CoverState u;
    u.slots = s.slots + t.slots;
    u.cap = s.cap;
    for (const auto& [m, cost] : s.minCost) {
      for (const auto& [m2, cost2] : t.minCost) {
        relax(u.minCost, m | (m2 << s.slots), std::min(u.cap, cost + cost2));
      }
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    const CoverState& s = h.as<CoverState>();
    CoverState t;
    t.slots = s.slots - 1;
    t.cap = s.cap;
    const Mask bitA = Mask{1} << a;
    const Mask bitB = Mask{1} << b;
    for (const auto& [m, cost] : s.minCost) {
      // The glued vertex is in the cover iff both sides agree.
      if (((m & bitA) != 0) != ((m & bitB) != 0)) continue;
      relax(t.minCost, removeBit(m, b), cost);
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    const CoverState& s = h.as<CoverState>();
    CoverState t;
    t.slots = s.slots - 1;
    t.cap = s.cap;
    const Mask bitA = Mask{1} << a;
    for (const auto& [m, cost] : s.minCost) {
      const int add = (m & bitA) != 0 ? 1 : 0;
      relax(t.minCost, removeBit(m, a), std::min(s.cap, cost + add));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    const CoverState& s = h.as<CoverState>();
    for (const auto& [m, cost] : s.minCost) {
      if (cost + __builtin_popcountll(m) <= c_) return true;
    }
    return false;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty() || (enc.size() - 1) % 9 != 0) {
      throw std::invalid_argument("vertex-cover: bad encoding");
    }
    CoverState s;
    s.slots = static_cast<unsigned char>(enc[0]);
    s.cap = c_ + 1;
    if (s.slots > 63) throw std::invalid_argument("vertex-cover: too many slots");
    for (std::size_t i = 1; i < enc.size(); i += 9) {
      Mask m = 0;
      for (int b = 0; b < 8; ++b) {
        m |= static_cast<Mask>(static_cast<unsigned char>(enc[i + b])) << (8 * b);
      }
      const int cost = static_cast<unsigned char>(enc[i + 8]);
      if (cost > s.cap || (s.slots < 63 && (m >> s.slots) != 0)) {
        throw std::invalid_argument("vertex-cover: bad entry");
      }
      s.minCost[m] = cost;
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<CoverState>().slots;
  }

 private:
  int c_;
};

}  // namespace

PropertyPtr makeVertexCover(int c) {
  return std::make_shared<VertexCoverProperty>(c);
}

}  // namespace lanecert
