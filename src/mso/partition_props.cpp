// Deterministic partition-based properties: forest (acyclicity),
// connectivity, is-a-path, is-a-cycle.
//
// All four share the same skeleton: the state tracks the connectivity
// partition of the boundary slots plus a constant amount of global
// bookkeeping.  The path/cycle pair additionally uses the monotone "excess"
// invariant  excess = m - n + c  (c = number of components), which is 0 for
// forests, 0 for paths, 1 for cycles, and never decreases under any of the
// algebra's operations — so it can be capped at 2 without losing exactness.

#include <algorithm>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

using mso_detail::canonicalizePartition;
using mso_detail::put;

int countBlocks(const std::vector<std::int8_t>& part) {
  int mx = -1;
  for (auto b : part) mx = std::max(mx, static_cast<int>(b));
  return mx + 1;
}

/// Merges block of slot b into block of slot a; returns true if they were
/// already in the same block.
bool mergeBlocks(std::vector<std::int8_t>& part, int a, int b) {
  const std::int8_t ba = part[static_cast<std::size_t>(a)];
  const std::int8_t bb = part[static_cast<std::size_t>(b)];
  if (ba == bb) return true;
  for (auto& x : part) {
    if (x == bb) x = ba;
  }
  canonicalizePartition(part);
  return false;
}

// ---------------------------------------------------------------------------
// Forest
// ---------------------------------------------------------------------------

struct ForestState {
  std::vector<std::int8_t> part;
  bool hasCycle = false;

  [[nodiscard]] std::string encode() const {
    std::string s;
    put(s, hasCycle ? 1 : 0);
    for (auto b : part) put(s, b);
    return s;
  }
};

class ForestProperty final : public Property {
 public:
  [[nodiscard]] std::string name() const override { return "forest"; }

  [[nodiscard]] HomState empty() const override {
    return HomState::make(ForestState{});
  }
  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    ForestState s = h.as<ForestState>();
    s.part.push_back(static_cast<std::int8_t>(countBlocks(s.part)));
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    ForestState s = h.as<ForestState>();
    if (label == kRealEdge && mergeBlocks(s.part, a, b)) s.hasCycle = true;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    ForestState s = ha.as<ForestState>();
    const ForestState& t = hb.as<ForestState>();
    const auto off = static_cast<std::int8_t>(countBlocks(s.part));
    for (auto b : t.part) s.part.push_back(static_cast<std::int8_t>(b + off));
    s.hasCycle = s.hasCycle || t.hasCycle;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    ForestState s = h.as<ForestState>();
    // Gluing two vertices already connected by a path creates a cycle.
    if (mergeBlocks(s.part, a, b)) s.hasCycle = true;
    s.part.erase(s.part.begin() + b);
    canonicalizePartition(s.part);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    ForestState s = h.as<ForestState>();
    s.part.erase(s.part.begin() + a);
    canonicalizePartition(s.part);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] bool accepts(const HomState& h) const override {
    return !h.as<ForestState>().hasCycle;
  }
  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty()) throw std::invalid_argument("forest: empty encoding");
    ForestState s;
    s.hasCycle = enc[0] != 0;
    for (std::size_t i = 1; i < enc.size(); ++i) {
      const auto b = static_cast<std::int8_t>(enc[i]);
      if (b < 0 || b >= static_cast<std::int8_t>(enc.size())) {
        throw std::invalid_argument("forest: bad partition");
      }
      s.part.push_back(b);
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return static_cast<int>(h.as<ForestState>().part.size());
  }
};

// ---------------------------------------------------------------------------
// Connectivity
// ---------------------------------------------------------------------------

struct ConnState {
  std::vector<std::int8_t> part;
  std::int8_t lost = 0;  ///< fully forgotten components (capped at 2)
  bool hasVertex = false;

  [[nodiscard]] std::string encode() const {
    std::string s;
    put(s, lost);
    put(s, hasVertex ? 1 : 0);
    for (auto b : part) put(s, b);
    return s;
  }
};

class ConnectivityProperty final : public Property {
 public:
  [[nodiscard]] std::string name() const override { return "connectivity"; }

  [[nodiscard]] HomState empty() const override {
    return HomState::make(ConnState{});
  }
  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    ConnState s = h.as<ConnState>();
    s.part.push_back(static_cast<std::int8_t>(countBlocks(s.part)));
    s.hasVertex = true;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    ConnState s = h.as<ConnState>();
    if (label == kRealEdge) mergeBlocks(s.part, a, b);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    ConnState s = ha.as<ConnState>();
    const ConnState& t = hb.as<ConnState>();
    const auto off = static_cast<std::int8_t>(countBlocks(s.part));
    for (auto b : t.part) s.part.push_back(static_cast<std::int8_t>(b + off));
    s.lost = static_cast<std::int8_t>(std::min(2, s.lost + t.lost));
    s.hasVertex = s.hasVertex || t.hasVertex;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    ConnState s = h.as<ConnState>();
    mergeBlocks(s.part, a, b);
    s.part.erase(s.part.begin() + b);
    canonicalizePartition(s.part);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    ConnState s = h.as<ConnState>();
    const std::int8_t block = s.part[static_cast<std::size_t>(a)];
    int sharers = 0;
    for (auto b : s.part) sharers += b == block;
    if (sharers == 1) s.lost = static_cast<std::int8_t>(std::min(2, s.lost + 1));
    s.part.erase(s.part.begin() + a);
    canonicalizePartition(s.part);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] bool accepts(const HomState& h) const override {
    const ConnState& s = h.as<ConnState>();
    if (!s.hasVertex) return true;  // the empty graph is vacuously connected
    return countBlocks(s.part) + s.lost == 1;
  }
  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.size() < 2) throw std::invalid_argument("conn: short encoding");
    ConnState s;
    s.lost = static_cast<std::int8_t>(enc[0]);
    s.hasVertex = enc[1] != 0;
    if (s.lost < 0 || s.lost > 2) throw std::invalid_argument("conn: bad lost");
    for (std::size_t i = 2; i < enc.size(); ++i) {
      const auto b = static_cast<std::int8_t>(enc[i]);
      if (b < 0 || b >= static_cast<std::int8_t>(enc.size())) {
        throw std::invalid_argument("conn: bad partition");
      }
      s.part.push_back(b);
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return static_cast<int>(h.as<ConnState>().part.size());
  }
};

// ---------------------------------------------------------------------------
// Path / Cycle
// ---------------------------------------------------------------------------

struct PathCycleState {
  std::vector<std::int8_t> part;
  std::vector<std::int8_t> deg;  ///< capped at 3
  std::int8_t lost = 0;          ///< capped at 2
  std::int8_t excess = 0;        ///< m - n + c, monotone, capped at 2
  bool overDeg = false;          ///< some vertex reached degree 3
  bool hasVertex = false;

  [[nodiscard]] std::string encode() const {
    std::string s;
    put(s, lost);
    put(s, excess);
    put(s, (overDeg ? 1 : 0) | (hasVertex ? 2 : 0));
    for (auto b : part) put(s, b);
    for (auto d : deg) put(s, d);
    return s;
  }
};

class PathCycleProperty final : public Property {
 public:
  explicit PathCycleProperty(bool wantCycle) : wantCycle_(wantCycle) {}

  [[nodiscard]] std::string name() const override {
    return wantCycle_ ? "is-cycle" : "is-path";
  }

  [[nodiscard]] HomState empty() const override {
    return HomState::make(PathCycleState{});
  }
  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    PathCycleState s = h.as<PathCycleState>();
    s.part.push_back(static_cast<std::int8_t>(countBlocks(s.part)));
    s.deg.push_back(0);
    s.hasVertex = true;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    PathCycleState s = h.as<PathCycleState>();
    if (label != kRealEdge) return HomState::make(std::move(s));
    for (int x : {a, b}) {
      auto& d = s.deg[static_cast<std::size_t>(x)];
      d = static_cast<std::int8_t>(std::min(3, d + 1));
      if (d >= 3) s.overDeg = true;
    }
    if (mergeBlocks(s.part, a, b)) {
      s.excess = static_cast<std::int8_t>(std::min(2, s.excess + 1));
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    PathCycleState s = ha.as<PathCycleState>();
    const PathCycleState& t = hb.as<PathCycleState>();
    const auto off = static_cast<std::int8_t>(countBlocks(s.part));
    for (auto b : t.part) s.part.push_back(static_cast<std::int8_t>(b + off));
    s.deg.insert(s.deg.end(), t.deg.begin(), t.deg.end());
    s.lost = static_cast<std::int8_t>(std::min(2, s.lost + t.lost));
    s.excess = static_cast<std::int8_t>(std::min(2, s.excess + t.excess));
    s.overDeg = s.overDeg || t.overDeg;
    s.hasVertex = s.hasVertex || t.hasVertex;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    PathCycleState s = h.as<PathCycleState>();
    const int d = s.deg[static_cast<std::size_t>(a)] + s.deg[static_cast<std::size_t>(b)];
    s.deg[static_cast<std::size_t>(a)] = static_cast<std::int8_t>(std::min(3, d));
    if (d >= 3) s.overDeg = true;
    if (mergeBlocks(s.part, a, b)) {
      s.excess = static_cast<std::int8_t>(std::min(2, s.excess + 1));
    }
    s.part.erase(s.part.begin() + b);
    s.deg.erase(s.deg.begin() + b);
    canonicalizePartition(s.part);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    PathCycleState s = h.as<PathCycleState>();
    const std::int8_t block = s.part[static_cast<std::size_t>(a)];
    int sharers = 0;
    for (auto b : s.part) sharers += b == block;
    if (sharers == 1) s.lost = static_cast<std::int8_t>(std::min(2, s.lost + 1));
    s.part.erase(s.part.begin() + a);
    s.deg.erase(s.deg.begin() + a);
    canonicalizePartition(s.part);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] bool accepts(const HomState& h) const override {
    const PathCycleState& s = h.as<PathCycleState>();
    if (!s.hasVertex || s.overDeg) return false;
    if (countBlocks(s.part) + s.lost != 1) return false;
    // excess = m - n + 1 for a connected graph: 0 <=> tree, 1 <=> unicyclic;
    // with max degree <= 2 these are exactly paths and cycles.
    return s.excess == (wantCycle_ ? 1 : 0);
  }
  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.size() < 3 || (enc.size() - 3) % 2 != 0) {
      throw std::invalid_argument("pathcycle: bad encoding");
    }
    PathCycleState s;
    s.lost = static_cast<std::int8_t>(enc[0]);
    s.excess = static_cast<std::int8_t>(enc[1]);
    s.overDeg = (enc[2] & 1) != 0;
    s.hasVertex = (enc[2] & 2) != 0;
    if (s.lost < 0 || s.lost > 2 || s.excess < 0 || s.excess > 2) {
      throw std::invalid_argument("pathcycle: bad counters");
    }
    const std::size_t slots = (enc.size() - 3) / 2;
    for (std::size_t i = 0; i < slots; ++i) {
      const auto b = static_cast<std::int8_t>(enc[3 + i]);
      const auto d = static_cast<std::int8_t>(enc[3 + slots + i]);
      if (b < 0 || b >= static_cast<std::int8_t>(slots + 1) || d < 0 || d > 3) {
        throw std::invalid_argument("pathcycle: bad slot data");
      }
      s.part.push_back(b);
      s.deg.push_back(d);
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return static_cast<int>(h.as<PathCycleState>().part.size());
  }

 private:
  bool wantCycle_;
};

}  // namespace

PropertyPtr makeForest() { return std::make_shared<ForestProperty>(); }

PropertyPtr makeConnectivity() {
  return std::make_shared<ConnectivityProperty>();
}

PropertyPtr makePathProperty() {
  return std::make_shared<PathCycleProperty>(false);
}

PropertyPtr makeCycleProperty() {
  return std::make_shared<PathCycleProperty>(true);
}

}  // namespace lanecert
