#pragma once
// MSO2 formulas over graphs (Section 1.2) and a naive model checker.
//
// The logic has four variable sorts — vertices, edges, vertex sets, edge
// sets — quantifiers over all of them, boolean connectives, and the atomic
// predicates in(v, U), in(e, F), inc(e, v), adj(u, v), and equality.
//
// The evaluator enumerates assignments exhaustively (sets as bitmasks), so
// it is usable only on small graphs (n, m <= 62); its purpose is to
// cross-validate the compositional property algebra against the logical
// definitions (tests) and to document each bundled property's MSO2
// formulation (examples).  A full Courcelle compiler (formula -> hom-class
// algebra) is out of scope; see DESIGN.md's substitution notes.

#include <memory>
#include <string>

#include "graph/graph.hpp"

namespace lanecert {

class MsoFormula;
using MsoPtr = std::shared_ptr<const MsoFormula>;

/// Variable sorts of MSO2.
enum class MsoSort { kVertex, kEdge, kVertexSet, kEdgeSet };

/// Formula constructors.  Variables are referenced by name; sorts must be
/// used consistently (checked at evaluation time).
namespace mso {

// Quantifiers.
[[nodiscard]] MsoPtr exists(MsoSort sort, std::string var, MsoPtr body);
[[nodiscard]] MsoPtr forall(MsoSort sort, std::string var, MsoPtr body);

// Connectives.
[[nodiscard]] MsoPtr conj(MsoPtr a, MsoPtr b);
[[nodiscard]] MsoPtr disj(MsoPtr a, MsoPtr b);
[[nodiscard]] MsoPtr neg(MsoPtr a);
[[nodiscard]] MsoPtr implies(MsoPtr a, MsoPtr b);
[[nodiscard]] MsoPtr iff(MsoPtr a, MsoPtr b);

// Atoms.
[[nodiscard]] MsoPtr inVertexSet(std::string v, std::string set);   ///< v ∈ U
[[nodiscard]] MsoPtr inEdgeSet(std::string e, std::string set);     ///< e ∈ F
[[nodiscard]] MsoPtr incident(std::string e, std::string v);        ///< inc(e, v)
[[nodiscard]] MsoPtr adjacent(std::string u, std::string v);        ///< adj(u, v)
[[nodiscard]] MsoPtr equalVertices(std::string u, std::string v);
[[nodiscard]] MsoPtr equalEdges(std::string e, std::string f);

}  // namespace mso

/// Evaluates a closed formula on a graph by brute force.
/// Throws std::invalid_argument on free/ill-sorted variables or graphs with
/// more than 62 vertices or edges.
[[nodiscard]] bool msoEvaluate(const MsoPtr& formula, const Graph& g);

/// Pretty-prints the formula (for examples and docs).
[[nodiscard]] std::string msoToString(const MsoPtr& formula);

// --- Formula library: the paper's Section 1.2 examples -------------------

/// ∃U ∀u ∀v. adj(u,v) → (u ∈ U ↔ ¬(v ∈ U)).
[[nodiscard]] MsoPtr msoBipartite();
/// Every nonempty edge set has an edge with an endpoint of F-degree 1
/// (acyclicity via "every nonempty subforest has a leaf").
[[nodiscard]] MsoPtr msoForest();
/// No vertex bipartition with nonempty sides and no crossing edge.
[[nodiscard]] MsoPtr msoConnected();
/// ∃F. every vertex is incident to exactly one edge of F.
[[nodiscard]] MsoPtr msoPerfectMatching();
/// ∃F. F spans all vertices, is connected (as a subgraph), and every vertex
/// has F-degree exactly 2 — a Hamiltonian cycle.
[[nodiscard]] MsoPtr msoHamiltonianCycle();
/// No three mutually adjacent vertices.
[[nodiscard]] MsoPtr msoTriangleFree();

}  // namespace lanecert
