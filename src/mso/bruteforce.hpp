#pragma once
// Exponential-time reference implementations used to cross-validate the
// compositional property algebra on small graphs (tests and benchmark E5).

#include "graph/graph.hpp"

namespace lanecert {

/// Proper q-colorability by backtracking.
[[nodiscard]] bool isQColorableBrute(const Graph& g, int q);

/// Perfect matching by bitmask DP (n <= 24).
[[nodiscard]] bool hasPerfectMatchingBrute(const Graph& g);

/// Minimum vertex cover size by branching.
[[nodiscard]] int minVertexCoverBrute(const Graph& g);

/// Hamiltonian cycle by bitmask DP (n <= 20).
[[nodiscard]] bool hasHamiltonianCycleBrute(const Graph& g);

/// Hamiltonian path by bitmask DP (n <= 20).
[[nodiscard]] bool hasHamiltonianPathBrute(const Graph& g);

/// Minimum dominating set size by subset enumeration (n <= 20).
[[nodiscard]] int minDominatingSetBrute(const Graph& g);

/// Maximum independent set size by subset enumeration (n <= 20).
[[nodiscard]] int maxIndependentSetBrute(const Graph& g);

/// Girth (length of a shortest cycle) by BFS; INT_MAX for acyclic graphs.
[[nodiscard]] int girthBrute(const Graph& g);

}  // namespace lanecert
