#pragma once
// The homomorphism-class algebra of Propositions 2.4 / 6.1.
//
// The paper uses, as a black box, the fact that every MSO2 property φ has a
// finite set C of homomorphism classes for k-terminal graphs, closed under
// composition.  We realize that interface as a small algebra over
// *boundaried graphs*: a `HomState` summarizes a graph with an ordered
// boundary of "slots" (the terminals), and a `Property` provides the six
// primitive operations every composition in the paper (Bridge-merge,
// Parent-merge, base graphs) decomposes into:
//
//   empty           the graph with no vertices
//   addVertex       append a new isolated boundary slot
//   addEdge         connect two slots (with an input edge label)
//   join            disjoint union (second operand's slots appended)
//   identify        glue slot b onto slot a (b removed, slots shift down)
//   forget          demote slot a to an internal vertex (slots shift down)
//
// Every concrete property implements these so that the state remains a
// CONSTANT-size summary (w.r.t. the graph size) for a bounded number of
// slots — exactly the finiteness that Courcelle-style theorems require.
// Benchmark E5 measures this empirically.
//
// Edge labels: the certification pipeline runs properties on the completion
// G' where real edges of G carry label 1 and virtual completion edges carry
// label 0 (Section 6.2 applies Prop 2.4 to graphs with labeled edges).
// All bundled properties evaluate φ on the label-1 subgraph.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace lanecert {

/// Edge label carried through the algebra.  kRealEdge marks edges of the
/// original graph; kVirtualEdge marks completion-only edges.
inline constexpr int kRealEdge = 1;
inline constexpr int kVirtualEdge = 0;

/// Immutable value-type handle to a property-specific state.
///
/// Equality and hashing go through the state's *canonical encoding*, which
/// doubles as the bit representation stored in certificates (hom classes
/// are constant-size, so this keeps labels at O(log n)).
class HomState {
 public:
  HomState() = default;

  /// Wraps a concrete state; `Encoded` must provide `std::string encode()`.
  template <typename T>
  static HomState make(T state) {
    auto p = std::make_shared<T>(std::move(state));
    HomState h;
    h.encoding_ = p->encode();
    h.data_ = std::move(p);
    return h;
  }

  /// Downcast to the property's concrete state type.
  template <typename T>
  [[nodiscard]] const T& as() const {
    return *static_cast<const T*>(data_.get());
  }

  [[nodiscard]] bool valid() const { return data_ != nullptr; }
  /// Canonical byte encoding (defines equality; measured by benchmarks).
  [[nodiscard]] const std::string& encoding() const { return encoding_; }
  [[nodiscard]] std::size_t encodedBits() const { return encoding_.size() * 8; }

  friend bool operator==(const HomState& a, const HomState& b) {
    return a.encoding_ == b.encoding_;
  }

 private:
  std::shared_ptr<const void> data_;
  std::string encoding_;
};

/// A graph property with a finite-state composition algebra (Prop 2.4).
class Property {
 public:
  virtual ~Property() = default;

  /// Human-readable name, e.g. "3-colorability".
  [[nodiscard]] virtual std::string name() const = 0;

  /// State of the empty graph.
  [[nodiscard]] virtual HomState empty() const = 0;
  /// Appends a fresh isolated boundary slot.
  [[nodiscard]] virtual HomState addVertex(const HomState& s) const = 0;
  /// Adds an edge between slots a and b carrying `label`.
  [[nodiscard]] virtual HomState addEdge(const HomState& s, int a, int b,
                                         int label) const = 0;
  /// Disjoint union; b's slots are renumbered to follow a's.
  [[nodiscard]] virtual HomState join(const HomState& a, const HomState& b) const = 0;
  /// Glues slot b onto slot a; slot b disappears (higher slots shift down).
  [[nodiscard]] virtual HomState identify(const HomState& s, int a, int b) const = 0;
  /// Demotes slot a to an internal vertex (higher slots shift down).
  [[nodiscard]] virtual HomState forget(const HomState& s, int a) const = 0;
  /// Whether a graph in this class satisfies φ (remaining slots are treated
  /// as ordinary vertices).
  [[nodiscard]] virtual bool accepts(const HomState& s) const = 0;

  /// Reconstructs a state from its canonical encoding.  Verifiers use this
  /// to resume the composition from certified state bytes (possibly
  /// arena-backed, hence the borrowing view).  Must throw std::exception
  /// (e.g. DecodeError) on malformed encodings; must be the exact inverse
  /// of HomState::encoding() on valid ones.
  [[nodiscard]] virtual HomState decodeState(std::string_view enc) const = 0;

  /// Number of boundary slots of a state.  Verifiers check this against a
  /// certificate's claimed slot layout before composing, so that slot
  /// indices passed to the operations are always in range.
  [[nodiscard]] virtual int slotCount(const HomState& s) const = 0;
};

using PropertyPtr = std::shared_ptr<const Property>;

/// Evaluates `prop` on `g` by sequential elimination along `order` (vertices
/// are introduced in order, edges added when both endpoints are live, and a
/// vertex is forgotten once its last neighbor has been introduced).  The
/// boundary stays within (vertex separation of `order`) + 1 slots, so this
/// is exactly Courcelle's dynamic programming over a path decomposition.
/// All edges carry kRealEdge.
[[nodiscard]] bool evaluateOnGraph(const Property& prop, const Graph& g,
                                   const std::vector<VertexId>& order);

/// Convenience: evaluate with a solver-chosen elimination order.
[[nodiscard]] bool evaluateOnGraph(const Property& prop, const Graph& g);

}  // namespace lanecert
