#include "mso/property.hpp"

#include <algorithm>
#include <stdexcept>

#include "pathwidth/pathwidth.hpp"

namespace lanecert {

bool evaluateOnGraph(const Property& prop, const Graph& g,
                     const std::vector<VertexId>& order) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  if (order.size() != n) {
    throw std::invalid_argument("evaluateOnGraph: order must cover all vertices");
  }
  std::vector<int> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  // lastNeighborPos[v]: position after which v gains no more edges.
  std::vector<int> lastNeighborPos(n);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    int last = pos[static_cast<std::size_t>(v)];
    for (const Arc& a : g.arcs(v)) {
      last = std::max(last, pos[static_cast<std::size_t>(a.to)]);
    }
    lastNeighborPos[static_cast<std::size_t>(v)] = last;
  }

  HomState state = prop.empty();
  std::vector<VertexId> slots;  // slot index -> vertex
  auto slotOf = [&slots](VertexId v) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      if (slots[i] == v) return static_cast<int>(i);
    }
    return -1;
  };
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    state = prop.addVertex(state);
    slots.push_back(v);
    const int sv = static_cast<int>(slots.size()) - 1;
    for (const Arc& a : g.arcs(v)) {
      const int su = slotOf(a.to);
      if (su >= 0 && su != sv) {
        state = prop.addEdge(state, su, sv, kRealEdge);
      }
    }
    // Forget every live vertex whose neighborhood is now complete.
    for (std::size_t s = 0; s < slots.size();) {
      if (lastNeighborPos[static_cast<std::size_t>(slots[s])] <=
          static_cast<int>(i)) {
        state = prop.forget(state, static_cast<int>(s));
        slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(s));
      } else {
        ++s;
      }
    }
  }
  return prop.accepts(state);
}

bool evaluateOnGraph(const Property& prop, const Graph& g) {
  const auto layout = exactVertexSeparation(g, 22);
  const std::vector<VertexId> order =
      layout ? layout->order : greedyVertexSeparation(g).order;
  return evaluateOnGraph(prop, g, order);
}

}  // namespace lanecert
