// The property-name registry (see properties.hpp for the grammar).  Moved
// here from net/protocol.cpp so name resolution has no dependency above the
// mso layer: the wire server, the snapshot tool, and the dist workers all
// resolve through this one function, which is what makes a property name a
// valid cross-process identity.

#include <charconv>

#include "mso/properties.hpp"

namespace lanecert {

PropertyPtr propertyByName(const std::string& name) {
  // The whole suffix must be a non-negative decimal integer — "vc:",
  // "vc:garbage", and "vc:3x" are unknown names, not vertex cover of 0.
  auto intSuffix = [&name](const char* prefix) -> int {
    const std::size_t len = std::string(prefix).size();
    if (name.rfind(prefix, 0) != 0) return -1;
    const char* first = name.data() + len;
    const char* last = name.data() + name.size();
    int value = 0;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last || value < 0) return -1;
    return value;
  };
  if (name == "forest") return makeForest();
  if (name == "connectivity") return makeConnectivity();
  if (name == "bipartite" || name == "2col") return makeColorability(2);
  if (name == "3col") return makeColorability(3);
  if (name == "is-path") return makePathProperty();
  if (name == "is-cycle") return makeCycleProperty();
  if (name == "matching") return makePerfectMatching();
  if (name == "ham-cycle") return makeHamiltonianCycle();
  if (name == "ham-path") return makeHamiltonianPath();
  if (name == "triangle-free") return makeTriangleFree();
  if (int c = intSuffix("vc:"); c >= 0) return makeVertexCover(c);
  if (int c = intSuffix("dom:"); c >= 0) return makeDominatingSet(c);
  if (int c = intSuffix("ind:"); c >= 0) return makeIndependentSet(c);
  if (int d = intSuffix("maxdeg:"); d >= 0) return makeMaxDegree(d);
  return nullptr;
}

}  // namespace lanecert
