// Domination-type properties:
//   * dominating set of size <= c   ("X is a dominating set" is the
//     paper's own example of an input-labeled MSO2 predicate, Section 2.2)
//   * independent set of size >= c
//
// Dominating set state: a map from boundary STATUS VECTORS to the minimum
// number of internal dominator vertices.  Each slot's status is one of
//   kIn         — the vertex is in the dominating set,
//   kCovered    — not in the set but already dominated by a neighbor,
//   kUncovered  — not in the set and not yet dominated (must gain an
//                 in-set neighbor before being forgotten).
//
// Independent set state: map from boundary subsets (slots in the set) to
// the maximum number of internal set vertices (capped at c).

#include <algorithm>
#include <map>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

// ---------------------------------------------------------------------------
// Dominating set <= c
// ---------------------------------------------------------------------------

constexpr char kIn = 0;
constexpr char kCovered = 1;
constexpr char kUncovered = 2;

struct DomState {
  int cap = 0;                       ///< c + 1
  std::map<std::string, int> best;   ///< status vector -> min internal cost

  [[nodiscard]] std::string encode() const {
    std::string s;
    for (const auto& [statuses, cost] : best) {
      s += statuses;
      mso_detail::put(s, cost);
      s.push_back('\x7f');
    }
    return s;
  }
};

void relax(std::map<std::string, int>& m, const std::string& key, int cost) {
  const auto [it, inserted] = m.emplace(key, cost);
  if (!inserted && cost < it->second) it->second = cost;
}

class DominatingSetProperty final : public Property {
 public:
  explicit DominatingSetProperty(int c) : c_(c) {
    if (c < 0 || c > 100) {
      throw std::invalid_argument("makeDominatingSet: need 0 <= c <= 100");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "dominating-set<=" + std::to_string(c_);
  }

  [[nodiscard]] HomState empty() const override {
    DomState s;
    s.cap = c_ + 1;
    s.best[""] = 0;
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    const DomState& s = h.as<DomState>();
    DomState t;
    t.cap = s.cap;
    for (const auto& [key, cost] : s.best) {
      relax(t.best, key + kIn, cost);
      relax(t.best, key + kUncovered, cost);
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    const DomState& s = h.as<DomState>();
    DomState t;
    t.cap = s.cap;
    for (const auto& [key, cost] : s.best) {
      std::string k = key;
      if (label == kRealEdge) {
        // An in-set endpoint dominates the other.
        if (k[static_cast<std::size_t>(a)] == kIn &&
            k[static_cast<std::size_t>(b)] == kUncovered) {
          k[static_cast<std::size_t>(b)] = kCovered;
        }
        if (k[static_cast<std::size_t>(b)] == kIn &&
            k[static_cast<std::size_t>(a)] == kUncovered) {
          k[static_cast<std::size_t>(a)] = kCovered;
        }
      }
      relax(t.best, k, cost);
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const DomState& s = ha.as<DomState>();
    const DomState& t = hb.as<DomState>();
    DomState u;
    u.cap = s.cap;
    for (const auto& [k1, c1] : s.best) {
      for (const auto& [k2, c2] : t.best) {
        relax(u.best, k1 + k2, std::min(u.cap, c1 + c2));
      }
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    const DomState& s = h.as<DomState>();
    DomState t;
    t.cap = s.cap;
    for (const auto& [key, cost] : s.best) {
      const char sa = key[static_cast<std::size_t>(a)];
      const char sb = key[static_cast<std::size_t>(b)];
      // Membership must agree; coverage merges (covered wins over
      // uncovered, both-in stays in — it is ONE vertex counted per side?
      // No: membership is a property of the vertex; both sides must agree
      // on kIn vs not, and the vertex was counted at most once because
      // in-set SLOTS are only tallied when forgotten (see forget()).
      const bool inA = sa == kIn;
      const bool inB = sb == kIn;
      if (inA != inB) continue;
      std::string k = key;
      k[static_cast<std::size_t>(a)] =
          inA ? kIn : (sa == kCovered || sb == kCovered ? kCovered : kUncovered);
      k.erase(k.begin() + b);
      relax(t.best, k, cost);
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    const DomState& s = h.as<DomState>();
    DomState t;
    t.cap = s.cap;
    for (const auto& [key, cost] : s.best) {
      const char st = key[static_cast<std::size_t>(a)];
      if (st == kUncovered) continue;  // never dominated: dead branch
      std::string k = key;
      k.erase(k.begin() + a);
      relax(t.best, k, std::min(s.cap, cost + (st == kIn ? 1 : 0)));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    const DomState& s = h.as<DomState>();
    for (const auto& [key, cost] : s.best) {
      if (key.find(kUncovered) != std::string::npos) continue;
      int total = cost;
      for (char c : key) total += c == kIn ? 1 : 0;
      if (total <= c_) return true;
    }
    return false;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    DomState s;
    s.cap = c_ + 1;
    std::size_t i = 0;
    std::size_t expected = std::string::npos;
    while (i < enc.size()) {
      const std::size_t end = enc.find('\x7f', i);
      if (end == std::string::npos || end - i < 1) {
        throw std::invalid_argument("dominating-set: bad encoding");
      }
      std::string key(enc.substr(i, end - i - 1));
      const int cost = static_cast<unsigned char>(enc[end - 1]);
      if (expected == std::string::npos) expected = key.size();
      if (key.size() != expected || cost > s.cap) {
        throw std::invalid_argument("dominating-set: inconsistent entry");
      }
      for (char c : key) {
        if (c != kIn && c != kCovered && c != kUncovered) {
          throw std::invalid_argument("dominating-set: bad status");
        }
      }
      s.best.emplace(std::move(key), cost);
      i = end + 1;
    }
    if (s.best.empty()) throw std::invalid_argument("dominating-set: empty");
    return HomState::make(std::move(s));
  }

  [[nodiscard]] int slotCount(const HomState& h) const override {
    const DomState& s = h.as<DomState>();
    return static_cast<int>(s.best.begin()->first.size());
  }

 private:
  int c_;
};

// ---------------------------------------------------------------------------
// Independent set >= c
// ---------------------------------------------------------------------------

struct IndState {
  int cap = 0;                            ///< c
  std::map<std::uint64_t, int> best;      ///< subset-in-set -> max internal count
  int slots = 0;

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    for (const auto& [mask, cnt] : best) {
      mso_detail::put64(s, mask);
      mso_detail::put(s, cnt);
    }
    return s;
  }
};

std::uint64_t dropBit(std::uint64_t m, int b) {
  const std::uint64_t low = m & ((std::uint64_t{1} << b) - 1);
  return low | ((m >> (b + 1)) << b);
}

class IndependentSetProperty final : public Property {
 public:
  explicit IndependentSetProperty(int c) : c_(c) {
    if (c < 0) throw std::invalid_argument("makeIndependentSet: c >= 0");
  }

  [[nodiscard]] std::string name() const override {
    return "independent-set>=" + std::to_string(c_);
  }

  [[nodiscard]] HomState empty() const override {
    IndState s;
    s.cap = c_;
    s.best[0] = 0;
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    const IndState& s = h.as<IndState>();
    if (s.slots >= 63) throw std::invalid_argument("independent-set: too many slots");
    IndState t;
    t.cap = s.cap;
    t.slots = s.slots + 1;
    const std::uint64_t bit = std::uint64_t{1} << s.slots;
    for (const auto& [m, cnt] : s.best) {
      t.best[m] = std::max(t.best.count(m) ? t.best[m] : -1, cnt);
      const auto withBit = m | bit;
      const auto it = t.best.find(withBit);
      if (it == t.best.end() || it->second < cnt) t.best[withBit] = cnt;
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    const IndState& s = h.as<IndState>();
    IndState t;
    t.cap = s.cap;
    t.slots = s.slots;
    const std::uint64_t ab =
        (std::uint64_t{1} << a) | (std::uint64_t{1} << b);
    for (const auto& [m, cnt] : s.best) {
      if (label == kRealEdge && (m & ab) == ab) continue;  // both in: clash
      const auto it = t.best.find(m);
      if (it == t.best.end() || it->second < cnt) t.best[m] = cnt;
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const IndState& s = ha.as<IndState>();
    const IndState& t = hb.as<IndState>();
    IndState u;
    u.cap = s.cap;
    u.slots = s.slots + t.slots;
    for (const auto& [m1, c1] : s.best) {
      for (const auto& [m2, c2] : t.best) {
        const std::uint64_t m = m1 | (m2 << s.slots);
        const int cnt = std::min(u.cap, c1 + c2);
        const auto it = u.best.find(m);
        if (it == u.best.end() || it->second < cnt) u.best[m] = cnt;
      }
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    const IndState& s = h.as<IndState>();
    IndState t;
    t.cap = s.cap;
    t.slots = s.slots - 1;
    for (const auto& [m, cnt] : s.best) {
      const bool inA = (m >> a) & 1;
      const bool inB = (m >> b) & 1;
      if (inA != inB) continue;  // membership must agree
      const std::uint64_t nm = dropBit(m, b);
      const auto it = t.best.find(nm);
      if (it == t.best.end() || it->second < cnt) t.best[nm] = cnt;
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    const IndState& s = h.as<IndState>();
    IndState t;
    t.cap = s.cap;
    t.slots = s.slots - 1;
    for (const auto& [m, cnt] : s.best) {
      const int add = static_cast<int>((m >> a) & 1);
      const std::uint64_t nm = dropBit(m, a);
      const int ncnt = std::min(s.cap, cnt + add);
      const auto it = t.best.find(nm);
      if (it == t.best.end() || it->second < ncnt) t.best[nm] = ncnt;
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    const IndState& s = h.as<IndState>();
    for (const auto& [m, cnt] : s.best) {
      if (cnt + __builtin_popcountll(m) >= c_) return true;
    }
    return false;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty() || (enc.size() - 1) % 9 != 0) {
      throw std::invalid_argument("independent-set: bad encoding");
    }
    IndState s;
    s.cap = c_;
    s.slots = static_cast<unsigned char>(enc[0]);
    if (s.slots > 63) throw std::invalid_argument("independent-set: slots");
    for (std::size_t i = 1; i < enc.size(); i += 9) {
      std::uint64_t m = 0;
      for (int b = 0; b < 8; ++b) {
        m |= static_cast<std::uint64_t>(static_cast<unsigned char>(enc[i + b]))
             << (8 * b);
      }
      const int cnt = static_cast<unsigned char>(enc[i + 8]);
      if (cnt > s.cap || (s.slots < 63 && (m >> s.slots) != 0)) {
        throw std::invalid_argument("independent-set: bad entry");
      }
      s.best[m] = cnt;
    }
    return HomState::make(std::move(s));
  }

  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<IndState>().slots;
  }

 private:
  int c_;
};

}  // namespace

PropertyPtr makeDominatingSet(int c) {
  return std::make_shared<DominatingSetProperty>(c);
}

PropertyPtr makeIndependentSet(int c) {
  return std::make_shared<IndependentSetProperty>(c);
}

}  // namespace lanecert
