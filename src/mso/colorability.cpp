// q-colorability: the state is the exact set of boundary colorings that
// extend to a proper q-coloring of the summarized subgraph.  This is the
// textbook Courcelle state for colorability; its size is bounded by q^s for
// s boundary slots — constant in the graph size.

#include <algorithm>
#include <set>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

using Coloring = std::string;  // one char per slot, values 0..q-1

struct ColorState {
  int slots = 0;
  std::set<Coloring> ok;  ///< extendable boundary colorings

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    for (const Coloring& c : ok) {
      s += c;
      s.push_back('\xff');
    }
    return s;
  }
};

class ColorabilityProperty final : public Property {
 public:
  explicit ColorabilityProperty(int q) : q_(q) {
    if (q < 1 || q > 6) {
      throw std::invalid_argument("makeColorability: q must be in [1, 6]");
    }
  }

  [[nodiscard]] std::string name() const override {
    return std::to_string(q_) + "-colorability";
  }

  [[nodiscard]] HomState empty() const override {
    ColorState s;
    s.ok.insert(Coloring{});
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    const ColorState& s = h.as<ColorState>();
    ColorState t;
    t.slots = s.slots + 1;
    for (const Coloring& c : s.ok) {
      for (int col = 0; col < q_; ++col) {
        Coloring d = c;
        d.push_back(static_cast<char>(col));
        t.ok.insert(std::move(d));
      }
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    const ColorState& s = h.as<ColorState>();
    if (label != kRealEdge) return HomState::make(ColorState{s});
    ColorState t;
    t.slots = s.slots;
    for (const Coloring& c : s.ok) {
      if (c[static_cast<std::size_t>(a)] != c[static_cast<std::size_t>(b)]) {
        t.ok.insert(c);
      }
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const ColorState& s = ha.as<ColorState>();
    const ColorState& t = hb.as<ColorState>();
    ColorState u;
    u.slots = s.slots + t.slots;
    for (const Coloring& c : s.ok) {
      for (const Coloring& d : t.ok) u.ok.insert(c + d);
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    const ColorState& s = h.as<ColorState>();
    ColorState t;
    t.slots = s.slots - 1;
    for (const Coloring& c : s.ok) {
      if (c[static_cast<std::size_t>(a)] != c[static_cast<std::size_t>(b)]) continue;
      Coloring d = c;
      d.erase(d.begin() + b);
      t.ok.insert(std::move(d));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    const ColorState& s = h.as<ColorState>();
    ColorState t;
    t.slots = s.slots - 1;
    for (const Coloring& c : s.ok) {
      Coloring d = c;
      d.erase(d.begin() + a);
      t.ok.insert(std::move(d));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    return !h.as<ColorState>().ok.empty();
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty()) throw std::invalid_argument("colorability: empty encoding");
    ColorState s;
    s.slots = static_cast<unsigned char>(enc[0]);
    std::size_t i = 1;
    while (i < enc.size()) {
      const std::size_t next = enc.find('\xff', i);
      if (next == std::string::npos) {
        throw std::invalid_argument("colorability: unterminated coloring");
      }
      Coloring c(enc.substr(i, next - i));
      if (static_cast<int>(c.size()) != s.slots) {
        throw std::invalid_argument("colorability: coloring length mismatch");
      }
      for (char ch : c) {
        if (ch < 0 || ch >= q_) {
          throw std::invalid_argument("colorability: bad color");
        }
      }
      s.ok.insert(std::move(c));
      i = next + 1;
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<ColorState>().slots;
  }

 private:
  int q_;
};

}  // namespace

PropertyPtr makeColorability(int q) {
  return std::make_shared<ColorabilityProperty>(q);
}

}  // namespace lanecert
