#pragma once
// Factory functions for the bundled MSO2 properties.  Each returns a
// Property whose states are constant-size summaries (see property.hpp) and
// each is cross-validated against brute force in tests/test_mso.cpp.
//
// All bundled properties evaluate φ on the subgraph of edges labeled
// kRealEdge; virtual (completion-only) edges affect nothing.

#include <string>

#include "mso/property.hpp"

namespace lanecert {

/// Resolves a bundled property by its REGISTRY NAME — the stable textual
/// grammar shared by the wire protocol (net), the snapshot tool, and the
/// dist workers (which receive the name through the shared-memory image and
/// must rebuild the identical property in another process):
///
///   "forest" | "connectivity" | "bipartite" | "2col" | "3col" |
///   "is-path" | "is-cycle" | "matching" | "ham-cycle" | "ham-path" |
///   "triangle-free" | "vc:<c>" | "dom:<c>" | "ind:<c>" | "maxdeg:<d>"
///
/// Integer suffixes must be whole non-negative decimals ("vc:", "vc:3x",
/// "vc:-1" are unknown names).  Returns nullptr for unknown names; equal
/// names construct behaviourally identical properties, which is what makes
/// name-based dedup keys and cross-process property transport sound.
[[nodiscard]] PropertyPtr propertyByName(const std::string& name);

/// χ(G) <= q: proper q-colorability (q = 2 is bipartiteness).
/// State: the set of boundary colorings extendable to the whole subgraph.
[[nodiscard]] PropertyPtr makeColorability(int q);

/// G is a forest (equivalently, K3-minor-free).
/// State: boundary connectivity partition + cycle flag (deterministic).
[[nodiscard]] PropertyPtr makeForest();

/// G is connected.
/// State: partition + count of "lost" (fully forgotten) components.
[[nodiscard]] PropertyPtr makeConnectivity();

/// G is a simple path on all vertices (accepts n = 1).
[[nodiscard]] PropertyPtr makePathProperty();

/// G is a single simple cycle on all vertices.
/// Together with makePathProperty this realizes the Ω(log n) lower-bound
/// pair of [KKP10] discussed in Section 1.2.
[[nodiscard]] PropertyPtr makeCycleProperty();

/// G admits a perfect matching.
/// State: the set of boundary subsets that can be left exposed while all
/// internal vertices are matched.
[[nodiscard]] PropertyPtr makePerfectMatching();

/// G has a vertex cover of size <= c.
/// State: map from boundary subsets (in the cover) to the minimum number of
/// internal cover vertices, capped at c + 1.
[[nodiscard]] PropertyPtr makeVertexCover(int c);

/// G has a Hamiltonian cycle.
/// State: set of interface configurations (slot degrees + open-segment
/// pairing + closed-cycle flag).
[[nodiscard]] PropertyPtr makeHamiltonianCycle();

/// G has a Hamiltonian path.
[[nodiscard]] PropertyPtr makeHamiltonianPath();

/// G contains no triangle (K3 subgraph).
/// State: boundary adjacency + pairs with a common forgotten neighbor.
[[nodiscard]] PropertyPtr makeTriangleFree();

/// |E(G)| ≡ r (mod m): a counting property useful for exercising the
/// algebra (plain MSO cannot count, but the framework supports it and the
/// paper's Prop 2.4 extends to such regular predicates).
[[nodiscard]] PropertyPtr makeEdgeParity(int m, int r);

/// Max degree of G <= d.
[[nodiscard]] PropertyPtr makeMaxDegree(int d);

/// G has a dominating set of size <= c ("X is a dominating set" is the
/// paper's own example of an input-labeled MSO2 predicate, Section 2.2).
[[nodiscard]] PropertyPtr makeDominatingSet(int c);

/// G has an independent set of size >= c.
[[nodiscard]] PropertyPtr makeIndependentSet(int c);

/// Girth of G is >= g (no cycle shorter than g); g = 4 is triangle-freeness
/// for simple graphs.  Requires 3 <= g <= 100.
[[nodiscard]] PropertyPtr makeGirthAtLeast(int g);

}  // namespace lanecert
