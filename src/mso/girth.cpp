// Girth >= g: the graph contains no cycle shorter than g.
// Generalizes triangle-freeness (g = 4) toward the "forbidden short
// cycles" family of minor-ish properties.
//
// State: the matrix of shortest path lengths between boundary slots
// (through any mixture of live and forgotten vertices), capped at g, plus
// a found flag.  Cycles are detected at the two moments they can close:
//   * addEdge(a, b):   cycle length 1 + d[a][b];
//   * identify(a, b):  the identified pair's shortest connection becomes a
//     cycle of length d[a][b] (before the identification the two sides are
//     joined only through previously glued vertices, so d[a][b] is exactly
//     the length of the cycle being closed — see tests for the two-lane
//     Parent-merge case).
// The matrix is kept transitively closed after every update, so forgetting
// a vertex loses no information.

#include <algorithm>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

struct GirthState {
  int g = 0;  ///< the girth bound; doubles as the "infinity" cap
  int slots = 0;
  std::vector<std::int8_t> dist;  ///< row-major slots x slots, capped at g
  bool found = false;             ///< a cycle shorter than g exists

  [[nodiscard]] std::int8_t& at(int i, int j) {
    return dist[static_cast<std::size_t>(i * slots + j)];
  }
  [[nodiscard]] std::int8_t at(int i, int j) const {
    return dist[static_cast<std::size_t>(i * slots + j)];
  }

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    mso_detail::put(s, found ? 1 : 0);
    for (auto d : dist) mso_detail::put(s, d);
    return s;
  }
};

/// Re-closes the matrix through pivot slot k.
void closeThrough(GirthState& s, int k) {
  for (int i = 0; i < s.slots; ++i) {
    for (int j = 0; j < s.slots; ++j) {
      const int via = s.at(i, k) + s.at(k, j);
      if (via < s.at(i, j)) {
        s.at(i, j) = static_cast<std::int8_t>(std::min(via, s.g));
      }
    }
  }
}

void removeSlot(GirthState& s, int a) {
  GirthState t;
  t.g = s.g;
  t.slots = s.slots - 1;
  t.found = s.found;
  t.dist.resize(static_cast<std::size_t>(t.slots * t.slots));
  for (int i = 0, ti = 0; i < s.slots; ++i) {
    if (i == a) continue;
    for (int j = 0, tj = 0; j < s.slots; ++j) {
      if (j == a) continue;
      t.at(ti, tj) = s.at(i, j);
      ++tj;
    }
    ++ti;
  }
  s = std::move(t);
}

class GirthProperty final : public Property {
 public:
  explicit GirthProperty(int g) : g_(g) {
    if (g < 3 || g > 100) {
      throw std::invalid_argument("makeGirthAtLeast: need 3 <= g <= 100");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "girth>=" + std::to_string(g_);
  }

  [[nodiscard]] HomState empty() const override {
    GirthState s;
    s.g = g_;
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    GirthState s = h.as<GirthState>();
    GirthState t;
    t.g = g_;
    t.slots = s.slots + 1;
    t.found = s.found;
    t.dist.assign(static_cast<std::size_t>(t.slots * t.slots),
                  static_cast<std::int8_t>(g_));
    for (int i = 0; i < s.slots; ++i) {
      for (int j = 0; j < s.slots; ++j) t.at(i, j) = s.at(i, j);
    }
    t.at(t.slots - 1, t.slots - 1) = 0;
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    GirthState s = h.as<GirthState>();
    if (label == kRealEdge && !s.found) {
      if (1 + s.at(a, b) < g_) s.found = true;
      if (1 < s.at(a, b)) {
        s.at(a, b) = 1;
        s.at(b, a) = 1;
        closeThrough(s, a);
        closeThrough(s, b);
      }
    }
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const GirthState& s = ha.as<GirthState>();
    const GirthState& t = hb.as<GirthState>();
    GirthState u;
    u.g = g_;
    u.slots = s.slots + t.slots;
    u.found = s.found || t.found;
    u.dist.assign(static_cast<std::size_t>(u.slots * u.slots),
                  static_cast<std::int8_t>(g_));
    for (int i = 0; i < s.slots; ++i) {
      for (int j = 0; j < s.slots; ++j) u.at(i, j) = s.at(i, j);
    }
    for (int i = 0; i < t.slots; ++i) {
      for (int j = 0; j < t.slots; ++j) {
        u.at(s.slots + i, s.slots + j) = t.at(i, j);
      }
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    GirthState s = h.as<GirthState>();
    // Identifying the endpoints of a shortest path closes a cycle of
    // exactly that length (the two occurrences were connected only through
    // earlier gluings).
    if (!s.found && s.at(a, b) < g_ && s.at(a, b) >= 2) s.found = true;
    for (int j = 0; j < s.slots; ++j) {
      const auto m = static_cast<std::int8_t>(
          std::min<int>(s.at(a, j), s.at(b, j)));
      s.at(a, j) = m;
      s.at(j, a) = m;
    }
    s.at(a, a) = 0;
    removeSlot(s, b);
    if (a > b) --a;
    closeThrough(s, a);
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    GirthState s = h.as<GirthState>();
    removeSlot(s, a);  // matrix is transitively closed: nothing is lost
    return HomState::make(std::move(s));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    return !h.as<GirthState>().found;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.size() < 2) throw std::invalid_argument("girth: short encoding");
    GirthState s;
    s.g = g_;
    s.slots = static_cast<unsigned char>(enc[0]);
    s.found = enc[1] != 0;
    const auto cells = static_cast<std::size_t>(s.slots) *
                       static_cast<std::size_t>(s.slots);
    if (enc.size() != 2 + cells || s.slots > 100) {
      throw std::invalid_argument("girth: bad encoding size");
    }
    for (std::size_t i = 0; i < cells; ++i) {
      const auto d = static_cast<std::int8_t>(enc[2 + i]);
      if (d < 0 || d > g_) throw std::invalid_argument("girth: bad distance");
      s.dist.push_back(d);
    }
    for (int i = 0; i < s.slots; ++i) {
      if (s.at(i, i) != 0) throw std::invalid_argument("girth: bad diagonal");
    }
    return HomState::make(std::move(s));
  }

  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<GirthState>().slots;
  }

 private:
  int g_;
};

}  // namespace

PropertyPtr makeGirthAtLeast(int g) {
  return std::make_shared<GirthProperty>(g);
}

}  // namespace lanecert
