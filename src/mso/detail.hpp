#pragma once
// Internal helpers shared by the bundled property implementations.

#include <cstdint>
#include <string>
#include <vector>

namespace lanecert::mso_detail {

/// Renumbers a partition vector (slot -> block id) into canonical form:
/// blocks are numbered by first occurrence, starting at 0.
inline void canonicalizePartition(std::vector<std::int8_t>& part) {
  std::vector<std::int8_t> remap(part.size() + 1, -1);
  std::int8_t next = 0;
  for (auto& b : part) {
    if (b < 0) continue;  // -1 entries stay (no block)
    if (remap[static_cast<std::size_t>(b)] < 0) {
      remap[static_cast<std::size_t>(b)] = next++;
    }
    b = remap[static_cast<std::size_t>(b)];
  }
}

/// Appends a small integer to an encoding string.
inline void put(std::string& out, int x) {
  out.push_back(static_cast<char>(x & 0xff));
}

/// Appends a 64-bit value to an encoding string.
inline void put64(std::string& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

}  // namespace lanecert::mso_detail
