// Hamiltonian cycle / path.
//
// The state is the set of "interface configurations" of partial structures:
// each configuration describes a family of vertex-disjoint simple paths
// (segments) covering every internal vertex, by recording for each boundary
// slot its degree in the structure (0, 1, 2) and, for degree-1 slots, the
// slot at the other end of its segment.  Internal vertices must reach
// degree 2 before being forgotten — except, for the PATH variant, up to two
// segment ends may be "sealed" at internal vertices (the path's endpoints).
// A fully sealed segment (both ends internal) is recorded in a flag; at
// most one may exist.  The CYCLE variant instead allows closing exactly one
// cycle, recorded in a flag; the final structure must be that single cycle.

#include <set>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

constexpr std::int8_t kInterior = -1;  ///< degree-2 slot (or on the cycle)
constexpr std::int8_t kSealed = -2;    ///< other end of the segment is sealed

struct Config {
  std::vector<std::int8_t> deg;      ///< 0, 1, or 2 per slot
  std::vector<std::int8_t> partner;  ///< deg0: self; deg1: other end; deg2: -1
  bool closed = false;               ///< one cycle has been closed (cycle mode)
  bool sealedSegment = false;        ///< a both-ends-sealed segment exists

  friend auto operator<=>(const Config&, const Config&) = default;
};

struct HamState {
  int slots = 0;
  std::set<Config> configs;

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    for (const Config& c : configs) {
      mso_detail::put(s, (c.closed ? 1 : 0) | (c.sealedSegment ? 2 : 0));
      for (auto d : c.deg) mso_detail::put(s, d);
      for (auto p : c.partner) mso_detail::put(s, p + 2);
      s.push_back('\xfe');
    }
    return s;
  }
};

/// Links the two ends of a merged segment; returns false if the config dies
/// (two fully sealed segments).
bool linkEnds(Config& c, std::int8_t endA, std::int8_t endB) {
  if (endA >= 0 && endB >= 0) {
    c.partner[static_cast<std::size_t>(endA)] = endB;
    c.partner[static_cast<std::size_t>(endB)] = endA;
    return true;
  }
  if (endA >= 0) {  // endB sealed
    c.partner[static_cast<std::size_t>(endA)] = kSealed;
    return true;
  }
  if (endB >= 0) {
    c.partner[static_cast<std::size_t>(endB)] = kSealed;
    return true;
  }
  // Both ends sealed: a complete fixed path.
  if (c.sealedSegment) return false;
  c.sealedSegment = true;
  return true;
}

/// The other end of the segment whose endpoint is slot x (deg 0 or 1).
std::int8_t otherEnd(const Config& c, int x) {
  return c.deg[static_cast<std::size_t>(x)] == 0
             ? static_cast<std::int8_t>(x)
             : c.partner[static_cast<std::size_t>(x)];
}

void eraseSlot(Config& c, int b) {
  c.deg.erase(c.deg.begin() + b);
  c.partner.erase(c.partner.begin() + b);
  for (auto& p : c.partner) {
    if (p > b) --p;
  }
}

class HamiltonianProperty final : public Property {
 public:
  explicit HamiltonianProperty(bool cycle) : cycle_(cycle) {}

  [[nodiscard]] std::string name() const override {
    return cycle_ ? "hamiltonian-cycle" : "hamiltonian-path";
  }

  [[nodiscard]] HomState empty() const override {
    HamState s;
    s.configs.insert(Config{});
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    const HamState& s = h.as<HamState>();
    HamState t;
    t.slots = s.slots + 1;
    for (Config c : s.configs) {
      c.deg.push_back(0);
      c.partner.push_back(static_cast<std::int8_t>(s.slots));  // self
      t.configs.insert(std::move(c));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    const HamState& s = h.as<HamState>();
    HamState t{s};  // every config may skip the edge
    if (label != kRealEdge) return HomState::make(std::move(t));
    for (const Config& c : s.configs) {
      if (c.deg[static_cast<std::size_t>(a)] >= 2 ||
          c.deg[static_cast<std::size_t>(b)] >= 2) {
        continue;
      }
      Config nc = c;
      const bool sameSegment =
          nc.deg[static_cast<std::size_t>(a)] == 1 &&
          nc.partner[static_cast<std::size_t>(a)] == static_cast<std::int8_t>(b);
      if (sameSegment) {
        // The edge closes the segment into a cycle.
        if (!cycle_ || nc.closed) continue;
        nc.closed = true;
        nc.deg[static_cast<std::size_t>(a)] = 2;
        nc.deg[static_cast<std::size_t>(b)] = 2;
        nc.partner[static_cast<std::size_t>(a)] = kInterior;
        nc.partner[static_cast<std::size_t>(b)] = kInterior;
      } else {
        const std::int8_t endA = otherEnd(nc, a);
        const std::int8_t endB = otherEnd(nc, b);
        for (int x : {a, b}) {
          auto& d = nc.deg[static_cast<std::size_t>(x)];
          ++d;
          if (d == 2) nc.partner[static_cast<std::size_t>(x)] = kInterior;
        }
        // A slot that just reached degree 1 is itself the segment end.
        const std::int8_t ea =
            nc.deg[static_cast<std::size_t>(a)] == 1 ? static_cast<std::int8_t>(a) : endA;
        const std::int8_t eb =
            nc.deg[static_cast<std::size_t>(b)] == 1 ? static_cast<std::int8_t>(b) : endB;
        if (!linkEnds(nc, ea, eb)) continue;
      }
      t.configs.insert(std::move(nc));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const HamState& s = ha.as<HamState>();
    const HamState& t = hb.as<HamState>();
    HamState u;
    u.slots = s.slots + t.slots;
    for (const Config& c1 : s.configs) {
      for (const Config& c2 : t.configs) {
        if (c1.closed && c2.closed) continue;
        if (c1.sealedSegment && c2.sealedSegment) continue;
        Config c = c1;
        c.closed = c1.closed || c2.closed;
        c.sealedSegment = c1.sealedSegment || c2.sealedSegment;
        for (std::size_t i = 0; i < c2.deg.size(); ++i) {
          c.deg.push_back(c2.deg[i]);
          const std::int8_t p = c2.partner[i];
          c.partner.push_back(p >= 0 ? static_cast<std::int8_t>(p + s.slots) : p);
        }
        u.configs.insert(std::move(c));
      }
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    const HamState& s = h.as<HamState>();
    HamState t;
    t.slots = s.slots - 1;
    for (const Config& c : s.configs) {
      const int da = c.deg[static_cast<std::size_t>(a)];
      const int db = c.deg[static_cast<std::size_t>(b)];
      if (da + db > 2) continue;
      Config nc = c;
      if (da == 1 && db == 1) {
        if (nc.partner[static_cast<std::size_t>(a)] == static_cast<std::int8_t>(b)) {
          // Gluing the two ends of one segment closes a cycle.
          if (!cycle_ || nc.closed) continue;
          nc.closed = true;
          nc.deg[static_cast<std::size_t>(a)] = 2;
          nc.partner[static_cast<std::size_t>(a)] = kInterior;
        } else {
          const std::int8_t ea = nc.partner[static_cast<std::size_t>(a)];
          const std::int8_t eb = nc.partner[static_cast<std::size_t>(b)];
          nc.deg[static_cast<std::size_t>(a)] = 2;
          nc.partner[static_cast<std::size_t>(a)] = kInterior;
          if (!linkEnds(nc, ea, eb)) continue;
        }
      } else if (da + db == 2) {
        // One side is interior (2+0): the merged vertex is interior.
        nc.deg[static_cast<std::size_t>(a)] = 2;
        nc.partner[static_cast<std::size_t>(a)] = kInterior;
      } else if (da + db == 1) {
        // Merged vertex is a degree-1 endpoint; inherit the segment of the
        // degree-1 side.
        const int one = da == 1 ? a : b;
        nc.deg[static_cast<std::size_t>(a)] = 1;
        const std::int8_t p = c.partner[static_cast<std::size_t>(one)];
        nc.partner[static_cast<std::size_t>(a)] = p;
        if (p >= 0) nc.partner[static_cast<std::size_t>(p)] = static_cast<std::int8_t>(a);
      } else {
        // 0 + 0: merged isolated vertex (its own trivial segment).
        nc.deg[static_cast<std::size_t>(a)] = 0;
        nc.partner[static_cast<std::size_t>(a)] = static_cast<std::int8_t>(a);
      }
      eraseSlot(nc, b);  // also shifts partner references past b
      t.configs.insert(std::move(nc));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    const HamState& s = h.as<HamState>();
    HamState t;
    t.slots = s.slots - 1;
    for (const Config& c : s.configs) {
      const int d = c.deg[static_cast<std::size_t>(a)];
      Config nc = c;
      if (d == 2) {
        // Covered interior vertex: nothing to do.
      } else if (!cycle_ && d == 1) {
        // Seal this end of the segment (one of the path's two endpoints).
        const std::int8_t p = nc.partner[static_cast<std::size_t>(a)];
        if (p >= 0) {
          nc.partner[static_cast<std::size_t>(p)] = kSealed;
        } else {  // p == kSealed: the segment becomes fully sealed
          if (nc.sealedSegment) continue;
          nc.sealedSegment = true;
        }
      } else if (!cycle_ && d == 0) {
        // Isolated internal vertex: only valid as the whole (1-vertex) path.
        if (nc.sealedSegment) continue;
        nc.sealedSegment = true;
      } else {
        continue;  // cycle mode: internal vertices must have degree 2
      }
      eraseSlot(nc, a);
      t.configs.insert(std::move(nc));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    const HamState& s = h.as<HamState>();
    for (const Config& c : s.configs) {
      if (cycle_) {
        if (!c.closed || c.sealedSegment) continue;
        bool allInterior = true;
        for (std::size_t i = 0; i < c.deg.size(); ++i) {
          if (c.deg[i] != 2) allInterior = false;
        }
        if (allInterior) return true;
      } else {
        if (c.closed) continue;
        // Count maximal segments; the structure must be exactly one path
        // covering everything.
        int objects = c.sealedSegment ? 1 : 0;
        bool bad = false;
        for (std::size_t i = 0; i < c.deg.size(); ++i) {
          if (c.deg[i] == 0) {
            ++objects;
          } else if (c.deg[i] == 1) {
            const std::int8_t p = c.partner[i];
            if (p == kSealed) {
              ++objects;
            } else if (p >= 0 && static_cast<std::size_t>(p) > i) {
              ++objects;  // count each slot-slot pair once
            } else if (p < 0 && p != kSealed) {
              bad = true;
            }
          }
        }
        if (!bad && objects == 1) return true;
      }
    }
    return false;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty()) throw std::invalid_argument("hamiltonian: empty encoding");
    HamState s;
    s.slots = static_cast<unsigned char>(enc[0]);
    const auto slots = static_cast<std::size_t>(s.slots);
    std::size_t i = 1;
    const std::size_t stride = 1 + 2 * slots + 1;  // flags, degs, partners, 0xfe
    while (i < enc.size()) {
      if (enc.size() - i < stride) {
        throw std::invalid_argument("hamiltonian: truncated config");
      }
      Config c;
      c.closed = (enc[i] & 1) != 0;
      c.sealedSegment = (enc[i] & 2) != 0;
      for (std::size_t j = 0; j < slots; ++j) {
        const auto d = static_cast<std::int8_t>(enc[i + 1 + j]);
        if (d < 0 || d > 2) throw std::invalid_argument("hamiltonian: bad degree");
        c.deg.push_back(d);
      }
      for (std::size_t j = 0; j < slots; ++j) {
        const int p = static_cast<unsigned char>(enc[i + 1 + slots + j]) - 2;
        if (p < kSealed || p >= static_cast<int>(slots)) {
          throw std::invalid_argument("hamiltonian: bad partner");
        }
        c.partner.push_back(static_cast<std::int8_t>(p));
      }
      if (static_cast<unsigned char>(enc[i + stride - 1]) != 0xfe) {
        throw std::invalid_argument("hamiltonian: missing config terminator");
      }
      s.configs.insert(std::move(c));
      i += stride;
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<HamState>().slots;
  }

 private:
  bool cycle_;
};

}  // namespace

PropertyPtr makeHamiltonianCycle() {
  return std::make_shared<HamiltonianProperty>(true);
}

PropertyPtr makeHamiltonianPath() {
  return std::make_shared<HamiltonianProperty>(false);
}

}  // namespace lanecert
