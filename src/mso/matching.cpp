// Perfect matching: the state is the set of boundary subsets that can be
// left EXPOSED (unmatched) by some matching covering every internal vertex.
// Boundary subsets are bitmasks over slots (at most 63 slots supported,
// far beyond any bounded-lanewidth pipeline's needs).

#include <set>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

using Mask = std::uint64_t;

struct MatchState {
  int slots = 0;
  std::set<Mask> exposable;  ///< bit set = slot exposed

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, slots);
    for (Mask m : exposable) mso_detail::put64(s, m);
    return s;
  }
};

Mask removeBit(Mask m, int b) {
  const Mask low = m & ((Mask{1} << b) - 1);
  const Mask high = (m >> (b + 1)) << b;
  return low | high;
}

class PerfectMatchingProperty final : public Property {
 public:
  [[nodiscard]] std::string name() const override { return "perfect-matching"; }

  [[nodiscard]] HomState empty() const override {
    MatchState s;
    s.exposable.insert(0);
    return HomState::make(std::move(s));
  }

  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    const MatchState& s = h.as<MatchState>();
    if (s.slots >= 63) throw std::invalid_argument("matching: too many slots");
    MatchState t;
    t.slots = s.slots + 1;
    const Mask newBit = Mask{1} << s.slots;
    for (Mask m : s.exposable) t.exposable.insert(m | newBit);
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    const MatchState& s = h.as<MatchState>();
    MatchState t{s};
    if (label != kRealEdge) return HomState::make(std::move(t));
    const Mask ab = (Mask{1} << a) | (Mask{1} << b);
    for (Mask m : s.exposable) {
      if ((m & ab) == ab) t.exposable.insert(m & ~ab);  // use the new edge
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    const MatchState& s = ha.as<MatchState>();
    const MatchState& t = hb.as<MatchState>();
    MatchState u;
    u.slots = s.slots + t.slots;
    for (Mask m : s.exposable) {
      for (Mask m2 : t.exposable) u.exposable.insert(m | (m2 << s.slots));
    }
    return HomState::make(std::move(u));
  }

  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    const MatchState& s = h.as<MatchState>();
    MatchState t;
    t.slots = s.slots - 1;
    const Mask bitA = Mask{1} << a;
    const Mask bitB = Mask{1} << b;
    for (Mask m : s.exposable) {
      const bool ea = (m & bitA) != 0;
      const bool eb = (m & bitB) != 0;
      if (!ea && !eb) continue;  // both covered: the glued vertex would have
                                 // two matching edges
      // The glued vertex is exposed iff exposed on both sides.
      Mask nm = ea && eb ? (m | bitA) : (m & ~bitA);
      t.exposable.insert(removeBit(nm, b));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    const MatchState& s = h.as<MatchState>();
    MatchState t;
    t.slots = s.slots - 1;
    const Mask bitA = Mask{1} << a;
    for (Mask m : s.exposable) {
      if ((m & bitA) != 0) continue;  // internal vertices must be covered
      t.exposable.insert(removeBit(m, a));
    }
    return HomState::make(std::move(t));
  }

  [[nodiscard]] bool accepts(const HomState& h) const override {
    // Every vertex — including remaining boundary slots — must be covered.
    return h.as<MatchState>().exposable.count(0) != 0;
  }

  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty() || (enc.size() - 1) % 8 != 0) {
      throw std::invalid_argument("matching: bad encoding");
    }
    MatchState s;
    s.slots = static_cast<unsigned char>(enc[0]);
    if (s.slots > 63) throw std::invalid_argument("matching: too many slots");
    for (std::size_t i = 1; i < enc.size(); i += 8) {
      Mask m = 0;
      for (int b = 0; b < 8; ++b) {
        m |= static_cast<Mask>(static_cast<unsigned char>(enc[i + b])) << (8 * b);
      }
      if (s.slots < 63 && (m >> s.slots) != 0) {
        throw std::invalid_argument("matching: mask exceeds slots");
      }
      s.exposable.insert(m);
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<MatchState>().slots;
  }
};

}  // namespace

PropertyPtr makePerfectMatching() {
  return std::make_shared<PerfectMatchingProperty>();
}

}  // namespace lanecert
