// Simple counting-style properties: edge-count residue and bounded maximum
// degree.  Both have tiny deterministic states and serve as easy sanity
// checks of the algebra (and of the label-size accounting).

#include <algorithm>
#include <stdexcept>

#include "mso/detail.hpp"
#include "mso/properties.hpp"

namespace lanecert {
namespace {

// ---------------------------------------------------------------------------
// |E| ≡ r (mod m)
// ---------------------------------------------------------------------------

struct ParityState {
  int residue = 0;
  int slots = 0;  ///< semantically unused; kept so layouts can be validated

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, residue);
    mso_detail::put(s, slots);
    return s;
  }
};

class EdgeParityProperty final : public Property {
 public:
  EdgeParityProperty(int m, int r) : m_(m), r_(r) {
    if (m < 1 || r < 0 || r >= m) {
      throw std::invalid_argument("makeEdgeParity: need 0 <= r < m");
    }
  }

  [[nodiscard]] std::string name() const override {
    return "edges=" + std::to_string(r_) + " (mod " + std::to_string(m_) + ")";
  }

  [[nodiscard]] HomState empty() const override {
    return HomState::make(ParityState{});
  }
  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    ParityState s = h.as<ParityState>();
    ++s.slots;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState addEdge(const HomState& h, int, int, int label) const override {
    ParityState s = h.as<ParityState>();
    if (label == kRealEdge) s.residue = (s.residue + 1) % m_;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState join(const HomState& a, const HomState& b) const override {
    ParityState s;
    s.residue = (a.as<ParityState>().residue + b.as<ParityState>().residue) % m_;
    s.slots = a.as<ParityState>().slots + b.as<ParityState>().slots;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState identify(const HomState& h, int, int) const override {
    ParityState s = h.as<ParityState>();
    --s.slots;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState forget(const HomState& h, int) const override {
    ParityState s = h.as<ParityState>();
    --s.slots;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] bool accepts(const HomState& h) const override {
    return h.as<ParityState>().residue == r_;
  }
  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.size() != 2) throw std::invalid_argument("parity: bad encoding");
    ParityState s;
    s.residue = static_cast<unsigned char>(enc[0]);
    s.slots = static_cast<unsigned char>(enc[1]);
    if (s.residue >= m_) throw std::invalid_argument("parity: residue >= m");
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return h.as<ParityState>().slots;
  }

 private:
  int m_;
  int r_;
};

// ---------------------------------------------------------------------------
// max degree <= d
// ---------------------------------------------------------------------------

struct DegState {
  std::vector<std::int8_t> deg;  ///< capped at d + 1
  bool violated = false;

  [[nodiscard]] std::string encode() const {
    std::string s;
    mso_detail::put(s, violated ? 1 : 0);
    for (auto d : deg) mso_detail::put(s, d);
    return s;
  }
};

class MaxDegreeProperty final : public Property {
 public:
  explicit MaxDegreeProperty(int d) : d_(d) {
    if (d < 0) throw std::invalid_argument("makeMaxDegree: d >= 0");
  }

  [[nodiscard]] std::string name() const override {
    return "max-degree<=" + std::to_string(d_);
  }

  [[nodiscard]] HomState empty() const override {
    return HomState::make(DegState{});
  }
  [[nodiscard]] HomState addVertex(const HomState& h) const override {
    DegState s = h.as<DegState>();
    s.deg.push_back(0);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState addEdge(const HomState& h, int a, int b,
                                 int label) const override {
    DegState s = h.as<DegState>();
    if (label == kRealEdge) {
      for (int x : {a, b}) {
        auto& d = s.deg[static_cast<std::size_t>(x)];
        d = static_cast<std::int8_t>(std::min(d_ + 1, d + 1));
        if (d > d_) s.violated = true;
      }
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState join(const HomState& ha, const HomState& hb) const override {
    DegState s = ha.as<DegState>();
    const DegState& t = hb.as<DegState>();
    s.deg.insert(s.deg.end(), t.deg.begin(), t.deg.end());
    s.violated = s.violated || t.violated;
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState identify(const HomState& h, int a, int b) const override {
    DegState s = h.as<DegState>();
    const int sum = s.deg[static_cast<std::size_t>(a)] + s.deg[static_cast<std::size_t>(b)];
    s.deg[static_cast<std::size_t>(a)] =
        static_cast<std::int8_t>(std::min(d_ + 1, sum));
    if (sum > d_) s.violated = true;
    s.deg.erase(s.deg.begin() + b);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] HomState forget(const HomState& h, int a) const override {
    DegState s = h.as<DegState>();
    s.deg.erase(s.deg.begin() + a);
    return HomState::make(std::move(s));
  }
  [[nodiscard]] bool accepts(const HomState& h) const override {
    return !h.as<DegState>().violated;
  }
  [[nodiscard]] HomState decodeState(std::string_view enc) const override {
    if (enc.empty()) throw std::invalid_argument("maxdeg: empty encoding");
    DegState s;
    s.violated = enc[0] != 0;
    for (std::size_t i = 1; i < enc.size(); ++i) {
      const auto d = static_cast<std::int8_t>(enc[i]);
      if (d < 0 || d > d_ + 1) throw std::invalid_argument("maxdeg: bad degree");
      s.deg.push_back(d);
    }
    return HomState::make(std::move(s));
  }
  [[nodiscard]] int slotCount(const HomState& h) const override {
    return static_cast<int>(h.as<DegState>().deg.size());
  }

 private:
  int d_;
};

}  // namespace

PropertyPtr makeEdgeParity(int m, int r) {
  return std::make_shared<EdgeParityProperty>(m, r);
}

PropertyPtr makeMaxDegree(int d) {
  return std::make_shared<MaxDegreeProperty>(d);
}

}  // namespace lanecert
