#include "interval/interval.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

namespace lanecert {

IntervalRepresentation IntervalRepresentation::fromPairs(
    const std::vector<std::pair<int, int>>& pairs) {
  std::vector<Interval> iv;
  iv.reserve(pairs.size());
  for (const auto& [l, r] : pairs) iv.push_back(Interval{l, r});
  return IntervalRepresentation(std::move(iv));
}

int IntervalRepresentation::width() const {
  // Sweep over +1 at l, -1 at r+1 events.
  std::map<int, int> delta;
  for (const Interval& iv : intervals_) {
    if (iv.l > iv.r) return -1;  // invalid interval; callers treat as error
    ++delta[iv.l];
    --delta[iv.r + 1];
  }
  int cur = 0;
  int best = 0;
  for (const auto& [pos, d] : delta) {
    cur += d;
    best = std::max(best, cur);
  }
  return best;
}

bool IntervalRepresentation::isValidFor(const Graph& g) const {
  if (numVertices() != g.numVertices()) return false;
  for (const Interval& iv : intervals_) {
    if (iv.l > iv.r) return false;
  }
  for (const Edge& e : g.edges()) {
    if (!interval(e.u).overlaps(interval(e.v))) return false;
  }
  return true;
}

IntervalRepresentation::Restriction IntervalRepresentation::restrictTo(
    const std::vector<char>& keep) const {
  Restriction out;
  for (VertexId v = 0; v < numVertices(); ++v) {
    if (keep[static_cast<std::size_t>(v)]) {
      out.toOriginal.push_back(v);
      out.rep.intervals_.push_back(interval(v));
    }
  }
  return out;
}

IntervalRepresentation IntervalRepresentation::normalized() const {
  std::vector<int> coords;
  coords.reserve(intervals_.size() * 2);
  for (const Interval& iv : intervals_) {
    coords.push_back(iv.l);
    coords.push_back(iv.r);
  }
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
  auto rank = [&coords](int x) {
    return static_cast<int>(std::lower_bound(coords.begin(), coords.end(), x) -
                            coords.begin());
  };
  std::vector<Interval> iv;
  iv.reserve(intervals_.size());
  for (const Interval& old : intervals_) {
    iv.push_back(Interval{rank(old.l), rank(old.r)});
  }
  return IntervalRepresentation(std::move(iv));
}

std::string IntervalRepresentation::toString() const {
  std::ostringstream os;
  for (VertexId v = 0; v < numVertices(); ++v) {
    os << v << ": [" << interval(v).l << ", " << interval(v).r << "]\n";
  }
  return os.str();
}

int PathDecomposition::width() const {
  int w = -1;
  for (const auto& b : bags_) w = std::max(w, static_cast<int>(b.size()) - 1);
  return w;
}

bool PathDecomposition::isValidFor(const Graph& g) const {
  const auto n = static_cast<std::size_t>(g.numVertices());
  std::vector<int> first(n, -1);
  std::vector<int> last(n, -1);
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    for (VertexId v : bags_[i]) {
      if (v < 0 || v >= g.numVertices()) return false;
      if (first[static_cast<std::size_t>(v)] == -1) {
        first[static_cast<std::size_t>(v)] = static_cast<int>(i);
      }
      last[static_cast<std::size_t>(v)] = static_cast<int>(i);
    }
  }
  // Every vertex appears somewhere.
  for (std::size_t v = 0; v < n; ++v) {
    if (first[v] == -1) return false;
  }
  // (P2): occurrences are exactly the interval [first, last].
  std::vector<std::vector<char>> present(bags_.size(), std::vector<char>(n, 0));
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    for (VertexId v : bags_[i]) {
      if (present[i][static_cast<std::size_t>(v)]) return false;  // duplicate in bag
      present[i][static_cast<std::size_t>(v)] = 1;
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    for (int i = first[v]; i <= last[v]; ++i) {
      if (!present[static_cast<std::size_t>(i)][v]) return false;
    }
  }
  // (P1): each edge inside some bag <=> intervals overlap for path decomps.
  for (const Edge& e : g.edges()) {
    const auto u = static_cast<std::size_t>(e.u);
    const auto w = static_cast<std::size_t>(e.v);
    const int lo = std::max(first[u], first[w]);
    const int hi = std::min(last[u], last[w]);
    if (lo > hi) return false;
  }
  return true;
}

std::string PathDecomposition::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    os << "X_" << i + 1 << " = {";
    for (std::size_t j = 0; j < bags_[i].size(); ++j) {
      if (j > 0) os << ", ";
      os << bags_[i][j];
    }
    os << "}\n";
  }
  return os.str();
}

IntervalRepresentation toIntervalRepresentation(const PathDecomposition& pd,
                                                VertexId numVertices) {
  std::vector<Interval> iv(static_cast<std::size_t>(numVertices),
                           Interval{-1, -1});
  for (std::size_t i = 0; i < pd.numBags(); ++i) {
    for (VertexId v : pd.bag(i)) {
      auto& x = iv[static_cast<std::size_t>(v)];
      if (x.l == -1) x.l = static_cast<int>(i);
      x.r = static_cast<int>(i);
    }
  }
  for (const Interval& x : iv) {
    if (x.l == -1) {
      throw std::invalid_argument(
          "toIntervalRepresentation: vertex missing from decomposition");
    }
  }
  return IntervalRepresentation(std::move(iv));
}

PathDecomposition toPathDecomposition(const IntervalRepresentation& rep) {
  const IntervalRepresentation norm = rep.normalized();
  int maxCoord = -1;
  for (const Interval& iv : norm.intervals()) maxCoord = std::max(maxCoord, iv.r);
  std::vector<std::vector<VertexId>> bags(static_cast<std::size_t>(maxCoord + 1));
  for (VertexId v = 0; v < norm.numVertices(); ++v) {
    const Interval& iv = norm.interval(v);
    for (int i = iv.l; i <= iv.r; ++i) {
      bags[static_cast<std::size_t>(i)].push_back(v);
    }
  }
  return PathDecomposition(std::move(bags));
}

}  // namespace lanecert
