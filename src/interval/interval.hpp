#pragma once
// Interval representations (Definition 4.1) and path decompositions
// (Definition 1.1), with validation and conversions in both directions.
//
// A graph has pathwidth k iff it has an interval representation of width
// k+1, where the width is the maximum number of intervals sharing a point
// (note the paper's off-by-one: decomposition width is max bag size minus
// one, interval width is max coverage).

#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace lanecert {

/// Closed integer interval [l, r], non-empty (l <= r).
struct Interval {
  int l = 0;
  int r = 0;

  /// True if the two intervals share at least one point.
  [[nodiscard]] bool overlaps(const Interval& o) const {
    return l <= o.r && o.l <= r;
  }
  /// Strict precedence (the paper's `≺`): this ends before `o` begins.
  [[nodiscard]] bool before(const Interval& o) const { return r < o.l; }
  /// True if `x` lies inside the interval.
  [[nodiscard]] bool contains(int x) const { return l <= x && x <= r; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

/// An interval representation: one non-empty interval per vertex such that
/// the intervals of adjacent vertices overlap (Definition 4.1).
class IntervalRepresentation {
 public:
  IntervalRepresentation() = default;
  explicit IntervalRepresentation(std::vector<Interval> intervals)
      : intervals_(std::move(intervals)) {}

  /// Builds from plain (L, R) pairs (e.g. generator output).
  static IntervalRepresentation fromPairs(
      const std::vector<std::pair<int, int>>& pairs);

  [[nodiscard]] VertexId numVertices() const {
    return static_cast<VertexId>(intervals_.size());
  }
  [[nodiscard]] const Interval& interval(VertexId v) const {
    return intervals_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<Interval>& intervals() const {
    return intervals_;
  }

  /// Maximum number of intervals sharing a point (0 for empty).
  [[nodiscard]] int width() const;

  /// True if this is a valid representation OF `g`: one interval per vertex,
  /// every interval non-empty, and endpoints of every edge overlap.
  [[nodiscard]] bool isValidFor(const Graph& g) const;

  struct Restriction;
  /// Restriction to a vertex subset; `keep[v]` selects vertices.  Returns
  /// the restricted representation plus the mapping new-index -> old vertex.
  [[nodiscard]] Restriction restrictTo(const std::vector<char>& keep) const;

  /// Rewrites coordinates to 0..D-1 preserving the overlap structure.
  [[nodiscard]] IntervalRepresentation normalized() const;

  /// Human-readable listing "v: [l, r]" per line.
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<Interval> intervals_;
};

/// Result of IntervalRepresentation::restrictTo.
struct IntervalRepresentation::Restriction {
  IntervalRepresentation rep;
  std::vector<VertexId> toOriginal;  ///< new index -> original vertex id
};

/// A path decomposition: a sequence of bags satisfying (P1) every edge is
/// inside some bag, and (P2) every vertex's occurrences are consecutive.
class PathDecomposition {
 public:
  PathDecomposition() = default;
  explicit PathDecomposition(std::vector<std::vector<VertexId>> bags)
      : bags_(std::move(bags)) {}

  [[nodiscard]] std::size_t numBags() const { return bags_.size(); }
  [[nodiscard]] const std::vector<VertexId>& bag(std::size_t i) const {
    return bags_[i];
  }
  [[nodiscard]] const std::vector<std::vector<VertexId>>& bags() const {
    return bags_;
  }

  /// max |bag| - 1; -1 for the empty decomposition.
  [[nodiscard]] int width() const;

  /// Checks (P1), (P2), and that every vertex of `g` appears in some bag.
  [[nodiscard]] bool isValidFor(const Graph& g) const;

  /// Human-readable listing "X_i = {..}" per line.
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<std::vector<VertexId>> bags_;
};

/// Converts a path decomposition into the equivalent interval representation
/// (vertex v gets [first bag containing v, last bag containing v]).
/// Precondition: the decomposition satisfies (P2) and covers all vertices.
[[nodiscard]] IntervalRepresentation toIntervalRepresentation(
    const PathDecomposition& pd, VertexId numVertices);

/// Converts an interval representation into the equivalent path
/// decomposition (one bag per distinct coordinate, after normalization).
[[nodiscard]] PathDecomposition toPathDecomposition(
    const IntervalRepresentation& rep);

}  // namespace lanecert
