#pragma once
// Deterministic pipelined-stage helpers on top of the WorkerPool/
// ParallelExecutor seam: the building blocks the prover uses to overlap its
// serial head (plan + hierarchy construction) with wave execution.
//
//  * StageFeed<T> — a single-producer single-consumer publication channel
//    over an EXTERNALLY owned, address-stable item array.  The producer
//    appends items and publishes a monotonically growing count; the
//    consumer awaits new items and reads them directly (no copies, no
//    queue).  Publication happens under a mutex, so every field of a
//    published item is visible to the consumer (happens-before); the
//    contract is that the producer never rewrites a published item's
//    consumer-visible fields and never reallocates the array (reserve the
//    upper bound up front).
//
//  * StealableTask — a one-shot task that is POSTED to a WorkerPool for
//    overlap but can be CLAIMED inline by whoever joins it first.  This is
//    the deadlock-free shape for pipelined stages on a shared pool: if
//    every worker is busy (or the pool has none), join() runs the task on
//    the joining thread and the pipeline degrades to the serial order
//    instead of waiting on a thread that will never come.
//
// Neither helper imposes an execution order beyond publish/await, so any
// stage graph built from them computes the same values as its serial
// schedule — determinism lives in the stages themselves (pure per-slot
// writes), exactly like ParallelExecutor::forShards.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "runtime/executor.hpp"

namespace lanecert {

/// Single-producer single-consumer publication of a growing item array.
template <typename T>
class StageFeed {
 public:
  /// Consumer-side snapshot of the feed.
  struct Progress {
    std::size_t published = 0;  ///< items safe to read
    bool done = false;          ///< no further publications will come
  };

  /// Producer: attaches the address-stable item array.  Must precede the
  /// first publish; the array must stay valid (and never reallocate) until
  /// the consumer is joined.
  void open(const T* items) {
    std::lock_guard<std::mutex> lock(mu_);
    items_ = items;
  }

  /// Producer: makes items [0, count) visible.  Monotone; idempotent.
  void publish(std::size_t count) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (count <= published_) return;
      published_ = count;
    }
    cv_.notify_all();
  }

  /// Producer: no more items will be published.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Producer: aborts the feed; the consumer's next await rethrows `e`.
  void fail(std::exception_ptr e) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::move(e);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Consumer: the attached array (valid once anything was published).
  [[nodiscard]] const T* items() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_;
  }

  /// Consumer: blocks until more than `have` items are published or the
  /// feed is closed; rethrows the producer's error if it failed.
  [[nodiscard]] Progress awaitBeyond(std::size_t have) const {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return published_ > have || closed_; });
    if (error_) std::rethrow_exception(error_);
    return Progress{published_, closed_ && published_ <= have};
  }

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  const T* items_ = nullptr;
  std::size_t published_ = 0;
  bool closed_ = false;
  std::exception_ptr error_;
};

/// One-shot stage task: post it to a pool for overlap, join it to steal it
/// inline if no worker picked it up yet.  Create via std::make_shared (the
/// posted closure keeps the task alive past the owner's scope).
class StealableTask : public std::enable_shared_from_this<StealableTask> {
 public:
  explicit StealableTask(std::function<void()> fn) : fn_(std::move(fn)) {}

  /// Posts a claim-and-run wrapper at the BACK of the pool queue, behind
  /// in-flight fork-join helpers (overlap is opportunistic — a busy pool
  /// simply leaves the task for join() to steal).
  void postTo(WorkerPool& pool) {
    pool.post([self = shared_from_this()] {
      if (self->tryClaim()) self->runClaimed();
    });
  }

  /// Runs the task inline if it is still unclaimed, then blocks until it
  /// has finished (wherever it ran) and rethrows its exception, if any.
  void join() {
    if (tryClaim()) runClaimed();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    if (error_) std::rethrow_exception(error_);
  }

 private:
  [[nodiscard]] bool tryClaim() {
    return !claimed_.exchange(true, std::memory_order_acq_rel);
  }

  void runClaimed() {
    try {
      fn_();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      error_ = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_all();
  }

  std::function<void()> fn_;
  std::atomic<bool> claimed_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  std::exception_ptr error_;
};

}  // namespace lanecert
