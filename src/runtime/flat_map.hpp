#pragma once
// Small sorted flat containers for per-vertex verifier state.
//
// The core verifier tracks a handful of summaries per vertex (bounded by
// the chain-length bound 2w + 2 times the degree), so node-based std::map /
// std::set are pure overhead: every insert allocates, every lookup chases
// pointers.  These containers keep entries in one sorted vector —
// binary-search lookups, inserts shift a few elements, and clear() keeps
// the capacity so a reused scratch instance stops allocating after the
// first few vertices.

#include <algorithm>
#include <utility>
#include <vector>

namespace lanecert {

/// Sorted vector map with std::map-like semantics for small element counts.
template <typename K, typename V>
class FlatMap {
 public:
  using Entry = std::pair<K, V>;

  void clear() { entries_.clear(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] V* find(const K& key) {
    const auto it = lower(key);
    return (it != entries_.end() && it->first == key) ? &it->second : nullptr;
  }
  [[nodiscard]] const V* find(const K& key) const {
    return const_cast<FlatMap*>(this)->find(key);
  }

  /// Inserts (key, value) if absent; returns {slot, inserted}.
  std::pair<V*, bool> tryEmplace(const K& key, V value) {
    const auto it = lower(key);
    if (it != entries_.end() && it->first == key) return {&it->second, false};
    const auto at = entries_.emplace(it, key, std::move(value));
    return {&at->second, true};
  }

  /// Inserts or overwrites.
  void insertOrAssign(const K& key, V value) {
    const auto it = lower(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
    } else {
      entries_.emplace(it, key, std::move(value));
    }
  }

  [[nodiscard]] auto begin() const { return entries_.begin(); }
  [[nodiscard]] auto end() const { return entries_.end(); }
  [[nodiscard]] auto begin() { return entries_.begin(); }
  [[nodiscard]] auto end() { return entries_.end(); }

 private:
  typename std::vector<Entry>::iterator lower(const K& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, const K& k) { return e.first < k; });
  }

  std::vector<Entry> entries_;
};

}  // namespace lanecert
