#include "runtime/topology.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

namespace lanecert {

namespace {

/// Nodes are probed by id rather than by directory listing: the kernel
/// numbers online nodes densely from 0 in practice, and a fixed probe
/// ceiling keeps detection allocation-light and directory-API-free.
constexpr int kMaxProbedNodes = 256;

bool readFile(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

std::vector<int> parseCpuList(std::string_view text) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto skipSpace = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r')) {
      ++i;
    }
  };
  const auto parseInt = [&](int& out) {
    skipSpace();
    if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
    long v = 0;
    while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
      v = v * 10 + (text[i] - '0');
      if (v > 1 << 20) return false;  // implausible CPU id: treat as garbage
      ++i;
    }
    out = static_cast<int>(v);
    return true;
  };
  while (true) {
    int lo = 0;
    if (!parseInt(lo)) break;
    int hi = lo;
    skipSpace();
    if (i < text.size() && text[i] == '-') {
      ++i;
      if (!parseInt(hi) || hi < lo) break;
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    skipSpace();
    if (i >= text.size() || text[i] != ',') break;
    ++i;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

NumaTopology NumaTopology::singleNode() {
  NumaNode node;
  node.id = 0;
  const unsigned hw = std::thread::hardware_concurrency();
  node.cpus.reserve(hw);
  for (unsigned c = 0; c < hw; ++c) node.cpus.push_back(static_cast<int>(c));
  return NumaTopology({std::move(node)});
}

NumaTopology NumaTopology::forTesting(std::vector<NumaNode> nodes) {
  if (nodes.empty()) return singleNode();
  return NumaTopology(std::move(nodes));
}

NumaTopology NumaTopology::fromSysfs(const std::string& nodeDir) {
  std::vector<NumaNode> nodes;
  for (int id = 0; id < kMaxProbedNodes; ++id) {
    std::string text;
    if (!readFile(nodeDir + "/node" + std::to_string(id) + "/cpulist",
                  text)) {
      // Online nodes are numbered densely; the first gap ends the probe.
      break;
    }
    NumaNode node;
    node.id = id;
    node.cpus = parseCpuList(text);
    if (!node.cpus.empty()) nodes.push_back(std::move(node));
  }
  if (nodes.empty()) return singleNode();
  return NumaTopology(std::move(nodes));
}

NumaTopology NumaTopology::detect() {
  return fromSysfs("/sys/devices/system/node");
}

bool pinThreadToNode(const NumaTopology& topo, std::size_t node) {
#ifdef __linux__
  if (node >= topo.nodeCount()) return false;
  const std::vector<int>& cpus = topo.nodes()[node].cpus;
  if (cpus.empty()) return false;
  cpu_set_t mask;
  CPU_ZERO(&mask);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &mask);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(mask), &mask) == 0;
#else
  (void)topo;
  (void)node;
  return false;
#endif
}

}  // namespace lanecert
