#pragma once
// Zero-copy label storage for the simulators, now versioned and mutable.
//
// The seed simulator deep-copied every edge label into each endpoint's view
// (two heap copies per label) and sorted the copies per vertex.  LabelStore
// instead exposes std::string_view slices ALIASING the caller's label
// vector — building a vertex's multiset view costs no label-byte copies at
// all; per vertex we only sort a small array of (pointer, length) slices.
// The caller's labels must stay alive and unmodified while the store (and
// any views derived from it) is in use; the simulators guarantee that for
// the duration of a sweep.
//
// Incremental re-verification (the VerifySession layer) needs the store to
// survive label EDITS between sweeps, so construction-time immutability is
// now a special case rather than the contract:
//
//  * every store carries a VERSION counter, bumped once per applyEdits
//    call, so downstream caches (the serving layer's verify result cache)
//    can tell a mutated store from the one they keyed a result under;
//  * applyEdits(g, edits) rewrites the edited labels — in place when the
//    label already lives in store-owned memory of the same size, otherwise
//    by appending the bytes into an epoch buffer owned by the store (a
//    deque, so previously handed-out views of OTHER labels never move) —
//    and returns the dirty vertex set: the endpoints of the edited edges,
//    ascending and deduplicated, exactly the rows whose multiset views
//    changed.  Caller-owned label bytes are never written through.
//
// VertexLabelIndex is the CSR-style per-vertex index over the store:
// row v holds the sorted label views a vertex sees (incident-edge labels for
// edge schemes, neighbor labels for vertex schemes).  Rows are immutable
// during a sweep, so any number of verifier threads can read them
// concurrently; after applyEdits, refreshIncidentEdgeRows re-fills and
// re-sorts exactly the dirty rows (row lengths never change — the topology
// is fixed — so the refresh is in place in the flattened array).

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace lanecert {

class ParallelExecutor;

/// One label rewrite: edge `edge`'s label becomes `bytes`.
struct EdgeLabelEdit {
  EdgeId edge = kNoEdge;
  std::string bytes;
};

/// View collection over a label vector (no byte copies at construction),
/// mutable through applyEdits and versioned so callers can detect edits.
class LabelStore {
 public:
  LabelStore() = default;
  explicit LabelStore(const std::vector<std::string>& labels);
  /// Builds over caller-provided VIEWS (e.g. slices of a shared-memory
  /// image, src/dist): the pointed-to bytes must stay alive and unmodified
  /// for the store's lifetime, exactly like the label-vector constructor.
  /// Edits repoint individual labels into store-owned epoch storage as
  /// usual; the underlying image bytes are never written through.
  explicit LabelStore(std::vector<std::string_view> views);

  // Movable but not copyable: after applyEdits, views_ aliases the OWNED
  // epoch deque, so a member-wise copy would alias the source's storage
  // and dangle when the source dies.  Moves transfer the deque (string
  // addresses are stable under deque move), so views stay valid.
  LabelStore(const LabelStore&) = delete;
  LabelStore& operator=(const LabelStore&) = delete;
  LabelStore(LabelStore&&) = default;
  LabelStore& operator=(LabelStore&&) = default;

  /// Number of labels.
  [[nodiscard]] std::size_t size() const { return views_.size(); }
  /// Zero-copy view of label `i`; aliases the construction-time vector or,
  /// once edited, a store-owned epoch buffer.
  [[nodiscard]] std::string_view view(std::size_t i) const {
    return views_[i];
  }
  /// Size in bits of the largest label.
  [[nodiscard]] std::size_t maxLabelBits() const { return maxBits_; }
  /// Total size in bits over all labels.
  [[nodiscard]] std::size_t totalLabelBits() const { return totalBits_; }
  /// Bumped once per applyEdits call (0 for a freshly built store).
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Applies `edits` (in order; later edits to the same edge win), bumps
  /// the version once (empty batches are no-ops and bump nothing), and
  /// returns the dirty vertex set — the endpoints of
  /// every edited edge in `g`, ascending, deduplicated.  Label sizes may
  /// grow or shrink freely; maxLabelBits/totalLabelBits are recomputed
  /// exactly.  Throws std::out_of_range for an edit whose edge id is not a
  /// label index — checked up front, so a throwing batch applies NOTHING.
  /// NOT safe concurrently with sweeps over this store.
  std::vector<VertexId> applyEdits(const Graph& g,
                                   std::span<const EdgeLabelEdit> edits);

  /// applyEdits without a topology: identical label rewrites, version bump,
  /// and bit-stat recompute, but NO dirty-set computation.  For processes
  /// that hold labels without the graph (dist workers receive their dirty
  /// rows from the coordinator, which owns the topology).  Same
  /// all-or-nothing validation: a throwing batch applies nothing.
  void applyEditsBlind(std::span<const EdgeLabelEdit> edits);

  /// Epoch slots currently held: live (referenced by some label) plus
  /// garbage (superseded by a later size-changing edit of the same label).
  /// Grows monotonically between compactions under a sustained edit
  /// stream — the soak metric compactEpochs() exists to bound.
  [[nodiscard]] std::size_t epochSlots() const { return owned_.size(); }
  /// Labels whose CURRENT bytes live in store-owned epoch slots (the live
  /// slot count; epochSlots() - ownedLabels() is reclaimable garbage).
  [[nodiscard]] std::size_t ownedLabels() const;
  /// Bytes held across all epoch slots, live and garbage.
  [[nodiscard]] std::size_t epochBytes() const;

  /// Folds the epoch deque: drops every superseded slot and re-packs the
  /// live ones.  Returns the label indices whose bytes MOVED (every
  /// store-owned label) — the caller must refresh any index rows aliasing
  /// those labels before the next sweep reads them.  Content is unchanged,
  /// so the version does NOT bump (downstream result caches stay valid);
  /// a store with no garbage returns empty and moves nothing.  NOT safe
  /// concurrently with sweeps over this store.
  std::vector<std::size_t> compactEpochs();

 private:
  /// Shared body of applyEdits/applyEditsBlind: validates, rewrites,
  /// recomputes bit stats, bumps the version.  Precondition: non-empty.
  void rewriteLabels(std::span<const EdgeLabelEdit> edits);

  std::vector<std::string_view> views_;
  /// Label index -> slot in `owned_`, or -1 while the label still aliases
  /// the construction-time vector.
  std::vector<std::int32_t> slot_;
  /// Epoch buffers holding edited label bytes; a deque so addresses are
  /// stable under growth (outstanding views of other labels stay valid).
  std::deque<std::string> owned_;
  std::uint64_t version_ = 0;
  std::size_t maxBits_ = 0;
  std::size_t totalBits_ = 0;
};

/// CSR index: row v = sorted multiset of label views seen by vertex v.
struct VertexLabelIndex {
  std::vector<std::size_t> rowPtr;     ///< numVertices + 1 entries
  std::vector<std::string_view> rows;  ///< flattened, each row sorted

  /// Sorted label views of vertex `v` (empty span for isolated vertices).
  [[nodiscard]] std::span<const std::string_view> row(VertexId v) const {
    const auto i = static_cast<std::size_t>(v);
    return {rows.data() + rowPtr[i], rowPtr[i + 1] - rowPtr[i]};
  }
};

/// Row v = labels of v's incident edges (edge schemes: labels[a.edge]).
/// Row filling and sorting are sharded over `exec`.
[[nodiscard]] VertexLabelIndex buildIncidentEdgeIndex(const Graph& g,
                                                      const LabelStore& store,
                                                      ParallelExecutor& exec);

/// Row v = labels of v's neighbors (vertex schemes: labels[a.to]).
[[nodiscard]] VertexLabelIndex buildNeighborIndex(const Graph& g,
                                                  const LabelStore& store,
                                                  ParallelExecutor& exec);

/// Re-fills and re-sorts the incident-edge rows of `dirty` vertices from
/// the store's current views; every other row is untouched.  Dirty sets
/// are small (that is the point of incremental re-verification), so this
/// is sequential.
void refreshIncidentEdgeRows(VertexLabelIndex& idx, const Graph& g,
                             const LabelStore& store,
                             std::span<const VertexId> dirty);

}  // namespace lanecert
