#pragma once
// Zero-copy label storage for the simulators.
//
// The seed simulator deep-copied every edge label into each endpoint's view
// (two heap copies per label) and sorted the copies per vertex.  LabelStore
// instead exposes std::string_view slices ALIASING the caller's label
// vector — building a vertex's multiset view costs no label-byte copies at
// all; per vertex we only sort a small array of (pointer, length) slices.
// The caller's labels must stay alive and unmodified while the store (and
// any views derived from it) is in use; the simulators guarantee that for
// the duration of a sweep.
//
// VertexLabelIndex is the CSR-style per-vertex index over the store:
// row v holds the sorted label views a vertex sees (incident-edge labels for
// edge schemes, neighbor labels for vertex schemes).  Rows are immutable
// after construction, so any number of verifier threads can read them
// concurrently.

#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"

namespace lanecert {

class ParallelExecutor;

/// Immutable view collection over a label vector (no byte copies).
class LabelStore {
 public:
  LabelStore() = default;
  explicit LabelStore(const std::vector<std::string>& labels);

  /// Number of labels.
  [[nodiscard]] std::size_t size() const { return views_.size(); }
  /// Zero-copy view of label `i`; aliases the construction-time vector.
  [[nodiscard]] std::string_view view(std::size_t i) const {
    return views_[i];
  }
  /// Size in bits of the largest label.
  [[nodiscard]] std::size_t maxLabelBits() const { return maxBits_; }
  /// Total size in bits over all labels.
  [[nodiscard]] std::size_t totalLabelBits() const { return totalBits_; }

 private:
  std::vector<std::string_view> views_;
  std::size_t maxBits_ = 0;
  std::size_t totalBits_ = 0;
};

/// CSR index: row v = sorted multiset of label views seen by vertex v.
struct VertexLabelIndex {
  std::vector<std::size_t> rowPtr;     ///< numVertices + 1 entries
  std::vector<std::string_view> rows;  ///< flattened, each row sorted

  /// Sorted label views of vertex `v` (empty span for isolated vertices).
  [[nodiscard]] std::span<const std::string_view> row(VertexId v) const {
    const auto i = static_cast<std::size_t>(v);
    return {rows.data() + rowPtr[i], rowPtr[i + 1] - rowPtr[i]};
  }
};

/// Row v = labels of v's incident edges (edge schemes: labels[a.edge]).
/// Row filling and sorting are sharded over `exec`.
[[nodiscard]] VertexLabelIndex buildIncidentEdgeIndex(const Graph& g,
                                                      const LabelStore& store,
                                                      ParallelExecutor& exec);

/// Row v = labels of v's neighbors (vertex schemes: labels[a.to]).
[[nodiscard]] VertexLabelIndex buildNeighborIndex(const Graph& g,
                                                  const LabelStore& store,
                                                  ParallelExecutor& exec);

}  // namespace lanecert
