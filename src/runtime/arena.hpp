#pragma once
// Bump arena for per-shard scratch on the prover/verifier hot paths.
//
// Both pipelines decode or assemble many small, short-lived buffers per
// work item (path-id lists, fold orderings, through-record arrays).  A
// general-purpose allocator pays a round trip per buffer; the arena hands
// out pointers from geometrically growing blocks and recycles ALL of them
// with one reset() that keeps the blocks, so a reused per-thread instance
// stops touching the heap after the first few items.
//
// Only trivially destructible element types are allowed: reset() rewinds
// without running destructors.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <memory_resource>
#include <new>
#include <span>
#include <type_traits>
#include <vector>

namespace lanecert {

class Arena {
 public:
  explicit Arena(std::size_t firstBlockBytes = 4096)
      : firstBlockBytes_(firstBlockBytes == 0 ? 1 : firstBlockBytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw aligned storage; valid until the next reset().  The returned
  /// ABSOLUTE address is aligned to `align` (any power of two, including
  /// over-aligned requests beyond the default new alignment — block bases
  /// are only default-aligned, so alignment is computed on addresses, not
  /// on in-block offsets).  Throws std::bad_alloc on requests that would
  /// overflow the size arithmetic.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes + align < bytes) throw std::bad_alloc{};  // overflow guard
    while (blockIdx_ < blocks_.size()) {
      Block& b = blocks_[blockIdx_];
      const auto base = reinterpret_cast<std::uintptr_t>(b.data.get());
      const std::size_t aligned = alignUp(base + offset_, align) - base;
      if (aligned <= b.size && bytes <= b.size - aligned) {
        offset_ = aligned + bytes;
        return b.data.get() + aligned;
      }
      ++blockIdx_;
      offset_ = 0;
    }
    const std::size_t last = blocks_.empty() ? firstBlockBytes_ / 2
                                             : blocks_.back().size;
    const std::size_t size = std::max(bytes + align, last * 2);
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    blockIdx_ = blocks_.size() - 1;
    const std::size_t aligned =
        alignUp(reinterpret_cast<std::uintptr_t>(blocks_.back().data.get()),
                align) -
        reinterpret_cast<std::uintptr_t>(blocks_.back().data.get());
    offset_ = aligned + bytes;
    return blocks_.back().data.get() + aligned;
  }

  /// A value-initialized span of n elements; valid until the next reset().
  template <typename T>
  [[nodiscard]] std::span<T> allocSpan(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena never runs destructors");
    if (n == 0) return {};
    if (n > static_cast<std::size_t>(-1) / sizeof(T)) throw std::bad_alloc{};
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return {p, n};
  }

  /// Rewinds every block for reuse; keeps the capacity.  Everything handed
  /// out — raw allocations, spans, and pmr containers built on resource()
  /// — is invalidated; pmr container OBJECTS may still be destroyed
  /// afterwards (deallocation through the arena is a no-op), they just must
  /// not be used.
  void reset() {
    blockIdx_ = 0;
    offset_ = 0;
  }

  /// std::pmr view of the arena, for decoding into standard containers
  /// without per-node heap round trips: deallocate is a no-op (reset()
  /// reclaims everything at once).  The resource's lifetime is the arena's.
  [[nodiscard]] std::pmr::memory_resource& resource() { return resource_; }

  /// Total bytes of backing storage (capacity diagnostics for tests).
  [[nodiscard]] std::size_t capacityBytes() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  [[nodiscard]] std::size_t blockCount() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  /// memory_resource adapter over the enclosing arena.
  class Resource final : public std::pmr::memory_resource {
   public:
    explicit Resource(Arena& arena) : arena_(arena) {}

   private:
    void* do_allocate(std::size_t bytes, std::size_t align) override {
      return arena_.allocate(bytes, align);
    }
    void do_deallocate(void*, std::size_t, std::size_t) override {}
    [[nodiscard]] bool do_is_equal(
        const std::pmr::memory_resource& other) const noexcept override {
      return this == &other;
    }

    Arena& arena_;
  };

  /// `align` must be a power of two.
  static std::size_t alignUp(std::size_t x, std::size_t align) {
    return (x + align - 1) & ~(align - 1);
  }

  std::size_t firstBlockBytes_;
  std::vector<Block> blocks_;
  std::size_t blockIdx_ = 0;  ///< block currently being bumped
  std::size_t offset_ = 0;    ///< bump offset inside blocks_[blockIdx_]
  Resource resource_{*this};
};

}  // namespace lanecert
