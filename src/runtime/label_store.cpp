#include "runtime/label_store.hpp"

#include <algorithm>

#include "runtime/executor.hpp"

namespace lanecert {

LabelStore::LabelStore(const std::vector<std::string>& labels) {
  views_.reserve(labels.size());
  for (const std::string& l : labels) {
    views_.emplace_back(l);
    maxBits_ = std::max(maxBits_, l.size() * 8);
    totalBits_ += l.size() * 8;
  }
}

namespace {

/// Shared skeleton: one row per vertex, one entry per arc, entry chosen by
/// `pick(arc)`, rows sorted lexicographically (multiset semantics).
template <typename PickLabel>
VertexLabelIndex buildIndex(const Graph& g, const LabelStore& store,
                            ParallelExecutor& exec, const PickLabel& pick) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  VertexLabelIndex idx;
  idx.rowPtr.resize(n + 1, 0);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    idx.rowPtr[static_cast<std::size_t>(v) + 1] =
        idx.rowPtr[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(g.degree(v));
  }
  idx.rows.resize(idx.rowPtr[n]);
  exec.forShards(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t vi = begin; vi < end; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      std::size_t at = idx.rowPtr[vi];
      for (const Arc& a : g.arcs(v)) {
        idx.rows[at++] = store.view(static_cast<std::size_t>(pick(a)));
      }
      std::sort(idx.rows.begin() + static_cast<std::ptrdiff_t>(idx.rowPtr[vi]),
                idx.rows.begin() + static_cast<std::ptrdiff_t>(at));
    }
  });
  return idx;
}

}  // namespace

VertexLabelIndex buildIncidentEdgeIndex(const Graph& g, const LabelStore& store,
                                        ParallelExecutor& exec) {
  return buildIndex(g, store, exec, [](const Arc& a) { return a.edge; });
}

VertexLabelIndex buildNeighborIndex(const Graph& g, const LabelStore& store,
                                    ParallelExecutor& exec) {
  return buildIndex(g, store, exec, [](const Arc& a) { return a.to; });
}

}  // namespace lanecert
