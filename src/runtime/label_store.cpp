#include "runtime/label_store.hpp"

#include <algorithm>
#include <stdexcept>

#include "runtime/executor.hpp"

namespace lanecert {

LabelStore::LabelStore(const std::vector<std::string>& labels) {
  views_.reserve(labels.size());
  for (const std::string& l : labels) {
    views_.emplace_back(l);
    maxBits_ = std::max(maxBits_, l.size() * 8);
    totalBits_ += l.size() * 8;
  }
  slot_.assign(labels.size(), -1);
}

LabelStore::LabelStore(std::vector<std::string_view> views)
    : views_(std::move(views)) {
  for (const std::string_view v : views_) {
    maxBits_ = std::max(maxBits_, v.size() * 8);
    totalBits_ += v.size() * 8;
  }
  slot_.assign(views_.size(), -1);
}

void LabelStore::rewriteLabels(std::span<const EdgeLabelEdit> edits) {
  // Validate BEFORE mutating: the only failure mode is an out-of-range
  // edge id, so checking up front makes the whole batch all-or-nothing (a
  // throw never leaves the store half-edited with stale index rows).
  for (const EdgeLabelEdit& edit : edits) {
    if (edit.edge < 0 ||
        static_cast<std::size_t>(edit.edge) >= views_.size()) {
      throw std::out_of_range("LabelStore::applyEdits: edge id out of range");
    }
  }
  for (const EdgeLabelEdit& edit : edits) {
    const auto i = static_cast<std::size_t>(edit.edge);
    if (slot_[i] >= 0 &&
        owned_[static_cast<std::size_t>(slot_[i])].size() ==
            edit.bytes.size()) {
      // Same-size rewrite of a store-owned label: update the row in place.
      // Outstanding views of label i (the CSR rows of its endpoints) keep
      // pointing at the same bytes and see the new content; their sort
      // position may change, which is what the dirty set reports.
      owned_[static_cast<std::size_t>(slot_[i])].assign(edit.bytes);
    } else {
      // Size changed, or the label still aliases caller memory (which is
      // never written through): append into a fresh epoch slot.  The deque
      // keeps every previously handed-out address stable.
      owned_.push_back(edit.bytes);
      slot_[i] = static_cast<std::int32_t>(owned_.size() - 1);
      views_[i] = owned_.back();
    }
  }
  // Exact bit stats: a shrink can retire the previous maximum, so recompute
  // from the views (a size scan — negligible next to any re-verification).
  maxBits_ = 0;
  totalBits_ = 0;
  for (const std::string_view v : views_) {
    maxBits_ = std::max(maxBits_, v.size() * 8);
    totalBits_ += v.size() * 8;
  }
  ++version_;
}

std::vector<VertexId> LabelStore::applyEdits(
    const Graph& g, std::span<const EdgeLabelEdit> edits) {
  // An empty batch mutates nothing — same store, same version (the serving
  // layer uses empty batches as "run the initial sweep" requests).
  if (edits.empty()) return {};
  rewriteLabels(edits);
  std::vector<VertexId> dirty;
  dirty.reserve(edits.size() * 2);
  for (const EdgeLabelEdit& edit : edits) {
    const Edge& e = g.edge(edit.edge);
    dirty.push_back(e.u);
    dirty.push_back(e.v);
  }
  std::sort(dirty.begin(), dirty.end());
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  return dirty;
}

void LabelStore::applyEditsBlind(std::span<const EdgeLabelEdit> edits) {
  if (edits.empty()) return;
  rewriteLabels(edits);
}

std::size_t LabelStore::ownedLabels() const {
  std::size_t live = 0;
  for (const std::int32_t s : slot_) live += (s >= 0) ? 1u : 0u;
  return live;
}

std::size_t LabelStore::epochBytes() const {
  std::size_t bytes = 0;
  for (const std::string& s : owned_) bytes += s.size();
  return bytes;
}

std::vector<std::size_t> LabelStore::compactEpochs() {
  const std::size_t live = ownedLabels();
  if (owned_.size() == live) return {};  // no garbage: keep addresses stable
  std::deque<std::string> packed;
  std::vector<std::size_t> moved;
  moved.reserve(live);
  for (std::size_t i = 0; i < slot_.size(); ++i) {
    if (slot_[i] < 0) continue;  // still aliases the construction vector
    packed.push_back(std::move(owned_[static_cast<std::size_t>(slot_[i])]));
    slot_[i] = static_cast<std::int32_t>(packed.size() - 1);
    views_[i] = packed.back();
    moved.push_back(i);
  }
  owned_ = std::move(packed);
  return moved;
}

namespace {

/// Shared skeleton: one row per vertex, one entry per arc, entry chosen by
/// `pick(arc)`, rows sorted lexicographically (multiset semantics).
template <typename PickLabel>
VertexLabelIndex buildIndex(const Graph& g, const LabelStore& store,
                            ParallelExecutor& exec, const PickLabel& pick) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  VertexLabelIndex idx;
  idx.rowPtr.resize(n + 1, 0);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    idx.rowPtr[static_cast<std::size_t>(v) + 1] =
        idx.rowPtr[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(g.degree(v));
  }
  idx.rows.resize(idx.rowPtr[n]);
  exec.forShards(n, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t vi = begin; vi < end; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      std::size_t at = idx.rowPtr[vi];
      for (const Arc& a : g.arcs(v)) {
        idx.rows[at++] = store.view(static_cast<std::size_t>(pick(a)));
      }
      std::sort(idx.rows.begin() + static_cast<std::ptrdiff_t>(idx.rowPtr[vi]),
                idx.rows.begin() + static_cast<std::ptrdiff_t>(at));
    }
  });
  return idx;
}

}  // namespace

VertexLabelIndex buildIncidentEdgeIndex(const Graph& g, const LabelStore& store,
                                        ParallelExecutor& exec) {
  return buildIndex(g, store, exec, [](const Arc& a) { return a.edge; });
}

VertexLabelIndex buildNeighborIndex(const Graph& g, const LabelStore& store,
                                    ParallelExecutor& exec) {
  return buildIndex(g, store, exec, [](const Arc& a) { return a.to; });
}

void refreshIncidentEdgeRows(VertexLabelIndex& idx, const Graph& g,
                             const LabelStore& store,
                             std::span<const VertexId> dirty) {
  for (const VertexId v : dirty) {
    const auto vi = static_cast<std::size_t>(v);
    std::size_t at = idx.rowPtr[vi];
    for (const Arc& a : g.arcs(v)) {
      idx.rows[at++] = store.view(static_cast<std::size_t>(a.edge));
    }
    std::sort(idx.rows.begin() + static_cast<std::ptrdiff_t>(idx.rowPtr[vi]),
              idx.rows.begin() + static_cast<std::ptrdiff_t>(at));
  }
}

}  // namespace lanecert
