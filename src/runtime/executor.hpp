#pragma once
// Deterministic fork-join executor for the verification hot path.
//
// The paper's verifier is strictly local, so whole-graph verification is
// embarrassingly parallel: every vertex check is a pure function of one
// vertex's view.  The executor exploits that while keeping results
// bit-identical to a sequential left-to-right sweep: work is split into
// CONTIGUOUS, ORDERED shards whose per-shard outputs the caller merges by
// ascending shard index.  Shard boundaries depend only on (n, shardCount),
// never on thread scheduling, so `numThreads = 1` and `numThreads = 8`
// produce the same merged result on every input.
//
// Workers pull shard indices from an atomic counter and the calling thread
// participates, so requesting more shards than cores (or running on a
// single-core box) is safe — it only changes who executes a shard, not what
// the shard computes.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lanecert {

/// Resolves a thread-count knob: values <= 0 mean "use the hardware".
[[nodiscard]] int resolveThreadCount(int requested);

/// Fixed-size pool of `numThreads - 1` workers plus the calling thread.
class ParallelExecutor {
 public:
  /// `numThreads <= 0` resolves to std::thread::hardware_concurrency().
  explicit ParallelExecutor(int numThreads = 0);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] int numThreads() const { return numThreads_; }

  /// fn(shard, begin, end): shard `s` covers the half-open index range
  /// [begin, end).  Shards partition [0, n) contiguously in order, one per
  /// thread slot; fn is invoked at most once per shard, possibly
  /// concurrently.  Exceptions thrown by fn are rethrown here (first one
  /// wins).  Blocks until every shard has finished.
  void forShards(
      std::size_t n,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& fn);

  /// The half-open item range of `shard` out of `shards` over [0, n);
  /// deterministic in its arguments alone.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> shardRange(
      std::size_t n, std::size_t shards, std::size_t shard);

 private:
  struct Job;

  void workerLoop();

  const int numThreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_;
  std::uint64_t generation_ = 0;         ///< bumped per forShards call
  bool stopping_ = false;
  std::shared_ptr<Job> job_;             ///< in-flight call, if any
};

}  // namespace lanecert
