#pragma once
// Deterministic parallel execution for the prover/verifier hot paths, built
// in two layers:
//
//  * WorkerPool — a long-lived pool of parked worker threads draining a
//    two-priority task queue.  It knows nothing about shards or
//    determinism; it only runs closures.  One pool can be shared by many
//    concurrent pipelines (the batched serving layer multiplexes every
//    in-flight job's shard waves over a single pool, amortizing thread
//    wake-ups across requests).
//
//  * ParallelExecutor — the deterministic fork-join primitive the rest of
//    the codebase calls.  Work is split into CONTIGUOUS, ORDERED shards
//    whose per-shard outputs the caller merges by ascending shard index.
//    Shard boundaries depend only on (n, shardCount), never on thread
//    scheduling, so `numThreads = 1` and `numThreads = 8` produce the same
//    merged result on every input.  An executor either OWNS a private pool
//    (the classic `ParallelExecutor(numThreads)` used by standalone calls)
//    or BORROWS a shared WorkerPool (the serving path) — the fork-join
//    semantics are identical either way.
//
// Workers pull shard indices from an atomic counter and the calling thread
// participates, so requesting more shards than cores (or running on a
// single-core box) is safe — it only changes who executes a shard, not what
// the shard computes.  Because the caller always participates, a pool
// thread may itself issue forShards on the pool it runs on without
// deadlock: it claims every unclaimed shard itself if no other worker is
// free.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace lanecert {

class NumaTopology;

/// Resolves a thread-count knob: values <= 0 mean "use the hardware".
[[nodiscard]] int resolveThreadCount(int requested);

/// Long-lived pool of parked worker threads over a two-priority FIFO queue.
///
/// `post` enqueues at the back; `postUrgent` enqueues at the FRONT, which
/// forShards uses for shard helpers so in-flight fork-join waves complete
/// before queued coarse-grained tasks (e.g. new serving jobs) are admitted.
/// Tasks must not block waiting for OTHER queued tasks except through the
/// forShards caller-participation protocol above.
///
/// The destructor stops the workers after their current task and DISCARDS
/// anything still queued; owners that queue meaningful work (the batch
/// scheduler) must drain before destruction.
class WorkerPool {
 public:
  /// Spawns exactly `workers` threads (0 is allowed: post() then only
  /// stores tasks for callers that execute them inline, which
  /// ParallelExecutor does).
  ///
  /// When `pinTopology` names a MULTI-node topology, worker i pins itself
  /// (best-effort) to node (i + 1) % nodeCount — the +1 leaves node 0 to
  /// the caller-participation slot — matching NumaTopology::nodeOfShard's
  /// round-robin so per-node label replicas land next to their readers in
  /// steady state.  The topology is read during construction only; pinning
  /// is advisory and single-node topologies (or null) change nothing.
  /// Shard CONTENT never depends on placement (dynamic claiming over
  /// deterministic ranges), so this is purely a locality lever.
  explicit WorkerPool(int workers, const NumaTopology* pinTopology = nullptr);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] int workerCount() const {
    return static_cast<int>(workers_.size());
  }

  void post(std::function<void()> task);
  void postUrgent(std::function<void()> task);
  /// Posts `count` copies of `task` at the front under ONE lock acquisition
  /// and ONE wake broadcast (the fork-join fast path).
  void postUrgentCopies(std::size_t count, const std::function<void()>& task);

 private:
  void workerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

/// Deterministic fork-join over an owned or borrowed WorkerPool.
class ParallelExecutor {
 public:
  /// Owns a private pool of `numThreads - 1` workers; the calling thread is
  /// the remaining slot.  `numThreads <= 0` resolves to
  /// std::thread::hardware_concurrency().  `pinTopology` is forwarded to
  /// the owned WorkerPool (see there); null skips pinning.
  explicit ParallelExecutor(int numThreads = 0,
                            const NumaTopology* pinTopology = nullptr);
  /// Borrows `pool`; shards = pool.workerCount() + 1 (the caller
  /// participates).  The pool must outlive the executor.  Cheap to
  /// construct — the serving layer makes one per job.
  explicit ParallelExecutor(WorkerPool& pool);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] int numThreads() const { return numThreads_; }

  /// The underlying pool (owned or borrowed) — pipelined stages post
  /// overlap tasks here (see runtime/pipeline.hpp).  Never null.
  [[nodiscard]] WorkerPool& workerPool() const { return *pool_; }

  /// fn(shard, begin, end): shard `s` covers the half-open index range
  /// [begin, end).  Shards partition [0, n) contiguously in order, one per
  /// thread slot; fn is invoked at most once per shard, possibly
  /// concurrently.  Exceptions thrown by fn are rethrown here (first one
  /// wins).  Blocks until every shard has finished.
  void forShards(
      std::size_t n,
      const std::function<void(std::size_t shard, std::size_t begin,
                               std::size_t end)>& fn);

  /// The half-open item range of `shard` out of `shards` over [0, n);
  /// deterministic in its arguments alone.  This is THE partition contract
  /// of the repository: in-process sweeps shard by it, and the dist layer
  /// uses the same function for its per-process vertex partitions
  /// (src/dist/dist_verifier.hpp) — so byte-identity across process counts
  /// rests on this mapping never depending on anything but (n, shards,
  /// shard).  Changing it is a cross-layer breaking change.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> shardRange(
      std::size_t n, std::size_t shards, std::size_t shard);

 private:
  struct Job;

  std::unique_ptr<WorkerPool> owned_;  ///< null when borrowing
  WorkerPool* pool_;                   ///< owned_.get() or the borrowed pool
  int numThreads_;
};

}  // namespace lanecert
