#pragma once
// Hardware topology awareness for the threading seam.
//
// The deterministic executor makes shard CONTENT independent of placement
// (contiguous ordered shards, dynamic claiming), so topology can only ever
// be a performance lever here, never a correctness one.  This header keeps
// the lever explicit and testable:
//
//  * NumaTopology — the machine's NUMA nodes and their CPU lists, detected
//    from sysfs (/sys/devices/system/node/node*/cpulist).  Detection never
//    fails: anything unreadable (non-Linux, sandboxed sysfs, single-socket
//    boxes) degrades to ONE node holding every CPU, which downstream code
//    treats as "topology-blind" and skips all placement work.  No libnuma —
//    parsing two sysfs files is the whole dependency.
//  * pinThreadToNode — best-effort sched_setaffinity of the calling thread
//    onto one node's CPUs.  Advisory: a false return leaves the thread
//    where it was and callers proceed identically.
//
// Placement policy (used by WorkerPool pinning and the VerifySession label
// replicas) is deliberately deterministic in the inputs alone:
// nodeOfShard(s) = s % nodeCount, matching how ParallelExecutor's shard
// indices map onto worker threads in steady state.  Tests inject synthetic
// topologies through forTesting() — the single-node container CI runs on
// exercises the fallback path for real.

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace lanecert {

/// One NUMA node: its sysfs id and the CPUs it owns.
struct NumaNode {
  int id = 0;
  std::vector<int> cpus;  ///< ascending, as listed by the kernel
};

class NumaTopology {
 public:
  /// Default: the topology-blind singleNode() — one node owning every CPU
  /// the OS reports.  multiNode() is false, so pinning and replica
  /// mirroring are skipped.  Use detect() for the real machine.
  NumaTopology() : NumaTopology(singleNode()) {}

  /// Reads /sys/devices/system/node; falls back to singleNode() when the
  /// tree is unreadable or lists fewer than one node.  Never throws.
  [[nodiscard]] static NumaTopology detect();
  /// detect() against an alternate sysfs root (tests point this at a
  /// fixture directory; production uses detect()).
  [[nodiscard]] static NumaTopology fromSysfs(const std::string& nodeDir);
  /// One node covering every CPU the OS reports.
  [[nodiscard]] static NumaTopology singleNode();
  /// Synthetic topology for tests (e.g. force two nodes on a one-node box).
  [[nodiscard]] static NumaTopology forTesting(std::vector<NumaNode> nodes);

  [[nodiscard]] std::size_t nodeCount() const { return nodes_.size(); }
  /// True when placement work can pay off at all; single-node machines
  /// skip replica mirroring and pinning entirely.
  [[nodiscard]] bool multiNode() const { return nodes_.size() > 1; }
  [[nodiscard]] const std::vector<NumaNode>& nodes() const { return nodes_; }

  /// Deterministic shard/worker -> node placement: round-robin by index.
  /// Pure function of (shard, nodeCount) so replica selection is identical
  /// across runs and thread counts.
  [[nodiscard]] std::size_t nodeOfShard(std::size_t shard) const {
    return nodes_.empty() ? 0 : shard % nodes_.size();
  }

 private:
  explicit NumaTopology(std::vector<NumaNode> nodes)
      : nodes_(std::move(nodes)) {}

  std::vector<NumaNode> nodes_;
};

/// Parses the kernel's cpulist format ("0-3,8,10-11") into ascending CPU
/// ids.  Malformed input yields the CPUs parsed so far (detection must not
/// throw); whitespace and a trailing newline are tolerated.
[[nodiscard]] std::vector<int> parseCpuList(std::string_view text);

/// Best-effort: pins the CALLING thread to `node`'s CPUs.  Returns false
/// (and changes nothing) off Linux, for an out-of-range node, for a node
/// with no CPUs, or when sched_setaffinity rejects the mask.
bool pinThreadToNode(const NumaTopology& topo, std::size_t node);

}  // namespace lanecert
