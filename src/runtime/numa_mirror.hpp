#pragma once
// Per-NUMA-node replicas of the read-only label plane.
//
// A verification sweep is read-dominated: every vertex check streams its
// incident labels' bytes through the decoder.  On a multi-node machine a
// single LabelStore parks every label on the allocating node, so half the
// sweep's reads cross the interconnect.  NumaLabelMirror clones the label
// plane — label bytes, the versioned LabelStore over them, and the CSR
// vertex index — once per extra node; shards pinned to node k read their
// node's copy and never touch remote label memory.  First-touch placement
// does the actual locating: each replica's bytes are copied (and its index
// built) by the sweep threads of the node that will read them.
//
// Correctness is by construction, not by trust: a replica is maintained
// through the SAME applyEdits entry point as the primary store, so replica
// k's views are byte-identical to the primary's at every version — the
// coherence tests assert exactly that.  Re-mirroring after an edit batch is
// INCREMENTAL: LabelStore::applyEdits rewrites only the edited labels and
// returns the dirty vertex rows, and refreshIncidentEdgeRows re-sorts only
// those rows, so a small edit batch costs O(dirty) per replica, never a
// full re-clone.
//
// The single-node machines this code usually runs on never construct a
// mirror at all (VerifySession gates on multiNode()); tests force replicas
// through a synthetic topology.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "runtime/label_store.hpp"

namespace lanecert {

class ParallelExecutor;

class NumaLabelMirror {
 public:
  /// Clones `primary`'s CURRENT views into `replicas` independent label
  /// planes and builds each replica's incident-edge index over `exec`.
  /// `replicas` = extra nodes (the primary store serves node 0).
  NumaLabelMirror(const Graph& g, const LabelStore& primary,
                  std::size_t replicas, ParallelExecutor& exec);
  ~NumaLabelMirror();

  NumaLabelMirror(const NumaLabelMirror&) = delete;
  NumaLabelMirror& operator=(const NumaLabelMirror&) = delete;

  [[nodiscard]] std::size_t replicaCount() const { return replicas_.size(); }
  /// Replica r's CSR index (rows byte-identical to the primary's).
  [[nodiscard]] const VertexLabelIndex& index(std::size_t r) const {
    return replicas_[r]->index;
  }
  /// Replica r's bytes of edge `e`'s label.
  [[nodiscard]] std::string_view label(std::size_t r, EdgeId e) const {
    return replicas_[r]->store.view(static_cast<std::size_t>(e));
  }
  /// Version of replica r's store (tracks the primary: one bump per
  /// mirrored non-empty batch).
  [[nodiscard]] std::uint64_t version(std::size_t r) const {
    return replicas_[r]->store.version();
  }

  /// Mirrors one edit batch into every replica — the same batch the caller
  /// just applied to the primary, so every plane converges on identical
  /// views.  Incremental: only edited labels are rewritten and only dirty
  /// rows re-sorted, per replica.
  void applyEdits(const Graph& g, std::span<const EdgeLabelEdit> edits);

  /// Folds every replica's epoch garbage (LabelStore::compactEpochs) and
  /// refreshes the index rows of moved labels' endpoints.  Called by the
  /// session whenever it compacts the primary, so replica memory tracks
  /// the primary's bound.  Views stay byte-identical; versions unchanged.
  void compactEpochs(const Graph& g);

  /// Epoch slots summed over replicas (soak diagnostics).
  [[nodiscard]] std::size_t epochSlots() const;

 private:
  struct Replica {
    std::vector<std::string> labels;  ///< replica-owned byte copies
    LabelStore store;                 ///< views over `labels` (then edits)
    VertexLabelIndex index;

    Replica(const Graph& g, const LabelStore& primary, ParallelExecutor& exec);
  };

  /// unique_ptr per replica: LabelStore views alias the sibling `labels`
  /// vector, so replicas must never relocate once built.
  std::vector<std::unique_ptr<Replica>> replicas_;
};

}  // namespace lanecert
