#include "runtime/numa_mirror.hpp"

#include <algorithm>

#include "runtime/executor.hpp"

namespace lanecert {

namespace {

std::vector<std::string> copyViews(const LabelStore& primary) {
  std::vector<std::string> labels;
  labels.reserve(primary.size());
  for (std::size_t i = 0; i < primary.size(); ++i) {
    labels.emplace_back(primary.view(i));
  }
  return labels;
}

}  // namespace

NumaLabelMirror::Replica::Replica(const Graph& g, const LabelStore& primary,
                                  ParallelExecutor& exec)
    : labels(copyViews(primary)), store(labels) {
  index = buildIncidentEdgeIndex(g, store, exec);
}

NumaLabelMirror::NumaLabelMirror(const Graph& g, const LabelStore& primary,
                                 std::size_t replicas, ParallelExecutor& exec) {
  replicas_.reserve(replicas);
  for (std::size_t r = 0; r < replicas; ++r) {
    replicas_.push_back(std::make_unique<Replica>(g, primary, exec));
  }
}

NumaLabelMirror::~NumaLabelMirror() = default;

void NumaLabelMirror::applyEdits(const Graph& g,
                                 std::span<const EdgeLabelEdit> edits) {
  for (const std::unique_ptr<Replica>& r : replicas_) {
    const std::vector<VertexId> dirty = r->store.applyEdits(g, edits);
    refreshIncidentEdgeRows(r->index, g, r->store, dirty);
  }
}

void NumaLabelMirror::compactEpochs(const Graph& g) {
  for (const std::unique_ptr<Replica>& r : replicas_) {
    const std::vector<std::size_t> moved = r->store.compactEpochs();
    if (moved.empty()) continue;
    std::vector<VertexId> touched;
    touched.reserve(moved.size() * 2);
    for (const std::size_t e : moved) {
      const Edge& edge = g.edge(static_cast<EdgeId>(e));
      touched.push_back(edge.u);
      touched.push_back(edge.v);
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());
    refreshIncidentEdgeRows(r->index, g, r->store, touched);
  }
}

std::size_t NumaLabelMirror::epochSlots() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Replica>& r : replicas_) {
    total += r->store.epochSlots();
  }
  return total;
}

}  // namespace lanecert
