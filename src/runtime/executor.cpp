#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "runtime/topology.hpp"

namespace lanecert {

int resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// ---------------------------------------------------------------------------
// WorkerPool

WorkerPool::WorkerPool(int workers, const NumaTopology* pinTopology) {
  workers_.reserve(static_cast<std::size_t>(std::max(workers, 0)));
  // Pinning only pays (and only restricts) across nodes; a single-node
  // topology leaves the scheduler free.  The worker pins ITSELF before its
  // first task so every task it ever runs sees the final placement.
  const bool pin = pinTopology != nullptr && pinTopology->multiNode();
  for (int i = 0; i < workers; ++i) {
    if (pin) {
      const std::size_t node =
          pinTopology->nodeOfShard(static_cast<std::size_t>(i) + 1);
      workers_.emplace_back([this, topo = *pinTopology, node] {
        pinThreadToNode(topo, node);  // advisory; failure changes nothing
        workerLoop();
      });
    } else {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    queue_.clear();  // discarded; owners drain meaningful work first
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void WorkerPool::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

void WorkerPool::postUrgent(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_front(std::move(task));
  }
  wake_.notify_one();
}

void WorkerPool::postUrgentCopies(std::size_t count,
                                  const std::function<void()>& task) {
  if (count == 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::size_t i = 0; i < count; ++i) queue_.push_front(task);
  }
  if (count == 1) {
    wake_.notify_one();
  } else {
    wake_.notify_all();
  }
}

void WorkerPool::workerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

// ---------------------------------------------------------------------------
// ParallelExecutor

// One forShards invocation.  Helper tasks keep a shared_ptr, so a helper
// that runs late (after the caller already returned) only ever touches its
// own invocation's state and exits immediately once all shards are claimed.
struct ParallelExecutor::Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
      nullptr;
  std::size_t n = 0;
  std::size_t shards = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable done;
  std::size_t shardsDone = 0;
  std::exception_ptr firstError;

  void run() {
    while (true) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      const auto [begin, end] = shardRange(n, shards, shard);
      try {
        if (begin < end) (*fn)(shard, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!firstError) firstError = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        ++shardsDone;
      }
      done.notify_one();
    }
  }
};

ParallelExecutor::ParallelExecutor(int numThreads,
                                   const NumaTopology* pinTopology)
    : numThreads_(resolveThreadCount(numThreads)) {
  owned_ = std::make_unique<WorkerPool>(numThreads_ - 1, pinTopology);
  pool_ = owned_.get();
}

ParallelExecutor::ParallelExecutor(WorkerPool& pool)
    : pool_(&pool), numThreads_(pool.workerCount() + 1) {}

ParallelExecutor::~ParallelExecutor() = default;

std::pair<std::size_t, std::size_t> ParallelExecutor::shardRange(
    std::size_t n, std::size_t shards, std::size_t shard) {
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  const std::size_t begin = shard * base + std::min(shard, rem);
  const std::size_t size = base + (shard < rem ? 1 : 0);
  return {begin, begin + size};
}

void ParallelExecutor::forShards(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn) {
  if (n == 0) return;
  if (numThreads_ <= 1 || pool_->workerCount() == 0) {
    fn(0, 0, n);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->shards = static_cast<std::size_t>(numThreads_);
  // No point waking more helpers than there are shards beyond the caller's.
  const std::size_t helpers =
      std::min(job->shards - 1,
               static_cast<std::size_t>(pool_->workerCount()));
  pool_->postUrgentCopies(helpers, [job] { job->run(); });
  job->run();  // the calling thread claims shards too
  std::unique_lock<std::mutex> lock(job->mu);
  job->done.wait(lock, [&] { return job->shardsDone == job->shards; });
  if (job->firstError) std::rethrow_exception(job->firstError);
}

}  // namespace lanecert
