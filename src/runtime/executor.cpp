#include "runtime/executor.hpp"

#include <algorithm>
#include <memory>

namespace lanecert {

int resolveThreadCount(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

// One forShards invocation.  Workers keep a shared_ptr, so a worker that
// wakes up late (or finishes its claim after the caller already returned)
// can only ever touch its own generation's state, never a newer job's.
struct ParallelExecutor::Job {
  const std::function<void(std::size_t, std::size_t, std::size_t)>* fn =
      nullptr;
  std::size_t n = 0;
  std::size_t shards = 0;
  std::atomic<std::size_t> next{0};

  std::mutex mu;
  std::condition_variable done;
  std::size_t shardsDone = 0;
  std::exception_ptr firstError;

  void run() {
    while (true) {
      const std::size_t shard = next.fetch_add(1, std::memory_order_relaxed);
      if (shard >= shards) return;
      const auto [begin, end] = shardRange(n, shards, shard);
      try {
        if (begin < end) (*fn)(shard, begin, end);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mu);
        if (!firstError) firstError = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        ++shardsDone;
      }
      done.notify_one();
    }
  }
};

ParallelExecutor::ParallelExecutor(int numThreads)
    : numThreads_(resolveThreadCount(numThreads)) {
  workers_.reserve(static_cast<std::size_t>(numThreads_ - 1));
  for (int i = 1; i < numThreads_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

std::pair<std::size_t, std::size_t> ParallelExecutor::shardRange(
    std::size_t n, std::size_t shards, std::size_t shard) {
  const std::size_t base = n / shards;
  const std::size_t rem = n % shards;
  const std::size_t begin = shard * base + std::min(shard, rem);
  const std::size_t size = base + (shard < rem ? 1 : 0);
  return {begin, begin + size};
}

void ParallelExecutor::workerLoop() {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
      job = job_;
    }
    if (job) job->run();
  }
}

void ParallelExecutor::forShards(
    std::size_t n, const std::function<void(std::size_t, std::size_t,
                                            std::size_t)>& fn) {
  if (n == 0) return;
  if (numThreads_ <= 1 || workers_.empty()) {
    fn(0, 0, n);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n = n;
  job->shards = static_cast<std::size_t>(numThreads_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();
  job->run();  // the calling thread claims shards too
  std::unique_lock<std::mutex> lock(job->mu);
  job->done.wait(lock, [&] { return job->shardsDone == job->shards; });
  if (job->firstError) std::rethrow_exception(job->firstError);
}

}  // namespace lanecert
