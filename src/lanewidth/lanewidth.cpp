#include "lanewidth/lanewidth.hpp"

#include <algorithm>
#include <stdexcept>

namespace lanecert {

ReplayResult replayConstruction(const ConstructionSequence& seq) {
  ReplayResult out;
  out.graph = Graph(seq.numVertices);
  const int w = seq.numLanes();
  if (w <= 0) throw std::invalid_argument("replay: empty initial path");
  std::vector<char> present(static_cast<std::size_t>(seq.numVertices), 0);
  out.designated = seq.initialPath;
  for (VertexId v : seq.initialPath) {
    if (v < 0 || v >= seq.numVertices) {
      throw std::invalid_argument("replay: initial path vertex out of range");
    }
    if (present[static_cast<std::size_t>(v)]) {
      throw std::invalid_argument("replay: duplicate initial path vertex");
    }
    present[static_cast<std::size_t>(v)] = 1;
  }
  for (int i = 0; i + 1 < w; ++i) {
    out.initialPathEdges.push_back(
        out.graph.addEdge(seq.initialPath[static_cast<std::size_t>(i)],
                          seq.initialPath[static_cast<std::size_t>(i + 1)]));
  }
  for (const ConstructionOp& op : seq.ops) {
    if (op.i < 0 || op.i >= w) throw std::invalid_argument("replay: bad lane i");
    switch (op.kind) {
      case ConstructionOp::Kind::kVInsert: {
        const VertexId v = op.vertex;
        if (v < 0 || v >= seq.numVertices) {
          throw std::invalid_argument("replay: V-insert vertex out of range");
        }
        if (present[static_cast<std::size_t>(v)]) {
          throw std::invalid_argument("replay: V-insert reuses a vertex");
        }
        present[static_cast<std::size_t>(v)] = 1;
        out.vInsertEdges.push_back(
            out.graph.addEdge(v, out.designated[static_cast<std::size_t>(op.i)]));
        out.designated[static_cast<std::size_t>(op.i)] = v;
        break;
      }
      case ConstructionOp::Kind::kEInsert: {
        if (op.j < 0 || op.j >= w) throw std::invalid_argument("replay: bad lane j");
        const VertexId u = out.designated[static_cast<std::size_t>(op.i)];
        const VertexId v = out.designated[static_cast<std::size_t>(op.j)];
        if (u == v) {
          throw std::invalid_argument("replay: E-insert between one vertex");
        }
        out.eInsertEdges.push_back(out.graph.addEdge(u, v));
        break;
      }
    }
  }
  for (char p : present) {
    if (!p) throw std::invalid_argument("replay: unused vertex in universe");
  }
  return out;
}

ConstructionSequence buildConstruction(const Graph& g,
                                       const IntervalRepresentation& rep,
                                       const LanePartition& lanes) {
  if (!rep.isValidFor(g)) {
    throw std::invalid_argument("buildConstruction: rep invalid for g");
  }
  if (!lanes.isValidFor(rep)) {
    throw std::invalid_argument("buildConstruction: lanes invalid for rep");
  }
  ConstructionSequence seq;
  seq.numVertices = g.numVertices();
  for (int i = 0; i < lanes.numLanes(); ++i) {
    seq.initialPath.push_back(lanes.lane(i).front());
  }

  // Events: non-initial vertices valued by L, original edges valued by
  // max(L_u, L_v); vertices are processed before edges on ties.
  struct Event {
    int value = 0;
    bool isVertex = false;
    VertexId vertex = kNoVertex;  // for vertex events
    VertexId u = kNoVertex;       // for edge events
    VertexId v = kNoVertex;
  };
  std::vector<Event> events;
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    if (lanes.indexInLane(v) == 0) continue;  // initial path vertex
    events.push_back(Event{rep.interval(v).l, true, v, kNoVertex, kNoVertex});
  }
  for (const Edge& e : g.edges()) {
    // Skip edges realized by the construction itself: lane edges (E1,
    // consecutive within a lane -> V-insert) and initial path edges (E2,
    // consecutive lane fronts).
    const int lu = lanes.laneOf(e.u);
    const int lv = lanes.laneOf(e.v);
    const int iu = lanes.indexInLane(e.u);
    const int iv = lanes.indexInLane(e.v);
    if (lu == lv && std::abs(iu - iv) == 1) continue;           // E1 edge
    if (iu == 0 && iv == 0 && std::abs(lu - lv) == 1) continue; // E2 edge
    events.push_back(Event{
        std::max(rep.interval(e.u).l, rep.interval(e.v).l), false, kNoVertex,
        e.u, e.v});
  }
  std::stable_sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.value != b.value) return a.value < b.value;
    return a.isVertex && !b.isVertex;  // vertices first
  });
  for (const Event& ev : events) {
    if (ev.isVertex) {
      seq.ops.push_back(ConstructionOp{ConstructionOp::Kind::kVInsert,
                                       lanes.laneOf(ev.vertex), -1, ev.vertex});
    } else {
      seq.ops.push_back(ConstructionOp{ConstructionOp::Kind::kEInsert,
                                       lanes.laneOf(ev.u), lanes.laneOf(ev.v),
                                       kNoVertex});
    }
  }
  return seq;
}

LanewidthWitness constructionWitness(const ConstructionSequence& seq) {
  const ReplayResult replay = replayConstruction(seq);  // validates seq
  LanewidthWitness out;
  const int X = static_cast<int>(seq.ops.size());
  std::vector<Interval> iv(static_cast<std::size_t>(seq.numVertices),
                           Interval{0, X});
  std::vector<std::vector<VertexId>> laneSeq(
      static_cast<std::size_t>(seq.numLanes()));
  std::vector<VertexId> designated = seq.initialPath;
  for (int i = 0; i < seq.numLanes(); ++i) {
    laneSeq[static_cast<std::size_t>(i)].push_back(seq.initialPath[static_cast<std::size_t>(i)]);
  }
  out.gPrime = Graph(seq.numVertices);
  int x = 0;
  for (const ConstructionOp& op : seq.ops) {
    ++x;  // ops are 1-indexed in the proof
    if (op.kind == ConstructionOp::Kind::kVInsert) {
      const VertexId old = designated[static_cast<std::size_t>(op.i)];
      iv[static_cast<std::size_t>(old)].r = x - 1;
      iv[static_cast<std::size_t>(op.vertex)].l = x;
      iv[static_cast<std::size_t>(op.vertex)].r = X;
      designated[static_cast<std::size_t>(op.i)] = op.vertex;
      laneSeq[static_cast<std::size_t>(op.i)].push_back(op.vertex);
    } else {
      out.gPrime.addEdge(designated[static_cast<std::size_t>(op.i)],
                         designated[static_cast<std::size_t>(op.j)]);
    }
  }
  out.rep = IntervalRepresentation(std::move(iv));
  out.lanes = LanePartition(std::move(laneSeq));
  return out;
}

}  // namespace lanecert
