#pragma once
// Lanewidth (Definition 5.1) and Proposition 5.2.
//
// A graph has lanewidth <= w iff it can be built from a w-vertex path
// (τ_1, ..., τ_w) of "designated" vertices using two operations:
//   V-insert(i): add a vertex v with edge {v, τ_i} and set τ_i = v;
//   E-insert(i, j): add the edge {τ_i, τ_j}.
// Proposition 5.2 shows this is equivalent to being the completion of some
// lane-partitioned interval representation; this module implements the
// equivalence constructively in both directions:
//   * `buildConstruction`: (G, I, P)  ->  construction sequence for the
//     completion of (G, I, P)   (Item 2 => Item 1 of the proof);
//   * `constructionWitness`: construction sequence -> (G', I', P') with the
//     replayed graph equal to the completion of (G', I', P')
//     (Item 1 => Item 2).
// `replayConstruction` executes a sequence and is the ground truth both
// directions are tested against.

#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "lane/lane_partition.hpp"

namespace lanecert {

/// One construction step of Definition 5.1, on concrete vertex ids.
struct ConstructionOp {
  enum class Kind {
    kVInsert,  ///< add `vertex` to lane `i` (edge to the old designated)
    kEInsert,  ///< add edge between designated vertices of lanes `i` and `j`
  };
  Kind kind = Kind::kVInsert;
  int i = -1;                  ///< lane index, 0-based
  int j = -1;                  ///< second lane (E-insert only)
  VertexId vertex = kNoVertex; ///< new vertex (V-insert only)
};

/// A full construction: the initial designated path plus the op sequence.
/// All vertex ids refer to one fixed vertex universe [0, numVertices).
struct ConstructionSequence {
  VertexId numVertices = 0;
  std::vector<VertexId> initialPath;  ///< τ_1..τ_w, distinct vertices
  std::vector<ConstructionOp> ops;

  [[nodiscard]] int numLanes() const {
    return static_cast<int>(initialPath.size());
  }
};

/// Result of executing a construction sequence.
struct ReplayResult {
  Graph graph;
  std::vector<VertexId> designated;      ///< final designated vertex per lane
  std::vector<EdgeId> vInsertEdges;      ///< edge ids created by V-inserts
  std::vector<EdgeId> eInsertEdges;      ///< edge ids created by E-inserts
  std::vector<EdgeId> initialPathEdges;  ///< the w-1 initial path edges
};

/// Executes a construction sequence, validating every step (throws
/// std::invalid_argument on malformed sequences: bad lane index, reused
/// vertex, duplicate edge, E-insert between identical designated vertices).
[[nodiscard]] ReplayResult replayConstruction(const ConstructionSequence& seq);

/// Proposition 5.2, Item 2 => Item 1: produces a construction sequence whose
/// replay equals the completion of (g, rep, lanes).  Preconditions:
/// rep.isValidFor(g) and lanes.isValidFor(rep).
[[nodiscard]] ConstructionSequence buildConstruction(
    const Graph& g, const IntervalRepresentation& rep,
    const LanePartition& lanes);

/// Proposition 5.2, Item 1 => Item 2: recovers (G', I', P') from a
/// construction sequence such that the replayed graph is the completion of
/// (G', I', P').  G' contains exactly the E-inserted edges.
struct LanewidthWitness {
  Graph gPrime;
  IntervalRepresentation rep;
  LanePartition lanes;
};
[[nodiscard]] LanewidthWitness constructionWitness(const ConstructionSequence& seq);

}  // namespace lanecert
