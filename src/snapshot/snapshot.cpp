#include "snapshot/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cstdio>
#include <cstring>
#include <exception>
#include <filesystem>
#include <fstream>
#include <limits>
#include <vector>

#include "pls/codec.hpp"

namespace lanecert::snapshot {

namespace {

// ---------------------------------------------------------------------------
// Fixed-width little-endian header fields (endian-independent byte shifts).

void putU32(std::string& out, std::uint32_t x) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

void putU64(std::string& out, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((x >> (8 * i)) & 0xff));
  }
}

std::uint32_t getU32(std::string_view in, std::size_t pos) {
  std::uint32_t x = 0;
  for (int i = 0; i < 4; ++i) {
    x |= static_cast<std::uint32_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  return x;
}

std::uint64_t getU64(std::string_view in, std::size_t pos) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) {
    x |= static_cast<std::uint64_t>(static_cast<unsigned char>(in[pos + i]))
         << (8 * i);
  }
  return x;
}

// ---------------------------------------------------------------------------
// Bounds-checked decode helpers.  All failures throw DecodeError, which
// decodeSnapshot translates into a null plan; nothing here allocates more
// than the validated input can justify.

/// List-length prefix, clamped by the remaining() discipline: every element
/// consumes at least one byte, so a count exceeding the bytes left is a lie
/// and rejects BEFORE any reserve.
std::uint64_t checkedCount(Decoder& d) {
  const std::uint64_t c = d.u64();
  if (c > d.remaining()) throw DecodeError{};
  return c;
}

int checkedInt(std::int64_t v) {
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw DecodeError{};
  }
  return static_cast<int>(v);
}

/// A vertex id in [0, n).
VertexId checkedVertex(std::int64_t v, VertexId n) {
  if (v < 0 || v >= n) throw DecodeError{};
  return static_cast<VertexId>(v);
}

/// A vertex id in [0, n) or the kNoVertex sentinel.
VertexId checkedVertexOrNone(std::int64_t v, VertexId n) {
  if (v == kNoVertex) return kNoVertex;
  return checkedVertex(v, n);
}

/// An index in [0, bound) or -1.
int checkedIndexOrNone(std::int64_t v, std::int64_t bound) {
  if (v < -1 || v >= bound) throw DecodeError{};
  return static_cast<int>(v);
}

// ---------------------------------------------------------------------------
// Section payload codecs.  Encoders write exactly what the matching decoder
// reads; the decoders enforce structural agreement with the graph being
// served (sizes, index ranges) so even a CRC-colliding file cannot steer an
// out-of-bounds access downstream.

void encodeRep(Encoder& e, const IntervalRepresentation& rep) {
  e.u64(static_cast<std::uint64_t>(rep.numVertices()));
  for (const Interval& iv : rep.intervals()) {
    e.i64(iv.l);
    e.i64(iv.r);
  }
}

IntervalRepresentation decodeRep(Decoder& d, VertexId n) {
  if (checkedCount(d) != static_cast<std::uint64_t>(n)) throw DecodeError{};
  std::vector<Interval> intervals;
  intervals.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    const int l = checkedInt(d.i64());
    const int r = checkedInt(d.i64());
    if (l > r) throw DecodeError{};  // intervals are non-empty by definition
    intervals.push_back(Interval{l, r});
  }
  return IntervalRepresentation(std::move(intervals));
}

void encodeLanePlan(Encoder& e, const LanePlan& plan) {
  e.u64(static_cast<std::uint64_t>(plan.lanes.numLanes()));
  for (const auto& lane : plan.lanes.lanes()) {
    e.u64(lane.size());
    for (VertexId v : lane) e.u64(static_cast<std::uint64_t>(v));
  }
  e.u64(plan.embeddings.size());
  for (const EmbeddedEdge& emb : plan.embeddings) {
    e.i64(emb.edge.u);
    e.i64(emb.edge.v);
    e.u64(static_cast<std::uint64_t>(emb.edge.kind));
    e.i64(emb.edge.lane);
    e.u64(emb.path.size());
    for (VertexId v : emb.path) e.u64(static_cast<std::uint64_t>(v));
  }
  e.u64(plan.congestion.size());
  for (int c : plan.congestion) e.i64(c);
  e.i64(plan.maxCongestion);
  e.i64(plan.width);
}

LanePlan decodeLanePlan(Decoder& d, const Graph& g) {
  const VertexId n = g.numVertices();
  LanePlan plan;
  const std::uint64_t numLanes = checkedCount(d);
  std::vector<std::vector<VertexId>> lanes;
  lanes.reserve(numLanes);
  for (std::uint64_t i = 0; i < numLanes; ++i) {
    const std::uint64_t sz = checkedCount(d);
    std::vector<VertexId> lane;
    lane.reserve(sz);
    for (std::uint64_t j = 0; j < sz; ++j) {
      lane.push_back(checkedVertex(static_cast<std::int64_t>(d.u64()), n));
    }
    lanes.push_back(std::move(lane));
  }
  plan.lanes = LanePartition(std::move(lanes));
  const std::uint64_t numEmb = checkedCount(d);
  plan.embeddings.reserve(numEmb);
  for (std::uint64_t i = 0; i < numEmb; ++i) {
    EmbeddedEdge emb;
    emb.edge.u = checkedVertex(d.i64(), n);
    emb.edge.v = checkedVertex(d.i64(), n);
    const std::uint64_t kind = d.u64();
    if (kind > static_cast<std::uint64_t>(CompletionEdge::Kind::kInit)) {
      throw DecodeError{};
    }
    emb.edge.kind = static_cast<CompletionEdge::Kind>(kind);
    emb.edge.lane = checkedIndexOrNone(d.i64(), static_cast<std::int64_t>(numLanes));
    const std::uint64_t pathLen = checkedCount(d);
    emb.path.reserve(pathLen);
    for (std::uint64_t j = 0; j < pathLen; ++j) {
      emb.path.push_back(checkedVertex(static_cast<std::int64_t>(d.u64()), n));
    }
    plan.embeddings.push_back(std::move(emb));
  }
  if (checkedCount(d) != static_cast<std::uint64_t>(g.numEdges())) {
    throw DecodeError{};  // congestion is per EdgeId of the served graph
  }
  plan.congestion.reserve(static_cast<std::size_t>(g.numEdges()));
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    plan.congestion.push_back(checkedInt(d.i64()));
  }
  plan.maxCongestion = checkedInt(d.i64());
  plan.width = checkedInt(d.i64());
  return plan;
}

void encodeConstruction(Encoder& e, const ConstructionSequence& seq) {
  e.u64(static_cast<std::uint64_t>(seq.numVertices));
  e.u64(seq.initialPath.size());
  for (VertexId v : seq.initialPath) e.u64(static_cast<std::uint64_t>(v));
  e.u64(seq.ops.size());
  for (const ConstructionOp& op : seq.ops) {
    e.u64(static_cast<std::uint64_t>(op.kind));
    e.i64(op.i);
    e.i64(op.j);
    e.i64(op.vertex);
  }
}

ConstructionSequence decodeConstruction(Decoder& d, VertexId n) {
  ConstructionSequence seq;
  if (d.u64() != static_cast<std::uint64_t>(n)) throw DecodeError{};
  seq.numVertices = n;
  const std::uint64_t pathLen = checkedCount(d);
  seq.initialPath.reserve(pathLen);
  for (std::uint64_t i = 0; i < pathLen; ++i) {
    seq.initialPath.push_back(
        checkedVertex(static_cast<std::int64_t>(d.u64()), n));
  }
  const std::int64_t numLanes = static_cast<std::int64_t>(pathLen);
  const std::uint64_t numOps = checkedCount(d);
  seq.ops.reserve(numOps);
  for (std::uint64_t i = 0; i < numOps; ++i) {
    ConstructionOp op;
    const std::uint64_t kind = d.u64();
    if (kind > static_cast<std::uint64_t>(ConstructionOp::Kind::kEInsert)) {
      throw DecodeError{};
    }
    op.kind = static_cast<ConstructionOp::Kind>(kind);
    op.i = checkedIndexOrNone(d.i64(), numLanes);
    op.j = checkedIndexOrNone(d.i64(), numLanes);
    op.vertex = checkedVertexOrNone(d.i64(), n);
    seq.ops.push_back(op);
  }
  return seq;
}

void encodeTerminalMap(Encoder& e, const TerminalMap& t) {
  e.u64(t.entries().size());
  for (const auto& [lane, v] : t.entries()) {
    e.i64(lane);
    e.i64(v);
  }
}

TerminalMap decodeTerminalMap(Decoder& d, VertexId n,
                              std::int64_t laneBound) {
  const std::uint64_t count = checkedCount(d);
  std::vector<std::pair<int, VertexId>> entries;
  entries.reserve(count);
  int prevLane = -1;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::int64_t lane = d.i64();
    // Entries are stored sorted with distinct lanes; enforcing strict
    // ascent here is exactly the precondition fromSortedEntries needs, and
    // makes the rebuilt storage identical to what set() would produce.
    if (lane <= prevLane || lane >= laneBound) throw DecodeError{};
    prevLane = static_cast<int>(lane);
    entries.emplace_back(prevLane, checkedVertex(d.i64(), n));
  }
  return TerminalMap::fromSortedEntries(std::move(entries));
}

void encodeHierarchy(Encoder& e, const HierarchyResult& hier) {
  e.u64(static_cast<std::uint64_t>(hier.hierarchy.size()));
  for (const HierNode& node : hier.hierarchy.nodes()) {
    e.u64(static_cast<std::uint64_t>(node.type));
    e.u64(node.lanes.size());
    for (int lane : node.lanes) e.i64(lane);
    encodeTerminalMap(e, node.inTerm);
    encodeTerminalMap(e, node.outTerm);
    e.i64(node.parent);
    e.u64(node.children.size());
    for (int c : node.children) e.i64(c);
    e.i64(node.u);
    e.i64(node.v);
    e.i64(node.laneI);
    e.i64(node.laneJ);
    e.u64(node.pathVertices.size());
    for (VertexId v : node.pathVertices) e.u64(static_cast<std::uint64_t>(v));
    e.u64(node.treeParentPos.size());
    for (int p : node.treeParentPos) e.i64(p);
    e.i64(node.rootChildPos);
  }
  e.i64(hier.hierarchy.root());
  // The replayed completion graph: same vertex set as G, superset edges.
  e.u64(static_cast<std::uint64_t>(hier.graph.numVertices()));
  e.u64(static_cast<std::uint64_t>(hier.graph.numEdges()));
  for (const Edge& edge : hier.graph.edges()) {
    e.u64(static_cast<std::uint64_t>(edge.u));
    e.u64(static_cast<std::uint64_t>(edge.v));
  }
  e.u64(hier.edgeOwner.size());
  for (int owner : hier.edgeOwner) e.i64(owner);
  e.u64(hier.designated.size());
  for (VertexId v : hier.designated) e.i64(v);
}

HierarchyResult decodeHierarchy(Decoder& d, const Graph& g,
                                std::int64_t laneBound) {
  const VertexId n = g.numVertices();
  HierarchyResult hier;
  const std::uint64_t nodeCount = checkedCount(d);
  const auto nodeBound = static_cast<std::int64_t>(nodeCount);
  std::vector<HierNode> nodes;
  nodes.reserve(nodeCount);
  for (std::uint64_t i = 0; i < nodeCount; ++i) {
    HierNode node;
    const std::uint64_t type = d.u64();
    if (type > static_cast<std::uint64_t>(HierNode::Type::kT)) {
      throw DecodeError{};
    }
    node.type = static_cast<HierNode::Type>(type);
    const std::uint64_t numLanes = checkedCount(d);
    node.lanes.reserve(numLanes);
    for (std::uint64_t j = 0; j < numLanes; ++j) {
      const int lane = checkedIndexOrNone(d.i64(), laneBound);
      if (lane < 0) throw DecodeError{};
      node.lanes.push_back(lane);
    }
    node.inTerm = decodeTerminalMap(d, n, laneBound);
    node.outTerm = decodeTerminalMap(d, n, laneBound);
    node.parent = checkedIndexOrNone(d.i64(), nodeBound);
    const std::uint64_t numChildren = checkedCount(d);
    node.children.reserve(numChildren);
    for (std::uint64_t j = 0; j < numChildren; ++j) {
      const int c = checkedIndexOrNone(d.i64(), nodeBound);
      if (c < 0) throw DecodeError{};  // children are real node ids
      node.children.push_back(c);
    }
    node.u = checkedVertexOrNone(d.i64(), n);
    node.v = checkedVertexOrNone(d.i64(), n);
    node.laneI = checkedIndexOrNone(d.i64(), laneBound);
    node.laneJ = checkedIndexOrNone(d.i64(), laneBound);
    const std::uint64_t pathLen = checkedCount(d);
    node.pathVertices.reserve(pathLen);
    for (std::uint64_t j = 0; j < pathLen; ++j) {
      node.pathVertices.push_back(
          checkedVertex(static_cast<std::int64_t>(d.u64()), n));
    }
    const std::uint64_t treeLen = checkedCount(d);
    if (treeLen != 0 && treeLen != numChildren) throw DecodeError{};
    node.treeParentPos.reserve(treeLen);
    for (std::uint64_t j = 0; j < treeLen; ++j) {
      node.treeParentPos.push_back(checkedIndexOrNone(
          d.i64(), static_cast<std::int64_t>(numChildren)));
    }
    node.rootChildPos =
        checkedIndexOrNone(d.i64(), static_cast<std::int64_t>(numChildren));
    nodes.push_back(std::move(node));
  }
  const int root = checkedIndexOrNone(d.i64(), nodeBound);
  hier.hierarchy = Hierarchy(std::move(nodes), root);
  if (d.u64() != static_cast<std::uint64_t>(n)) throw DecodeError{};
  const std::uint64_t numEdges = d.u64();
  if (numEdges > d.remaining()) throw DecodeError{};  // >= 2 bytes per edge
  Graph completion(n);
  for (std::uint64_t i = 0; i < numEdges; ++i) {
    const VertexId u = checkedVertex(static_cast<std::int64_t>(d.u64()), n);
    const VertexId v = checkedVertex(static_cast<std::int64_t>(d.u64()), n);
    // addEdge itself rejects self-loops and duplicates (throws).
    (void)completion.addEdge(u, v);
  }
  hier.graph = std::move(completion);
  if (checkedCount(d) != numEdges) throw DecodeError{};
  hier.edgeOwner.reserve(numEdges);
  for (std::uint64_t i = 0; i < numEdges; ++i) {
    hier.edgeOwner.push_back(checkedIndexOrNone(d.i64(), nodeBound));
  }
  const std::uint64_t numDesignated = checkedCount(d);
  hier.designated.reserve(numDesignated);
  for (std::uint64_t i = 0; i < numDesignated; ++i) {
    hier.designated.push_back(checkedVertexOrNone(d.i64(), n));
  }
  return hier;
}

// ---------------------------------------------------------------------------
// mmap helper: read-only view of a file, with an owned-buffer fallback when
// mmap is unavailable (e.g. an empty file or an exotic filesystem).

class MappedFile {
 public:
  explicit MappedFile(const std::string& path) {
    fd_ = ::open(path.c_str(), O_RDONLY);
    if (fd_ < 0) return;
    struct stat st{};
    if (::fstat(fd_, &st) != 0 || st.st_size < 0) return;
    size_ = static_cast<std::size_t>(st.st_size);
    valid_ = true;
    if (size_ == 0) return;  // empty view; decode rejects on length
    void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
    if (p != MAP_FAILED) {
      map_ = p;
      return;
    }
    // Fallback: plain read into an owned buffer.
    fallback_.resize(size_);
    std::size_t got = 0;
    while (got < size_) {
      const ssize_t r = ::read(fd_, fallback_.data() + got, size_ - got);
      if (r <= 0) {
        valid_ = false;
        return;
      }
      got += static_cast<std::size_t>(r);
    }
  }
  ~MappedFile() {
    if (map_ != nullptr) ::munmap(map_, size_);
    if (fd_ >= 0) ::close(fd_);
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] std::string_view view() const {
    if (map_ != nullptr) return {static_cast<const char*>(map_), size_};
    return {fallback_.data(), fallback_.size()};
  }

 private:
  int fd_ = -1;
  std::size_t size_ = 0;
  void* map_ = nullptr;
  std::string fallback_;
  bool valid_ = false;
};

std::string hex16(std::uint64_t x) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[x & 0xf];
    x >>= 4;
  }
  return out;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  // Slicing-by-8: eight parallel tables let the loop consume 8 bytes per
  // step with independent lookups (the classic Intel technique), ~6x the
  // byte-at-a-time loop on the MB-sized hierarchy section.  Table 0 is the
  // standard IEEE table, so values are identical to the scalar definition.
  static const std::array<std::array<std::uint32_t, 256>, 8> kTables = [] {
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t j = 1; j < 8; ++j) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[j][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t c = 0xffffffffu;
  std::size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, bytes.data() + i, 4);
    std::memcpy(&hi, bytes.data() + i + 4, 4);
    if constexpr (std::endian::native == std::endian::big) {
      lo = __builtin_bswap32(lo);
      hi = __builtin_bswap32(hi);
    }
    c ^= lo;
    c = kTables[7][c & 0xffu] ^ kTables[6][(c >> 8) & 0xffu] ^
        kTables[5][(c >> 16) & 0xffu] ^ kTables[4][c >> 24] ^
        kTables[3][hi & 0xffu] ^ kTables[2][(hi >> 8) & 0xffu] ^
        kTables[1][(hi >> 16) & 0xffu] ^ kTables[0][hi >> 24];
  }
  for (; i < bytes.size(); ++i) {
    c = kTables[0][(c ^ static_cast<unsigned char>(bytes[i])) & 0xffu] ^
        (c >> 8);
  }
  return c ^ 0xffffffffu;
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t h = seed;
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;
  }
  return h;
}

SnapshotKey planSnapshotKey(const Graph& g,
                            const IntervalRepresentation* suppliedRep) {
  Encoder content;
  content.bytes("lanecert-snapshot-content");
  content.u64(static_cast<std::uint64_t>(g.numVertices()));
  content.u64(static_cast<std::uint64_t>(g.numEdges()));
  for (const Edge& e : g.edges()) {
    content.u64(static_cast<std::uint64_t>(e.u));
    content.u64(static_cast<std::uint64_t>(e.v));
  }
  content.boolean(suppliedRep != nullptr);
  if (suppliedRep != nullptr) {
    for (const Interval& iv : suppliedRep->intervals()) {
      content.i64(iv.l);
      content.i64(iv.r);
    }
  }
  // Everything that changes plan BYTES besides graph content: container
  // revision plus the plan-algorithm parameters baked into buildProvePlan
  // (the exact-DP cutoff of bestIntervalRepresentation).  Bump the params
  // revision whenever a plan-stage algorithm changes its output.
  Encoder params;
  params.bytes("lanecert-plan-params");
  params.u64(kFormatVersion);
  params.u64(1);   // plan-algorithm revision
  params.u64(18);  // bestIntervalRepresentation exactMaxN
  return SnapshotKey{fnv1a64(content.str()), fnv1a64(params.str())};
}

std::string snapshotFileName(const SnapshotKey& key) {
  return "plan-" + hex16(key.contentHash) + "-" + hex16(key.paramsFingerprint) +
         ".lcsnp";
}

std::string encodeSnapshot(const SnapshotKey& key, const ProvePlan& plan) {
  std::array<std::string, kSectionCount> sections;
  {
    Encoder e;
    encodeRep(e, plan.rep);
    sections[0] = e.take();
    encodeLanePlan(e, plan.plan);
    sections[1] = e.take();
    encodeConstruction(e, plan.seq);
    sections[2] = e.take();
    encodeHierarchy(e, plan.hier);
    sections[3] = e.take();
  }
  static constexpr std::array<SectionId, kSectionCount> kOrder = {
      SectionId::kRep, SectionId::kLanePlan, SectionId::kConstruction,
      SectionId::kHierarchy};
  std::size_t total = kPayloadOffset;
  for (const std::string& s : sections) total += s.size();
  std::string out;
  out.reserve(total);
  out.append(kMagic);
  putU32(out, kFormatVersion);
  putU32(out, static_cast<std::uint32_t>(kSectionCount));
  putU64(out, key.contentHash);
  putU64(out, key.paramsFingerprint);
  std::uint64_t offset = kPayloadOffset;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    putU32(out, static_cast<std::uint32_t>(kOrder[i]));
    putU32(out, crc32(sections[i]));
    putU64(out, offset);
    putU64(out, sections[i].size());
    offset += sections[i].size();
  }
  for (const std::string& s : sections) out += s;
  return out;
}

std::shared_ptr<const ProvePlan> decodeSnapshot(std::string_view image,
                                                const SnapshotKey& expect,
                                                const Graph& g) {
  // Header and section table: every guard runs before a payload byte is
  // interpreted, and no allocation depends on unvalidated input.
  if (image.size() < kPayloadOffset) return nullptr;
  if (image.substr(0, kMagic.size()) != kMagic) return nullptr;
  if (getU32(image, 8) != kFormatVersion) return nullptr;
  if (getU32(image, 12) != kSectionCount) return nullptr;
  if (getU64(image, 16) != expect.contentHash) return nullptr;
  if (getU64(image, 24) != expect.paramsFingerprint) return nullptr;
  static constexpr std::array<SectionId, kSectionCount> kOrder = {
      SectionId::kRep, SectionId::kLanePlan, SectionId::kConstruction,
      SectionId::kHierarchy};
  std::array<std::string_view, kSectionCount> payloads;
  std::uint64_t runningOffset = kPayloadOffset;
  for (std::size_t i = 0; i < kSectionCount; ++i) {
    const std::size_t entry = kHeaderBytes + i * kSectionEntryBytes;
    if (getU32(image, entry) != static_cast<std::uint32_t>(kOrder[i])) {
      return nullptr;
    }
    const std::uint32_t crc = getU32(image, entry + 4);
    const std::uint64_t offset = getU64(image, entry + 8);
    const std::uint64_t length = getU64(image, entry + 16);
    // Canonical layout only: payloads are contiguous in table order, so a
    // lying offset/length cannot alias the header or another section, and
    // the overflow-prone offset+length sum is never formed.
    if (offset != runningOffset) return nullptr;
    if (length > image.size() - offset) return nullptr;
    payloads[i] = image.substr(offset, length);
    if (crc32(payloads[i]) != crc) return nullptr;
    runningOffset = offset + length;
  }
  if (runningOffset != image.size()) return nullptr;  // trailing garbage
  try {
    auto plan = std::make_shared<ProvePlan>();
    {
      Decoder d(payloads[0]);
      plan->rep = decodeRep(d, g.numVertices());
      if (!d.atEnd()) return nullptr;
    }
    {
      Decoder d(payloads[1]);
      plan->plan = decodeLanePlan(d, g);
      if (!d.atEnd()) return nullptr;
    }
    {
      Decoder d(payloads[2]);
      plan->seq = decodeConstruction(d, g.numVertices());
      if (!d.atEnd()) return nullptr;
    }
    {
      Decoder d(payloads[3]);
      plan->hier = decodeHierarchy(
          d, g, static_cast<std::int64_t>(plan->seq.initialPath.size()));
      if (!d.atEnd()) return nullptr;
    }
    return plan;
  } catch (const std::exception&) {
    // DecodeError, Graph::addEdge rejection, bad_alloc — all mean the file
    // is not a valid snapshot of this graph.
    return nullptr;
  }
}

SnapshotStore::SnapshotStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best-effort
  writer_ = std::thread([this] { writerLoop(); });
}

SnapshotStore::~SnapshotStore() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stopping_ = true;
  }
  wake_.notify_all();
  writer_.join();
}

void SnapshotStore::writerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    wake_.wait(lk, [&] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      // stopping_ with an empty queue: every accepted write is on disk.
      return;
    }
    auto [key, plan] = std::move(queue_.front());
    queue_.pop_front();
    lk.unlock();
    (void)persistNow(key, *plan);
    lk.lock();
    --pending_;
    if (pending_ == 0) idle_.notify_all();
  }
}

std::shared_ptr<const ProvePlan> SnapshotStore::tryLoad(
    const Graph& g, const IntervalRepresentation* rep) {
  const SnapshotKey key = planSnapshotKey(g, rep);
  const std::string path = dir_ + "/" + snapshotFileName(key);
  MappedFile file(path);
  if (!file.valid()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    return nullptr;
  }
  auto plan = decodeSnapshot(file.view(), key, g);
  std::lock_guard<std::mutex> lk(mu_);
  if (plan != nullptr) {
    ++stats_.hits;
  } else {
    ++stats_.rejects;
  }
  return plan;
}

void SnapshotStore::persistAsync(const SnapshotKey& key,
                                 std::shared_ptr<const ProvePlan> plan) {
  if (plan == nullptr) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (stopping_) return;
    queue_.emplace_back(key, std::move(plan));
    ++pending_;
  }
  wake_.notify_one();
}

bool SnapshotStore::persistNow(const SnapshotKey& key, const ProvePlan& plan) {
  const std::string name = snapshotFileName(key);
  const std::string path = dir_ + "/" + name;
  {
    std::error_code ec;
    if (std::filesystem::exists(path, ec)) {
      // Content-addressed: an existing file for this key already holds
      // these bytes; rewriting it buys nothing.
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.writeSkips;
      return true;
    }
  }
  const std::string image = encodeSnapshot(key, plan);
  // Atomic publication: a concurrent loader sees the old state or the full
  // file, never a torn write.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  bool ok = false;
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
    ok = out.good();
  }
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) std::remove(tmp.c_str());
  std::lock_guard<std::mutex> lk(mu_);
  if (ok) {
    ++stats_.writes;
  } else {
    ++stats_.writeFailures;
  }
  return ok;
}

void SnapshotStore::flushWrites() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_.wait(lk, [&] { return pending_ == 0; });
}

SnapshotStoreStats SnapshotStore::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace lanecert::snapshot
