#pragma once
// Content-addressed persistence for the property-independent prover plan.
//
// `buildProvePlan` output (interval representation -> lane plan ->
// construction sequence -> hierarchy) is a pure function of graph content,
// yet it dominates a restarted server's first prove.  This subsystem
// persists plans as flat relocatable snapshot files keyed by
// (graph content hash, plan-params fingerprint, format version) and loads
// them back via mmap, so a warm start skips the whole head — including the
// greedy interval decomposition — and answers its first prove from disk in
// milliseconds.
//
// Trust model: snapshot files live on local disk and are CRC-guarded, but
// the loader still treats them as UNTRUSTED input (a crashed writer, a
// truncating filesystem, or a hostile tenant sharing the directory must
// never crash the service).  `decodeSnapshot` validates the header, both
// hashes, the section table, and per-section CRCs before interpreting a
// payload byte; payload decoding bounds every list length by
// `Decoder::remaining()` before reserving and range-checks every index
// (vertex ids, node ids, lane entries) against the graph being served.  ANY
// malformation returns null — callers fall back to a fresh build.
//
// `SnapshotStore` adds the serving discipline: `tryLoad` on plan-cache
// miss, `persistAsync` write-behind after a fresh build (a dedicated writer
// thread — never the service pool, so service teardown cannot discard
// queued writes), atomic tmp+rename publication, and content-addressed
// idempotence (a file that already exists is never rewritten).

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>

#include "core/prover.hpp"
#include "snapshot/format.hpp"

namespace lanecert::snapshot {

/// Identity of a snapshot: what the plan was computed FROM (graph content
/// plus any caller-supplied representation) and HOW (algorithm parameters).
struct SnapshotKey {
  std::uint64_t contentHash = 0;
  std::uint64_t paramsFingerprint = 0;

  friend bool operator==(const SnapshotKey&, const SnapshotKey&) = default;
};

/// Key of the plan for `g` (with `suppliedRep` folded in when the caller
/// provides one — plans built from a supplied representation are distinct
/// content from plans whose representation was computed).
[[nodiscard]] SnapshotKey planSnapshotKey(const Graph& g,
                                          const IntervalRepresentation* suppliedRep);

/// Deterministic file name for `key` (hex content hash + hex fingerprint).
[[nodiscard]] std::string snapshotFileName(const SnapshotKey& key);

/// Serializes `plan` into a complete snapshot file image (header + section
/// table + CRC-guarded payloads).
[[nodiscard]] std::string encodeSnapshot(const SnapshotKey& key,
                                         const ProvePlan& plan);

/// Strict loader over a complete file image.  Returns null on ANY
/// malformation — wrong magic/version, stale hash, section-table lie,
/// CRC mismatch, truncation, hostile count, out-of-range index — without
/// throwing and without allocating proportionally to unvalidated input.
/// `g` is the graph being served; structural sizes are cross-checked
/// against it.
[[nodiscard]] std::shared_ptr<const ProvePlan> decodeSnapshot(
    std::string_view image, const SnapshotKey& expect, const Graph& g);

/// Counters for the store (monotonic; snapshot under one lock).
struct SnapshotStoreStats {
  std::uint64_t hits = 0;          ///< tryLoad returned a plan
  std::uint64_t misses = 0;        ///< no file for the key
  std::uint64_t rejects = 0;       ///< file present but failed validation
  std::uint64_t writes = 0;        ///< images published (tmp+rename)
  std::uint64_t writeSkips = 0;    ///< file already existed (idempotent)
  std::uint64_t writeFailures = 0; ///< I/O errors (best-effort: never fatal)
};

/// Directory-backed snapshot store with a single background writer thread.
class SnapshotStore {
 public:
  /// Creates `dir` (and parents) best-effort; a missing or unwritable
  /// directory degrades to misses + writeFailures, never errors.
  explicit SnapshotStore(std::string dir);
  /// Drains every queued write before returning.
  ~SnapshotStore();

  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// mmaps + validates the snapshot for (g, rep); null on miss or reject.
  [[nodiscard]] std::shared_ptr<const ProvePlan> tryLoad(
      const Graph& g, const IntervalRepresentation* rep);

  /// Queues `plan` for write-behind persistence under `key`; returns
  /// immediately.  The writer thread encodes and publishes atomically.
  void persistAsync(const SnapshotKey& key,
                    std::shared_ptr<const ProvePlan> plan);

  /// Synchronous persist (tools/tests); true when the image is on disk
  /// (written now or already present).
  bool persistNow(const SnapshotKey& key, const ProvePlan& plan);

  /// Blocks until every persistAsync enqueued so far has been written.
  void flushWrites();

  [[nodiscard]] SnapshotStoreStats stats() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  void writerLoop();

  std::string dir_;
  mutable std::mutex mu_;
  std::condition_variable wake_;  ///< writer wakeup (work or stop)
  std::condition_variable idle_;  ///< flushWrites wakeup (pending_ == 0)
  std::deque<std::pair<SnapshotKey, std::shared_ptr<const ProvePlan>>> queue_;
  std::size_t pending_ = 0;  ///< queued + currently being written
  bool stopping_ = false;
  SnapshotStoreStats stats_;
  std::thread writer_;  ///< last member: joins before the rest tears down
};

}  // namespace lanecert::snapshot
