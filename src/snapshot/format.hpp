#pragma once
// On-disk container format for prover-plan snapshots (see snapshot.hpp for
// the subsystem overview).  A snapshot file is:
//
//   header (32 bytes, fixed-width little-endian):
//     magic            8 bytes  "LANECSNP"
//     formatVersion    u32      kFormatVersion
//     sectionCount     u32      kSectionCount
//     contentHash      u64      FNV-1a of the graph content (+ supplied rep)
//     paramsFingerprint u64     FNV-1a of the plan-algorithm parameters
//   section table (kSectionCount entries, 24 bytes each, in SectionId order):
//     id               u32
//     crc              u32      CRC-32 of the section payload
//     offset           u64      absolute file offset of the payload
//     length           u64      payload length in bytes
//   payloads, contiguous in table order, ending exactly at end-of-file.
//
// Every field is validated BEFORE any payload byte is interpreted: magic,
// version, both hashes, section ids/offsets/lengths (contiguous, in-bounds,
// overflow-checked), and per-section CRCs.  Payloads are certificate-codec
// varint streams decoded under the `Decoder::remaining()` discipline, so a
// hostile or truncated file rejects before any proportional allocation.

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace lanecert::snapshot {

inline constexpr std::string_view kMagic{"LANECSNP", 8};

/// Bump on ANY change to the container layout or a section encoding; old
/// files then reject up front and the service rebuilds + rewrites them.
inline constexpr std::uint32_t kFormatVersion = 1;

/// The four sections of a ProvePlan, in file order.
enum class SectionId : std::uint32_t {
  kRep = 1,           ///< interval representation
  kLanePlan = 2,      ///< lane partition + completion embeddings
  kConstruction = 3,  ///< construction sequence
  kHierarchy = 4,     ///< hierarchical decomposition + completion graph
};
inline constexpr std::size_t kSectionCount = 4;

inline constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;
inline constexpr std::size_t kSectionEntryBytes = 4 + 4 + 8 + 8;
inline constexpr std::size_t kPayloadOffset =
    kHeaderBytes + kSectionCount * kSectionEntryBytes;

/// CRC-32 (IEEE 802.3 polynomial, software table) of `bytes`.
[[nodiscard]] std::uint32_t crc32(std::string_view bytes);

/// 64-bit FNV-1a of `bytes`, chained through `seed` (pass a previous hash to
/// extend it; the default is the standard offset basis).
[[nodiscard]] std::uint64_t fnv1a64(std::string_view bytes,
                                    std::uint64_t seed = 0xcbf29ce484222325ull);

}  // namespace lanecert::snapshot
