#pragma once
// Core undirected-graph data structure used throughout lanecert.
//
// Vertices are dense integers 0..n-1.  Edges are stored once and given dense
// ids 0..m-1; the adjacency structure records (neighbor, edge id) pairs so
// that per-edge data (certificates, congestion counters, input labels) can be
// kept in plain vectors indexed by EdgeId.
//
// The graph model follows Section 1.1 of the paper: an n-vertex connected
// undirected graph whose vertices carry O(log n)-bit distinct identifiers.
// Identifiers are kept separate from the topology (see `IdAssignment`) so
// that the same topology can be re-labeled in tests.

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace lanecert {

/// Dense vertex index, 0-based. -1 denotes "no vertex".
using VertexId = std::int32_t;
/// Dense edge index, 0-based. -1 denotes "no edge".
using EdgeId = std::int32_t;

/// Sentinel for "no vertex" / "no edge".
inline constexpr VertexId kNoVertex = -1;
inline constexpr EdgeId kNoEdge = -1;

/// An undirected edge; `u <= v` is NOT required, endpoints keep insertion
/// order so callers can orient edges meaningfully.
struct Edge {
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;

  /// Returns the endpoint different from `w`; `w` must be an endpoint.
  [[nodiscard]] VertexId other(VertexId w) const { return w == u ? v : u; }
  /// True if `w` is one of the two endpoints.
  [[nodiscard]] bool touches(VertexId w) const { return w == u || w == v; }

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// One adjacency entry: the neighbor reached and the id of the edge used.
struct Arc {
  VertexId to = kNoVertex;
  EdgeId edge = kNoEdge;

  friend bool operator==(const Arc&, const Arc&) = default;
};

/// Simple undirected graph (no self-loops, no parallel edges).
///
/// Mutation is append-only (addVertex/addEdge); algorithms treat the graph
/// as immutable.  All queries are O(1) or O(deg).
class Graph {
 public:
  Graph() = default;
  /// Creates a graph with `n` isolated vertices.
  explicit Graph(VertexId n) : adj_(static_cast<std::size_t>(n)) {}

  /// Number of vertices.
  [[nodiscard]] VertexId numVertices() const {
    return static_cast<VertexId>(adj_.size());
  }
  /// Number of edges.
  [[nodiscard]] EdgeId numEdges() const {
    return static_cast<EdgeId>(edges_.size());
  }

  /// Appends an isolated vertex and returns its id.
  VertexId addVertex() {
    adj_.emplace_back();
    return numVertices() - 1;
  }

  /// Appends the undirected edge {u, v} and returns its id.
  /// Precondition: u != v, both exist, and {u, v} is not already present.
  EdgeId addEdge(VertexId u, VertexId v);

  /// True if {u, v} is an edge (O(min deg)).
  [[nodiscard]] bool hasEdge(VertexId u, VertexId v) const {
    return findEdge(u, v) != kNoEdge;
  }

  /// Returns the id of edge {u, v}, or kNoEdge.
  [[nodiscard]] EdgeId findEdge(VertexId u, VertexId v) const;

  /// Endpoints of edge `e`.
  [[nodiscard]] const Edge& edge(EdgeId e) const {
    return edges_[static_cast<std::size_t>(e)];
  }

  /// Adjacency list of `v` as (neighbor, edge id) pairs.
  [[nodiscard]] std::span<const Arc> arcs(VertexId v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Degree of `v`.
  [[nodiscard]] int degree(VertexId v) const {
    return static_cast<int>(adj_[static_cast<std::size_t>(v)].size());
  }

  /// All edges, indexed by EdgeId.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// True if the two graphs have identical vertex counts and edge sets
  /// (edge insertion order ignored).
  [[nodiscard]] bool sameEdgeSet(const Graph& other) const;

  /// Human-readable one-line summary, e.g. "Graph(n=6, m=6)".
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::vector<Arc>> adj_;
  std::vector<Edge> edges_;
};

/// Distinct O(log n)-bit identifiers for the PLS model (Section 1.1).
///
/// `id(v)` is the identifier of dense vertex v.  Identifiers are arbitrary
/// distinct 64-bit values; provers may look them up in either direction.
class IdAssignment {
 public:
  IdAssignment() = default;
  /// Identity assignment: id(v) = v.
  static IdAssignment identity(VertexId n);
  /// Random distinct ids drawn from [0, 2^62) with the given seed.
  static IdAssignment random(VertexId n, std::uint64_t seed);

  /// Identifier of vertex v.
  [[nodiscard]] std::uint64_t id(VertexId v) const {
    return ids_[static_cast<std::size_t>(v)];
  }
  /// Inverse lookup; returns kNoVertex if no vertex has this identifier.
  [[nodiscard]] VertexId vertexOf(std::uint64_t id) const;

  [[nodiscard]] VertexId numVertices() const {
    return static_cast<VertexId>(ids_.size());
  }

 private:
  std::vector<std::uint64_t> ids_;
};

}  // namespace lanecert
