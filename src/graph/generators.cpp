#include "graph/generators.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace lanecert {

Graph pathGraph(VertexId n) {
  Graph g(n);
  for (VertexId v = 0; v + 1 < n; ++v) g.addEdge(v, v + 1);
  return g;
}

Graph cycleGraph(VertexId n) {
  if (n < 3) throw std::invalid_argument("cycleGraph: n >= 3 required");
  Graph g = pathGraph(n);
  g.addEdge(n - 1, 0);
  return g;
}

Graph completeGraph(VertexId n) {
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.addEdge(u, v);
  }
  return g;
}

Graph starGraph(VertexId leaves) {
  Graph g(leaves + 1);
  for (VertexId v = 1; v <= leaves; ++v) g.addEdge(0, v);
  return g;
}

Graph caterpillar(VertexId spine, int legs) {
  Graph g(spine);
  for (VertexId v = 0; v + 1 < spine; ++v) g.addEdge(v, v + 1);
  for (VertexId v = 0; v < spine; ++v) {
    for (int i = 0; i < legs; ++i) {
      const VertexId leaf = g.addVertex();
      g.addEdge(v, leaf);
    }
  }
  return g;
}

Graph spiderGraph(int arms, int armLen) {
  Graph g(1);
  for (int a = 0; a < arms; ++a) {
    VertexId prev = 0;
    for (int i = 0; i < armLen; ++i) {
      const VertexId v = g.addVertex();
      g.addEdge(prev, v);
      prev = v;
    }
  }
  return g;
}

Graph completeBinaryTree(int levels) {
  const VertexId n = static_cast<VertexId>((1 << levels) - 1);
  Graph g(n);
  for (VertexId v = 1; v < n; ++v) g.addEdge(v, (v - 1) / 2);
  return g;
}

Graph randomTree(VertexId n, Rng& rng) {
  if (n <= 0) return Graph{};
  if (n == 1) return Graph{1};
  if (n == 2) {
    Graph g(2);
    g.addEdge(0, 1);
    return g;
  }
  // Prüfer decoding.
  std::vector<VertexId> prufer(static_cast<std::size_t>(n - 2));
  for (auto& x : prufer) x = static_cast<VertexId>(rng.uniformInt(0, n - 1));
  std::vector<int> deg(static_cast<std::size_t>(n), 1);
  for (VertexId x : prufer) ++deg[static_cast<std::size_t>(x)];
  Graph g(n);
  std::vector<char> used(static_cast<std::size_t>(n), 0);
  // Min-leaf selection via a simple priority scan (n is small in tests).
  auto popMinLeaf = [&]() {
    for (VertexId v = 0; v < n; ++v) {
      if (!used[static_cast<std::size_t>(v)] && deg[static_cast<std::size_t>(v)] == 1) {
        return v;
      }
    }
    return kNoVertex;
  };
  for (VertexId x : prufer) {
    const VertexId leaf = popMinLeaf();
    g.addEdge(leaf, x);
    used[static_cast<std::size_t>(leaf)] = 1;
    --deg[static_cast<std::size_t>(x)];
  }
  // Two vertices of degree 1 remain.
  VertexId a = kNoVertex;
  VertexId b = kNoVertex;
  for (VertexId v = 0; v < n; ++v) {
    if (!used[static_cast<std::size_t>(v)] && deg[static_cast<std::size_t>(v)] == 1) {
      (a == kNoVertex ? a : b) = v;
    }
  }
  g.addEdge(a, b);
  return g;
}

Graph gridGraph(int w, int h) {
  Graph g(static_cast<VertexId>(w * h));
  auto at = [w](int x, int y) { return static_cast<VertexId>(y * w + x); };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) g.addEdge(at(x, y), at(x + 1, y));
      if (y + 1 < h) g.addEdge(at(x, y), at(x, y + 1));
    }
  }
  return g;
}

Graph randomConnected(VertexId n, double p, Rng& rng) {
  Graph g(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      if (rng.flip(p)) g.addEdge(u, v);
    }
  }
  // Stitch components together with random edges.
  Components c = connectedComponents(g);
  while (c.count > 1) {
    std::vector<VertexId> reps(static_cast<std::size_t>(c.count), kNoVertex);
    for (VertexId v = 0; v < n; ++v) {
      auto& r = reps[static_cast<std::size_t>(c.label[static_cast<std::size_t>(v)])];
      if (r == kNoVertex || rng.flip(0.3)) r = v;
    }
    for (int i = 1; i < c.count; ++i) {
      g.addEdge(reps[0], reps[static_cast<std::size_t>(i)]);
    }
    c = connectedComponents(g);
  }
  return g;
}

BoundedPathwidthGraph randomBoundedPathwidth(VertexId n, int k, double density,
                                             Rng& rng) {
  if (n <= 0) throw std::invalid_argument("randomBoundedPathwidth: n >= 1");
  if (k < 1) throw std::invalid_argument("randomBoundedPathwidth: k >= 1");
  BoundedPathwidthGraph out;
  out.graph = Graph(n);
  out.intervals.assign(static_cast<std::size_t>(n), {0, 0});
  const int capacity = k + 1;  // width <= k+1 <=> pathwidth <= k

  std::vector<VertexId> active;
  int clock = 0;
  VertexId next = 0;

  auto introduce = [&]() {
    const VertexId v = next++;
    out.intervals[static_cast<std::size_t>(v)].first = clock;
    if (!active.empty()) {
      // Always >= 1 edge to keep the graph connected; extra edges by density.
      std::vector<int> idx(active.size());
      std::iota(idx.begin(), idx.end(), 0);
      std::shuffle(idx.begin(), idx.end(), rng.engine());
      std::size_t extra = 0;
      for (std::size_t i = 1; i < idx.size(); ++i) {
        if (rng.flip(density)) ++extra;
      }
      for (std::size_t i = 0; i <= extra && i < idx.size(); ++i) {
        out.graph.addEdge(v, active[static_cast<std::size_t>(idx[i])]);
      }
    }
    active.push_back(v);
    out.width = std::max(out.width, static_cast<int>(active.size()));
  };
  auto retire = [&]() {
    const std::size_t i =
        static_cast<std::size_t>(rng.uniformInt(0, static_cast<int>(active.size()) - 1));
    const VertexId v = active[i];
    out.intervals[static_cast<std::size_t>(v)].second = clock;
    active[i] = active.back();
    active.pop_back();
  };

  introduce();  // vertex 0 at clock 0
  while (next < n) {
    ++clock;
    const bool full = static_cast<int>(active.size()) >= capacity;
    // Never retire the last active vertex while more must be introduced,
    // otherwise a later vertex would have no neighbor to attach to.
    const bool canRetire = active.size() >= 2;
    if (full || (canRetire && rng.flip(0.45))) {
      retire();
    } else {
      introduce();
    }
  }
  // Close the remaining intervals.
  while (!active.empty()) {
    ++clock;
    retire();
  }
  return out;
}

}  // namespace lanecert
