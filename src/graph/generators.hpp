#pragma once
// Graph families used by examples, tests, and benchmark workloads.
//
// The key generator for the paper's setting is `randomBoundedPathwidth`,
// which produces a connected graph TOGETHER WITH an interval representation
// (Definition 4.1) of width <= k+1 witnessing pathwidth <= k.  The intervals
// are returned as plain (L, R) pairs so this module stays independent of the
// interval library, which wraps them into an IntervalRepresentation.

#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace lanecert {

/// Deterministic RNG wrapper used by all generators (seeded mt19937_64).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int uniformInt(int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }
  /// Uniform real in [0, 1).
  double uniformReal() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  /// Bernoulli with success probability p.
  bool flip(double p) { return uniformReal() < p; }
  /// Underlying engine, for std::shuffle.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Path on n vertices: 0-1-2-...-(n-1).  Pathwidth 1 (n >= 2).
[[nodiscard]] Graph pathGraph(VertexId n);

/// Cycle on n >= 3 vertices.  Pathwidth 2.
[[nodiscard]] Graph cycleGraph(VertexId n);

/// Complete graph K_n.  Pathwidth n-1.
[[nodiscard]] Graph completeGraph(VertexId n);

/// Star with `leaves` leaves (center is vertex 0).  Pathwidth 1.
[[nodiscard]] Graph starGraph(VertexId leaves);

/// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves.  Pathwidth 1 for legs >= 0, spine >= 2.
[[nodiscard]] Graph caterpillar(VertexId spine, int legs);

/// Spider: `arms` disjoint paths of `armLen` vertices, all attached to a
/// central vertex 0.  Pathwidth 2 (for arms >= 3); the canonical adversary
/// for naive completion-edge routing (everything funnels through vertex 0).
[[nodiscard]] Graph spiderGraph(int arms, int armLen);

/// Complete binary tree with `levels` levels (2^levels - 1 vertices).
/// Pathwidth ceil(levels / 2) in general; used as a "tree but not path-like"
/// family.
[[nodiscard]] Graph completeBinaryTree(int levels);

/// Uniform random labeled tree on n vertices (Prüfer sequence).
[[nodiscard]] Graph randomTree(VertexId n, Rng& rng);

/// w x h grid graph; pathwidth min(w, h).
[[nodiscard]] Graph gridGraph(int w, int h);

/// Erdos-Renyi G(n, p), then connected by adding random tree edges between
/// components.  General-purpose "no structure" family for negative tests.
[[nodiscard]] Graph randomConnected(VertexId n, double p, Rng& rng);

/// A connected graph of pathwidth <= k with a witnessing interval
/// representation of width <= k+1.
struct BoundedPathwidthGraph {
  Graph graph;
  /// Per-vertex interval [L, R] over integer positions (Definition 4.1);
  /// at most k+1 intervals share any point.
  std::vector<std::pair<int, int>> intervals;
  int width = 0;  ///< realized width (max point coverage), <= k+1
};

/// Random connected bounded-pathwidth graph via an interval sweep:
/// maintain <= k+1 "active" vertices; each step either retires an active
/// vertex or introduces a new one connected to `1 + Binomial(active)` random
/// active vertices. `density` in [0,1] controls how many of the possible
/// edges to active vertices a new vertex receives.
[[nodiscard]] BoundedPathwidthGraph randomBoundedPathwidth(VertexId n, int k,
                                                           double density,
                                                           Rng& rng);

}  // namespace lanecert
