#include "graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <queue>
#include <stdexcept>

#include "runtime/executor.hpp"

namespace lanecert {

std::vector<int> bfsDistances(const Graph& g, VertexId source) {
  std::vector<int> dist(static_cast<std::size_t>(g.numVertices()), -1);
  std::queue<VertexId> q;
  dist[static_cast<std::size_t>(source)] = 0;
  q.push(source);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (const Arc& a : g.arcs(u)) {
      if (dist[static_cast<std::size_t>(a.to)] == -1) {
        dist[static_cast<std::size_t>(a.to)] = dist[static_cast<std::size_t>(u)] + 1;
        q.push(a.to);
      }
    }
  }
  return dist;
}

Components connectedComponents(const Graph& g) {
  Components c;
  c.label.assign(static_cast<std::size_t>(g.numVertices()), -1);
  for (VertexId s = 0; s < g.numVertices(); ++s) {
    if (c.label[static_cast<std::size_t>(s)] != -1) continue;
    const int comp = c.count++;
    std::queue<VertexId> q;
    c.label[static_cast<std::size_t>(s)] = comp;
    q.push(s);
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      for (const Arc& a : g.arcs(u)) {
        if (c.label[static_cast<std::size_t>(a.to)] == -1) {
          c.label[static_cast<std::size_t>(a.to)] = comp;
          q.push(a.to);
        }
      }
    }
  }
  return c;
}

bool isConnected(const Graph& g) {
  return g.numVertices() == 0 || connectedComponents(g).count == 1;
}

SpanningTree bfsTree(const Graph& g, VertexId root) {
  SpanningTree t;
  t.root = root;
  const auto n = static_cast<std::size_t>(g.numVertices());
  t.parentVertex.assign(n, kNoVertex);
  t.parentEdge.assign(n, kNoEdge);
  t.depth.assign(n, -1);
  std::queue<VertexId> q;
  t.depth[static_cast<std::size_t>(root)] = 0;
  q.push(root);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (const Arc& a : g.arcs(u)) {
      if (t.depth[static_cast<std::size_t>(a.to)] == -1) {
        t.depth[static_cast<std::size_t>(a.to)] = t.depth[static_cast<std::size_t>(u)] + 1;
        t.parentVertex[static_cast<std::size_t>(a.to)] = u;
        t.parentEdge[static_cast<std::size_t>(a.to)] = a.edge;
        q.push(a.to);
      }
    }
  }
  for (int d : t.depth) {
    if (d == -1) throw std::invalid_argument("bfsTree: graph not connected");
  }
  return t;
}

SpanningTree bfsTree(const Graph& g, VertexId root, ParallelExecutor& exec) {
  if (exec.numThreads() <= 1) return bfsTree(g, root);
  SpanningTree t;
  t.root = root;
  const auto n = static_cast<std::size_t>(g.numVertices());
  t.parentVertex.assign(n, kNoVertex);
  t.parentEdge.assign(n, kNoEdge);
  t.depth.assign(n, -1);
  t.depth[static_cast<std::size_t>(root)] = 0;

  // One frontier per level, kept in the serial BFS queue order.  The scan
  // phase reads only depths written by PREVIOUS levels (the merge is the
  // sole writer and runs between scans), so shards race on nothing.
  struct Candidate {
    VertexId to = kNoVertex;
    VertexId from = kNoVertex;
    EdgeId edge = kNoEdge;
  };
  std::vector<VertexId> frontier{root};
  std::vector<VertexId> next;
  std::vector<std::vector<Candidate>> proposals(
      static_cast<std::size_t>(exec.numThreads()));
  int depth = 0;
  while (!frontier.empty()) {
    // Cleared up front: shards with an empty range never run, but the merge
    // below visits every proposal list.
    for (std::vector<Candidate>& p : proposals) p.clear();
    exec.forShards(frontier.size(), [&](std::size_t shard, std::size_t lo,
                                        std::size_t hi) {
      std::vector<Candidate>& out = proposals[shard];
      for (std::size_t i = lo; i < hi; ++i) {
        const VertexId u = frontier[i];
        for (const Arc& a : g.arcs(u)) {
          if (t.depth[static_cast<std::size_t>(a.to)] == -1) {
            out.push_back(Candidate{a.to, u, a.edge});
          }
        }
      }
    });
    // Ordered merge: shards cover contiguous ascending frontier ranges and
    // each shard preserves (frontier position, arc) order, so scanning the
    // shard lists in index order claims every vertex exactly where the
    // serial BFS would, and appends it to `next` in serial queue order.
    next.clear();
    for (const std::vector<Candidate>& shardOut : proposals) {
      for (const Candidate& c : shardOut) {
        auto& d = t.depth[static_cast<std::size_t>(c.to)];
        if (d != -1) continue;  // claimed earlier this level (or before)
        d = depth + 1;
        t.parentVertex[static_cast<std::size_t>(c.to)] = c.from;
        t.parentEdge[static_cast<std::size_t>(c.to)] = c.edge;
        next.push_back(c.to);
      }
    }
    frontier.swap(next);
    ++depth;
  }
  for (int d : t.depth) {
    if (d == -1) throw std::invalid_argument("bfsTree: graph not connected");
  }
  return t;
}

std::vector<VertexId> shortestPath(const Graph& g, VertexId s, VertexId t) {
  if (s == t) return {s};
  const auto n = static_cast<std::size_t>(g.numVertices());
  std::vector<VertexId> parent(n, kNoVertex);
  std::vector<char> seen(n, 0);
  std::queue<VertexId> q;
  seen[static_cast<std::size_t>(s)] = 1;
  q.push(s);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (const Arc& a : g.arcs(u)) {
      if (!seen[static_cast<std::size_t>(a.to)]) {
        seen[static_cast<std::size_t>(a.to)] = 1;
        parent[static_cast<std::size_t>(a.to)] = u;
        if (a.to == t) {
          std::vector<VertexId> path;
          for (VertexId w = t; w != kNoVertex; w = parent[static_cast<std::size_t>(w)]) {
            path.push_back(w);
          }
          std::reverse(path.begin(), path.end());
          return path;
        }
        q.push(a.to);
      }
    }
  }
  return {};
}

std::vector<EdgeId> pathEdges(const Graph& g, const std::vector<VertexId>& path) {
  std::vector<EdgeId> out;
  if (path.size() < 2) return out;
  out.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const EdgeId e = g.findEdge(path[i], path[i + 1]);
    if (e == kNoEdge) throw std::invalid_argument("pathEdges: non-adjacent pair");
    out.push_back(e);
  }
  return out;
}

std::optional<std::vector<int>> bipartition(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  std::vector<int> color(n, -1);
  for (VertexId s = 0; s < g.numVertices(); ++s) {
    if (color[static_cast<std::size_t>(s)] != -1) continue;
    color[static_cast<std::size_t>(s)] = 0;
    std::queue<VertexId> q;
    q.push(s);
    while (!q.empty()) {
      const VertexId u = q.front();
      q.pop();
      for (const Arc& a : g.arcs(u)) {
        if (color[static_cast<std::size_t>(a.to)] == -1) {
          color[static_cast<std::size_t>(a.to)] = 1 - color[static_cast<std::size_t>(u)];
          q.push(a.to);
        } else if (color[static_cast<std::size_t>(a.to)] == color[static_cast<std::size_t>(u)]) {
          return std::nullopt;
        }
      }
    }
  }
  return color;
}

DegeneracyOrientation degeneracyOrient(const Graph& g) {
  DegeneracyOrientation out;
  const auto n = static_cast<std::size_t>(g.numVertices());
  out.headOf.assign(static_cast<std::size_t>(g.numEdges()), kNoVertex);
  std::vector<int> deg(n);
  std::vector<char> removed(n, 0);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    deg[static_cast<std::size_t>(v)] = g.degree(v);
  }
  // Bucket queue over degrees for O(n + m).
  const int maxDeg = g.numVertices() == 0 ? 0 : *std::max_element(deg.begin(), deg.end());
  std::vector<std::vector<VertexId>> bucket(static_cast<std::size_t>(maxDeg) + 1);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    bucket[static_cast<std::size_t>(deg[static_cast<std::size_t>(v)])].push_back(v);
  }
  int cursor = 0;
  for (VertexId step = 0; step < g.numVertices(); ++step) {
    // Find the lowest non-empty bucket; degrees only decrease, but removals
    // may repopulate lower buckets, so rewind the cursor as needed.
    while (cursor > 0 && !bucket[static_cast<std::size_t>(cursor - 1)].empty()) --cursor;
    while (bucket[static_cast<std::size_t>(cursor)].empty()) ++cursor;
    VertexId v = kNoVertex;
    // Pop entries until we find one that is current (lazy deletion).
    while (true) {
      auto& b = bucket[static_cast<std::size_t>(cursor)];
      if (b.empty()) {
        ++cursor;
        continue;
      }
      const VertexId cand = b.back();
      b.pop_back();
      if (!removed[static_cast<std::size_t>(cand)] &&
          deg[static_cast<std::size_t>(cand)] == cursor) {
        v = cand;
        break;
      }
    }
    removed[static_cast<std::size_t>(v)] = 1;
    out.removalOrder.push_back(v);
    out.degeneracy = std::max(out.degeneracy, deg[static_cast<std::size_t>(v)]);
    for (const Arc& a : g.arcs(v)) {
      if (removed[static_cast<std::size_t>(a.to)]) continue;
      // Edge leaves the removed vertex: orient v -> a.to.
      out.headOf[static_cast<std::size_t>(a.edge)] = a.to;
      int& d = deg[static_cast<std::size_t>(a.to)];
      --d;
      bucket[static_cast<std::size_t>(d)].push_back(a.to);
      if (d < cursor) cursor = d;
    }
  }
  return out;
}

bool isForest(const Graph& g) {
  const Components c = connectedComponents(g);
  // A graph is a forest iff m = n - (#components).
  return g.numEdges() == g.numVertices() - c.count;
}

long long countTriangles(const Graph& g) {
  long long count = 0;
  for (const Edge& e : g.edges()) {
    const VertexId u = e.u;
    const VertexId v = e.v;
    // Count common neighbors w with w > max(u, v) to count each triangle once
    // per its lexicographically largest vertex... simpler: count all common
    // neighbors and divide total by 3 at the end.
    for (const Arc& a : g.arcs(u)) {
      if (a.to != v && g.hasEdge(a.to, v)) ++count;
    }
  }
  return count / 3;  // each triangle counted once per edge
}

int maxDegree(const Graph& g) {
  int d = 0;
  for (VertexId v = 0; v < g.numVertices(); ++v) d = std::max(d, g.degree(v));
  return d;
}

bool isPathGraph(const Graph& g) {
  const VertexId n = g.numVertices();
  if (n == 0) return false;
  if (g.numEdges() != n - 1) return false;
  if (!isConnected(g)) return false;
  int deg1 = 0;
  for (VertexId v = 0; v < n; ++v) {
    const int d = g.degree(v);
    if (d > 2) return false;
    if (d == 1) ++deg1;
  }
  return n == 1 || deg1 == 2;
}

bool isCycleGraph(const Graph& g) {
  const VertexId n = g.numVertices();
  if (n < 3) return false;
  if (g.numEdges() != n) return false;
  if (!isConnected(g)) return false;
  for (VertexId v = 0; v < n; ++v) {
    if (g.degree(v) != 2) return false;
  }
  return true;
}

}  // namespace lanecert
