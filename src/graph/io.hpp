#pragma once
// Text import/export for graphs: GraphViz DOT output for figures and a
// minimal edge-list format used by tests and examples.

#include <string>

#include "graph/graph.hpp"

namespace lanecert {

/// GraphViz DOT rendering ("graph G { ... }").
[[nodiscard]] std::string toDot(const Graph& g);

/// Edge-list text: first line "n m", then one "u v" line per edge.
[[nodiscard]] std::string toEdgeList(const Graph& g);

/// Parses the `toEdgeList` format. Throws std::invalid_argument on
/// malformed input.
[[nodiscard]] Graph fromEdgeList(const std::string& text);

}  // namespace lanecert
