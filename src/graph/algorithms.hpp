#pragma once
// Classic graph algorithms needed by the certification pipeline:
// traversal, connectivity, spanning trees, shortest paths, bipartiteness,
// degeneracy orientations (Prop 2.1), and small helpers used in tests.

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace lanecert {

class ParallelExecutor;

/// BFS distances from `source`; unreachable vertices get -1.
[[nodiscard]] std::vector<int> bfsDistances(const Graph& g, VertexId source);

/// Connected-component labels in [0, numComponents); also returns the count.
struct Components {
  std::vector<int> label;  ///< component index per vertex
  int count = 0;           ///< number of components
};
[[nodiscard]] Components connectedComponents(const Graph& g);

/// True if the graph is connected (the empty graph counts as connected).
[[nodiscard]] bool isConnected(const Graph& g);

/// A rooted spanning tree given by parent pointers.
/// parentVertex[root] == kNoVertex and parentEdge[root] == kNoEdge.
struct SpanningTree {
  VertexId root = kNoVertex;
  std::vector<VertexId> parentVertex;
  std::vector<EdgeId> parentEdge;
  std::vector<int> depth;  ///< distance to root along tree edges
};

/// BFS spanning tree rooted at `root`. Precondition: g is connected.
[[nodiscard]] SpanningTree bfsTree(const Graph& g, VertexId root);

/// Frontier-parallel BFS spanning tree: each level's adjacency scan shards
/// over `exec`, and an ORDERED merge claims newly discovered vertices in
/// exactly the serial queue order (first proposer in frontier-position then
/// arc order wins) — the returned tree is BIT-IDENTICAL to bfsTree(g, root)
/// for every thread count.  Precondition: g is connected.
[[nodiscard]] SpanningTree bfsTree(const Graph& g, VertexId root,
                                   ParallelExecutor& exec);

/// Any simple path from `s` to `t` as a vertex sequence (BFS, so in fact a
/// shortest path). Empty if unreachable; {s} if s == t.
[[nodiscard]] std::vector<VertexId> shortestPath(const Graph& g, VertexId s,
                                                 VertexId t);

/// Edge ids along a vertex path; precondition: consecutive vertices adjacent.
[[nodiscard]] std::vector<EdgeId> pathEdges(const Graph& g,
                                            const std::vector<VertexId>& path);

/// Proper 2-coloring if one exists (graph bipartite), else nullopt.
[[nodiscard]] std::optional<std::vector<int>> bipartition(const Graph& g);

/// A d-degenerate edge orientation: `headOf[e]` is the endpoint the edge
/// points TO, chosen so that every vertex has outdegree <= degeneracy.
/// Computed by repeatedly removing a minimum-degree vertex; edges incident
/// to the removed vertex are oriented OUT of it. Returns the degeneracy d.
struct DegeneracyOrientation {
  int degeneracy = 0;
  std::vector<VertexId> headOf;  ///< per edge: the endpoint it points to
  std::vector<VertexId> removalOrder;
};
[[nodiscard]] DegeneracyOrientation degeneracyOrient(const Graph& g);

/// True if the graph contains no cycle.
[[nodiscard]] bool isForest(const Graph& g);

/// Number of triangles (3-cliques); brute force over edges, for tests.
[[nodiscard]] long long countTriangles(const Graph& g);

/// Maximum degree (0 for the empty graph).
[[nodiscard]] int maxDegree(const Graph& g);

/// True if the graph is a simple path on all its vertices (n>=1).
[[nodiscard]] bool isPathGraph(const Graph& g);

/// True if the graph is a single simple cycle on all its vertices (n>=3).
[[nodiscard]] bool isCycleGraph(const Graph& g);

}  // namespace lanecert
