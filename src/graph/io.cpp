#include "graph/io.hpp"

#include <sstream>
#include <stdexcept>

namespace lanecert {

std::string toDot(const Graph& g) {
  std::ostringstream os;
  os << "graph G {\n";
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    os << "  " << v << ";\n";
  }
  for (const Edge& e : g.edges()) {
    os << "  " << e.u << " -- " << e.v << ";\n";
  }
  os << "}\n";
  return os.str();
}

std::string toEdgeList(const Graph& g) {
  std::ostringstream os;
  os << g.numVertices() << ' ' << g.numEdges() << '\n';
  for (const Edge& e : g.edges()) {
    os << e.u << ' ' << e.v << '\n';
  }
  return os.str();
}

Graph fromEdgeList(const std::string& text) {
  std::istringstream is(text);
  VertexId n = 0;
  EdgeId m = 0;
  if (!(is >> n >> m)) {
    throw std::invalid_argument("fromEdgeList: missing header");
  }
  Graph g(n);
  for (EdgeId i = 0; i < m; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    if (!(is >> u >> v)) {
      throw std::invalid_argument("fromEdgeList: truncated edge list");
    }
    g.addEdge(u, v);
  }
  return g;
}

}  // namespace lanecert
