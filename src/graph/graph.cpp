#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>
#include <random>
#include <stdexcept>
#include <unordered_map>

namespace lanecert {

EdgeId Graph::addEdge(VertexId u, VertexId v) {
  if (u == v) throw std::invalid_argument("Graph::addEdge: self-loop");
  if (u < 0 || v < 0 || u >= numVertices() || v >= numVertices()) {
    throw std::out_of_range("Graph::addEdge: vertex out of range");
  }
  if (hasEdge(u, v)) {
    throw std::invalid_argument("Graph::addEdge: parallel edge");
  }
  const EdgeId e = numEdges();
  edges_.push_back(Edge{u, v});
  adj_[static_cast<std::size_t>(u)].push_back(Arc{v, e});
  adj_[static_cast<std::size_t>(v)].push_back(Arc{u, e});
  return e;
}

EdgeId Graph::findEdge(VertexId u, VertexId v) const {
  if (u < 0 || v < 0 || u >= numVertices() || v >= numVertices()) {
    return kNoEdge;
  }
  const auto& a = adj_[static_cast<std::size_t>(u)];
  const auto& b = adj_[static_cast<std::size_t>(v)];
  const auto& shorter = a.size() <= b.size() ? a : b;
  const VertexId target = a.size() <= b.size() ? v : u;
  for (const Arc& arc : shorter) {
    if (arc.to == target) return arc.edge;
  }
  return kNoEdge;
}

bool Graph::sameEdgeSet(const Graph& other) const {
  if (numVertices() != other.numVertices()) return false;
  if (numEdges() != other.numEdges()) return false;
  auto normalize = [](const std::vector<Edge>& es) {
    std::vector<std::pair<VertexId, VertexId>> out;
    out.reserve(es.size());
    for (const Edge& e : es) {
      out.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  return normalize(edges_) == normalize(other.edges_);
}

std::string Graph::summary() const {
  return "Graph(n=" + std::to_string(numVertices()) +
         ", m=" + std::to_string(numEdges()) + ")";
}

IdAssignment IdAssignment::identity(VertexId n) {
  IdAssignment a;
  a.ids_.resize(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) a.ids_[static_cast<std::size_t>(v)] = static_cast<std::uint64_t>(v);
  return a;
}

IdAssignment IdAssignment::random(VertexId n, std::uint64_t seed) {
  IdAssignment a;
  a.ids_.resize(static_cast<std::size_t>(n));
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> dist(0, (std::uint64_t{1} << 62) - 1);
  std::unordered_map<std::uint64_t, bool> used;
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t id = dist(rng);
    while (used.count(id) != 0) id = dist(rng);
    used[id] = true;
    a.ids_[static_cast<std::size_t>(v)] = id;
  }
  return a;
}

VertexId IdAssignment::vertexOf(std::uint64_t id) const {
  for (std::size_t v = 0; v < ids_.size(); ++v) {
    if (ids_[v] == id) return static_cast<VertexId>(v);
  }
  return kNoVertex;
}

}  // namespace lanecert
