#include "pathwidth/pathwidth.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <utility>

#include "runtime/executor.hpp"

namespace lanecert {

namespace {

/// Below this vertex count a parallel candidate scan costs more in shard
/// wake-ups than the scan itself; the greedy loop stays serial.
constexpr int kParallelGreedyMinVertices = 256;

/// Neighbor bitmasks for graphs with <= 32 vertices.
std::vector<std::uint32_t> neighborMasks(const Graph& g) {
  std::vector<std::uint32_t> nbr(static_cast<std::size_t>(g.numVertices()), 0);
  for (const Edge& e : g.edges()) {
    nbr[static_cast<std::size_t>(e.u)] |= std::uint32_t{1} << e.v;
    nbr[static_cast<std::size_t>(e.v)] |= std::uint32_t{1} << e.u;
  }
  return nbr;
}

/// Number of prefix vertices (bits of S) with a neighbor outside S.
int boundarySize(std::uint32_t s, const std::vector<std::uint32_t>& nbr) {
  int b = 0;
  std::uint32_t rest = s;
  while (rest != 0) {
    const int v = std::countr_zero(rest);
    rest &= rest - 1;
    if ((nbr[static_cast<std::size_t>(v)] & ~s) != 0) ++b;
  }
  return b;
}

}  // namespace

std::optional<Layout> exactVertexSeparation(const Graph& g, int maxN) {
  const int n = g.numVertices();
  if (n > maxN || n > 25) return std::nullopt;
  if (n == 0) return Layout{};
  const auto nbr = neighborMasks(g);
  const std::size_t full = std::size_t{1} << n;
  // f[S] = min over orderings of S of the max boundary over prefixes of S,
  // where the boundary of a prefix P is measured against V (not just S):
  // vertices of P with neighbors outside P.  Recurrence:
  //   f(S) = max( boundary(S), min_{v in S} f(S \ {v}) ).
  constexpr std::uint8_t kInf = std::numeric_limits<std::uint8_t>::max();
  std::vector<std::uint8_t> f(full, kInf);
  std::vector<std::int8_t> lastChoice(full, -1);
  f[0] = 0;
  for (std::uint32_t s = 1; s < full; ++s) {
    const int b = boundarySize(s, nbr);
    std::uint8_t best = kInf;
    std::int8_t bestV = -1;
    std::uint32_t rest = s;
    while (rest != 0) {
      const int v = std::countr_zero(rest);
      rest &= rest - 1;
      const std::uint8_t sub = f[s & ~(std::uint32_t{1} << v)];
      if (sub < best) {
        best = sub;
        bestV = static_cast<std::int8_t>(v);
      }
    }
    f[s] = std::max<std::uint8_t>(best, static_cast<std::uint8_t>(b));
    lastChoice[s] = bestV;
  }
  Layout out;
  out.cost = f[full - 1];
  // Reconstruct the ordering back-to-front.
  std::uint32_t s = static_cast<std::uint32_t>(full - 1);
  std::vector<VertexId> rev;
  while (s != 0) {
    const int v = lastChoice[s];
    rev.push_back(static_cast<VertexId>(v));
    s &= ~(std::uint32_t{1} << v);
  }
  out.order.assign(rev.rbegin(), rev.rend());
  // lastChoice minimizes f(S\{v}) which is the correct greedy for the
  // recurrence, but the recorded cost is authoritative:
  out.cost = layoutCost(g, out.order);
  return out;
}

Layout greedyVertexSeparation(const Graph& g, ParallelExecutor* exec) {
  const int n = g.numVertices();
  Layout out;
  std::vector<char> inPrefix(static_cast<std::size_t>(n), 0);
  // outNbrs[x]: neighbors of x outside the prefix (defined for all x).
  std::vector<int> outNbrs(static_cast<std::size_t>(n), 0);
  for (VertexId v = 0; v < n; ++v) outNbrs[static_cast<std::size_t>(v)] = g.degree(v);
  int boundary = 0;  // prefix vertices with outNbrs > 0

  // Adding v changes the boundary by: +1 if v keeps outside neighbors,
  // -1 for each boundary neighbor whose last outside neighbor was v.
  auto deltaOfAdding = [&](VertexId v) {
    int delta = outNbrs[static_cast<std::size_t>(v)] > 0 ? 1 : 0;
    for (const Arc& a : g.arcs(v)) {
      if (inPrefix[static_cast<std::size_t>(a.to)] &&
          outNbrs[static_cast<std::size_t>(a.to)] == 1) {
        --delta;
      }
    }
    return delta;
  };

  // First minimum over [lo, hi): strict `<` keeps the smallest id on ties,
  // matching the serial scan exactly on any subrange.
  auto scanRange = [&](VertexId lo, VertexId hi) {
    VertexId best = kNoVertex;
    int bestCost = std::numeric_limits<int>::max();
    for (VertexId v = lo; v < hi; ++v) {
      if (inPrefix[static_cast<std::size_t>(v)]) continue;
      const int cost = boundary + deltaOfAdding(v);
      if (cost < bestCost) {
        bestCost = cost;
        best = v;
      }
    }
    return std::pair<int, VertexId>{bestCost, best};
  };

  const bool parallel = exec != nullptr && exec->numThreads() > 1 &&
                        n >= kParallelGreedyMinVertices;
  std::vector<std::pair<int, VertexId>> shardBest;
  if (parallel) {
    shardBest.resize(static_cast<std::size_t>(exec->numThreads()));
  }

  for (int step = 0; step < n; ++step) {
    VertexId best = kNoVertex;
    int bestCost = std::numeric_limits<int>::max();
    if (parallel) {
      // Shards cover [0, n) contiguously in ascending vertex order; merging
      // shard-local first-minima in shard order with strict `<` reproduces
      // the serial first-minimum (smallest id among minimum-cost vertices).
      exec->forShards(static_cast<std::size_t>(n),
                      [&](std::size_t shard, std::size_t begin,
                          std::size_t end) {
                        shardBest[shard] =
                            scanRange(static_cast<VertexId>(begin),
                                      static_cast<VertexId>(end));
                      });
      for (const auto& [cost, v] : shardBest) {
        if (v != kNoVertex && cost < bestCost) {
          bestCost = cost;
          best = v;
        }
      }
    } else {
      std::tie(bestCost, best) = scanRange(0, n);
    }
    inPrefix[static_cast<std::size_t>(best)] = 1;
    // `best` is no longer outside: every neighbor loses one outside
    // neighbor; prefix neighbors dropping to zero leave the boundary.
    for (const Arc& a : g.arcs(best)) {
      --outNbrs[static_cast<std::size_t>(a.to)];
      if (inPrefix[static_cast<std::size_t>(a.to)] &&
          outNbrs[static_cast<std::size_t>(a.to)] == 0) {
        --boundary;
      }
    }
    if (outNbrs[static_cast<std::size_t>(best)] > 0) ++boundary;
    out.order.push_back(best);
  }
  out.cost = layoutCost(g, out.order);
  return out;
}

int layoutCost(const Graph& g, const std::vector<VertexId>& order) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  if (order.size() != n) {
    throw std::invalid_argument("layoutCost: order must be a permutation");
  }
  std::vector<int> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  int best = 0;
  std::vector<int> outNbrs(n, 0);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    outNbrs[static_cast<std::size_t>(v)] = g.degree(v);
  }
  int boundary = 0;
  std::vector<char> inPrefix(n, 0);
  std::vector<char> onBoundary(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    inPrefix[static_cast<std::size_t>(v)] = 1;
    for (const Arc& a : g.arcs(v)) {
      if (inPrefix[static_cast<std::size_t>(a.to)]) {
        --outNbrs[static_cast<std::size_t>(a.to)];
        --outNbrs[static_cast<std::size_t>(v)];
        if (onBoundary[static_cast<std::size_t>(a.to)] &&
            outNbrs[static_cast<std::size_t>(a.to)] == 0) {
          onBoundary[static_cast<std::size_t>(a.to)] = 0;
          --boundary;
        }
      }
    }
    if (outNbrs[static_cast<std::size_t>(v)] > 0) {
      onBoundary[static_cast<std::size_t>(v)] = 1;
      ++boundary;
    }
    best = std::max(best, boundary);
  }
  return best;
}

IntervalRepresentation layoutToIntervalRep(const Graph& g,
                                           const std::vector<VertexId>& order) {
  const auto n = static_cast<std::size_t>(g.numVertices());
  if (order.size() != n) {
    throw std::invalid_argument("layoutToIntervalRep: order must be a permutation");
  }
  std::vector<int> pos(n);
  for (std::size_t i = 0; i < n; ++i) {
    pos[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }
  std::vector<Interval> iv(n);
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    int r = pos[static_cast<std::size_t>(v)];
    for (const Arc& a : g.arcs(v)) {
      r = std::max(r, pos[static_cast<std::size_t>(a.to)]);
    }
    iv[static_cast<std::size_t>(v)] = Interval{pos[static_cast<std::size_t>(v)], r};
  }
  return IntervalRepresentation(std::move(iv));
}

std::optional<int> exactPathwidth(const Graph& g, int maxN) {
  auto layout = exactVertexSeparation(g, maxN);
  if (!layout) return std::nullopt;
  return layout->cost;
}

IntervalRepresentation bestIntervalRepresentation(const Graph& g, int exactMaxN,
                                                  ParallelExecutor* exec) {
  auto layout = exactVertexSeparation(g, exactMaxN);
  if (!layout) layout = greedyVertexSeparation(g, exec);
  return layoutToIntervalRep(g, layout->order);
}

}  // namespace lanecert
