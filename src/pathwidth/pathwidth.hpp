#pragma once
// Pathwidth computation.
//
// We use the classical identity pathwidth(G) = vertex separation number
// vsn(G): the minimum over vertex orderings of the maximum, over prefixes,
// of the number of prefix vertices with a neighbor outside the prefix.
// An optimal ordering converts directly into an interval representation of
// width vsn+1 (and hence a path decomposition of width vsn).
//
// - `exactVertexSeparation`: exponential subset DP, exact for n <= ~22.
// - `greedyVertexSeparation`: O(n^2 deg) heuristic for larger graphs.
//
// (The calibration notes mention PACE pathwidth solvers; those are
// competition-scale branch-and-bound engines.  The subset DP is exact and
// sufficient for validating the certification pipeline; large benchmark
// instances come from generators with known decompositions instead.)

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"

namespace lanecert {

class ParallelExecutor;

/// A vertex ordering together with its vertex-separation cost.
struct Layout {
  std::vector<VertexId> order;  ///< permutation of 0..n-1
  int cost = 0;                 ///< vertex separation = pathwidth achieved
};

/// Exact vertex separation (= pathwidth) by DP over vertex subsets.
/// Returns nullopt if numVertices() > maxN (cost 2^n memory/time).
[[nodiscard]] std::optional<Layout> exactVertexSeparation(const Graph& g,
                                                          int maxN = 22);

/// Greedy heuristic: repeatedly append the vertex minimizing the boundary
/// of the extended prefix (ties: smaller id).  Upper-bounds pathwidth.
///
/// With a non-null `exec`, each step's candidate argmin runs as a
/// deterministic shard scan over the executor: shard-local first-minima are
/// merged in ascending shard order with a strict `<`, which picks exactly
/// the smallest-id global minimum — the same vertex the serial loop picks —
/// so the ordering is bit-identical for every thread count.  Small graphs
/// stay serial (shard wake-ups would dominate the O(n deg) scan).
[[nodiscard]] Layout greedyVertexSeparation(const Graph& g,
                                            ParallelExecutor* exec = nullptr);

/// The vertex-separation cost of a given ordering (max boundary size).
[[nodiscard]] int layoutCost(const Graph& g, const std::vector<VertexId>& order);

/// Converts a vertex ordering into an interval representation of G with
/// width == layoutCost + 1: L_v = position of v, R_v = max position over
/// {v} ∪ N(v).
[[nodiscard]] IntervalRepresentation layoutToIntervalRep(
    const Graph& g, const std::vector<VertexId>& order);

/// Exact pathwidth for small graphs (nullopt if too large).
[[nodiscard]] std::optional<int> exactPathwidth(const Graph& g, int maxN = 22);

/// Best interval representation we can compute: exact for small graphs,
/// greedy otherwise.  Always valid for g; width <= returned rep's width().
/// `exec` (optional) parallelizes the greedy path — see
/// greedyVertexSeparation; the result is identical with or without it.
[[nodiscard]] IntervalRepresentation bestIntervalRepresentation(
    const Graph& g, int exactMaxN = 18, ParallelExecutor* exec = nullptr);

}  // namespace lanecert
