#include "klane/validate.hpp"

#include <algorithm>
#include <iterator>
#include <map>
#include <queue>
#include <set>
#include <sstream>

#include "runtime/executor.hpp"

namespace lanecert {

namespace {

std::string nodeRef(const Hierarchy& h, int id) {
  static const char* names[] = {"V", "E", "P", "B", "T"};
  std::ostringstream os;
  os << names[static_cast<int>(h.node(id).type)] << "#" << id;
  return os.str();
}

bool subgraphConnected(const std::vector<VertexId>& verts,
                       const std::vector<std::pair<VertexId, VertexId>>& edges) {
  if (verts.empty()) return false;
  std::map<VertexId, std::vector<VertexId>> adj;
  for (VertexId v : verts) adj[v];
  for (const auto& [a, b] : edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  std::set<VertexId> seen{verts[0]};
  std::queue<VertexId> q;
  q.push(verts[0]);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (VertexId w : adj[u]) {
      if (seen.insert(w).second) q.push(w);
    }
  }
  return seen.size() == verts.size();
}

/// All per-node checks for node `id`; reads only immutable state, so the
/// sweep can run nodes concurrently.
template <typename Fail>
void validateNode(const Hierarchy& h, int id, const Fail& fail) {
  const HierNode& n = h.node(id);
  const std::string ref = nodeRef(h, id);
  if (n.lanes.empty()) fail(ref + ": empty lane set");
  if (!std::is_sorted(n.lanes.begin(), n.lanes.end()) ||
      std::adjacent_find(n.lanes.begin(), n.lanes.end()) != n.lanes.end()) {
    fail(ref + ": lanes not sorted/unique");
  }
  // Terminals defined exactly on the lane set and inside the subgraph.
  const auto verts = h.materializeVertices(id);
  for (const TerminalMap* tm : {&n.inTerm, &n.outTerm}) {
    if (tm->entries().size() != n.lanes.size()) {
      fail(ref + ": terminal count != lane count");
    }
    for (const auto& [lane, vert] : tm->entries()) {
      if (!std::binary_search(n.lanes.begin(), n.lanes.end(), lane)) {
        fail(ref + ": terminal on foreign lane");
      }
      if (!std::binary_search(verts.begin(), verts.end(), vert)) {
        fail(ref + ": terminal vertex outside subgraph");
      }
    }
  }
  // Per-node connectivity (claimed at the end of Section 5.3).
  if (!subgraphConnected(verts, h.materializeEdges(id))) {
    fail(ref + ": subgraph not connected");
  }
  // Parent link sanity.
  for (int c : n.children) {
    if (h.node(c).parent != id) fail(ref + ": child/parent link broken");
  }

  switch (n.type) {
    case HierNode::Type::kV:
      if (!n.children.empty()) fail(ref + ": V-node with children");
      if (n.lanes.size() != 1) fail(ref + ": V-node lane count");
      if (n.inTerm.at(n.lanes[0]) != n.u || n.outTerm.at(n.lanes[0]) != n.u) {
        fail(ref + ": V-node terminals");
      }
      break;
    case HierNode::Type::kE:
      if (!n.children.empty()) fail(ref + ": E-node with children");
      if (n.lanes.size() != 1 || n.lanes[0] != n.laneI) {
        fail(ref + ": E-node lane");
      }
      if (n.u == n.v) fail(ref + ": E-node degenerate edge");
      if (n.inTerm.at(n.laneI) != n.u || n.outTerm.at(n.laneI) != n.v) {
        fail(ref + ": E-node terminals");
      }
      break;
    case HierNode::Type::kP: {
      if (!n.children.empty()) fail(ref + ": P-node with children");
      if (n.pathVertices.size() != n.lanes.size()) {
        fail(ref + ": P-node path length != lane count");
      }
      for (std::size_t i = 0; i < n.pathVertices.size(); ++i) {
        const int lane = n.lanes[i];
        if (n.inTerm.at(lane) != n.pathVertices[i] ||
            n.outTerm.at(lane) != n.pathVertices[i]) {
          fail(ref + ": P-node terminal layout");
        }
      }
      break;
    }
    case HierNode::Type::kB: {
      if (n.children.size() != 2) {
        fail(ref + ": B-node must have 2 children");
        break;
      }
      const HierNode& c0 = h.node(n.children[0]);
      const HierNode& c1 = h.node(n.children[1]);
      for (const HierNode* c : {&c0, &c1}) {
        if (c->type != HierNode::Type::kV && c->type != HierNode::Type::kT) {
          fail(ref + ": B-node child must be V or T");
        }
      }
      std::vector<int> merged = c0.lanes;
      merged.insert(merged.end(), c1.lanes.begin(), c1.lanes.end());
      std::sort(merged.begin(), merged.end());
      if (std::adjacent_find(merged.begin(), merged.end()) != merged.end()) {
        fail(ref + ": Bridge-merge lane sets overlap");
      }
      if (merged != n.lanes) fail(ref + ": B-node lanes != union of parts");
      if (c0.outTerm.at(n.laneI) != n.u || c1.outTerm.at(n.laneJ) != n.v) {
        fail(ref + ": bridge endpoints are not the parts' out-terminals");
      }
      // Terminals inherited from the right part.
      for (int lane : n.lanes) {
        const HierNode& src =
            std::binary_search(c0.lanes.begin(), c0.lanes.end(), lane) ? c0 : c1;
        if (n.inTerm.at(lane) != src.inTerm.at(lane) ||
            n.outTerm.at(lane) != src.outTerm.at(lane)) {
          fail(ref + ": B-node terminal inheritance");
        }
      }
      break;
    }
    case HierNode::Type::kT: {
      if (n.children.empty()) {
        fail(ref + ": T-node without children");
        break;
      }
      if (n.rootChildPos < 0 ||
          n.rootChildPos >= static_cast<int>(n.children.size())) {
        fail(ref + ": T-node root child position invalid");
        break;
      }
      if (n.treeParentPos.size() != n.children.size()) {
        fail(ref + ": treeParentPos size mismatch");
        break;
      }
      const HierNode& rootChild =
          h.node(n.children[static_cast<std::size_t>(n.rootChildPos)]);
      if (n.lanes != rootChild.lanes) fail(ref + ": T-node lanes != root child");
      if (!(n.inTerm == rootChild.inTerm)) {
        fail(ref + ": T-node in-terminals != root child");
      }
      int roots = 0;
      for (std::size_t p = 0; p < n.children.size(); ++p) {
        const HierNode& c = h.node(n.children[p]);
        if (c.type != HierNode::Type::kE && c.type != HierNode::Type::kP &&
            c.type != HierNode::Type::kB) {
          fail(ref + ": T-node child must be E, P, or B");
        }
        const int pp = n.treeParentPos[p];
        if (pp < 0) {
          ++roots;
          continue;
        }
        const HierNode& tp = h.node(n.children[static_cast<std::size_t>(pp)]);
        // Tree-merge condition: child lanes ⊆ parent lanes.
        if (!std::includes(tp.lanes.begin(), tp.lanes.end(), c.lanes.begin(),
                           c.lanes.end())) {
          fail(ref + ": Tree-merge lane nesting violated");
        }
        // Gluing: each in-terminal of the child IS the parent's
        // out-terminal in the same lane.
        for (int lane : c.lanes) {
          if (c.inTerm.at(lane) != tp.outTerm.at(lane)) {
            fail(ref + ": Tree-merge gluing violated on lane " +
                 std::to_string(lane));
          }
        }
      }
      if (roots != 1) fail(ref + ": Tree-merge tree must have one root");
      // Siblings with the same tree parent: disjoint lane sets.
      for (std::size_t p = 0; p < n.children.size(); ++p) {
        for (std::size_t q = p + 1; q < n.children.size(); ++q) {
          if (n.treeParentPos[p] != n.treeParentPos[q]) continue;
          const auto& a = h.node(n.children[p]).lanes;
          const auto& b = h.node(n.children[q]).lanes;
          std::vector<int> inter;
          std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(inter));
          if (!inter.empty()) fail(ref + ": Tree-merge sibling lanes overlap");
        }
      }
      // T-node out-terminals: lowest lane-owning node in the tree.
      const auto subOut = subtreeOutTerminals(h, id);
      const TerminalMap& rootOut = subOut[static_cast<std::size_t>(n.rootChildPos)];
      if (!(n.outTerm == rootOut)) fail(ref + ": T-node out-terminals wrong");
      break;
    }
  }
}

}  // namespace

std::vector<TerminalMap> subtreeOutTerminals(const Hierarchy& h, int tNodeId) {
  const HierNode& t = h.node(tNodeId);
  const std::size_t x = t.children.size();
  std::vector<std::vector<int>> treeChildren(x);
  for (std::size_t p = 0; p < x; ++p) {
    if (t.treeParentPos[p] >= 0) {
      treeChildren[static_cast<std::size_t>(t.treeParentPos[p])].push_back(
          static_cast<int>(p));
    }
  }
  std::vector<TerminalMap> out(x);
  for (std::size_t p = 0; p < x; ++p) {
    for (int lane : h.node(t.children[p]).lanes) {
      int cur = static_cast<int>(p);
      while (true) {
        int next = -1;
        for (int q : treeChildren[static_cast<std::size_t>(cur)]) {
          const auto& lanes = h.node(t.children[static_cast<std::size_t>(q)]).lanes;
          if (std::binary_search(lanes.begin(), lanes.end(), lane)) {
            next = q;
            break;
          }
        }
        if (next < 0) break;
        cur = next;
      }
      out[p].set(lane, h.node(t.children[static_cast<std::size_t>(cur)]).outTerm.at(lane));
    }
  }
  return out;
}

std::vector<std::string> validateHierarchy(const HierarchyResult& result,
                                           int numLanes, int numThreads) {
  const Hierarchy& h = result.hierarchy;
  const Graph& g = result.graph;
  std::vector<std::string> errs;
  auto fail = [&errs](const std::string& msg) { errs.push_back(msg); };

  // Depth bound (Observation 5.5).
  if (h.depth() > 2 * numLanes) {
    fail("depth " + std::to_string(h.depth()) + " exceeds 2w = " +
         std::to_string(2 * numLanes));
  }

  // Edge coverage: the root materializes exactly the graph, and every edge's
  // owner actually owns it.
  {
    auto edges = h.materializeEdges(h.root());
    if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) {
      fail("an edge is owned by two nodes");
    }
    std::vector<std::pair<VertexId, VertexId>> expected;
    for (const Edge& e : g.edges()) {
      expected.emplace_back(std::min(e.u, e.v), std::max(e.u, e.v));
    }
    std::sort(expected.begin(), expected.end());
    if (edges != expected) fail("root edge set differs from the graph");
    for (EdgeId e = 0; e < g.numEdges(); ++e) {
      const int owner = result.edgeOwner[static_cast<std::size_t>(e)];
      if (owner < 0) {
        fail("edge without owner");
        continue;
      }
      const HierNode& n = h.node(owner);
      const auto key = std::make_pair(std::min(g.edge(e).u, g.edge(e).v),
                                      std::max(g.edge(e).u, g.edge(e).v));
      const bool owns =
          (n.type == HierNode::Type::kE || n.type == HierNode::Type::kB)
              ? key == std::make_pair(std::min(n.u, n.v), std::max(n.u, n.v))
              : n.type == HierNode::Type::kP;
      if (!owns) fail("edge owner mismatch at " + nodeRef(h, owner));
    }
  }

  // Per-node checks are independent; shard them over the executor and merge
  // violations in node order (identical output for every thread count).
  ParallelExecutor exec(numThreads);
  std::vector<std::vector<std::string>> shardErrs(
      static_cast<std::size_t>(exec.numThreads()));
  exec.forShards(
      static_cast<std::size_t>(h.size()),
      [&](std::size_t shard, std::size_t begin, std::size_t end) {
        std::vector<std::string>& out = shardErrs[shard];
        const auto failHere = [&out](const std::string& msg) {
          out.push_back(msg);
        };
        for (std::size_t id = begin; id < end; ++id) {
          validateNode(h, static_cast<int>(id), failHere);
        }
      });
  for (std::vector<std::string>& shard : shardErrs) {
    errs.insert(errs.end(), std::make_move_iterator(shard.begin()),
                std::make_move_iterator(shard.end()));
  }
  return errs;
}

}  // namespace lanecert
