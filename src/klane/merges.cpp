#include "klane/merges.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace lanecert {

namespace {

void sortUnique(std::vector<VertexId>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

std::pair<VertexId, VertexId> normEdge(VertexId a, VertexId b) {
  return {std::min(a, b), std::max(a, b)};
}

void requireDisjointLanes(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> inter;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(inter));
  if (!inter.empty()) {
    throw std::invalid_argument("merge: lane sets must be disjoint");
  }
}

}  // namespace

std::vector<std::string> validateKLane(const KLaneGraph& g) {
  std::vector<std::string> errs;
  if (g.lanes.empty()) errs.push_back("empty lane set");
  if (!std::is_sorted(g.lanes.begin(), g.lanes.end()) ||
      std::adjacent_find(g.lanes.begin(), g.lanes.end()) != g.lanes.end()) {
    errs.push_back("lanes not sorted/unique");
  }
  if (!std::is_sorted(g.vertices.begin(), g.vertices.end()) ||
      std::adjacent_find(g.vertices.begin(), g.vertices.end()) !=
          g.vertices.end()) {
    errs.push_back("vertices not sorted/unique");
  }
  for (const TerminalMap* tm : {&g.inTerm, &g.outTerm}) {
    if (tm->entries().size() != g.lanes.size()) {
      errs.push_back("terminal count != lane count");
    }
    for (const auto& [lane, v] : tm->entries()) {
      if (!std::binary_search(g.lanes.begin(), g.lanes.end(), lane)) {
        errs.push_back("terminal on foreign lane");
      }
      if (!std::binary_search(g.vertices.begin(), g.vertices.end(), v)) {
        errs.push_back("terminal outside vertex set");
      }
    }
  }
  // Injectivity of φ_in and φ_out (Definition 5.3).
  for (const TerminalMap* tm : {&g.inTerm, &g.outTerm}) {
    std::set<VertexId> seen;
    for (const auto& [lane, v] : tm->entries()) {
      if (!seen.insert(v).second) errs.push_back("terminal map not injective");
    }
  }
  for (const auto& [a, b] : g.edges) {
    if (a >= b) errs.push_back("edge not normalized");
    if (!std::binary_search(g.vertices.begin(), g.vertices.end(), a) ||
        !std::binary_search(g.vertices.begin(), g.vertices.end(), b)) {
      errs.push_back("edge endpoint outside vertex set");
    }
  }
  return errs;
}

KLaneGraph kLaneVertex(int lane, VertexId v) {
  KLaneGraph g;
  g.vertices = {v};
  g.lanes = {lane};
  g.inTerm.set(lane, v);
  g.outTerm.set(lane, v);
  return g;
}

KLaneGraph kLaneEdge(int lane, VertexId in, VertexId out) {
  if (in == out) throw std::invalid_argument("kLaneEdge: degenerate");
  KLaneGraph g;
  g.vertices = {std::min(in, out), std::max(in, out)};
  g.edges = {normEdge(in, out)};
  g.lanes = {lane};
  g.inTerm.set(lane, in);
  g.outTerm.set(lane, out);
  return g;
}

KLaneGraph kLanePath(const std::vector<int>& lanes,
                     const std::vector<VertexId>& pathVertices) {
  if (lanes.size() != pathVertices.size() || lanes.empty()) {
    throw std::invalid_argument("kLanePath: lanes/vertices mismatch");
  }
  KLaneGraph g;
  g.vertices = pathVertices;
  sortUnique(g.vertices);
  if (g.vertices.size() != pathVertices.size()) {
    throw std::invalid_argument("kLanePath: duplicate vertex");
  }
  for (std::size_t i = 0; i + 1 < pathVertices.size(); ++i) {
    g.edges.push_back(normEdge(pathVertices[i], pathVertices[i + 1]));
  }
  std::sort(g.edges.begin(), g.edges.end());
  g.lanes = lanes;
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    g.inTerm.set(lanes[i], pathVertices[i]);
    g.outTerm.set(lanes[i], pathVertices[i]);
  }
  return g;
}

KLaneGraph bridgeMerge(const KLaneGraph& g1, const KLaneGraph& g2, int laneI,
                       int laneJ) {
  requireDisjointLanes(g1.lanes, g2.lanes);
  {
    std::vector<VertexId> inter;
    std::set_intersection(g1.vertices.begin(), g1.vertices.end(),
                          g2.vertices.begin(), g2.vertices.end(),
                          std::back_inserter(inter));
    if (!inter.empty()) {
      throw std::invalid_argument("bridgeMerge: parts share vertices");
    }
  }
  const VertexId u = g1.outTerm.at(laneI);
  const VertexId v = g2.outTerm.at(laneJ);
  if (u == kNoVertex || v == kNoVertex) {
    throw std::invalid_argument("bridgeMerge: missing out-terminal");
  }
  KLaneGraph g;
  std::merge(g1.vertices.begin(), g1.vertices.end(), g2.vertices.begin(),
             g2.vertices.end(), std::back_inserter(g.vertices));
  std::merge(g1.edges.begin(), g1.edges.end(), g2.edges.begin(),
             g2.edges.end(), std::back_inserter(g.edges));
  g.edges.push_back(normEdge(u, v));
  std::sort(g.edges.begin(), g.edges.end());
  std::merge(g1.lanes.begin(), g1.lanes.end(), g2.lanes.begin(),
             g2.lanes.end(), std::back_inserter(g.lanes));
  for (const KLaneGraph* part : {&g1, &g2}) {
    for (const auto& [lane, w] : part->inTerm.entries()) g.inTerm.set(lane, w);
    for (const auto& [lane, w] : part->outTerm.entries()) g.outTerm.set(lane, w);
  }
  return g;
}

KLaneGraph parentMergeGraphs(const KLaneGraph& child, const KLaneGraph& parent) {
  if (!std::includes(parent.lanes.begin(), parent.lanes.end(),
                     child.lanes.begin(), child.lanes.end())) {
    throw std::invalid_argument("parentMergeGraphs: T(child) ⊄ T(parent)");
  }
  for (int lane : child.lanes) {
    if (child.inTerm.at(lane) != parent.outTerm.at(lane)) {
      throw std::invalid_argument(
          "parentMergeGraphs: gluing terminals are different vertices");
    }
  }
  // Definition requires E to be a DISJOINT union of the two edge sets.
  {
    std::vector<std::pair<VertexId, VertexId>> inter;
    std::set_intersection(child.edges.begin(), child.edges.end(),
                          parent.edges.begin(), parent.edges.end(),
                          std::back_inserter(inter));
    if (!inter.empty()) {
      throw std::invalid_argument("parentMergeGraphs: edge sets overlap");
    }
  }
  KLaneGraph g;
  std::merge(parent.vertices.begin(), parent.vertices.end(),
             child.vertices.begin(), child.vertices.end(),
             std::back_inserter(g.vertices));
  sortUnique(g.vertices);  // gluing points appear in both parts
  std::merge(parent.edges.begin(), parent.edges.end(), child.edges.begin(),
             child.edges.end(), std::back_inserter(g.edges));
  g.lanes = parent.lanes;
  g.inTerm = parent.inTerm;
  for (int lane : parent.lanes) {
    g.outTerm.set(lane,
                  std::binary_search(child.lanes.begin(), child.lanes.end(), lane)
                      ? child.outTerm.at(lane)
                      : parent.outTerm.at(lane));
  }
  return g;
}

KLaneGraph treeMerge(const std::vector<KLaneGraph>& nodes,
                     const std::vector<int>& parent) {
  if (nodes.empty() || nodes.size() != parent.size()) {
    throw std::invalid_argument("treeMerge: malformed tree");
  }
  int root = -1;
  for (std::size_t i = 0; i < parent.size(); ++i) {
    if (parent[i] < 0) {
      if (root >= 0) throw std::invalid_argument("treeMerge: two roots");
      root = static_cast<int>(i);
    }
  }
  if (root < 0) throw std::invalid_argument("treeMerge: no root");
  // Tree-merge conditions: nesting + sibling disjointness.
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (parent[i] < 0) continue;
    const auto& p = nodes[static_cast<std::size_t>(parent[i])];
    if (!std::includes(p.lanes.begin(), p.lanes.end(), nodes[i].lanes.begin(),
                       nodes[i].lanes.end())) {
      throw std::invalid_argument("treeMerge: child lanes ⊄ parent lanes");
    }
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (parent[j] != parent[i]) continue;
      requireDisjointLanes(nodes[i].lanes, nodes[j].lanes);
    }
  }
  // Contract leaves upward (Parent-merge is associative, §5.3).
  std::vector<KLaneGraph> work = nodes;
  std::vector<int> par = parent;
  std::vector<char> alive(nodes.size(), 1);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!alive[i] || par[i] < 0) continue;
      // A leaf: nobody alive points to it.
      bool isLeaf = true;
      for (std::size_t j = 0; j < work.size(); ++j) {
        if (alive[j] && par[j] == static_cast<int>(i)) isLeaf = false;
      }
      if (!isLeaf) continue;
      const auto p = static_cast<std::size_t>(par[i]);
      work[p] = parentMergeGraphs(work[i], work[p]);
      alive[i] = 0;
      progress = true;
    }
  }
  return work[static_cast<std::size_t>(root)];
}

KLaneGraph materializeByMerges(const Hierarchy& h, int id) {
  const HierNode& n = h.node(id);
  switch (n.type) {
    case HierNode::Type::kV:
      return kLaneVertex(n.lanes[0], n.u);
    case HierNode::Type::kE:
      return kLaneEdge(n.laneI, n.u, n.v);
    case HierNode::Type::kP:
      return kLanePath(n.lanes, n.pathVertices);
    case HierNode::Type::kB:
      return bridgeMerge(materializeByMerges(h, n.children[0]),
                         materializeByMerges(h, n.children[1]), n.laneI,
                         n.laneJ);
    case HierNode::Type::kT: {
      std::vector<KLaneGraph> nodes;
      nodes.reserve(n.children.size());
      for (int c : n.children) nodes.push_back(materializeByMerges(h, c));
      return treeMerge(nodes, n.treeParentPos);
    }
  }
  throw std::logic_error("materializeByMerges: unknown node type");
}

}  // namespace lanecert
