#pragma once
// Executable semantics of Definitions 5.3 and 5.4: materialized k-lane
// graphs and the Bridge-merge / Parent-merge / Tree-merge operations as
// standalone functions on explicit vertex/edge sets.
//
// The certification pipeline never materializes these (it works on the
// compact Hierarchy); this module exists so the merge DEFINITIONS are
// testable objects in their own right, and so tests can verify that every
// hierarchy node materializes to exactly the graph its merge operations
// define (see tests/test_merges.cpp).

#include <vector>

#include "graph/graph.hpp"
#include "klane/hierarchy.hpp"

namespace lanecert {

/// A k-lane graph with explicit vertex and edge sets (global vertex ids).
/// Invariants (checked by `validateKLane`): T(G) non-empty; in/out
/// terminals defined exactly on T(G) and members of `vertices`.
struct KLaneGraph {
  std::vector<VertexId> vertices;  ///< sorted, unique
  std::vector<std::pair<VertexId, VertexId>> edges;  ///< sorted, u < v
  std::vector<int> lanes;          ///< T(G), sorted
  TerminalMap inTerm;
  TerminalMap outTerm;
};

/// Checks the Definition 5.3 invariants; returns problems (empty == valid).
[[nodiscard]] std::vector<std::string> validateKLane(const KLaneGraph& g);

/// Single-vertex / single-edge / path base graphs (the V/E/P node types).
[[nodiscard]] KLaneGraph kLaneVertex(int lane, VertexId v);
[[nodiscard]] KLaneGraph kLaneEdge(int lane, VertexId in, VertexId out);
[[nodiscard]] KLaneGraph kLanePath(const std::vector<int>& lanes,
                                   const std::vector<VertexId>& pathVertices);

/// Bridge-merge(G1, G2, i, j) (Definition in §5.2): disjoint lane sets,
/// adds the edge {τ_out_i(G1), τ_out_j(G2)}.  Throws std::invalid_argument
/// if preconditions fail (overlapping lanes/vertices, missing terminals).
[[nodiscard]] KLaneGraph bridgeMerge(const KLaneGraph& g1, const KLaneGraph& g2,
                                     int laneI, int laneJ);

/// Parent-merge(child, parent): T(child) ⊆ T(parent); identifies each
/// in-terminal of the child with the parent's out-terminal in the same
/// lane (they must be the SAME global vertex id — our hierarchies always
/// name physical vertices).  Throws on violated preconditions, including
/// the edge-disjointness requirement of the definition.
[[nodiscard]] KLaneGraph parentMergeGraphs(const KLaneGraph& child,
                                           const KLaneGraph& parent);

/// Tree-merge over an explicit tree: nodes[i]'s tree parent is parent[i]
/// (-1 for the root).  Applies Parent-merge bottom-up; validates the two
/// Tree-merge conditions (child lanes ⊆ parent lanes; siblings disjoint).
[[nodiscard]] KLaneGraph treeMerge(const std::vector<KLaneGraph>& nodes,
                                   const std::vector<int>& parent);

/// Materializes hierarchy node `id` into an explicit KLaneGraph by
/// replaying its merge operations (NOT by unioning descendant edges) —
/// tests compare this against Hierarchy::materialize*.
[[nodiscard]] KLaneGraph materializeByMerges(const Hierarchy& h, int id);

}  // namespace lanecert
