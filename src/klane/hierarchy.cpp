#include "klane/hierarchy.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>

#include "runtime/executor.hpp"
#include "runtime/pipeline.hpp"

namespace lanecert {

VertexId TerminalMap::at(int lane) const {
  for (const auto& [l, v] : entries_) {
    if (l == lane) return v;
  }
  return kNoVertex;
}

void TerminalMap::set(int lane, VertexId v) {
  for (auto& [l, w] : entries_) {
    if (l == lane) {
      w = v;
      return;
    }
  }
  entries_.emplace_back(lane, v);
  std::sort(entries_.begin(), entries_.end());
}

int Hierarchy::depth() const {
  // Iterative DFS computing max node count root->leaf.
  int best = 0;
  std::vector<std::pair<int, int>> stack{{root_, 1}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    for (int c : node(id).children) stack.emplace_back(c, d + 1);
  }
  return best;
}

std::vector<VertexId> Hierarchy::materializeVertices(int id) const {
  std::vector<VertexId> out;
  std::vector<int> stack{id};
  while (!stack.empty()) {
    const HierNode& n = node(stack.back());
    stack.pop_back();
    switch (n.type) {
      case HierNode::Type::kV:
        out.push_back(n.u);
        break;
      case HierNode::Type::kE:
        out.push_back(n.u);
        out.push_back(n.v);
        break;
      case HierNode::Type::kP:
        out.insert(out.end(), n.pathVertices.begin(), n.pathVertices.end());
        break;
      case HierNode::Type::kB:
      case HierNode::Type::kT:
        break;
    }
    for (int c : n.children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<std::pair<VertexId, VertexId>> Hierarchy::materializeEdges(
    int id) const {
  std::vector<std::pair<VertexId, VertexId>> out;
  auto add = [&out](VertexId a, VertexId b) {
    out.emplace_back(std::min(a, b), std::max(a, b));
  };
  std::vector<int> stack{id};
  while (!stack.empty()) {
    const HierNode& n = node(stack.back());
    stack.pop_back();
    switch (n.type) {
      case HierNode::Type::kE:
      case HierNode::Type::kB:
        add(n.u, n.v);
        break;
      case HierNode::Type::kP:
        for (std::size_t i = 0; i + 1 < n.pathVertices.size(); ++i) {
          add(n.pathVertices[i], n.pathVertices[i + 1]);
        }
        break;
      case HierNode::Type::kV:
      case HierNode::Type::kT:
        break;
    }
    for (int c : n.children) stack.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string Hierarchy::toString() const {
  static const char* names[] = {"V", "E", "P", "B", "T"};
  std::ostringstream os;
  // DFS with depth for indentation.
  std::vector<std::pair<int, int>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    const HierNode& n = node(id);
    for (int i = 0; i < d; ++i) os << "  ";
    os << names[static_cast<int>(n.type)] << "#" << id << " lanes={";
    for (std::size_t i = 0; i < n.lanes.size(); ++i) {
      if (i > 0) os << ",";
      os << n.lanes[i];
    }
    os << "}";
    if (n.type == HierNode::Type::kE || n.type == HierNode::Type::kB) {
      os << " edge=(" << n.u << "," << n.v << ")";
    }
    if (n.type == HierNode::Type::kV) os << " v=" << n.u;
    os << "\n";
    for (auto it = n.children.rbegin(); it != n.children.rend(); ++it) {
      stack.emplace_back(*it, d + 1);
    }
  }
  return os.str();
}

namespace {

/// Incremental builder implementing the induction of Proposition 5.6.
///
/// The replay pass is purely STRUCTURAL: it fixes every node's type, lane
/// set, tree links, and vertex payload, but defers the TerminalMap
/// materialization to a bottom-up post-pass (`materializeTerminals`) that
/// runs level-by-level — serially, or sharded through a ParallelExecutor.
/// Deferring keeps the replay loop lean and lets a streaming consumer
/// (the prover's hom-state waves read none of the terminals) start on a
/// node the moment its structure is final.
class HierarchyBuilder {
 public:
  HierarchyBuilder(const ConstructionSequence& seq, StageFeed<HierNode>* feed,
                   ParallelExecutor* exec)
      : seq_(seq), feed_(feed), exec_(exec) {}

  HierarchyResult run();

 private:
  int newNode(HierNode n) {
    // A streaming consumer reads nodes_ concurrently, so the buffer must
    // never reallocate; run() reserves the worst-case node count up front.
    if (feed_ != nullptr && nodes_.size() == nodes_.capacity()) {
      throw std::logic_error("HierarchyBuilder: node bound exceeded");
    }
    nodes_.push_back(std::move(n));
    tOutDesig_.emplace_back();
    return static_cast<int>(nodes_.size()) - 1;
  }

  void publishNodes() {
    if (feed_ != nullptr) feed_->publish(nodes_.size());
  }

  /// Walk-up LCA in the current working tree.
  int lca(int a, int b) const {
    while (a != b) {
      if (tDepth_[static_cast<std::size_t>(a)] >= tDepth_[static_cast<std::size_t>(b)]) {
        a = tParent_[static_cast<std::size_t>(a)];
      } else {
        b = tParent_[static_cast<std::size_t>(b)];
      }
    }
    return a;
  }

  /// The child of `ancestor` (in the working tree) on the path to `node`.
  int childToward(int ancestor, int node) const {
    while (tParent_[static_cast<std::size_t>(node)] != ancestor) {
      node = tParent_[static_cast<std::size_t>(node)];
    }
    return node;
  }

  /// Adds `node` to the working tree below `parent`.
  void attach(int node, int parent) {
    growTreeArrays();
    tParent_[static_cast<std::size_t>(node)] = parent;
    tDepth_[static_cast<std::size_t>(node)] =
        parent < 0 ? 0 : tDepth_[static_cast<std::size_t>(parent)] + 1;
    if (parent >= 0) tChildren_[static_cast<std::size_t>(parent)].push_back(node);
  }

  void growTreeArrays() {
    tParent_.resize(nodes_.size(), -1);
    tDepth_.resize(nodes_.size(), 0);
    tChildren_.resize(nodes_.size());
    inTree_.resize(nodes_.size(), 0);
    posOf_.resize(nodes_.size(), -1);
  }

  /// Collects the working-tree subtree rooted at `root` (roots first).
  std::vector<int> collectSubtree(int root) const {
    std::vector<int> out{root};
    for (std::size_t i = 0; i < out.size(); ++i) {
      for (int c : tChildren_[static_cast<std::size_t>(out[i])]) {
        if (inTree_[static_cast<std::size_t>(c)]) out.push_back(c);
      }
    }
    return out;
  }

  /// Wraps the working-tree subtree rooted at `subtreeRoot` into a T-node
  /// and detaches it from the working tree.  Returns the T-node id.
  int wrapSubtree(int subtreeRoot);

  /// Builds the B-node part for lane `lane`: a V-node when the lane owner
  /// IS the LCA `gPrime`, otherwise a T-node wrapping the subtree below
  /// `gPrime` toward the owner.
  int buildPart(int gPrime, int owner, int lane);

  /// Fills inTerm/outTerm of every node bottom-up, level by level (a node's
  /// terminals derive from its children's, which live on strictly earlier
  /// levels).  Sharded through exec_ when present; each slot is written by
  /// exactly one shard and TerminalMap entries are lane-sorted, so the
  /// result is bit-identical to the serial pass.
  void materializeTerminals();
  void fillTerminals(int id);

  const ConstructionSequence& seq_;
  StageFeed<HierNode>* feed_;
  ParallelExecutor* exec_;
  std::vector<HierNode> nodes_;
  /// Per T-node: designated vertex of each of its lanes AT WRAP TIME
  /// (aligned with the node's sorted lane list) — the outTerm snapshot the
  /// deferred materialization replays.  Empty for non-T nodes.
  std::vector<std::vector<VertexId>> tOutDesig_;
  // Working tree state (parallel to nodes_, grown lazily):
  std::vector<int> tParent_;
  std::vector<int> tDepth_;
  std::vector<std::vector<int>> tChildren_;
  std::vector<char> inTree_;
  /// Scratch for wrapSubtree's member->position translation.  Persistent so
  /// a wrap costs O(subtree), not O(all nodes); only entries written by the
  /// current wrap are ever read, so stale values are harmless.
  std::vector<int> posOf_;
  // Per-lane state:
  std::vector<VertexId> designated_;
  std::vector<int> laneOwner_;  ///< lowest working-tree node containing τ_i
};

int HierarchyBuilder::wrapSubtree(int subtreeRoot) {
  const std::vector<int> members = collectSubtree(subtreeRoot);
  HierNode w;
  w.type = HierNode::Type::kT;
  const HierNode& rootNode = nodes_[static_cast<std::size_t>(subtreeRoot)];
  w.lanes = rootNode.lanes;
  // Terminals are deferred; snapshot the per-lane designated vertices the
  // outTerm materialization will replay (inTerm simply copies the root
  // child's, which is final by then).
  std::vector<VertexId> outDesig;
  outDesig.reserve(w.lanes.size());
  for (int lane : w.lanes) {
    outDesig.push_back(designated_[static_cast<std::size_t>(lane)]);
  }
  w.children = members;
  w.treeParentPos.assign(members.size(), -1);
  // Positions of members inside w.children for tree-parent translation
  // (posOf_ is persistent scratch: only the entries written here are read).
  for (std::size_t p = 0; p < members.size(); ++p) {
    posOf_[static_cast<std::size_t>(members[p])] = static_cast<int>(p);
  }
  for (std::size_t p = 0; p < members.size(); ++p) {
    const int m = members[p];
    if (m == subtreeRoot) {
      w.rootChildPos = static_cast<int>(p);
    } else {
      w.treeParentPos[p] = posOf_[static_cast<std::size_t>(tParent_[static_cast<std::size_t>(m)])];
    }
    inTree_[static_cast<std::size_t>(m)] = 0;  // leaves the working tree
  }
  // Detach from the working-tree parent.
  const int par = tParent_[static_cast<std::size_t>(subtreeRoot)];
  if (par >= 0) {
    auto& sib = tChildren_[static_cast<std::size_t>(par)];
    sib.erase(std::find(sib.begin(), sib.end(), subtreeRoot));
  }
  const int id = newNode(std::move(w));
  tOutDesig_[static_cast<std::size_t>(id)] = std::move(outDesig);
  for (std::size_t p = 0; p < members.size(); ++p) {
    nodes_[static_cast<std::size_t>(members[p])].parent = id;
  }
  growTreeArrays();
  return id;
}

int HierarchyBuilder::buildPart(int gPrime, int owner, int lane) {
  if (owner == gPrime) {
    HierNode vn;
    vn.type = HierNode::Type::kV;
    vn.lanes = {lane};
    vn.u = designated_[static_cast<std::size_t>(lane)];
    const int id = newNode(std::move(vn));
    growTreeArrays();
    return id;
  }
  return wrapSubtree(childToward(gPrime, owner));
}

void HierarchyBuilder::fillTerminals(int id) {
  HierNode& n = nodes_[static_cast<std::size_t>(id)];
  switch (n.type) {
    case HierNode::Type::kV:
      n.inTerm.set(n.lanes[0], n.u);
      n.outTerm.set(n.lanes[0], n.u);
      break;
    case HierNode::Type::kE:
      n.inTerm.set(n.laneI, n.u);
      n.outTerm.set(n.laneI, n.v);
      break;
    case HierNode::Type::kP:
      // Path vertices are in lane order: vertex i is lane lanes[i]'s
      // terminal on both sides.
      for (std::size_t i = 0; i < n.lanes.size(); ++i) {
        n.inTerm.set(n.lanes[i], n.pathVertices[i]);
        n.outTerm.set(n.lanes[i], n.pathVertices[i]);
      }
      break;
    case HierNode::Type::kB:
      for (int part : {n.children[0], n.children[1]}) {
        const HierNode& pn = nodes_[static_cast<std::size_t>(part)];
        for (int lane : pn.lanes) {
          n.inTerm.set(lane, pn.inTerm.at(lane));
          n.outTerm.set(lane, pn.outTerm.at(lane));
        }
      }
      break;
    case HierNode::Type::kT: {
      const int rootChild =
          n.children[static_cast<std::size_t>(n.rootChildPos)];
      n.inTerm = nodes_[static_cast<std::size_t>(rootChild)].inTerm;
      const std::vector<VertexId>& outDesig =
          tOutDesig_[static_cast<std::size_t>(id)];
      for (std::size_t i = 0; i < n.lanes.size(); ++i) {
        n.outTerm.set(n.lanes[i], outDesig[i]);
      }
      break;
    }
  }
}

void HierarchyBuilder::materializeTerminals() {
  const std::size_t n = nodes_.size();
  // Bottom-up wave per node (children have smaller ids, one forward scan).
  std::vector<int> wave(n, 0);
  int numWaves = 0;
  for (std::size_t id = 0; id < n; ++id) {
    int w = 0;
    for (int c : nodes_[id].children) {
      w = std::max(w, wave[static_cast<std::size_t>(c)] + 1);
    }
    wave[id] = w;
    numWaves = std::max(numWaves, w + 1);
  }
  std::vector<std::vector<int>> levels(static_cast<std::size_t>(numWaves));
  for (std::size_t id = 0; id < n; ++id) {
    levels[static_cast<std::size_t>(wave[id])].push_back(static_cast<int>(id));
  }
  // Tiny levels are not worth a fork-join round trip.
  constexpr std::size_t kParallelCutoff = 64;
  for (const std::vector<int>& level : levels) {
    if (exec_ != nullptr && level.size() >= kParallelCutoff) {
      exec_->forShards(level.size(),
                       [&](std::size_t, std::size_t lo, std::size_t hi) {
                         for (std::size_t i = lo; i < hi; ++i) {
                           fillTerminals(level[i]);
                         }
                       });
    } else {
      for (int id : level) fillTerminals(id);
    }
  }
}

HierarchyResult HierarchyBuilder::run() {
  const ReplayResult replay = replayConstruction(seq_);  // validates
  const int w = seq_.numLanes();
  std::vector<int> edgeOwner(static_cast<std::size_t>(replay.graph.numEdges()), -1);

  // Worst-case node count: the initial P, at most three nodes per E-insert
  // (two parts + the B), one per V-insert, and the final T.  Reserving it
  // keeps the node array address-stable, which the streaming feed requires.
  std::size_t maxNodes = 2;
  for (const ConstructionOp& op : seq_.ops) {
    maxNodes += op.kind == ConstructionOp::Kind::kVInsert ? 1 : 3;
  }
  nodes_.reserve(maxNodes);
  tOutDesig_.reserve(maxNodes);

  // Initial P-node over the initial path.
  HierNode p;
  p.type = HierNode::Type::kP;
  for (int i = 0; i < w; ++i) p.lanes.push_back(i);
  p.pathVertices = seq_.initialPath;
  const int pNode = newNode(std::move(p));
  growTreeArrays();
  attach(pNode, -1);
  inTree_[static_cast<std::size_t>(pNode)] = 1;
  for (std::size_t i = 0; i < replay.initialPathEdges.size(); ++i) {
    edgeOwner[static_cast<std::size_t>(replay.initialPathEdges[i])] = pNode;
  }
  if (feed_ != nullptr) {
    feed_->open(nodes_.data());
    publishNodes();
  }

  designated_ = seq_.initialPath;
  laneOwner_.assign(static_cast<std::size_t>(w), pNode);

  std::size_t vEdgeIdx = 0;
  std::size_t eEdgeIdx = 0;
  for (const ConstructionOp& op : seq_.ops) {
    if (op.kind == ConstructionOp::Kind::kVInsert) {
      // Case 1: E-node below the owner of lane i.
      const int owner = laneOwner_[static_cast<std::size_t>(op.i)];
      HierNode e;
      e.type = HierNode::Type::kE;
      e.lanes = {op.i};
      e.laneI = op.i;
      e.u = designated_[static_cast<std::size_t>(op.i)];  // glued side (τ_in)
      e.v = op.vertex;                                    // new designated (τ_out)
      const int id = newNode(std::move(e));
      growTreeArrays();
      attach(id, owner);
      inTree_[static_cast<std::size_t>(id)] = 1;
      designated_[static_cast<std::size_t>(op.i)] = op.vertex;
      laneOwner_[static_cast<std::size_t>(op.i)] = id;
      edgeOwner[static_cast<std::size_t>(replay.vInsertEdges[vEdgeIdx++])] = id;
    } else {
      // Cases 2.1-2.3: B-node below the LCA of the two lane owners.
      const int gi = laneOwner_[static_cast<std::size_t>(op.i)];
      const int gj = laneOwner_[static_cast<std::size_t>(op.j)];
      const int gPrime = lca(gi, gj);
      const int part1 = buildPart(gPrime, gi, op.i);
      const int part2 = buildPart(gPrime, gj, op.j);
      HierNode b;
      b.type = HierNode::Type::kB;
      b.laneI = op.i;
      b.laneJ = op.j;
      b.u = designated_[static_cast<std::size_t>(op.i)];
      b.v = designated_[static_cast<std::size_t>(op.j)];
      b.children = {part1, part2};
      for (int part : {part1, part2}) {
        const HierNode& pn = nodes_[static_cast<std::size_t>(part)];
        for (int lane : pn.lanes) b.lanes.push_back(lane);
      }
      std::sort(b.lanes.begin(), b.lanes.end());
      if (std::adjacent_find(b.lanes.begin(), b.lanes.end()) != b.lanes.end()) {
        throw std::logic_error("Bridge-merge: lane sets not disjoint");
      }
      const int id = newNode(std::move(b));
      growTreeArrays();
      nodes_[static_cast<std::size_t>(part1)].parent = id;
      nodes_[static_cast<std::size_t>(part2)].parent = id;
      attach(id, gPrime);
      inTree_[static_cast<std::size_t>(id)] = 1;
      for (int lane : nodes_[static_cast<std::size_t>(id)].lanes) {
        laneOwner_[static_cast<std::size_t>(lane)] = id;
      }
      edgeOwner[static_cast<std::size_t>(replay.eInsertEdges[eEdgeIdx++])] = id;
    }
    publishNodes();
  }

  // Final T-node over everything still in the working tree.
  const int root = wrapSubtree(pNode);
  nodes_[static_cast<std::size_t>(root)].parent = -1;
  assert(nodes_.size() <= maxNodes);

  // All structure is final: release the streaming consumer, then fill the
  // terminals it never reads (level-parallel when an executor is present).
  if (feed_ != nullptr) {
    publishNodes();
    feed_->close();
  }
  materializeTerminals();

  return HierarchyResult{Hierarchy(std::move(nodes_), root), replay.graph,
                         std::move(edgeOwner), designated_};
}

}  // namespace

HierarchyResult buildHierarchy(const ConstructionSequence& seq) {
  return buildHierarchy(seq, nullptr, nullptr);
}

HierarchyResult buildHierarchy(const ConstructionSequence& seq,
                               StageFeed<HierNode>* feed,
                               ParallelExecutor* exec) {
  try {
    return HierarchyBuilder(seq, feed, exec).run();
  } catch (...) {
    // A streaming consumer must never be left waiting on a feed whose
    // producer died; fail it with the same exception.
    if (feed != nullptr) feed->fail(std::current_exception());
    throw;
  }
}

}  // namespace lanecert
