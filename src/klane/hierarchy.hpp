#pragma once
// k-lane recursive graphs (Section 5.2-5.4): the five node types
// (V, E, P, B, T), Bridge-merge / Tree-merge, and the hierarchical
// decomposition of Proposition 5.6 with the depth bound of Observation 5.5.
//
// `buildHierarchy` consumes a construction sequence (Definition 5.1) and
// produces the T-node decomposition exactly as in the proof of Prop 5.6:
//   * V-insert(i) adds an E-node below the lowest tree node owning lane i;
//   * E-insert(i, j) creates a B-node whose two parts are V-nodes (when the
//     lane owners coincide with their LCA) or T-nodes wrapping the subtrees
//     hanging below the LCA (Cases 2.1-2.3);
//   * the final graph is one T-node over the remaining tree.
//
// Every root-to-leaf path of the result has at most 2w nodes, where w is
// the number of lanes (Observation 5.5); tests assert this bound.

#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "lanewidth/lanewidth.hpp"

namespace lanecert {

class ParallelExecutor;
template <typename T>
class StageFeed;

/// A sparse lane -> vertex mapping for in-/out-terminals.
class TerminalMap {
 public:
  /// Vertex of `lane`, or kNoVertex.
  [[nodiscard]] VertexId at(int lane) const;
  /// Sets (or overwrites) the terminal of `lane`.
  void set(int lane, VertexId v);
  /// Bulk construction from entries ALREADY sorted ascending by lane with
  /// distinct lanes — the exact shape entries() returns.  The snapshot
  /// loader rebuilds 10^5 maps per plan; adopting the validated vector
  /// skips set()'s per-insert scan-and-sort.
  [[nodiscard]] static TerminalMap fromSortedEntries(
      std::vector<std::pair<int, VertexId>> entries) {
    TerminalMap t;
    t.entries_ = std::move(entries);
    return t;
  }
  /// All (lane, vertex) entries, sorted by lane.
  [[nodiscard]] const std::vector<std::pair<int, VertexId>>& entries() const {
    return entries_;
  }
  friend bool operator==(const TerminalMap&, const TerminalMap&) = default;

 private:
  std::vector<std::pair<int, VertexId>> entries_;
};

/// One node of a hierarchical decomposition.
struct HierNode {
  enum class Type { kV, kE, kP, kB, kT };
  Type type = Type::kV;
  std::vector<int> lanes;  ///< T(G), sorted lane indices
  TerminalMap inTerm;      ///< τ_in per lane
  TerminalMap outTerm;     ///< τ_out per lane

  int parent = -1;            ///< parent node in the hierarchy H (-1 for root)
  std::vector<int> children;  ///< children in H

  // --- type-specific payload ---
  /// V-node: {u}. E-node: edge u(in-side) -- v(out-side). B-node: bridge
  /// edge u -- v where u is in children[0] and v in children[1].
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  int laneI = -1;  ///< E-node: its lane. B-node: lane of u's side.
  int laneJ = -1;  ///< B-node: lane of v's side.
  /// P-node: the path vertices in lane order (vertex t is lane t's terminal).
  std::vector<VertexId> pathVertices;
  /// T-node: Tree-merge structure over `children`: treeParentPos[c] is the
  /// position (in `children`) of child c's Tree-merge parent, or -1 for the
  /// tree root (which is children[rootChildPos]).
  std::vector<int> treeParentPos;
  int rootChildPos = -1;
};

/// An immutable hierarchical decomposition (tree of HierNodes).
class Hierarchy {
 public:
  /// Empty decomposition (root() == -1); assignable, so plan structs that
  /// are filled stage-by-stage can default-construct one.
  Hierarchy() = default;
  Hierarchy(std::vector<HierNode> nodes, int root)
      : nodes_(std::move(nodes)), root_(root) {}

  [[nodiscard]] int root() const { return root_; }
  [[nodiscard]] int size() const { return static_cast<int>(nodes_.size()); }
  [[nodiscard]] const HierNode& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  /// All nodes, indexed by id (children precede parents).
  [[nodiscard]] std::span<const HierNode> nodes() const { return nodes_; }

  /// Maximum number of nodes on a root-to-leaf path (Observation 5.5
  /// bounds this by 2w).
  [[nodiscard]] int depth() const;

  /// All vertices of the subgraph associated with node `id` (sorted).
  [[nodiscard]] std::vector<VertexId> materializeVertices(int id) const;
  /// All edges (as endpoint pairs, u<v) owned by `id`'s subtree (sorted).
  [[nodiscard]] std::vector<std::pair<VertexId, VertexId>> materializeEdges(
      int id) const;

  /// Human-readable tree dump (one line per node) for debugging/examples.
  [[nodiscard]] std::string toString() const;

 private:
  std::vector<HierNode> nodes_;
  int root_ = -1;
};

/// Output of Proposition 5.6: the decomposition, the replayed completion
/// graph, and the owner node of every edge (the E/P/B-node that introduced
/// it).
struct HierarchyResult {
  Hierarchy hierarchy;
  Graph graph;                    ///< replayed completion graph
  std::vector<int> edgeOwner;     ///< per EdgeId: owning node id
  std::vector<VertexId> designated;  ///< final designated vertex per lane
};

/// Builds the Prop 5.6 hierarchical decomposition of a construction
/// sequence.  Throws std::invalid_argument on malformed sequences (same
/// validation as replayConstruction).
[[nodiscard]] HierarchyResult buildHierarchy(const ConstructionSequence& seq);

/// Pipelined overload: the STRUCTURAL replay streams finalized nodes
/// through `feed` (published in id order; the node array is address-stable
/// for the whole build), and the level-by-level materialization of the
/// per-node terminal maps runs bottom-up through `exec` after the replay.
/// Either argument may be null (no streaming / serial materialization); the
/// result is bit-identical to the plain overload in every combination.
///
/// Feed contract: a published node's structural fields (type, lanes, tree
/// links, vertices) are final; `parent` is backfilled and `inTerm`/`outTerm`
/// are materialized only after the feed CLOSES, so a streaming consumer may
/// read everything the prover's hom-state pass needs but must not read
/// terminals or parents until the build returns.  On error the feed fails
/// with the thrown exception before it escapes.
[[nodiscard]] HierarchyResult buildHierarchy(const ConstructionSequence& seq,
                                             StageFeed<HierNode>* feed,
                                             ParallelExecutor* exec);

}  // namespace lanecert
