#pragma once
// Structural validation of hierarchical decompositions: checks every
// invariant claimed in Section 5 (node-type shapes, Bridge-merge lane
// disjointness, Tree-merge gluing and lane-nesting conditions, terminal
// consistency, per-node connectivity, edge ownership, and the depth bound
// of Observation 5.5).  Returns human-readable violations; empty == valid.

#include <string>
#include <vector>

#include "klane/hierarchy.hpp"

namespace lanecert {

/// Full structural audit of a decomposition against its graph.
/// `numLanes` is the w used to check depth() <= 2w.  Per-node checks are
/// independent, so the sweep shards nodes over `numThreads` (<= 0 = all
/// cores); the violation list is merged in node order and is identical for
/// every thread count.
[[nodiscard]] std::vector<std::string> validateHierarchy(
    const HierarchyResult& result, int numLanes, int numThreads = 1);

/// For a T-node, the out-terminals of Tree-merge(T_{child}) for every child
/// position: lane -> out-terminal of the lowest lane-owning node in the
/// child's Tree-merge subtree.  (The in-terminals and lane set of
/// Tree-merge(T_{child}) equal the child's own; see Lemma 6.5.)
[[nodiscard]] std::vector<TerminalMap> subtreeOutTerminals(
    const Hierarchy& h, int tNodeId);

}  // namespace lanecert
