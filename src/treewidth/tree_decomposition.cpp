#include "treewidth/tree_decomposition.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>

#include "pathwidth/pathwidth.hpp"

namespace lanecert {

int TreeDecomposition::width() const {
  int w = -1;
  for (const auto& b : bags_) w = std::max(w, static_cast<int>(b.size()) - 1);
  return w;
}

int TreeDecomposition::depth() const {
  int best = 0;
  std::vector<int> d(bags_.size(), -1);
  // parents may appear in any order; resolve iteratively.
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    // Walk up to a resolved ancestor.
    std::vector<std::size_t> path;
    std::size_t cur = i;
    while (d[cur] == -1 && parent_[cur] >= 0) {
      path.push_back(cur);
      cur = static_cast<std::size_t>(parent_[cur]);
    }
    int base = parent_[cur] < 0 ? 1 : d[cur];
    if (d[cur] == -1) d[cur] = base;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      d[*it] = ++base;
    }
    best = std::max(best, d[i]);
  }
  return best;
}

bool TreeDecomposition::isValidFor(const Graph& g) const {
  if (bags_.empty()) return g.numVertices() == 0;
  const auto n = static_cast<std::size_t>(g.numVertices());
  // (1) every vertex somewhere; collect occurrence lists.
  std::vector<std::vector<std::size_t>> occ(n);
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    std::set<VertexId> inBag;
    for (VertexId v : bags_[i]) {
      if (v < 0 || v >= g.numVertices()) return false;
      if (!inBag.insert(v).second) return false;  // duplicate inside bag
      occ[static_cast<std::size_t>(v)].push_back(i);
    }
  }
  for (const auto& o : occ) {
    if (o.empty()) return false;
  }
  // (2) every edge in some bag.
  for (const Edge& e : g.edges()) {
    bool found = false;
    for (std::size_t i : occ[static_cast<std::size_t>(e.u)]) {
      if (std::find(bags_[i].begin(), bags_[i].end(), e.v) != bags_[i].end()) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // (3) occurrences connected in the tree: for each vertex, the occurrence
  // set must induce a connected subtree.  BFS within the occurrence set
  // (adjacency = parent links restricted to the set).
  for (VertexId v = 0; v < g.numVertices(); ++v) {
    const auto& o = occ[static_cast<std::size_t>(v)];
    const std::set<std::size_t> members(o.begin(), o.end());
    std::set<std::size_t> seen{o[0]};
    std::queue<std::size_t> q;
    q.push(o[0]);
    while (!q.empty()) {
      const std::size_t cur = q.front();
      q.pop();
      // Neighbors in the tree: parent + children within the set.
      if (parent_[cur] >= 0 &&
          members.count(static_cast<std::size_t>(parent_[cur])) != 0 &&
          seen.insert(static_cast<std::size_t>(parent_[cur])).second) {
        q.push(static_cast<std::size_t>(parent_[cur]));
      }
      for (std::size_t j : members) {
        if (parent_[j] == static_cast<int>(cur) && seen.insert(j).second) {
          q.push(j);
        }
      }
    }
    if (seen.size() != members.size()) return false;
  }
  return true;
}

std::string TreeDecomposition::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < bags_.size(); ++i) {
    os << i << " (parent " << parent_[i] << "): {";
    for (std::size_t j = 0; j < bags_[i].size(); ++j) {
      if (j > 0) os << ", ";
      os << bags_[i][j];
    }
    os << "}\n";
  }
  return os.str();
}

TreeDecomposition fromPathDecomposition(const PathDecomposition& pd) {
  std::vector<std::vector<VertexId>> bags(pd.bags().begin(), pd.bags().end());
  std::vector<int> parent(bags.size());
  for (std::size_t i = 0; i < bags.size(); ++i) {
    parent[i] = i == 0 ? -1 : static_cast<int>(i) - 1;
  }
  return TreeDecomposition(std::move(bags), std::move(parent));
}

namespace {

void buildBalanced(const PathDecomposition& pd, int lo, int hi, int parent,
                   std::vector<std::vector<VertexId>>& bags,
                   std::vector<int>& parents) {
  const int mid = lo + (hi - lo) / 2;
  std::vector<VertexId> bag;
  for (int i : {lo, mid, hi}) {
    const auto& b = pd.bag(static_cast<std::size_t>(i));
    bag.insert(bag.end(), b.begin(), b.end());
  }
  std::sort(bag.begin(), bag.end());
  bag.erase(std::unique(bag.begin(), bag.end()), bag.end());
  const int self = static_cast<int>(bags.size());
  bags.push_back(std::move(bag));
  parents.push_back(parent);
  if (lo < hi) {
    buildBalanced(pd, lo, mid, self, bags, parents);
    if (mid + 1 <= hi) buildBalanced(pd, mid + 1, hi, self, bags, parents);
  }
}

}  // namespace

TreeDecomposition balancedFromPath(const PathDecomposition& pd) {
  std::vector<std::vector<VertexId>> bags;
  std::vector<int> parents;
  if (pd.numBags() > 0) {
    buildBalanced(pd, 0, static_cast<int>(pd.numBags()) - 1, -1, bags, parents);
  }
  return TreeDecomposition(std::move(bags), std::move(parents));
}

TreeDecomposition treeDecompositionOf(const Graph& g) {
  const auto layout = exactVertexSeparation(g, 18);
  const std::vector<VertexId> order =
      layout ? layout->order : greedyVertexSeparation(g).order;
  const auto rep = layoutToIntervalRep(g, order);
  return fromPathDecomposition(toPathDecomposition(rep));
}

}  // namespace lanecert
