#pragma once
// Tree decompositions — the substrate of the paper's comparison point
// ([FMR+24] works on bounded TREEwidth) and of its §7 future-work
// direction (extending the O(log n) scheme from pathwidth to treewidth).
//
// Provides the rooted tree-decomposition structure with validation, width,
// conversion from path decompositions, and the Bodlaender-style balancing
// transformation: any depth-d decomposition of width w can be rebalanced to
// depth O(log n) at width <= 3w + 2 — the step that forces the Ω(log n)
// recursion depth (and hence the O(log² n) labels) in the prior scheme,
// and that the paper's bounded-DEPTH hierarchical decompositions avoid.

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"

namespace lanecert {

/// A rooted tree decomposition: bag per node, parent pointers (-1 = root).
class TreeDecomposition {
 public:
  TreeDecomposition() = default;
  TreeDecomposition(std::vector<std::vector<VertexId>> bags,
                    std::vector<int> parent)
      : bags_(std::move(bags)), parent_(std::move(parent)) {}

  [[nodiscard]] std::size_t numNodes() const { return bags_.size(); }
  [[nodiscard]] const std::vector<VertexId>& bag(std::size_t i) const {
    return bags_[i];
  }
  [[nodiscard]] int parent(std::size_t i) const { return parent_[i]; }

  /// max |bag| - 1 (-1 when empty).
  [[nodiscard]] int width() const;
  /// Number of nodes on the longest root-to-leaf path.
  [[nodiscard]] int depth() const;

  /// Checks the three tree-decomposition conditions against `g`:
  /// every vertex appears, every edge is inside some bag, and each vertex's
  /// occurrence set is connected in the tree.
  [[nodiscard]] bool isValidFor(const Graph& g) const;

  [[nodiscard]] std::string toString() const;

 private:
  std::vector<std::vector<VertexId>> bags_;
  std::vector<int> parent_;
};

/// A path decomposition, viewed as a path-shaped tree decomposition.
[[nodiscard]] TreeDecomposition fromPathDecomposition(const PathDecomposition& pd);

/// Balanced binary decomposition over a path decomposition's bag sequence:
/// node over bags [lo, hi] gets bag X_lo ∪ X_mid ∪ X_hi.  Depth
/// ceil(log2 s) + 1, width <= 3(w+1) - 1 (the [Bod89] bound specialized to
/// paths — exactly the transformation the prior O(log² n) scheme rests on).
[[nodiscard]] TreeDecomposition balancedFromPath(const PathDecomposition& pd);

/// A (non-optimal) tree decomposition of any graph from an elimination
/// ordering; width == the ordering's fill-in clique size - 1.  Uses the
/// pathwidth module's greedy order (treewidth <= pathwidth always).
[[nodiscard]] TreeDecomposition treeDecompositionOf(const Graph& g);

}  // namespace lanecert
