#include "lane/embedding.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <queue>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "graph/algorithms.hpp"

namespace lanecert {

namespace {

/// Unordered endpoint pair packed into one hashable word.
std::uint64_t key(VertexId u, VertexId v) {
  const auto lo = static_cast<std::uint64_t>(std::min(u, v));
  const auto hi = static_cast<std::uint64_t>(std::max(u, v));
  return (lo << 32) | hi;
}

/// Recursive builder implementing the induction of Proposition 4.6.
///
/// All per-recursion membership/index lookups run over epoch-stamped
/// arrays (one int read) instead of per-call std::maps — the plan builder
/// is the single largest slice of the prover's serial head, and these
/// lookups dominate it.  Epochs never reset, so marks from finished
/// recursion levels are simply stale, never wrong.
class PlanBuilder {
 public:
  PlanBuilder(const Graph& g, const IntervalRepresentation& rep)
      : g_(g),
        rep_(rep),
        compEpochOf_(static_cast<std::size_t>(g.numVertices()), 0),
        sEpochOf_(static_cast<std::size_t>(g.numVertices()), 0),
        sPosOnP_(static_cast<std::size_t>(g.numVertices()), 0),
        sIndexOf_(static_cast<std::size_t>(g.numVertices()), 0),
        seenEpochOf_(static_cast<std::size_t>(g.numVertices()), 0),
        seenVal_(static_cast<std::size_t>(g.numVertices()), 0) {}

  LanePlan build();

 private:
  const Interval& iv(VertexId v) const { return rep_.interval(v); }

  /// Marks `verts` with a fresh epoch and returns it.
  int markComponent(const std::vector<VertexId>& verts) {
    const int e = ++epochCounter_;
    for (VertexId v : verts) compEpochOf_[static_cast<std::size_t>(v)] = e;
    return e;
  }
  bool inEpoch(VertexId v, int epoch) const {
    return compEpochOf_[static_cast<std::size_t>(v)] == epoch;
  }

  /// BFS path s -> t restricted to vertices with the given epoch mark.
  std::vector<VertexId> bfsPathWithin(VertexId s, VertexId t, int epoch);

  /// Removes loops from a walk, producing a simple path whose edge set is
  /// a subset of the walk's edges (so congestion only decreases).
  /// Theorem 1's embedding certificates require simple paths.
  std::vector<VertexId> simplifyWalk(const std::vector<VertexId>& walk);

  /// Records the embedding path for completion edge {u, v}.
  void emitPath(VertexId u, VertexId v, std::vector<VertexId> path);

  /// The induction step: returns the lanes of the connected vertex set
  /// `comp` (global ids) and emits embedding paths for all lane edges whose
  /// both endpoints lie in `comp`.
  std::vector<std::vector<VertexId>> recurse(const std::vector<VertexId>& comp);

  const Graph& g_;
  const IntervalRepresentation& rep_;
  std::vector<int> compEpochOf_;
  std::vector<int> sEpochOf_;
  /// Valid where sEpochOf_ carries the CURRENT recursion's S epoch: the
  /// vertex's position on the spine P, and its index in S (for parity).
  /// Child recursions mark disjoint S sets, so a level's values survive
  /// the recursive calls that run between marking and the junction pass.
  std::vector<int> sPosOnP_;
  std::vector<int> sIndexOf_;
  /// Generic epoch-stamped scratch map (BFS parents, walk positions).
  std::vector<int> seenEpochOf_;
  std::vector<std::int64_t> seenVal_;
  int epochCounter_ = 0;
  std::unordered_map<std::uint64_t, std::vector<VertexId>> paths_;
};

std::vector<VertexId> PlanBuilder::bfsPathWithin(VertexId s, VertexId t,
                                                 int epoch) {
  if (s == t) return {s};
  const int seenEpoch = ++epochCounter_;
  const auto seen = [&](VertexId v) {
    return seenEpochOf_[static_cast<std::size_t>(v)] == seenEpoch;
  };
  const auto setParent = [&](VertexId v, VertexId par) {
    seenEpochOf_[static_cast<std::size_t>(v)] = seenEpoch;
    seenVal_[static_cast<std::size_t>(v)] = par;
  };
  std::queue<VertexId> q;
  setParent(s, kNoVertex);
  q.push(s);
  while (!q.empty()) {
    const VertexId u = q.front();
    q.pop();
    for (const Arc& a : g_.arcs(u)) {
      if (!inEpoch(a.to, epoch) || seen(a.to)) continue;
      setParent(a.to, u);
      if (a.to == t) {
        std::vector<VertexId> path;
        for (VertexId w = t; w != kNoVertex;
             w = static_cast<VertexId>(seenVal_[static_cast<std::size_t>(w)])) {
          path.push_back(w);
        }
        std::reverse(path.begin(), path.end());
        return path;
      }
      q.push(a.to);
    }
  }
  throw std::logic_error("bfsPathWithin: target unreachable inside component");
}

std::vector<VertexId> PlanBuilder::simplifyWalk(
    const std::vector<VertexId>& walk) {
  std::vector<VertexId> out;
  const int posEpoch = ++epochCounter_;
  const auto posOf = [&](VertexId v) -> std::int64_t {
    return seenEpochOf_[static_cast<std::size_t>(v)] == posEpoch
               ? seenVal_[static_cast<std::size_t>(v)]
               : -1;
  };
  for (VertexId v : walk) {
    const std::int64_t pos = posOf(v);
    if (pos >= 0) {
      // Revisit: drop the loop since the previous occurrence.
      while (out.size() > static_cast<std::size_t>(pos) + 1) {
        seenEpochOf_[static_cast<std::size_t>(out.back())] = 0;
        out.pop_back();
      }
    } else {
      seenEpochOf_[static_cast<std::size_t>(v)] = posEpoch;
      seenVal_[static_cast<std::size_t>(v)] =
          static_cast<std::int64_t>(out.size());
      out.push_back(v);
    }
  }
  return out;
}

void PlanBuilder::emitPath(VertexId u, VertexId v, std::vector<VertexId> path) {
  // Prefer the direct edge when it exists: the completion edge is then a
  // real edge of G and needs no embedding (zero congestion).
  path = g_.hasEdge(u, v) ? std::vector<VertexId>{u, v} : simplifyWalk(path);
  const auto [it, inserted] = paths_.emplace(key(u, v), std::move(path));
  if (!inserted) {
    throw std::logic_error("emitPath: duplicate completion edge");
  }
}

std::vector<std::vector<VertexId>> PlanBuilder::recurse(
    const std::vector<VertexId>& comp) {
  if (comp.size() == 1) return {{comp[0]}};

  // --- Choose vst (leftmost), ved (rightmost). ---
  VertexId vst = comp[0];
  VertexId ved = comp[0];
  for (VertexId v : comp) {
    if (iv(v).l < iv(vst).l || (iv(v).l == iv(vst).l && v < vst)) vst = v;
    if (iv(v).r > iv(ved).r || (iv(v).r == iv(ved).r && v < ved)) ved = v;
  }

  const int compEpoch = markComponent(comp);

  // --- Spine path P from vst to ved inside the component. ---
  const std::vector<VertexId> P = bfsPathWithin(vst, ved, compEpoch);

  // --- Skeleton S along P: s1 = vst; while R(s) < R(ved), jump to the
  // position after s whose interval overlaps I(s) and has maximum R.
  // Candidate validity (L <= R(s)) is monotone in R(s), so a lazy max-heap
  // over positions keyed by R gives O(|P| log |P|). ---
  std::vector<int> sortedByL(P.size());
  for (std::size_t i = 0; i < P.size(); ++i) sortedByL[i] = static_cast<int>(i);
  std::sort(sortedByL.begin(), sortedByL.end(), [&](int a, int b) {
    return iv(P[static_cast<std::size_t>(a)]).l < iv(P[static_cast<std::size_t>(b)]).l;
  });
  std::vector<VertexId> S{P[0]};
  std::vector<int> Spos{0};
  {
    std::priority_queue<std::pair<int, int>> heap;  // (R, position)
    std::size_t ins = 0;
    int curPos = 0;
    while (iv(S.back()).r < iv(ved).r) {
      const int bound = iv(S.back()).r;
      while (ins < sortedByL.size() &&
             iv(P[static_cast<std::size_t>(sortedByL[ins])]).l <= bound) {
        const int pos = sortedByL[ins];
        heap.emplace(iv(P[static_cast<std::size_t>(pos)]).r, pos);
        ++ins;
      }
      while (!heap.empty() && heap.top().second <= curPos) heap.pop();
      if (heap.empty()) {
        throw std::logic_error("Prop 4.6: skeleton construction stuck (P disconnected?)");
      }
      const auto [r, pos] = heap.top();
      heap.pop();
      curPos = pos;
      S.push_back(P[static_cast<std::size_t>(pos)]);
      Spos.push_back(pos);
      if (r <= iv(S[S.size() - 2]).r) {
        throw std::logic_error("Prop 4.6: Observation 4.7 violated");
      }
    }
  }

  // Mark S membership and remember each skeleton vertex's position on P
  // and index in S (parity) — child recursions mark disjoint S sets, so
  // these survive until the junction pass below.
  const int sEpoch = ++epochCounter_;
  for (std::size_t i = 0; i < S.size(); ++i) {
    sEpochOf_[static_cast<std::size_t>(S[i])] = sEpoch;
    sPosOnP_[static_cast<std::size_t>(S[i])] = Spos[i];
    sIndexOf_[static_cast<std::size_t>(S[i])] = static_cast<int>(i);
  }
  auto inS = [&](VertexId v) {
    return sEpochOf_[static_cast<std::size_t>(v)] == sEpoch;
  };
  auto pSlice = [&](VertexId a, VertexId b) {
    int pa = sPosOnP_[static_cast<std::size_t>(a)];
    int pb = sPosOnP_[static_cast<std::size_t>(b)];
    std::vector<VertexId> slice;
    if (pa <= pb) {
      for (int i = pa; i <= pb; ++i) slice.push_back(P[static_cast<std::size_t>(i)]);
    } else {
      for (int i = pa; i >= pb; --i) slice.push_back(P[static_cast<std::size_t>(i)]);
    }
    return slice;
  };

  // Lanes S1 (odd-index s1, s3, ...) and S2 (s2, s4, ...), plus their lane
  // edges embedded along P (Case 1 of the proof).
  std::vector<VertexId> S1;
  std::vector<VertexId> S2;
  for (std::size_t i = 0; i < S.size(); ++i) {
    (i % 2 == 0 ? S1 : S2).push_back(S[i]);
  }
  for (const auto& lane : {S1, S2}) {
    for (std::size_t i = 0; i + 1 < lane.size(); ++i) {
      emitPath(lane[i], lane[i + 1], pSlice(lane[i], lane[i + 1]));
    }
  }

  // --- Connected components of comp \ S, with spans and anchors. ---
  struct SubComp {
    std::vector<VertexId> verts;
    Interval span{0, 0};
    VertexId uStar = kNoVertex;  ///< anchor inside the component
    VertexId vStar = kNoVertex;  ///< anchor in S1 or S2
    int side = 0;                ///< 1 if attached to S1, else 2
    int cls = -1;                ///< interval-disjoint class (Lemma 4.10)
    std::vector<std::vector<VertexId>> lanes;  ///< recursive lanes
  };
  std::vector<SubComp> comps;
  {
    std::vector<VertexId> stack;
    const int visitEpoch = ++epochCounter_;
    const auto visited = [&](VertexId v) {
      return seenEpochOf_[static_cast<std::size_t>(v)] == visitEpoch;
    };
    const auto visit = [&](VertexId v) {
      seenEpochOf_[static_cast<std::size_t>(v)] = visitEpoch;
    };
    for (VertexId root : comp) {
      if (inS(root) || visited(root)) continue;
      SubComp c;
      stack.push_back(root);
      visit(root);
      while (!stack.empty()) {
        const VertexId u = stack.back();
        stack.pop_back();
        c.verts.push_back(u);
        for (const Arc& a : g_.arcs(u)) {
          if (!inEpoch(a.to, compEpoch) || inS(a.to)) continue;
          if (visited(a.to)) continue;
          visit(a.to);
          stack.push_back(a.to);
        }
      }
      comps.push_back(std::move(c));
    }
  }
  // Spans and anchors. Prefer an edge to S1; otherwise S2 must work since
  // the component is connected to the rest of comp only through S.
  for (SubComp& c : comps) {
    c.span = iv(c.verts[0]);
    for (VertexId v : c.verts) {
      c.span.l = std::min(c.span.l, iv(v).l);
      c.span.r = std::max(c.span.r, iv(v).r);
    }
    VertexId u2 = kNoVertex;
    VertexId v2 = kNoVertex;
    for (VertexId v : c.verts) {
      for (const Arc& a : g_.arcs(v)) {
        if (!inEpoch(a.to, compEpoch) || !inS(a.to)) continue;
        // S1 holds even S indices.
        const bool odd = sIndexOf_[static_cast<std::size_t>(a.to)] % 2 == 0;
        if (odd) {
          c.uStar = v;
          c.vStar = a.to;
          c.side = 1;
          break;
        }
        if (u2 == kNoVertex) {
          u2 = v;
          v2 = a.to;
        }
      }
      if (c.side == 1) break;
    }
    if (c.side != 1) {
      if (u2 == kNoVertex) {
        throw std::logic_error("Prop 4.6: component not attached to S");
      }
      c.uStar = u2;
      c.vStar = v2;
      c.side = 2;
    }
  }

  // --- Classes: first-fit interval coloring of component spans
  // (Lemma 4.10 guarantees <= k-1 classes for width-k input). ---
  std::vector<std::size_t> bySpan(comps.size());
  for (std::size_t i = 0; i < comps.size(); ++i) bySpan[i] = i;
  std::sort(bySpan.begin(), bySpan.end(), [&](std::size_t a, std::size_t b) {
    if (comps[a].span.l != comps[b].span.l) return comps[a].span.l < comps[b].span.l;
    return comps[a].span.r < comps[b].span.r;
  });
  std::vector<int> classEnd;
  for (std::size_t idx : bySpan) {
    SubComp& c = comps[idx];
    bool placed = false;
    for (std::size_t i = 0; i < classEnd.size(); ++i) {
      if (classEnd[i] < c.span.l) {
        c.cls = static_cast<int>(i);
        classEnd[i] = c.span.r;
        placed = true;
        break;
      }
    }
    if (!placed) {
      c.cls = static_cast<int>(classEnd.size());
      classEnd.push_back(c.span.r);
    }
  }

  // --- Recurse on every component (this reuses the epoch machinery, so all
  // queries that need comp/S marks are done above). ---
  for (SubComp& c : comps) {
    c.lanes = recurse(c.verts);
  }

  // --- Assemble lanes per (class, side, child-lane index) and emit the
  // cross-component junction edges (Case 2.2 of the proof). ---
  std::vector<std::vector<VertexId>> lanes;
  lanes.push_back(S1);
  if (!S2.empty()) lanes.push_back(S2);

  const int numClasses = static_cast<int>(classEnd.size());
  for (int cls = 0; cls < numClasses; ++cls) {
    for (int side = 1; side <= 2; ++side) {
      // Components of this group, ordered by span (bySpan is sorted).
      std::vector<std::size_t> group;
      std::size_t maxChildLanes = 0;
      for (std::size_t idx : bySpan) {
        if (comps[idx].cls == cls && comps[idx].side == side) {
          group.push_back(idx);
          maxChildLanes = std::max(maxChildLanes, comps[idx].lanes.size());
        }
      }
      for (std::size_t lane = 0; lane < maxChildLanes; ++lane) {
        std::vector<VertexId> assembled;
        std::size_t prevIdx = comps.size();  // sentinel: none yet
        for (std::size_t idx : group) {
          if (lane >= comps[idx].lanes.size()) continue;
          const auto& segment = comps[idx].lanes[lane];
          if (!assembled.empty()) {
            // Junction edge between the previous segment's last vertex and
            // this segment's first vertex, routed through the anchors and P.
            const SubComp& a = comps[prevIdx];
            const SubComp& b = comps[idx];
            const VertexId x = assembled.back();
            const VertexId y = segment.front();
            std::vector<VertexId> path;
            {
              const int ea = markComponent(a.verts);
              path = bfsPathWithin(x, a.uStar, ea);
            }
            for (VertexId w : pSlice(a.vStar, b.vStar)) path.push_back(w);
            {
              const int eb = markComponent(b.verts);
              const std::vector<VertexId> tail = bfsPathWithin(b.uStar, y, eb);
              for (VertexId w : tail) path.push_back(w);
            }
            emitPath(x, y, std::move(path));
          }
          assembled.insert(assembled.end(), segment.begin(), segment.end());
          prevIdx = idx;
        }
        if (!assembled.empty()) lanes.push_back(std::move(assembled));
      }
    }
  }
  return lanes;
}

LanePlan PlanBuilder::build() {
  LanePlan plan;
  plan.width = rep_.width();
  std::vector<VertexId> all(static_cast<std::size_t>(g_.numVertices()));
  for (VertexId v = 0; v < g_.numVertices(); ++v) all[static_cast<std::size_t>(v)] = v;
  std::vector<std::vector<VertexId>> lanes = recurse(all);
  plan.lanes = LanePartition(std::move(lanes));

  // E2: the initial-vertex path, embedded along arbitrary shortest paths
  // (the proof embeds <= f(k) - 1 arbitrary paths).
  plan.congestion.assign(static_cast<std::size_t>(g_.numEdges()), 0);
  for (const CompletionEdge& ce : completionEdges(plan.lanes, /*withInit=*/true)) {
    EmbeddedEdge emb;
    emb.edge = ce;
    if (ce.kind == CompletionEdge::Kind::kInit) {
      emb.path = g_.hasEdge(ce.u, ce.v) ? std::vector<VertexId>{ce.u, ce.v}
                                        : shortestPath(g_, ce.u, ce.v);
    } else {
      emb.path = paths_.at(key(ce.u, ce.v));
      if (emb.path.front() != ce.u) {
        std::reverse(emb.path.begin(), emb.path.end());
      }
    }
    if (!g_.hasEdge(ce.u, ce.v)) {
      for (std::size_t i = 0; i + 1 < emb.path.size(); ++i) {
        const EdgeId e = g_.findEdge(emb.path[i], emb.path[i + 1]);
        if (e == kNoEdge) {
          throw std::logic_error("LanePlan: embedding path uses a non-edge");
        }
        ++plan.congestion[static_cast<std::size_t>(e)];
      }
    }
    plan.embeddings.push_back(std::move(emb));
  }
  for (int c : plan.congestion) plan.maxCongestion = std::max(plan.maxCongestion, c);
  return plan;
}

}  // namespace

LanePlan buildLanePlan(const Graph& g, const IntervalRepresentation& rep) {
  if (!isConnected(g)) {
    throw std::invalid_argument("buildLanePlan: graph must be connected");
  }
  if (!rep.isValidFor(g)) {
    throw std::invalid_argument("buildLanePlan: invalid interval representation");
  }
  if (g.numVertices() == 0) return LanePlan{};
  PlanBuilder builder(g, rep);
  return builder.build();
}

bool validateLanePlan(const Graph& g, const LanePlan& plan) {
  std::vector<int> congestion(static_cast<std::size_t>(g.numEdges()), 0);
  for (const EmbeddedEdge& emb : plan.embeddings) {
    if (emb.path.empty()) return false;
    if (emb.path.front() != emb.edge.u || emb.path.back() != emb.edge.v) return false;
    for (std::size_t i = 0; i + 1 < emb.path.size(); ++i) {
      const EdgeId e = g.findEdge(emb.path[i], emb.path[i + 1]);
      if (e == kNoEdge) return false;
      if (!g.hasEdge(emb.edge.u, emb.edge.v)) {
        ++congestion[static_cast<std::size_t>(e)];
      }
    }
  }
  if (congestion != plan.congestion) return false;
  int maxC = 0;
  for (int c : congestion) maxC = std::max(maxC, c);
  return maxC == plan.maxCongestion;
}

}  // namespace lanecert
