#pragma once
// k-lane partitions (Definition 4.2) and completions (Definition 4.4).
//
// A lane partition splits the vertices of an interval representation into
// lanes of pairwise-disjoint intervals, each lane ordered by the strict
// precedence `≺`.  The *weak completion* adds edges making each lane a path
// (edge set E1); the *completion* additionally concatenates the lanes'
// initial vertices into a path (edge set E2).

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"

namespace lanecert {

/// A partition of the vertex set into ordered lanes (Definition 4.2).
class LanePartition {
 public:
  LanePartition() = default;
  explicit LanePartition(std::vector<std::vector<VertexId>> lanes);

  [[nodiscard]] int numLanes() const { return static_cast<int>(lanes_.size()); }
  [[nodiscard]] const std::vector<VertexId>& lane(int i) const {
    return lanes_[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] const std::vector<std::vector<VertexId>>& lanes() const {
    return lanes_;
  }

  /// Lane index of vertex v (-1 if v does not appear).
  [[nodiscard]] int laneOf(VertexId v) const;
  /// Position of v inside its lane (-1 if absent).
  [[nodiscard]] int indexInLane(VertexId v) const;

  /// True if lanes are non-empty, every vertex of `rep` appears exactly
  /// once, and every lane is strictly increasing under `≺`.
  [[nodiscard]] bool isValidFor(const IntervalRepresentation& rep) const;

  [[nodiscard]] std::string toString() const;

 private:
  void rebuildIndex();

  std::vector<std::vector<VertexId>> lanes_;
  std::vector<int> laneOf_;     // per vertex id (sized to max id + 1)
  std::vector<int> indexOf_;
};

/// First-fit interval coloring (Observation 4.3): assigns each vertex,
/// in order of left endpoint, to the first lane whose last interval ends
/// before this one begins.  Uses at most rep.width() lanes.
[[nodiscard]] LanePartition greedyLanePartition(const IntervalRepresentation& rep);

/// One completion edge: connects `u` to `v`; `kind` records which rule
/// produced it.
struct CompletionEdge {
  enum class Kind {
    kLane,  ///< E1: consecutive vertices within a lane
    kInit,  ///< E2: consecutive lanes' initial vertices
  };
  VertexId u = kNoVertex;
  VertexId v = kNoVertex;
  Kind kind = Kind::kLane;
  int lane = -1;  ///< lane index (for kLane: the lane; for kInit: smaller lane)
};

/// Edge sets E1 (and E2 if `withInit`) of Definition 4.4.
[[nodiscard]] std::vector<CompletionEdge> completionEdges(
    const LanePartition& partition, bool withInit);

/// The (weak) completion graph: `g` plus the completion edges that are not
/// already present in `g`.  `addedEdgeKind[e]` is set for edges the
/// completion added (others keep kNoEdge semantics via -1 entries).
struct CompletionResult {
  Graph graph;                            ///< V, E ∪ E1 (∪ E2)
  std::vector<CompletionEdge> allEdges;   ///< every E1/E2 edge, incl. ones already in g
  std::vector<EdgeId> newEdgeIds;         ///< ids (in `graph`) of edges not in g
};
[[nodiscard]] CompletionResult buildCompletion(const Graph& g,
                                               const LanePartition& partition,
                                               bool withInit);

}  // namespace lanecert
