#include "lane/lane_partition.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace lanecert {

LanePartition::LanePartition(std::vector<std::vector<VertexId>> lanes)
    : lanes_(std::move(lanes)) {
  rebuildIndex();
}

void LanePartition::rebuildIndex() {
  VertexId maxV = -1;
  for (const auto& lane : lanes_) {
    for (VertexId v : lane) maxV = std::max(maxV, v);
  }
  laneOf_.assign(static_cast<std::size_t>(maxV + 1), -1);
  indexOf_.assign(static_cast<std::size_t>(maxV + 1), -1);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    for (std::size_t j = 0; j < lanes_[i].size(); ++j) {
      const VertexId v = lanes_[i][j];
      if (laneOf_[static_cast<std::size_t>(v)] != -1) {
        throw std::invalid_argument("LanePartition: vertex in two lanes");
      }
      laneOf_[static_cast<std::size_t>(v)] = static_cast<int>(i);
      indexOf_[static_cast<std::size_t>(v)] = static_cast<int>(j);
    }
  }
}

int LanePartition::laneOf(VertexId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= laneOf_.size()) return -1;
  return laneOf_[static_cast<std::size_t>(v)];
}

int LanePartition::indexInLane(VertexId v) const {
  if (v < 0 || static_cast<std::size_t>(v) >= indexOf_.size()) return -1;
  return indexOf_[static_cast<std::size_t>(v)];
}

bool LanePartition::isValidFor(const IntervalRepresentation& rep) const {
  std::vector<char> seen(static_cast<std::size_t>(rep.numVertices()), 0);
  for (const auto& lane : lanes_) {
    if (lane.empty()) return false;
    for (std::size_t j = 0; j < lane.size(); ++j) {
      const VertexId v = lane[j];
      if (v < 0 || v >= rep.numVertices()) return false;
      if (seen[static_cast<std::size_t>(v)]) return false;
      seen[static_cast<std::size_t>(v)] = 1;
      if (j > 0 && !rep.interval(lane[j - 1]).before(rep.interval(v))) {
        return false;
      }
    }
  }
  for (char s : seen) {
    if (!s) return false;
  }
  return true;
}

std::string LanePartition::toString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    os << "P_" << i + 1 << " = (";
    for (std::size_t j = 0; j < lanes_[i].size(); ++j) {
      if (j > 0) os << ", ";
      os << lanes_[i][j];
    }
    os << ")\n";
  }
  return os.str();
}

LanePartition greedyLanePartition(const IntervalRepresentation& rep) {
  std::vector<VertexId> order(static_cast<std::size_t>(rep.numVertices()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&rep](VertexId a, VertexId b) {
    const Interval& ia = rep.interval(a);
    const Interval& ib = rep.interval(b);
    if (ia.l != ib.l) return ia.l < ib.l;
    if (ia.r != ib.r) return ia.r < ib.r;
    return a < b;
  });
  std::vector<std::vector<VertexId>> lanes;
  std::vector<int> laneEnd;  // right endpoint of the lane's last interval
  for (VertexId v : order) {
    const Interval& iv = rep.interval(v);
    bool placed = false;
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (laneEnd[i] < iv.l) {
        lanes[i].push_back(v);
        laneEnd[i] = iv.r;
        placed = true;
        break;
      }
    }
    if (!placed) {
      lanes.push_back({v});
      laneEnd.push_back(iv.r);
    }
  }
  return LanePartition(std::move(lanes));
}

std::vector<CompletionEdge> completionEdges(const LanePartition& partition,
                                            bool withInit) {
  std::vector<CompletionEdge> out;
  for (int i = 0; i < partition.numLanes(); ++i) {
    const auto& lane = partition.lane(i);
    for (std::size_t j = 0; j + 1 < lane.size(); ++j) {
      out.push_back(CompletionEdge{lane[j], lane[j + 1],
                                   CompletionEdge::Kind::kLane, i});
    }
  }
  if (withInit) {
    for (int i = 0; i + 1 < partition.numLanes(); ++i) {
      out.push_back(CompletionEdge{partition.lane(i).front(),
                                   partition.lane(i + 1).front(),
                                   CompletionEdge::Kind::kInit, i});
    }
  }
  return out;
}

CompletionResult buildCompletion(const Graph& g, const LanePartition& partition,
                                 bool withInit) {
  CompletionResult out;
  out.graph = Graph(g.numVertices());
  for (const Edge& e : g.edges()) out.graph.addEdge(e.u, e.v);
  out.allEdges = completionEdges(partition, withInit);
  for (const CompletionEdge& ce : out.allEdges) {
    if (!out.graph.hasEdge(ce.u, ce.v)) {
      out.newEdgeIds.push_back(out.graph.addEdge(ce.u, ce.v));
    }
  }
  return out;
}

}  // namespace lanecert
