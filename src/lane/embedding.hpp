#pragma once
// The low-congestion completion embedding of Proposition 4.6.
//
// Given a connected graph G with an interval representation of width k,
// `buildLanePlan` produces a lane partition with at most f(k) lanes plus an
// embedding of every completion edge (E1 ∪ E2, Definition 4.4) as a path in
// G, such that each edge of G is used by at most h(k) embedding paths.
//
// The construction follows the paper's induction exactly: pick the spine
// path P from the leftmost to the rightmost vertex, greedily extract the
// skeleton sequence S along P, split S into two lanes S1/S2 by parity,
// recurse on the components of G - S (whose restricted representations have
// width <= k-1 by Lemma 4.11), group components into <= k-1 interval-
// disjoint classes (Lemma 4.10) further split by whether they attach to S1
// or S2, and concatenate the recursive lanes class-wise.  Lane edges inside
// S1/S2 are embedded along P; cross-component lane edges are routed through
// the components' anchor edges and P (Case 2.2 of the proof).

#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "lane/lane_partition.hpp"

namespace lanecert {

/// A completion edge together with its embedding path in G.
/// `path.front() == edge.u` and `path.back() == edge.v`.  If {u, v} is
/// already an edge of G the path is just (u, v) and costs no congestion.
struct EmbeddedEdge {
  CompletionEdge edge;
  std::vector<VertexId> path;
};

/// Output of the Proposition 4.6 construction.
struct LanePlan {
  LanePartition lanes;
  std::vector<EmbeddedEdge> embeddings;  ///< one entry per completion edge
  std::vector<int> congestion;           ///< per EdgeId of G: #paths through it
  int maxCongestion = 0;
  int width = 0;  ///< width of the input representation
};

/// Runs the full Proposition 4.6 construction (including the E2 initial-
/// vertex path, i.e. the *completion*).  Preconditions: G connected,
/// rep.isValidFor(g).  Postconditions (checked by tests, not asserted here):
/// lanes.numLanes() <= f(width), maxCongestion <= h(width).
[[nodiscard]] LanePlan buildLanePlan(const Graph& g,
                                     const IntervalRepresentation& rep);

/// Validates that every embedding path is a real path in `g` connecting its
/// edge's endpoints, and recomputes congestion; returns false on any
/// mismatch.  Used by tests and the benchmark harness.
[[nodiscard]] bool validateLanePlan(const Graph& g, const LanePlan& plan);

}  // namespace lanecert
