#include "lane/bounds.hpp"

#include <stdexcept>

namespace lanecert {

long long fLanes(int k) {
  if (k < 1) throw std::invalid_argument("fLanes: k >= 1 required");
  long long f = 1;
  for (int i = 2; i <= k; ++i) {
    f = 2 + 2LL * (i - 1) * f;
  }
  return f;
}

long long gCongestion(int k) {
  if (k < 1) throw std::invalid_argument("gCongestion: k >= 1 required");
  long long f = 1;  // f(i-1) rolling value
  long long g = 0;
  for (int i = 2; i <= k; ++i) {
    g = 2 + g + 2LL * i * f;
    f = 2 + 2LL * (i - 1) * f;
  }
  return g;
}

long long hCongestion(int k) { return gCongestion(k) + fLanes(k) - 1; }

}  // namespace lanecert
