#pragma once
// Closed-form bounds of Proposition 4.6:
//   f(1) = 1,  f(k) = 2 + 2(k-1) f(k-1)   (max number of lanes)
//   g(1) = 0,  g(k) = 2 + g(k-1) + 2k f(k-1)  (weak-completion congestion)
//   h(k) = g(k) + f(k) - 1                 (completion congestion)
// These grow super-exponentially; they are exact reference values the
// benchmarks compare measured quantities against.

namespace lanecert {

/// f(k): maximum number of lanes produced by the Prop 4.6 construction for
/// an interval representation of width k.  Defined for k >= 1; overflows
/// long long around k = 20.
[[nodiscard]] long long fLanes(int k);

/// g(k): congestion bound for embedding the weak completion.
[[nodiscard]] long long gCongestion(int k);

/// h(k) = g(k) + f(k) - 1: congestion bound for embedding the completion.
[[nodiscard]] long long hCongestion(int k);

}  // namespace lanecert
