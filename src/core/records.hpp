#pragma once
// Certificate record formats for the core scheme (Section 6.2 + Theorem 1).
//
// Every record lives in IDENTIFIER space (the O(log n)-bit vertex ids of
// the PLS model), never in dense vertex indices: a verifier knows only ids.
//
// An edge of the completion G' carries an EdgeCert: its input flag (real
// edge of G vs completion-only), its endpoints, and the chain of "basic
// information" records B(X) for every hierarchy node X from the edge's
// owner up to the root (Observation 5.5 bounds the chain by 2w entries).
// T-node entries are self-contained Lemma 6.5 records: they carry B(X),
// B(c) for the child c the edge lies in, the subtree summary
// B(Tree-merge(T_c)), and the summaries B(Tree-merge(T_d)) of c's tree
// children, so any holder can replay the Parent-merge fold locally.
//
// Real edges of G carry an EdgeLabel: their own EdgeCert, one spanning-tree
// pointer record (Prop 2.2), and the PathThrough records of every virtual
// edge whose embedding path (Prop 4.6) uses this edge — at most h(k+1) of
// them, each with the virtual edge's full EdgeCert as payload (Theorem 1's
// simulation).

#include <cstdint>
#include <memory_resource>
#include <span>
#include <string>
#include <vector>

#include "pls/codec.hpp"
#include "pls/pointer.hpp"
#include "runtime/arena.hpp"

namespace lanecert {

// Certificate records hold their variable-length payloads in std::pmr
// containers so a decode can land entirely in a caller's bump arena: the
// verifier decodes every incident label per VERTEX, and the nested
// SummaryRec vectors/strings used to pay one heap round trip each, per
// label, per vertex.  Default-constructed records still use the global heap
// (std::pmr::get_default_resource()), so prover-side and test code is
// unaffected; only the decodeFrom(dec, mr) overloads opt in to an arena.

/// lane -> vertex-identifier mapping (terminals in id space).
struct LaneTerms {
  LaneTerms() = default;
  explicit LaneTerms(std::pmr::memory_resource* mr) : entries(mr) {}

  std::pmr::vector<std::pair<int, std::uint64_t>> entries;  ///< sorted by lane

  /// Identifier of `lane`'s terminal; throws DecodeError if absent.
  [[nodiscard]] std::uint64_t at(int lane) const;
  [[nodiscard]] bool has(int lane) const;
  void set(int lane, std::uint64_t id);

  void encodeTo(Encoder& enc) const;
  static LaneTerms decodeFrom(
      Decoder& dec,
      std::pmr::memory_resource* mr = std::pmr::get_default_resource());
  friend bool operator==(const LaneTerms&, const LaneTerms&) = default;
};

/// "Basic information" B(·) of a hierarchy node, or of a merged subtree
/// Tree-merge(T_c): lane set, terminals, the slot layout of the state, and
/// the canonical hom-state bytes.
struct SummaryRec {
  SummaryRec() = default;
  explicit SummaryRec(std::pmr::memory_resource* mr)
      : lanes(mr), inTerm(mr), outTerm(mr), slotOrder(mr), stateBytes(mr) {}

  std::int64_t nodeId = -1;
  std::uint8_t type = 0;  ///< HierNode::Type as integer
  std::pmr::vector<int> lanes;
  LaneTerms inTerm;
  LaneTerms outTerm;
  std::pmr::vector<std::uint64_t> slotOrder;  ///< state slot -> vertex id
  std::pmr::string stateBytes;                ///< canonical hom-state encoding

  void encodeTo(Encoder& enc) const;
  static SummaryRec decodeFrom(
      Decoder& dec,
      std::pmr::memory_resource* mr = std::pmr::get_default_resource());
  friend bool operator==(const SummaryRec&, const SummaryRec&) = default;
};

/// One chain entry.  `kind` selects which payload fields are meaningful.
struct ChainEntry {
  enum class Kind : std::uint8_t {
    kBaseE = 0,  ///< owner E-node
    kBaseP = 1,  ///< owner P-node
    kBridge = 2, ///< B-node (owner of its bridge edge, or intermediate)
    kTree = 3,   ///< T-node entry relative to the child the edge lies in
  };
  ChainEntry() = default;
  explicit ChainEntry(std::pmr::memory_resource* mr)
      : self(mr), pReal(mr), part0(mr), part1(mr), childSelf(mr), subtree(mr),
        treeChildren(mr) {}

  Kind kind = Kind::kBaseE;
  SummaryRec self;  ///< B(X) of this node

  // kBaseE:
  bool eReal = false;  ///< input flag of the E-node's edge
  // kBaseP: input flags of the path's w-1 edges (0/1 bytes rather than
  // std::vector<bool> so the flags can feed span-based algebra calls).
  std::pmr::vector<std::uint8_t> pReal;
  // kBridge:
  int laneI = -1;
  int laneJ = -1;
  bool bridgeReal = false;
  SummaryRec part0;  ///< B(first part): V-node or T-node
  SummaryRec part1;
  // kTree:
  std::int64_t childId = -1;
  bool childIsRoot = false;      ///< c is the Tree-merge root of X
  SummaryRec childSelf;          ///< B(c)
  SummaryRec subtree;            ///< B(Tree-merge(T_c))
  std::pmr::vector<SummaryRec> treeChildren;  ///< B(TM(T_d)) per tree child

  /// Source bytes this entry was decoded from, recorded by decodeFrom when
  /// the decoder BORROWS its buffer (the verifier's zero-copy label path);
  /// empty otherwise.  NOT serialized and NOT part of equality — it is a
  /// memoization key: byte-equal encodings decode to structurally equal
  /// entries (decodeFrom is a pure function of the bytes), so the sweep
  /// cache and the per-thread read memo compare this one contiguous lane
  /// with the SIMD byte kernel instead of walking the record graph.  The
  /// converse does not hold (padded varints), so byte INEQUALITY only ever
  /// causes a conservative re-validation, never a verdict change.
  std::string_view srcBytes;

  void encodeTo(Encoder& enc) const;
  static ChainEntry decodeFrom(
      Decoder& dec,
      std::pmr::memory_resource* mr = std::pmr::get_default_resource());
  /// Structural equality; encodeTo is deterministic and injective, so this
  /// agrees with comparing encodings (the verifier relies on that).
  /// srcBytes is excluded — it is provenance, not content.
  friend bool operator==(const ChainEntry& a, const ChainEntry& b) {
    return a.kind == b.kind && a.self == b.self && a.eReal == b.eReal &&
           a.pReal == b.pReal && a.laneI == b.laneI && a.laneJ == b.laneJ &&
           a.bridgeReal == b.bridgeReal && a.part0 == b.part0 &&
           a.part1 == b.part1 && a.childId == b.childId &&
           a.childIsRoot == b.childIsRoot && a.childSelf == b.childSelf &&
           a.subtree == b.subtree && a.treeChildren == b.treeChildren;
  }
};

/// Certificate of one completion edge.
struct EdgeCert {
  EdgeCert() = default;
  explicit EdgeCert(std::pmr::memory_resource* mr)
      : rootEntry(mr), chain(mr) {}

  bool real = false;           ///< input flag: edge of G vs completion-only
  std::uint64_t endA = 0;      ///< identifier of one endpoint
  std::uint64_t endB = 0;
  std::int64_t rootTNode = -1;     ///< hierarchy root (outer T-node)
  std::int64_t rootChildNode = -1; ///< Tree-merge root child of the root
  bool hasRootEntry = false;       ///< virtual-edge certs omit the root record
  ChainEntry rootEntry;            ///< self-contained (rootTNode, rootChild) record
  std::pmr::vector<ChainEntry> chain;  ///< bottom-up, owner first, root T last

  void encodeTo(Encoder& enc) const;
  static EdgeCert decodeFrom(
      Decoder& dec,
      std::pmr::memory_resource* mr = std::pmr::get_default_resource());
  [[nodiscard]] std::string encoded() const;
};

/// One virtual edge routed through a real edge (Theorem 1's simulation).
struct PathThrough {
  std::uint64_t uId = 0;      ///< virtual edge endpoint (path start)
  std::uint64_t vId = 0;      ///< virtual edge endpoint (path end)
  std::uint64_t fwdRank = 0;  ///< 1-based rank of this real edge from u
  std::uint64_t bwdRank = 0;  ///< 1-based rank from v
  std::string payload;        ///< the virtual edge's encoded EdgeCert

  void encodeTo(Encoder& enc) const;
  static PathThrough decodeFrom(Decoder& dec);
};

/// The full label of one real edge of G.
struct EdgeLabel {
  EdgeCert own;
  PointerRecord pointer;
  std::vector<PathThrough> through;

  [[nodiscard]] std::string encoded() const;
  /// Decodes from a borrowed byte view (zero-copy; nested records still own
  /// their payload strings, so the result does not alias `bytes`).
  static EdgeLabel decode(std::string_view bytes);
};

/// PathThrough decoded WITHOUT copying its payload: the view borrows the
/// label bytes.  Payloads dominate label size (every virtual edge's full
/// certificate rides through h real edges), yet an endpoint only ever
/// decodes the few payloads whose path starts or ends at it — so the
/// verifier must not pay a heap copy per record per endpoint.
struct PathThroughView {
  std::uint64_t uId = 0;
  std::uint64_t vId = 0;
  std::uint64_t fwdRank = 0;
  std::uint64_t bwdRank = 0;
  std::string_view payload;  ///< borrows the decoder's buffer

  static PathThroughView decodeFrom(Decoder& dec);
};

/// Verifier-side zero-copy decode of an EdgeLabel: `through` payloads alias
/// `bytes`, which must stay alive while the view is used (the simulators'
/// label store guarantees that for the duration of a vertex check).  The
/// through array AND the decoded certificate's entire chain (every nested
/// SummaryRec vector and state string) live in the caller's bump arena — a
/// per-thread scratch arena makes repeated decodes allocation-free in
/// steady state — and are valid until that arena is reset.
struct EdgeLabelView {
  EdgeCert own;
  PointerRecord pointer;
  std::span<const PathThroughView> through;

  static EdgeLabelView decode(std::string_view bytes, Arena& arena);
};

}  // namespace lanecert
