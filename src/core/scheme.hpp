#pragma once
// High-level entry points for the core scheme: prove + simulate in one call,
// in both the edge-labeling model (the native scheme) and the vertex-
// labeling model obtained through the Prop 2.1 transformation.

#include "core/prover.hpp"
#include "core/verifier.hpp"
#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "mso/property.hpp"
#include "pls/scheme.hpp"

namespace lanecert {

/// Combined prover + verifier outcome.
struct CoreRunResult {
  bool propertyHolds = false;  ///< prover-side verdict (labels exist iff true)
  SimulationResult sim;        ///< verifier simulation (valid iff propertyHolds)
  CoreProveStats stats;
};

/// Proves and verifies with EDGE labels.  When the property fails, `sim` is
/// left empty and `propertyHolds` is false (no labeling exists; soundness
/// of that claim is exercised separately by the adversarial tests).
/// `options.numThreads` shards BOTH the prover (wave-parallel hom states +
/// certificate encoding) and the verification sweep; results are
/// bit-identical for every thread count.
[[nodiscard]] CoreRunResult proveAndVerifyEdges(
    const Graph& g, const IdAssignment& ids, PropertyPtr prop,
    const IntervalRepresentation* rep = nullptr, CoreVerifierParams params = {},
    const SimulationOptions& options = {});

/// Same, but labels are moved to vertices via the degeneracy orientation
/// (Prop 2.1) and verified by the lifted vertex verifier.
[[nodiscard]] CoreRunResult proveAndVerifyVertices(
    const Graph& g, const IdAssignment& ids, PropertyPtr prop,
    const IntervalRepresentation* rep = nullptr, CoreVerifierParams params = {},
    const SimulationOptions& options = {});

}  // namespace lanecert
