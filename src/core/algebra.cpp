#include "core/algebra.hpp"

#include <algorithm>

#include "core/simd.hpp"

namespace lanecert {

namespace {

// The folds below run concurrently from the wave-parallel prover and the
// sharded verifier, so all scratch is thread-local and staged in the
// struct-of-arrays FoldScratch: each helper works on one contiguous u64
// lane, which is what lets the simd:: kernels vectorize the scans.
FoldScratch& foldScratch() {
  thread_local FoldScratch s;
  return s;
}

int slotIndexOf(std::span<const std::uint64_t> slots, std::uint64_t id) {
  const std::ptrdiff_t i = simd::findU64(slots.data(), slots.size(), id);
  if (i < 0) throw DecodeError{};
  return static_cast<int>(i);
}

/// Sorted copy of `ids` in the scratch sort lane; valid until the next call
/// from the same thread.
std::span<const std::uint64_t> sortedLane(std::span<const std::uint64_t> ids) {
  std::vector<std::uint64_t>& buf = foldScratch().sorted;
  buf.assign(ids.begin(), ids.end());
  std::sort(buf.begin(), buf.end());
  return buf;
}

void requireDistinct(std::span<const std::uint64_t> ids) {
  const auto sorted = sortedLane(ids);
  if (simd::hasAdjacentDupU64(sorted.data(), sorted.size())) {
    throw DecodeError{};
  }
}

std::vector<int> mergedLanes(const std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  if (std::adjacent_find(out.begin(), out.end()) != out.end()) {
    throw DecodeError{};  // lane sets must be disjoint
  }
  return out;
}

}  // namespace

NodeData LaneAlgebra::baseV(int lane, std::uint64_t vid) const {
  NodeData d;
  d.lanes = {lane};
  d.inTerm.set(lane, vid);
  d.outTerm.set(lane, vid);
  d.slots = {vid};
  d.state = prop_.addVertex(prop_.empty());
  return d;
}

NodeData LaneAlgebra::baseE(int lane, std::uint64_t inId, std::uint64_t outId,
                            bool real) const {
  if (inId == outId) throw DecodeError{};
  NodeData d;
  d.lanes = {lane};
  d.inTerm.set(lane, inId);
  d.outTerm.set(lane, outId);
  d.slots = {inId, outId};
  HomState s = prop_.addVertex(prop_.addVertex(prop_.empty()));
  d.state = prop_.addEdge(s, 0, 1, real ? kRealEdge : kVirtualEdge);
  return d;
}

NodeData LaneAlgebra::baseP(std::span<const int> lanes,
                            std::span<const std::uint64_t> pathIds,
                            std::span<const std::uint8_t> realFlags) const {
  if (lanes.size() != pathIds.size() || pathIds.empty() ||
      realFlags.size() + 1 != pathIds.size()) {
    throw DecodeError{};
  }
  requireDistinct(pathIds);
  NodeData d;
  d.lanes.assign(lanes.begin(), lanes.end());
  if (!std::is_sorted(lanes.begin(), lanes.end())) throw DecodeError{};
  for (std::size_t i = 0; i < lanes.size(); ++i) {
    d.inTerm.set(lanes[i], pathIds[i]);
    d.outTerm.set(lanes[i], pathIds[i]);
  }
  d.slots.assign(pathIds.begin(), pathIds.end());
  HomState s = prop_.empty();
  for (std::size_t i = 0; i < pathIds.size(); ++i) s = prop_.addVertex(s);
  for (std::size_t i = 0; i + 1 < pathIds.size(); ++i) {
    s = prop_.addEdge(s, static_cast<int>(i), static_cast<int>(i + 1),
                      realFlags[i] != 0 ? kRealEdge : kVirtualEdge);
  }
  d.state = std::move(s);
  return d;
}

NodeData LaneAlgebra::bridge(const NodeData& a, const NodeData& b, int laneI,
                             int laneJ, bool real) const {
  NodeData d;
  d.lanes = mergedLanes(a.lanes, b.lanes);
  d.slots = a.slots;
  d.slots.insert(d.slots.end(), b.slots.begin(), b.slots.end());
  requireDistinct(d.slots);  // parts are vertex-disjoint
  for (const auto& [l, id] : a.inTerm.entries) d.inTerm.set(l, id);
  for (const auto& [l, id] : b.inTerm.entries) d.inTerm.set(l, id);
  for (const auto& [l, id] : a.outTerm.entries) d.outTerm.set(l, id);
  for (const auto& [l, id] : b.outTerm.entries) d.outTerm.set(l, id);
  const int sa = slotIndexOf(a.slots, a.outTerm.at(laneI));
  const int sb = static_cast<int>(a.slots.size()) +
                 slotIndexOf(b.slots, b.outTerm.at(laneJ));
  d.state = prop_.addEdge(prop_.join(a.state, b.state), sa, sb,
                          real ? kRealEdge : kVirtualEdge);
  return d;
}

NodeData LaneAlgebra::parentMerge(const NodeData& child,
                                  const NodeData& parent) const {
  if (!std::includes(parent.lanes.begin(), parent.lanes.end(),
                     child.lanes.begin(), child.lanes.end())) {
    throw DecodeError{};  // T(child) ⊆ T(parent)
  }
  FoldScratch& fs = foldScratch();
  // Gluing points: child's in-terminal IS the parent's out-terminal.
  std::vector<std::uint64_t>& glueIds = fs.glue;
  glueIds.clear();
  for (int lane : child.lanes) {
    const std::uint64_t g = parent.outTerm.at(lane);
    if (child.inTerm.at(lane) != g) throw DecodeError{};
    glueIds.push_back(g);
  }
  std::sort(glueIds.begin(), glueIds.end());
  if (simd::hasAdjacentDupU64(glueIds.data(), glueIds.size())) {
    throw DecodeError{};  // two lanes glued through one vertex
  }
  // The parts may share vertices ONLY at the gluing points.
  {
    const auto parentSorted = sortedLane(parent.slots);
    for (std::uint64_t id : child.slots) {
      if (std::binary_search(parentSorted.begin(), parentSorted.end(), id) &&
          !std::binary_search(glueIds.begin(), glueIds.end(), id)) {
        throw DecodeError{};
      }
    }
  }

  NodeData d;
  d.lanes = parent.lanes;
  d.inTerm = parent.inTerm;
  for (int lane : parent.lanes) {
    d.outTerm.set(lane, std::binary_search(child.lanes.begin(), child.lanes.end(), lane)
                            ? child.outTerm.at(lane)
                            : parent.outTerm.at(lane));
  }

  HomState s = prop_.join(parent.state, child.state);
  // The merged slot layout evolves in the scratch id lane (identify/forget
  // below mirror the property's slot shifting with erases on this lane).
  std::vector<std::uint64_t>& slots = fs.ids;
  slots.assign(parent.slots.begin(), parent.slots.end());
  slots.insert(slots.end(), child.slots.begin(), child.slots.end());
  // Glue lane by lane (ascending) — each identify removes the child-side
  // occurrence of the shared identifier.
  for (int lane : child.lanes) {
    const std::uint64_t g = parent.outTerm.at(lane);
    if (simd::countU64(slots.data(), slots.size(), g) != 2) {
      throw DecodeError{};
    }
    const auto first =
        static_cast<std::size_t>(simd::findU64(slots.data(), slots.size(), g));
    const auto last = first + 1 +
                      static_cast<std::size_t>(simd::findU64(
                          slots.data() + first + 1, slots.size() - first - 1,
                          g));
    s = prop_.identify(s, static_cast<int>(first), static_cast<int>(last));
    slots.erase(slots.begin() + static_cast<std::ptrdiff_t>(last));
  }
  requireDistinct(slots);
  // Demote everything that is no longer a terminal of the merged graph.
  std::vector<std::uint64_t>& keep = fs.keep;
  keep.clear();
  for (const auto& [l, id] : d.inTerm.entries) keep.push_back(id);
  for (const auto& [l, id] : d.outTerm.entries) keep.push_back(id);
  std::sort(keep.begin(), keep.end());
  keep.erase(std::unique(keep.begin(), keep.end()), keep.end());
  for (int i = static_cast<int>(slots.size()) - 1; i >= 0; --i) {
    if (!std::binary_search(keep.begin(), keep.end(),
                            slots[static_cast<std::size_t>(i)])) {
      s = prop_.forget(s, i);
      slots.erase(slots.begin() + i);
    }
  }
  // Every terminal must survive as a slot.
  for (std::uint64_t id : keep) (void)slotIndexOf(slots, id);
  d.slots.assign(slots.begin(), slots.end());
  d.state = std::move(s);
  return d;
}

NodeData LaneAlgebra::fromSummary(const SummaryRec& rec) const {
  NodeData d;
  // assign() rather than operator=: record containers are pmr (possibly
  // arena-backed), NodeData's are plain heap vectors.
  d.lanes.assign(rec.lanes.begin(), rec.lanes.end());
  if (d.lanes.empty()) throw DecodeError{};
  d.inTerm = rec.inTerm;
  d.outTerm = rec.outTerm;
  d.slots.assign(rec.slotOrder.begin(), rec.slotOrder.end());
  requireDistinct(d.slots);
  FoldScratch& fs = foldScratch();
  // Terminals defined exactly on the lane set; slots = terminal vertex set.
  std::vector<std::uint64_t>& termIds = fs.terms;
  termIds.clear();
  for (const LaneTerms* t : {&rec.inTerm, &rec.outTerm}) {
    if (t->entries.size() != rec.lanes.size()) throw DecodeError{};
    for (const auto& [lane, id] : t->entries) {
      if (!std::binary_search(rec.lanes.begin(), rec.lanes.end(), lane)) {
        throw DecodeError{};
      }
      termIds.push_back(id);
    }
  }
  std::sort(termIds.begin(), termIds.end());
  termIds.erase(std::unique(termIds.begin(), termIds.end()), termIds.end());
  // requireDistinct passed, so comparing the sorted slot lane against the
  // deduplicated terminal lane decides set equality (u64 lanes: one
  // contiguous byte compare).
  std::vector<std::uint64_t>& slotsSorted = fs.ids;
  slotsSorted.assign(d.slots.begin(), d.slots.end());
  std::sort(slotsSorted.begin(), slotsSorted.end());
  if (termIds.size() != slotsSorted.size() ||
      !simd::equalBytes(termIds.data(), slotsSorted.data(),
                        termIds.size() * sizeof(std::uint64_t))) {
    throw DecodeError{};
  }
  d.state = prop_.decodeState(rec.stateBytes);
  // Canonicality: re-encoding must reproduce the bytes, and the state's
  // internal slot count must match the layout.
  const std::string& enc = d.state.encoding();
  if (enc.size() != rec.stateBytes.size() ||
      !simd::equalBytes(enc.data(), rec.stateBytes.data(), enc.size())) {
    throw DecodeError{};
  }
  if (prop_.slotCount(d.state) != static_cast<int>(d.slots.size())) {
    throw DecodeError{};
  }
  return d;
}

SummaryRec LaneAlgebra::toSummary(const NodeData& d, std::int64_t nodeId,
                                  std::uint8_t type) const {
  SummaryRec rec;
  rec.nodeId = nodeId;
  rec.type = type;
  rec.lanes.assign(d.lanes.begin(), d.lanes.end());
  rec.inTerm = d.inTerm;
  rec.outTerm = d.outTerm;
  rec.slotOrder.assign(d.slots.begin(), d.slots.end());
  rec.stateBytes.assign(d.state.encoding().begin(), d.state.encoding().end());
  return rec;
}

}  // namespace lanecert
