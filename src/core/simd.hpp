#pragma once
// Portable SIMD kernels for the verifier's lane-algebra hot loops.
//
// The per-vertex check is dominated by small dense scans over
// struct-of-arrays fold scratch: finding a vertex identifier in a slot
// lane, counting occurrences of a gluing id, checking a sorted id lane for
// duplicates, and comparing canonical hom-state byte strings.  All of them
// are exact integer/byte predicates — no floating point — so a vectorized
// run is bit-identical to the scalar one by construction.
//
// Two implementations live here:
//
//  * `simd::scalar::*` — the reference loops, always compiled, used by the
//    dispatched kernels when SIMD is configured off and by the property
//    tests that assert dispatched == scalar on every input.
//  * the dispatched `simd::*` kernels — blockwise loops annotated with
//    `#pragma omp simd` (enabled by -fopenmp-simd, no OpenMP runtime).
//    Selection is at CONFIGURE time: -DLANECERT_SIMD=OFF builds the
//    dispatched names as thin aliases of the scalar loops, and CI runs
//    ctest in both modes (plus a byte-identical certificate check across
//    the two builds in scripts/verify.sh --ci).
//
// Keep kernels branch-light inside the vector loop: reductions accumulate
// a mask/count and the (rare) hit position is resolved after the block.

#include <cstddef>
#include <cstdint>
#include <cstring>

#ifndef LANECERT_SIMD
#define LANECERT_SIMD 1
#endif

#if LANECERT_SIMD
// _Pragma takes ONE string literal and is evaluated before adjacent-literal
// concatenation, so the operand is built by stringizing the whole token
// sequence in one step.
#define LANECERT_PRAGMA_(tokens) _Pragma(#tokens)
#define LANECERT_PRAGMA_SIMD LANECERT_PRAGMA_(omp simd)
#define LANECERT_PRAGMA_SIMD_REDUCTION(op, var) \
  LANECERT_PRAGMA_(omp simd reduction(op : var))
#else
#define LANECERT_PRAGMA_SIMD
#define LANECERT_PRAGMA_SIMD_REDUCTION(op, var)
#endif

namespace lanecert::simd {

/// Which kernel set the dispatched names resolve to (diagnostics / README).
[[nodiscard]] constexpr const char* backendName() {
#if LANECERT_SIMD
  return "omp-simd";
#else
  return "scalar";
#endif
}
inline constexpr bool kEnabled = LANECERT_SIMD != 0;

namespace scalar {

/// Index of the first element equal to `key`, or -1.
[[nodiscard]] inline std::ptrdiff_t findU64(const std::uint64_t* data,
                                            std::size_t n,
                                            std::uint64_t key) {
  for (std::size_t i = 0; i < n; ++i) {
    if (data[i] == key) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

/// Number of elements equal to `key`.
[[nodiscard]] inline std::size_t countU64(const std::uint64_t* data,
                                          std::size_t n, std::uint64_t key) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) count += data[i] == key ? 1 : 0;
  return count;
}

/// True iff a SORTED lane contains two equal adjacent elements.
[[nodiscard]] inline bool hasAdjacentDupU64(const std::uint64_t* data,
                                            std::size_t n) {
  for (std::size_t i = 1; i < n; ++i) {
    if (data[i - 1] == data[i]) return true;
  }
  return false;
}

/// Byte-string equality (the hom-state / entry-encoding compare kernel).
/// n == 0 is always equal (and must not reach memcmp: empty vectors may
/// hand out null data pointers).
[[nodiscard]] inline bool equalBytes(const void* a, const void* b,
                                     std::size_t n) {
  return n == 0 || std::memcmp(a, b, n) == 0;
}

}  // namespace scalar

#if LANECERT_SIMD

/// Block width for the vector loops: 8 u64 lanes covers AVX-512 and gives
/// the compiler two full vectors on 256-bit targets.
inline constexpr std::size_t kBlock = 8;

[[nodiscard]] inline std::ptrdiff_t findU64(const std::uint64_t* data,
                                            std::size_t n,
                                            std::uint64_t key) {
  std::size_t i = 0;
  for (; i + kBlock <= n; i += kBlock) {
    std::uint64_t any = 0;
    LANECERT_PRAGMA_SIMD_REDUCTION(|, any)
    for (std::size_t j = 0; j < kBlock; ++j) {
      any |= data[i + j] == key ? 1u : 0u;
    }
    if (any != 0) {
      for (std::size_t j = 0; j < kBlock; ++j) {
        if (data[i + j] == key) return static_cast<std::ptrdiff_t>(i + j);
      }
    }
  }
  for (; i < n; ++i) {
    if (data[i] == key) return static_cast<std::ptrdiff_t>(i);
  }
  return -1;
}

[[nodiscard]] inline std::size_t countU64(const std::uint64_t* data,
                                          std::size_t n, std::uint64_t key) {
  std::size_t count = 0;
  LANECERT_PRAGMA_SIMD_REDUCTION(+, count)
  for (std::size_t i = 0; i < n; ++i) count += data[i] == key ? 1 : 0;
  return count;
}

[[nodiscard]] inline bool hasAdjacentDupU64(const std::uint64_t* data,
                                            std::size_t n) {
  if (n < 2) return false;
  std::uint64_t any = 0;
  LANECERT_PRAGMA_SIMD_REDUCTION(|, any)
  for (std::size_t i = 1; i < n; ++i) {
    any |= data[i - 1] == data[i] ? 1u : 0u;
  }
  return any != 0;
}

[[nodiscard]] inline bool equalBytes(const void* a, const void* b,
                                     std::size_t n) {
  // libc memcmp is already the vectorized kernel on every target we build
  // for; routing through the dispatch point keeps call sites uniform and
  // lets the scalar-fallback build pin down any libc divergence.
  return n == 0 || std::memcmp(a, b, n) == 0;
}

#else  // scalar fallback build: dispatched names ARE the reference loops

using scalar::countU64;
using scalar::equalBytes;
using scalar::findU64;
using scalar::hasAdjacentDupU64;

#endif  // LANECERT_SIMD

}  // namespace lanecert::simd
