#include "core/verify_session.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "runtime/executor.hpp"

namespace lanecert {

VerifySession::VerifySession(Graph g, IdAssignment ids,
                             std::vector<std::string> labels, PropertyPtr prop,
                             CoreVerifierParams params)
    : g_(std::move(g)),
      ids_(std::move(ids)),
      seedLabels_(std::move(labels)),
      store_(seedLabels_),
      engine_(std::move(prop), params) {
  if (seedLabels_.size() != static_cast<std::size_t>(g_.numEdges())) {
    throw std::invalid_argument("VerifySession: one label per edge required");
  }
}

void VerifySession::ensureIndex(ParallelExecutor& exec) {
  if (indexBuilt_) return;
  index_ = buildIncidentEdgeIndex(g_, store_, exec);
  indexBuilt_ = true;
}

void VerifySession::ensureThreadStates(int count) {
  if (static_cast<int>(threadStates_.size()) < count) {
    threadStates_.resize(static_cast<std::size_t>(count));
  }
}

void VerifySession::setTopology(NumaTopology topo) {
  topo_ = std::move(topo);
  topoSet_ = true;
  // Replicas (if any) were built for the OLD placement; the next sweep
  // rebuilds them from the current label bytes, so no state is stale.
  mirror_.reset();
}

void VerifySession::ensureMirror(ParallelExecutor& exec) {
  if (!topoSet_) {
    topo_ = NumaTopology::detect();
    topoSet_ = true;
  }
  if (!topo_.multiNode() || mirror_) return;
  mirror_ = std::make_unique<NumaLabelMirror>(g_, store_,
                                              topo_.nodeCount() - 1, exec);
}

const VertexLabelIndex& VerifySession::indexForShard(std::size_t shard) const {
  if (!mirror_) return index_;
  const std::size_t node = topo_.nodeOfShard(shard);
  return node == 0 ? index_ : mirror_->index(node - 1);
}

void VerifySession::checkVertexInto(VertexId v, const VertexLabelIndex& idx,
                                    CoreVerifierEngine::ThreadState& state) {
  EdgeView view;
  view.selfId = ids_.id(v);
  view.incidentLabels = idx.row(v);
  verdicts_[static_cast<std::size_t>(v)] =
      engine_.check(view, state) ? 1 : 0;
}

SimulationResult VerifySession::verifyAll(ParallelExecutor& exec) {
  ensureIndex(exec);
  ensureMirror(exec);
  ensureThreadStates(exec.numThreads());
  const auto n = static_cast<std::size_t>(g_.numVertices());
  verdicts_.assign(n, 0);
  exec.forShards(n, [&](std::size_t shard, std::size_t begin,
                        std::size_t end) {
    CoreVerifierEngine::ThreadState& state = threadStates_[shard];
    const VertexLabelIndex& idx = indexForShard(shard);
    for (std::size_t vi = begin; vi < end; ++vi) {
      checkVertexInto(static_cast<VertexId>(vi), idx, state);
    }
  });
  swept_ = true;
  return assembleResult();
}

SimulationResult VerifySession::verifyAll(int numThreads) {
  ParallelExecutor exec(numThreads);
  return verifyAll(exec);
}

std::vector<VertexId> VerifySession::applyEdits(
    std::span<const EdgeLabelEdit> edits) {
  std::vector<VertexId> dirty = store_.applyEdits(g_, edits);
  // Rows must track the store for every FUTURE sweep; before the first
  // sweep there is no index yet — it is built from the current views then.
  if (indexBuilt_) refreshIncidentEdgeRows(index_, g_, store_, dirty);
  // Per-node replicas converge through the SAME entry point, incrementally
  // (only edited labels rewritten, only dirty rows re-sorted per replica).
  if (mirror_) mirror_->applyEdits(g_, edits);
  // Bound the sweep cache: edits retire entry variants (superseded label
  // bytes) that identity-keyed memoization would otherwise retain for the
  // session's whole lifetime.  The cap is generous — several times the
  // distinct entries of one labeling — so steady-state sweeps stay warm;
  // clearing is purely a perf event, never a correctness one.
  const auto cap = 8 * (static_cast<std::size_t>(g_.numVertices()) +
                        static_cast<std::size_t>(g_.numEdges())) +
                   1024;
  if (engine_.sweepCacheSize() > cap) engine_.clearSweepCache();
  // Fold epoch garbage: every size-changing rewrite appends a fresh slot,
  // so a sustained edit stream grows the store even though only one slot
  // per label is ever live.  Compact once garbage clearly dominates (the
  // +64 slack keeps short-lived sessions compaction-free); moved labels'
  // endpoint rows are refreshed so the CSR index never aliases freed
  // bytes.  Content is unchanged — verdicts and the store version are
  // unaffected.
  if (store_.epochSlots() > 2 * store_.ownedLabels() + 64) {
    const std::vector<std::size_t> moved = store_.compactEpochs();
    if (!moved.empty() && indexBuilt_) {
      std::vector<VertexId> touched;
      touched.reserve(moved.size() * 2);
      for (const std::size_t e : moved) {
        const Edge& edge = g_.edge(static_cast<EdgeId>(e));
        touched.push_back(edge.u);
        touched.push_back(edge.v);
      }
      std::sort(touched.begin(), touched.end());
      touched.erase(std::unique(touched.begin(), touched.end()),
                    touched.end());
      refreshIncidentEdgeRows(index_, g_, store_, touched);
    }
    if (mirror_) mirror_->compactEpochs(g_);
  }
  return dirty;
}

SimulationResult VerifySession::reverify(
    std::span<const VertexId> dirtyVertices, ParallelExecutor& exec) {
  if (!swept_) {
    throw std::logic_error("VerifySession::reverify before a full sweep");
  }
  // Range-check every id, and detect callers that pass duplicates or
  // unsorted lists: a duplicate split across two shards would have two
  // threads store the same verdict slot concurrently — same value, still a
  // data race — so such input is deduplicated into a local copy first
  // (applyEdits output is already sorted and unique, the zero-copy path).
  bool sortedUnique = true;
  VertexId prev = kNoVertex;
  for (const VertexId v : dirtyVertices) {
    if (v < 0 || v >= g_.numVertices()) {
      throw std::out_of_range("VerifySession::reverify: vertex out of range");
    }
    if (v <= prev) sortedUnique = false;
    prev = v;
  }
  std::vector<VertexId> deduped;
  std::span<const VertexId> rows = dirtyVertices;
  if (!sortedUnique) {
    deduped.assign(dirtyVertices.begin(), dirtyVertices.end());
    std::sort(deduped.begin(), deduped.end());
    deduped.erase(std::unique(deduped.begin(), deduped.end()), deduped.end());
    rows = deduped;
  }
  ensureThreadStates(exec.numThreads());
  // Dirty rows shard over the executor exactly like a full sweep shards all
  // rows; verdicts of clean vertices carry over untouched (their views are
  // byte-identical, so a fresh check would reproduce them — locality).
  exec.forShards(rows.size(),
                 [&](std::size_t shard, std::size_t begin, std::size_t end) {
                   CoreVerifierEngine::ThreadState& state =
                       threadStates_[shard];
                   const VertexLabelIndex& idx = indexForShard(shard);
                   for (std::size_t i = begin; i < end; ++i) {
                     checkVertexInto(rows[i], idx, state);
                   }
                 });
  return assembleResult();
}

SimulationResult VerifySession::reverifyEdits(
    std::span<const EdgeLabelEdit> edits, ParallelExecutor& exec) {
  if (!swept_) {
    applyEdits(edits);
    return verifyAll(exec);
  }
  const std::vector<VertexId> dirty = applyEdits(edits);
  return reverify(dirty, exec);
}

SimulationResult VerifySession::reverifyEdits(
    std::span<const EdgeLabelEdit> edits, int numThreads) {
  ParallelExecutor exec(numThreads);
  return reverifyEdits(edits, exec);
}

SimulationResult VerifySession::assembleResult() const {
  SimulationResult r;
  r.maxLabelBits = store_.maxLabelBits();
  r.totalLabelBits = store_.totalLabelBits();
  for (std::size_t vi = 0; vi < verdicts_.size(); ++vi) {
    if (verdicts_[vi] == 0) r.rejecting.push_back(static_cast<VertexId>(vi));
  }
  r.allAccept = r.rejecting.empty();
  return r;
}

}  // namespace lanecert
