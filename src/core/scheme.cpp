#include "core/scheme.hpp"

#include "pls/transform.hpp"

namespace lanecert {

CoreRunResult proveAndVerifyEdges(const Graph& g, const IdAssignment& ids,
                                  PropertyPtr prop,
                                  const IntervalRepresentation* rep,
                                  CoreVerifierParams params,
                                  const SimulationOptions& options) {
  CoreRunResult out;
  CoreProveResult proved = proveCore(g, ids, *prop, rep, options.numThreads);
  out.propertyHolds = proved.propertyHolds;
  out.stats = proved.stats;
  if (!proved.propertyHolds) return out;
  out.sim = simulateEdgeScheme(g, ids, proved.labels,
                               makeCoreVerifier(std::move(prop), params),
                               options);
  return out;
}

CoreRunResult proveAndVerifyVertices(const Graph& g, const IdAssignment& ids,
                                     PropertyPtr prop,
                                     const IntervalRepresentation* rep,
                                     CoreVerifierParams params,
                                     const SimulationOptions& options) {
  CoreRunResult out;
  CoreProveResult proved = proveCore(g, ids, *prop, rep, options.numThreads);
  out.propertyHolds = proved.propertyHolds;
  out.stats = proved.stats;
  if (!proved.propertyHolds) return out;
  const auto vertexLabels = edgeLabelsToVertexLabels(g, ids, proved.labels);
  out.sim = simulateVertexScheme(
      g, ids, vertexLabels,
      liftEdgeVerifier(makeCoreVerifier(std::move(prop), params)), options);
  return out;
}

}  // namespace lanecert
