#pragma once
// VerifySession — resumable verification with incremental re-checking.
//
// The core scheme's verifier is strictly LOCAL: a vertex's verdict is a
// pure function of its own identifier and the multiset of labels on its
// incident edges.  So when an edit batch rewrites the labels of a few
// edges, only the edited edges' endpoints can change verdict — every other
// vertex sees a byte-identical view.  A one-shot simulateEdgeScheme call
// throws that locality away (full sweep per query); VerifySession keeps the
// sweep state alive between queries instead:
//
//  * the versioned LabelStore + CSR vertex index (runtime layer), edited in
//    place between sweeps — applyEdits returns exactly the dirty rows;
//  * the per-vertex verdict vector, carried across sweeps so a re-verify
//    only recomputes dirty rows and still reports the WHOLE graph's
//    rejecting set;
//  * the CoreVerifierEngine with its sweep-level validated-entry cache and
//    the per-shard ThreadStates (decode arenas + flat scratch), so repeat
//    sweeps skip the algebra replay for every chain entry already seen.
//
// Equivalence contract (asserted by tests/test_reverify.cpp): after any
// sequence of applyEdits/reverify calls, the returned SimulationResult is
// BYTE-IDENTICAL to a fresh simulateEdgeScheme over the current labels, for
// every executor thread count — same rejecting vector, same bit stats.
//
// Threading: reverify/verifyAll shard dirty rows over the caller's
// deterministic executor (contiguous ordered shards, one ThreadState per
// shard).  The session itself is NOT internally synchronized — callers
// serialize applyEdits/reverify per session (the serving layer's session
// registry runs one driver per session at a time).

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/verifier.hpp"
#include "graph/graph.hpp"
#include "pls/scheme.hpp"
#include "runtime/label_store.hpp"
#include "runtime/numa_mirror.hpp"
#include "runtime/topology.hpp"

namespace lanecert {

class VerifySession {
 public:
  /// Takes ownership of the configuration: `labels[e]` is EdgeId e's label.
  /// Throws std::invalid_argument unless labels.size() == g.numEdges().
  VerifySession(Graph g, IdAssignment ids, std::vector<std::string> labels,
                PropertyPtr prop, CoreVerifierParams params = {});

  /// Full sweep over every vertex; (re)initializes all verdicts.  Identical
  /// to simulateEdgeScheme over the current labels for every thread count.
  SimulationResult verifyAll(ParallelExecutor& exec);
  SimulationResult verifyAll(int numThreads = 1);

  /// Applies the edit batch to the owned store (bumping its version) and
  /// refreshes the dirty CSR rows; returns the dirty vertex set, ascending.
  /// Does NOT re-verify — pass the result to reverify(), or use
  /// reverifyEdits() to do both.
  std::vector<VertexId> applyEdits(std::span<const EdgeLabelEdit> edits);

  /// Re-runs the verifier on `dirtyVertices` only (sharded over `exec`) and
  /// returns the whole-graph result with every other verdict carried over.
  /// Requires a completed verifyAll (throws std::logic_error otherwise) and
  /// in-range vertex ids (throws std::out_of_range).  Ascending unique
  /// input (applyEdits' output) shards zero-copy; anything else is
  /// deduplicated into a local copy first.
  SimulationResult reverify(std::span<const VertexId> dirtyVertices,
                            ParallelExecutor& exec);

  /// applyEdits + reverify in one call.  Before the first full sweep this
  /// falls back to verifyAll (there are no verdicts to carry over yet), so
  /// an empty edit batch doubles as "run the initial sweep".
  SimulationResult reverifyEdits(std::span<const EdgeLabelEdit> edits,
                                 ParallelExecutor& exec);
  SimulationResult reverifyEdits(std::span<const EdgeLabelEdit> edits,
                                 int numThreads = 1);

  /// Store version: 0 until the first edit, bumped once per applyEdits.
  [[nodiscard]] std::uint64_t storeVersion() const { return store_.version(); }
  /// True once verifyAll has completed (reverify is allowed).
  [[nodiscard]] bool swept() const { return swept_; }
  [[nodiscard]] const Graph& graph() const { return g_; }
  [[nodiscard]] const IdAssignment& ids() const { return ids_; }
  /// Current bytes of edge `e`'s label (valid until the next applyEdits).
  [[nodiscard]] std::string_view label(EdgeId e) const {
    return store_.view(static_cast<std::size_t>(e));
  }
  /// Per-vertex verdicts of the last sweep (1 = accept), indexed by vertex.
  [[nodiscard]] std::span<const std::uint8_t> verdicts() const {
    return verdicts_;
  }
  /// Distinct chain entries in the engine's sweep cache (diagnostics).
  [[nodiscard]] std::size_t sweepCacheSize() const {
    return engine_.sweepCacheSize();
  }
  /// Sweep-cache hit/miss/contention counters + read-memo hits
  /// (monotonic; the serving layer surfaces them per session).
  [[nodiscard]] SweepCacheStats cacheStats() const {
    return engine_.cacheStats();
  }
  /// Epoch slots held by the owned store (primary plane only).  Bounded
  /// under a sustained edit stream: applyEdits folds garbage slots via
  /// LabelStore::compactEpochs once they dominate the live set — the soak
  /// bench charts this to prove memory does not creep.
  [[nodiscard]] std::size_t epochSlots() const { return store_.epochSlots(); }

  /// Overrides the NUMA topology used for label-plane placement (by
  /// default detect() runs lazily before the first sweep).  On a
  /// multi-node topology the session mirrors its label plane once per
  /// extra node and each sweep shard reads the replica of ITS node —
  /// verdicts are byte-identical either way (the coherence tests force a
  /// synthetic multi-node topology on single-node machines to prove it).
  /// Resets any existing replicas; the next sweep rebuilds them from the
  /// current label bytes.
  void setTopology(NumaTopology topo);
  /// Label planes serving sweeps: 1 (the primary store) + one per extra
  /// node once a multi-node sweep has run.
  [[nodiscard]] std::size_t labelReplicaCount() const {
    return 1 + (mirror_ ? mirror_->replicaCount() : 0);
  }

 private:
  void ensureIndex(ParallelExecutor& exec);
  void ensureThreadStates(int count);
  void ensureMirror(ParallelExecutor& exec);
  /// The CSR index shard `shard` reads: the primary for node 0, that
  /// node's replica otherwise.  Pure function of (shard, topology).
  [[nodiscard]] const VertexLabelIndex& indexForShard(std::size_t shard) const;
  [[nodiscard]] SimulationResult assembleResult() const;
  void checkVertexInto(VertexId v, const VertexLabelIndex& idx,
                       CoreVerifierEngine::ThreadState& state);

  Graph g_;
  IdAssignment ids_;
  /// Seed label bytes; the store aliases them until an edit repoints a
  /// label into store-owned epoch storage.
  std::vector<std::string> seedLabels_;
  LabelStore store_;
  VertexLabelIndex index_;
  bool indexBuilt_ = false;
  CoreVerifierEngine engine_;
  std::vector<CoreVerifierEngine::ThreadState> threadStates_;
  std::vector<std::uint8_t> verdicts_;  ///< 1 = accept, indexed by vertex
  bool swept_ = false;
  NumaTopology topo_;
  bool topoSet_ = false;  ///< setTopology called or detect() already ran
  /// Per-extra-node label replicas; null on single-node topologies.
  std::unique_ptr<NumaLabelMirror> mirror_;
};

}  // namespace lanecert
