#pragma once
// The lane composition algebra of Proposition 6.1, shared by the prover and
// the verifier: hom states of k-lane graphs, keyed by an explicit boundary
// slot layout (slot -> vertex identifier), with the base constructions for
// the five node types and the two merges expressed through the primitive
// property operations (join / addEdge / identify / forget).
//
// Everything operates in identifier space and THROWS (DecodeError or
// logic_error) on any inconsistency — the verifier translates exceptions
// into rejection, the prover treats them as internal bugs.
//
// Thread safety: a LaneAlgebra holds only a const reference to its
// Property, every method is const and pure, and internal scratch is
// thread-local — one instance may run state folds concurrently from any
// number of threads (the wave-parallel prover and the sharded verifier
// both rely on this).

#include <cstdint>
#include <span>
#include <vector>

#include "core/records.hpp"
#include "mso/property.hpp"

namespace lanecert {

/// A k-lane graph summary: lanes, terminals, slot layout, hom state.
struct NodeData {
  std::vector<int> lanes;                ///< sorted, unique
  LaneTerms inTerm;
  LaneTerms outTerm;
  std::vector<std::uint64_t> slots;      ///< state slot -> vertex identifier
  HomState state;
};

/// Per-thread struct-of-arrays scratch for the fold kernels.  Earlier
/// revisions kept one ad-hoc thread_local vector per helper; the folds now
/// stage every intermediate quantity in SEPARATE contiguous lanes — vertex
/// identifiers, sort copies, gluing ids, surviving terminals — so the
/// SIMD kernels (core/simd.hpp) scan flat u64 arrays instead of walking
/// record structs.  One instance lives per thread inside algebra.cpp;
/// every lane is assign()ed before use, so no state crosses calls.
struct FoldScratch {
  std::vector<std::uint64_t> ids;     ///< merged slot-id lane (parentMerge)
  std::vector<std::uint64_t> sorted;  ///< sort/distinctness lane
  std::vector<std::uint64_t> glue;    ///< gluing-id lane (parentMerge)
  std::vector<std::uint64_t> keep;    ///< surviving-terminal lane
  std::vector<std::uint64_t> terms;   ///< declared-terminal lane (fromSummary)
};

/// Composition algebra for one property.
class LaneAlgebra {
 public:
  explicit LaneAlgebra(const Property& prop) : prop_(prop) {}

  /// Single-vertex k-lane graph (V-node): one lane, in = out = v.
  [[nodiscard]] NodeData baseV(int lane, std::uint64_t vid) const;

  /// Single-edge k-lane graph (E-node): in -- out with the given input flag.
  [[nodiscard]] NodeData baseE(int lane, std::uint64_t inId, std::uint64_t outId,
                               bool real) const;

  /// Path k-lane graph (P-node): vertex i is lane lanes[i]'s terminal;
  /// realFlags[i] is the input flag of path edge (i, i+1).  Spans so that
  /// callers may pass arena-backed scratch without materializing vectors.
  [[nodiscard]] NodeData baseP(std::span<const int> lanes,
                               std::span<const std::uint64_t> pathIds,
                               std::span<const std::uint8_t> realFlags) const;

  /// Bridge-merge(a, b, laneI, laneJ) with the bridge edge's input flag.
  [[nodiscard]] NodeData bridge(const NodeData& a, const NodeData& b, int laneI,
                                int laneJ, bool real) const;

  /// Parent-merge(child, parent): glues child's in-terminals onto parent's
  /// out-terminals lane-wise and demotes vertices that stop being terminals.
  [[nodiscard]] NodeData parentMerge(const NodeData& child,
                                     const NodeData& parent) const;

  /// φ on the finished graph (remaining terminals are ordinary vertices).
  [[nodiscard]] bool accepts(const NodeData& d) const {
    return prop_.accepts(d.state);
  }
  /// φ on the single-vertex graph (the n = 1 degenerate case).
  [[nodiscard]] bool acceptsSingleVertex() const {
    return prop_.accepts(prop_.addVertex(prop_.empty()));
  }

  /// Validates and converts a certificate record (decodes the state bytes,
  /// checks canonicality, slot count, and terminal/slot agreement).
  [[nodiscard]] NodeData fromSummary(const SummaryRec& rec) const;
  /// Packs a NodeData into a record.
  [[nodiscard]] SummaryRec toSummary(const NodeData& d, std::int64_t nodeId,
                                     std::uint8_t type) const;

  [[nodiscard]] const Property& property() const { return prop_; }

 private:
  const Property& prop_;
};

}  // namespace lanecert
