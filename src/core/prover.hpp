#pragma once
// The centralized prover of the core scheme (Theorem 1).
//
// Pipeline: interval representation (given or computed) -> Prop 4.6 lane
// plan -> Prop 5.2 construction sequence -> Prop 5.6 hierarchical
// decomposition -> bottom-up hom-state computation (Prop 6.1) -> per-edge
// certificates (Lemmas 6.4/6.5) -> embedding simulation of virtual edges
// (Theorem 1) -> Prop 2.2 pointer to the decomposition's anchor vertex.
//
// The prover refuses to label configurations that do not satisfy the
// property (soundness makes honest labels impossible anyway); callers see
// `propertyHolds == false` and an empty label vector.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "mso/property.hpp"

namespace lanecert {

class ParallelExecutor;

/// Prover-side diagnostics (feed benchmarks E1-E4).
struct CoreProveStats {
  int width = 0;            ///< interval representation width used
  int numLanes = 0;         ///< lanes produced by Prop 4.6
  int hierarchyDepth = 0;   ///< decomposition depth (<= 2 * numLanes)
  int maxCongestion = 0;    ///< embedding congestion (<= h(width))
  std::size_t maxLabelBits = 0;
  std::size_t totalLabelBits = 0;
};

/// Result of proving: per-edge labels for G (empty when the property fails).
struct CoreProveResult {
  bool propertyHolds = false;
  std::vector<std::string> labels;  ///< one per EdgeId of g
  CoreProveStats stats;
};

/// The PROPERTY-INDEPENDENT head of the prover pipeline: interval
/// representation -> Prop 4.6 lane plan -> Prop 5.2 construction sequence
/// -> Prop 5.6 hierarchical decomposition.  Everything downstream (hom
/// states, records, labels) depends on the property and the id assignment;
/// nothing in here does — the same ProvePlan serves every (property, ids)
/// pair over one graph, which the batched serving layer exploits by caching
/// plans per graph.  Precondition: g connected with >= 2 vertices.
struct ProvePlan {
  IntervalRepresentation rep;
  LanePlan plan;
  ConstructionSequence seq;
  HierarchyResult hier;
};

/// Builds the plan stage.  `rep` may supply a known interval representation
/// (e.g. from a generator); otherwise one is computed (exact for small
/// graphs, greedy otherwise — a non-null `exec` parallelizes the greedy
/// candidate scans with output identical to serial).
[[nodiscard]] ProvePlan buildProvePlan(
    const Graph& g, const IntervalRepresentation* rep = nullptr,
    ParallelExecutor* exec = nullptr);

/// Runs the full prover.  `rep` may supply a known interval representation
/// (e.g. from a generator); otherwise one is computed (exact for small
/// graphs, greedy otherwise).  Precondition: g connected; ids distinct.
///
/// `numThreads` shards the bottom-up hom-state waves, the certificate-
/// record encoding, and the label assembly over the deterministic runtime
/// executor (<= 0 resolves to the hardware concurrency, mirroring
/// SimulationOptions).  The result — labels, stats, everything — is
/// BIT-IDENTICAL for every thread count: waves only order work that is
/// independent by construction, and every output slot is written by
/// exactly one shard.
[[nodiscard]] CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                                        const Property& prop,
                                        const IntervalRepresentation* rep = nullptr,
                                        int numThreads = 1);

/// The planned prover body over an EXTERNAL executor: runs hom-state waves,
/// record encoding, and label assembly for one (property, ids) pair against
/// a prebuilt plan.  `exec` may be private or borrowed from a shared
/// WorkerPool (the serving path) — output is bit-identical either way and
/// equal to proveCore(g, ids, prop, rep, t) for every thread count t.
/// Precondition: g is the graph the plan was built from, g connected with
/// >= 2 vertices (degenerate graphs never reach the plan stage).
[[nodiscard]] CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                                        const Property& prop,
                                        const ProvePlan& plan,
                                        ParallelExecutor& exec);

/// Invoked by the pipelined prover the moment the head (the full ProvePlan)
/// is built — BEFORE the waves that consume it have finished.  The serving
/// layer uses this to hand an in-flight head build to coalesced cache-miss
/// jobs as early as possible.  The plan is immutable from this point on.
using PlanReadyHook =
    std::function<void(const std::shared_ptr<const ProvePlan>&)>;

/// The PIPELINED prover: instead of barriering on a finished plan, the
/// hierarchy replay streams finalized nodes into the hom-state waves (a
/// pool-overlapped consumer via runtime/pipeline.hpp), terminal
/// materialization runs level-parallel inside the head, and the Prop 2.2
/// pointer BFS runs frontier-parallel while the waves drain.  Output is
/// BIT-IDENTICAL to proveCore over a prebuilt plan for every thread count
/// and pool size; `proveCore(g, ids, prop, rep, numThreads)` routes here.
[[nodiscard]] CoreProveResult proveCorePipelined(
    const Graph& g, const IdAssignment& ids, const Property& prop,
    const IntervalRepresentation* rep, ParallelExecutor& exec,
    const PlanReadyHook& onPlanReady = {});

}  // namespace lanecert
