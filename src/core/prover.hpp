#pragma once
// The centralized prover of the core scheme (Theorem 1).
//
// Pipeline: interval representation (given or computed) -> Prop 4.6 lane
// plan -> Prop 5.2 construction sequence -> Prop 5.6 hierarchical
// decomposition -> bottom-up hom-state computation (Prop 6.1) -> per-edge
// certificates (Lemmas 6.4/6.5) -> embedding simulation of virtual edges
// (Theorem 1) -> Prop 2.2 pointer to the decomposition's anchor vertex.
//
// The prover refuses to label configurations that do not satisfy the
// property (soundness makes honest labels impossible anyway); callers see
// `propertyHolds == false` and an empty label vector.

#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "interval/interval.hpp"
#include "mso/property.hpp"

namespace lanecert {

/// Prover-side diagnostics (feed benchmarks E1-E4).
struct CoreProveStats {
  int width = 0;            ///< interval representation width used
  int numLanes = 0;         ///< lanes produced by Prop 4.6
  int hierarchyDepth = 0;   ///< decomposition depth (<= 2 * numLanes)
  int maxCongestion = 0;    ///< embedding congestion (<= h(width))
  std::size_t maxLabelBits = 0;
  std::size_t totalLabelBits = 0;
};

/// Result of proving: per-edge labels for G (empty when the property fails).
struct CoreProveResult {
  bool propertyHolds = false;
  std::vector<std::string> labels;  ///< one per EdgeId of g
  CoreProveStats stats;
};

/// Runs the full prover.  `rep` may supply a known interval representation
/// (e.g. from a generator); otherwise one is computed (exact for small
/// graphs, greedy otherwise).  Precondition: g connected; ids distinct.
///
/// `numThreads` shards the bottom-up hom-state waves, the certificate-
/// record encoding, and the label assembly over the deterministic runtime
/// executor (<= 0 resolves to the hardware concurrency, mirroring
/// SimulationOptions).  The result — labels, stats, everything — is
/// BIT-IDENTICAL for every thread count: waves only order work that is
/// independent by construction, and every output slot is written by
/// exactly one shard.
[[nodiscard]] CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                                        const Property& prop,
                                        const IntervalRepresentation* rep = nullptr,
                                        int numThreads = 1);

}  // namespace lanecert
