#pragma once
// Structure-aware mutation engine for ENCODED certificates.
//
// The soundness story of the whole scheme is "a verifier that rejects every
// tampered certificate while staying strictly local" — and tampering happens
// on the wire, i.e. on the encoded bytes, not on decoded records.  The
// structured attacks in tests/test_core_attacks.cpp forge one decoded field
// and re-encode; this engine instead mutates the byte stream itself, which
// reaches the code paths re-encoding attacks cannot: the LEB128 varint
// decoder (10-byte cap, truncation mid-varint, non-canonical padding),
// length-prefix handling (lying lengths, zero-length payloads), and the
// record-grammar error paths of decodeFrom.
//
// Structure awareness: label encodings are a soup of LEB128 varints,
// length-prefixed byte strings, and single-byte booleans.  scanVarints
// segments a buffer into maximal LEB128 tokens (each run of continuation
// bytes up to a terminator), which lets mutations target exactly the places
// the decoder branches on — token boundaries, token values, and tokens that
// plausibly act as length prefixes — instead of wasting the budget on
// payload bytes the decoder copies blindly.  The scan is a heuristic (raw
// payload bytes parse as pseudo-varints too), which is fine: mutation needs
// interesting POSITIONS, not a faithful schema walk.
//
// Every mutation is a deterministic function of (input bytes, donor bytes,
// kind, rng state), so a fuzz campaign is reproducible from its seed and
// iteration number alone — the replay contract tools/fuzz_cert.cpp builds
// its crash artifacts on.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "graph/generators.hpp"

namespace lanecert {

/// Mutation kinds over encoded certificate bytes.
enum class FuzzKind : std::uint8_t {
  kBitFlip = 0,     ///< flip one random bit
  kByteSet,         ///< overwrite one byte with a random value
  kTruncate,        ///< drop a suffix, cut chosen to land mid-varint often
  kVarintPad,       ///< re-encode one varint with redundant 0x80 padding
                    ///< (sometimes past the 10-byte cap — must then reject)
  kVarintBump,      ///< +/- small delta on one varint value (canonical)
  kLengthLie,       ///< rewrite a plausible length prefix to a lying value
  kZeroLength,      ///< set a plausible length prefix to zero, keep payload
  kSplice,          ///< overwrite a chunk with bytes from the donor label
  kChunkDup,        ///< duplicate a chunk in place (grows the buffer)
  kChunkDrop,       ///< remove an interior chunk
  kCount            ///< number of kinds (not a mutation)
};

[[nodiscard]] const char* fuzzKindName(FuzzKind kind);

/// One LEB128 token found by the scanner.
struct VarintSite {
  std::size_t offset = 0;   ///< first byte of the token
  std::size_t length = 0;   ///< bytes up to and including the terminator
  std::uint64_t value = 0;  ///< decoded value (low 64 bits)
  /// True when interpreting `value` as a byte-string length prefix stays
  /// inside the buffer — the sites kLengthLie / kZeroLength target.
  bool plausibleLength = false;
};

/// Segments `bytes` into maximal LEB128 tokens.  Tokens longer than 10
/// bytes are truncated at 10 (mirroring the decoder's cap); the final token
/// may be unterminated (buffer ends mid-varint) — its `length` then runs to
/// the end of the buffer.
[[nodiscard]] std::vector<VarintSite> scanVarints(std::string_view bytes);

/// Canonical LEB128 encoding of `value`, optionally padded with redundant
/// continuation bytes to exactly `width` bytes (0 = canonical width).
/// Padding beyond 10 bytes produces an encoding the decoder must REJECT.
[[nodiscard]] std::string encodeVarint(std::uint64_t value,
                                       std::size_t width = 0);

/// How a mutant relates to its original, decided by decoding both.
enum class FuzzVerdictClass : std::uint8_t {
  kMalformed,      ///< mutant no longer decodes: sweep must reject
  kSemanticChange, ///< decodes to different content: corruption
  kNoop,           ///< decodes to identical content (e.g. padded varints):
                   ///< the sweep verdict must be UNCHANGED
};

class FuzzMutator {
 public:
  explicit FuzzMutator(std::uint64_t seed) : rng_(seed) {}

  /// Applies `kind` to `original`; `donor` feeds kSplice (pass any other
  /// encoded label — ideally from a different graph or property).  Returns
  /// the mutated bytes; a mutation that degenerates to a no-op on this
  /// input (e.g. splicing identical bytes) is still returned — the
  /// classifier sorts it out.
  [[nodiscard]] std::string mutate(std::string_view original,
                                   std::string_view donor, FuzzKind kind);

  /// Picks a random kind and applies it.
  [[nodiscard]] std::string mutateRandom(std::string_view original,
                                         std::string_view donor,
                                         FuzzKind* pickedKind = nullptr);

  [[nodiscard]] Rng& rng() { return rng_; }

 private:
  Rng rng_;
};

/// Classifies `mutant` against `original` by decoding both as EdgeLabels.
/// `original` must itself decode (honest input).
[[nodiscard]] FuzzVerdictClass classifyMutation(std::string_view original,
                                                std::string_view mutant);

}  // namespace lanecert
