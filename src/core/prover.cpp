#include "core/prover.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/algebra.hpp"
#include "core/records.hpp"
#include "graph/algorithms.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"
#include "pls/pointer.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"

namespace lanecert {

namespace {

/// Per-shard scratch of the parallel prover: a bump arena for fold
/// orderings and path buffers plus a reusable chain-reference list.  One
/// instance per executor shard slot, so shards never share mutable state.
struct ProverScratch {
  Arena arena;
  std::vector<std::string_view> chain;
};

/// Writes a SummaryRec encoding straight from a NodeData — byte-identical
/// to LaneAlgebra::toSummary(...).encodeTo(enc) without materializing the
/// intermediate record (no vector/string copies on the hot path).
void encodeSummary(Encoder& enc, const NodeData& d, std::int64_t nodeId,
                   std::uint8_t type) {
  enc.i64(nodeId);
  enc.u64(type);
  enc.u64(d.lanes.size());
  for (int l : d.lanes) enc.u64(static_cast<std::uint64_t>(l));
  d.inTerm.encodeTo(enc);
  d.outTerm.encodeTo(enc);
  enc.u64(d.slots.size());
  for (std::uint64_t v : d.slots) enc.u64(v);
  enc.bytes(d.state.encoding());
}

/// Builds every NodeData / record needed for the certificates.
///
/// Phase 1 (computeStates): level-synchronous waves over the hierarchy DAG
/// — a node's hom state depends only on its children's, so all nodes of one
/// bottom-up wave run in parallel through the deterministic shard executor.
/// Subtree-merged data TM(T_child) lives in flat CSR storage indexed by
/// (T-node, child position); fold orderings come from a per-shard arena.
///
/// Phase 2 (encodeEntries): each hierarchy node's chain-entry record is a
/// pure function of the computed states, shared verbatim by every edge
/// whose chain passes through the node — so it is encoded ONCE (in
/// parallel) and certificates later splice the cached bytes.
class CertBuilder {
 public:
  CertBuilder(const Graph& g, const IdAssignment& ids, const Property& prop,
              const HierarchyResult& hier, ParallelExecutor& exec,
              std::vector<ProverScratch>& scratch)
      : g_(g), ids_(ids), alg_(prop), hier_(hier), exec_(exec),
        scratch_(scratch) {}

  /// Computes hom data bottom-up; returns the root NodeData.
  const NodeData& computeStates();

  /// Encodes the per-node owner entries and per-(T, pos) tree entries.
  void encodeEntries();

  /// Appends the full EdgeCert encoding of a completion edge owned by
  /// hierarchy node `ownerNode` (splices cached entry bytes bottom-up).
  void encodeCert(Encoder& enc, bool real, std::uint64_t endA,
                  std::uint64_t endB, int ownerNode,
                  ProverScratch& scratch) const;

  [[nodiscard]] bool accepts(const NodeData& d) const { return alg_.accepts(d); }
  [[nodiscard]] const NodeData& data(int nodeId) const {
    return nodeData_[static_cast<std::size_t>(nodeId)];
  }
  [[nodiscard]] std::string_view rootEntryBytes() const {
    const HierNode& root = hier_.hierarchy.node(hier_.hierarchy.root());
    return treeBytes_[tmIndex(hier_.hierarchy.root(), root.rootChildPos)];
  }

 private:
  [[nodiscard]] std::size_t tmIndex(int tId, int pos) const {
    return tmOffset_[static_cast<std::size_t>(tId)] +
           static_cast<std::size_t>(pos);
  }
  [[nodiscard]] std::span<const int> kidsOf(std::size_t tmSlot) const {
    return std::span<const int>(kids_).subspan(
        kidsOffset_[tmSlot], kidsOffset_[tmSlot + 1] - kidsOffset_[tmSlot]);
  }
  [[nodiscard]] bool edgeIsReal(VertexId u, VertexId v) const {
    return g_.hasEdge(u, v);
  }
  [[nodiscard]] std::uint64_t id(VertexId v) const { return ids_.id(v); }

  void layoutTmStorage();
  void computeNode(int nid, ProverScratch& scratch);
  void encodeOwnerEntry(Encoder& enc, int nid) const;
  void encodeTreeEntry(Encoder& enc, int tId, int pos) const;

  const Graph& g_;
  const IdAssignment& ids_;
  LaneAlgebra alg_;
  const HierarchyResult& hier_;
  ParallelExecutor& exec_;
  std::vector<ProverScratch>& scratch_;

  std::vector<NodeData> nodeData_;
  /// Subtree-merged data TM(T_child), CSR per T-node: slot tmOffset_[t] + pos.
  std::vector<std::size_t> tmOffset_;  ///< size() + 1 offsets; non-T rows empty
  std::vector<NodeData> tmData_;
  /// Tree-merge child positions per TM slot, sorted by the child's smallest
  /// lane (the deterministic fold order), CSR over TM slots.
  std::vector<std::size_t> kidsOffset_;
  std::vector<int> kids_;
  /// Position of a node inside its T-node parent's children array, or -1.
  std::vector<int> posInParent_;

  std::vector<std::string> ownerBytes_;  ///< per node: encoded owner entry (E/P/B)
  std::vector<std::string> treeBytes_;   ///< per TM slot: encoded T entry
};

void CertBuilder::layoutTmStorage() {
  const Hierarchy& h = hier_.hierarchy;
  const auto n = static_cast<std::size_t>(h.size());
  tmOffset_.assign(n + 1, 0);
  posInParent_.assign(n, -1);
  for (std::size_t nid = 0; nid < n; ++nid) {
    const HierNode& node = h.node(static_cast<int>(nid));
    const bool isT = node.type == HierNode::Type::kT;
    tmOffset_[nid + 1] = tmOffset_[nid] + (isT ? node.children.size() : 0);
    if (isT) {
      for (std::size_t p = 0; p < node.children.size(); ++p) {
        posInParent_[static_cast<std::size_t>(node.children[p])] =
            static_cast<int>(p);
      }
    }
  }
  const std::size_t tmTotal = tmOffset_[n];
  tmData_.resize(tmTotal);
  treeBytes_.resize(tmTotal);

  // Tree-merge children CSR: count, place, then sort each segment by the
  // child's smallest lane (lane sets of siblings are disjoint, so the key
  // is unique and the order deterministic).
  kidsOffset_.assign(tmTotal + 1, 0);
  for (std::size_t nid = 0; nid < n; ++nid) {
    const HierNode& node = h.node(static_cast<int>(nid));
    if (node.type != HierNode::Type::kT) continue;
    for (std::size_t p = 0; p < node.children.size(); ++p) {
      if (node.treeParentPos[p] >= 0) {
        ++kidsOffset_[tmIndex(static_cast<int>(nid), node.treeParentPos[p]) + 1];
      }
    }
  }
  for (std::size_t s = 0; s < tmTotal; ++s) kidsOffset_[s + 1] += kidsOffset_[s];
  kids_.resize(kidsOffset_[tmTotal]);
  std::vector<std::size_t> fill(kidsOffset_.begin(), kidsOffset_.end() - 1);
  for (std::size_t nid = 0; nid < n; ++nid) {
    const HierNode& node = h.node(static_cast<int>(nid));
    if (node.type != HierNode::Type::kT) continue;
    for (std::size_t p = 0; p < node.children.size(); ++p) {
      if (node.treeParentPos[p] >= 0) {
        kids_[fill[tmIndex(static_cast<int>(nid), node.treeParentPos[p])]++] =
            static_cast<int>(p);
      }
    }
    for (std::size_t p = 0; p < node.children.size(); ++p) {
      const std::size_t slot = tmIndex(static_cast<int>(nid), static_cast<int>(p));
      std::sort(kids_.begin() + static_cast<std::ptrdiff_t>(kidsOffset_[slot]),
                kids_.begin() + static_cast<std::ptrdiff_t>(kidsOffset_[slot + 1]),
                [&node, &h](int a, int b) {
                  return h.node(node.children[static_cast<std::size_t>(a)]).lanes[0] <
                         h.node(node.children[static_cast<std::size_t>(b)]).lanes[0];
                });
    }
  }
}

void CertBuilder::computeNode(int nid, ProverScratch& s) {
  const Hierarchy& h = hier_.hierarchy;
  const HierNode& n = h.node(nid);
  NodeData& d = nodeData_[static_cast<std::size_t>(nid)];
  s.arena.reset();
  switch (n.type) {
    case HierNode::Type::kV:
      d = alg_.baseV(n.lanes[0], id(n.u));
      break;
    case HierNode::Type::kE:
      d = alg_.baseE(n.laneI, id(n.u), id(n.v), edgeIsReal(n.u, n.v));
      break;
    case HierNode::Type::kP: {
      const std::size_t len = n.pathVertices.size();
      const std::span<std::uint64_t> pathIds = s.arena.allocSpan<std::uint64_t>(len);
      for (std::size_t i = 0; i < len; ++i) pathIds[i] = id(n.pathVertices[i]);
      const std::span<std::uint8_t> flags =
          s.arena.allocSpan<std::uint8_t>(len - 1);
      for (std::size_t i = 0; i + 1 < len; ++i) {
        flags[i] = edgeIsReal(n.pathVertices[i], n.pathVertices[i + 1]) ? 1 : 0;
      }
      d = alg_.baseP(n.lanes, pathIds, flags);
      break;
    }
    case HierNode::Type::kB:
      d = alg_.bridge(data(n.children[0]), data(n.children[1]), n.laneI,
                      n.laneJ, edgeIsReal(n.u, n.v));
      break;
    case HierNode::Type::kT: {
      // Tree children positions, processed leaves-first (tree children
      // always have larger node ids than their tree parents).
      const std::size_t cn = n.children.size();
      const std::span<int> order = s.arena.allocSpan<int>(cn);
      for (std::size_t p = 0; p < cn; ++p) order[p] = static_cast<int>(p);
      std::sort(order.begin(), order.end(), [&n](int a, int b) {
        return n.children[static_cast<std::size_t>(a)] >
               n.children[static_cast<std::size_t>(b)];
      });
      for (int pos : order) {
        NodeData cur = data(n.children[static_cast<std::size_t>(pos)]);
        // Deterministic fold order: tree children by smallest lane (the
        // precomputed CSR segment is already sorted that way).
        for (int q : kidsOf(tmIndex(nid, pos))) {
          cur = alg_.parentMerge(tmData_[tmIndex(nid, q)], cur);
        }
        tmData_[tmIndex(nid, pos)] = std::move(cur);
      }
      d = tmData_[tmIndex(nid, n.rootChildPos)];
      break;
    }
  }
}

const NodeData& CertBuilder::computeStates() {
  const Hierarchy& h = hier_.hierarchy;
  const auto n = static_cast<std::size_t>(h.size());
  nodeData_.resize(n);
  layoutTmStorage();

  // Level-synchronous wave schedule: bucket node ids by bottom-up wave
  // (ascending id inside a wave), then run each wave through the executor.
  const std::vector<int> wave = h.bottomUpWaves();
  const int numWaves =
      wave.empty() ? 0 : *std::max_element(wave.begin(), wave.end()) + 1;
  std::vector<std::size_t> waveOffset(static_cast<std::size_t>(numWaves) + 1, 0);
  for (int w : wave) ++waveOffset[static_cast<std::size_t>(w) + 1];
  for (std::size_t w = 0; w < static_cast<std::size_t>(numWaves); ++w) {
    waveOffset[w + 1] += waveOffset[w];
  }
  std::vector<int> waveNodes(n);
  std::vector<std::size_t> fill(waveOffset.begin(), waveOffset.end() - 1);
  for (std::size_t nid = 0; nid < n; ++nid) {
    waveNodes[fill[static_cast<std::size_t>(wave[nid])]++] =
        static_cast<int>(nid);
  }

  for (std::size_t w = 0; w < static_cast<std::size_t>(numWaves); ++w) {
    const std::size_t begin = waveOffset[w];
    const std::size_t count = waveOffset[w + 1] - begin;
    exec_.forShards(count, [&](std::size_t shard, std::size_t lo,
                               std::size_t hi) {
      ProverScratch& s = scratch_[shard];
      for (std::size_t i = lo; i < hi; ++i) {
        computeNode(waveNodes[begin + i], s);
      }
    });
  }
  return data(h.root());
}

void CertBuilder::encodeOwnerEntry(Encoder& enc, int nid) const {
  const Hierarchy& h = hier_.hierarchy;
  const HierNode& n = h.node(nid);
  const NodeData& d = data(nid);
  switch (n.type) {
    case HierNode::Type::kE:
      enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kBaseE));
      encodeSummary(enc, d, nid, static_cast<std::uint8_t>(n.type));
      enc.boolean(edgeIsReal(n.u, n.v));
      break;
    case HierNode::Type::kP:
      enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kBaseP));
      encodeSummary(enc, d, nid, static_cast<std::uint8_t>(n.type));
      enc.u64(n.pathVertices.size() - 1);
      for (std::size_t i = 0; i + 1 < n.pathVertices.size(); ++i) {
        enc.boolean(edgeIsReal(n.pathVertices[i], n.pathVertices[i + 1]));
      }
      break;
    case HierNode::Type::kB: {
      enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kBridge));
      encodeSummary(enc, d, nid, static_cast<std::uint8_t>(n.type));
      enc.u64(static_cast<std::uint64_t>(n.laneI));
      enc.u64(static_cast<std::uint64_t>(n.laneJ));
      enc.boolean(edgeIsReal(n.u, n.v));
      for (int part : {n.children[0], n.children[1]}) {
        encodeSummary(enc, data(part), part,
                      static_cast<std::uint8_t>(h.node(part).type));
      }
      break;
    }
    default:
      throw std::logic_error("encodeOwnerEntry: V/T nodes own no edges");
  }
}

void CertBuilder::encodeTreeEntry(Encoder& enc, int tId, int pos) const {
  const Hierarchy& h = hier_.hierarchy;
  const HierNode& t = h.node(tId);
  const int childId = t.children[static_cast<std::size_t>(pos)];
  const auto childType = static_cast<std::uint8_t>(h.node(childId).type);
  enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kTree));
  encodeSummary(enc, data(tId), tId, static_cast<std::uint8_t>(t.type));
  enc.i64(childId);
  enc.boolean(pos == t.rootChildPos);
  encodeSummary(enc, data(childId), childId, childType);
  encodeSummary(enc, tmData_[tmIndex(tId, pos)], childId, childType);
  const std::span<const int> kids = kidsOf(tmIndex(tId, pos));
  enc.u64(kids.size());
  for (int q : kids) {
    const int kidId = t.children[static_cast<std::size_t>(q)];
    encodeSummary(enc, tmData_[tmIndex(tId, q)], kidId,
                  static_cast<std::uint8_t>(h.node(kidId).type));
  }
}

void CertBuilder::encodeEntries() {
  const Hierarchy& h = hier_.hierarchy;
  const auto n = static_cast<std::size_t>(h.size());
  ownerBytes_.resize(n);
  exec_.forShards(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    Encoder enc;
    for (std::size_t nid = lo; nid < hi; ++nid) {
      const HierNode& node = h.node(static_cast<int>(nid));
      switch (node.type) {
        case HierNode::Type::kV:
          break;  // V nodes appear only as bridge parts, never as entries
        case HierNode::Type::kT:
          for (std::size_t p = 0; p < node.children.size(); ++p) {
            encodeTreeEntry(enc, static_cast<int>(nid), static_cast<int>(p));
            treeBytes_[tmIndex(static_cast<int>(nid), static_cast<int>(p))] =
                enc.take();
          }
          break;
        default:
          encodeOwnerEntry(enc, static_cast<int>(nid));
          ownerBytes_[nid] = enc.take();
          break;
      }
    }
  });
}

void CertBuilder::encodeCert(Encoder& enc, bool real, std::uint64_t endA,
                             std::uint64_t endB, int ownerNode,
                             ProverScratch& s) const {
  const Hierarchy& h = hier_.hierarchy;
  const int rootId = h.root();
  const HierNode& rootNode = h.node(rootId);
  const std::int64_t rootChildId =
      rootNode.children[static_cast<std::size_t>(rootNode.rootChildPos)];

  // Chain of cached entry encodings, owner first, root T-node last.  An
  // empty encoding means a V/T node ended up where only E/P/B entries are
  // legal — an internal hierarchy bug that must fail fast in the prover,
  // never ship as a corrupt certificate.
  const auto pushEntry = [&s](std::string_view bytes) {
    if (bytes.empty()) {
      throw std::logic_error("encodeCert: V/T node on an owner chain");
    }
    s.chain.push_back(bytes);
  };
  std::vector<std::string_view>& chain = s.chain;
  chain.clear();
  int cur = ownerNode;
  pushEntry(ownerBytes_[static_cast<std::size_t>(cur)]);
  while (h.node(cur).parent != -1) {
    const int parent = h.node(cur).parent;
    if (h.node(parent).type == HierNode::Type::kT) {
      pushEntry(treeBytes_[tmIndex(
          parent, posInParent_[static_cast<std::size_t>(cur)])]);
    } else {
      pushEntry(ownerBytes_[static_cast<std::size_t>(parent)]);
    }
    cur = parent;
  }

  const std::string_view rootEntry = rootEntryBytes();
  std::size_t total = 64 + (real ? rootEntry.size() : 0);
  for (std::string_view e : chain) total += e.size();
  enc.reserve(enc.str().size() + total);

  enc.boolean(real);
  enc.u64(endA);
  enc.u64(endB);
  enc.i64(rootId);
  enc.i64(rootChildId);
  // Only real edges ship the (large) root record; virtual-edge payloads
  // rely on their endpoints' real edges for it.
  enc.boolean(real);
  if (real) enc.raw(rootEntry);
  enc.u64(chain.size());
  for (std::string_view e : chain) enc.raw(e);
}

}  // namespace

ProvePlan buildProvePlan(const Graph& g, const IntervalRepresentation* rep) {
  IntervalRepresentation r = rep != nullptr ? *rep : bestIntervalRepresentation(g);
  LanePlan plan = buildLanePlan(g, r);
  ConstructionSequence seq = buildConstruction(g, r, plan.lanes);
  HierarchyResult hier = buildHierarchy(seq);
  return ProvePlan{std::move(r), std::move(plan), std::move(seq),
                   std::move(hier)};
}

CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                          const Property& prop,
                          const IntervalRepresentation* rep, int numThreads) {
  if (!isConnected(g)) {
    throw std::invalid_argument("proveCore: graph must be connected");
  }
  if (g.numVertices() <= 1) {
    // Degenerate single-vertex (or empty) network: no edges, no labels.
    CoreProveResult out;
    const LaneAlgebra alg(prop);
    out.propertyHolds = g.numVertices() == 1 ? alg.acceptsSingleVertex()
                                             : prop.accepts(prop.empty());
    return out;
  }
  ParallelExecutor exec(numThreads);
  return proveCore(g, ids, prop, buildProvePlan(g, rep), exec);
}

CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                          const Property& prop, const ProvePlan& plan,
                          ParallelExecutor& exec) {
  CoreProveResult out;
  const IntervalRepresentation& localRep = plan.rep;
  const HierarchyResult& hier = plan.hier;
  const ConstructionSequence& seq = plan.seq;
  const Hierarchy& h = hier.hierarchy;

  out.stats.width = localRep.width();
  out.stats.numLanes = plan.plan.lanes.numLanes();
  out.stats.hierarchyDepth = h.depth();
  out.stats.maxCongestion = plan.plan.maxCongestion;

  std::vector<ProverScratch> scratch(
      static_cast<std::size_t>(exec.numThreads()));

  CertBuilder builder(g, ids, prop, hier, exec, scratch);
  const NodeData& rootData = builder.computeStates();
  if (!builder.accepts(rootData)) {
    out.propertyHolds = false;
    return out;
  }
  out.propertyHolds = true;
  builder.encodeEntries();

  // Certificates for every completion edge: each chain splices the cached
  // entry bytes, so the per-edge cost is a walk up the hierarchy plus one
  // buffer append per entry.  Shards write disjoint certBytes slots.
  const Graph& gc = hier.graph;
  std::vector<std::string> certBytes(static_cast<std::size_t>(gc.numEdges()));
  exec.forShards(
      static_cast<std::size_t>(gc.numEdges()),
      [&](std::size_t shard, std::size_t lo, std::size_t hi) {
        ProverScratch& s = scratch[shard];
        Encoder enc;
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& edge = gc.edge(static_cast<EdgeId>(i));
          builder.encodeCert(enc, g.hasEdge(edge.u, edge.v), ids.id(edge.u),
                             ids.id(edge.v),
                             hier.edgeOwner[i], s);
          certBytes[i] = enc.take();
        }
      });

  // Virtual edges: distribute the cert along the embedding path (Thm 1).
  // Payloads are views into certBytes — no copies until label assembly.
  struct ThroughRef {
    std::uint64_t uId = 0;
    std::uint64_t vId = 0;
    std::uint64_t fwdRank = 0;
    std::uint64_t bwdRank = 0;
    std::string_view payload;
  };
  std::vector<std::vector<ThroughRef>> through(
      static_cast<std::size_t>(g.numEdges()));
  for (const EmbeddedEdge& emb : plan.plan.embeddings) {
    if (g.hasEdge(emb.edge.u, emb.edge.v)) continue;  // real: no simulation
    const EdgeId gcEdge = gc.findEdge(emb.edge.u, emb.edge.v);
    if (gcEdge == kNoEdge) throw std::logic_error("proveCore: lost virtual edge");
    const std::string_view payload = certBytes[static_cast<std::size_t>(gcEdge)];
    const std::uint64_t len = emb.path.size() - 1;
    for (std::size_t i = 0; i + 1 < emb.path.size(); ++i) {
      const EdgeId realEdge = g.findEdge(emb.path[i], emb.path[i + 1]);
      through[static_cast<std::size_t>(realEdge)].push_back(
          ThroughRef{ids.id(emb.edge.u), ids.id(emb.edge.v), i + 1, len - i,
                     payload});
    }
  }

  // Prop 2.2 pointer to the anchor (first initial-path vertex: the root
  // child's in-terminal on the smallest lane).
  const std::vector<PointerRecord> pointer =
      provePointer(g, ids, seq.initialPath[0]);

  // Label assembly: one encoded EdgeLabel per real edge, again sharded with
  // each shard writing disjoint label slots.
  out.labels.resize(static_cast<std::size_t>(g.numEdges()));
  exec.forShards(
      static_cast<std::size_t>(g.numEdges()),
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        Encoder enc;
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& edge = g.edge(static_cast<EdgeId>(i));
          const EdgeId gcEdge = gc.findEdge(edge.u, edge.v);
          const std::string& own = certBytes[static_cast<std::size_t>(gcEdge)];
          const std::vector<ThroughRef>& thr = through[i];
          std::size_t total = own.size() + 64;
          for (const ThroughRef& t : thr) total += t.payload.size() + 48;
          enc.reserve(total);
          enc.raw(own);
          pointer[i].encodeTo(enc);
          enc.u64(thr.size());
          for (const ThroughRef& t : thr) {
            enc.u64(t.uId);
            enc.u64(t.vId);
            enc.u64(t.fwdRank);
            enc.u64(t.bwdRank);
            enc.bytes(t.payload);
          }
          out.labels[i] = enc.take();
        }
      });
  for (const std::string& l : out.labels) {
    out.stats.maxLabelBits = std::max(out.stats.maxLabelBits, l.size() * 8);
    out.stats.totalLabelBits += l.size() * 8;
  }
  return out;
}

}  // namespace lanecert
