#include "core/prover.hpp"

#include <algorithm>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/algebra.hpp"
#include "core/records.hpp"
#include "graph/algorithms.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"
#include "pls/pointer.hpp"
#include "runtime/arena.hpp"
#include "runtime/executor.hpp"
#include "runtime/pipeline.hpp"

namespace lanecert {

namespace {

/// Per-shard scratch of the parallel prover: a bump arena for fold
/// orderings and path buffers plus a reusable chain-reference list.  One
/// instance per executor shard slot, so shards never share mutable state.
struct ProverScratch {
  Arena arena;
  std::vector<std::string_view> chain;
};

/// Writes a SummaryRec encoding straight from a NodeData — byte-identical
/// to LaneAlgebra::toSummary(...).encodeTo(enc) without materializing the
/// intermediate record (no vector/string copies on the hot path).
void encodeSummary(Encoder& enc, const NodeData& d, std::int64_t nodeId,
                   std::uint8_t type) {
  enc.i64(nodeId);
  enc.u64(type);
  enc.u64(d.lanes.size());
  for (int l : d.lanes) enc.u64(static_cast<std::uint64_t>(l));
  d.inTerm.encodeTo(enc);
  d.outTerm.encodeTo(enc);
  enc.u64(d.slots.size());
  for (std::uint64_t v : d.slots) enc.u64(v);
  enc.bytes(d.state.encoding());
}

/// Builds every NodeData / record needed for the certificates.
///
/// Phase 1 (computeStates / computeStatesStreamed): level-synchronous waves
/// over the hierarchy DAG — a node's hom state depends only on its
/// children's, so all nodes of one bottom-up wave run in parallel through
/// the deterministic shard executor.  The STREAMED variant consumes a
/// StageFeed while the hierarchy replay is still producing nodes: layout
/// and wave bookkeeping extend incrementally in published-id order, small
/// increments run inline on the consumer thread, and a backlog fans out as
/// full waves.  Either way every NodeData is the same pure function of its
/// children, so the results are bit-identical.  Subtree-merged data
/// TM(T_child) lives in flat CSR storage indexed by (T-node, child
/// position); fold orderings come from a per-shard arena.
///
/// Phase 2 (encodeEntries): each hierarchy node's chain-entry record is a
/// pure function of the computed states, shared verbatim by every edge
/// whose chain passes through the node — so it is encoded ONCE (in
/// parallel) and certificates later splice the cached bytes.
class CertBuilder {
 public:
  /// Prebuilt-plan mode: every node is already final.
  CertBuilder(const Graph& g, const IdAssignment& ids, const Property& prop,
              const Hierarchy& hier, ParallelExecutor& exec,
              std::vector<ProverScratch>& scratch)
      : g_(g), ids_(ids), alg_(prop), exec_(exec), scratch_(scratch),
        nodes_(hier.nodes().data()),
        nodeCount_(hier.nodes().size()),
        rootId_(hier.root()) {}

  /// Streaming mode: nodes arrive through a StageFeed (computeStatesStreamed).
  CertBuilder(const Graph& g, const IdAssignment& ids, const Property& prop,
              ParallelExecutor& exec, std::vector<ProverScratch>& scratch)
      : g_(g), ids_(ids), alg_(prop), exec_(exec), scratch_(scratch) {}

  /// Computes hom data bottom-up; returns the root NodeData.
  const NodeData& computeStates();

  /// Streaming twin: consumes published nodes as the replay produces them.
  /// Runs on ONE thread (typically a pool-overlapped StealableTask); only
  /// the forShards waves it issues fan out further.
  const NodeData& computeStatesStreamed(const StageFeed<HierNode>& feed);

  /// Encodes the per-node owner entries and per-(T, pos) tree entries.
  void encodeEntries();

  /// Appends the full EdgeCert encoding of a completion edge owned by
  /// hierarchy node `ownerNode` (splices cached entry bytes bottom-up).
  void encodeCert(Encoder& enc, bool real, std::uint64_t endA,
                  std::uint64_t endB, int ownerNode,
                  ProverScratch& scratch) const;

  [[nodiscard]] bool accepts(const NodeData& d) const { return alg_.accepts(d); }
  [[nodiscard]] const NodeData& data(int nodeId) const {
    return nodeData_[static_cast<std::size_t>(nodeId)];
  }
  [[nodiscard]] std::string_view rootEntryBytes() const {
    const HierNode& root = node(rootId_);
    return treeBytes_[tmIndex(rootId_, root.rootChildPos)];
  }

 private:
  [[nodiscard]] const HierNode& node(int id) const {
    return nodes_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::size_t tmIndex(int tId, int pos) const {
    return tmOffset_[static_cast<std::size_t>(tId)] +
           static_cast<std::size_t>(pos);
  }
  [[nodiscard]] std::span<const int> kidsOf(std::size_t tmSlot) const {
    return std::span<const int>(kids_).subspan(
        kidsOffset_[tmSlot], kidsOffset_[tmSlot + 1] - kidsOffset_[tmSlot]);
  }
  [[nodiscard]] bool edgeIsReal(VertexId u, VertexId v) const {
    return g_.hasEdge(u, v);
  }
  [[nodiscard]] std::uint64_t id(VertexId v) const { return ids_.id(v); }

  /// Extends the TM-slot CSR layout, posInParent_, and wave bookkeeping to
  /// cover nodes [layoutDone_, upTo).  Nodes arrive in topological id
  /// order, so every append is determined the moment its node is.
  void extendLayout(std::size_t upTo);
  /// Runs the bottom-up waves of nodes [lo, hi) (children first; a wave
  /// below kInlineWave nodes runs inline instead of paying a fork-join).
  void runWaves(std::size_t lo, std::size_t hi);
  void computeNode(int nid, ProverScratch& scratch);
  void encodeOwnerEntry(Encoder& enc, int nid) const;
  void encodeTreeEntry(Encoder& enc, int tId, int pos) const;

  const Graph& g_;
  const IdAssignment& ids_;
  LaneAlgebra alg_;
  ParallelExecutor& exec_;
  std::vector<ProverScratch>& scratch_;

  const HierNode* nodes_ = nullptr;  ///< address-stable node array
  std::size_t nodeCount_ = 0;
  int rootId_ = -1;

  std::vector<NodeData> nodeData_;
  /// Subtree-merged data TM(T_child), CSR per T-node: slot tmOffset_[t] + pos.
  std::vector<std::size_t> tmOffset_;  ///< size() + 1 offsets; non-T rows empty
  std::vector<NodeData> tmData_;
  /// Tree-merge child positions per TM slot, sorted by the child's smallest
  /// lane (the deterministic fold order), CSR over TM slots.
  std::vector<std::size_t> kidsOffset_;
  std::vector<int> kids_;
  /// Position of a node inside its T-node parent's children array, or -1.
  std::vector<int> posInParent_;
  /// Bottom-up wave index per node (leaves 0, parents max(child) + 1).
  std::vector<int> waveOf_;
  std::size_t layoutDone_ = 0;
  std::vector<std::vector<int>> kidBuckets_;   ///< extendLayout scratch
  std::vector<std::vector<int>> waveBuckets_;  ///< runWaves scratch

  std::vector<std::string> ownerBytes_;  ///< per node: encoded owner entry (E/P/B)
  std::vector<std::string> treeBytes_;   ///< per TM slot: encoded T entry

  /// Waves below this size run inline on the driving thread — a streamed
  /// mini-batch of a handful of nodes is cheaper to compute than to fan
  /// out, and the choice cannot change any output byte.
  static constexpr std::size_t kInlineWave = 32;
};

void CertBuilder::extendLayout(std::size_t upTo) {
  if (tmOffset_.empty()) tmOffset_.push_back(0);
  if (kidsOffset_.empty()) kidsOffset_.push_back(0);
  posInParent_.resize(upTo, -1);
  waveOf_.resize(upTo, 0);
  nodeData_.resize(upTo);
  for (std::size_t nid = layoutDone_; nid < upTo; ++nid) {
    const HierNode& n = node(static_cast<int>(nid));
    int w = 0;
    for (int c : n.children) {
      // Guards caller-supplied plans: the wave schedule (and every CSR
      // lookup below) assumes children precede parents in id order.
      if (c < 0 || static_cast<std::size_t>(c) >= nid) {
        throw std::logic_error("CertBuilder: node ids are not topological");
      }
      w = std::max(w, waveOf_[static_cast<std::size_t>(c)] + 1);
    }
    waveOf_[nid] = w;
    const bool isT = n.type == HierNode::Type::kT;
    tmOffset_.push_back(tmOffset_.back() + (isT ? n.children.size() : 0));
    if (!isT) continue;
    const std::size_t cn = n.children.size();
    for (std::size_t p = 0; p < cn; ++p) {
      posInParent_[static_cast<std::size_t>(n.children[p])] =
          static_cast<int>(p);
    }
    // Tree-merge kids per TM slot, sorted by the child's smallest lane
    // (lane sets of siblings are disjoint, so the key is unique and the
    // order deterministic).
    if (kidBuckets_.size() < cn) kidBuckets_.resize(cn);
    for (std::size_t p = 0; p < cn; ++p) kidBuckets_[p].clear();
    for (std::size_t q = 0; q < cn; ++q) {
      const int tp = n.treeParentPos[q];
      if (tp >= 0) {
        kidBuckets_[static_cast<std::size_t>(tp)].push_back(
            static_cast<int>(q));
      }
    }
    for (std::size_t p = 0; p < cn; ++p) {
      std::vector<int>& bucket = kidBuckets_[p];
      std::sort(bucket.begin(), bucket.end(), [&n, this](int a, int b) {
        return node(n.children[static_cast<std::size_t>(a)]).lanes[0] <
               node(n.children[static_cast<std::size_t>(b)]).lanes[0];
      });
      kids_.insert(kids_.end(), bucket.begin(), bucket.end());
      kidsOffset_.push_back(kids_.size());
    }
  }
  tmData_.resize(tmOffset_.back());
  treeBytes_.resize(tmOffset_.back());
  layoutDone_ = upTo;
}

void CertBuilder::computeNode(int nid, ProverScratch& s) {
  const HierNode& n = node(nid);
  NodeData& d = nodeData_[static_cast<std::size_t>(nid)];
  s.arena.reset();
  switch (n.type) {
    case HierNode::Type::kV:
      d = alg_.baseV(n.lanes[0], id(n.u));
      break;
    case HierNode::Type::kE:
      d = alg_.baseE(n.laneI, id(n.u), id(n.v), edgeIsReal(n.u, n.v));
      break;
    case HierNode::Type::kP: {
      const std::size_t len = n.pathVertices.size();
      const std::span<std::uint64_t> pathIds = s.arena.allocSpan<std::uint64_t>(len);
      for (std::size_t i = 0; i < len; ++i) pathIds[i] = id(n.pathVertices[i]);
      const std::span<std::uint8_t> flags =
          s.arena.allocSpan<std::uint8_t>(len - 1);
      for (std::size_t i = 0; i + 1 < len; ++i) {
        flags[i] = edgeIsReal(n.pathVertices[i], n.pathVertices[i + 1]) ? 1 : 0;
      }
      d = alg_.baseP(n.lanes, pathIds, flags);
      break;
    }
    case HierNode::Type::kB:
      d = alg_.bridge(data(n.children[0]), data(n.children[1]), n.laneI,
                      n.laneJ, edgeIsReal(n.u, n.v));
      break;
    case HierNode::Type::kT: {
      // Tree children positions, processed leaves-first (tree children
      // always have larger node ids than their tree parents).
      const std::size_t cn = n.children.size();
      const std::span<int> order = s.arena.allocSpan<int>(cn);
      for (std::size_t p = 0; p < cn; ++p) order[p] = static_cast<int>(p);
      std::sort(order.begin(), order.end(), [&n](int a, int b) {
        return n.children[static_cast<std::size_t>(a)] >
               n.children[static_cast<std::size_t>(b)];
      });
      for (int pos : order) {
        NodeData cur = data(n.children[static_cast<std::size_t>(pos)]);
        // Deterministic fold order: tree children by smallest lane (the
        // precomputed CSR segment is already sorted that way).
        for (int q : kidsOf(tmIndex(nid, pos))) {
          cur = alg_.parentMerge(tmData_[tmIndex(nid, q)], cur);
        }
        tmData_[tmIndex(nid, pos)] = std::move(cur);
      }
      d = tmData_[tmIndex(nid, n.rootChildPos)];
      break;
    }
  }
}

void CertBuilder::runWaves(std::size_t lo, std::size_t hi) {
  if (lo >= hi) return;
  int minWave = waveOf_[lo];
  int maxWave = waveOf_[lo];
  for (std::size_t i = lo; i < hi; ++i) {
    minWave = std::min(minWave, waveOf_[i]);
    maxWave = std::max(maxWave, waveOf_[i]);
  }
  const auto span = static_cast<std::size_t>(maxWave - minWave) + 1;
  if (waveBuckets_.size() < span) waveBuckets_.resize(span);
  for (std::size_t w = 0; w < span; ++w) waveBuckets_[w].clear();
  for (std::size_t i = lo; i < hi; ++i) {
    waveBuckets_[static_cast<std::size_t>(waveOf_[i] - minWave)].push_back(
        static_cast<int>(i));
  }
  for (std::size_t w = 0; w < span; ++w) {
    const std::vector<int>& bucket = waveBuckets_[w];
    if (bucket.empty()) continue;
    if (bucket.size() < kInlineWave || exec_.numThreads() <= 1) {
      for (int nid : bucket) computeNode(nid, scratch_[0]);
    } else {
      exec_.forShards(bucket.size(), [&](std::size_t shard, std::size_t b,
                                         std::size_t e) {
        ProverScratch& s = scratch_[shard];
        for (std::size_t i = b; i < e; ++i) computeNode(bucket[i], s);
      });
    }
  }
}

const NodeData& CertBuilder::computeStates() {
  extendLayout(nodeCount_);
  runWaves(0, nodeCount_);
  return data(rootId_);
}

const NodeData& CertBuilder::computeStatesStreamed(
    const StageFeed<HierNode>& feed) {
  std::size_t have = 0;
  while (true) {
    const StageFeed<HierNode>::Progress p = feed.awaitBeyond(have);
    if (p.published > have) {
      nodes_ = feed.items();
      nodeCount_ = p.published;
      extendLayout(p.published);
      runWaves(have, p.published);
      have = p.published;
    } else if (p.done) {
      break;
    }
  }
  if (nodeCount_ == 0) {
    throw std::logic_error("computeStatesStreamed: empty hierarchy feed");
  }
  rootId_ = static_cast<int>(nodeCount_) - 1;  // the final T-node is last
  return data(rootId_);
}

void CertBuilder::encodeOwnerEntry(Encoder& enc, int nid) const {
  const HierNode& n = node(nid);
  const NodeData& d = data(nid);
  switch (n.type) {
    case HierNode::Type::kE:
      enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kBaseE));
      encodeSummary(enc, d, nid, static_cast<std::uint8_t>(n.type));
      enc.boolean(edgeIsReal(n.u, n.v));
      break;
    case HierNode::Type::kP:
      enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kBaseP));
      encodeSummary(enc, d, nid, static_cast<std::uint8_t>(n.type));
      enc.u64(n.pathVertices.size() - 1);
      for (std::size_t i = 0; i + 1 < n.pathVertices.size(); ++i) {
        enc.boolean(edgeIsReal(n.pathVertices[i], n.pathVertices[i + 1]));
      }
      break;
    case HierNode::Type::kB: {
      enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kBridge));
      encodeSummary(enc, d, nid, static_cast<std::uint8_t>(n.type));
      enc.u64(static_cast<std::uint64_t>(n.laneI));
      enc.u64(static_cast<std::uint64_t>(n.laneJ));
      enc.boolean(edgeIsReal(n.u, n.v));
      for (int part : {n.children[0], n.children[1]}) {
        encodeSummary(enc, data(part), part,
                      static_cast<std::uint8_t>(node(part).type));
      }
      break;
    }
    default:
      throw std::logic_error("encodeOwnerEntry: V/T nodes own no edges");
  }
}

void CertBuilder::encodeTreeEntry(Encoder& enc, int tId, int pos) const {
  const HierNode& t = node(tId);
  const int childId = t.children[static_cast<std::size_t>(pos)];
  const auto childType = static_cast<std::uint8_t>(node(childId).type);
  enc.u64(static_cast<std::uint64_t>(ChainEntry::Kind::kTree));
  encodeSummary(enc, data(tId), tId, static_cast<std::uint8_t>(t.type));
  enc.i64(childId);
  enc.boolean(pos == t.rootChildPos);
  encodeSummary(enc, data(childId), childId, childType);
  encodeSummary(enc, tmData_[tmIndex(tId, pos)], childId, childType);
  const std::span<const int> kids = kidsOf(tmIndex(tId, pos));
  enc.u64(kids.size());
  for (int q : kids) {
    const int kidId = t.children[static_cast<std::size_t>(q)];
    encodeSummary(enc, tmData_[tmIndex(tId, q)], kidId,
                  static_cast<std::uint8_t>(node(kidId).type));
  }
}

void CertBuilder::encodeEntries() {
  const std::size_t n = nodeCount_;
  ownerBytes_.resize(n);
  exec_.forShards(n, [&](std::size_t, std::size_t lo, std::size_t hi) {
    Encoder enc;
    for (std::size_t nid = lo; nid < hi; ++nid) {
      const HierNode& hnode = node(static_cast<int>(nid));
      switch (hnode.type) {
        case HierNode::Type::kV:
          break;  // V nodes appear only as bridge parts, never as entries
        case HierNode::Type::kT:
          for (std::size_t p = 0; p < hnode.children.size(); ++p) {
            encodeTreeEntry(enc, static_cast<int>(nid), static_cast<int>(p));
            treeBytes_[tmIndex(static_cast<int>(nid), static_cast<int>(p))] =
                enc.take();
          }
          break;
        default:
          encodeOwnerEntry(enc, static_cast<int>(nid));
          ownerBytes_[nid] = enc.take();
          break;
      }
    }
  });
}

void CertBuilder::encodeCert(Encoder& enc, bool real, std::uint64_t endA,
                             std::uint64_t endB, int ownerNode,
                             ProverScratch& s) const {
  const int rootId = rootId_;
  const HierNode& rootNode = node(rootId);
  const std::int64_t rootChildId =
      rootNode.children[static_cast<std::size_t>(rootNode.rootChildPos)];

  // Chain of cached entry encodings, owner first, root T-node last.  An
  // empty encoding means a V/T node ended up where only E/P/B entries are
  // legal — an internal hierarchy bug that must fail fast in the prover,
  // never ship as a corrupt certificate.
  const auto pushEntry = [&s](std::string_view bytes) {
    if (bytes.empty()) {
      throw std::logic_error("encodeCert: V/T node on an owner chain");
    }
    s.chain.push_back(bytes);
  };
  std::vector<std::string_view>& chain = s.chain;
  chain.clear();
  int cur = ownerNode;
  pushEntry(ownerBytes_[static_cast<std::size_t>(cur)]);
  while (node(cur).parent != -1) {
    const int parent = node(cur).parent;
    if (node(parent).type == HierNode::Type::kT) {
      pushEntry(treeBytes_[tmIndex(
          parent, posInParent_[static_cast<std::size_t>(cur)])]);
    } else {
      pushEntry(ownerBytes_[static_cast<std::size_t>(parent)]);
    }
    cur = parent;
  }

  const std::string_view rootEntry = rootEntryBytes();
  std::size_t total = 64 + (real ? rootEntry.size() : 0);
  for (std::string_view e : chain) total += e.size();
  enc.reserve(enc.str().size() + total);

  enc.boolean(real);
  enc.u64(endA);
  enc.u64(endB);
  enc.i64(rootId);
  enc.i64(rootChildId);
  // Only real edges ship the (large) root record; virtual-edge payloads
  // rely on their endpoints' real edges for it.
  enc.boolean(real);
  if (real) enc.raw(rootEntry);
  enc.u64(chain.size());
  for (std::string_view e : chain) enc.raw(e);
}

/// Shared prover tail: accept check, entry/cert encoding, embedding
/// distribution, pointer records, and label assembly.  Identical for the
/// planned and pipelined drivers — `pointerPre`, when given, must equal
/// provePointer(g, ids, seq.initialPath[0]) (the parallel overload
/// guarantees that bit-for-bit).
CoreProveResult proveBody(const Graph& g, const IdAssignment& ids,
                          const ProvePlan& plan, CertBuilder& builder,
                          const NodeData& rootData, ParallelExecutor& exec,
                          std::vector<ProverScratch>& scratch,
                          std::vector<PointerRecord>* pointerPre) {
  CoreProveResult out;
  const HierarchyResult& hier = plan.hier;
  out.stats.width = plan.rep.width();
  out.stats.numLanes = plan.plan.lanes.numLanes();
  out.stats.hierarchyDepth = hier.hierarchy.depth();
  out.stats.maxCongestion = plan.plan.maxCongestion;

  if (!builder.accepts(rootData)) {
    out.propertyHolds = false;
    return out;
  }
  out.propertyHolds = true;
  builder.encodeEntries();

  // Certificates for every completion edge: each chain splices the cached
  // entry bytes, so the per-edge cost is a walk up the hierarchy plus one
  // buffer append per entry.  Shards write disjoint certBytes slots.
  const Graph& gc = hier.graph;
  std::vector<std::string> certBytes(static_cast<std::size_t>(gc.numEdges()));
  exec.forShards(
      static_cast<std::size_t>(gc.numEdges()),
      [&](std::size_t shard, std::size_t lo, std::size_t hi) {
        ProverScratch& s = scratch[shard];
        Encoder enc;
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& edge = gc.edge(static_cast<EdgeId>(i));
          builder.encodeCert(enc, g.hasEdge(edge.u, edge.v), ids.id(edge.u),
                             ids.id(edge.v),
                             hier.edgeOwner[i], s);
          certBytes[i] = enc.take();
        }
      });

  // Virtual edges: distribute the cert along the embedding path (Thm 1).
  // Payloads are views into certBytes — no copies until label assembly.
  struct ThroughRef {
    std::uint64_t uId = 0;
    std::uint64_t vId = 0;
    std::uint64_t fwdRank = 0;
    std::uint64_t bwdRank = 0;
    std::string_view payload;
  };
  std::vector<std::vector<ThroughRef>> through(
      static_cast<std::size_t>(g.numEdges()));
  for (const EmbeddedEdge& emb : plan.plan.embeddings) {
    if (g.hasEdge(emb.edge.u, emb.edge.v)) continue;  // real: no simulation
    const EdgeId gcEdge = gc.findEdge(emb.edge.u, emb.edge.v);
    if (gcEdge == kNoEdge) throw std::logic_error("proveCore: lost virtual edge");
    const std::string_view payload = certBytes[static_cast<std::size_t>(gcEdge)];
    const std::uint64_t len = emb.path.size() - 1;
    for (std::size_t i = 0; i + 1 < emb.path.size(); ++i) {
      const EdgeId realEdge = g.findEdge(emb.path[i], emb.path[i + 1]);
      through[static_cast<std::size_t>(realEdge)].push_back(
          ThroughRef{ids.id(emb.edge.u), ids.id(emb.edge.v), i + 1, len - i,
                     payload});
    }
  }

  // Prop 2.2 pointer to the anchor (first initial-path vertex: the root
  // child's in-terminal on the smallest lane).  The pipelined driver hands
  // in the records it computed while the waves were draining.
  const std::vector<PointerRecord> pointer =
      pointerPre != nullptr ? std::move(*pointerPre)
                            : provePointer(g, ids, plan.seq.initialPath[0]);

  // Label assembly: one encoded EdgeLabel per real edge, again sharded with
  // each shard writing disjoint label slots.
  out.labels.resize(static_cast<std::size_t>(g.numEdges()));
  exec.forShards(
      static_cast<std::size_t>(g.numEdges()),
      [&](std::size_t, std::size_t lo, std::size_t hi) {
        Encoder enc;
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& edge = g.edge(static_cast<EdgeId>(i));
          const EdgeId gcEdge = gc.findEdge(edge.u, edge.v);
          const std::string& own = certBytes[static_cast<std::size_t>(gcEdge)];
          const std::vector<ThroughRef>& thr = through[i];
          std::size_t total = own.size() + 64;
          for (const ThroughRef& t : thr) total += t.payload.size() + 48;
          enc.reserve(total);
          enc.raw(own);
          pointer[i].encodeTo(enc);
          enc.u64(thr.size());
          for (const ThroughRef& t : thr) {
            enc.u64(t.uId);
            enc.u64(t.vId);
            enc.u64(t.fwdRank);
            enc.u64(t.bwdRank);
            enc.bytes(t.payload);
          }
          out.labels[i] = enc.take();
        }
      });
  for (const std::string& l : out.labels) {
    out.stats.maxLabelBits = std::max(out.stats.maxLabelBits, l.size() * 8);
    out.stats.totalLabelBits += l.size() * 8;
  }
  return out;
}

/// Degenerate single-vertex / empty graph short-circuit shared by both
/// prover drivers.
CoreProveResult proveDegenerate(const Graph& g, const Property& prop) {
  CoreProveResult out;
  const LaneAlgebra alg(prop);
  out.propertyHolds = g.numVertices() == 1 ? alg.acceptsSingleVertex()
                                           : prop.accepts(prop.empty());
  return out;
}

}  // namespace

ProvePlan buildProvePlan(const Graph& g, const IntervalRepresentation* rep,
                         ParallelExecutor* exec) {
  IntervalRepresentation r =
      rep != nullptr ? *rep : bestIntervalRepresentation(g, 18, exec);
  LanePlan plan = buildLanePlan(g, r);
  ConstructionSequence seq = buildConstruction(g, r, plan.lanes);
  HierarchyResult hier = buildHierarchy(seq);
  return ProvePlan{std::move(r), std::move(plan), std::move(seq),
                   std::move(hier)};
}

CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                          const Property& prop,
                          const IntervalRepresentation* rep, int numThreads) {
  if (!isConnected(g)) {
    throw std::invalid_argument("proveCore: graph must be connected");
  }
  if (g.numVertices() <= 1) {
    // Rejected before the executor exists: degenerate inputs must not pay
    // a worker-pool spin-up.
    return proveDegenerate(g, prop);
  }
  ParallelExecutor exec(numThreads);
  return proveCorePipelined(g, ids, prop, rep, exec);
}

CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                          const Property& prop, const ProvePlan& plan,
                          ParallelExecutor& exec) {
  std::vector<ProverScratch> scratch(
      static_cast<std::size_t>(exec.numThreads()));
  CertBuilder builder(g, ids, prop, plan.hier.hierarchy, exec, scratch);
  const NodeData& rootData = builder.computeStates();
  return proveBody(g, ids, plan, builder, rootData, exec, scratch, nullptr);
}

CoreProveResult proveCorePipelined(const Graph& g, const IdAssignment& ids,
                                   const Property& prop,
                                   const IntervalRepresentation* rep,
                                   ParallelExecutor& exec,
                                   const PlanReadyHook& onPlanReady) {
  if (!isConnected(g)) {
    throw std::invalid_argument("proveCore: graph must be connected");
  }
  if (g.numVertices() <= 1) {
    // Degenerate single-vertex (or empty) network: no edges, no labels, no
    // plan to publish.
    return proveDegenerate(g, prop);
  }

  // Head front: representation -> lane plan -> construction sequence.
  auto plan = std::make_shared<ProvePlan>();
  plan->rep = rep != nullptr ? *rep : bestIntervalRepresentation(g, 18, &exec);
  plan->plan = buildLanePlan(g, plan->rep);
  plan->seq = buildConstruction(g, plan->rep, plan->plan.lanes);

  // Wave consumer: posted to the pool so a free worker overlaps it with the
  // hierarchy replay below; join() steals it inline when none is (or when
  // the executor is single-threaded), degrading to the serial order.
  std::vector<ProverScratch> scratch(
      static_cast<std::size_t>(exec.numThreads()));
  CertBuilder builder(g, ids, prop, exec, scratch);
  StageFeed<HierNode> feed;
  const NodeData* rootData = nullptr;
  auto consumer = std::make_shared<StealableTask>(
      [&] { rootData = &builder.computeStatesStreamed(feed); });

  // The consumer closure targets this frame's locals, so EVERY exit path
  // past postTo must collapse it before unwinding — buildHierarchy throwing
  // (it fails the feed first), the caller's onPlanReady hook throwing, or
  // the pointer stage throwing.  The guard joins (swallowing the consumer's
  // own error — the unwinding exception wins) unless the normal path
  // already did.
  struct ConsumerJoinGuard {
    std::shared_ptr<StealableTask> task;
    StageFeed<HierNode>& feed;
    bool joined = false;
    ~ConsumerJoinGuard() {
      if (joined) return;
      feed.fail(std::make_exception_ptr(
          std::runtime_error("proveCorePipelined: head stage failed")));
      try {
        task->join();
      } catch (...) {
      }
    }
  } joinGuard{consumer, feed};
  if (exec.numThreads() > 1) consumer->postTo(exec.workerPool());

  // Streams nodes into `feed` as the replay finalizes them; terminal maps
  // materialize level-parallel after the feed closes.
  plan->hier = buildHierarchy(plan->seq, &feed, &exec);

  // The head is complete and immutable: hand it to coalesced waiters while
  // our own waves are still draining.
  if (onPlanReady) onPlanReady(plan);

  // Pointer stage overlaps the consumer finishing the last waves.
  std::vector<PointerRecord> pointer =
      provePointer(g, ids, plan->seq.initialPath[0], exec);

  consumer->join();  // rethrows wave errors
  joinGuard.joined = true;
  return proveBody(g, ids, *plan, builder, *rootData, exec, scratch, &pointer);
}

}  // namespace lanecert
