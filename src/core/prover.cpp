#include "core/prover.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "core/algebra.hpp"
#include "core/records.hpp"
#include "graph/algorithms.hpp"
#include "klane/hierarchy.hpp"
#include "lane/embedding.hpp"
#include "lanewidth/lanewidth.hpp"
#include "pathwidth/pathwidth.hpp"
#include "pls/pointer.hpp"

namespace lanecert {

namespace {

/// Builds every NodeData / record needed for the certificates.
class CertBuilder {
 public:
  CertBuilder(const Graph& g, const IdAssignment& ids, const Property& prop,
              const HierarchyResult& hier)
      : g_(g), ids_(ids), alg_(prop), hier_(hier) {}

  /// Computes hom data bottom-up; returns the root NodeData.
  const NodeData& computeStates();

  /// Chain entry for a base (E/P) or bridge node.
  ChainEntry entryForOwner(int nodeId) const;
  /// Chain entry for T-node `tId` relative to child at position `pos`.
  ChainEntry entryForTree(int tId, int pos) const;

  [[nodiscard]] SummaryRec nodeSummary(int nodeId) const {
    const HierNode& n = hier_.hierarchy.node(nodeId);
    return alg_.toSummary(nodeData_[static_cast<std::size_t>(nodeId)], nodeId,
                          static_cast<std::uint8_t>(n.type));
  }

  [[nodiscard]] bool edgeIsReal(VertexId u, VertexId v) const {
    return g_.hasEdge(u, v);
  }
  [[nodiscard]] std::uint64_t id(VertexId v) const { return ids_.id(v); }
  [[nodiscard]] const NodeData& data(int nodeId) const {
    return nodeData_[static_cast<std::size_t>(nodeId)];
  }

 private:
  /// Subtree-merged data TM(T_child) per (T-node, child position).
  const NodeData& tmData(int tId, int pos) const {
    return tmData_.at({tId, pos});
  }
  SummaryRec tmSummary(int tId, int pos) const {
    const HierNode& t = hier_.hierarchy.node(tId);
    const int childId = t.children[static_cast<std::size_t>(pos)];
    const HierNode& c = hier_.hierarchy.node(childId);
    return alg_.toSummary(tmData(tId, pos), childId,
                          static_cast<std::uint8_t>(c.type));
  }

  const Graph& g_;
  const IdAssignment& ids_;
  LaneAlgebra alg_;
  const HierarchyResult& hier_;
  std::vector<NodeData> nodeData_;
  std::map<std::pair<int, int>, NodeData> tmData_;
};

const NodeData& CertBuilder::computeStates() {
  const Hierarchy& h = hier_.hierarchy;
  nodeData_.resize(static_cast<std::size_t>(h.size()));
  // Node ids are topological (children precede parents by construction).
  for (int nid = 0; nid < h.size(); ++nid) {
    const HierNode& n = h.node(nid);
    NodeData& d = nodeData_[static_cast<std::size_t>(nid)];
    switch (n.type) {
      case HierNode::Type::kV:
        d = alg_.baseV(n.lanes[0], id(n.u));
        break;
      case HierNode::Type::kE:
        d = alg_.baseE(n.laneI, id(n.u), id(n.v), edgeIsReal(n.u, n.v));
        break;
      case HierNode::Type::kP: {
        std::vector<std::uint64_t> pathIds;
        for (VertexId v : n.pathVertices) pathIds.push_back(id(v));
        std::vector<bool> flags;
        for (std::size_t i = 0; i + 1 < n.pathVertices.size(); ++i) {
          flags.push_back(edgeIsReal(n.pathVertices[i], n.pathVertices[i + 1]));
        }
        d = alg_.baseP(n.lanes, pathIds, flags);
        break;
      }
      case HierNode::Type::kB:
        d = alg_.bridge(data(n.children[0]), data(n.children[1]), n.laneI,
                        n.laneJ, edgeIsReal(n.u, n.v));
        break;
      case HierNode::Type::kT: {
        // Tree children positions, processed leaves-first (tree children
        // always have larger node ids than their tree parents).
        std::vector<int> order(n.children.size());
        for (std::size_t p = 0; p < n.children.size(); ++p) {
          order[p] = static_cast<int>(p);
        }
        std::sort(order.begin(), order.end(), [&n](int a, int b) {
          return n.children[static_cast<std::size_t>(a)] >
                 n.children[static_cast<std::size_t>(b)];
        });
        std::vector<std::vector<int>> treeKids(n.children.size());
        for (std::size_t p = 0; p < n.children.size(); ++p) {
          if (n.treeParentPos[p] >= 0) {
            treeKids[static_cast<std::size_t>(n.treeParentPos[p])].push_back(
                static_cast<int>(p));
          }
        }
        for (int pos : order) {
          NodeData cur = data(n.children[static_cast<std::size_t>(pos)]);
          // Deterministic fold order: tree children by smallest lane.
          std::vector<int> kids = treeKids[static_cast<std::size_t>(pos)];
          std::sort(kids.begin(), kids.end(), [&](int a, int b) {
            return h.node(n.children[static_cast<std::size_t>(a)]).lanes[0] <
                   h.node(n.children[static_cast<std::size_t>(b)]).lanes[0];
          });
          for (int q : kids) {
            cur = alg_.parentMerge(tmData(nid, q), cur);
          }
          tmData_.emplace(std::make_pair(nid, pos), std::move(cur));
        }
        d = tmData(nid, n.rootChildPos);
        break;
      }
    }
  }
  return data(h.root());
}

ChainEntry CertBuilder::entryForOwner(int nodeId) const {
  const HierNode& n = hier_.hierarchy.node(nodeId);
  ChainEntry e;
  e.self = nodeSummary(nodeId);
  switch (n.type) {
    case HierNode::Type::kE:
      e.kind = ChainEntry::Kind::kBaseE;
      e.eReal = edgeIsReal(n.u, n.v);
      break;
    case HierNode::Type::kP:
      e.kind = ChainEntry::Kind::kBaseP;
      for (std::size_t i = 0; i + 1 < n.pathVertices.size(); ++i) {
        e.pReal.push_back(edgeIsReal(n.pathVertices[i], n.pathVertices[i + 1]));
      }
      break;
    case HierNode::Type::kB:
      e.kind = ChainEntry::Kind::kBridge;
      e.laneI = n.laneI;
      e.laneJ = n.laneJ;
      e.bridgeReal = edgeIsReal(n.u, n.v);
      e.part0 = nodeSummary(n.children[0]);
      e.part1 = nodeSummary(n.children[1]);
      break;
    default:
      throw std::logic_error("entryForOwner: V/T nodes own no edges");
  }
  return e;
}

ChainEntry CertBuilder::entryForTree(int tId, int pos) const {
  const HierNode& t = hier_.hierarchy.node(tId);
  ChainEntry e;
  e.kind = ChainEntry::Kind::kTree;
  e.self = nodeSummary(tId);
  e.childId = t.children[static_cast<std::size_t>(pos)];
  e.childIsRoot = pos == t.rootChildPos;
  e.childSelf = nodeSummary(static_cast<int>(e.childId));
  e.subtree = tmSummary(tId, pos);
  std::vector<int> kids;
  for (std::size_t q = 0; q < t.children.size(); ++q) {
    if (t.treeParentPos[q] == pos) kids.push_back(static_cast<int>(q));
  }
  std::sort(kids.begin(), kids.end(), [&](int a, int b) {
    return hier_.hierarchy.node(t.children[static_cast<std::size_t>(a)]).lanes[0] <
           hier_.hierarchy.node(t.children[static_cast<std::size_t>(b)]).lanes[0];
  });
  for (int q : kids) e.treeChildren.push_back(tmSummary(tId, q));
  return e;
}

}  // namespace

CoreProveResult proveCore(const Graph& g, const IdAssignment& ids,
                          const Property& prop,
                          const IntervalRepresentation* rep) {
  CoreProveResult out;
  if (!isConnected(g)) {
    throw std::invalid_argument("proveCore: graph must be connected");
  }
  if (g.numVertices() <= 1) {
    // Degenerate single-vertex (or empty) network: no edges, no labels.
    const LaneAlgebra alg(prop);
    out.propertyHolds = g.numVertices() == 1 ? alg.acceptsSingleVertex()
                                             : prop.accepts(prop.empty());
    return out;
  }

  const IntervalRepresentation localRep =
      rep != nullptr ? *rep : bestIntervalRepresentation(g);
  const LanePlan plan = buildLanePlan(g, localRep);
  const ConstructionSequence seq = buildConstruction(g, localRep, plan.lanes);
  const HierarchyResult hier = buildHierarchy(seq);
  const Hierarchy& h = hier.hierarchy;

  out.stats.width = localRep.width();
  out.stats.numLanes = plan.lanes.numLanes();
  out.stats.hierarchyDepth = h.depth();
  out.stats.maxCongestion = plan.maxCongestion;

  CertBuilder builder(g, ids, prop, hier);
  const NodeData& rootData = builder.computeStates();
  const LaneAlgebra alg(prop);
  if (!alg.accepts(rootData)) {
    out.propertyHolds = false;
    return out;
  }
  out.propertyHolds = true;

  // Root metadata shared by every certificate.
  const int rootId = h.root();
  const HierNode& rootNode = h.node(rootId);
  const std::int64_t rootChildId =
      rootNode.children[static_cast<std::size_t>(rootNode.rootChildPos)];
  const ChainEntry rootEntry = builder.entryForTree(rootId, rootNode.rootChildPos);

  // Certificates for every completion edge.
  const Graph& gc = hier.graph;
  std::vector<EdgeCert> certs(static_cast<std::size_t>(gc.numEdges()));
  for (EdgeId e = 0; e < gc.numEdges(); ++e) {
    EdgeCert& cert = certs[static_cast<std::size_t>(e)];
    const Edge& edge = gc.edge(e);
    cert.real = g.hasEdge(edge.u, edge.v);
    cert.endA = ids.id(edge.u);
    cert.endB = ids.id(edge.v);
    cert.rootTNode = rootId;
    cert.rootChildNode = rootChildId;
    // Only real edges ship the (large) root record; virtual-edge payloads
    // rely on their endpoints' real edges for it.
    cert.hasRootEntry = cert.real;
    if (cert.real) cert.rootEntry = rootEntry;
    int cur = hier.edgeOwner[static_cast<std::size_t>(e)];
    cert.chain.push_back(builder.entryForOwner(cur));
    while (h.node(cur).parent != -1) {
      const int parent = h.node(cur).parent;
      const HierNode& pn = h.node(parent);
      if (pn.type == HierNode::Type::kT) {
        int pos = -1;
        for (std::size_t q = 0; q < pn.children.size(); ++q) {
          if (pn.children[q] == cur) pos = static_cast<int>(q);
        }
        cert.chain.push_back(builder.entryForTree(parent, pos));
      } else {
        cert.chain.push_back(builder.entryForOwner(parent));
      }
      cur = parent;
    }
  }

  // Virtual edges: distribute the cert along the embedding path (Thm 1).
  std::vector<std::vector<PathThrough>> through(
      static_cast<std::size_t>(g.numEdges()));
  for (const EmbeddedEdge& emb : plan.embeddings) {
    if (g.hasEdge(emb.edge.u, emb.edge.v)) continue;  // real: no simulation
    const EdgeId gcEdge = gc.findEdge(emb.edge.u, emb.edge.v);
    if (gcEdge == kNoEdge) throw std::logic_error("proveCore: lost virtual edge");
    const std::string payload = certs[static_cast<std::size_t>(gcEdge)].encoded();
    const std::uint64_t len = emb.path.size() - 1;
    for (std::size_t i = 0; i + 1 < emb.path.size(); ++i) {
      const EdgeId realEdge = g.findEdge(emb.path[i], emb.path[i + 1]);
      PathThrough p;
      p.uId = ids.id(emb.edge.u);
      p.vId = ids.id(emb.edge.v);
      p.fwdRank = i + 1;
      p.bwdRank = len - i;
      p.payload = payload;
      through[static_cast<std::size_t>(realEdge)].push_back(std::move(p));
    }
  }

  // Prop 2.2 pointer to the anchor (first initial-path vertex: the root
  // child's in-terminal on the smallest lane).
  const std::vector<PointerRecord> pointer =
      provePointer(g, ids, seq.initialPath[0]);

  out.labels.resize(static_cast<std::size_t>(g.numEdges()));
  for (EdgeId e = 0; e < g.numEdges(); ++e) {
    const Edge& edge = g.edge(e);
    const EdgeId gcEdge = gc.findEdge(edge.u, edge.v);
    EdgeLabel label;
    label.own = certs[static_cast<std::size_t>(gcEdge)];
    label.pointer = pointer[static_cast<std::size_t>(e)];
    label.through = std::move(through[static_cast<std::size_t>(e)]);
    out.labels[static_cast<std::size_t>(e)] = label.encoded();
  }
  for (const std::string& l : out.labels) {
    out.stats.maxLabelBits = std::max(out.stats.maxLabelBits, l.size() * 8);
    out.stats.totalLabelBits += l.size() * 8;
  }
  return out;
}

}  // namespace lanecert
