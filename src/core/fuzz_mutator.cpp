#include "core/fuzz_mutator.hpp"

#include <algorithm>

#include "core/records.hpp"
#include "pls/codec.hpp"

namespace lanecert {

const char* fuzzKindName(FuzzKind kind) {
  switch (kind) {
    case FuzzKind::kBitFlip:
      return "bitFlip";
    case FuzzKind::kByteSet:
      return "byteSet";
    case FuzzKind::kTruncate:
      return "truncate";
    case FuzzKind::kVarintPad:
      return "varintPad";
    case FuzzKind::kVarintBump:
      return "varintBump";
    case FuzzKind::kLengthLie:
      return "lengthLie";
    case FuzzKind::kZeroLength:
      return "zeroLength";
    case FuzzKind::kSplice:
      return "splice";
    case FuzzKind::kChunkDup:
      return "chunkDup";
    case FuzzKind::kChunkDrop:
      return "chunkDrop";
    case FuzzKind::kCount:
      break;
  }
  return "?";
}

std::vector<VarintSite> scanVarints(std::string_view bytes) {
  std::vector<VarintSite> sites;
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    VarintSite site;
    site.offset = pos;
    std::uint64_t value = 0;
    int shift = 0;
    std::size_t len = 0;
    while (pos + len < bytes.size() && len < 10) {
      const auto b = static_cast<unsigned char>(bytes[pos + len]);
      if (shift < 64) {
        value |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      }
      shift += 7;
      ++len;
      if ((b & 0x80) == 0) break;  // terminator
    }
    site.length = len;
    site.value = value;
    // A token is a plausible length prefix when reading `value` bytes after
    // it stays inside the buffer (the decoder's bytesView bound check).
    const std::size_t after = pos + len;
    site.plausibleLength =
        value > 0 && after < bytes.size() && value <= bytes.size() - after;
    sites.push_back(site);
    pos = after;
  }
  return sites;
}

std::string encodeVarint(std::uint64_t value, std::size_t width) {
  std::string out;
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
  // Redundant padding: rewrite the terminator as a continuation byte and
  // append zero groups; the decoded value is unchanged, only the width is.
  while (out.size() < width) {
    out.back() = static_cast<char>(static_cast<unsigned char>(out.back()) | 0x80);
    out.push_back('\0');
  }
  return out;
}

namespace {

/// Uniform index in [0, n); requires n > 0.
std::size_t pickIndex(Rng& rng, std::size_t n) {
  return static_cast<std::size_t>(
      rng.uniformInt(0, static_cast<int>(n) - 1));
}

/// A random site, biased toward plausible length prefixes when requested
/// (falls back to any site when none qualifies).
const VarintSite* pickSite(Rng& rng, const std::vector<VarintSite>& sites,
                           bool wantLength) {
  if (sites.empty()) return nullptr;
  if (wantLength) {
    std::vector<const VarintSite*> lengths;
    for (const VarintSite& s : sites) {
      if (s.plausibleLength) lengths.push_back(&s);
    }
    if (!lengths.empty()) return lengths[pickIndex(rng, lengths.size())];
  }
  return &sites[pickIndex(rng, sites.size())];
}

/// Replaces bytes [offset, offset + oldLen) with `repl`.
std::string spliceBytes(std::string_view in, std::size_t offset,
                        std::size_t oldLen, std::string_view repl) {
  std::string out;
  out.reserve(in.size() - oldLen + repl.size());
  out.append(in.substr(0, offset));
  out.append(repl);
  out.append(in.substr(offset + oldLen));
  return out;
}

}  // namespace

std::string FuzzMutator::mutate(std::string_view original,
                                std::string_view donor, FuzzKind kind) {
  std::string out(original);
  if (out.empty()) return out;
  const std::vector<VarintSite> sites = scanVarints(original);
  switch (kind) {
    case FuzzKind::kBitFlip: {
      const std::size_t i = pickIndex(rng_, out.size());
      out[i] = static_cast<char>(static_cast<unsigned char>(out[i]) ^
                                 (1u << rng_.uniformInt(0, 7)));
      return out;
    }
    case FuzzKind::kByteSet: {
      const std::size_t i = pickIndex(rng_, out.size());
      out[i] = static_cast<char>(rng_.uniformInt(0, 255));
      return out;
    }
    case FuzzKind::kTruncate: {
      // Half the time cut INSIDE a multi-byte varint (mid-token), otherwise
      // anywhere — both ends of the decoder's truncation handling.
      std::size_t cut = pickIndex(rng_, out.size());
      if (rng_.flip(0.5)) {
        for (const VarintSite& s : sites) {
          if (s.length > 1) {
            cut = s.offset + 1 + pickIndex(rng_, s.length - 1);
            break;
          }
        }
      }
      out.resize(cut);
      return out;
    }
    case FuzzKind::kVarintPad: {
      const VarintSite* s = pickSite(rng_, sites, /*wantLength=*/false);
      if (s == nullptr) return out;
      // Pad to anywhere between one extra byte and 11 bytes: 10 exercises
      // the exact cap (legal iff the value fits), 11 must always reject.
      const std::size_t width = s->length + static_cast<std::size_t>(
          rng_.uniformInt(1, static_cast<int>(11 - s->length > 0
                                                  ? 11 - s->length
                                                  : 1)));
      return spliceBytes(original, s->offset, s->length,
                         encodeVarint(s->value, width));
    }
    case FuzzKind::kVarintBump: {
      const VarintSite* s = pickSite(rng_, sites, /*wantLength=*/false);
      if (s == nullptr) return out;
      const std::uint64_t delta =
          static_cast<std::uint64_t>(rng_.uniformInt(1, 4));
      const std::uint64_t value =
          rng_.flip(0.5) ? s->value + delta : s->value - delta;
      return spliceBytes(original, s->offset, s->length, encodeVarint(value));
    }
    case FuzzKind::kLengthLie: {
      const VarintSite* s = pickSite(rng_, sites, /*wantLength=*/true);
      if (s == nullptr) return out;
      // Lie big (up to claiming far past the end) or lie small.
      const std::uint64_t lie =
          rng_.flip(0.5) ? s->value + 1 +
                               static_cast<std::uint64_t>(
                                   rng_.uniformInt(0, 1 << 20))
                         : s->value / 2;
      return spliceBytes(original, s->offset, s->length, encodeVarint(lie));
    }
    case FuzzKind::kZeroLength: {
      const VarintSite* s = pickSite(rng_, sites, /*wantLength=*/true);
      if (s == nullptr) return out;
      return spliceBytes(original, s->offset, s->length, encodeVarint(0));
    }
    case FuzzKind::kSplice: {
      if (donor.empty()) return out;
      // Overwrite a random window with a random donor chunk (lengths may
      // differ, shifting the rest of the grammar).
      const std::size_t dstOff = pickIndex(rng_, out.size());
      const std::size_t dstLen =
          std::min(out.size() - dstOff,
                   static_cast<std::size_t>(rng_.uniformInt(1, 64)));
      const std::size_t srcOff = pickIndex(rng_, donor.size());
      const std::size_t srcLen =
          std::min(donor.size() - srcOff,
                   static_cast<std::size_t>(rng_.uniformInt(1, 64)));
      return spliceBytes(original, dstOff, dstLen,
                         donor.substr(srcOff, srcLen));
    }
    case FuzzKind::kChunkDup: {
      const std::size_t off = pickIndex(rng_, out.size());
      const std::size_t len =
          std::min(out.size() - off,
                   static_cast<std::size_t>(rng_.uniformInt(1, 32)));
      return spliceBytes(original, off, 0, original.substr(off, len));
    }
    case FuzzKind::kChunkDrop: {
      const std::size_t off = pickIndex(rng_, out.size());
      const std::size_t len =
          std::min(out.size() - off,
                   static_cast<std::size_t>(rng_.uniformInt(1, 32)));
      return spliceBytes(original, off, len, {});
    }
    case FuzzKind::kCount:
      break;
  }
  return out;
}

std::string FuzzMutator::mutateRandom(std::string_view original,
                                      std::string_view donor,
                                      FuzzKind* pickedKind) {
  const auto kind = static_cast<FuzzKind>(
      rng_.uniformInt(0, static_cast<int>(FuzzKind::kCount) - 1));
  if (pickedKind != nullptr) *pickedKind = kind;
  return mutate(original, donor, kind);
}

FuzzVerdictClass classifyMutation(std::string_view original,
                                  std::string_view mutant) {
  std::string mutantCanonical;
  try {
    mutantCanonical = EdgeLabel::decode(mutant).encoded();
  } catch (const DecodeError&) {
    return FuzzVerdictClass::kMalformed;
  }
  // encodeTo is deterministic and injective, so canonical re-encodings are
  // equal iff the decoded labels are structurally equal.
  const std::string originalCanonical = EdgeLabel::decode(original).encoded();
  return mutantCanonical == originalCanonical ? FuzzVerdictClass::kNoop
                                              : FuzzVerdictClass::kSemanticChange;
}

}  // namespace lanecert
