#include "core/verifier.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/algebra.hpp"
#include "core/records.hpp"
#include "core/simd.hpp"
#include "lane/bounds.hpp"
#include "pls/pointer.hpp"
#include "runtime/arena.hpp"
#include "runtime/flat_map.hpp"

namespace lanecert {

namespace {

/// Byte-equality over two encodings (size gate + the SIMD compare kernel).
bool bytesEq(std::string_view a, std::string_view b) {
  return a.size() == b.size() && simd::equalBytes(a.data(), b.data(), a.size());
}

}  // namespace

/// Per-thread read-side memo in front of the shared SweepEntryCache:
/// validated entry ENCODINGS this thread has already seen.  Near-root
/// entries are shared by most vertices AND hash to few stripes, so without
/// this layer heavily threaded sweeps serialize on the same stripe locks
/// for exactly the hottest entries; a memo hit touches no lock at all.
/// Synced to the cache's (id, epoch) pair on every vertex check.  The id
/// guard is a SOUNDNESS requirement, not a memory bound: the memo lives in
/// thread_local scratch shared by every engine that checks on this thread
/// (e.g. per-job verifier closures multiplexed over one worker pool), and
/// entries validated under one engine's algebra/params say nothing about
/// another's — serving them across engines could skip validateEntryPure
/// for an entry the current engine would reject.  The epoch guard handles
/// clear() within one cache; stale POSITIVE same-cache entries are sound
/// (validation outcomes are forced) but dropping them keeps the memory
/// bound tied to the live cache.
struct SweepReadMemo {
  FlatMap<std::int64_t, std::vector<std::string>> validated;
  std::size_t total = 0;
  std::uint64_t cacheId = 0;  ///< 0 = never synced; real ids start at 1
  std::uint64_t epoch = 0;
  /// Growth backstop, same spirit as the shared cache's: stop retaining,
  /// never stop serving.
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 13;

  [[nodiscard]] bool contains(std::int64_t nodeId,
                              std::string_view entryBytes) const {
    const auto* variants = validated.find(nodeId);
    if (variants == nullptr) return false;
    for (const std::string& v : *variants) {
      if (bytesEq(v, entryBytes)) return true;
    }
    return false;
  }

  void insert(std::int64_t nodeId, std::string_view entryBytes) {
    if (total >= kMaxEntries) return;
    std::vector<std::string>& variants =
        *validated.tryEmplace(nodeId, {}).first;
    for (const std::string& v : variants) {
      if (bytesEq(v, entryBytes)) return;
    }
    variants.emplace_back(entryBytes);
    ++total;
  }

  void syncTo(std::uint64_t id, std::uint64_t cacheEpoch) {
    if (cacheId == id && epoch == cacheEpoch) return;
    validated.clear();
    total = 0;
    cacheId = id;
    epoch = cacheEpoch;
  }
};

/// Reusable per-thread buffers: a vertex check decodes every incident label
/// once into `labels` and tracks all cross-certificate state in flat
/// containers, so after the first few vertices a sweep stops allocating.
/// Records referenced by pointer (summaries, chain entries) live in
/// `labels` / `virtualCerts`, which are fully built before validation
/// starts and stable until the next run.
struct VerifierScratch {
  /// Bump arena behind the decoded through-record arrays (EdgeLabelView
  /// spans point into it); reset per vertex, so after warm-up a sweep
  /// decodes labels without any heap allocation for those arrays.
  Arena arena;
  std::vector<EdgeLabelView> labels;
  std::vector<PointerRecord> pointers;
  std::vector<EdgeCert> virtualCerts;
  FlatMap<std::int64_t, const SummaryRec*> nodeSum;  ///< nodeId -> B(node)
  FlatMap<std::int64_t, const SummaryRec*> tmSum;    ///< nodeId -> B(TM(subtree))
  /// Per T-node: childId -> one representative T entry (chain-derived).
  FlatMap<std::int64_t, FlatMap<std::int64_t, const ChainEntry*>> heldChildren;
  /// Every T entry seen anywhere (chains + root entries), for gluing checks.
  std::vector<const ChainEntry*> allTreeEntries;
  /// Per B-node id: the unique chain-lower node id entering it (one part).
  FlatMap<std::int64_t, std::int64_t> bridgeLower;
  /// Per node id: ENCODINGS of entries already fully validated at this
  /// vertex.  Chains of different incident edges share their upper T/B
  /// entries, so most validateEntry calls are byte-identical repeats —
  /// replaying even the bookkeeping for them is pure waste.  Views alias
  /// label bytes (or `encStable` below), stable for the vertex check.
  FlatMap<std::int64_t, std::vector<std::string_view>> validatedEntries;
  /// Stable backing for re-encoded entries that carry no srcBytes (never
  /// hit on the borrowed-decoder label path; defensive).
  std::deque<std::string> encStable;
  std::vector<int> laneScratch;
  /// Struct-of-arrays id lane for the baseP replay (path vertex ids),
  /// mirroring algebra.cpp's FoldScratch lanes on the verifier side.
  std::vector<std::uint64_t> foldIds;
  /// Cross-vertex read memo (NOT reset per vertex — that is its point).
  SweepReadMemo memo;

  void reset() {
    // Containers holding arena-backed records are cleared BEFORE the arena
    // rewinds: their (no-op-deallocating) destructors still read record
    // innards that live in arena blocks.
    labels.clear();
    pointers.clear();
    virtualCerts.clear();
    nodeSum.clear();
    tmSum.clear();
    heldChildren.clear();
    allTreeEntries.clear();
    bridgeLower.clear();
    validatedEntries.clear();
    encStable.clear();
    laneScratch.clear();
    foldIds.clear();
    arena.reset();
  }
};

// --- SweepEntryCache ------------------------------------------------------

struct SweepEntryCache::Impl {
  static constexpr std::size_t kStripes = 16;
  /// Growth bound: once a stripe holds kMaxEntries / kStripes encodings, a
  /// capped insert first evicts the stripe's least-recently-PROBED quarter
  /// (batch eviction amortizes the scan; per-entry LRU lists would double
  /// the memory just to avoid it).  A single labeling at n = 4096 produces
  /// ~18k distinct entries, so the cap leaves an order of magnitude of
  /// headroom; long-lived verifiers cycling through many labelings (soak
  /// runs, soundness benches, reused closures) keep their hot working set
  /// instead of freezing whatever happened to arrive first.  Eviction is
  /// memory management only, never invalidation: validation is a pure
  /// function of the entry bytes, so a per-thread read memo that still
  /// remembers an evicted encoding serves a CORRECT hit — which is why
  /// eviction does not bump the epoch.
  static constexpr std::size_t kMaxEntries = 1 << 16;
  static constexpr std::size_t kStripeCap = kMaxEntries / kStripes;
  std::atomic<std::size_t> total{0};
  /// Bumped per clear(); per-thread read memos compare against it and drop
  /// their (now unbounded-growth-risky) copies.
  std::atomic<std::uint64_t> epoch{0};
  /// Process-unique, never reused (a freed-and-reallocated cache at the
  /// same address still gets a fresh id); read memos key on it so they can
  /// never serve entries validated under a DIFFERENT engine's cache.
  const std::uint64_t id = nextId();
  static std::uint64_t nextId() {
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }
  // Counters are relaxed: they are diagnostics, never synchronization.
  mutable std::atomic<std::uint64_t> hits{0};
  mutable std::atomic<std::uint64_t> misses{0};
  mutable std::atomic<std::uint64_t> contention{0};
  mutable std::atomic<std::uint64_t> evictions{0};
  /// One validated encoding + its recency stamp (stripe-local tick; bigger
  /// is more recent, refreshed on every successful probe).
  struct Variant {
    std::string bytes;
    std::uint64_t stamp = 0;
  };
  struct Stripe {
    mutable std::mutex mu;
    /// nodeId -> validated entry ENCODINGS (usually exactly one).  Flat
    /// byte strings on the global heap: a probe decoded into a per-thread
    /// arena never leaks an arena pointer into the cache, and a lookup is
    /// one contiguous compare instead of a record-graph walk.
    FlatMap<std::int64_t, std::vector<Variant>> validated;
    /// Recency clock; advanced under mu on inserts and probe hits.
    std::uint64_t tick = 0;
    /// Live encodings in this stripe (FlatMap keys whose vectors were
    /// emptied by eviction linger as tombstones, bounded by the distinct
    /// nodeIds of the decomposition, so they are not counted here).
    std::size_t count = 0;
  };
  std::array<Stripe, kStripes> stripes;

  /// Drops the least-recently-probed quarter of `s` (at least one entry).
  /// Requires s.mu held.  FlatMap has no erase, so emptied variant vectors
  /// stay as (string-free) tombstones.
  void evictOldestLocked(Stripe& s) {
    std::vector<std::uint64_t> stamps;
    stamps.reserve(s.count);
    for (const auto& [nodeId, variants] : s.validated) {
      for (const Variant& v : variants) stamps.push_back(v.stamp);
    }
    if (stamps.empty()) return;
    const std::size_t drop = std::max<std::size_t>(1, stamps.size() / 4);
    std::nth_element(stamps.begin(), stamps.begin() + (drop - 1),
                     stamps.end());
    const std::uint64_t cutoff = stamps[drop - 1];  // evict stamp <= cutoff
    std::size_t dropped = 0;
    for (auto& [nodeId, variants] : s.validated) {
      auto keep = std::remove_if(
          variants.begin(), variants.end(),
          [&](const Variant& v) { return v.stamp <= cutoff; });
      dropped += static_cast<std::size_t>(variants.end() - keep);
      variants.erase(keep, variants.end());
    }
    s.count -= dropped;
    total.fetch_sub(dropped, std::memory_order_relaxed);
    evictions.fetch_add(dropped, std::memory_order_relaxed);
  }

  static std::size_t stripeOf(std::int64_t nodeId) {
    auto x = static_cast<std::uint64_t>(nodeId);
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    return static_cast<std::size_t>(x % kStripes);
  }
};

SweepEntryCache::SweepEntryCache() : impl_(std::make_unique<Impl>()) {}
SweepEntryCache::~SweepEntryCache() = default;

bool SweepEntryCache::containsValidated(std::int64_t nodeId,
                                        std::string_view entryBytes) const {
  Impl::Stripe& s = impl_->stripes[Impl::stripeOf(nodeId)];
  // try_lock first purely to MEASURE contention (the satellite counters
  // exist to justify the read memo with data); the probe then waits like
  // any lock_guard would.
  std::unique_lock<std::mutex> lock(s.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    impl_->contention.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  auto* variants = s.validated.find(nodeId);
  if (variants != nullptr) {
    for (Impl::Variant& v : *variants) {
      if (bytesEq(v.bytes, entryBytes)) {
        v.stamp = ++s.tick;  // refresh recency: hot entries outlive eviction
        impl_->hits.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  impl_->misses.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void SweepEntryCache::markValidated(std::int64_t nodeId,
                                    std::string_view entryBytes) {
  Impl::Stripe& s = impl_->stripes[Impl::stripeOf(nodeId)];
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<Impl::Variant>& variants =
      *s.validated.tryEmplace(nodeId, {}).first;
  for (Impl::Variant& v : variants) {
    if (bytesEq(v.bytes, entryBytes)) {
      v.stamp = ++s.tick;
      return;  // raced: already recorded
    }
  }
  if (s.count >= Impl::kStripeCap) impl_->evictOldestLocked(s);
  // Flat copy onto the global heap.  NOTE: evictOldestLocked may have
  // shuffled `variants` but never reallocates the FlatMap, so the
  // reference is still valid.
  variants.push_back(Impl::Variant{std::string(entryBytes), ++s.tick});
  ++s.count;
  impl_->total.fetch_add(1, std::memory_order_relaxed);
}

std::size_t SweepEntryCache::size() const {
  std::size_t total = 0;
  for (const Impl::Stripe& s : impl_->stripes) {
    std::lock_guard<std::mutex> lock(s.mu);
    total += s.count;
  }
  return total;
}

void SweepEntryCache::clear() {
  for (Impl::Stripe& s : impl_->stripes) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.validated.clear();
    s.count = 0;
  }
  impl_->total.store(0, std::memory_order_relaxed);
  impl_->epoch.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t SweepEntryCache::epoch() const {
  return impl_->epoch.load(std::memory_order_relaxed);
}

std::uint64_t SweepEntryCache::id() const { return impl_->id; }

SweepCacheStats SweepEntryCache::stats() const {
  SweepCacheStats s;
  s.hits = impl_->hits.load(std::memory_order_relaxed);
  s.misses = impl_->misses.load(std::memory_order_relaxed);
  s.stripeContention = impl_->contention.load(std::memory_order_relaxed);
  s.evictions = impl_->evictions.load(std::memory_order_relaxed);
  s.entries = size();
  return s;
}

namespace {

constexpr std::uint8_t kTypeV = 0;
constexpr std::uint8_t kTypeE = 1;
constexpr std::uint8_t kTypeP = 2;
constexpr std::uint8_t kTypeB = 3;
constexpr std::uint8_t kTypeT = 4;

/// Reject helper: checks are expressed as `require(cond)`.
void require(bool cond) {
  if (!cond) throw DecodeError{};
}

/// Equality across allocator boundaries: recomputed NodeData fields are
/// plain heap containers, certificate record fields are pmr (arena-backed
/// on the decode path) — different types to the language, same bytes here.
bool sameBytes(const std::string& a, const std::pmr::string& b) {
  return bytesEq(a, std::string_view(b.data(), b.size()));
}
template <typename T, typename A1, typename A2>
bool sameSeq(const std::vector<T, A1>& a, const std::vector<T, A2>& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

/// Per-vertex verification context.  The LaneAlgebra and the sweep cache
/// are shared across all vertices (and threads) of a sweep; the algebra is
/// stateless beyond the property, the cache locks internally.
class Checker {
 public:
  Checker(const LaneAlgebra& alg, const CoreVerifierParams& params,
          const EdgeView& view, VerifierScratch& scratch,
          SweepEntryCache* sweepCache)
      : alg_(alg),
        params_(params),
        view_(view),
        s_(scratch),
        sweepCache_(sweepCache) {
    s_.reset();
    // The read memo is NOT reset per vertex — it persists for the thread —
    // but it must drop its copies when the cache identity changed (the
    // scratch is shared by every engine on this thread, and memo contents
    // are only meaningful against the engine that validated them) or when
    // the same cache was cleared (memory bound).
    if (sweepCache_ != nullptr) {
      s_.memo.syncTo(sweepCache_->id(), sweepCache_->epoch());
    }
  }

  bool run();

  /// Read-memo hits this vertex check; the engine flushes them into its
  /// (atomic) counter once per check rather than once per hit.
  [[nodiscard]] std::uint64_t memoHits() const { return memoHits_; }

 private:
  void validateSummaryCommon(const SummaryRec& s) const;
  void validateEntry(const ChainEntry& e);
  void validateEntryPure(const ChainEntry& e) const;
  void validateCert(const EdgeCert& cert, bool isVirtual);
  void reconstructVirtualEdges(const std::vector<EdgeLabelView>& labels);
  void recordNodeSummary(const SummaryRec& s);
  void recordTmSummary(const SummaryRec& s);
  void topologyChecks();
  std::string_view entryBytes(const ChainEntry& e);

  const LaneAlgebra& alg_;
  const CoreVerifierParams& params_;
  const EdgeView& view_;
  VerifierScratch& s_;
  SweepEntryCache* sweepCache_;
  std::uint64_t memoHits_ = 0;

  bool bridgeConflict_ = false;   ///< two chain parts entered one B-node
  std::int64_t rootTNode_ = -1;
  std::int64_t rootChildNode_ = -1;
  const ChainEntry* rootEntry_ = nullptr;
};

/// The memoization key of an entry: its source encoding.  Every entry on
/// the verifier path decodes from borrowed label bytes (labels live in the
/// store, virtual-edge payloads alias labels), so srcBytes is populated;
/// the re-encode fallback only defends against future owning-decoder
/// callers and parks its bytes in deque-stable scratch storage.
std::string_view Checker::entryBytes(const ChainEntry& e) {
  if (!e.srcBytes.empty()) return e.srcBytes;
  Encoder enc;
  e.encodeTo(enc);
  return s_.encStable.emplace_back(enc.take());
}

void Checker::validateSummaryCommon(const SummaryRec& s) const {
  require(!s.lanes.empty());
  for (int lane : s.lanes) {
    require(lane >= 0 && lane < params_.maxLanes);
  }
}

void Checker::recordNodeSummary(const SummaryRec& s) {
  validateSummaryCommon(s);
  const auto [slot, inserted] = s_.nodeSum.tryEmplace(s.nodeId, &s);
  if (!inserted) require(**slot == s);
}

void Checker::recordTmSummary(const SummaryRec& s) {
  validateSummaryCommon(s);
  const auto [slot, inserted] = s_.tmSum.tryEmplace(s.nodeId, &s);
  if (!inserted) require(**slot == s);
}

/// The vertex-independent half of entry validation: shape constraints plus
/// the Prop 6.1 algebra replay.  A deterministic pure function of the entry
/// bytes, the algebra, and the params — nothing here may read view_ or the
/// per-vertex cross-certificate maps, which is what makes results safely
/// shareable through the sweep cache.  (laneScratch is borrowed as a plain
/// reusable buffer; it carries no state across calls.)
void Checker::validateEntryPure(const ChainEntry& e) const {
  switch (e.kind) {
    case ChainEntry::Kind::kBaseE: {
      require(e.self.type == kTypeE);
      require(e.self.lanes.size() == 1);
      const int lane = e.self.lanes[0];
      const NodeData d = alg_.baseE(lane, e.self.inTerm.at(lane),
                                    e.self.outTerm.at(lane), e.eReal);
      require(sameBytes(d.state.encoding(), e.self.stateBytes));
      require(sameSeq(d.slots, e.self.slotOrder));
      break;
    }
    case ChainEntry::Kind::kBaseP: {
      require(e.self.type == kTypeP);
      // SoA id lane reused across entries (like laneScratch): the baseP
      // replay is the hottest fold, and a per-entry vector allocation here
      // was the last steady-state allocation on the validate path.
      std::vector<std::uint64_t>& pathIds = s_.foldIds;
      pathIds.clear();
      for (int lane : e.self.lanes) {
        const std::uint64_t id = e.self.inTerm.at(lane);
        require(e.self.outTerm.at(lane) == id);
        pathIds.push_back(id);
      }
      require(e.pReal.size() + 1 == pathIds.size());
      const NodeData d = alg_.baseP(e.self.lanes, pathIds, e.pReal);
      require(sameBytes(d.state.encoding(), e.self.stateBytes));
      require(sameSeq(d.slots, e.self.slotOrder));
      break;
    }
    case ChainEntry::Kind::kBridge: {
      require(e.self.type == kTypeB);
      for (const SummaryRec* part : {&e.part0, &e.part1}) {
        require(part->type == kTypeV || part->type == kTypeT);
        if (part->type == kTypeV) {
          require(part->lanes.size() == 1);
          const int lane = part->lanes[0];
          const std::uint64_t vid = part->inTerm.at(lane);
          require(part->outTerm.at(lane) == vid);
          const NodeData d = alg_.baseV(lane, vid);
          require(sameBytes(d.state.encoding(), part->stateBytes));
          require(sameSeq(d.slots, part->slotOrder));
        }
      }
      require(std::binary_search(e.part0.lanes.begin(), e.part0.lanes.end(),
                                 e.laneI));
      require(std::binary_search(e.part1.lanes.begin(), e.part1.lanes.end(),
                                 e.laneJ));
      const NodeData d =
          alg_.bridge(alg_.fromSummary(e.part0), alg_.fromSummary(e.part1),
                      e.laneI, e.laneJ, e.bridgeReal);
      require(sameBytes(d.state.encoding(), e.self.stateBytes));
      require(sameSeq(d.slots, e.self.slotOrder));
      require(sameSeq(d.lanes, e.self.lanes));
      require(d.inTerm == e.self.inTerm);
      require(d.outTerm == e.self.outTerm);
      break;
    }
    case ChainEntry::Kind::kTree: {
      require(e.self.type == kTypeT);
      require(e.childSelf.type == kTypeE || e.childSelf.type == kTypeP ||
              e.childSelf.type == kTypeB);
      require(e.childSelf.nodeId == e.childId);
      require(!e.childSelf.lanes.empty());
      require(e.subtree.nodeId == e.childId);
      require(e.subtree.type == e.childSelf.type);
      require(e.subtree.lanes == e.childSelf.lanes);
      require(e.subtree.inTerm == e.childSelf.inTerm);
      // Tree children: nested lanes, pairwise disjoint, glued onto the
      // child's out-terminals; the fold replays the Parent-merges.
      NodeData cur = alg_.fromSummary(e.childSelf);
      int prevMinLane = -1;
      std::vector<int>& used = s_.laneScratch;
      used.clear();
      for (const SummaryRec& d : e.treeChildren) {
        require(d.type == kTypeE || d.type == kTypeP || d.type == kTypeB);
        require(!d.lanes.empty());
        require(d.lanes[0] > prevMinLane);  // sorted fold order
        prevMinLane = d.lanes[0];
        for (int lane : d.lanes) {
          used.push_back(lane);
          require(std::binary_search(e.childSelf.lanes.begin(),
                                     e.childSelf.lanes.end(), lane));
          // Gluing: the child's in-terminal IS c's out-terminal.
          require(d.inTerm.at(lane) == e.childSelf.outTerm.at(lane));
        }
        cur = alg_.parentMerge(alg_.fromSummary(d), cur);
      }
      // Sibling lane sets pairwise disjoint.
      std::sort(used.begin(), used.end());
      require(std::adjacent_find(used.begin(), used.end()) == used.end());
      require(sameBytes(cur.state.encoding(), e.subtree.stateBytes));
      require(sameSeq(cur.slots, e.subtree.slotOrder));
      require(cur.outTerm == e.subtree.outTerm);
      if (e.childIsRoot) {
        // B(X) = B(Tree-merge(T_rootchild)).
        require(e.self.lanes == e.subtree.lanes);
        require(e.self.inTerm == e.subtree.inTerm);
        require(e.self.outTerm == e.subtree.outTerm);
        require(e.self.slotOrder == e.subtree.slotOrder);
        require(e.self.stateBytes == e.subtree.stateBytes);
      }
      break;
    }
  }
}

void Checker::validateEntry(const ChainEntry& e) {
  const std::string_view bytes = entryBytes(e);
  // Per-vertex memo: a byte-identical entry that already passed at this
  // vertex needs no recomputation — only the bookkeeping side effect (tree
  // entries feed the gluing checks) is replayed.  Byte identity is finer
  // than structural equality (padded varints key separately), so the only
  // possible divergence from the old structural memo is a conservative
  // replay of checks that are idempotent by construction.
  std::vector<std::string_view>& seen =
      *s_.validatedEntries.tryEmplace(e.self.nodeId, {}).first;
  for (std::string_view p : seen) {
    if (bytesEq(p, bytes)) {
      if (e.kind == ChainEntry::Kind::kTree) s_.allTreeEntries.push_back(&e);
      return;
    }
  }
  // Cross-certificate bookkeeping is per vertex and always replayed: every
  // summary this entry carries must agree byte-for-byte with what the other
  // certificates at this vertex claim about the same node.  (Any reject
  // below and any reject in the pure half reach the same verdict — a vertex
  // accepts iff NO check fails, so check order never matters.)
  recordNodeSummary(e.self);
  switch (e.kind) {
    case ChainEntry::Kind::kBaseE:
    case ChainEntry::Kind::kBaseP:
      break;
    case ChainEntry::Kind::kBridge:
      recordNodeSummary(e.part0);
      recordNodeSummary(e.part1);
      break;
    case ChainEntry::Kind::kTree:
      recordNodeSummary(e.childSelf);
      recordTmSummary(e.subtree);
      for (const SummaryRec& d : e.treeChildren) recordTmSummary(d);
      break;
  }
  // The pure half runs once per distinct entry per SWEEP, not per vertex:
  // upper chain entries are shared by most edges, and the sweep cache
  // remembers the (deterministic) outcome across vertices and threads.
  // Probe order: per-thread read memo (no lock), then the striped shared
  // cache, then the full algebra replay.  A cache hit of either kind only
  // skips recomputation whose outcome is forced, so verdicts never depend
  // on memo/cache state.
  bool alreadyValidated = false;
  if (sweepCache_ != nullptr) {
    if (params_.readMemo && s_.memo.contains(e.self.nodeId, bytes)) {
      ++memoHits_;
      alreadyValidated = true;
    } else if (sweepCache_->containsValidated(e.self.nodeId, bytes)) {
      alreadyValidated = true;
      if (params_.readMemo) s_.memo.insert(e.self.nodeId, bytes);
    }
  }
  if (!alreadyValidated) {
    validateEntryPure(e);
    if (sweepCache_ != nullptr) {
      sweepCache_->markValidated(e.self.nodeId, bytes);
      if (params_.readMemo) s_.memo.insert(e.self.nodeId, bytes);
    }
  }
  if (e.kind == ChainEntry::Kind::kTree) s_.allTreeEntries.push_back(&e);
  seen.push_back(bytes);
}

void Checker::validateCert(const EdgeCert& cert, bool isVirtual) {
  require(cert.endA != cert.endB);
  require(cert.real == !isVirtual);
  if (!isVirtual) {
    require(cert.endA == view_.selfId || cert.endB == view_.selfId);
  }
  // Root metadata must agree across every certificate at this vertex.
  // Every REAL edge carries the root record; virtual certificates only
  // carry the root ids (their endpoints see the record on real edges).
  require(cert.hasRootEntry == !isVirtual);
  if (rootTNode_ == -1) {
    require(!isVirtual);  // own certificates are validated first
    rootTNode_ = cert.rootTNode;
    rootChildNode_ = cert.rootChildNode;
    rootEntry_ = &cert.rootEntry;
    require(cert.rootEntry.kind == ChainEntry::Kind::kTree);
    require(cert.rootEntry.self.nodeId == rootTNode_);
    require(cert.rootEntry.childId == rootChildNode_);
    require(cert.rootEntry.childIsRoot);
    validateEntry(cert.rootEntry);
    // Acceptance: the whole graph's hom class must satisfy φ.
    require(alg_.accepts(alg_.fromSummary(cert.rootEntry.self)));
  } else {
    require(cert.rootTNode == rootTNode_);
    require(cert.rootChildNode == rootChildNode_);
    if (cert.hasRootEntry) {
      // Byte-equal encodings ARE structurally equal (decode is pure), so
      // the single contiguous compare settles the common honest case; only
      // byte-distinct encodings fall back to the structural walk, which
      // must stay — padded varints may encode the SAME root entry, and
      // rejecting an honest re-encoding would change verdicts.
      const bool fastEq = !cert.rootEntry.srcBytes.empty() &&
                          !rootEntry_->srcBytes.empty() &&
                          bytesEq(cert.rootEntry.srcBytes, rootEntry_->srcBytes);
      require(fastEq || cert.rootEntry == *rootEntry_);
    }
  }

  // Chain shape: owner entry, then alternating T, B, ..., ending at root T.
  const std::size_t len = cert.chain.size();
  require(len >= 2);
  require(len <= static_cast<std::size_t>(2 * params_.maxLanes + 2));
  for (std::size_t i = 0; i < len; ++i) {
    const ChainEntry& e = cert.chain[i];
    if (i == 0) {
      require(e.kind == ChainEntry::Kind::kBaseE ||
              e.kind == ChainEntry::Kind::kBaseP ||
              e.kind == ChainEntry::Kind::kBridge);
    } else if (i % 2 == 1) {
      require(e.kind == ChainEntry::Kind::kTree);
    } else {
      require(e.kind == ChainEntry::Kind::kBridge);
    }
    validateEntry(e);
  }
  require(cert.chain.back().kind == ChainEntry::Kind::kTree);
  require(cert.chain.back().self.nodeId == rootTNode_);

  // Linkage between consecutive entries.
  for (std::size_t i = 1; i < len; ++i) {
    const ChainEntry& upper = cert.chain[i];
    const ChainEntry& lower = cert.chain[i - 1];
    if (upper.kind == ChainEntry::Kind::kTree) {
      require(upper.childId == lower.self.nodeId);
      require(upper.childSelf == lower.self);
      s_.heldChildren.tryEmplace(upper.self.nodeId, {})
          .first->insertOrAssign(upper.childId, &upper);
    } else {  // kBridge
      const bool inPart0 = lower.self.nodeId == upper.part0.nodeId;
      const bool inPart1 = lower.self.nodeId == upper.part1.nodeId;
      require(inPart0 || inPart1);
      const SummaryRec& part = inPart0 ? upper.part0 : upper.part1;
      require(part == lower.self);
      const auto [firstLower, inserted] =
          s_.bridgeLower.tryEmplace(upper.self.nodeId, lower.self.nodeId);
      if (!inserted && *firstLower != lower.self.nodeId) bridgeConflict_ = true;
    }
  }

  // Owner-entry binding to this physical/reconstructed edge.
  const ChainEntry& owner = cert.chain[0];
  const auto sameEnds = [&cert](std::uint64_t a, std::uint64_t b) {
    return (cert.endA == a && cert.endB == b) ||
           (cert.endA == b && cert.endB == a);
  };
  switch (owner.kind) {
    case ChainEntry::Kind::kBaseE: {
      const int lane = owner.self.lanes[0];
      require(sameEnds(owner.self.inTerm.at(lane), owner.self.outTerm.at(lane)));
      require(owner.eReal == cert.real);
      break;
    }
    case ChainEntry::Kind::kBaseP: {
      bool found = false;
      for (std::size_t i = 0; i + 1 < owner.self.slotOrder.size(); ++i) {
        if (sameEnds(owner.self.slotOrder[i], owner.self.slotOrder[i + 1])) {
          require(owner.pReal[i] == cert.real);
          found = true;
        }
      }
      require(found);
      break;
    }
    case ChainEntry::Kind::kBridge: {
      require(sameEnds(owner.part0.outTerm.at(owner.laneI),
                       owner.part1.outTerm.at(owner.laneJ)));
      require(owner.bridgeReal == cert.real);
      break;
    }
    default:
      require(false);
  }
}

void Checker::reconstructVirtualEdges(const std::vector<EdgeLabelView>& labels) {
  // Group PathThrough records by virtual edge (uId, vId).  Groups are
  // processed in ascending key order and, within a group, in label order,
  // so the reconstructed certificate order is deterministic.
  struct Rec {
    std::pair<std::uint64_t, std::uint64_t> key;
    const PathThroughView* p;
  };
  std::vector<Rec> recs;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seenHere;
  for (const EdgeLabelView& label : labels) {
    const std::span<const PathThroughView> through = label.through;
    if (params_.maxThrough > 0) {
      require(through.size() <= static_cast<std::size_t>(params_.maxThrough));
    }
    seenHere.clear();
    for (const PathThroughView& p : through) {
      seenHere.emplace_back(p.uId, p.vId);
      recs.push_back(Rec{{p.uId, p.vId}, &p});
    }
    // One record per virtual edge per label; labels are adversarial, so
    // this must stay O(t log t), not pairwise.
    std::sort(seenHere.begin(), seenHere.end());
    require(std::adjacent_find(seenHere.begin(), seenHere.end()) ==
            seenHere.end());
  }
  std::stable_sort(recs.begin(), recs.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  for (std::size_t lo = 0; lo < recs.size();) {
    std::size_t hi = lo + 1;
    while (hi < recs.size() && recs[hi].key == recs[lo].key) ++hi;
    const auto [uId, vId] = recs[lo].key;
    require(uId != vId);
    require(hi - lo <= 2);
    const PathThroughView& first = *recs[lo].p;
    require(first.fwdRank >= 1 && first.bwdRank >= 1);
    require(first.fwdRank + first.bwdRank >= 3);  // path length >= 2 edges
    if (hi - lo == 2) {
      const PathThroughView& second = *recs[lo + 1].p;
      require(second.payload == first.payload);
      require(second.fwdRank + second.bwdRank == first.fwdRank + first.bwdRank);
      const std::uint64_t a = std::min(first.fwdRank, second.fwdRank);
      const std::uint64_t b = std::max(first.fwdRank, second.fwdRank);
      require(b == a + 1);
      // An intermediate vertex of a simple path is not an endpoint.
      require(view_.selfId != uId && view_.selfId != vId);
      lo = hi;
      continue;
    }
    // Single record: this vertex must be one endpoint of the path.
    const bool atU = first.fwdRank == 1;
    const bool atV = first.bwdRank == 1;
    require(atU != atV);
    require((atU && view_.selfId == uId) || (atV && view_.selfId == vId));
    Decoder dec(std::string_view(first.payload));
    EdgeCert cert = EdgeCert::decodeFrom(dec, &s_.arena.resource());
    require(dec.atEnd());
    require((cert.endA == uId && cert.endB == vId) ||
            (cert.endA == vId && cert.endB == uId));
    s_.virtualCerts.push_back(std::move(cert));
    lo = hi;
  }
}

void Checker::topologyChecks() {
  // B-node: all chains entering it at this vertex stay in one part.
  require(!bridgeConflict_);
  // T-nodes: gluing structure of the held children.
  // Group held entries per T-node (including the root entry, which may
  // list gluings at this vertex even when no chain passes through the root
  // child — the w = 1 P-node case).  Grouped by ascending node id; entries
  // keep discovery order within a node.
  std::vector<const ChainEntry*>& grouped = s_.allTreeEntries;
  std::stable_sort(grouped.begin(), grouped.end(),
                   [](const ChainEntry* a, const ChainEntry* b) {
                     return a->self.nodeId < b->self.nodeId;
                   });
  for (std::size_t lo = 0; lo < grouped.size();) {
    const std::int64_t xId = grouped[lo]->self.nodeId;
    std::size_t hi = lo + 1;
    while (hi < grouped.size() && grouped[hi]->self.nodeId == xId) ++hi;
    const auto* held = s_.heldChildren.find(xId);
    // (a) Declared gluings at this vertex must point to held children, and
    //     they connect the held children.
    FlatMap<std::int64_t, std::int64_t> unionFind;
    auto findRep = [&unionFind](std::int64_t x) {
      while (true) {
        const std::int64_t* parent = unionFind.find(x);
        require(parent != nullptr);  // only held ids participate
        if (*parent == x) return x;
        x = *parent;
      }
    };
    if (held != nullptr) {
      for (const auto& [cid, entry] : *held) unionFind.insertOrAssign(cid, cid);
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const ChainEntry* e = grouped[i];
      std::vector<std::int64_t> group;
      if (held != nullptr && held->find(e->childId) != nullptr) {
        group.push_back(e->childId);
      }
      for (const SummaryRec& d : e->treeChildren) {
        bool gluedHere = false;
        for (const auto& [lane, id] : d.inTerm.entries) {
          if (id == view_.selfId) gluedHere = true;
        }
        if (!gluedHere) continue;
        // A declared gluing at this vertex: the child must be held here.
        require(held != nullptr && held->find(d.nodeId) != nullptr);
        group.push_back(d.nodeId);
      }
      for (std::size_t j = 1; j < group.size(); ++j) {
        const std::int64_t a = findRep(group[0]);
        const std::int64_t b = findRep(group[j]);
        if (a != b) unionFind.insertOrAssign(b, a);
      }
    }
    // (b) Held children must be pairwise glued (transitively) at this
    //     vertex — the "no neighbor outside" check.
    if (held != nullptr && !held->empty()) {
      const std::int64_t rep = findRep(held->begin()->first);
      for (const auto& [cid, entry] : *held) {
        require(findRep(cid) == rep);
      }
      // (c) Non-root children whose in-terminal is this vertex must be
      //     listed (with this gluing) by some held entry of X.
      for (const auto& [cid, entry] : *held) {
        if (entry->childIsRoot) continue;
        for (const auto& [lane, id] : entry->childSelf.inTerm.entries) {
          if (id != view_.selfId) continue;
          bool listed = false;
          for (std::size_t i = lo; i < hi; ++i) {
            for (const SummaryRec& d : grouped[i]->treeChildren) {
              if (d.nodeId == cid && d.inTerm.has(lane) &&
                  d.inTerm.at(lane) == view_.selfId) {
                listed = true;
              }
            }
          }
          require(listed);
        }
      }
    }
    lo = hi;
  }
}

bool Checker::run() {
  // Degenerate single-vertex network: decide φ(K1) directly.
  if (view_.incidentLabels.empty()) return alg_.acceptsSingleVertex();

  // One-pass decode of each incident label into scratch.
  std::vector<EdgeLabelView>& labels = s_.labels;
  labels.reserve(view_.incidentLabels.size());
  for (std::string_view bytes : view_.incidentLabels) {
    labels.push_back(EdgeLabelView::decode(bytes, s_.arena));
  }

  // Prop 2.2 pointer layer.
  std::vector<PointerRecord>& pointers = s_.pointers;
  for (const EdgeLabelView& l : labels) pointers.push_back(l.pointer);
  require(checkPointerAt(view_.selfId, pointers, std::nullopt));
  const std::uint64_t anchorId = pointers[0].rootId;

  // Own certificates (each physically incident edge must be real).
  for (const EdgeLabelView& l : labels) require(l.own.real);
  // Theorem 1 embedding reconstruction.
  reconstructVirtualEdges(labels);

  for (const EdgeLabelView& l : labels) validateCert(l.own, /*isVirtual=*/false);
  for (const EdgeCert& cert : s_.virtualCerts) {
    validateCert(cert, /*isVirtual=*/true);
  }
  topologyChecks();

  // Anchor: the pointer target must be the root child's first in-terminal.
  if (view_.selfId == anchorId) {
    const ChainEntry& root = *rootEntry_;
    const int minLane = root.childSelf.lanes[0];
    require(root.childSelf.inTerm.at(minLane) == view_.selfId);
  }
  return true;
}

}  // namespace

// --- CoreVerifierEngine ---------------------------------------------------

CoreVerifierEngine::ThreadState::ThreadState() = default;
CoreVerifierEngine::ThreadState::~ThreadState() = default;
CoreVerifierEngine::ThreadState::ThreadState(ThreadState&&) noexcept = default;
CoreVerifierEngine::ThreadState& CoreVerifierEngine::ThreadState::operator=(
    ThreadState&&) noexcept = default;

CoreVerifierEngine::CoreVerifierEngine(PropertyPtr prop,
                                       CoreVerifierParams params)
    : prop_(std::move(prop)),
      params_(params),
      // The algebra is built ONCE per engine (it only references the
      // property), not per vertex; it is stateless beyond the property, so
      // one engine can check many vertices concurrently.
      algebra_(std::make_shared<const LaneAlgebra>(*prop_)) {}

CoreVerifierEngine::~CoreVerifierEngine() = default;

bool CoreVerifierEngine::check(const EdgeView& view, ThreadState& state) const {
  if (!state.impl_) state.impl_ = std::make_unique<VerifierScratch>();
  bool ok = false;
  std::uint64_t hits = 0;
  // Construction stays inside a try as well: scratch reset can in principle
  // throw (allocation), and check() is documented never to throw — reject
  // instead.  Rejecting runs still flush their memo hits.
  try {
    Checker checker(*algebra_, params_, view, *state.impl_, &cache_);
    try {
      ok = checker.run();
    } catch (const std::exception&) {
      ok = false;
    }
    hits = checker.memoHits();
  } catch (const std::exception&) {
    ok = false;
  }
  if (hits != 0) {
    memoHits_.fetch_add(hits, std::memory_order_relaxed);
  }
  return ok;
}

std::size_t CoreVerifierEngine::sweepCacheSize() const { return cache_.size(); }

void CoreVerifierEngine::clearSweepCache() { cache_.clear(); }

SweepCacheStats CoreVerifierEngine::cacheStats() const {
  SweepCacheStats s = cache_.stats();
  s.memoHits = memoHits_.load(std::memory_order_relaxed);
  return s;
}

CoreVerifierParams theorem1Params(int k) {
  CoreVerifierParams p;
  // Clamp to practical limits; f/h explode combinatorially in k.
  p.maxLanes = static_cast<int>(std::min<long long>(fLanes(k + 1), 1 << 20));
  p.maxThrough = static_cast<int>(std::min<long long>(hCongestion(k + 1), 1 << 20));
  return p;
}

EdgeVerifier makeCoreVerifier(PropertyPtr prop, CoreVerifierParams params) {
  auto engine = std::make_shared<CoreVerifierEngine>(std::move(prop), params);
  return [engine = std::move(engine)](const EdgeView& view) -> bool {
    // One scratch per OS thread, shared by every verifier closure on that
    // thread (each check resets it), so concurrent sweeps stay allocation-
    // free in steady state without per-closure state.  The cross-vertex
    // read memo inside is keyed to the engine's cache identity, so a thread
    // interleaving checks for several engines (per-job closures over one
    // pool) never serves one engine's memoized validations to another.
    static thread_local CoreVerifierEngine::ThreadState state;
    return engine->check(view, state);
  };
}

}  // namespace lanecert
